package checks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/callgraph"
)

// HotAlloc statically enforces the kernel's zero-allocation contract:
// a function annotated `//simlint:hotpath` must not reach any allocating
// construct through any call-graph path. The alloc-pinning tests
// (TestScheduleSteadyStateZeroAllocs and friends) check this dynamically
// for the few call shapes they exercise; this analyzer checks it for
// every path, every commit.
//
// Allocating constructs: escaping composite literals (&T{...}, slice and
// map literals), make/new, append (may grow), func literals (closures),
// map writes, string concatenation, string<->[]byte conversions, calls
// into fmt, and arguments boxed into interface parameters. Calls through
// function values are sinks — a callback's allocation behaviour is
// flagged where the callback is built, not where it is invoked — and
// calls through interfaces follow every module method of matching
// name+arity (conservative; see internal/lint/callgraph).
//
// Deliberate exceptions carry `//simlint:allow hotalloc <reason>`: the
// kernel's amortized freelist/queue growth and its panic paths are the
// expected ones.
//
// Category: hotalloc.
var HotAlloc = &lint.ModuleAnalyzer{
	Name: "hotalloc",
	Doc: "flags allocating constructs reachable from //simlint:hotpath functions " +
		"through the whole-module call graph, printing the offending call chain",
	Run: runHotAlloc,
}

func runHotAlloc(pass *lint.ModulePass) error {
	g := callgraph.Of(pass)

	// Multi-source BFS from every annotated root, recording parents so
	// each diagnostic can print a (shortest) chain from a root.
	parent := map[*callgraph.Node]*callgraph.Node{}
	var queue []*callgraph.Node
	for _, n := range g.All() {
		if n.Test {
			continue
		}
		if lint.HasDirective(n.Decl.Doc, lint.HotPathDirective) {
			if _, seen := parent[n]; !seen {
				parent[n] = nil
				queue = append(queue, n)
			}
		}
	}
	for i := 0; i < len(queue); i++ {
		n := queue[i]
		for _, e := range n.Out {
			if e.To.Test {
				continue
			}
			if _, seen := parent[e.To]; seen {
				continue
			}
			parent[e.To] = n
			queue = append(queue, e.To)
		}
	}
	for _, n := range queue {
		scanAllocs(pass, n, hotChain(parent, n))
	}
	return nil
}

// hotChain renders the call chain from the nearest annotated root to n.
func hotChain(parent map[*callgraph.Node]*callgraph.Node, n *callgraph.Node) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, funcDisplayName(at.Decl))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// funcDisplayName renders a function for chain output: Name for package
// functions, (Recv).Name for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var b strings.Builder
	b.WriteByte('(')
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
	case *ast.Ident:
		b.WriteString(t.Name)
	}
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// scanAllocs reports every allocating construct in n's body.
func scanAllocs(pass *lint.ModulePass, n *callgraph.Node, chain string) {
	info := n.Unit.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "hotalloc",
			"hot-path allocation: %s (hot chain: %s)", what, chain)
	}
	inAddrOf := map[ast.Node]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			report(node.Pos(), "func literal allocates a closure")
			// The literal's body executes through a dynamic edge, off
			// this hot path; creating it is the finding.
			return false

		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if cl, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "composite literal escapes to the heap (&T{...})")
					inAddrOf[cl] = true
				}
			}

		case *ast.CompositeLit:
			if inAddrOf[node] {
				return true
			}
			if t := typeOf(info, node); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(node.Pos(), "slice literal allocates")
				case *types.Map:
					report(node.Pos(), "map literal allocates")
				}
			}

		case *ast.CallExpr:
			scanCall(info, node, report)

		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(typeOf(info, node.X)) {
				report(node.Pos(), "string concatenation allocates")
			}

		case *ast.AssignStmt:
			for _, l := range node.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if t := typeOf(info, ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(ix.Pos(), "map write may allocate")
						}
					}
				}
			}
		}
		return true
	})
}

// scanCall reports allocating calls: builtins, fmt, allocating
// conversions, and interface-boxed arguments of static calls.
func scanCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow the backing array")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, typeOf(info, call.Args[0])
		if to != nil && from != nil {
			toStr, fromStr := isStringType(to), isStringType(from)
			_, toSlice := to.Underlying().(*types.Slice)
			_, fromSlice := from.Underlying().(*types.Slice)
			if (toStr && fromSlice) || (toSlice && fromStr) {
				report(call.Pos(), "string/slice conversion copies its operand")
			}
		}
		return
	}
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if pkgPathOf(fn) == "fmt" {
		report(call.Pos(), fmt.Sprintf("fmt.%s allocates", fn.Name()))
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, iface := pt.Underlying().(*types.Interface); !iface {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || pointerShaped(at) {
			continue
		}
		report(arg.Pos(), "argument boxed into interface parameter")
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value inline (no heap copy): pointers, channels,
// maps, funcs, unsafe pointers, interfaces, and nil.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}
