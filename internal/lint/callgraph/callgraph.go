// Package callgraph builds a conservative whole-module call graph from
// the lint Loader's compilation units. It is the interprocedural layer
// under the hotalloc analyzer: a `//simlint:hotpath` contract is only
// checkable if every function a hot root can reach is known.
//
// Resolution is deliberately conservative:
//
//   - Static calls (package functions, concrete methods) produce exact
//     edges. Because the Loader typechecks a package once as a unit and
//     again as an import copy for its dependents, objects cannot be
//     compared by pointer across packages; nodes are therefore keyed by
//     the canonical types.Func.FullName string, which is identical in
//     every type-checker universe.
//   - Calls through an interface method produce edges to every module
//     method with the same name and parameter count. Checking
//     types.Implements across universes is impossible (named-type
//     identity is object identity), so the over-approximation by
//     name+arity is the sound choice: it may add edges, never drop one.
//   - Calls through function values (fields, parameters, locals) resolve
//     to nothing: a function value is a sink. The discipline this
//     implies — the allocation behaviour of a callback is its creator's
//     responsibility, at creation site — is exactly the kernel's
//     contract, where hot paths invoke pooled package-level functions
//     and closures are flagged where they are built.
package callgraph

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Node is one function declared in the module.
type Node struct {
	// Key is the canonical identity: types.Func.FullName of the
	// declaration (generic origin, for instantiated calls).
	Key  string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Unit *lint.Unit
	// Test marks functions declared in _test.go files or test-only
	// (xtest) units; analyses of production contracts skip them.
	Test bool
	// Out lists call edges in source order.
	Out []Edge
}

// Edge is one call site resolved to a module function.
type Edge struct {
	Site *ast.CallExpr
	To   *Node
	// ViaInterface marks a name+arity interface-dispatch edge (an
	// over-approximation) as opposed to an exact static edge.
	ViaInterface bool
}

// Graph is the module call graph.
type Graph struct {
	// Nodes indexes every declared function by canonical key.
	Nodes map[string]*Node
	// order preserves deterministic iteration.
	order []*Node
}

// All returns every node in deterministic (load, then source) order.
func (g *Graph) All() []*Node { return g.order }

// Lookup returns the node for a types.Func from any universe, or nil.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin().FullName()]
}

// sharedKey memoizes the graph in a ModulePass's Shared cache.
const sharedKey = "callgraph"

// Of returns the call graph for the pass's units, building it on first
// use and memoizing it in pass.Shared for the other module analyzers.
func Of(pass *lint.ModulePass) *Graph {
	if g, ok := pass.Shared[sharedKey].(*Graph); ok {
		return g
	}
	g := Build(pass.Units)
	pass.Shared[sharedKey] = g
	return g
}

// Build constructs the call graph over the given units.
func Build(units []*lint.Unit) *Graph {
	g := &Graph{Nodes: map[string]*Node{}}

	// Pass 1: declare nodes. Units include in-package test files; a
	// function is a test function if its file is a _test.go file.
	for _, unit := range units {
		xtest := isXTest(unit)
		for _, f := range unit.Files {
			testFile := xtest || isTestFile(unit, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := unit.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				if _, dup := g.Nodes[key]; dup {
					continue
				}
				n := &Node{Key: key, Fn: fn, Decl: fd, Unit: unit, Test: testFile}
				g.Nodes[key] = n
				g.order = append(g.order, n)
			}
		}
	}

	// Interface-dispatch index: method name → candidate nodes by
	// parameter count.
	methods := map[string][]*Node{}
	for _, n := range g.order {
		if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			methods[n.Fn.Name()] = append(methods[n.Fn.Name()], n)
		}
	}

	// Pass 2: edges.
	for _, n := range g.order {
		info := n.Unit.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(info, call)
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			fn = fn.Origin()
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				if _, iface := sig.Recv().Type().Underlying().(*types.Interface); iface {
					want := sig.Params().Len()
					for _, cand := range methods[fn.Name()] {
						cs, _ := cand.Fn.Type().(*types.Signature)
						if cs != nil && cs.Params().Len() == want {
							n.Out = append(n.Out, Edge{Site: call, To: cand, ViaInterface: true})
						}
					}
					return true
				}
			}
			if to := g.Nodes[fn.FullName()]; to != nil {
				n.Out = append(n.Out, Edge{Site: call, To: to})
			}
			return true
		})
	}
	return g
}

// calleeOf resolves the object a call expression statically invokes.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func isXTest(u *lint.Unit) bool {
	return strings.HasSuffix(u.ImportPath, " [xtest]")
}

func isTestFile(u *lint.Unit, f *ast.File) bool {
	return strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go")
}
