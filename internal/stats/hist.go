// Package stats provides the small statistics and report-rendering toolkit
// used by the simulator: reservoir-free exact histograms, labelled data
// series for figure regeneration, and aligned text/markdown/CSV tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Hist collects float64 samples and answers summary queries exactly
// (it keeps all samples; simulation sample counts are modest).
type Hist struct {
	name    string
	samples []float64
	sum     float64
	sorted  bool
}

// NewHist returns an empty histogram with a diagnostic name.
func NewHist(name string) *Hist { return &Hist{name: name} }

// Name returns the histogram's name.
func (h *Hist) Name() string { return h.name }

// Add records one sample. NaN samples are dropped: a NaN would poison
// Sum/Mean and leave Min/Max/Percentile at the mercy of where the sort
// happens to park an unordered value, so one bad measurement must not
// corrupt every summary of the histogram.
func (h *Hist) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Hist) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Hist) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Hist) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile, or 0 with no samples. It
// linearly interpolates between the two closest ranks (the "exclusive"
// variant at rank p/100·(n-1), matching numpy's default quantile method)
// — it is NOT the nearest-rank method: p50 of {1, 2} is 1.5, not 1 or 2.
//
// Out-of-range p clamps: p <= 0 returns the minimum and p >= 100 the
// maximum, exactly (no interpolation at the boundaries). A NaN p has no
// ordering against any rank, so it propagates: Percentile(NaN) is NaN,
// never a silently-picked sample.
func (h *Hist) Percentile(p float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (h *Hist) StdDev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Summary renders a one-line digest suitable for logs.
func (h *Hist) Summary() string {
	return fmt.Sprintf("%s: n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g",
		h.name, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
