// Package tracing provides the standard recorder and sinks for the
// sim.Tracer observability hooks.
//
// A Trace records engine, resource, and model-phase activity as a flat
// event list in emission order. Because the simulation kernel is
// single-threaded and deterministic, the recorded list — and therefore
// every sink rendered from it — is bit-for-bit reproducible across runs
// and across parallel-runner widths, as long as each job records into its
// own Trace and traces are serialized in submission order.
//
// Two sinks are provided: WriteChrome renders the Chrome trace_event JSON
// format (loadable in chrome://tracing or https://ui.perfetto.dev), and
// the metrics helpers (SummaryTable, UtilizationTimeline) aggregate span
// activity into internal/stats tables and figures for reports.
package tracing

import "repro/internal/sim"

// Kind discriminates the three event shapes a Tracer can record.
type Kind uint8

const (
	// KindSpan is a completed [Start, End] interval on a track.
	KindSpan Kind = iota
	// KindInstant is a point event; End == Start.
	KindInstant
	// KindCounter is a sampled value at a point in time; End == Start and
	// Value carries the sample.
	KindCounter
)

// Event is one recorded trace event. Times are simulated nanoseconds.
type Event struct {
	Kind  Kind
	Track string
	Name  string
	Start sim.Time
	End   sim.Time
	Value float64
}

// Duration returns End - Start (zero for instants and counters).
func (e Event) Duration() sim.Time { return e.End - e.Start }

// Trace is an in-memory event recorder implementing sim.Tracer. Install
// it with Engine.SetTracer before scheduling work. The zero value is not
// usable; construct with New.
type Trace struct {
	label    string
	events   []Event
	tracks   []string
	trackIdx map[string]int
}

// Compile-time check that Trace satisfies the engine's hook interface.
var _ sim.Tracer = (*Trace)(nil)

// New returns an empty trace labelled for sink output (the label becomes
// the process name in Chrome traces and the trace column in metrics
// tables).
func New(label string) *Trace {
	return &Trace{label: label, trackIdx: map[string]int{}}
}

// Label returns the label given at construction.
func (t *Trace) Label() string { return t.label }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded events in emission order. The slice is the
// recorder's backing store; callers must not mutate it.
func (t *Trace) Events() []Event { return t.events }

// Tracks returns the track names in first-seen order. This ordering is a
// deterministic function of the simulation, which is what lets the Chrome
// sink assign stable thread ids without sorting.
func (t *Trace) Tracks() []string { return t.tracks }

func (t *Trace) track(name string) {
	if _, ok := t.trackIdx[name]; !ok {
		//simlint:allow hotalloc tracing-enabled runs trade allocations for observability; the zero-alloc contract is pinned with the tracer disabled
		t.trackIdx[name] = len(t.tracks)
		//simlint:allow hotalloc tracing-enabled runs trade allocations for observability; the zero-alloc contract is pinned with the tracer disabled
		t.tracks = append(t.tracks, name)
	}
}

// Span records a completed interval. Part of sim.Tracer.
func (t *Trace) Span(track, name string, start, end sim.Time) {
	t.track(track)
	//simlint:allow hotalloc tracing-enabled runs trade allocations for observability; the zero-alloc contract is pinned with the tracer disabled
	t.events = append(t.events, Event{Kind: KindSpan, Track: track, Name: name, Start: start, End: end})
}

// Instant records a point event. Part of sim.Tracer.
func (t *Trace) Instant(track, name string, at sim.Time) {
	t.track(track)
	//simlint:allow hotalloc tracing-enabled runs trade allocations for observability; the zero-alloc contract is pinned with the tracer disabled
	t.events = append(t.events, Event{Kind: KindInstant, Track: track, Name: name, Start: at, End: at})
}

// Counter records a sampled value. Part of sim.Tracer.
func (t *Trace) Counter(track, name string, at sim.Time, value float64) {
	t.track(track)
	//simlint:allow hotalloc tracing-enabled runs trade allocations for observability; the zero-alloc contract is pinned with the tracer disabled
	t.events = append(t.events, Event{Kind: KindCounter, Track: track, Name: name, Start: at, End: at, Value: value})
}

// BusyTime sums the durations of all spans with the given name on the
// given track. For resource tracks, BusyTime(track, "hold") is exactly
// the busy-time integral that Resource.Utilization divides by elapsed
// time×capacity, which is what lets tests reconcile trace output against
// the resource's own accounting.
func (t *Trace) BusyTime(track, name string) sim.Time {
	var sum sim.Time
	for _, e := range t.events {
		if e.Kind == KindSpan && e.Track == track && e.Name == name {
			sum += e.End - e.Start
		}
	}
	return sum
}

// Filter returns a new trace (same label) containing only the events
// whose track satisfies keep, with track first-seen order preserved.
// Reports use it to aggregate over coarse resources (buses, links, ODP
// units) while the full-detail trace still goes to the Chrome sink.
func (t *Trace) Filter(keep func(track string) bool) *Trace {
	out := New(t.label)
	for _, e := range t.events {
		if !keep(e.Track) {
			continue
		}
		out.track(e.Track)
		out.events = append(out.events, e)
	}
	return out
}

// End returns the largest timestamp recorded, or zero for an empty trace.
func (t *Trace) End() sim.Time {
	var end sim.Time
	for _, e := range t.events {
		if e.End > end {
			end = e.End
		}
	}
	return end
}
