package optim

import "math"

// adamA implements Adam Accumulation (Zhang et al., "Adam Accumulation to
// Reduce Memory Footprints of both Activations and Gradients for
// Large-scale DNN Training"). Instead of buffering micro-batch gradients
// and applying Adam once per accumulated batch, each gradient is folded
// directly into the first moment, and the second moment tracks the
// (already-smoothed) first moment:
//
//	m ← β₁·m + (1−β₁)·g
//	v ← β₂·v + (1−β₂)·m²
//	m̂ = m / (1−β₁ᵗ),  v̂ = v / (1−β₂ᵗ)
//	w ← w − lr·m̂ / (√v̂ + ε)
//
// Eliminating the gradient buffer is what lets a training system stream N
// micro-batch gradients per step into resident state; the traffic side of
// that is modeled by StateSpec.WithAccum / Kernel.WithAccum. The state
// footprint stays at Adam's two words per parameter.
type adamA struct {
	hp    Hyper
	m, v  []float32
	steps int
}

func (a *adamA) Name() string    { return "AdamA" }
func (a *adamA) Kind() Kind      { return AdamA }
func (a *adamA) StateWords() int { return 2 }
func (a *adamA) Steps() int      { return a.steps }
func (a *adamA) Reset()          { a.m, a.v = nil, nil; a.steps = 0 }

func (a *adamA) Step(w, g []float32) {
	checkLens(w, g)
	if a.m == nil {
		a.m = make([]float32, len(w))
		a.v = make([]float32, len(w))
	}
	a.steps++
	t := float64(a.steps)
	lr := a.hp.LR
	b1, b2 := a.hp.Beta1, a.hp.Beta2
	eps := a.hp.Eps
	wd := a.hp.WeightDecay
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)
	for i := range w {
		grad := float64(g[i]) + wd*float64(w[i])
		m := b1*float64(a.m[i]) + (1-b1)*grad
		v := b2*float64(a.v[i]) + (1-b2)*m*m
		a.m[i], a.v[i] = float32(m), float32(v)
		mhat := m / bc1
		vhat := v / bc2
		upd := lr * mhat / (math.Sqrt(vhat) + eps)
		w[i] = float32(float64(w[i]) - upd)
	}
}
