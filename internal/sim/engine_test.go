package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/approx"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of insertion order: %v", got)
		}
	}
}

func TestEngineZeroDelayDuringEvent(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(10, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "b") })
	})
	e.Schedule(10, func() { got = append(got, "c") })
	e.Run()
	want := []string{"a", "c", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel and cancelling nil must be no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleKeepsOthers(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 1) })
	ev := e.Schedule(20, func() { got = append(got, 2) })
	e.Schedule(30, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v before deadline 25", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %d, want clock advanced to deadline 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

// TestEngineRunUntilStop pins the RunUntil stop-time contract: when Stop
// fires mid-run the clock must stay at the stopping event's timestamp.
// The pre-fix code advanced it to the deadline unconditionally, so a
// harness sampling state at the stop point read the wrong time.
func TestEngineRunUntilStop(t *testing.T) {
	e := NewEngine()
	for _, d := range []Time{10, 20, 30} {
		e.Schedule(d, func() {})
	}
	e.Schedule(15, func() { e.Stop() })
	if end := e.RunUntil(100); end != 15 {
		t.Fatalf("RunUntil after Stop returned %d, want stop time 15", end)
	}
	if e.Now() != 15 {
		t.Fatalf("now = %d after Stop, want 15", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want the 20 and 30 events preserved", e.Pending())
	}
	// Resuming past the stop still honours the deadline semantics: the
	// remaining events fire and the clock lands on the deadline.
	if end := e.RunUntil(100); end != 100 {
		t.Fatalf("resumed RunUntil = %d, want 100", end)
	}
}

// TestEngineRunUntilStopAtDeadlineBoundary checks Stop fired by the last
// event before the deadline also pins the clock to that event.
func TestEngineRunUntilStopAtDeadlineBoundary(t *testing.T) {
	e := NewEngine()
	e.Schedule(40, func() { e.Stop() })
	e.Schedule(60, func() {})
	if end := e.RunUntil(50); end != 40 {
		t.Fatalf("RunUntil = %d, want 40 (stopped)", end)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7 preserved", e.Pending())
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine clock matches each event's timestamp when it runs.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range raw {
			d := Time(d)
			e.Schedule(d, func() {
				if e.Now() != d {
					t.Errorf("clock %d != event time %d", e.Now(), d)
				}
				times = append(times, d)
			})
		}
		e.Run()
		if len(times) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving schedules from inside running events preserves
// global time order.
func TestEngineNestedScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	var last Time = -1
	violations := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		if e.Now() < last {
			violations++
		}
		last = e.Now()
		if depth <= 0 {
			return
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			d := Time(rng.Intn(1000))
			e.Schedule(d, func() { spawn(depth - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		e.Schedule(Time(rng.Intn(100)), func() { spawn(4) })
	}
	e.Run()
	if violations != 0 {
		t.Fatalf("%d time-order violations", violations)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); !approx.Equal(s, 2) {
		t.Errorf("Seconds = %v", s)
	}
	if ms := (5 * Millisecond).Millis(); !approx.Equal(ms, 5) {
		t.Errorf("Millis = %v", ms)
	}
	if us := (7 * Microsecond).Micros(); !approx.Equal(us, 7) {
		t.Errorf("Micros = %v", us)
	}
}

func TestPreemptibleBasic(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 5)
	var order []string
	p.Use(300, func() { order = append(order, "prog") })
	// A priority read arrives mid-program.
	e.Schedule(100, func() {
		p.UsePriority(65, func() { order = append(order, "read") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "read" || order[1] != "prog" {
		t.Fatalf("order = %v", order)
	}
	// Timeline: prog runs 100, read 100..165, prog resumes with 200
	// remaining + 5 overhead → ends at 370.
	if e.Now() != 370 {
		t.Fatalf("end = %d, want 370", e.Now())
	}
	if p.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", p.Preemptions())
	}
}

func TestPreemptibleHighDoesNotPreemptHigh(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 0)
	var ends []Time
	p.UsePriority(100, func() { ends = append(ends, e.Now()) })
	e.Schedule(10, func() {
		p.UsePriority(100, func() { ends = append(ends, e.Now()) })
	})
	e.Run()
	if ends[0] != 100 || ends[1] != 200 {
		t.Fatalf("ends = %v", ends)
	}
	if p.Preemptions() != 0 {
		t.Fatal("high preempted high")
	}
}

func TestPreemptiblePriorityQueueJumpsLow(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 0)
	var order []string
	p.Use(100, func() { order = append(order, "a") })
	p.Use(100, func() { order = append(order, "b") })
	e.Schedule(10, func() {
		p.UsePriority(10, func() { order = append(order, "hi") })
	})
	e.Run()
	// hi suspends a, finishes, a resumes, then b.
	want := []string{"hi", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPreemptibleDoubleSuspend(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 2)
	var progEnd Time
	p.Use(300, func() { progEnd = e.Now() })
	e.Schedule(50, func() { p.UsePriority(10, nil) })
	e.Schedule(100, func() { p.UsePriority(10, nil) })
	e.Run()
	// Two suspends: total = 300 + 2×10 + 2×2 overhead = 324.
	if progEnd != 324 {
		t.Fatalf("program end = %d, want 324", progEnd)
	}
	if p.Preemptions() != 2 {
		t.Fatalf("preemptions = %d", p.Preemptions())
	}
}

func TestPreemptibleUtilization(t *testing.T) {
	e := NewEngine()
	p := NewPreemptible(e, "plane", 0)
	p.Use(100, nil)
	e.Schedule(200, func() {})
	e.Run()
	if u := p.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	if p.Busy() {
		t.Fatal("still busy")
	}
}

func TestPreemptibleNegativeOverheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPreemptible(NewEngine(), "bad", -1)
}

// TestTimeScaleRounding documents Scale's rounding contract: half away
// from zero, symmetric for negative durations, with sub-nanosecond results
// rounding to the nearest whole tick rather than flushing to zero.
func TestTimeScaleRounding(t *testing.T) {
	cases := []struct {
		t    Time
		k    float64
		want Time
	}{
		{100, 1.0, 100},
		{100, 0.5, 50},
		{3, 0.5, 2}, // 1.5 rounds up (away from zero), not down to 1
		{1, 0.5, 1}, // 0.5 rounds away from zero, not to 0
		{1, 0.4, 0}, // 0.4 is nearer zero
		{1, 0.6, 1}, // sub-nanosecond result keeps the nearer tick
		{-100, 0.5, -50},
		{-3, 0.5, -2}, // -1.5 rounds to -2: symmetric with +1.5
		{-1, 0.5, -1}, // -0.5 rounds away from zero
		{-1, 0.4, 0},
		{7, 1.0 / 3.0, 2},            // 2.33 truncates and rounds identically
		{8, 1.0 / 3.0, 3},            // 2.67 rounds up where truncation said 2
		{1e9, 1.0000000005, 1e9 + 1}, // half-tick drift at second scale is kept
	}
	for _, c := range cases {
		if got := c.t.Scale(c.k); got != c.want {
			t.Errorf("Time(%d).Scale(%v) = %d, want %d", c.t, c.k, got, c.want)
		}
	}
}

// TestTimeScaleUnbiased shows why Scale rounds: over a spread of odd
// durations the truncating version drifted systematically short, while
// round-half-away-from-zero centres the accumulated error near zero.
func TestTimeScaleUnbiased(t *testing.T) {
	const k = 1.0 / 7.0
	var roundedSum, truncatedSum, exactSum float64
	for d := Time(1); d <= 1000; d++ {
		roundedSum += float64(d.Scale(k))
		truncatedSum += float64(Time(float64(d) * k))
		exactSum += float64(d) * k
	}
	if drift := exactSum - roundedSum; drift < -1 || drift > 1 {
		t.Fatalf("rounded scaling drifts by %v ns over 1000 samples", drift)
	}
	if drift := exactSum - truncatedSum; drift < 100 {
		t.Fatalf("truncation drift %v unexpectedly small; audit premise broken", drift)
	}
}
