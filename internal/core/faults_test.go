package core

import (
	"reflect"
	"testing"

	"repro/internal/dnn"
	"repro/internal/fault"
)

// stormSpec is a fault storm dense enough that every kind fires inside a
// 256-unit simulation window (sim windows are sub-millisecond to a few
// milliseconds; rates are per second of simulated time).
func stormSpec() fault.Spec {
	return fault.Spec{
		Seed:            3,
		PowerLossPerSec: 50_000,
		DieFailPerSec:   20_000,
		ECCPerSec:       100_000,
		HorizonMs:       0.5,
	}
}

func TestFaultStormAccounting(t *testing.T) {
	for _, sys := range []string{"optimstore", "hostoffload", "ctrlisp"} {
		cfg := testConfig(dnn.GPT13B())
		cfg.Fault = stormSpec()
		cfg.Checkpoint = fault.CheckpointInPlace
		r := mustRun(t, sys, cfg)
		if r.PowerLossFaults == 0 || r.DieFailFaults == 0 || r.ECCFaults == 0 {
			t.Fatalf("%s: storm fired pl=%d df=%d ecc=%d; want all kinds",
				sys, r.PowerLossFaults, r.DieFailFaults, r.ECCFaults)
		}
		if r.CheckpointPolicy != "inplace" {
			t.Fatalf("%s: policy %q", sys, r.CheckpointPolicy)
		}
		if r.CheckpointTime <= 0 || r.CheckpointProgramBytes <= 0 {
			t.Fatalf("%s: in-place checkpoint priced at %v / %d B", sys, r.CheckpointTime, r.CheckpointProgramBytes)
		}
		if r.RecoveryTime <= 0 || r.RecoveryProgramBytes <= 0 {
			t.Fatalf("%s: terminal faults fired but recovery priced at %v / %d B",
				sys, r.RecoveryTime, r.RecoveryProgramBytes)
		}
		if r.EffectiveStepTime() <= r.StepTime {
			t.Fatalf("%s: effective step %v not above step %v", sys, r.EffectiveStepTime(), r.StepTime)
		}
		// Identical seed and config reproduce the identical faulted report.
		if again := mustRun(t, sys, cfg); !reflect.DeepEqual(r, again) {
			t.Fatalf("%s: faulted run not deterministic:\n%+v\n%+v", sys, r, again)
		}
	}
}

// TestLateFaultsDoNotPerturb is the core-level metamorphic check: a run
// whose entire fault window lies beyond completion produces a report
// deep-equal to the fault-free run's.
func TestLateFaultsDoNotPerturb(t *testing.T) {
	for _, sys := range []string{"optimstore", "hostoffload", "ctrlisp"} {
		base := testConfig(dnn.GPT13B())
		faulted := base
		// Simulated windows are milliseconds; 10 s is beyond any of them.
		faulted.Fault = fault.Spec{
			Seed: 5, PowerLossPerSec: 1000, DieFailPerSec: 1000, ECCPerSec: 1000,
			StartMs: 10_000, HorizonMs: 10_100,
		}
		r0 := mustRun(t, sys, base)
		r1 := mustRun(t, sys, faulted)
		if !reflect.DeepEqual(r0, r1) {
			t.Fatalf("%s: late faults perturbed the run:\n%+v\n%+v", sys, r0, r1)
		}
	}
}

// TestCheckpointPolicyComparison pins the policy trade the experiment
// rows report: the checkpoint policy is pure accounting, so the same seed
// fires the same faults under every policy; in-place checkpoints are
// cheaper per step but pay NAND programs, host-pull writes nothing
// device-side.
func TestCheckpointPolicyComparison(t *testing.T) {
	run := func(p fault.Policy) *Report {
		cfg := testConfig(dnn.GPT13B())
		cfg.Fault = stormSpec()
		cfg.Checkpoint = p
		return mustRun(t, "optimstore", cfg)
	}
	none := run(fault.CheckpointNone)
	inplace := run(fault.CheckpointInPlace)
	hostpull := run(fault.CheckpointHostPull)

	for _, r := range []*Report{inplace, hostpull} {
		if r.PowerLossFaults != none.PowerLossFaults ||
			r.DieFailFaults != none.DieFailFaults ||
			r.ECCFaults != none.ECCFaults {
			t.Fatalf("policy changed the firing set: %s fired pl=%d df=%d ecc=%d, none fired pl=%d df=%d ecc=%d",
				r.CheckpointPolicy, r.PowerLossFaults, r.DieFailFaults, r.ECCFaults,
				none.PowerLossFaults, none.DieFailFaults, none.ECCFaults)
		}
		if r.SimTime != none.SimTime {
			t.Fatalf("policy %s perturbed the simulation: %v vs %v", r.CheckpointPolicy, r.SimTime, none.SimTime)
		}
	}
	if none.CheckpointTime != 0 || none.CheckpointProgramBytes != 0 {
		t.Fatalf("no-checkpoint policy priced a checkpoint: %v / %d B", none.CheckpointTime, none.CheckpointProgramBytes)
	}
	if inplace.CheckpointTime >= hostpull.CheckpointTime {
		t.Fatalf("in-place checkpoint %v not cheaper than host-pull %v", inplace.CheckpointTime, hostpull.CheckpointTime)
	}
	if inplace.CheckpointProgramBytes == 0 || hostpull.CheckpointProgramBytes != 0 {
		t.Fatalf("WAF cost: inplace %d B, hostpull %d B", inplace.CheckpointProgramBytes, hostpull.CheckpointProgramBytes)
	}
	// Power-loss recovery: in-place restores die-internally and wins.
	if inplace.RecoveryTime >= none.RecoveryTime {
		t.Fatalf("in-place recovery %v not cheaper than checkpoint-free %v", inplace.RecoveryTime, none.RecoveryTime)
	}
}

// TestGPUResidentFaultAccounting checks the analytic reference prices a
// power-loss storm (PCIe re-stream plus redone work) without an SSD.
func TestGPUResidentFaultAccounting(t *testing.T) {
	cfg := testConfig(dnn.BERTLarge())
	cfg.Fault = fault.Spec{Seed: 2, PowerLossPerSec: 100_000, HorizonMs: 50}
	cfg.Checkpoint = fault.CheckpointHostPull
	r := mustRun(t, "gpuresident", cfg)
	if !r.Feasible {
		t.Fatal("BERT-Large should fit GPU memory")
	}
	if r.PowerLossFaults == 0 {
		t.Fatalf("no power-loss events inside the %v step", r.OptStepTime)
	}
	if r.DieFailFaults != 0 || r.ECCFaults != 0 {
		t.Fatalf("SSD fault kinds counted without an SSD: df=%d ecc=%d", r.DieFailFaults, r.ECCFaults)
	}
	if r.RecoveryTime <= 0 || r.CheckpointTime <= 0 {
		t.Fatalf("storm priced at recovery=%v checkpoint=%v", r.RecoveryTime, r.CheckpointTime)
	}
	if r.RecoveryProgramBytes != 0 {
		t.Fatalf("analytic reference programmed %d NAND bytes", r.RecoveryProgramBytes)
	}
}
