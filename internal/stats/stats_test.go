package stats

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/approx"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist("lat")
	for _, v := range []float64{3, 1, 2} {
		h.Add(v)
	}
	if h.Count() != 3 || !approx.Equal(h.Sum(), 6) {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if !approx.Equal(h.Mean(), 2) {
		t.Fatalf("mean=%v", h.Mean())
	}
	if !approx.Equal(h.Min(), 1) || !approx.Equal(h.Max(), 3) {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if h.Name() != "lat" {
		t.Fatal("name")
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist("e")
	if !approx.Equal(h.Mean(), 0) || !approx.Equal(h.Min(), 0) || !approx.Equal(h.Max(), 0) ||
		!approx.Equal(h.Percentile(50), 0) || !approx.Equal(h.StdDev(), 0) {
		t.Fatal("empty hist should return zeros")
	}
}

func TestHistPercentile(t *testing.T) {
	h := NewHist("p")
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(0); !approx.Equal(p, 1) {
		t.Fatalf("p0=%v", p)
	}
	if p := h.Percentile(100); !approx.Equal(p, 100) {
		t.Fatalf("p100=%v", p)
	}
	if p := h.Percentile(50); math.Abs(p-50.5) > 0.01 {
		t.Fatalf("p50=%v", p)
	}
}

// TestHistPercentileLinearInterpolation pins the interpolation behaviour
// the doc comment promises: linear between the two closest ranks at
// p/100·(n-1), not nearest-rank. A nearest-rank implementation would fail
// every sub-case here that lands between samples.
func TestHistPercentileLinearInterpolation(t *testing.T) {
	// Known sample set, added out of order to exercise the lazy sort.
	h := NewHist("li")
	for _, v := range []float64{40, 10, 50, 20, 30} {
		h.Add(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 10},
		{25, 20},   // exact rank 1
		{50, 30},   // exact middle sample
		{99, 49.6}, // rank 3.96: 40 + 0.96×(50−40)
		{100, 50},
		{10, 14},   // rank 0.4: 10 + 0.4×(20−10)
		{62.5, 35}, // rank 2.5: halfway between 30 and 40
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}

	// Two samples: p50 must be their midpoint (nearest-rank would return
	// one of the samples).
	h2 := NewHist("li2")
	h2.Add(1)
	h2.Add(2)
	if got := h2.Percentile(50); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 of {1,2} = %v, want 1.5", got)
	}
}

func TestHistStdDev(t *testing.T) {
	h := NewHist("s")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if sd := h.StdDev(); math.Abs(sd-2) > 1e-9 {
		t.Fatalf("stddev=%v, want 2", sd)
	}
}

func TestHistSummary(t *testing.T) {
	h := NewHist("x")
	h.Add(1)
	if !strings.Contains(h.Summary(), "x: n=1") {
		t.Fatalf("summary = %q", h.Summary())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestHistPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHist("q")
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Add(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev-1e-9 || v < h.Min()-1e-9 || v > h.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345678.0)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "alpha") {
		t.Fatalf("text:\n%s", s)
	}
	if !strings.Contains(s, "1.235e+07") {
		t.Fatalf("big float formatting missing: %s", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| name | value |") {
		t.Fatalf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv:\n%s", csv)
	}
	if tb.NumRows() != 2 || tb.Title() != "demo" {
		t.Fatal("accessors")
	}
	if got := tb.Row(0)[0]; got != "alpha" {
		t.Fatalf("Row(0) = %v", tb.Row(0))
	}
	if h := tb.Headers(); len(h) != 2 || h[0] != "name" {
		t.Fatalf("Headers = %v", h)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Fatalf("csv quoting:\n%s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.500",
		150:     "150.0",
		2e7:     "2.000e+07",
		0.00005: "5.000e-05",
	}
	//simlint:allow maporder table-driven cases, each asserted independently
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("speedup", "params", "x")
	a := f.AddSeries("optimstore")
	b := f.AddSeries("baseline")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 1)
	// baseline has no point at x=2: cell must be "-"
	tb := f.Table()
	if tb.NumRows() != 2 {
		t.Fatalf("rows=%d", tb.NumRows())
	}
	if row := tb.Row(1); row[2] != "-" {
		t.Fatalf("missing point cell = %q", row[2])
	}
	if y, ok := a.YAt(2); !ok || !approx.Equal(y, 20) {
		t.Fatalf("YAt: %v %v", y, ok)
	}
	if _, ok := b.YAt(99); ok {
		t.Fatal("YAt found nonexistent x")
	}
	if !strings.Contains(f.String(), "speedup") {
		t.Fatal("figure String missing title")
	}
}

func TestFigureXValuesSorted(t *testing.T) {
	f := NewFigure("f", "x", "y")
	s := f.AddSeries("s")
	for _, x := range []float64{5, 1, 3} {
		s.Add(x, x)
	}
	xs := f.xValues()
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("xValues not sorted: %v", xs)
	}
}

func TestASCIIPlot(t *testing.T) {
	f := NewFigure("plot", "x", "y")
	s := f.AddSeries("s")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := f.ASCIIPlot(40, 10)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "*") {
		t.Fatalf("plot:\n%s", out)
	}
	empty := NewFigure("e", "x", "y").ASCIIPlot(40, 10)
	if !strings.Contains(empty, "empty") {
		t.Fatalf("empty plot: %q", empty)
	}
	// Degenerate single point must not divide by zero.
	g := NewFigure("one", "x", "y")
	g.AddSeries("s").Add(1, 1)
	if out := g.ASCIIPlot(0, 0); out == "" {
		t.Fatal("single point plot empty")
	}
}

func TestFigureXRange(t *testing.T) {
	f := NewFigure("r", "x", "y")
	if _, _, ok := f.XRange(); ok {
		t.Fatal("empty figure has a range")
	}
	s := f.AddSeries("s")
	s.Add(5, 1)
	s.Add(2, 1)
	s.Add(9, 1)
	min, max, ok := f.XRange()
	if !ok || !approx.Equal(min, 2) || !approx.Equal(max, 9) {
		t.Fatalf("range = %v..%v %v", min, max, ok)
	}
}

// TestHistPercentileBoundariesAndNaN is the table-driven pin of the
// hardened edge cases: p outside [0,100] clamps to the exact min/max with
// no interpolation, a NaN p propagates as NaN, and NaN samples are
// dropped at Add so Min/Max/Sum/Percentile stay finite.
func TestHistPercentileBoundariesAndNaN(t *testing.T) {
	h := NewHist("edge")
	for _, v := range []float64{10, 20, 30, 40} {
		h.Add(v)
	}
	cases := []struct {
		name string
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"p=0 is exact min", 0, 10},
		{"p=100 is exact max", 100, 40},
		{"negative p clamps to min", -25, 10},
		{"p>100 clamps to max", 250, 40},
		{"-Inf clamps to min", math.Inf(-1), 10},
		{"+Inf clamps to max", math.Inf(1), 40},
		{"just inside 0 interpolates", 1e-9, 10},
		{"just inside 100 interpolates", 100 - 1e-9, 40},
		{"NaN p propagates", math.NaN(), math.NaN()},
	}
	for _, c := range cases {
		got := h.Percentile(c.p)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Percentile(%v) = %v, want NaN", c.name, c.p, got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s: Percentile(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}

	// NaN p on an empty histogram still returns the documented 0 — the
	// no-samples case wins before p is even inspected.
	//simlint:allow floateq the empty case returns the literal constant 0, bit-exact
	if got := NewHist("empty").Percentile(math.NaN()); got != 0 {
		t.Errorf("empty Percentile(NaN) = %v, want 0", got)
	}
}

// TestHistNaNSamplesDropped checks a NaN sample never reaches the
// summaries: count, sum, min, max and percentiles are identical to a
// histogram that never saw it.
func TestHistNaNSamplesDropped(t *testing.T) {
	h := NewHist("nan")
	h.Add(5)
	h.Add(math.NaN())
	h.Add(1)
	h.Add(math.NaN())
	h.Add(3)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (NaN samples must be dropped)", h.Count())
	}
	if !approx.Equal(h.Sum(), 9) || !approx.Equal(h.Mean(), 3) {
		t.Fatalf("sum=%v mean=%v", h.Sum(), h.Mean())
	}
	if !approx.Equal(h.Min(), 1) || !approx.Equal(h.Max(), 5) {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if math.IsNaN(h.Percentile(p)) {
			t.Fatalf("Percentile(%v) is NaN", p)
		}
	}
	// All-NaN input behaves exactly like an empty histogram.
	all := NewHist("allnan")
	all.Add(math.NaN())
	//simlint:allow floateq empty-histogram summaries return the literal constant 0, bit-exact
	if all.Count() != 0 || all.Min() != 0 || all.Max() != 0 || all.Percentile(50) != 0 {
		t.Fatal("all-NaN histogram should match the empty histogram")
	}
}
