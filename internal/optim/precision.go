package optim

import "fmt"

// Precision selects the training numeric regime. It determines how many
// bytes per parameter cross each interface — the quantity every timing and
// energy result in the reproduction hinges on.
type Precision int

// Supported precision regimes.
const (
	// FP32 keeps everything in float32: weights, gradients, state.
	FP32 Precision = iota
	// Mixed16 is the standard large-model regime: FP16 gradients arrive,
	// FP32 master weights and moments live in storage, FP16 weights are
	// produced for the next forward pass. (BF16 has identical byte counts.)
	Mixed16
	// Q8State is Mixed16 with block-wise 8-bit quantized optimizer moments
	// (Dettmers et al.): resident state shrinks 4×, cutting NAND program
	// traffic and wear. Master weights stay FP32. See optim.Adam8bit for
	// the verified algorithm.
	Q8State
)

// String names the regime.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32"
	case Mixed16:
		return "Mixed16"
	case Q8State:
		return "Mixed16+Q8state"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// StateWordsFor returns the float32 state words per parameter the
// algorithm keeps beyond the master weight, without constructing an
// optimizer.
func StateWordsFor(kind Kind) int {
	switch kind {
	case SGD:
		return 0
	case Momentum, Nesterov, Adagrad, RMSProp:
		return 1
	case Adam, AdamW, LAMB, AdamA:
		return 2
	case AMSGrad:
		return 3
	default:
		panic(fmt.Sprintf("optim: unknown kind %d", int(kind)))
	}
}

// QuantBlockSize is the block length of the block-wise 8-bit state
// quantization (Dettmers et al.): one float32 absmax scale per state word
// per block of this many parameters. Adam8bit and the Q8State spec share
// it so the concrete optimizer and the traffic accounting can never
// disagree about the scale overhead.
const QuantBlockSize = 256

// StateSpec describes the per-parameter byte footprint of one
// (optimizer, precision) pair across every interface of the system.
type StateSpec struct {
	Kind      Kind
	Precision Precision

	// MasterBytes is the resident master weight (always FP32: 4).
	MasterBytes int
	// StateBytes is the resident optimizer state (moments etc.).
	StateBytes int
	// ScaleBytesPerParam is the amortised per-parameter overhead of
	// block-wise quantization metadata (the float32 absmax scales of
	// Q8State: one per state word per QuantBlockSize parameters). Zero
	// for unquantized precisions. Fractional, so footprint methods that
	// include it return float64.
	ScaleBytesPerParam float64
	// GradBytes is the per-parameter gradient arriving from the host.
	GradBytes int
	// WeightOutBytes is the per-parameter working-precision weight
	// returned to the host for the next forward pass.
	WeightOutBytes int
}

// SpecFor computes the byte footprint for an (optimizer, precision) pair.
func SpecFor(kind Kind, p Precision) StateSpec {
	s := StateSpec{
		Kind:        kind,
		Precision:   p,
		MasterBytes: 4,
		StateBytes:  4 * StateWordsFor(kind),
	}
	switch p {
	case FP32:
		s.GradBytes = 4
		s.WeightOutBytes = 4
	case Mixed16:
		s.GradBytes = 2
		s.WeightOutBytes = 2
	case Q8State:
		s.GradBytes = 2
		s.WeightOutBytes = 2
		s.StateBytes = StateWordsFor(kind) // 1 byte per state word
		// One float32 absmax per state word per quantization block —
		// the same accounting Adam8bit.StateBytesPerParam makes.
		s.ScaleBytesPerParam = float64(4*StateWordsFor(kind)) / QuantBlockSize
	default:
		panic(fmt.Sprintf("optim: unknown precision %d", int(p)))
	}
	return s
}

// WithAccum returns the spec with n gradient-accumulation passes per
// step priced in: AdamA (Zhang et al.) folds each micro-batch gradient
// into the resident moments, so a step of n micro-batches moves n
// gradients' worth of traffic while the resident state is still read and
// written once. n below 1 is treated as 1.
func (s StateSpec) WithAccum(n int) StateSpec {
	if n > 1 {
		s.GradBytes *= n
	}
	return s
}

// ResidentBytes is the per-parameter footprint living in storage,
// including fractional quantization-scale overhead.
func (s StateSpec) ResidentBytes() float64 {
	return float64(s.MasterBytes+s.StateBytes) + s.ScaleBytesPerParam
}

// HostTrafficBytes is the per-parameter traffic that must cross the
// host↔device interface per step when the update happens in storage:
// gradient in, working-precision weight out.
func (s StateSpec) HostTrafficBytes() int { return s.GradBytes + s.WeightOutBytes }

// OffloadTrafficBytes is the per-parameter host↔device traffic per step
// when the update happens at the host: the entire resident state is read
// and written back, gradients stay on the host, and the working-precision
// weight is produced host-side for free.
func (s StateSpec) OffloadTrafficBytes() float64 { return 2 * s.ResidentBytes() }

// MediaRMWBytes is the per-parameter NAND traffic of the in-storage
// read-modify-write: resident state read once and programmed once
// (times the number of kernel passes for multi-pass optimizers).
func (s StateSpec) MediaRMWBytes(passes int) float64 {
	return s.ResidentBytes()*float64(passes) + s.ResidentBytes()
}
