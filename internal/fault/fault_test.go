package fault

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/ssd"
)

func testRates() Rates {
	return Rates{
		PowerLossPerSec: 200,
		DieFailPerSec:   100,
		ECCPerSec:       2000,
		Start:           0,
		Horizon:         20 * sim.Millisecond,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, testRates())
	b := Schedule(42, testRates())
	if len(a) == 0 {
		t.Fatal("empty plan at these rates")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed and rates produced different plans")
	}
	// Byte-identical, not just structurally equal.
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("plan rendering differs between identical generations")
	}
	if c := Schedule(43, testRates()); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestSchedulePropertiesAndIndependence(t *testing.T) {
	r := testRates()
	plan := Schedule(7, r)
	counts := map[Kind]int{}
	for i, ev := range plan {
		if ev.At < r.Start || ev.At >= r.Horizon {
			t.Fatalf("event %d at %v outside [%v, %v)", i, ev.At, r.Start, r.Horizon)
		}
		if i > 0 && plan[i-1].At > ev.At {
			t.Fatalf("plan unsorted at %d: %v after %v", i, ev.At, plan[i-1].At)
		}
		counts[ev.Kind]++
	}
	for _, k := range []Kind{PowerLoss, DieFailure, ECCExhaust} {
		if counts[k] == 0 {
			t.Fatalf("no %v events despite positive rate", k)
		}
	}

	// Per-kind streams are independent: zeroing one rate leaves the other
	// kinds' events untouched.
	filter := func(p Plan, k Kind) Plan {
		var out Plan
		for _, ev := range p {
			if ev.Kind == k {
				out = append(out, ev)
			}
		}
		return out
	}
	noDF := r
	noDF.DieFailPerSec = 0
	reduced := Schedule(7, noDF)
	if len(filter(reduced, DieFailure)) != 0 {
		t.Fatal("zero rate still scheduled events")
	}
	for _, k := range []Kind{PowerLoss, ECCExhaust} {
		if !reflect.DeepEqual(filter(plan, k), filter(reduced, k)) {
			t.Fatalf("%v stream perturbed by removing die failures", k)
		}
	}

	if got := Schedule(7, Rates{}); len(got) != 0 {
		t.Fatalf("zero rates scheduled %d events", len(got))
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=9,pl=2,df=1,ecc=50,start=0.5,horizon=100")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 9, PowerLossPerSec: 2, DieFailPerSec: 1, ECCPerSec: 50, StartMs: 0.5, HorizonMs: 100}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	if !spec.Enabled() {
		t.Fatal("spec should be enabled")
	}
	r := spec.Rates()
	if r.Horizon != 100*sim.Millisecond || r.Start != sim.Time(500*sim.Microsecond) {
		t.Fatalf("rates window %v-%v", r.Start, r.Horizon)
	}

	if s, err := ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{"pl", "pl=x", "bogus=1", "pl=1,horizon=0,start=5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"":         CheckpointNone,
		"none":     CheckpointNone,
		"inplace":  CheckpointInPlace,
		"odp":      CheckpointInPlace,
		"hostpull": CheckpointHostPull,
		"host":     CheckpointHostPull,
	}
	//simlint:allow maporder each case is checked independently
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy parsed")
	}
	// Round trip through String.
	for _, p := range []Policy{CheckpointNone, CheckpointInPlace, CheckpointHostPull} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
}

func TestCosts(t *testing.T) {
	c := Costs{
		HostStream: 80 * sim.Millisecond,
		InStorage:  10 * sim.Millisecond,
		Scan:       2 * sim.Millisecond,
		Dies:       8,
	}
	if got := c.CheckpointTime(CheckpointNone); got != 0 {
		t.Fatalf("no-checkpoint cost %v", got)
	}
	if c.CheckpointTime(CheckpointInPlace) >= c.CheckpointTime(CheckpointHostPull) {
		t.Fatal("in-place checkpoint should be cheaper than host-pull here")
	}
	// Power loss: in-place restores faster than streaming from the host.
	if c.RestoreTime(CheckpointInPlace, PowerLoss) >= c.RestoreTime(CheckpointHostPull, PowerLoss) {
		t.Fatal("in-place power-loss restore should beat host-pull")
	}
	if got := c.RestoreTime(CheckpointNone, PowerLoss); got != c.Scan+c.HostStream {
		t.Fatalf("no-checkpoint power-loss restore %v", got)
	}
	// Die failure: host-pull only re-streams the lost shard and wins.
	if c.RestoreTime(CheckpointHostPull, DieFailure) >= c.RestoreTime(CheckpointHostPull, PowerLoss) {
		t.Fatal("die-failure host-pull restore should be cheaper than full re-stream")
	}
	if got := c.RestoreTime(CheckpointHostPull, DieFailure); got != c.Scan+c.HostStream/8 {
		t.Fatalf("die-failure host-pull restore %v", got)
	}
	// ECC exhaustion is non-terminal.
	for _, p := range []Policy{CheckpointNone, CheckpointInPlace, CheckpointHostPull} {
		if got := c.RestoreTime(p, ECCExhaust); got != 0 {
			t.Fatalf("ecc restore under %v = %v", p, got)
		}
	}
}

func smallConfig() ssd.Config {
	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = 8
	n.PagesPerBlock = 4
	n.PlanesPerDie = 2
	return ssd.Config{
		Channels:          2,
		DiesPerChannel:    2,
		Nand:              n,
		OverProvision:     0.25,
		GCLowWater:        2,
		GCHighWater:       3,
		HotColdSeparation: true,
		CachePages:        16,
		DRAMPageLatency:   2 * sim.Microsecond,
		CmdLatency:        5 * sim.Microsecond,
	}
}

// runWorkload drives a small deterministic write/update mix and drains.
func runWorkload(eng *sim.Engine, dev *ssd.Device) {
	logical := dev.Config().LogicalPages()
	span := logical / 2
	for i := int64(0); i < span; i++ {
		dev.Write(i, nil)
	}
	for round := 0; round < 3; round++ {
		for i := int64(0); i < span; i += 2 {
			i := i
			dev.Write(i, nil)
		}
	}
	done := false
	dev.Drain(func() { done = true })
	eng.Run()
	if !done {
		panic("workload did not drain")
	}
}

// TestInjectorObservationalAndLive checks the semantics split: terminal
// kinds record state without perturbing the device, ECC exhaustion drives
// real scrub traffic and retry recovery.
func TestInjectorObservationalAndLive(t *testing.T) {
	eng := sim.NewEngine()
	dev := ssd.NewDevice(eng, smallConfig())
	// Preload a few pages so the early ECC event finds a mapped victim —
	// workload writes only commit at program completion.
	for i := int64(100); i < 108; i++ {
		dev.Preload(i)
	}
	var inj Injector
	plan := Plan{
		{Kind: PowerLoss, At: 30 * sim.Microsecond, Pick: 1},
		{Kind: DieFailure, At: 40 * sim.Microsecond, Pick: 7},
		{Kind: ECCExhaust, At: 50 * sim.Microsecond, Pick: 3},
	}
	inj.Arm(eng, dev, plan)
	runWorkload(eng, dev)
	inj.Disarm()

	fired := inj.Fired()
	if len(fired) != 3 {
		t.Fatalf("fired %d records, want 3", len(fired))
	}
	if fired[0].Kind != PowerLoss || fired[0].DirtyPages <= 0 {
		t.Fatalf("power loss record %+v: expected dirty pages mid-workload", fired[0])
	}
	if fired[1].Kind != DieFailure {
		t.Fatalf("record 1 %+v", fired[1])
	}
	geo := dev.Geometry()
	if fired[1].Channel < 0 || fired[1].Channel >= geo.Channels ||
		fired[1].Die < 0 || fired[1].Die >= geo.DiesPerChannel {
		t.Fatalf("die failure picked %d/%d outside topology", fired[1].Channel, fired[1].Die)
	}
	if fired[2].Kind != ECCExhaust || fired[2].LPA < 0 {
		t.Fatalf("ecc record %+v: expected a mapped victim", fired[2])
	}
	s := dev.Stats()
	if s.ScrubReads != 1 {
		t.Fatalf("scrub reads %d, want 1", s.ScrubReads)
	}
	if s.RecoveredErrors == 0 {
		t.Fatal("ECC exhaustion forced no retry recovery")
	}
	if err := dev.FTL().CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestDisarmedFaultsAreFree is the device-level metamorphic check: a run
// whose armed faults all land after completion is byte-identical (event
// count, clock, stats) to a fault-free run.
func TestDisarmedFaultsAreFree(t *testing.T) {
	run := func(arm bool) (uint64, sim.Time, ssd.Stats) {
		eng := sim.NewEngine()
		dev := ssd.NewDevice(eng, smallConfig())
		var inj Injector
		if arm {
			// Far beyond any plausible end of the workload.
			plan := Schedule(1, Rates{
				PowerLossPerSec: 500, DieFailPerSec: 500, ECCPerSec: 500,
				Start: 10 * sim.Second, Horizon: 11 * sim.Second,
			})
			if len(plan) == 0 {
				t.Fatal("empty late plan")
			}
			inj.Arm(eng, dev, plan)
		}
		logical := dev.Config().LogicalPages()
		for i := int64(0); i < logical/2; i++ {
			dev.Write(i, nil)
		}
		var fired uint64
		var now sim.Time
		var stats ssd.Stats
		dev.Drain(func() {
			inj.Disarm()
			fired = eng.Fired()
			now = eng.Now()
			stats = dev.Stats()
		})
		eng.Run()
		if len(inj.Fired()) != 0 {
			t.Fatal("late faults fired before completion")
		}
		return fired, now, stats
	}
	f0, n0, s0 := run(false)
	f1, n1, s1 := run(true)
	if f0 != f1 || n0 != n1 || !reflect.DeepEqual(s0, s1) {
		t.Fatalf("faulted-after-completion run diverged: fired %d/%d now %v/%v stats %+v vs %+v",
			f0, f1, n0, n1, s0, s1)
	}
}
