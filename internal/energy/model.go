// Package energy converts operation counts from the simulators into energy
// figures. Constants are literature-ballpark per-byte/per-op energies for
// ~2022 hardware; F4 reports the breakdown and the harness sweeps the
// dominant ones, so conclusions rest on ratios rather than absolute pJ.
package energy

import (
	"fmt"

	"repro/internal/odp"
	"repro/internal/units"
)

// Costs is the per-operation energy table, in picojoules.
type Costs struct {
	// NAND media.
	NANDReadPJPerByte    float64 // array sense, per byte of page
	NANDProgramPJPerByte float64 // array program, per byte
	NANDErasePJPerByte   float64 // block erase amortised per byte
	// Interconnects.
	BusPJPerByte  float64 // ONFI channel bus
	PCIePJPerByte float64 // host link, incl. SerDes both ends
	// Memories.
	DRAMPJPerByte float64 // controller / host DRAM access
	HBMPJPerByte  float64 // GPU device memory
	// Compute.
	ODPOpPJ float64 // per scalar op in the on-die unit
	GPUOpPJ float64 // per scalar op on the GPU (amortised)
	CPUOpPJ float64 // per scalar op on a host CPU core
}

// DefaultCosts returns the baseline energy table.
func DefaultCosts() Costs {
	return Costs{
		NANDReadPJPerByte:    15,
		NANDProgramPJPerByte: 250,
		NANDErasePJPerByte:   15,
		BusPJPerByte:         6,
		PCIePJPerByte:        60,
		DRAMPJPerByte:        40,
		HBMPJPerByte:         7,
		ODPOpPJ:              float64(odp.OpEnergyPJ()),
		GPUOpPJ:              1.5,
		CPUOpPJ:              80,
	}
}

// Validate reports the first non-positive constant.
func (c Costs) Validate() error {
	vals := []float64{
		c.NANDReadPJPerByte, c.NANDProgramPJPerByte, c.NANDErasePJPerByte,
		c.BusPJPerByte, c.PCIePJPerByte, c.DRAMPJPerByte, c.HBMPJPerByte,
		c.ODPOpPJ, c.GPUOpPJ, c.CPUOpPJ,
	}
	for i, v := range vals {
		if v <= 0 {
			return fmt.Errorf("energy: constant %d non-positive", i)
		}
	}
	return nil
}

// Breakdown is the energy of one experiment, in joules, split by component.
type Breakdown struct {
	NANDRead    float64
	NANDProgram float64
	NANDErase   float64
	Bus         float64
	PCIe        float64
	DRAM        float64
	HBM         float64
	Compute     float64 // ODP + GPU + CPU kernels
}

// Total sums every component.
func (b Breakdown) Total() float64 {
	return b.NANDRead + b.NANDProgram + b.NANDErase + b.Bus + b.PCIe +
		b.DRAM + b.HBM + b.Compute
}

// Add returns the component-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		NANDRead:    b.NANDRead + o.NANDRead,
		NANDProgram: b.NANDProgram + o.NANDProgram,
		NANDErase:   b.NANDErase + o.NANDErase,
		Bus:         b.Bus + o.Bus,
		PCIe:        b.PCIe + o.PCIe,
		DRAM:        b.DRAM + o.DRAM,
		HBM:         b.HBM + o.HBM,
		Compute:     b.Compute + o.Compute,
	}
}

// Scale returns the breakdown multiplied by k — used to extrapolate a
// simulated sample window to the full parameter count.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		NANDRead:    b.NANDRead * k,
		NANDProgram: b.NANDProgram * k,
		NANDErase:   b.NANDErase * k,
		Bus:         b.Bus * k,
		PCIe:        b.PCIe * k,
		DRAM:        b.DRAM * k,
		HBM:         b.HBM * k,
		Compute:     b.Compute * k,
	}
}

// pj converts picojoules to joules. Constant arithmetic is exact, so this
// is the same float64 as a literal 1e-12.
const pj = 1 / units.PJPerJ

// Accounting input counters; the caller fills what its system touched.
type Activity struct {
	NANDReadBytes    float64
	NANDProgramBytes float64
	NANDEraseBytes   float64
	BusBytes         float64
	PCIeBytes        float64
	DRAMBytes        float64
	HBMBytes         float64
	ODPOps           float64
	GPUOps           float64
	CPUOps           float64
}

// Evaluate converts activity counters into a joule breakdown.
func (c Costs) Evaluate(a Activity) Breakdown {
	return Breakdown{
		NANDRead:    a.NANDReadBytes * c.NANDReadPJPerByte * pj,
		NANDProgram: a.NANDProgramBytes * c.NANDProgramPJPerByte * pj,
		NANDErase:   a.NANDEraseBytes * c.NANDErasePJPerByte * pj,
		Bus:         a.BusBytes * c.BusPJPerByte * pj,
		PCIe:        a.PCIeBytes * c.PCIePJPerByte * pj,
		DRAM:        a.DRAMBytes * c.DRAMPJPerByte * pj,
		HBM:         a.HBMBytes * c.HBMPJPerByte * pj,
		Compute:     (a.ODPOps*c.ODPOpPJ + a.GPUOps*c.GPUOpPJ + a.CPUOps*c.CPUOpPJ) * pj,
	}
}
