package experiments

import (
	"errors"

	"repro/internal/nand"
	"repro/internal/odp"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// simEngine aliases the simulation engine so experiment files read cleanly.
type simEngine = sim.Engine

func newSimEngine() *simEngine { return sim.NewEngine() }

var errWedged = errors.New("experiments: simulation wedged")

// defaultODPWithLanes returns the baseline ODP design point with a
// different lane count (buffer scaled to keep four pages resident).
func defaultODPWithLanes(lanes int) odp.Params {
	p := odp.DefaultParams()
	p.Lanes = lanes
	return p
}

// odpCost evaluates the silicon-cost model.
func odpCost(p odp.Params) odp.Cost { return odp.CostFor(p) }

// regionConfig is the small-device configuration used for steady-state GC
// measurements: same cell type and watermarks as the default SSD, scaled
// geometry so multi-sweep runs stay fast.
func regionConfig(overProvision float64) ssd.Config {
	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = 16
	n.PagesPerBlock = 32
	n.PlanesPerDie = 2
	return ssd.Config{
		Channels:        2,
		DiesPerChannel:  2,
		Nand:            n,
		OverProvision:   overProvision,
		GCLowWater:      2,
		GCHighWater:     3,
		CachePages:      64,
		DRAMPageLatency: 2 * sim.Microsecond,
		CmdLatency:      5 * sim.Microsecond,
	}
}

// newHist builds an unnamed latency histogram.
func newHist() *stats.Hist { return stats.NewHist("lat") }
