package host

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// GPUParams is a roofline description of a training accelerator.
type GPUParams struct {
	Name string
	// PeakTFLOPS is the half-precision tensor throughput.
	PeakTFLOPS float64
	// MFU is the model FLOPs utilisation achieved on real training steps
	// (0.3–0.5 for well-tuned transformer stacks).
	MFU float64
	// HBMGBps is the device memory bandwidth.
	HBMGBps float64
	// MemoryGB is the device memory capacity, which decides whether a
	// model's optimizer state can stay GPU-resident at all.
	MemoryGB float64
}

// A100_40 returns NVIDIA A100-40GB ballpark parameters.
func A100_40() GPUParams {
	return GPUParams{Name: "A100-40GB", PeakTFLOPS: 312, MFU: 0.4, HBMGBps: 1555, MemoryGB: 40}
}

// A100_80 returns NVIDIA A100-80GB ballpark parameters.
func A100_80() GPUParams {
	return GPUParams{Name: "A100-80GB", PeakTFLOPS: 312, MFU: 0.4, HBMGBps: 2039, MemoryGB: 80}
}

// V100 returns NVIDIA V100-32GB ballpark parameters.
func V100() GPUParams {
	return GPUParams{Name: "V100-32GB", PeakTFLOPS: 125, MFU: 0.35, HBMGBps: 900, MemoryGB: 32}
}

// Validate reports the first structural problem.
func (p GPUParams) Validate() error {
	if p.PeakTFLOPS <= 0 || p.MFU <= 0 || p.MFU > 1 || p.HBMGBps <= 0 || p.MemoryGB <= 0 {
		return fmt.Errorf("host: gpu params %+v", p)
	}
	return nil
}

// ComputeTime returns the time to execute the given FLOPs at sustained
// (MFU-derated) throughput.
func (p GPUParams) ComputeTime(flops float64) sim.Time {
	if flops <= 0 {
		return 0
	}
	sec := flops / (p.PeakTFLOPS * units.FLOPSPerTFLOPS * p.MFU)
	return units.Seconds(sec)
}

// MemTime returns the time to stream the given bytes through HBM.
func (p GPUParams) MemTime(bytes float64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	sec := bytes / (p.HBMGBps * units.BytesPerGB)
	return units.Seconds(sec)
}

// KernelTime is the roofline estimate: the slower of compute and memory.
func (p GPUParams) KernelTime(flops, bytes float64) sim.Time {
	c, m := p.ComputeTime(flops), p.MemTime(bytes)
	if c > m {
		return c
	}
	return m
}

// GPU is a simulated accelerator executing one kernel at a time.
type GPU struct {
	params GPUParams
	busy   *sim.Resource
	flops  float64
	bytes  float64
}

// NewGPU builds a GPU on the engine; invalid params panic.
func NewGPU(eng *sim.Engine, p GPUParams) *GPU {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &GPU{params: p, busy: sim.NewResource(eng, p.Name, 1)}
}

// Params returns the GPU description.
func (g *GPU) Params() GPUParams { return g.params }

// Run executes a kernel with the given roofline footprint, then calls done.
func (g *GPU) Run(flops, bytes float64, done func()) {
	g.flops += flops
	g.bytes += bytes
	g.busy.Use(g.params.KernelTime(flops, bytes), done)
}

// Flops returns the cumulative FLOPs executed.
func (g *GPU) Flops() float64 { return g.flops }

// HBMBytes returns the cumulative HBM traffic.
func (g *GPU) HBMBytes() float64 { return g.bytes }

// Utilization returns the busy fraction since simulation start.
func (g *GPU) Utilization() float64 { return g.busy.Utilization() }
