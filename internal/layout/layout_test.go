package layout

import (
	"testing"

	"repro/internal/approx"
	"testing/quick"

	"repro/internal/nand"
	"repro/internal/ssd"
)

func testGeo() ssd.Geometry {
	n := nand.ParamsFor(nand.TLC) // 4 planes per die
	return ssd.GeometryOf(8, 4, n)
}

func mustNew(t *testing.T, comps int, units int64, s Strategy) *Layout {
	t.Helper()
	l, err := New(testGeo(), comps, units, s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRejects(t *testing.T) {
	g := testGeo()
	if _, err := New(g, 0, 10, Colocated); err == nil {
		t.Fatal("zero comps accepted")
	}
	if _, err := New(g, 3, 0, Colocated); err == nil {
		t.Fatal("zero units accepted")
	}
	if _, err := New(g, 3, 10, Strategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLPADecomposeRoundTrip(t *testing.T) {
	l := mustNew(t, 3, 100, Colocated)
	for u := int64(0); u < 100; u++ {
		for c := 0; c < 3; c++ {
			lpa := l.LPA(u, c)
			gu, gc := l.Decompose(lpa)
			if gu != u || gc != c {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", u, c, lpa, gu, gc)
			}
		}
	}
	if l.LogicalPages() != 300 {
		t.Fatalf("logical pages = %d", l.LogicalPages())
	}
}

func TestLPABoundsPanic(t *testing.T) {
	l := mustNew(t, 3, 10, Colocated)
	for _, fn := range []func(){
		func() { l.LPA(10, 0) },
		func() { l.LPA(0, 3) },
		func() { l.Decompose(30) },
		func() { l.Decompose(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access accepted")
				}
			}()
			fn()
		}()
	}
}

func TestColocatedProperties(t *testing.T) {
	l := mustNew(t, 3, 1000, Colocated)
	for u := int64(0); u < 1000; u += 7 {
		p := l.Placement(u)
		if !p.SameDie {
			t.Fatalf("unit %d not on one die", u)
		}
		// 3 comps on a 4-plane die: all on distinct planes.
		if p.DistinctPlanes != 3 {
			t.Fatalf("unit %d distinct planes = %d", u, p.DistinctPlanes)
		}
	}
	if f := l.ColocationFraction(); !approx.Equal(f, 1) {
		t.Fatalf("colocation fraction = %v", f)
	}
}

func TestColocatedBalancesDies(t *testing.T) {
	g := testGeo()
	dies := g.Dies()
	l := mustNew(t, 3, int64(dies*10), Colocated)
	count := make([]int, dies)
	for u := int64(0); u < l.Units(); u++ {
		p := l.Placement(u)
		count[p.HomeChannel*g.DiesPerChannel+p.HomeDie]++
	}
	for d, c := range count {
		if c != 10 {
			t.Fatalf("die %d got %d units, want 10", d, c)
		}
	}
}

func TestSplitNeverColocates(t *testing.T) {
	l := mustNew(t, 3, 1000, SplitByComponent)
	if f := l.ColocationFraction(); !approx.Equal(f, 0) {
		t.Fatalf("split colocation fraction = %v, want 0", f)
	}
}

func TestLinearPartiallyColocates(t *testing.T) {
	l := mustNew(t, 3, 1000, Linear)
	f := l.ColocationFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("linear colocation fraction = %v, want strictly between 0 and 1", f)
	}
}

func TestPlaneMapperMatchesPlacement(t *testing.T) {
	for _, s := range Strategies() {
		l := mustNew(t, 3, 500, s)
		mapper := l.PlaneMapper()
		for u := int64(0); u < 500; u += 13 {
			p := l.Placement(u)
			for c := 0; c < 3; c++ {
				if mapper(l.LPA(u, c)) != p.Planes[c] {
					t.Fatalf("%v: mapper disagrees with placement at (%d,%d)", s, u, c)
				}
			}
		}
	}
}

func TestPlacementHomeDie(t *testing.T) {
	g := testGeo()
	l := mustNew(t, 3, 100, Colocated)
	p := l.Placement(5)
	// Unit 5 → die 5 → channel 1, die 1 with 4 dies/channel.
	if p.HomeChannel != 1 || p.HomeDie != 1 {
		t.Fatalf("home = ch%d/die%d", p.HomeChannel, p.HomeDie)
	}
	_ = g
}

// Property: every strategy places every page inside the geometry, and
// plane indices are stable (pure function).
func TestPlacementInGeometryProperty(t *testing.T) {
	g := testGeo()
	f := func(unitRaw uint16, compRaw, stratRaw uint8) bool {
		comps := int(compRaw%4) + 1
		l, err := New(g, comps, 4096, Strategies()[int(stratRaw)%3])
		if err != nil {
			return false
		}
		unit := int64(unitRaw) % l.Units()
		for c := 0; c < comps; c++ {
			idx := l.PlaneIdx(unit, c)
			if idx < 0 || idx >= g.Planes() {
				return false
			}
			if idx != l.PlaneIdx(unit, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Colocated.String() != "colocated" || Linear.String() != "linear" ||
		SplitByComponent.String() != "split" {
		t.Fatal("strategy names")
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy should render")
	}
	if len(Strategies()) != 3 {
		t.Fatal("Strategies()")
	}
}
