package optim

import (
	"fmt"
	"math"
)

// Adafactor implements the sub-linear-memory optimizer of Shazeer & Stern
// ("Adafactor: Adaptive Learning Rates with Sublinear Memory Cost"): the
// second-moment matrix V of an (rows × cols) parameter is stored as a
// rank-1 factorisation — a row-sum vector R and column-sum vector C — so
// optimizer state is (rows+cols) words instead of rows·cols.
//
// Adafactor is deliberately *not* part of the Kind enum: its state does not
// tile into whole per-parameter pages, so the in-storage timing model (one
// state page per word per unit) does not apply. It exists here as the gold
// algorithm and as the counterpoint in the state-footprint analysis: with
// ~0 words/param resident, offloading pressure — and hence OptimStore's
// advantage — largely disappears.
type Adafactor struct {
	rows, cols int
	hp         Hyper
	r, c       []float64 // factored second-moment accumulators
	steps      int

	// ClipThreshold is the update-RMS clipping constant d (paper: 1.0).
	ClipThreshold float64
	// Eps1 regularises the squared-gradient accumulators (paper: 1e-30).
	Eps1 float64
}

// NewAdafactor builds an optimizer for one rows×cols parameter matrix.
// Unset hyperparameters take the package defaults; only LR is used.
func NewAdafactor(rows, cols int, hp Hyper) *Adafactor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("optim: Adafactor %dx%d", rows, cols))
	}
	return &Adafactor{
		rows: rows, cols: cols,
		hp:            hp.withDefaults(),
		r:             make([]float64, rows),
		c:             make([]float64, cols),
		ClipThreshold: 1.0,
		Eps1:          1e-30,
	}
}

// Name returns the algorithm name.
func (a *Adafactor) Name() string { return "Adafactor" }

// Steps returns how many updates have been applied.
func (a *Adafactor) Steps() int { return a.steps }

// Reset discards optimizer state.
func (a *Adafactor) Reset() {
	a.r = make([]float64, a.rows)
	a.c = make([]float64, a.cols)
	a.steps = 0
}

// StateWordsPerParam returns the fractional resident state per parameter:
// (rows+cols)/(rows·cols) — the sub-linear memory claim.
func (a *Adafactor) StateWordsPerParam() float64 {
	return float64(a.rows+a.cols) / float64(a.rows*a.cols)
}

// Step applies one update. w and g are row-major rows×cols matrices.
func (a *Adafactor) Step(w, g []float32) {
	if len(w) != a.rows*a.cols || len(g) != len(w) {
		panic(fmt.Sprintf("optim: Adafactor.Step len(w)=%d len(g)=%d want %d",
			len(w), len(g), a.rows*a.cols))
	}
	a.steps++
	t := float64(a.steps)
	// Decay schedule β̂₂ₜ = 1 − t^(−0.8) (paper §7).
	beta2t := 1 - math.Pow(t, -0.8)

	// Row and column sums of G² + ε₁.
	rowSum := make([]float64, a.rows)
	colSum := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			g2 := float64(g[i*a.cols+j])
			g2 = g2*g2 + a.Eps1
			rowSum[i] += g2
			colSum[j] += g2
		}
	}
	var total float64
	for i := range a.r {
		a.r[i] = beta2t*a.r[i] + (1-beta2t)*rowSum[i]
		total += a.r[i]
	}
	for j := range a.c {
		a.c[j] = beta2t*a.c[j] + (1-beta2t)*colSum[j]
	}

	// Factored second-moment estimate V̂ᵢⱼ = Rᵢ·Cⱼ / ΣR, then the update
	// U = G/√V̂, RMS-clipped.
	u := make([]float64, len(g))
	var rms float64
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			v := a.r[i] * a.c[j] / total
			ui := float64(g[i*a.cols+j]) / math.Sqrt(v)
			u[i*a.cols+j] = ui
			rms += ui * ui
		}
	}
	rms = math.Sqrt(rms / float64(len(u)))
	scale := a.hp.LR
	if rms > a.ClipThreshold {
		scale /= rms / a.ClipThreshold
	}
	for k := range w {
		w[k] = float32(float64(w[k]) - scale*u[k])
	}
}
