package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// CtrlISP is the in-SSD-controller processing baseline: state pages leave
// the dies over the channel buses into controller DRAM, a few embedded
// cores run the optimizer kernel, and updated pages travel back to be
// programmed. It avoids PCIe for the bulk state but pays full channel-bus
// traffic and is throttled by the controller's weak memory system — the
// middle design point between host offload and on-die processing.
type CtrlISP struct {
	cfg Config
}

// NewCtrlISP builds the baseline for a configuration.
func NewCtrlISP(cfg Config) *CtrlISP { return &CtrlISP{cfg: cfg} }

// Name implements System.
func (s *CtrlISP) Name() string { return "ctrl-isp" }

// Run implements System.
func (s *CtrlISP) Run() (*Report, error) {
	cfg := s.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	if cfg.Trace != nil {
		eng.SetTracer(cfg.Trace)
	}
	dev := ssd.NewDevice(eng, cfg.SSD)
	geo := dev.Geometry()
	link := host.NewLink(eng, cfg.Link)
	ctrl := host.NewCPU(eng, cfg.CtrlCPU)

	simUnits := cfg.SimUnits()
	comps := cfg.Comps()
	lay, err := layout.New(geo, comps, simUnits, cfg.Layout)
	if err != nil {
		return nil, err
	}
	if lay.LogicalPages() > dev.FTL().LogicalPages() {
		return nil, fmt.Errorf("core: window exceeds device capacity — lower MaxSimUnits")
	}
	dev.SetPlaneMapper(lay.PlaneMapper())
	for lpa := int64(0); lpa < lay.LogicalPages(); lpa++ {
		dev.Preload(lpa)
	}
	inj := armFaults(eng, dev, cfg)

	elems := cfg.ElemsPerPage()
	residentB := cfg.ResidentBytesPerUnit()
	gradB := cfg.GradBytesPerUnit()
	woutB := cfg.WeightOutBytesPerUnit()
	kernel := kernelFor(cfg).FlopsPerElem
	pageSize := geo.PageSize

	// Inbound gradients over PCIe, chunked.
	unitsPerChunk := cfg.TransferChunkBytes / gradB
	if unitsPerChunk < 1 {
		unitsPerChunk = 1
	}
	nChunks := (simUnits + unitsPerChunk - 1) / unitsPerChunk
	arrived := scheduleGradArrivals(eng, link.ToDevice, gradSchedule(cfg, nChunks), simUnits, unitsPerChunk, gradB)

	var endTime sim.Time
	finished := false
	outbound := newOutBatcher(cfg.TransferChunkBytes, link.FromDevice, func() {
		dev.Drain(func() {
			disarmFaults(inj)
			endTime = eng.Now()
			finished = true
		})
	})

	// Admission window: ~4 units in flight per plane-slot a unit occupies,
	// so planes stay pipelined regardless of how many pages a unit has
	// (SGD's single-page units need a 3× deeper window than Adam's).
	inflightCap := int64(4 * geo.Planes() / comps)
	if min := int64(4 * geo.Dies()); inflightCap < min {
		inflightCap = min
	}
	var next, completed int64
	var launch func()
	unitDone := func() {
		completed++
		if completed == simUnits {
			outbound.close()
		}
		launch()
	}

	startUnit := func(u int64) {
		place := lay.Placement(u)
		// Phase 1: gradient available + all pages pulled to the controller
		// (array read, then bus transfer out of each component's die).
		join := sim.NewCounter(1+comps, span(eng, "read-pull", func() {
			// Phase 2: controller kernel over this unit's elements.
			dramBytes := float64(2*residentB + gradB + woutB)
			ctrl.Run(float64(elems)*float64(kernel), dramBytes, span(eng, "ctrl-kernel", func() {
				// Phase 3: push updated pages back and program them.
				c := sim.NewCounter(comps, span(eng, "program-push", func() {
					outbound.add(woutB)
					unitDone()
				}))
				for comp := 0; comp < comps; comp++ {
					lpa := lay.LPA(u, comp)
					wch, wdie, _ := geo.PlaneLoc(place.Planes[comp])
					sim.Chain(c.Done,
						func(nx func()) { dev.TransferToDie(wch, wdie, pageSize, nx) },
						func(nx func()) { dev.ProgramUpdate(lpa, nx) },
					)
				}
			}))
		}))
		arrived[u/unitsPerChunk].then(join.Done)
		for comp := 0; comp < comps; comp++ {
			lpa := lay.LPA(u, comp)
			rch, rdie, _ := geo.PlaneLoc(place.Planes[comp])
			sim.Chain(join.Done,
				func(nx func()) { dev.ReadMapped(lpa, nx) },
				func(nx func()) { dev.TransferFromDie(rch, rdie, pageSize, nx) },
			)
		}
	}
	launch = func() {
		for next < simUnits && next-completed < inflightCap {
			u := next
			next++
			startUnit(u)
		}
	}
	launch()
	eng.Run()
	if !finished {
		return nil, fmt.Errorf("core: ctrl-isp simulation wedged at %v (%d/%d units)",
			eng.Now(), completed, simUnits)
	}

	scale := cfg.ScaleFactor()
	counts := dev.Counts()
	totalUnits := cfg.TouchedUnits()
	r := &Report{
		System:              s.Name(),
		Model:               cfg.Model.Name,
		Optimizer:           cfg.Optimizer.String(),
		Precision:           cfg.Precision.String(),
		Params:              cfg.Model.Params,
		TotalUnits:          totalUnits,
		SimUnits:            simUnits,
		SimTime:             endTime,
		SimEvents:           eng.Fired(),
		SimPCIeToDevBytes:   int64(link.BytesToDevice()),
		SimPCIeFromDevBytes: int64(link.BytesFromDevice()),
		OptStepTime:         endTime.Scale(scale),
		PCIeBytes:           (gradB + woutB) * totalUnits,
		BusBytes:            int64(float64(counts.BytesIn+counts.BytesOut) * scale),
		NANDReadBytes:       int64(float64(counts.Reads) * float64(pageSize) * scale),
		NANDProgramBytes:    int64(float64(counts.Programs) * float64(pageSize) * scale),
		DRAMBytes:           (2*residentB + gradB + woutB) * totalUnits,
		WAF:                 dev.Stats().WAF,
		Feasible:            true,
	}
	r.LinkUtil = link.Utilization()
	r.BusUtil = meanBusUtil(dev)
	evalEnergy(r, energy.Activity{
		NANDReadBytes:    float64(r.NANDReadBytes),
		NANDProgramBytes: float64(r.NANDProgramBytes),
		NANDEraseBytes:   float64(counts.Erases) * float64(cfg.SSD.Nand.BlockBytes()) * scale,
		BusBytes:         float64(r.BusBytes),
		PCIeBytes:        float64(r.PCIeBytes),
		DRAMBytes:        float64(r.DRAMBytes),
		CPUOps:           float64(totalUnits) * float64(elems) * float64(kernel),
	})
	cfg.endToEnd(r)
	accountFaults(cfg, r, inj)
	return r, nil
}
