// train_demo exercises the optimizer library the way a training framework
// would: every algorithm (including sub-linear-memory Adafactor) on the
// same synthetic problem, with warmup+cosine learning-rate scheduling and
// global-norm gradient clipping, plus the mixed-precision drift analysis
// that justifies shipping FP16 gradients to the SSD.
//
// Run with: go run ./examples/train_demo
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/optim"
	"repro/internal/stats"
	"repro/internal/trace"
)

const (
	dim   = 256
	steps = 400
)

func main() {
	// --- 1. Optimizer shoot-out with scheduling and clipping ---------------
	fmt.Println("1. All optimizers on a 256-dim quadratic (warmup+cosine LR, clip=1.0):")
	table := stats.NewTable("", "optimizer", "state-words", "final-loss", "grad-norm-clips")
	for _, kind := range optim.Kinds() {
		problem := trace.NewQuadratic(7, dim)
		w := make([]float32, dim)
		g := make([]float32, dim)
		sched, err := optim.NewWarmupCosine(20, steps, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		opt := optim.NewScheduled(optim.New(kind, optim.Hyper{LR: 0.1}), sched)
		clips := 0
		for s := 0; s < steps; s++ {
			problem.Grad(w, g)
			if optim.ClipGlobalNorm(g, 1.0) > 1.0 {
				clips++
			}
			opt.Step(w, g)
		}
		table.AddRow(kind.String(), optim.StateWordsFor(kind), problem.Loss(w), clips)
	}
	// Adafactor works on matrices; reshape the same problem.
	{
		problem := trace.NewQuadratic(7, dim)
		w := make([]float32, dim)
		g := make([]float32, dim)
		af := optim.NewAdafactor(16, 16, optim.Hyper{LR: 0.1})
		for s := 0; s < steps; s++ {
			problem.Grad(w, g)
			optim.ClipGlobalNorm(g, 1.0)
			af.Step(w, g)
		}
		table.AddRow(
			fmt.Sprintf("Adafactor (16x16, %.4f words/param)", af.StateWordsPerParam()),
			0, problem.Loss(w), "-")
	}
	fmt.Print(table)

	// --- 2. Why page-parallel on-die execution is safe ---------------------
	fmt.Println("\n2. Paged (per-die) execution is bit-identical to the monolithic update:")
	for _, kind := range []optim.Kind{optim.SGD, optim.Adam, optim.AdamW} {
		err := core.VerifyPagedEquivalence(kind, optim.Hyper{LR: 0.01}, 4096, 256, 10, 3)
		status := "bit-identical over 10 steps"
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("   %-8s %s\n", kind, status)
	}

	// --- 3. What FP16 gradient delivery costs numerically ------------------
	fmt.Println("\n3. Mixed-precision drift (FP16 gradients over the wire, FP32 state):")
	for _, kind := range []optim.Kind{optim.SGD, optim.Adam} {
		drift, err := core.MixedPrecisionDrift(kind, optim.Hyper{LR: 1e-3}, 2048, 50, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-8s max |w_fp16path - w_exact| after 50 steps: %.3g  (total movement ~%.3g)\n",
			kind, drift, 50*1e-3)
	}
}
