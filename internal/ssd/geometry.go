// Package ssd models a multi-channel NVMe SSD on top of the nand package:
// a page-level log-structured FTL with greedy garbage collection, a
// DRAM write cache with backpressure, and the per-plane allocation
// discipline that in-storage update paths (OptimStore's read-modify-
// program) rely on for die locality.
package ssd

import (
	"fmt"

	"repro/internal/nand"
)

// PPA is a device-global physical page address.
type PPA struct {
	Channel int
	Die     int
	nand.Addr
}

// String renders the PPA as ch/die/pl/blk/pg.
func (p PPA) String() string {
	return fmt.Sprintf("ch%d/die%d/%s", p.Channel, p.Die, p.Addr.String())
}

// Geometry precomputes the strides for translating between PPA structs,
// linear page indices, and plane indices.
type Geometry struct {
	Channels       int
	DiesPerChannel int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int
}

// GeometryOf derives the geometry from a channel count and NAND params.
func GeometryOf(channels, diesPerChannel int, p nand.Params) Geometry {
	return Geometry{
		Channels:       channels,
		DiesPerChannel: diesPerChannel,
		PlanesPerDie:   p.PlanesPerDie,
		BlocksPerPlane: p.BlocksPerPlane,
		PagesPerBlock:  p.PagesPerBlock,
		PageSize:       p.PageSize,
	}
}

// Planes returns the device-wide plane count — the unit of NAND
// parallelism every bandwidth result scales with.
func (g Geometry) Planes() int {
	return g.Channels * g.DiesPerChannel * g.PlanesPerDie
}

// Dies returns the device-wide die count.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChannel }

// BlocksTotal returns the device-wide block count.
func (g Geometry) BlocksTotal() int { return g.Planes() * g.BlocksPerPlane }

// TotalPages returns the device-wide physical page count.
func (g Geometry) TotalPages() int64 {
	return int64(g.BlocksTotal()) * int64(g.PagesPerBlock)
}

// TotalBytes returns the physical capacity in bytes.
func (g Geometry) TotalBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// PlaneIndex maps (channel, die, plane) to a device-global plane index.
func (g Geometry) PlaneIndex(ch, die, plane int) int {
	return (ch*g.DiesPerChannel+die)*g.PlanesPerDie + plane
}

// PlaneOf returns the device-global plane index of a PPA.
func (g Geometry) PlaneOf(p PPA) int { return g.PlaneIndex(p.Channel, p.Die, p.Plane) }

// PlaneLoc inverts PlaneIndex.
func (g Geometry) PlaneLoc(planeIdx int) (ch, die, plane int) {
	plane = planeIdx % g.PlanesPerDie
	dieGlobal := planeIdx / g.PlanesPerDie
	return dieGlobal / g.DiesPerChannel, dieGlobal % g.DiesPerChannel, plane
}

// BlockIndex maps a PPA's block to a device-global block index.
func (g Geometry) BlockIndex(p PPA) int {
	return g.PlaneOf(p)*g.BlocksPerPlane + p.Block
}

// Linear maps a PPA to a device-global page index.
func (g Geometry) Linear(p PPA) int64 {
	return int64(g.BlockIndex(p))*int64(g.PagesPerBlock) + int64(p.Page)
}

// FromLinear inverts Linear.
func (g Geometry) FromLinear(idx int64) PPA {
	page := int(idx % int64(g.PagesPerBlock))
	blockGlobal := int(idx / int64(g.PagesPerBlock))
	block := blockGlobal % g.BlocksPerPlane
	planeIdx := blockGlobal / g.BlocksPerPlane
	ch, die, plane := g.PlaneLoc(planeIdx)
	return PPA{Channel: ch, Die: die, Addr: nand.Addr{Plane: plane, Block: block, Page: page}}
}

// Contains reports whether the PPA is inside the geometry.
func (g Geometry) Contains(p PPA) bool {
	return p.Channel >= 0 && p.Channel < g.Channels &&
		p.Die >= 0 && p.Die < g.DiesPerChannel &&
		p.Plane >= 0 && p.Plane < g.PlanesPerDie &&
		p.Block >= 0 && p.Block < g.BlocksPerPlane &&
		p.Page >= 0 && p.Page < g.PagesPerBlock
}
