package core

import (
	"fmt"

	"repro/internal/sim"
)

// CheckpointReport compares snapshotting the optimizer state for fault
// tolerance — a first-order operational concern for week-long training
// runs, and a place where state residency changes the answer qualitatively:
//
//   - host streaming: the resident state leaves the SSD over the channel
//     buses and PCIe to host checkpoint storage (what an offload runtime
//     does today);
//   - in-storage copy: the device snapshots the state region internally
//     with plane-local copyback (read + program per page, no bus or PCIe
//     traffic), at the cost of reserving a second copy's capacity.
type CheckpointReport struct {
	Model      string
	StateBytes int64

	// HostStreamTime is the PCIe-bound external checkpoint.
	HostStreamTime sim.Time
	// InStorageCopyTime is the plane-bound internal snapshot.
	InStorageCopyTime sim.Time
	// Speedup = HostStreamTime / InStorageCopyTime.
	Speedup float64

	// CapacityNeeded is the device capacity an internal snapshot requires
	// (two copies of the state), and CapacityOK whether the default
	// full-geometry device has it.
	CapacityNeeded int64
	CapacityOK     bool
}

// Checkpoint evaluates both strategies analytically: checkpointing is a
// pure streaming problem, so closed forms are exact.
func Checkpoint(cfg Config) (*CheckpointReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// External stream: reads overlap the PCIe transfer; PCIe is the
	// narrowest stage (internal read 32 GB/s > buses 9.6 GB/s > PCIe).
	// Internal copy: plane-local copyback — each page pays tR + tPROG on
	// its plane, all planes in parallel. Bandwidth units are decimal end
	// to end; binary units appear only in capacity math
	// (Geometry().TotalBytes() below). Both closed forms live in
	// checkpointTimes, shared with the fault accounting.
	hostStream, inStorage, state := checkpointTimes(cfg)
	r := &CheckpointReport{Model: cfg.Model.Name, StateBytes: state}
	r.HostStreamTime = hostStream
	r.InStorageCopyTime = inStorage

	if r.InStorageCopyTime > 0 {
		r.Speedup = float64(r.HostStreamTime) / float64(r.InStorageCopyTime)
	}

	// Analytic evaluation: emit both strategies as synthetic spans so a
	// trace shows the external stream and the internal copyback side by
	// side on the phase track.
	if cfg.Trace != nil {
		cfg.Trace.Span(phaseTrack, "ckpt/host-stream", 0, r.HostStreamTime)
		cfg.Trace.Span(phaseTrack, "ckpt/in-storage-copy", 0, r.InStorageCopyTime)
	}

	// Capacity: the snapshot needs a second full copy resident.
	r.CapacityNeeded = 2 * state
	fullDevice := fullGeometryBytes(cfg)
	r.CapacityOK = float64(r.CapacityNeeded) <= float64(fullDevice)*(1-cfg.SSD.OverProvision)
	return r, nil
}

// fullGeometryBytes returns the capacity of the real (non-windowed) device:
// the configured topology with the physical 1024 blocks per plane.
func fullGeometryBytes(cfg Config) int64 {
	n := cfg.SSD.Nand
	n.BlocksPerPlane = physBlocksPerPlane
	geo := cfg.SSD
	geo.Nand = n
	return geo.Geometry().TotalBytes()
}

// String renders a one-line summary.
func (r *CheckpointReport) String() string {
	return fmt.Sprintf("checkpoint %s: host-stream %v, in-storage %v (%.1fx), capacity-ok=%v",
		r.Model, r.HostStreamTime, r.InStorageCopyTime, r.Speedup, r.CapacityOK)
}
