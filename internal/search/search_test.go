package search

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
)

// quickBase is the paper-default configuration at the quick simulation
// window, the same point the quick experiment suite runs.
func quickBase() core.Config {
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 256
	return cfg
}

// smallSpace keeps tests fast: 72 grid points over the axes that matter
// for pruning (geometry, bus, over-provisioning), including the default
// configuration.
func smallSpace() Space {
	return Space{
		Channels:       []int{2, 8, 16},
		DiesPerChannel: []int{2, 4},
		PlanesPerDie:   []int{2, 4},
		BusMBps:        []int{800, 1200},
		OverProvision:  []float64{0.125, 0.25},
	}
}

func runSmall(t *testing.T, parallel int) *Result {
	t.Helper()
	res, err := Run(quickBase(), smallSpace(), Options{Budget: 12, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSearchDeterministicAcrossWidths pins the headline guarantee: the
// frontier CSV is byte-identical at any worker-pool width.
func TestSearchDeterministicAcrossWidths(t *testing.T) {
	seq := runSmall(t, 1)
	if len(seq.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	csv := seq.CSV()
	if again := runSmall(t, 1).CSV(); again != csv {
		t.Fatalf("sequential rerun differs:\n%s\nvs\n%s", csv, again)
	}
	if wide := runSmall(t, 8).CSV(); wide != csv {
		t.Fatalf("parallel=8 differs from sequential:\n%s\nvs\n%s", csv, wide)
	}
	if seq.Stats != runSmall(t, 8).Stats {
		t.Fatal("search statistics differ across pool widths")
	}
}

// TestSearchFrontierContainsOrDominatesDefault pins the acceptance
// criterion: the frontier contains the paper's default configuration or
// a point that dominates it.
func TestSearchFrontierContainsOrDominatesDefault(t *testing.T) {
	res := runSmall(t, 0)
	defHash := quickBase().CanonicalHash()
	var def *Point
	for _, p := range res.Evaluated {
		if p.Hash == defHash {
			def = p
		}
	}
	if def == nil {
		t.Fatal("default configuration was never simulated")
	}
	for _, p := range res.Frontier {
		if p.Hash == defHash {
			return // contained
		}
	}
	for _, p := range res.Frontier {
		if p.dominatesPoint(def) {
			return // dominated by a frontier point
		}
	}
	t.Fatal("frontier neither contains nor dominates the default configuration")
}

// TestSearchFrontierNonDominated verifies the frontier invariant: no
// frontier point dominates another, and every evaluated feasible point is
// either on the frontier or dominated by a frontier point.
func TestSearchFrontierNonDominated(t *testing.T) {
	res := runSmall(t, 0)
	onFrontier := make(map[*Point]bool)
	for _, p := range res.Frontier {
		onFrontier[p] = true
		for _, q := range res.Frontier {
			if p != q && p.dominatesPoint(q) {
				t.Fatalf("frontier point dominates another frontier point")
			}
		}
	}
	for _, p := range res.Evaluated {
		if !p.Feasible || onFrontier[p] {
			continue
		}
		dominated := false
		for _, q := range res.Frontier {
			if q.dominatesPoint(p) {
				dominated = true
			}
		}
		if !dominated {
			t.Fatalf("evaluated point %d missing from frontier but undominated", p.Index)
		}
	}
}

// TestSearchBoundSound spot-checks pruning soundness on every simulated
// point: the analytic bound must never exceed the measured objectives.
func TestSearchBoundSound(t *testing.T) {
	res := runSmall(t, 0)
	if len(res.Evaluated) < 2 {
		t.Fatalf("expected several evaluations, got %d", len(res.Evaluated))
	}
	for _, p := range res.Evaluated {
		if !p.Feasible {
			continue
		}
		if p.OptStep < p.Bound.StepFloor {
			t.Errorf("point %d: simulated step %v below floor %v", p.Index, p.OptStep, p.Bound.StepFloor)
		}
		if p.Energy < p.Bound.EnergyFloor {
			t.Errorf("point %d: simulated energy %g below floor %g", p.Index, p.Energy, p.Bound.EnergyFloor)
		}
	}
}

// TestSearchPruningEffective pins the acceptance criterion on the full
// default grid: at least half the candidates are rejected analytically
// before simulation, the budget is respected, and the memo table dedupes
// the seeded default.
func TestSearchPruningEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid search in -short mode")
	}
	res, err := Run(quickBase(), DefaultSpace(), Options{Budget: 48, Parallel: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Candidates < 1000 {
		t.Fatalf("default space unexpectedly small: %d candidates", s.Candidates)
	}
	if frac := s.PrunedFraction(); frac < 0.5 {
		t.Fatalf("pruned fraction %.3f below the 0.5 acceptance bar (stats %+v)", frac, s)
	}
	if s.Evaluated > 48 {
		t.Fatalf("budget exceeded: %d simulations", s.Evaluated)
	}
	if s.MemoHits == 0 {
		t.Fatal("expected at least one memo hit (the seeded default is a grid point)")
	}
	if s.Pruned+s.Skipped+s.MemoHits+(s.Evaluated-1) != s.Candidates {
		// Evaluated includes the out-of-grid seed only when the default is
		// not a grid point; in the default space it is, so every candidate
		// is accounted for exactly once.
		t.Fatalf("candidate accounting does not add up: %+v", s)
	}
}

// BenchmarkSearch times the full autotune workload — grid enumeration,
// analytic bound pricing, hashing, pruning, and the budgeted simulations
// — over the default grid. internal/bench runs the same workload for the
// committed snapshot; this entry point serves ad-hoc profiling
// (`go test -bench BenchmarkSearch ./internal/search/`).
func BenchmarkSearch(b *testing.B) {
	base := quickBase()
	base.MaxSimUnits = 128
	var res *Result
	for i := 0; i < b.N; i++ {
		r, err := Run(base, DefaultSpace(), Options{Budget: 16, Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(res.Stats.Evaluated)/perOp, "configs/s")
	b.ReportMetric(res.Stats.PrunedFraction(), "pruned-frac")
}
