// Package plot renders stats.Figure data as standalone SVG line charts
// using only the standard library — the reproduction's figures can be
// regenerated as actual image files (cmd/optimstore -svg).
package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Options controls rendering.
type Options struct {
	Width, Height int
	// LogX draws the x axis in log10 space (model-scale sweeps span
	// orders of magnitude). Only valid when every x is positive.
	LogX bool
}

// DefaultOptions returns a 720×440 linear-axis chart.
func DefaultOptions() Options { return Options{Width: 720, Height: 440} }

// Series colors (categorical palette, colorblind-safe ordering).
var palette = []string{
	"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB",
}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// SVG renders the figure. An empty figure produces a small placeholder.
func SVG(f *stats.Figure, opts Options) string {
	if opts.Width < 200 {
		opts.Width = 200
	}
	if opts.Height < 150 {
		opts.Height = 150
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		opts.Width, opts.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, esc(f.Title))

	minX, maxX, minY, maxY, any := bounds(f)
	if !any {
		b.WriteString(`<text x="50%" y="50%" text-anchor="middle">(no data)</text></svg>`)
		return b.String()
	}
	if opts.LogX && minX <= 0 {
		opts.LogX = false
	}
	tx := func(x float64) float64 { return x }
	if opts.LogX {
		tx = math.Log10
		minX, maxX = tx(minX), tx(maxX)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad y range 5% each side.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	plotW := float64(opts.Width - marginL - marginR)
	plotH := float64(opts.Height - marginT - marginB)
	px := func(x float64) float64 { return float64(marginL) + (tx(x)-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (1-(y-minY)/(maxY-minY))*plotH }

	// Axes box and gridlines with tick labels.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#888"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for _, t := range ticks(minY, maxY, 5) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, float64(marginL)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-6, y, label(t))
	}
	for _, t := range ticks(minX, maxX, 6) {
		xv := t
		x := float64(marginL) + (t-minX)/(maxX-minX)*plotW
		if opts.LogX {
			xv = math.Pow(10, t)
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, marginT, x, float64(marginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			x, float64(marginT)+plotH+16, label(xv))
	}
	// Axis titles.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-style="italic">%s</text>`+"\n",
		float64(marginL)+plotW/2, opts.Height-12, esc(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" text-anchor="middle" font-style="italic" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(f.YLabel))

	// Series polylines + markers + legend.
	legendY := marginT + 4
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var drawable []stats.Point
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			drawable = append(drawable, p)
		}
		if len(drawable) > 0 {
			var pts []string
			for _, p := range drawable {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p.X), py(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
			for _, p := range drawable {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
					px(p.X), py(p.Y), color)
			}
		}
		lx := float64(marginL) + plotW - 150
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, legendY, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d">%s</text>`+"\n", lx+16, legendY+10, esc(s.Name))
		legendY += 16
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func bounds(f *stats.Figure) (minX, maxX, minY, maxY float64, any bool) {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			if !any {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				any = true
				continue
			}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	return
}

// ticks returns ~n round values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	step := mag
	for _, m := range []float64{1, 2, 5, 10} {
		if mag*m >= rawStep {
			step = mag * m
			break
		}
	}
	// step/epsDenom is a ~1e-9 relative slop absorbing float accumulation
	// error at the last tick; it is a tolerance, not a unit conversion.
	const epsDenom = 1e9
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/epsDenom; t += step {
		out = append(out, t)
	}
	return out
}

// SI suffix thresholds for tick labels (dimensionless plot values).
const (
	tera = 1e12
	giga = 1e9
	mega = 1e6
	kilo = 1e3
)

// label formats a tick value compactly (SI-ish suffixes for big numbers).
func label(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= tera:
		return fmt.Sprintf("%.3gT", v/tera)
	case a >= giga:
		return fmt.Sprintf("%.3gB", v/giga)
	case a >= mega:
		return fmt.Sprintf("%.3gM", v/mega)
	case a >= kilo:
		return fmt.Sprintf("%.3gK", v/kilo)
	case a == 0:
		return "0"
	case a < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
