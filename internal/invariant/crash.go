package invariant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
)

// Crash-consistency invariants. The per-report "fault-accounting" property
// registered here audits the checkpoint/restore bookkeeping on every run;
// the run-level crash invariants (no live-page loss across power loss,
// mapped ⊆ programmed after replay, recovered content identical to the
// last durable version) need whole crashed/recovered device pairs and run
// from the test suite via fault.EnumerateCrashPoints (see crash_test.go).

func init() {
	Register(Property{Name: "fault-accounting", Check: checkFaultAccounting})
}

// checkFaultAccounting enforces the structural facts of the fault and
// checkpoint fields on every report, faulted or not:
//
//   - the policy string is always set and valid;
//   - checkpoint cost is charged exactly when a policy is configured, and
//     its NAND-program (WAF) cost exactly for the in-place policy on a
//     device-backed system;
//   - recovery cost is charged exactly when terminal faults fired;
//   - a disabled fault spec fires nothing.
func checkFaultAccounting(system string, cfg core.Config, r *core.Report) error {
	switch r.CheckpointPolicy {
	case "none", "inplace", "hostpull":
	default:
		return fmt.Errorf("checkpoint policy %q is not a valid policy string", r.CheckpointPolicy)
	}
	if r.PowerLossFaults < 0 || r.DieFailFaults < 0 || r.ECCFaults < 0 {
		return fmt.Errorf("negative fault counts pl=%d df=%d ecc=%d",
			r.PowerLossFaults, r.DieFailFaults, r.ECCFaults)
	}
	if r.CheckpointTime < 0 || r.RecoveryTime < 0 ||
		r.CheckpointProgramBytes < 0 || r.RecoveryProgramBytes < 0 {
		return fmt.Errorf("negative fault cost: ckpt=%v rec=%v ckptB=%d recB=%d",
			r.CheckpointTime, r.RecoveryTime, r.CheckpointProgramBytes, r.RecoveryProgramBytes)
	}
	if !cfg.Fault.Enabled() && r.PowerLossFaults+r.DieFailFaults+r.ECCFaults != 0 {
		return fmt.Errorf("fault injection disabled but pl=%d df=%d ecc=%d fired",
			r.PowerLossFaults, r.DieFailFaults, r.ECCFaults)
	}
	if !r.Feasible {
		return nil
	}

	if cfg.Checkpoint == fault.CheckpointNone {
		if r.CheckpointTime != 0 || r.CheckpointProgramBytes != 0 {
			return fmt.Errorf("no checkpoint policy but ckpt=%v ckptB=%d",
				r.CheckpointTime, r.CheckpointProgramBytes)
		}
	} else if r.CheckpointTime <= 0 {
		return fmt.Errorf("policy %s priced a free checkpoint", r.CheckpointPolicy)
	}
	// Only the in-place policy snapshots device-side, and only systems
	// with device-resident state pay its NAND programs.
	wantProg := cfg.Checkpoint == fault.CheckpointInPlace && system != GPUResident
	if wantProg != (r.CheckpointProgramBytes > 0) {
		return fmt.Errorf("policy %s on %s: checkpoint programs %d NAND bytes",
			r.CheckpointPolicy, system, r.CheckpointProgramBytes)
	}

	terminal := r.PowerLossFaults + r.DieFailFaults
	if terminal == 0 && (r.RecoveryTime != 0 || r.RecoveryProgramBytes != 0) {
		return fmt.Errorf("no terminal faults but recovery=%v recB=%d",
			r.RecoveryTime, r.RecoveryProgramBytes)
	}
	if terminal > 0 && r.RecoveryTime <= 0 {
		return fmt.Errorf("%d terminal faults but free recovery", terminal)
	}
	if system == GPUResident && r.RecoveryProgramBytes != 0 {
		return fmt.Errorf("analytic reference programmed %d NAND bytes recovering", r.RecoveryProgramBytes)
	}
	return nil
}
