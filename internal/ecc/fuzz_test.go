package ecc

import (
	"math"
	"testing"
)

// FuzzSchemeProperties checks the probability model's analytic contract on
// arbitrary BCH configurations: probabilities stay in [0,1], uncorrectable
// probability is monotone in RBER, a page can never be more reliable than
// one of its codewords, and the MaxRBER bisection lands exactly on the
// boundary of the target it claims to satisfy.
func FuzzSchemeProperties(f *testing.F) {
	f.Add(1024, 72, 0.001, 0.007)
	f.Add(512, 8, 1e-6, 1e-4)
	f.Add(4096, 120, 0.0, 0.5)
	f.Add(64, 1, 1e-9, 1e-8)
	f.Fuzz(func(t *testing.T, codewordBytes, tcap int, rber1, rber2 float64) {
		// Plausible codes spend a small fraction of the codeword on parity;
		// T beyond codewordBytes/8 means more parity than data.
		if codewordBytes < 64 || codewordBytes > 8192 || tcap < 1 || tcap > 256 || tcap > codewordBytes/8 {
			t.Skip("outside the physically plausible BCH envelope")
		}
		if math.IsNaN(rber1) || math.IsNaN(rber2) || rber1 < 0 || rber2 < 0 || rber1 > 1 || rber2 > 1 {
			t.Skip("RBER is a probability")
		}
		s := BCH(codewordBytes, tcap)
		if err := s.Validate(); err != nil {
			t.Fatalf("BCH(%d, %d) invalid: %v", codewordBytes, tcap, err)
		}
		if s.ParityOverhead <= 0 || s.ParityOverhead >= 1 {
			t.Fatalf("BCH(%d, %d) parity overhead %v outside (0,1)", codewordBytes, tcap, s.ParityOverhead)
		}

		lo, hi := rber1, rber2
		if lo > hi {
			lo, hi = hi, lo
		}
		pLo, pHi := s.UncorrectableProb(lo), s.UncorrectableProb(hi)
		for _, p := range []float64{pLo, pHi} {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("UncorrectableProb outside [0,1]: %v", p)
			}
		}
		// Monotone in RBER, modulo float noise in the Poisson CDF sum.
		if pLo > pHi+1e-12 {
			t.Fatalf("UncorrectableProb not monotone: P(%v)=%v > P(%v)=%v", lo, pLo, hi, pHi)
		}

		const pageBytes = 16 * 1024
		if pf := s.PageFailProb(pageBytes, hi); pf < pHi-1e-12 || pf > 1 {
			t.Fatalf("PageFailProb %v below codeword failure %v (page has >= 1 codeword)", pf, pHi)
		}

		// The bisection must return the largest RBER still meeting the
		// target: at the returned rate the page meets it, and doubling the
		// rate must clearly miss it. (A finer overshoot probe is not robust:
		// near huge correction capabilities the failure curve is so flat
		// that float noise in the Poisson CDF swamps small RBER steps.)
		const target = 1e-9
		max := s.MaxRBER(pageBytes, target)
		if max < 0 || max > 0.5 {
			t.Fatalf("MaxRBER %v outside search range [0, 0.5]", max)
		}
		if pf := s.PageFailProb(pageBytes, max); pf > target {
			t.Fatalf("PageFailProb at MaxRBER %v is %v, exceeds target %v", max, pf, target)
		}
		if past := 2 * max; past < 0.5 {
			if pf := s.PageFailProb(pageBytes, past); pf <= target {
				t.Fatalf("MaxRBER %v undershoots: PageFailProb(%v) = %v still under target %v",
					max, past, pf, target)
			}
		}

		// Decode latency is positive and never improves with more errors.
		prev := 0.0
		for _, e := range []int{0, tcap / 2, tcap, tcap * 2} {
			l := s.DecodeLatencyNs(e)
			if l <= 0 || l < prev {
				t.Fatalf("DecodeLatencyNs(%d) = %v (previous %v): negative or non-monotone", e, l, prev)
			}
			prev = l
		}
	})
}
