// Package tracesink exercises the tracesink analyzer: fmt stream writes
// (Fprint*/Print*) are flagged in trace-producing packages; in-memory
// fmt.Sprintf, direct strconv appends, and allow-directives are not.
package tracesink

import (
	"fmt"
	"io"
	"strconv"
)

type event struct {
	track string
	ts    int64
	dur   int64
}

func fprintfWrite(w io.Writer, e event) {
	fmt.Fprintf(w, `{"name":%q,"ts":%d}`, e.track, e.ts) // want `fmt\.Fprintf stream write`
}

func fprintlnWrite(w io.Writer, e event) {
	fmt.Fprintln(w, e.track) // want `fmt\.Fprintln stream write`
	fmt.Fprint(w, e.dur)     // want `fmt\.Fprint stream write`
}

func printfWrite(e event) {
	fmt.Printf("%s %d\n", e.track, e.ts) // want `fmt\.Printf stream write`
}

// appendWrite is the sanctioned shape: strconv appends into a buffer,
// flushed with a single Write. Byte-stable, allocation-predictable.
func appendWrite(w io.Writer, e event) error {
	b := make([]byte, 0, 64)
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.track)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, e.ts, 10)
	b = append(b, '}', '\n')
	_, err := w.Write(b)
	return err
}

// sprintfIsFine: in-memory formatting never reaches a trace file; panic
// messages and String methods depend on it.
func sprintfIsFine(e event) string {
	return fmt.Sprintf("event on %s at %d", e.track, e.ts)
}

func allowedDiagnostic(w io.Writer, n int) {
	//simlint:allow tracesink progress note to stderr, not trace bytes
	fmt.Fprintf(w, "wrote %d events\n", n)
}
