// Package helper is the callee side of the hotalloc testdata tree: it
// has no hotpath annotations itself and is only hot because package hot
// calls into it.
package helper

// Grow is reached from hot.Step; the chain in the diagnostic must cross
// the package boundary.
func Grow(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i) // want "append may grow the backing array"
	}
	return describe(dst)
}

// describe is two hops from the root.
func describe(dst []int) []int {
	name := "grown:" + itoa(len(dst)) // want "string concatenation allocates"
	_ = name
	return dst
}

// itoa is alloc-free on purpose: a negative leaf on the hot chain.
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "many"
}
