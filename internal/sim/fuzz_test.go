package sim

import "testing"

// firedRecord is one trace entry: which scheduled event fired and when.
type firedRecord struct {
	id int
	at Time
}

// runSchedule interprets the fuzz input as a schedule: a few root events
// are planted up front, and every firing event plants up to two children
// with byte-derived delays, so the heap sees interleaved, recursively
// generated load. High-bit bytes schedule an event and immediately cancel
// it; a cancelled event reaching the trace is an ordering bug in itself.
func runSchedule(data []byte) []firedRecord {
	e := NewEngine()
	var trace []firedRecord
	pos, nextID := 0, 0
	var plant func()
	plant = func() {
		if pos >= len(data) {
			return
		}
		b := data[pos]
		pos++
		delay := Time(b & 0x0F)
		if b&0x80 != 0 {
			ev := e.Schedule(delay, func() {
				trace = append(trace, firedRecord{id: -1, at: e.Now()})
			})
			e.Cancel(ev)
			return
		}
		id := nextID
		nextID++
		e.Schedule(delay, func() {
			trace = append(trace, firedRecord{id: id, at: e.Now()})
			plant()
			plant()
		})
	}
	for i := 0; i < 4; i++ {
		plant()
	}
	e.Run()
	if e.Pending() != 0 {
		panic("Run returned with events still pending")
	}
	return trace
}

// FuzzEngineOrdering checks the engine's two core guarantees on arbitrary
// recursively generated schedules: events fire in nondecreasing simulated
// time with ties broken by insertion order, and the whole run is
// bit-reproducible — an identical schedule yields an identical trace.
func FuzzEngineOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                     // all at t=0: pure FIFO
	f.Add([]byte{5, 3, 5, 1, 0x85, 2, 9})         // ties + a cancellation
	f.Add([]byte{15, 0, 7, 0x80, 1, 1, 1, 14, 3}) // deep nesting
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip("bounded schedule budget")
		}
		trace := runSchedule(data)
		for i, r := range trace {
			if r.id == -1 {
				t.Fatalf("cancelled event fired at %v (trace index %d)", r.at, i)
			}
			if i == 0 {
				continue
			}
			prev := trace[i-1]
			if r.at < prev.at {
				t.Fatalf("time ran backwards: event %d at %v after event %d at %v",
					r.id, r.at, prev.id, prev.at)
			}
			// plant assigns ids in Schedule-call order, which is exactly the
			// engine's insertion sequence, so ties must fire in id order.
			if r.at == prev.at && r.id < prev.id {
				t.Fatalf("tie at %v broke insertion order: event %d fired after event %d",
					r.at, r.id, prev.id)
			}
		}
		again := runSchedule(data)
		if len(again) != len(trace) {
			t.Fatalf("rerun fired %d events, first run %d", len(again), len(trace))
		}
		for i := range trace {
			if trace[i] != again[i] {
				t.Fatalf("rerun diverged at index %d: %+v vs %+v", i, trace[i], again[i])
			}
		}
	})
}
