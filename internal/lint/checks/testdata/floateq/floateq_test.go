// Package floateq exercises the floateq analyzer. Only _test.go files are
// inspected, so this package is all test file.
package floateq

import (
	"math"
	"testing"
)

func compute() float64 { return 0.1 + 0.2 }

func TestExactComparisonFlagged(t *testing.T) {
	got := compute()
	if got == 0.3 { // want `exact float comparison`
		t.Log("lucky rounding")
	}
	if got != 0.3 { // want `exact float comparison`
		t.Log("expected drift")
	}
	var f32 float32 = 0.5
	if f32 == float32(got) { // want `exact float comparison`
		t.Log("float32 too")
	}
}

func TestIntComparisonFine(t *testing.T) {
	n := len("abc")
	if n != 3 {
		t.Fatal("ints compare exactly")
	}
}

// approxEqual implements the tolerance machinery; it may compare floats.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// withinDelta is another helper shape the name pattern must admit.
func withinDelta(t *testing.T, got, want float64) {
	t.Helper()
	if got == want {
		return
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestViaHelperFine(t *testing.T) {
	if !approxEqual(compute(), 0.3, 1e-12) {
		t.Fatal("not close")
	}
	withinDelta(t, compute(), 0.3)
}

func TestNaNIdiomFine(t *testing.T) {
	x := compute()
	if x != x { // the portable NaN check
		t.Fatal("NaN")
	}
}

func TestAllowedBitExact(t *testing.T) {
	a, b := compute(), compute()
	//simlint:allow floateq determinism test: same inputs must give identical bits
	if a != b {
		t.Fatal("nondeterministic arithmetic")
	}
}

func TestConstantsFine(t *testing.T) {
	const eps = 1e-9
	if eps == 1e-9 { // both sides constant: compile-time fact
		t.Log("ok")
	}
}
