package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// GlobalState flags writes to mutable package-level state from ordinary
// functions. The sim kernel is deliberately instance-scoped — every
// Engine, Resource, and Trace owns its state — so a package-level
// variable written at runtime is either a latent data race under
// parallel tests (the funcNameRE cache was one) or hidden coupling
// between simulations. Writes from init functions and package-level
// initializers are configuration, not shared mutable state, and test
// files are skipped.
//
// Registry-style variables that are mutated once during setup keep an
// explicit `//simlint:allow globalstate <reason>` at the write site.
//
// Category: globalstate.
var GlobalState = &lint.ModuleAnalyzer{
	Name: "globalstate",
	Doc: "flags assignments, index stores, and inc/dec of package-level variables " +
		"from non-init functions in non-test files",
	Run: runGlobalState,
}

func runGlobalState(pass *lint.ModulePass) error {
	for _, u := range pass.Units {
		if strings.HasSuffix(u.ImportPath, " [xtest]") {
			continue
		}
		for _, f := range u.Files {
			if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Recv == nil && fd.Name.Name == "init" {
					continue
				}
				scanGlobalWrites(pass, u, fd)
			}
		}
	}
	return nil
}

func scanGlobalWrites(pass *lint.ModulePass, u *lint.Unit, fd *ast.FuncDecl) {
	info := u.Info
	flag := func(root *ast.Ident, pos ast.Node, what string) {
		v, ok := info.Uses[root].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return
		}
		pass.Reportf(pos.Pos(), "globalstate",
			"%s of package-level %s from %s; sim state must be instance-scoped",
			what, root.Name, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if root := lhsRootIdent(l); root != nil {
					flag(root, n, "write")
				}
			}
		case *ast.IncDecStmt:
			if root := lhsRootIdent(n.X); root != nil {
				flag(root, n, "increment")
			}
		case *ast.CallExpr:
			// append(global, ...) assigned back is caught via AssignStmt;
			// in-place mutators like delete(global, k) are index stores.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
					if root := lhsRootIdent(n.Args[0]); root != nil {
						flag(root, n, "delete")
					}
				}
			}
		}
		return true
	})
}
