package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/optim"
	"repro/internal/tracing"
)

// tracedRun runs a named system with a fresh trace installed and returns
// both the report and the recorded trace.
func tracedRun(t *testing.T, name string, cfg Config) (*Report, *tracing.Trace) {
	t.Helper()
	tr := tracing.New(name)
	cfg.Trace = tr
	return mustRun(t, name, cfg), tr
}

// TestTracedRunMatchesUntraced pins the zero-interference contract: the
// tracer only observes, so a traced run must produce exactly the report
// an untraced run does — same event count, same simulated time, same
// utilizations.
func TestTracedRunMatchesUntraced(t *testing.T) {
	for _, name := range []string{"optimstore", "hostoffload", "ctrlisp"} {
		plain := mustRun(t, name, testConfig(dnn.BERTLarge()))
		traced, tr := tracedRun(t, name, testConfig(dnn.BERTLarge()))
		if tr.Len() == 0 {
			t.Fatalf("%s: traced run recorded nothing", name)
		}
		if plain.SimTime != traced.SimTime || plain.SimEvents != traced.SimEvents {
			t.Errorf("%s: traced run diverged: time %v vs %v, events %d vs %d",
				name, plain.SimTime, traced.SimTime, plain.SimEvents, traced.SimEvents)
		}
		//simlint:allow floateq tracing must not perturb results at all: bit-exact by contract
		if plain.LinkUtil != traced.LinkUtil || plain.BusUtil != traced.BusUtil {
			t.Errorf("%s: traced run changed utilization: link %v vs %v, bus %v vs %v",
				name, plain.LinkUtil, traced.LinkUtil, plain.BusUtil, traced.BusUtil)
		}
	}
}

// phaseNames collects the distinct span names on the phase track.
func phaseNames(tr *tracing.Trace) map[string]int {
	names := map[string]int{}
	for _, e := range tr.Events() {
		if e.Kind == tracing.KindSpan && e.Track == "phase" {
			names[e.Name]++
		}
	}
	return names
}

func TestOptimStorePhaseSpans(t *testing.T) {
	r, tr := tracedRun(t, "optimstore", testConfig(dnn.BERTLarge()))
	names := phaseNames(tr)
	for _, want := range []string{"grad-transfer", "read", "kernel", "program", "writeback"} {
		if names[want] == 0 {
			t.Errorf("no %q phase spans (got %v)", want, names)
		}
	}
	if int64(names["kernel"]) < r.SimUnits {
		t.Errorf("kernel spans %d < simulated units %d", names["kernel"], r.SimUnits)
	}
}

func TestOptimStoreLambReduceSpans(t *testing.T) {
	cfg := testConfig(dnn.BERTLarge())
	cfg.Optimizer = optim.LAMB
	_, tr := tracedRun(t, "optimstore", cfg)
	names := phaseNames(tr)
	if names["lamb-reduce"] == 0 {
		t.Errorf("no lamb-reduce spans under LAMB (got %v)", names)
	}
}

func TestHostOffloadAndCtrlISPPhaseSpans(t *testing.T) {
	_, tr := tracedRun(t, "hostoffload", testConfig(dnn.BERTLarge()))
	names := phaseNames(tr)
	for _, want := range []string{"read", "gpu-batch", "writeback"} {
		if names[want] == 0 {
			t.Errorf("hostoffload: no %q phase spans (got %v)", want, names)
		}
	}
	_, tr = tracedRun(t, "ctrlisp", testConfig(dnn.BERTLarge()))
	names = phaseNames(tr)
	for _, want := range []string{"grad-transfer", "read-pull", "ctrl-kernel", "program-push"} {
		if names[want] == 0 {
			t.Errorf("ctrl-isp: no %q phase spans (got %v)", want, names)
		}
	}
}

func TestAnalyticSystemsEmitSyntheticSpans(t *testing.T) {
	r, tr := tracedRun(t, "gpuresident", testConfig(dnn.BERTLarge()))
	names := phaseNames(tr)
	if names["update"] != 1 {
		t.Fatalf("gpu-resident: update spans = %d, want 1 (%v)", names["update"], names)
	}
	if got := tr.BusyTime("phase", "update"); got != r.OptStepTime {
		t.Errorf("update span %v != OptStepTime %v", got, r.OptStepTime)
	}

	cfg := testConfig(dnn.BERTLarge())
	ctr := tracing.New("checkpoint")
	cfg.Trace = ctr
	cr, err := Checkpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr.BusyTime("phase", "ckpt/host-stream"); got != cr.HostStreamTime {
		t.Errorf("host-stream span %v != %v", got, cr.HostStreamTime)
	}
	if got := ctr.BusyTime("phase", "ckpt/in-storage-copy"); got != cr.InStorageCopyTime {
		t.Errorf("in-storage-copy span %v != %v", got, cr.InStorageCopyTime)
	}
}

// TestTraceReconcilesWithReportedLinkUtil is the end-to-end form of the
// acceptance invariant: the PCIe hold spans recorded in the trace, summed
// per direction and divided by the simulated span, must reproduce the
// report's LinkUtil (the busier direction) within 1e-9.
func TestTraceReconcilesWithReportedLinkUtil(t *testing.T) {
	r, tr := tracedRun(t, "optimstore", testConfig(dnn.BERTLarge()))
	var best float64
	seen := false
	for _, track := range tr.Tracks() {
		if !strings.HasSuffix(track, "/down") && !strings.HasSuffix(track, "/up") {
			continue
		}
		seen = true
		u := float64(tr.BusyTime(track, "hold")) / float64(r.SimTime)
		if u > best {
			best = u
		}
	}
	if !seen {
		t.Fatalf("no PCIe tracks in trace: %v", tr.Tracks())
	}
	if math.Abs(best-r.LinkUtil) > 1e-9 {
		t.Errorf("trace-derived link util %v, report says %v", best, r.LinkUtil)
	}
}
