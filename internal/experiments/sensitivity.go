package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/stats"
)

// runF4 regenerates the energy-breakdown figure on GPT-13B.
func runF4(opts Options) (*Result, error) {
	cfg := baseConfig(opts, dnn.GPT13B())
	rs, err := runSystems(opts, cfg, "hostoffload", "ctrlisp", "optimstore")
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("F4: per-parameter step energy (GPT-13B, Adam, mixed precision)",
		"system", "total-J", "pJ/param", "reduction-vs-offload")
	base := rs[0].Energy.Total()
	for _, r := range rs {
		t.AddRow(r.System, r.Energy.Total(), r.EnergyPerParamPJ(cfg.Model.Params),
			base/r.Energy.Total())
	}
	return &Result{Tables: []*stats.Table{
		t,
		core.EnergyTable("F4: energy breakdown by component (J per step)", rs),
	}}, nil
}

// runF5 regenerates the internal-parallelism sweep: channels × dies.
func runF5(opts Options) (*Result, error) {
	fig := stats.NewFigure("F5: step latency vs internal parallelism", "dies total", "opt-step seconds")
	t := stats.NewTable("F5: parallelism sweep (GPT-13B)",
		"channels", "dies/ch", "planes", "optimstore-s", "offload-s")
	chans := []int{2, 4, 8, 16}
	diesPer := []int{2, 4}
	if opts.Quick {
		chans = []int{4, 8}
		diesPer = []int{4}
	}
	for _, dpc := range diesPer {
		s := fig.AddSeries(fmt.Sprintf("optimstore %d dies/ch", dpc))
		so := fig.AddSeries(fmt.Sprintf("offload %d dies/ch", dpc))
		for _, ch := range chans {
			cfg := baseConfig(opts, dnn.GPT13B())
			cfg.SSD.Channels = ch
			cfg.SSD.DiesPerChannel = dpc
			rs, err := runSystems(opts, cfg, "optimstore", "hostoffload")
			if err != nil {
				return nil, err
			}
			planes := cfg.SSD.Geometry().Planes()
			t.AddRow(ch, dpc, planes, rs[0].OptStepTime.Seconds(), rs[1].OptStepTime.Seconds())
			s.Add(float64(ch*dpc), rs[0].OptStepTime.Seconds())
			so.Add(float64(ch*dpc), rs[1].OptStepTime.Seconds())
		}
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF6 regenerates the ODP design-space sweep: lanes and clock.
func runF6(opts Options) (*Result, error) {
	fig := stats.NewFigure("F6: step latency vs ODP throughput", "lanes", "opt-step seconds")
	t := stats.NewTable("F6: ODP sweep (GPT-13B, Adam)",
		"lanes", "clock-MHz", "elems/s-per-die", "optimstore-s")
	lanes := []int{1, 2, 4, 8, 16, 32}
	clocks := []int{200, 400}
	if opts.Quick {
		lanes = []int{1, 8, 32}
		clocks = []int{400}
	}
	for _, clk := range clocks {
		s := fig.AddSeries(fmt.Sprintf("%d MHz", clk))
		for _, ln := range lanes {
			cfg := baseConfig(opts, dnn.GPT13B())
			cfg.ODP.Lanes = ln
			cfg.ODP.ClockMHz = clk
			rs, err := runSystems(opts, cfg, "optimstore")
			if err != nil {
				return nil, err
			}
			t.AddRow(ln, clk, cfg.ODP.ThroughputElemsPerSec(13), rs[0].OptStepTime.Seconds())
			s.Add(float64(ln), rs[0].OptStepTime.Seconds())
		}
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}
