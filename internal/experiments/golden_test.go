package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/tracing"
)

// renderAll produces every byte an experiment run can emit — the rendered
// result (tables and figure data) plus each table's CSV, the formats the
// CLI writes to disk. Determinism claims below are over this full stream.
func renderAll(t *testing.T, opts Options) string {
	t.Helper()
	results, _, err := RunMany([]string{"T2", "F1"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		for _, tb := range r.Tables {
			b.WriteString(tb.CSV())
		}
		for _, f := range r.Figures {
			b.WriteString(f.Table().CSV())
		}
	}
	return b.String()
}

// TestGoldenDeterminism is the repository's end-to-end determinism pin:
// a small experiment suite rendered to its on-disk formats must be
// byte-identical across repeated runs and across worker-pool widths
// (sequential vs one worker per CPU). Any nondeterminism that slips past
// the simlint analyzers — wall-clock reads, global rand, map iteration
// feeding output — lands here.
func TestGoldenDeterminism(t *testing.T) {
	seq := Options{Quick: true, Parallel: 1}
	wide := Options{Quick: true, Parallel: runtime.GOMAXPROCS(0)}

	golden := renderAll(t, seq)
	if golden == "" {
		t.Fatal("empty experiment output")
	}
	if again := renderAll(t, seq); again != golden {
		t.Fatalf("sequential rerun differs:\n--- first ---\n%s--- rerun ---\n%s", golden, again)
	}
	if par := renderAll(t, wide); par != golden {
		t.Fatalf("parallel (%d workers) output differs from sequential:\n--- seq ---\n%s--- par ---\n%s",
			runtime.GOMAXPROCS(0), golden, par)
	}
	if par := renderAll(t, wide); par != renderAll(t, wide) {
		t.Fatal("parallel rerun differs from itself")
	}
}

// renderTrace runs the traced system comparison and serializes both the
// Chrome trace file and the rendered metrics — every byte `optimstore
// -trace` writes.
func renderTrace(t *testing.T, opts Options) string {
	t.Helper()
	res, traces, _, err := TraceSystems(opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tracing.WriteChrome(&b, traces...); err != nil {
		t.Fatal(err)
	}
	b.WriteString(res.String())
	return b.String()
}

// TestGoldenTraceDeterminism extends the determinism pin to the tracing
// layer: the Chrome trace file and the trace-derived metrics must be
// byte-identical across reruns and across worker-pool widths. Traces are
// recorded per job and assembled in submission order, so completion order
// must never leak into the file.
func TestGoldenTraceDeterminism(t *testing.T) {
	seq := Options{Quick: true, Parallel: 1}
	wide := Options{Quick: true, Parallel: runtime.GOMAXPROCS(0)}

	golden := renderTrace(t, seq)
	if golden == "" {
		t.Fatal("empty trace output")
	}
	if again := renderTrace(t, seq); again != golden {
		t.Fatal("sequential trace rerun differs")
	}
	if par := renderTrace(t, wide); par != golden {
		t.Fatalf("parallel (%d workers) trace differs from sequential", runtime.GOMAXPROCS(0))
	}
}
