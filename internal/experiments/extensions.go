package experiments

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/nand"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/units"
)

// runF13 regenerates the sparse-update extension study: embedding-table
// (DLRM-style) training where each step touches only a fraction of the
// parameters. Per-step traffic scales with the touched fraction for every
// system; the qualitative difference is the GC/endurance behaviour of the
// resulting random update stream (F11 measures that side).
func runF13(opts Options) (*Result, error) {
	t := stats.NewTable("F13: sparse embedding-table updates (DLRM-24B class, Adam)",
		"update-fraction", "touched-GB/step", "offload-s", "optimstore-s", "speedup")
	fig := stats.NewFigure("F13: step latency vs update fraction", "fraction", "opt-step seconds")
	sOff := fig.AddSeries("hostoffload")
	sOpt := fig.AddSeries("optimstore")
	fractions := []float64{0.0001, 0.001, 0.01, 0.1}
	if opts.Quick {
		fractions = []float64{0.001, 0.1}
	}
	type sparsePoint struct {
		off, opt  *core.Report
		touchedGB float64
	}
	results := runner.Map(opts.Parallel, fractions, func(frac float64) (sparsePoint, error) {
		model := dnn.DLRM()
		model.SparseFraction = frac
		cfg := baseConfig(opts, model)
		rs, err := runSystems(opts, cfg, "hostoffload", "optimstore")
		if err != nil {
			return sparsePoint{}, err
		}
		return sparsePoint{
			off:       rs[0],
			opt:       rs[1],
			touchedGB: units.Bytes(cfg.TouchedUnits() * cfg.ResidentBytesPerUnit()).GBf(),
		}, nil
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, frac := range fractions {
		p := results[i].Value
		t.AddRow(frac, p.touchedGB, p.off.OptStepTime.Seconds(), p.opt.OptStepTime.Seconds(),
			p.opt.Speedup(p.off))
		sOff.Add(frac, p.off.OptStepTime.Seconds())
		sOpt.Add(frac, p.opt.OptStepTime.Seconds())
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF14 regenerates the checkpointing extension study: snapshotting the
// optimizer state externally vs with in-storage copyback.
func runF14(opts Options) (*Result, error) {
	t := stats.NewTable("F14: optimizer-state checkpointing",
		"model", "state-GB", "host-stream-s", "in-storage-copy-s", "speedup", "2x-capacity-ok")
	models := []dnn.Model{dnn.GPT2XL(), dnn.GPT13B()}
	if !opts.Quick {
		models = append(models, dnn.GPT6B7(), dnn.GPT30B())
	}
	results := runner.Map(opts.Parallel, models, func(m dnn.Model) (*core.CheckpointReport, error) {
		return core.Checkpoint(baseConfig(opts, m))
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, m := range models {
		r := results[i].Value
		t.AddRow(m.Name, units.Bytes(r.StateBytes).GBf(), r.HostStreamTime.Seconds(),
			r.InStorageCopyTime.Seconds(), r.Speedup, r.CapacityOK)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// runF15 regenerates the overlap-model ablation: the scalar hidden-fraction
// formula vs the simulated layer-wise pipeline, which accounts for when
// each layer's gradients actually exist.
func runF15(opts Options) (*Result, error) {
	t := stats.NewTable("F15: optimizer/backward overlap models (GPT-13B, Adam)",
		"system", "no-overlap-s", "scalar-50%-s", "layerwise-sim-s", "exposed-opt-s")
	for _, sys := range []string{"hostoffload", "optimstore"} {
		none := baseConfig(opts, dnn.GPT13B())
		none.OverlapFraction = 0
		scalar := baseConfig(opts, dnn.GPT13B())
		layered := baseConfig(opts, dnn.GPT13B())
		layered.LayerwiseOverlap = true
		var rows []float64
		for _, cfg := range []core.Config{none, scalar, layered} {
			rs, err := runSystems(opts, cfg, sys)
			if err != nil {
				return nil, err
			}
			rows = append(rows, rs[0].StepTime.Seconds(), rs[0].OptStepTime.Seconds())
		}
		t.AddRow(sys, rows[0], rows[2], rows[4], rows[5])
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// runF16 regenerates the data-parallel scaling extension: tokens/s and
// scaling efficiency across worker counts, with the optimizer state
// sharded ZeRO-style across each worker's OptimStore SSD.
func runF16(opts Options) (*Result, error) {
	t := stats.NewTable("F16: data-parallel scaling (GPT-13B, Adam, 25 GB/s ring)",
		"workers", "shard-opt-s", "allreduce-s", "step-s", "tokens/s", "efficiency")
	fig := stats.NewFigure("F16: cluster throughput", "workers", "tokens/s")
	s := fig.AddSeries("optimstore cluster")
	workers := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		workers = []int{1, 4, 16}
	}
	results := runner.Map(opts.Parallel, workers, func(n int) (*core.ClusterReport, error) {
		cfg := baseConfig(opts, dnn.GPT13B())
		return core.RunCluster(cfg, core.DefaultCluster(n), "optimstore")
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, n := range workers {
		r := results[i].Value
		t.AddRow(n, r.ShardOptStep.Seconds(), r.AllReduce.Seconds(),
			r.StepTime.Seconds(), r.TokensPerSec, r.Efficiency)
		s.Add(float64(n), r.TokensPerSec)
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF17 regenerates the read-QoS extension: tail latency of foreground
// reads (e.g. inference serving from the same drive) while the training
// update stream hammers the planes, with and without program/erase
// suspend. Suspend lets a 65 µs read preempt a 300 µs program instead of
// queueing behind it.
func runF17(opts Options) (*Result, error) {
	t := stats.NewTable("F17: foreground-read QoS under update load",
		"read-suspend", "read-p50-us", "read-p99-us", "updates-done", "preemptions")
	rounds := 6
	if opts.Quick {
		rounds = 3
	}
	type qosResult struct {
		p50, p99          float64
		updates, preempts uint64
	}
	results := runner.Map(opts.Parallel, []bool{false, true}, func(suspend bool) (qosResult, error) {
		p50, p99, updates, preempts, err := measureReadQoS(suspend, rounds)
		return qosResult{p50, p99, updates, preempts}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, suspend := range []bool{false, true} {
		q := results[i].Value
		t.AddRow(suspend, q.p50, q.p99, q.updates, q.preempts)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// measureReadQoS runs a background update stream with periodic foreground
// reads and reports the read-latency percentiles.
func measureReadQoS(suspend bool, rounds int) (p50, p99 float64, updates, preempts uint64, err error) {
	cfg := regionConfig(0.2)
	cfg.Nand.ReadSuspend = suspend
	cfg.Nand.ResumeOverhead = 20 * sim.Microsecond
	if err := cfg.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < pages; lpa++ {
		dev.Preload(lpa)
	}

	// Background: `rounds` full update sweeps, windowed.
	total := pages * int64(rounds)
	var issued, done int64
	var pump func()
	pump = func() {
		for issued-done < 64 && issued < total {
			lpa := issued % pages
			issued++
			dev.ProgramUpdate(lpa, func() {
				done++
				pump()
			})
		}
	}
	pump()

	// Foreground: one random-ish read every 200 µs.
	lat := newHist()
	var reader func(i int64)
	reader = func(i int64) {
		if done >= total {
			return
		}
		lpa := (i * 7919) % pages
		start := eng.Now()
		dev.Read(lpa, func() {
			lat.Add((eng.Now() - start).Micros())
		})
		eng.Schedule(200*sim.Microsecond, func() { reader(i + 1) })
	}
	eng.Schedule(0, func() { reader(0) })

	wedged := true
	dev.Drain(func() { wedged = false })
	eng.Run()
	if wedged {
		return 0, 0, 0, 0, errWedged
	}
	var preemptTotal uint64
	for ch := 0; ch < cfg.Channels; ch++ {
		for _, die := range dev.Channel(ch).Dies() {
			preemptTotal += die.Preemptions()
		}
	}
	return lat.Percentile(50), lat.Percentile(99), dev.Stats().UpdateWrites, preemptTotal, nil
}

// runF18 regenerates the cell-mode trade study: operating the state region
// in SLC/MLC/TLC/QLC mode changes program latency (step time), endurance
// (lifetime) and capacity simultaneously — the three-way trade-off behind
// the SLC-region recommendation of F9.
func runF18(opts Options) (*Result, error) {
	t := stats.NewTable("F18: state-region cell mode (GPT-13B, Adam, OptimStore)",
		"cell", "tPROG/page", "opt-step-s", "capacity-TB", "lifetime-steps", "lifetime-days")
	fig := stats.NewFigure("F18: step time vs cell mode", "bits per cell", "opt-step seconds")
	s := fig.AddSeries("optimstore")
	cells := []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC}
	type cellPoint struct {
		report *core.Report
		end    *core.EnduranceReport
		tprog  string
	}
	results := runner.Map(opts.Parallel, cells, func(cell nand.CellType) (cellPoint, error) {
		cfg := baseConfig(opts, dnn.GPT13B())
		n := nand.ParamsFor(cell)
		n.BlocksPerPlane = cfg.SSD.Nand.BlocksPerPlane // keep the sim window small
		cfg.SSD.Nand = n
		rs, err := runSystems(opts, cfg, "optimstore")
		if err != nil {
			return cellPoint{}, err
		}
		end, err := core.RunEndurance(cfg, cell, opts.wafSteps())
		if err != nil {
			return cellPoint{}, err
		}
		return cellPoint{report: rs[0], end: end, tprog: n.ProgramLatency.String()}, nil
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, cell := range cells {
		p := results[i].Value
		if p.end.Fits {
			t.AddRow(cell.String(), p.tprog, p.report.OptStepTime.Seconds(),
				units.Bytes(p.end.DeviceBytes).TBf(), p.end.LifetimeSteps, p.end.LifetimeDays)
		} else {
			t.AddRow(cell.String(), p.tprog, p.report.OptStepTime.Seconds(),
				units.Bytes(p.end.DeviceBytes).TBf(), "-", "-")
		}
		s.Add(float64(i+1), p.report.OptStepTime.Seconds())
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF19 regenerates the GC stream-separation ablation: write amplification
// of a skewed update stream (a hot subset rewritten constantly over a cold
// majority) with GC relocations directed to their own blocks vs mixed into
// the update stream's blocks.
func runF19(opts Options) (*Result, error) {
	t := stats.NewTable("F19: GC hot/cold stream separation",
		"separation", "WAF", "gc-relocations", "updates/s (window)")
	rounds := 10
	if opts.Quick {
		rounds = 5
	}
	type sepResult struct {
		waf    float64
		relocs uint64
		rate   float64
	}
	results := runner.Map(opts.Parallel, []bool{false, true}, func(sep bool) (sepResult, error) {
		waf, relocs, rate, err := measureSkewedWAF(sep, rounds)
		return sepResult{waf, relocs, rate}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, sep := range []bool{false, true} {
		r := results[i].Value
		t.AddRow(sep, r.waf, r.relocs, r.rate)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// measureSkewedWAF drives a hot/cold skewed update stream: 25% of the
// pages receive 90% of the updates.
func measureSkewedWAF(separation bool, rounds int) (waf float64, relocs uint64, rate float64, err error) {
	cfg := regionConfig(0.125)
	cfg.HotColdSeparation = separation
	if err := cfg.Validate(); err != nil {
		return 0, 0, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	// Precondition in shuffled order so hot and cold pages start physically
	// interleaved, as on an aged drive — the state stream separation has to
	// untangle.
	order := make([]int64, pages)
	for i := range order {
		order[i] = int64(i)
	}
	shuf := uint64(0x2545F4914F6CDD1D)
	for i := len(order) - 1; i > 0; i-- {
		shuf = shuf*6364136223846793005 + 1442695040888963407
		j := int((shuf >> 33) % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	for _, lpa := range order {
		dev.Preload(lpa)
	}
	hot := pages / 4
	// Deterministic LCG picks the next update target: 90% hot, 10% cold.
	state := uint64(0x853C49E6748FEA9B)
	next := func() int64 {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		if r%100 < 98 {
			return int64(r) % hot
		}
		return hot + int64(r)%(pages-hot)
	}
	total := pages * int64(rounds)
	var issued, done int64
	var baseHost, baseGC uint64
	var start sim.Time
	var pump func()
	pump = func() {
		for issued-done < 64 && issued < total {
			issued++
			dev.ProgramUpdate(next(), func() {
				done++
				if done == total/4 { // skip warm-up for steady-state WAF
					baseHost = dev.FTL().HostProgrammed()
					baseGC = dev.FTL().GCProgrammed()
					start = eng.Now()
				}
				pump()
			})
		}
	}
	pump()
	ok := false
	dev.Drain(func() { ok = true })
	eng.Run()
	if !ok {
		return 0, 0, 0, errWedged
	}
	host := dev.FTL().HostProgrammed() - baseHost
	gc := dev.FTL().GCProgrammed() - baseGC
	if host == 0 {
		return 1, 0, 0, nil
	}
	waf = float64(host+gc) / float64(host)
	elapsed := (eng.Now() - start).Seconds()
	if elapsed > 0 {
		rate = float64(host) / elapsed
	}
	return waf, dev.Stats().GCRelocations, rate, nil
}
