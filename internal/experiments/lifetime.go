package experiments

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/nand"
	"repro/internal/stats"
	"repro/internal/units"
)

// runF9 regenerates the endurance study: device lifetime under the
// training update stream, per cell mode, on a model whose state fits.
func runF9(opts Options) (*Result, error) {
	t := stats.NewTable("F9: endurance of the state region (GPT-13B, Adam)",
		"cell", "device-TB", "state-fits", "WAF", "lifetime-steps", "lifetime-days")
	fig := stats.NewFigure("F9: lifetime vs cell mode", "cell index", "lifetime steps")
	s := fig.AddSeries("lifetime")
	cells := []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC}
	for i, cell := range cells {
		cfg := baseConfig(opts, dnn.GPT13B())
		rep, err := core.RunEndurance(cfg, cell, opts.wafSteps())
		if err != nil {
			return nil, err
		}
		if !rep.Fits {
			t.AddRow(cell.String(), units.Bytes(rep.DeviceBytes).TBf(), false, "-", "-", "-")
			continue
		}
		t.AddRow(cell.String(), units.Bytes(rep.DeviceBytes).TBf(), true, rep.MeasuredWAF,
			rep.LifetimeSteps, rep.LifetimeDays)
		s.Add(float64(i), rep.LifetimeSteps)
	}
	t2 := stats.NewTable("F9b: per-model TLC lifetime",
		"model", "state-GB", "lifetime-steps", "lifetime-days")
	models := []dnn.Model{dnn.GPT2XL(), dnn.GPT13B()}
	if !opts.Quick {
		models = append(models, dnn.GPT6B7(), dnn.GPT30B())
	}
	for _, m := range models {
		cfg := baseConfig(opts, m)
		rep, err := core.RunEndurance(cfg, nand.TLC, opts.wafSteps())
		if err != nil {
			return nil, err
		}
		if !rep.Fits {
			t2.AddRow(m.Name, units.Bytes(rep.StateBytes).GBf(), "-", "-")
			continue
		}
		t2.AddRow(m.Name, units.Bytes(rep.StateBytes).GBf(), rep.LifetimeSteps, rep.LifetimeDays)
	}
	return &Result{Tables: []*stats.Table{t, t2}, Figures: []*stats.Figure{fig}}, nil
}
