package core

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/units"
)

// TestCheckpointBandwidthDecimal pins the MB/s → GB/s conversion Checkpoint
// uses to pick its streaming bottleneck. Bandwidths are decimal end to end:
// aggregate channel MB/s divided by exactly 1000 — never 1024 — to compare
// against the PCIe GB/s rating. PR 1 fixed precisely this class of bug, so
// this test is the regression pin for it.
func TestCheckpointBandwidthDecimal(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())

	mb := cfg.SSD.ChannelMBps()
	wantMB := units.MBps(cfg.SSD.Nand.BusMBps * cfg.SSD.Channels)
	//simlint:allow floateq integer-valued rates convert exactly
	if mb != wantMB {
		t.Fatalf("ChannelMBps = %v, want %v", mb, wantMB)
	}

	gb := mb.GBps()
	//simlint:allow unitconv,floateq this test pins the decimal factor itself
	if float64(gb) != float64(mb)/1000 {
		t.Fatalf("GBps = %v, want decimal conversion of %v MB/s", gb, mb)
	}
	//simlint:allow unitconv,floateq guard against the binary-division bug
	if float64(gb) == float64(mb)/1024 {
		t.Fatalf("GBps = %v: MB/s was divided by 1024, not 1000", gb)
	}

	// The stream time must come from the narrower of PCIe and the channel
	// buses, in those decimal units, over the exact state byte count.
	r, err := Checkpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bottleneck := cfg.Link.EffectiveGBps()
	if gb < bottleneck {
		bottleneck = gb
	}
	if want := bottleneck.TransferTimeF(float64(r.StateBytes)); r.HostStreamTime != want {
		t.Fatalf("HostStreamTime = %v, want %v (bottleneck %v GB/s)",
			r.HostStreamTime, want, bottleneck)
	}
}

// TestCheckpointCapacityBinary pins the other side of the convention:
// capacity math is binary, flowing through Geometry().TotalBytes() from the
// 16 KiB page size — decimal 1e9/1e12 factors must never appear in it.
func TestCheckpointCapacityBinary(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	n := cfg.SSD.Nand

	planes := int64(cfg.SSD.Channels) * int64(cfg.SSD.DiesPerChannel) * int64(n.PlanesPerDie)
	const physBlocksPerPlane = 1024 // full device, not the windowed test geometry
	want := planes * physBlocksPerPlane * int64(n.PagesPerBlock) * int64(n.PageSize)

	if got := fullGeometryBytes(cfg); got != want {
		t.Fatalf("fullGeometryBytes = %d, want %d (binary product of the topology)", got, want)
	}
	// Binary capacity: an exact multiple of the KiB-aligned page size.
	if units.Bytes(want)%units.Bytes(n.PageSize) != 0 || int64(n.PageSize)%int64(units.KiB) != 0 {
		t.Fatalf("capacity %d not aligned to the %d-byte page", want, n.PageSize)
	}

	// CapacityOK must be judged against that binary figure (scaled by
	// over-provisioning), not a decimal reinterpretation of it.
	r, err := Checkpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOK := float64(r.CapacityNeeded) <= float64(want)*(1-cfg.SSD.OverProvision)
	if r.CapacityOK != wantOK {
		t.Fatalf("CapacityOK = %v, want %v against %d-byte device", r.CapacityOK, wantOK, want)
	}
}
