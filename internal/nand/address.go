package nand

import "fmt"

// Addr identifies one physical page inside a die (plane, block, page).
// Channel and die selection live a level up, in the ssd package.
type Addr struct {
	Plane int
	Block int
	Page  int
}

// String renders the address as pl/blk/pg.
func (a Addr) String() string {
	return fmt.Sprintf("pl%d/blk%d/pg%d", a.Plane, a.Block, a.Page)
}

// BlockAddr returns the address of the containing block (page 0).
func (a Addr) BlockAddr() Addr { return Addr{Plane: a.Plane, Block: a.Block} }

// valid reports whether the address is inside the geometry of p.
func (a Addr) valid(p Params) bool {
	return a.Plane >= 0 && a.Plane < p.PlanesPerDie &&
		a.Block >= 0 && a.Block < p.BlocksPerPlane &&
		a.Page >= 0 && a.Page < p.PagesPerBlock
}
