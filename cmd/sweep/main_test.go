package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/tracing"
)

func testSpec(t *testing.T, parallel int) sweepSpec {
	t.Helper()
	m, err := dnn.ByName("GPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	return sweepSpec{
		Dim:      "channels",
		Values:   []int{2, 4},
		Model:    m,
		Systems:  []string{"hostoffload", "optimstore"},
		Units:    64,
		Parallel: parallel,
	}
}

func collect(t *testing.T, spec sweepSpec) string {
	t.Helper()
	var b strings.Builder
	if _, err := spec.stream(func(row sweepRow) { b.WriteString(row.csv) }); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParallelMatchesSequential pins the determinism guarantee: the same
// sweep through the worker pool is byte-identical to -parallel 1, which in
// turn matches a plain sequential loop over the grid.
func TestParallelMatchesSequential(t *testing.T) {
	seq := collect(t, testSpec(t, 1))
	par := collect(t, testSpec(t, 8))
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}

	// Reference path: no runner involved at all.
	spec := testSpec(t, 1)
	var ref strings.Builder
	for _, v := range spec.Values {
		for _, name := range spec.Systems {
			r, err := spec.runPoint(point{value: v, system: name})
			if err != nil {
				t.Fatal(err)
			}
			ref.WriteString(r.csv)
		}
	}
	if seq != ref.String() {
		t.Fatalf("runner output differs from plain loop:\n--- runner ---\n%s--- loop ---\n%s", seq, ref.String())
	}
}

// TestInfeasiblePointsEmitted checks infeasible grid cells still produce a
// row (feasible=false, NaN metrics) instead of being dropped, so CSV x-axes
// stay aligned across systems.
func TestInfeasiblePointsEmitted(t *testing.T) {
	spec := testSpec(t, 2)
	// GPT-13B Adam state cannot stay resident on a 40 GB GPU.
	spec.Systems = []string{"gpuresident", "optimstore"}
	display := map[string]string{"gpuresident": "gpu-resident", "optimstore": "optimstore"}
	out := collect(t, spec)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != len(spec.Values)*len(spec.Systems) {
		t.Fatalf("got %d rows, want %d:\n%s", len(lines), len(spec.Values)*len(spec.Systems), out)
	}
	for i, line := range lines {
		wantSys := spec.Systems[i%len(spec.Systems)]
		if !strings.Contains(line, ","+display[wantSys]+",") {
			t.Fatalf("row %d = %q, want system %s (order broken)", i, line, wantSys)
		}
		if wantSys == "gpuresident" {
			if !strings.Contains(line, ",false,NaN") {
				t.Fatalf("infeasible row %q missing feasible=false/NaN metrics", line)
			}
		} else if !strings.Contains(line, ",true,") {
			t.Fatalf("feasible row %q missing feasible=true", line)
		}
	}
}

// TestBuskbpsAlias checks the deprecated dimension name still works, maps
// to the MB/s field, and warns on the provided writer.
func TestBuskbpsAlias(t *testing.T) {
	var warn strings.Builder
	if got := canonicalDim("buskbps", &warn); got != "busmbps" {
		t.Fatalf("canonicalDim(buskbps) = %q, want busmbps", got)
	}
	if !strings.Contains(warn.String(), "deprecated") {
		t.Fatalf("no deprecation warning emitted: %q", warn.String())
	}
	warn.Reset()
	if got := canonicalDim("busmbps", &warn); got != "busmbps" || warn.Len() != 0 {
		t.Fatalf("canonicalDim(busmbps) = %q (warn %q)", got, warn.String())
	}

	m, _ := dnn.ByName("GPT-13B")
	cfg := core.DefaultConfig(m)
	if err := apply(&cfg, "busmbps", 800); err != nil {
		t.Fatal(err)
	}
	if cfg.SSD.Nand.BusMBps != 800 {
		t.Fatalf("BusMBps = %d, want 800", cfg.SSD.Nand.BusMBps)
	}
	if err := apply(&cfg, "buskbps", 800); err == nil {
		t.Fatal("raw buskbps should no longer be a valid dimension after canonicalisation")
	}
}

// TestTracedSweepDeterministicAcrossWidths records a trace per point at
// two pool widths and checks the combined Chrome file is byte-identical:
// rows carry traces out of the pool in grid order, so serialization never
// depends on completion order.
func TestTracedSweepDeterministicAcrossWidths(t *testing.T) {
	render := func(parallel int) string {
		spec := testSpec(t, parallel)
		spec.Trace = true
		var traces []*tracing.Trace
		if _, err := spec.stream(func(row sweepRow) {
			if row.trace == nil {
				t.Fatal("traced sweep emitted a row without a trace")
			}
			traces = append(traces, row.trace)
		}); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := tracing.WriteChrome(&b, traces...); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatal("combined Chrome trace differs between -parallel 1 and 8")
	}
	if !strings.Contains(seq, `"channels=2/hostoffload"`) {
		t.Fatal("trace missing per-point process label")
	}
}

// TestHeaderHasFeasibleColumn pins the CSV schema.
func TestHeaderHasFeasibleColumn(t *testing.T) {
	h := sweepHeader()
	if !strings.HasPrefix(h, "dim,value,system,feasible,") {
		t.Fatalf("header = %q", h)
	}
	if !strings.HasSuffix(strings.TrimSuffix(h, "\n"), ",faults,ckpt_s,recovery_s") {
		t.Fatalf("header missing fault columns: %q", h)
	}
	if cols := strings.Count(h, ","); cols != strings.Count(
		"dim,2,channels,true,0,0,0,0,0,0,0,0,0,0", ",") {
		t.Fatalf("header has %d commas", cols)
	}
}

// TestFaultedSweepDeterministic pins golden determinism for faulted sweep
// CSV: a mixed fault storm with a checkpoint policy emits byte-identical
// rows at every pool width, the fault columns are populated, and every
// row has exactly the header's column count.
func TestFaultedSweepDeterministic(t *testing.T) {
	faulted := func(parallel int) sweepSpec {
		spec := testSpec(t, parallel)
		spec.Fault = fault.Spec{
			Seed: 11, PowerLossPerSec: 2_000, DieFailPerSec: 1_000, ECCPerSec: 4_000,
			HorizonMs: 5,
		}
		spec.Checkpoint = fault.CheckpointInPlace
		return spec
	}
	seq := collect(t, faulted(1))
	par := collect(t, faulted(8))
	if seq != par {
		t.Fatalf("faulted sweep differs across widths:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
	wantCols := strings.Count(sweepHeader(), ",")
	var fired bool
	for _, line := range strings.Split(strings.TrimSuffix(seq, "\n"), "\n") {
		if got := strings.Count(line, ","); got != wantCols {
			t.Fatalf("row has %d commas, header has %d: %q", got, wantCols, line)
		}
		f := strings.Split(line, ",")
		if f[len(f)-3] != "0" {
			fired = true
		}
	}
	if !fired {
		t.Fatal("no sweep point fired any faults")
	}
}
