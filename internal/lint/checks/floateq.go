package checks

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint"
)

// FloatEq flags == and != between floating-point values in test files.
// Exact float comparison in a test encodes an accident of rounding as a
// contract; tests should assert tolerances through an approx helper. Two
// escapes exist by design: helpers whose own name marks them as approx
// machinery (approxEqual, withinDelta, …) may compare floats to implement
// themselves, and genuinely bit-exact assertions (golden determinism
// tests) take //simlint:allow floateq with a reason.
var FloatEq = &lint.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floats in _test.go files outside approx helpers; " +
		"assert with a tolerance helper or annotate bit-exact intent",
	Run: runFloatEq,
}

// approxHelperPattern matches function names that are allowed to compare
// floats exactly because they implement the tolerance machinery.
const approxHelperPattern = `(?i)(approx|almost|close|within|delta|near|tol)`

func runFloatEq(pass *lint.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if lint.MatchesFuncName(approxHelperPattern, fd.Name.Name) {
				continue
			}
			checkFloatComparisons(pass, fd.Body)
		}
	}
	return nil
}

func checkFloatComparisons(pass *lint.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested closures named nowhere can't be approx helpers; inspect
		// everything below the declaration uniformly.
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, xok := pass.Info.Types[be.X]
		yt, yok := pass.Info.Types[be.Y]
		if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
			return true
		}
		// Both sides constant: compile-time fact, not a flaky assertion.
		if xt.Value != nil && yt.Value != nil {
			return true
		}
		// x != x is the portable NaN test; leave it alone.
		if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
			return true
		}
		pass.Reportf(be.Pos(), "floateq",
			"exact float comparison (%s) in test; use an approx/delta helper, or //simlint:allow floateq for intentionally bit-exact checks", be.Op)
		return true
	})
}

// sameIdent reports whether both expressions are the same plain identifier.
func sameIdent(x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}
