package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/optim"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// HostOffload is the ZeRO-Infinity-style baseline: optimizer state lives on
// the SSD, but every step the full resident state is read out over the
// channel buses and PCIe, updated by the GPU (a trivially memory-bound
// kernel), and written back. Gradients are already on the GPU, so the
// external traffic per parameter is twice the resident footprint.
type HostOffload struct {
	cfg Config
}

// NewHostOffload builds the baseline for a configuration.
func NewHostOffload(cfg Config) *HostOffload { return &HostOffload{cfg: cfg} }

// Name implements System.
func (s *HostOffload) Name() string { return "hostoffload" }

// Run implements System.
func (s *HostOffload) Run() (*Report, error) {
	cfg := s.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	if cfg.Trace != nil {
		eng.SetTracer(cfg.Trace)
	}
	dev := ssd.NewDevice(eng, cfg.SSD)
	geo := dev.Geometry()
	link := host.NewLink(eng, cfg.Link)
	gpu := host.NewGPU(eng, cfg.GPU)

	simUnits := cfg.SimUnits()
	comps := cfg.Comps()
	// State placement uses the same layout machinery; the baseline is
	// insensitive to it (all pages travel anyway) but keeping it identical
	// makes comparisons apples-to-apples.
	lay, err := layout.New(geo, comps, simUnits, cfg.Layout)
	if err != nil {
		return nil, err
	}
	if lay.LogicalPages() > dev.FTL().LogicalPages() {
		return nil, fmt.Errorf("core: window exceeds device capacity — lower MaxSimUnits")
	}
	dev.SetPlaneMapper(lay.PlaneMapper())
	for lpa := int64(0); lpa < lay.LogicalPages(); lpa++ {
		dev.Preload(lpa)
	}
	inj := armFaults(eng, dev, cfg)

	elems := cfg.ElemsPerPage()
	residentB := cfg.ResidentBytesPerUnit()
	gradB := cfg.GradBytesPerUnit()
	kernel := optim.KernelFor(cfg.Optimizer).FlopsPerElem
	pageSize := int64(geo.PageSize)

	// GPU work batches several units per kernel launch, as a real fused
	// optimizer kernel would.
	unitsPerBatch := cfg.TransferChunkBytes / residentB
	if unitsPerBatch < 1 {
		unitsPerBatch = 1
	}

	// Layer-wise overlap: the GPU kernel for a batch needs that batch's
	// gradients, which the backward pass produces over time. (State reads
	// from the SSD are gradient-independent and overlap freely.)
	// Gradients are already on the GPU: availability needs no transfer,
	// just timed resolution — still posted as one batch.
	nAvail := (simUnits + unitsPerBatch - 1) / unitsPerBatch
	avail := gradSchedule(cfg, nAvail)
	gradReady := make([]*future, nAvail)
	arrivals := make([]sim.Timed, nAvail)
	for k := range gradReady {
		f := &future{}
		gradReady[k] = f
		arrivals[k] = sim.Timed{Delay: avail[k], Fn: f.resolve}
	}
	eng.ScheduleBatch(arrivals)

	var endTime sim.Time
	finished := false
	var completed int64
	unitDone := func() {
		completed++
		if completed == simUnits {
			dev.Drain(func() {
				disarmFaults(inj)
				endTime = eng.Now()
				finished = true
			})
		}
	}

	// Admission window: ~4 units in flight per plane-slot a unit occupies,
	// so planes stay pipelined regardless of how many pages a unit has
	// (SGD's single-page units need a 3× deeper window than Adam's).
	inflightCap := int64(4 * geo.Planes() / comps)
	if min := int64(4 * geo.Dies()); inflightCap < min {
		inflightCap = min
	}
	var next int64
	var launch func()

	// Batch accumulator: units whose reads finished wait here for a PCIe +
	// GPU + PCIe round trip, then write back.
	var batch []int64
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		ids := batch
		batch = nil
		n := int64(len(ids))
		// HBM traffic: state read+written, gradient read, weights written.
		hbmBytes := float64(n * (2*residentB + gradB + cfg.WeightOutBytesPerUnit()))
		flops := float64(n) * float64(elems) * float64(kernel)
		newest := ids[0]
		for _, u := range ids {
			if u > newest {
				newest = u
			}
		}
		grads := gradReady[newest/unitsPerBatch]
		sim.Chain(nil,
			func(nx func()) { link.FromDevice(n*residentB, nx) },
			func(nx func()) { grads.then(nx) },
			func(nx func()) { gpu.Run(flops, hbmBytes, span(eng, "gpu-batch", nx)) },
			func(nx func()) { link.ToDevice(n*residentB, nx) },
			func(nx func()) {
				for _, u := range ids {
					c := sim.NewCounter(comps, span(eng, "writeback", func() {
						unitDone()
						launch()
					}))
					for comp := 0; comp < comps; comp++ {
						dev.Write(lay.LPA(u, comp), c.Done)
					}
				}
				nx()
			},
		)
	}

	var readsArrived int64
	startUnit := func(u int64) {
		c := sim.NewCounter(comps, span(eng, "read", func() {
			batch = append(batch, u)
			readsArrived++
			// Flush full batches; also flush when no reads remain
			// outstanding — with a small admission window the batch may
			// never fill (window < batch size), and at the tail no further
			// arrivals can complete it.
			if int64(len(batch)) >= unitsPerBatch || readsArrived == next {
				flushBatch()
			}
		}))
		for comp := 0; comp < comps; comp++ {
			dev.Read(lay.LPA(u, comp), c.Done)
		}
	}
	launch = func() {
		for next < simUnits && next-completed < inflightCap {
			u := next
			next++
			startUnit(u)
		}
	}
	launch()
	eng.Run()
	if !finished {
		return nil, fmt.Errorf("core: hostoffload simulation wedged at %v (%d/%d units)",
			eng.Now(), completed, simUnits)
	}

	scale := cfg.ScaleFactor()
	counts := dev.Counts()
	totalUnits := cfg.TouchedUnits()
	r := &Report{
		System:              s.Name(),
		Model:               cfg.Model.Name,
		Optimizer:           cfg.Optimizer.String(),
		Precision:           cfg.Precision.String(),
		Params:              cfg.Model.Params,
		TotalUnits:          totalUnits,
		SimUnits:            simUnits,
		SimTime:             endTime,
		SimEvents:           eng.Fired(),
		SimPCIeToDevBytes:   int64(link.BytesToDevice()),
		SimPCIeFromDevBytes: int64(link.BytesFromDevice()),
		OptStepTime:         endTime.Scale(scale),
		PCIeBytes:           2 * residentB * totalUnits,
		BusBytes:            int64(float64(counts.BytesIn+counts.BytesOut) * scale),
		NANDReadBytes:       int64(float64(counts.Reads) * float64(pageSize) * scale),
		NANDProgramBytes:    int64(float64(counts.Programs) * float64(pageSize) * scale),
		DRAMBytes:           2 * residentB * totalUnits, // controller DRAM staging
		HBMBytes:            (2*residentB + gradB + cfg.WeightOutBytesPerUnit()) * totalUnits,
		WAF:                 dev.Stats().WAF,
		Feasible:            true,
	}
	r.LinkUtil = link.Utilization()
	r.BusUtil = meanBusUtil(dev)
	r.GPUUtil = gpu.Utilization()
	evalEnergy(r, energy.Activity{
		NANDReadBytes:    float64(r.NANDReadBytes),
		NANDProgramBytes: float64(r.NANDProgramBytes),
		NANDEraseBytes:   float64(counts.Erases) * float64(cfg.SSD.Nand.BlockBytes()) * scale,
		BusBytes:         float64(r.BusBytes),
		PCIeBytes:        float64(r.PCIeBytes),
		DRAMBytes:        float64(r.DRAMBytes),
		HBMBytes:         float64(r.HBMBytes),
		GPUOps:           float64(totalUnits) * float64(elems) * float64(kernel),
	})
	cfg.endToEnd(r)
	accountFaults(cfg, r, inj)
	return r, nil
}
