// Package sim implements a deterministic discrete-event simulation kernel.
//
// All timing models in this repository (NAND dies, channel buses, PCIe
// links, on-die processing units) are built on this engine. Time is a
// simple int64 nanosecond counter; events are closures ordered by
// (time, insertion sequence), which makes every run bit-for-bit
// reproducible regardless of map iteration order or goroutine scheduling —
// the engine is strictly single-threaded.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Common durations, as multiples of the base nanosecond tick.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Scale multiplies the duration by a dimensionless factor (extrapolation
// ratios, overlap fractions), rounding half away from zero back to whole
// nanoseconds. Rounding rather than truncating keeps scaling symmetric
// around zero and centres the extrapolation error at zero instead of
// biasing every scaled duration short by up to a nanosecond.
func (t Time) Scale(k float64) Time { return Time(math.Round(float64(t) * k)) }

// Micros converts a simulated duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a simulated duration to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, for reports and tests.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Tracer observes engine and resource activity. The engine holds at most
// one; every hook is guarded by a nil check so the disabled state costs a
// single branch and zero allocations on the hot paths. Implementations
// must be deterministic functions of their inputs — trace output is held
// to the same byte-for-byte reproducibility bar as every other simulator
// output (internal/tracing provides the standard recorder and sinks).
type Tracer interface {
	// Span records a completed interval [start, end] on a named track
	// (resource hold times, model phase spans).
	Span(track, name string, start, end Time)
	// Instant records a point event (engine event fired/cancelled).
	Instant(track, name string, at Time)
	// Counter records a sampled value at a point in time (queue depths,
	// units in use).
	Counter(track, name string, at Time, value float64)
}

// Event lifecycle states. A pending event is queued; it leaves the queue
// exactly once, by firing or by cancellation, and the two are
// distinguishable forever after (Fired vs Canceled).
const (
	statePending uint8 = iota
	stateFired
	stateCanceled
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
//
// Events are pooled: once an event has fired or been cancelled the engine
// recycles the struct for a later Schedule/At call. A retained *Event
// stays accurate (At/Fired/Canceled, and Cancel stays a no-op) until the
// engine reuses it, so handles must not be kept past the point where the
// owner knows the event completed — clear them in the callback or after
// Cancel, as the in-tree callers do.
//
//simlint:pooled
type Event struct {
	at  Time
	seq uint64
	fn  func()
	// afn/arg is the allocation-free callback form used by the kernel's
	// pooled internal paths: a package-level function plus a pointer-typed
	// argument costs no closure allocation per event.
	afn   func(any)
	arg   any
	index int32
	state uint8
}

// At reports the simulated time this event will fire at.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel removed the event before it fired. An
// event that actually executed reports false (see Fired).
func (e *Event) Canceled() bool { return e.state == stateCanceled }

// Fired reports whether the event executed.
func (e *Event) Fired() bool { return e.state == stateFired }

// eventLess is the engine's total order: time, ties broken by insertion
// sequence. Sequences are unique, so the order is strict — heap shape can
// never leak into firing order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; construct with NewEngine.
//
// The pending-event queue is an inlined 4-ary min-heap specialized to
// *Event: compared to container/heap's binary heap over an interface, it
// removes interface dispatch on every comparison and swap, halves tree
// depth (fewer cache lines touched per operation), and sifts with direct
// slice writes instead of Swap calls.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*Event
	free    []*Event // recycled Event structs (see Event doc)
	fired   uint64
	stopped bool
	trace   Tracer
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// SetTracer installs (or, with nil, removes) the engine's tracer. Install
// it before scheduling work: events and resource activity are only
// observed from the moment the tracer is present.
func (e *Engine) SetTracer(t Tracer) { e.trace = t }

// Tracer returns the installed tracer, or nil when tracing is disabled.
// Model code emitting phase spans guards on this exactly like the engine
// does internally.
func (e *Engine) Tracer() Tracer { return e.trace }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far. Useful for
// detecting runaway simulations in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// alloc takes an Event from the freelist (or the heap allocator when the
// freelist is dry) and initializes it as pending at time t.
//
//simlint:hotpath
func (e *Engine) alloc(t Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		//simlint:allow hotalloc pool growth: one-time allocation while the freelist warms up
		ev = &Event{}
	}
	*ev = Event{at: t, seq: e.seq}
	e.seq++
	return ev
}

// recycle returns a completed (fired or cancelled) event to the freelist.
// The callback fields are dropped immediately so the pool never pins model
// closures; at/seq/state stay readable through retained handles until the
// struct is reused.
//
//simlint:hotpath
//simlint:release
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	//simlint:allow hotalloc amortized freelist growth; steady state reuses storage
	e.free = append(e.free, ev)
}

// siftUp moves ev toward the root from slot i until the heap order holds.
func (e *Engine) siftUp(i int, ev *Event) {
	q := e.queue
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown moves ev toward the leaves from slot i until the heap order
// holds, comparing against the minimum of up to four children per level.
func (e *Engine) siftDown(i int, ev *Event) {
	q := e.queue
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], q[m]) {
				m = j
			}
		}
		if !eventLess(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = int32(i)
		i = m
	}
	q[i] = ev
	ev.index = int32(i)
}

// push inserts a pending event into the heap.
func (e *Engine) push(ev *Event) {
	//simlint:allow hotalloc amortized queue growth; steady state reuses storage
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue)-1, ev)
}

// pop removes and returns the earliest pending event.
func (e *Engine) pop() *Event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
	top.index = -1
	return top
}

// remove deletes the event at heap slot i (cancellation).
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		e.siftDown(i, last)
		if int(last.index) == i {
			e.siftUp(i, last)
		}
	}
	ev.index = -1
}

// Schedule arranges for fn to run delay nanoseconds after the current
// simulated time. A negative delay panics: time travel indicates a model
// bug and must not be silently clamped. A zero delay is legal and fires
// after all events already scheduled for the current instant.
//
//simlint:hotpath
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		//simlint:allow hotalloc cold panic path; formatting happens only on a model bug
		panic(fmt.Sprintf("sim: negative delay %d at t=%d", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t, which must not be
// in the past.
//
//simlint:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		//simlint:allow hotalloc cold panic path; formatting happens only on a model bug
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	ev := e.alloc(t)
	ev.fn = fn
	e.push(ev)
	return ev
}

// scheduleArg is the allocation-free internal scheduling path: fn is a
// package-level function and arg a pooled pointer, so a steady-state
// schedule-and-fire cycle allocates nothing (the Event itself comes from
// the freelist, and a pointer in an interface value does not escape).
//
//simlint:hotpath
func (e *Engine) scheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		//simlint:allow hotalloc cold panic path; formatting happens only on a model bug
		panic(fmt.Sprintf("sim: negative delay %d at t=%d", delay, e.now))
	}
	ev := e.alloc(e.now + delay)
	ev.afn = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// Timed pairs a delay with a callback for ScheduleBatch.
type Timed struct {
	Delay Time
	Fn    func()
}

// ScheduleBatch schedules every item relative to the current simulated
// time in one call. Insertion sequence follows slice order, so the firing
// order is identical to calling Schedule in a loop; what changes is cost:
// a batch that is large relative to the pending queue is appended whole
// and re-heapified bottom-up (O(queue+batch)) instead of sifting each
// event up a log-depth path (O(batch·log(queue))) — the shape that
// matters for the per-die fan-out storms at simulation start, where
// thousands of events land in an empty queue.
//
// Batch events return no handles and cannot be cancelled individually; a
// fan-out that needs cancellation schedules through Schedule/At.
//
//simlint:hotpath
func (e *Engine) ScheduleBatch(items []Timed) {
	for i := range items {
		if items[i].Delay < 0 {
			panic(fmt.Sprintf("sim: negative delay %d in batch item %d at t=%d", //simlint:allow hotalloc cold panic path; formatting happens only on a model bug
				items[i].Delay, i, e.now))
		}
	}
	// Small batches against a deep queue: individual pushes touch fewer
	// slots than a full re-heapify would.
	if len(items) < 8 || len(items) < len(e.queue)>>2 {
		for i := range items {
			ev := e.alloc(e.now + items[i].Delay)
			ev.fn = items[i].Fn
			e.push(ev)
		}
		return
	}
	for i := range items {
		ev := e.alloc(e.now + items[i].Delay)
		ev.fn = items[i].Fn
		ev.index = int32(len(e.queue))
		//simlint:allow hotalloc amortized queue growth; steady state reuses storage
		e.queue = append(e.queue, ev)
	}
	for i := (len(e.queue) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i, e.queue[i])
	}
}

// Cancel removes a scheduled event. Cancelling an event that already
// fired, or was already cancelled, is a harmless no-op — in particular a
// fired event stays Fired (and reports Canceled() == false), so callers
// can always distinguish "ran" from "removed before running".
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.state != statePending || ev.index < 0 {
		return
	}
	ev.state = stateCanceled
	e.remove(int(ev.index))
	e.recycle(ev)
	if e.trace != nil {
		e.trace.Instant("engine", "cancel", e.now)
	}
}

// Step executes the single earliest pending event and advances the clock to
// its timestamp. It returns false when the queue is empty.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.fired++
	ev.state = stateFired
	if e.trace != nil {
		e.trace.Instant("engine", "fire", ev.at)
	}
	// Recycle before running the callback: the common chain shape (an
	// event whose callback schedules the next event) then reuses this very
	// struct, keeping the pool at its steady-state size.
	if fn := ev.fn; fn != nil {
		e.recycle(ev)
		fn()
	} else {
		afn, arg := ev.afn, ev.arg
		e.recycle(ev)
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains or Stop is called, and returns
// the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. The clock advances to the deadline
// only when the loop exhausted the work before it — the queue drained or
// only later events remain; after a Stop the clock stays at the stopping
// event's timestamp, so the returned time reports where the simulation
// actually halted rather than silently jumping to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. Pending events are preserved.
func (e *Engine) Stop() { e.stopped = true }
