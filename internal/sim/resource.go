package sim

import "fmt"

// useReq is one pooled Use-path request: the duration to hold a unit and
// the completion callback. Requests live on the resource's freelist
// between uses, so a steady-state Use cycle allocates nothing — the
// request struct doubles as the argument of the completion event
// (scheduleArg), replacing the three closures the old path allocated.
//
//simlint:pooled
type useReq struct {
	r       *Resource
	d       Time
	done    func()
	enqAt   Time // wait-span start; -1 when not enqueued under tracing
	grantAt Time
}

// qent is one FIFO queue slot: either a pooled Use request or an
// Acquire-path grant thunk. Exactly one field is set.
type qent struct {
	w  *useReq
	fn func()
}

// Resource models a server (or pool of identical servers) with a FIFO
// request queue: a NAND plane, a channel bus, a DMA engine, a PCIe link.
// Requests acquire one unit of capacity, hold it for a caller-determined
// duration, and release it; waiting requests are granted strictly in
// arrival order, which keeps simulations deterministic.
//
// When the engine carries a Tracer, the resource reports its activity on
// a track named after the resource: one "hold" span per grant→release
// interval (their sum is exactly the busy-time integral Utilization is
// computed from), one "wait" span per queued request, and "in_use"/
// "queue" counter samples at every transition. With no tracer every hook
// is a single nil-check branch.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	draining bool

	// FIFO queue with a head cursor instead of reslicing, so drained
	// storage is reused rather than leaked; freeReqs recycles Use-path
	// request structs.
	q        []qent
	head     int
	freeReqs []*useReq

	// Utilisation accounting.
	busyTime   Time // integral of inUse over time, in unit-nanoseconds
	lastChange Time
	grants     uint64
	peakQueue  int
}

// NewResource creates a resource with the given capacity (number of
// identical servers). Capacity must be positive.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of requests waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.q) - r.head }

// Grants returns how many acquisitions have been granted in total.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyTime += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Utilization returns the mean fraction of capacity that was busy between
// simulation start and the current time. Returns 0 before time advances.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	total := r.busyTime + Time(r.inUse)*(now-r.lastChange)
	if now == 0 {
		return 0
	}
	return float64(total) / (float64(now) * float64(r.capacity))
}

//simlint:hotpath
func (r *Resource) getReq() *useReq {
	if n := len(r.freeReqs); n > 0 {
		w := r.freeReqs[n-1]
		r.freeReqs[n-1] = nil
		r.freeReqs = r.freeReqs[:n-1]
		return w
	}
	//simlint:allow hotalloc pool growth: one-time allocation while the freelist warms up
	return &useReq{r: r}
}

//simlint:hotpath
//simlint:release
func (r *Resource) putReq(w *useReq) {
	w.done = nil
	//simlint:allow hotalloc amortized freelist growth; steady state reuses storage
	r.freeReqs = append(r.freeReqs, w)
}

// enqueue appends a request slot, tracking queue depth.
func (r *Resource) enqueue(ent qent) {
	//simlint:allow hotalloc amortized queue growth; steady state reuses storage
	r.q = append(r.q, ent)
	if n := len(r.q) - r.head; n > r.peakQueue {
		r.peakQueue = n
	}
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "queue", r.eng.now, float64(len(r.q)-r.head))
	}
}

// dequeue pops the FIFO head, compacting drained storage.
func (r *Resource) dequeue() qent {
	ent := r.q[r.head]
	r.q[r.head] = qent{}
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	}
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "queue", r.eng.now, float64(len(r.q)-r.head))
	}
	return ent
}

// Acquire requests one unit. When a unit is available — immediately, or
// once earlier requests release — granted is invoked with a release
// function that must be called exactly once. The grant happens
// synchronously when capacity is free, so callers must not assume a
// simulated-time delay.
//
// Acquire is the flexible (closure-allocating) path; the common
// hold-for-a-duration pattern should use Use, which recycles its request
// and event structs through freelists and allocates nothing in steady
// state.
func (r *Resource) Acquire(granted func(release func())) {
	grant := func() {
		r.account()
		r.inUse++
		r.grants++
		grantAt := r.eng.now
		if t := r.eng.trace; t != nil {
			t.Counter(r.name, "in_use", grantAt, float64(r.inUse))
		}
		released := false
		granted(func() {
			if released {
				panic(fmt.Sprintf("sim: double release of %q", r.name))
			}
			released = true
			if t := r.eng.trace; t != nil {
				t.Span(r.name, "hold", grantAt, r.eng.now)
			}
			r.release()
		})
	}
	// A free unit is handed over only when no earlier request is still
	// queued; capacity can be momentarily free with a non-empty queue
	// while a release drain is in progress, and granting here would let
	// the newcomer overtake FIFO order.
	if r.inUse < r.capacity && len(r.q) == r.head {
		grant()
		return
	}
	queued := grant
	if t := r.eng.trace; t != nil {
		enqAt := r.eng.now
		queued = func() {
			t.Span(r.name, "wait", enqAt, r.eng.now)
			grant()
		}
	}
	r.enqueue(qent{fn: queued})
}

// grantUse starts service for a Use-path request: one unit is taken and
// the completion event is scheduled through the pooled path.
func (r *Resource) grantUse(w *useReq) {
	r.account()
	r.inUse++
	r.grants++
	w.grantAt = r.eng.now
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "in_use", w.grantAt, float64(r.inUse))
	}
	r.eng.scheduleArg(w.d, finishUse, w)
}

// finishUse is the completion callback of a Use-path request (package
// function, so scheduling it allocates no closure): release the unit,
// recycle the request, then run the caller's callback.
//
//simlint:hotpath
func finishUse(arg any) {
	w := arg.(*useReq)
	r := w.r
	if t := r.eng.trace; t != nil {
		t.Span(r.name, "hold", w.grantAt, r.eng.now)
	}
	done := w.done
	r.putReq(w)
	r.release()
	if done != nil {
		done()
	}
}

// release returns one unit and hands freed capacity to queued requests in
// FIFO order. The drain is iterative: a granted waiter that releases
// synchronously re-enters release, which only decrements and returns
// (draining is set), leaving the original loop to grant the next waiter.
// The recursive hand-off this replaces grew the goroutine stack linearly
// with queue depth — a release at the head of a 100k-deep queue built a
// 100k-frame release→grant→release chain before unwinding.
//
//simlint:hotpath
func (r *Resource) release() {
	r.account()
	r.inUse--
	if r.inUse < 0 {
		//simlint:allow hotalloc cold panic path; formatting happens only on a model bug
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "in_use", r.eng.now, float64(r.inUse))
	}
	if r.draining {
		return
	}
	r.draining = true
	for r.inUse < r.capacity && r.head < len(r.q) {
		ent := r.dequeue()
		if ent.w != nil {
			if ent.w.enqAt >= 0 {
				if t := r.eng.trace; t != nil {
					t.Span(r.name, "wait", ent.w.enqAt, r.eng.now)
				}
			}
			r.grantUse(ent.w)
		} else {
			ent.fn()
		}
	}
	r.draining = false
}

// Use is the common acquire–hold–release pattern: wait for a unit, hold it
// for d nanoseconds of simulated time, then release and call done (which
// may be nil). It returns immediately; everything happens via events.
//
// This is the kernel's hottest path (every NAND array operation, bus
// transfer and link transfer goes through it); the request and its
// completion event are recycled through freelists, so steady-state Use
// costs zero heap allocations (pinned by TestDisabledTracerAddsNoAllocations).
//
//simlint:hotpath
func (r *Resource) Use(d Time, done func()) {
	w := r.getReq()
	w.d = d
	w.done = done
	w.enqAt = -1
	if r.inUse < r.capacity && len(r.q) == r.head {
		r.grantUse(w)
		return
	}
	if r.eng.trace != nil {
		w.enqAt = r.eng.now
	}
	r.enqueue(qent{w: w})
}

// PeakQueue returns the maximum number of simultaneously waiting requests
// observed.
func (r *Resource) PeakQueue() int { return r.peakQueue }
