// Package simtime exercises the simtime analyzer: bare sim.Time(x)
// conversions of runtime values are flagged; constants, Time→Time
// re-typings and named constructors are not.
package simtime

import (
	"repro/internal/sim"
	"repro/internal/units"
)

func rawConversions(ns float64, cycles int64) sim.Time {
	a := sim.Time(ns)         // want `raw sim\.Time conversion`
	b := sim.Time(cycles * 3) // want `raw sim\.Time conversion`
	c := sim.Time(ns/2.5 + 1) // want `raw sim\.Time conversion`
	return a + b + c
}

func constantsAreFine() sim.Time {
	zero := sim.Time(0)
	tick := 2 * sim.Microsecond
	big := sim.Time(1e9) // constant literal: unit auditable in place
	return zero + tick + big
}

func retypingIsFine(t sim.Time) sim.Time {
	return sim.Time(t) // Time → Time carries no unit claim
}

func namedConstructorsAreFine(ns float64, cycles int64) sim.Time {
	a := units.Nanos(ns)
	b := units.CyclesAtMHz(cycles, 400)
	c := units.Seconds(1.5)
	return a + b + c
}

func allowed(ns float64) sim.Time {
	//simlint:allow simtime ns provenance documented one line up
	return sim.Time(ns)
}
