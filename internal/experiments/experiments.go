// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §3). Each experiment is a pure
// function from an Options struct to tables/figures, shared by the
// cmd/optimstore CLI and the root benchmark harness so both always report
// the same numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks simulation windows so the whole suite runs in seconds;
	// the full setting tightens extrapolation at ~10× the runtime.
	Quick bool

	// Parallel is the worker-pool width used to fan independent simulation
	// points (systems, sweep cells, experiments) across CPUs. <= 0 means
	// one worker per CPU; 1 reproduces fully sequential execution. Every
	// point owns its engine and results are assembled in submission order,
	// so outputs are identical at any width.
	Parallel int

	// Fault, when enabled, arms the seed-driven fault storm on every
	// simulated experiment point (the CLI's -fault flag); Checkpoint
	// selects the checkpoint policy priced into every report (-checkpoint).
	// F20 sweeps policies itself and only inherits the storm.
	Fault      fault.Spec
	Checkpoint fault.Policy

	// CheckInvariants audits every simulated report against the registered
	// physical invariants (internal/invariant): conservation, roofline
	// sandwich, structural sanity. Violations are recorded on the reports
	// (surfacing in runner summaries as an INVARIANT VIOLATIONS count) and
	// returned as errors from runSystems, so a miscalibrated model fails
	// the experiment instead of silently producing a wrong table.
	CheckInvariants bool
}

func (o Options) simUnits() int64 {
	if o.Quick {
		return 256
	}
	return 2048
}

func (o Options) wafSteps() int {
	if o.Quick {
		return 3
	}
	return 8
}

// Result is the output of one experiment.
type Result struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Figures []*stats.Figure
}

// String renders every table (figures as their data tables).
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "===== %s: %s =====\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

type experiment struct {
	title string
	fn    func(Options) (*Result, error)
}

var registry = map[string]experiment{
	"T1":  {"System configuration", runT1},
	"T2":  {"Model zoo and state footprints", runT2},
	"F1":  {"Optimizer-step latency per system", runF1},
	"F2":  {"Speedup vs model scale", runF2},
	"F3":  {"Per-optimizer comparison", runF3},
	"F4":  {"Energy breakdown", runF4},
	"F5":  {"Internal-parallelism sensitivity", runF5},
	"F6":  {"ODP throughput sensitivity", runF6},
	"F7":  {"Data-layout ablation", runF7},
	"F8":  {"Precision ablation", runF8},
	"F9":  {"Endurance and lifetime", runF9},
	"F10": {"End-to-end training throughput", runF10},
	"F11": {"GC / over-provisioning sensitivity", runF11},
	"F12": {"ODP area and power", runF12},
	"F13": {"Sparse embedding-table updates (extension)", runF13},
	"F14": {"Optimizer-state checkpointing (extension)", runF14},
	"F15": {"Overlap-model ablation (extension)", runF15},
	"F16": {"Data-parallel cluster scaling (extension)", runF16},
	"F17": {"Read QoS under update load: program suspend (extension)", runF17},
	"F18": {"State-region cell-mode trade-off (extension)", runF18},
	"F19": {"GC hot/cold stream separation (extension)", runF19},
	"F20": {"Fault storms: checkpoint policy comparison (extension)", runF20},
}

// IDs lists experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	//simlint:allow maporder keys are fully sorted below before use
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] == 'T' // tables first, then figures
		}
		var na, nb int
		fmt.Sscanf(a[1:], "%d", &na)
		fmt.Sscanf(b[1:], "%d", &nb)
		return na < nb
	})
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res, err := r.fn(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}

// RunMany executes a set of experiments across the worker pool and returns
// their results in the requested order, plus the pool's run summary.
// Unknown IDs fail before any simulation starts.
func RunMany(ids []string, opts Options) ([]*Result, runner.Summary, error) {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, runner.Summary{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	results := runner.Map(opts.Parallel, ids, func(id string) (*Result, error) {
		return Run(id, opts)
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, runner.Summarize(results), err
	}
	return runner.Values(results), runner.Summarize(results), nil
}

// baseConfig is the shared default experiment point.
func baseConfig(opts Options, model dnn.Model) core.Config {
	cfg := core.DefaultConfig(model)
	cfg.MaxSimUnits = opts.simUnits()
	cfg.Fault = opts.Fault
	cfg.Checkpoint = opts.Checkpoint
	return cfg
}

// runSystems runs the named systems on a config across the worker pool
// and returns their reports in name order. Each system constructs its own
// engine from a private copy of cfg, so points are fully independent.
func runSystems(opts Options, cfg core.Config, names ...string) ([]*core.Report, error) {
	if len(names) == 0 {
		names = core.SystemNames()
	}
	results := runner.Map(opts.Parallel, names, func(n string) (*core.Report, error) {
		sys, err := core.NewSystem(n, cfg)
		if err != nil {
			return nil, err
		}
		r, err := sys.Run()
		if err != nil {
			return nil, err
		}
		if opts.CheckInvariants {
			if v := invariant.Audit(n, cfg, r); len(v) > 0 {
				return r, fmt.Errorf("system %s violates invariants: %s", n, strings.Join(v, "; "))
			}
		}
		return r, nil
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	return runner.Values(results), nil
}
