// Package b is the caller side of the callgraph testdata tree: its
// edges into package a must resolve although the two packages were
// typechecked in different type-checker universes.
package b

import "repro/internal/lint/callgraph/testdata/calls/a"

// Cross calls a package function and a concrete method across the
// package boundary.
func Cross() {
	a.Leaf()
	var i a.Impl
	i.Do(2)
}
