package fault

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/ssd"
)

// CrashCheck verifies one crash point: the workload was cut dead at
// boundary b (the k-th of the run), crashed is the device as the power
// failed, recovered is the rebuilt device, and info is what recovery
// found. Returning an error fails the enumeration with the crash point
// attached.
type CrashCheck func(k int, b ssd.Boundary, crashed, recovered *ssd.Device, info *ssd.RecoveryInfo) error

// EnumerateCrashPoints replays a workload once per FTL op boundary,
// crashing at each: a reference run counts the boundaries, then for every
// k in [1, n] a fresh run is stopped dead at boundary k (sim.Engine.Stop
// — no further events fire, exactly a power cut), the device is rebuilt
// with ssd.Recover on a fresh engine, and check is invoked.
//
// build constructs and preloads a device on the given engine; drive
// issues the workload (it must not Run the engine). Both must be
// deterministic — the enumeration relies on run k reproducing the
// reference run's first k boundaries.
func EnumerateCrashPoints(
	build func(eng *sim.Engine) *ssd.Device,
	drive func(dev *ssd.Device),
	check CrashCheck,
) (boundaries int, err error) {
	// Reference run: count boundaries end to end.
	refEng := sim.NewEngine()
	refDev := build(refEng)
	total := 0
	refDev.SetBoundaryHook(func(ssd.Boundary) { total++ })
	drive(refDev)
	refEng.Run()

	for k := 1; k <= total; k++ {
		eng := sim.NewEngine()
		dev := build(eng)
		var at ssd.Boundary
		dev.SetBoundaryHook(func(b ssd.Boundary) {
			if int(b.Seq) == k {
				at = b
				eng.Stop()
			}
		})
		drive(dev)
		eng.Run()
		if int(at.Seq) != k {
			return total, fmt.Errorf("crash run %d/%d: boundary never reached (run diverged from reference)", k, total)
		}
		recovered, info, rerr := ssd.Recover(sim.NewEngine(), dev)
		if rerr != nil {
			return total, fmt.Errorf("crash at boundary %d/%d (%v): %w", k, total, at.Kind, rerr)
		}
		if cerr := check(k, at, dev, recovered, info); cerr != nil {
			return total, fmt.Errorf("crash at boundary %d/%d (%v): %w", k, total, at.Kind, cerr)
		}
	}
	return total, nil
}
