package runner

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/tracing"
)

// sweep32 builds the benchmark workload: a sweep of 8 channel counts ×
// 5 systems (40 independent simulation jobs; the name predates the fifth
// system and is kept so the snapshot trajectory stays comparable), the
// grid shape
// cmd/sweep produces. Every job constructs its own System and Engine.
// When traced, each job records into a private tracing.Trace, the shape
// cmd/sweep -trace runs.
func sweep32Opt(traced bool) []Job[*core.Report] {
	channels := []int{1, 2, 3, 4, 6, 8, 12, 16}
	var jobs []Job[*core.Report]
	for _, ch := range channels {
		for _, name := range core.SystemNames() {
			ch, name := ch, name
			jobs = append(jobs, func() (*core.Report, error) {
				cfg := core.DefaultConfig(dnn.GPT13B())
				cfg.MaxSimUnits = 128
				cfg.SSD.Channels = ch
				if traced {
					cfg.Trace = tracing.New(name)
				}
				sys, err := core.NewSystem(name, cfg)
				if err != nil {
					return nil, err
				}
				return sys.Run()
			})
		}
	}
	return jobs
}

func sweep32() []Job[*core.Report] { return sweep32Opt(false) }

// BenchmarkSweep32 measures wall-clock of the channel×system sweep at several
// pool widths. On an N-core host the workers=N case should approach N×
// the workers=1 throughput (the jobs share nothing), demonstrating
// near-linear scaling; compare the ns/op of the sub-benchmarks.
func BenchmarkSweep32(b *testing.B) {
	// Measure widths up to the machine's CPU count — beyond it the pool
	// only adds scheduler contention, not parallelism.
	var widths []int
	for _, w := range []int{1, 2, 4, 8, runtime.NumCPU()} {
		if w <= runtime.NumCPU() && (len(widths) == 0 || w > widths[len(widths)-1]) {
			widths = append(widths, w)
		}
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			jobs := sweep32()
			for i := 0; i < b.N; i++ {
				results := Run(w, jobs)
				if err := FirstErr(results); err != nil {
					b.Fatal(err)
				}
				if len(results) != 32 {
					b.Fatalf("got %d results", len(results))
				}
			}
			s := Summarize(Run(w, jobs))
			b.ReportMetric(float64(s.Events)/float64(32), "sim-events/job")
		})
	}
}

// BenchmarkSweep32Traced is BenchmarkSweep32 with event tracing enabled
// on every job — the cost of *recording* (the in-memory event log each
// resource transition appends to), as opposed to the disabled-tracer cost
// that BenchmarkSweep32 and the ≤2% regression budget cover. Compare the
// two to see what -trace actually costs a sweep.
func BenchmarkSweep32Traced(b *testing.B) {
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			jobs := sweep32Opt(true)
			for i := 0; i < b.N; i++ {
				results := Run(w, jobs)
				if err := FirstErr(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverhead measures the pool's fixed cost on empty jobs — the
// price of ordering and panic capture when jobs do no work.
func BenchmarkOverhead(b *testing.B) {
	jobs := make([]Job[int], 256)
	for i := range jobs {
		jobs[i] = func() (int, error) { return 0, nil }
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(0, jobs)
	}
}
