// Package clock is the wall-clock/rand half of the nondeterminism tree:
// wall-clock reads and global math/rand are flagged; seeded generators
// and allow-directives are not.
package clock

import (
	"math/rand"
	"time"
)

func wallclock() time.Duration {
	start := time.Now()          // want `wall-clock call time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
	elapsed := time.Since(start) // want `wall-clock call time\.Since`
	return elapsed
}

// Line above the sleep carries its own want: Sleep is on the next line.
func sleepy() {
	time.Sleep(2 * time.Second) // want `wall-clock call time\.Sleep`
}

func allowedWallclock() time.Time {
	//simlint:allow wallclock benchmarking real elapsed time is the point here
	return time.Now()
}

func durationMathIsFine(d time.Duration) time.Duration {
	return 2*d + time.Millisecond // durations are values, not clock reads
}

func globalRand() int {
	x := rand.Intn(10)     // want `global math/rand call rand\.Intn`
	y := rand.Float64()    // want `global math/rand call rand\.Float64`
	rand.Shuffle(3, nil)   // want `global math/rand call rand\.Shuffle`
	return x + int(y*1000) // the *1000 is unitconv's business, not ours
}

func seededRandIsFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.NormFloat64()
}

func staleDirective(s []int) int {
	// A directive with no finding under it is itself an error, so stale
	// suppressions cannot outlive the code they once excused.
	//simlint:allow wallclock nothing here reads the clock any more // want `suppresses nothing`
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
