package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Example shows the engine's core pattern: schedule events, let resources
// serialize contenders, read the clock.
func Example() {
	eng := sim.NewEngine()
	bus := sim.NewResource(eng, "bus", 1)

	// Two transfers contend for one bus; a third job runs in parallel.
	bus.Use(100, func() { fmt.Println("transfer A done at", eng.Now()) })
	bus.Use(100, func() { fmt.Println("transfer B done at", eng.Now()) })
	eng.Schedule(50, func() { fmt.Println("independent event at", eng.Now()) })

	eng.Run()
	// Output:
	// independent event at 50ns
	// transfer A done at 100ns
	// transfer B done at 200ns
}

// ExampleChain sequences dependent asynchronous stages — the idiom every
// multi-phase NAND operation uses.
func ExampleChain() {
	eng := sim.NewEngine()
	sim.Chain(func() { fmt.Println("write complete at", eng.Now()) },
		func(next func()) { eng.Schedule(10, next) },  // bus transfer
		func(next func()) { eng.Schedule(300, next) }, // program
	)
	eng.Run()
	// Output:
	// write complete at 310ns
}

// ExamplePreemptible shows program/erase suspend: a high-priority read
// preempts a long program, which resumes afterwards.
func ExamplePreemptible() {
	eng := sim.NewEngine()
	plane := sim.NewPreemptible(eng, "plane", 5)
	plane.Use(300, func() { fmt.Println("program done at", eng.Now()) })
	eng.Schedule(100, func() {
		plane.UsePriority(65, func() { fmt.Println("read done at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// read done at 165ns
	// program done at 370ns
}
