package nand

import (
	"fmt"

	"repro/internal/sim"
)

// Channel models one flash channel: an ONFI/Toggle bus shared by several
// dies. Array operations (Read/Program/Erase) run inside dies in parallel;
// every byte entering or leaving any die on the channel serializes on the
// bus. This contention is the central bandwidth asymmetry that in-storage
// processing exploits.
type Channel struct {
	eng    *sim.Engine
	name   string
	params Params
	bus    *sim.Resource
	dies   []*Die
}

// NewChannel creates a channel with nDies identical dies.
func NewChannel(eng *sim.Engine, name string, p Params, nDies int) *Channel {
	if nDies <= 0 {
		panic(fmt.Sprintf("nand: channel %q with %d dies", name, nDies))
	}
	c := &Channel{
		eng:    eng,
		name:   name,
		params: p,
		bus:    sim.NewResource(eng, name+"/bus", 1),
	}
	for i := 0; i < nDies; i++ {
		c.dies = append(c.dies, NewDie(eng, fmt.Sprintf("%s/die%d", name, i), p))
	}
	return c
}

// Name returns the diagnostic name.
func (c *Channel) Name() string { return c.name }

// Dies returns the dies attached to this channel.
func (c *Channel) Dies() []*Die { return c.dies }

// Die returns die i.
func (c *Channel) Die(i int) *Die { return c.dies[i] }

// BusUtilization returns the mean busy fraction of the channel bus.
func (c *Channel) BusUtilization() float64 { return c.bus.Utilization() }

// TransferIn moves n bytes from the controller to die's page register,
// occupying the bus, then calls done.
func (c *Channel) TransferIn(die int, n int, done func()) {
	c.dies[die].addBytesIn(n)
	c.bus.Use(c.params.TransferTime(n), done)
}

// TransferOut moves n bytes from die's page register to the controller,
// occupying the bus, then calls done.
func (c *Channel) TransferOut(die int, n int, done func()) {
	c.dies[die].addBytesOut(n)
	c.bus.Use(c.params.TransferTime(n), done)
}

// ReadPage performs a full external page read: array read (plane busy)
// followed by bus transfer-out of the whole page.
func (c *Channel) ReadPage(die int, a Addr, done func()) {
	sim.Chain(done,
		func(next func()) { c.dies[die].Read(a, next) },
		func(next func()) { c.TransferOut(die, c.params.PageSize, next) },
	)
}

// WritePage performs a full external page write: bus transfer-in of the
// whole page followed by the array program (plane busy).
func (c *Channel) WritePage(die int, a Addr, done func()) {
	sim.Chain(done,
		func(next func()) { c.TransferIn(die, c.params.PageSize, next) },
		func(next func()) { c.dies[die].Program(a, next) },
	)
}

// Counts sums operation tallies across all dies on the channel.
func (c *Channel) Counts() OpCounts {
	var total OpCounts
	for _, d := range c.dies {
		total.Add(d.Counts())
	}
	return total
}
