package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of stringable cells and renders them as aligned
// plain text, GitHub markdown, or CSV. It is how every experiment harness
// prints the rows of the table/figure it regenerates.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// AddRow appends a row; each cell is rendered with %v, with float64 values
// formatted compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Row returns the i-th data row.
func (t *Table) Row(i int) []string { return append([]string(nil), t.rows[i]...) }

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
