package sim

import "fmt"

// Resource models a server (or pool of identical servers) with a FIFO
// request queue: a NAND plane, a channel bus, a DMA engine, a PCIe link.
// Requests acquire one unit of capacity, hold it for a caller-determined
// duration, and release it; waiting requests are granted strictly in
// arrival order, which keeps simulations deterministic.
//
// When the engine carries a Tracer, the resource reports its activity on
// a track named after the resource: one "hold" span per grant→release
// interval (their sum is exactly the busy-time integral Utilization is
// computed from), one "wait" span per queued request, and "in_use"/
// "queue" counter samples at every transition. With no tracer every hook
// is a single nil-check branch.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []func()
	draining bool

	// Utilisation accounting.
	busyTime   Time // integral of inUse over time, in unit-nanoseconds
	lastChange Time
	grants     uint64
	peakQueue  int
}

// NewResource creates a resource with the given capacity (number of
// identical servers). Capacity must be positive.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of requests waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Grants returns how many acquisitions have been granted in total.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyTime += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Utilization returns the mean fraction of capacity that was busy between
// simulation start and the current time. Returns 0 before time advances.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	total := r.busyTime + Time(r.inUse)*(now-r.lastChange)
	if now == 0 {
		return 0
	}
	return float64(total) / (float64(now) * float64(r.capacity))
}

// Acquire requests one unit. When a unit is available — immediately, or
// once earlier requests release — granted is invoked with a release
// function that must be called exactly once. The grant happens
// synchronously when capacity is free, so callers must not assume a
// simulated-time delay.
func (r *Resource) Acquire(granted func(release func())) {
	grant := func() {
		r.account()
		r.inUse++
		r.grants++
		grantAt := r.eng.now
		if t := r.eng.trace; t != nil {
			t.Counter(r.name, "in_use", grantAt, float64(r.inUse))
		}
		released := false
		granted(func() {
			if released {
				panic(fmt.Sprintf("sim: double release of %q", r.name))
			}
			released = true
			if t := r.eng.trace; t != nil {
				t.Span(r.name, "hold", grantAt, r.eng.now)
			}
			r.release()
		})
	}
	// A free unit is handed over only when no earlier request is still
	// queued; capacity can be momentarily free with a non-empty queue
	// while a release drain is in progress, and granting here would let
	// the newcomer overtake FIFO order.
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		grant()
		return
	}
	queued := grant
	if t := r.eng.trace; t != nil {
		enqAt := r.eng.now
		queued = func() {
			t.Span(r.name, "wait", enqAt, r.eng.now)
			grant()
		}
	}
	r.waiters = append(r.waiters, queued)
	if len(r.waiters) > r.peakQueue {
		r.peakQueue = len(r.waiters)
	}
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "queue", r.eng.now, float64(len(r.waiters)))
	}
}

// release returns one unit and hands freed capacity to queued requests in
// FIFO order. The drain is iterative: a granted waiter that releases
// synchronously re-enters release, which only decrements and returns
// (draining is set), leaving the original loop to grant the next waiter.
// The recursive hand-off this replaces grew the goroutine stack linearly
// with queue depth — a release at the head of a 100k-deep queue built a
// 100k-frame release→grant→release chain before unwinding.
func (r *Resource) release() {
	r.account()
	r.inUse--
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	if t := r.eng.trace; t != nil {
		t.Counter(r.name, "in_use", r.eng.now, float64(r.inUse))
	}
	if r.draining {
		return
	}
	r.draining = true
	for r.inUse < r.capacity && len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		if t := r.eng.trace; t != nil {
			t.Counter(r.name, "queue", r.eng.now, float64(len(r.waiters)))
		}
		next()
	}
	r.draining = false
}

// Use is the common acquire–hold–release pattern: wait for a unit, hold it
// for d nanoseconds of simulated time, then release and call done (which
// may be nil). It returns immediately; everything happens via events.
func (r *Resource) Use(d Time, done func()) {
	r.Acquire(func(release func()) {
		r.eng.Schedule(d, func() {
			release()
			if done != nil {
				done()
			}
		})
	})
}

// PeakQueue returns the maximum number of simultaneously waiting requests
// observed.
func (r *Resource) PeakQueue() int { return r.peakQueue }
