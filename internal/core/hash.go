package core

import (
	"fmt"
	"math"
	"reflect"
)

// CanonicalHash returns a 64-bit FNV-1a digest of the configuration's
// complete simulation-relevant state: every exported field, recursively,
// in declaration order, each value prefixed with its reflect.Kind so that
// adjacent fields can never alias (e.g. int 1 followed by int 2 hashes
// differently from int 12 followed by nothing). Two configs with equal
// hashable state hash equal, so the autotuner (internal/search) can key
// its memo table on the digest; hash_test.go proves by field perturbation
// that every exported field changes the digest, so memoization can never
// alias distinct design points.
//
// Func- and Interface-typed fields (the ComputeHook instrumentation hook
// and the Trace sink) are skipped: they carry no simulation semantics and
// have no canonical encoding. Any other non-scalar kind panics, so a
// future Config field of an unhashable type fails loudly instead of
// silently aliasing.
func (c Config) CanonicalHash() uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	return hashValue(h, reflect.ValueOf(c))
}

// hashableConfigSkips names the Config fields CanonicalHash may skip.
// hashValue panics on a Func/Interface field not listed here, so skipped
// state is always a reviewed decision.
var hashableConfigSkips = map[string]bool{
	"ComputeHook": true,
	"Trace":       true,
}

func hashValue(h uint64, v reflect.Value) uint64 {
	h = hashByte(h, byte(v.Kind()))
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return hashByte(h, 1)
		}
		return hashByte(h, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return hashUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return hashUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		return hashUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		h = hashUint64(h, uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h = hashByte(h, s[i])
		}
		return h
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			switch f.Type.Kind() {
			case reflect.Func, reflect.Interface:
				if !hashableConfigSkips[f.Name] {
					panic(fmt.Sprintf("core: CanonicalHash cannot encode field %s.%s of kind %s",
						t.Name(), f.Name, f.Type.Kind()))
				}
				continue
			}
			h = hashValue(h, v.Field(i))
		}
		return h
	default:
		panic(fmt.Sprintf("core: CanonicalHash cannot encode kind %s (%s)", v.Kind(), v.Type()))
	}
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * 1099511628211 // FNV-1a prime
}

func hashUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(x>>(8*i)))
	}
	return h
}
