package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := map[float32]float32{
		0:            0,
		1:            1,
		-1:           -1,
		0.5:          0.5,
		2:            2,
		65504:        65504,        // max half
		6.1035156e-5: 6.1035156e-5, // min normal
		-0.25:        -0.25,
		1024:         1024,
		1.5:          1.5,
	}
	//simlint:allow maporder table-driven cases, each asserted independently
	for in, want := range cases {
		//simlint:allow floateq fp16 rounding is specified bit-exact
		if got := Round(in); got != want {
			t.Errorf("Round(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	h := FromFloat32(70000)
	if !h.IsInf() {
		t.Fatalf("70000 -> %#x, want +Inf", uint16(h))
	}
	if !math.IsInf(float64(ToFloat32(h)), 1) {
		t.Fatal("round trip of overflow not +Inf")
	}
	hn := FromFloat32(-70000)
	if !hn.IsInf() || ToFloat32(hn) > 0 {
		t.Fatal("negative overflow")
	}
}

func TestUnderflowToZero(t *testing.T) {
	//simlint:allow floateq fp16 rounding is specified bit-exact
	if got := Round(1e-9); got != 0 {
		t.Fatalf("1e-9 -> %v, want 0 (below subnormal range)", got)
	}
	// Sign preserved through underflow.
	h := FromFloat32(float32(math.Copysign(1e-9, -1)))
	if uint16(h) != 0x8000 {
		t.Fatalf("-1e-9 -> %#x, want -0", uint16(h))
	}
}

func TestSubnormals(t *testing.T) {
	// Smallest subnormal: 2^-24.
	//simlint:allow floateq fp16 rounding is specified bit-exact
	if got := Round(MinSubnormal); got != MinSubnormal {
		t.Fatalf("min subnormal round trip = %v", got)
	}
	// A value inside the subnormal range survives with absolute error
	// bounded by half the subnormal step.
	in := float32(3.1e-6)
	got := Round(in)
	if math.Abs(float64(got-in)) > MinSubnormal/2+1e-12 {
		t.Fatalf("subnormal %v -> %v", in, got)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN -> %#x", uint16(h))
	}
	if !math.IsNaN(float64(ToFloat32(h))) {
		t.Fatal("NaN round trip lost")
	}
	if Bits(0x7C00).IsNaN() {
		t.Fatal("Inf classified as NaN")
	}
}

func TestInfRoundTrip(t *testing.T) {
	h := FromFloat32(float32(math.Inf(1)))
	if !h.IsInf() {
		t.Fatal("inf conversion")
	}
	if !math.IsInf(float64(ToFloat32(h)), 1) {
		t.Fatal("inf round trip")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1 and 1+2^-10: ties to even (1.0).
	in := float32(1) + float32(math.Pow(2, -11))
	if got := Round(in); got != 1 {
		t.Fatalf("tie %v -> %v, want 1 (round to even)", in, got)
	}
	// 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9: to even → 1+2^-9.
	in = float32(1) + 3*float32(math.Pow(2, -11))
	want := float32(1) + float32(math.Pow(2, -9))
	if got := Round(in); got != want {
		t.Fatalf("tie %v -> %v, want %v", in, got, want)
	}
}

// Property: every binary16 bit pattern survives Bits→f32→Bits exactly
// (half is a subset of float32). NaNs compare by classification.
func TestAllBitsRoundTrip(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		f := ToFloat32(h)
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("%#x: NaN lost", i)
			}
			continue
		}
		if back != h {
			t.Fatalf("%#x -> %v -> %#x", i, f, uint16(back))
		}
	}
}

// Property: quantisation error is within the format's relative epsilon for
// normal-range values.
func TestRelativeErrorBoundProperty(t *testing.T) {
	f := func(raw uint32) bool {
		x := math.Float32frombits(raw)
		ax := math.Abs(float64(x))
		if math.IsNaN(float64(x)) || ax > MaxValue || ax < MinNormal {
			return true
		}
		q := float64(Round(x))
		return math.Abs(q-float64(x)) <= ax*Epsilon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: rounding is monotone (order-preserving).
func TestMonotoneProperty(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Round(a) <= Round(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundSlice(t *testing.T) {
	src := []float32{1, 1e-9, 65504, 0.333333}
	dst := make([]float32, len(src))
	RoundSlice(dst, src)
	for i := range src {
		//simlint:allow floateq fp16 rounding is specified bit-exact
		if dst[i] != Round(src[i]) {
			t.Fatal("RoundSlice mismatch")
		}
	}
	// Aliasing is allowed.
	RoundSlice(src, src)
	//simlint:allow floateq 0 is the untouched sentinel
	if src[1] != 0 {
		t.Fatal("in-place rounding")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	RoundSlice(dst[:1], src)
}

func TestMaxRelError(t *testing.T) {
	// Exactly representable values: zero error.
	//simlint:allow floateq exact representables must report zero error
	if e := MaxRelError([]float32{1, 2, 0.5, 0}); e != 0 {
		t.Fatalf("exact values err = %v", e)
	}
	// A dense value errs but within epsilon.
	e := MaxRelError([]float32{0.1, 0.2, 0.3})
	//simlint:allow floateq exact zero would mean the error path was skipped
	if e == 0 || e > Epsilon {
		t.Fatalf("err = %v", e)
	}
}
