package tracing

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// spanStat aggregates the spans sharing one (track, name) pair.
type spanStat struct {
	track, name string
	count       int
	total       sim.Time
	max         sim.Time
}

// spanStats folds a trace's spans into per-(track, name) aggregates,
// returned in first-seen order so output stays deterministic without
// relying on map iteration.
func spanStats(tr *Trace) []spanStat {
	idx := map[[2]string]int{}
	var out []spanStat
	for _, e := range tr.events {
		if e.Kind != KindSpan {
			continue
		}
		key := [2]string{e.Track, e.Name}
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, spanStat{track: e.Track, name: e.Name})
		}
		d := e.End - e.Start
		out[i].count++
		out[i].total += d
		if d > out[i].max {
			out[i].max = d
		}
	}
	return out
}

// SummaryTable renders per-(track, span) aggregates for one or more
// traces: span count, total busy time, mean and max span duration, and —
// for resource hold spans — the fraction of the trace horizon the track
// was busy. Rows are grouped by trace and ordered by track first-seen
// order, so the table is byte-identical across reruns.
func SummaryTable(traces ...*Trace) *stats.Table {
	t := stats.NewTable("trace span summary",
		"trace", "track", "span", "count", "total_ms", "mean_us", "max_us", "busy_frac")
	for _, tr := range traces {
		end := tr.End()
		for _, s := range spanStats(tr) {
			mean := 0.0
			if s.count > 0 {
				mean = s.total.Micros() / float64(s.count)
			}
			frac := 0.0
			if end > 0 {
				frac = float64(s.total) / float64(end)
			}
			t.AddRow(tr.label, s.track, s.name, s.count,
				s.total.Millis(), mean, s.max.Micros(), frac)
		}
	}
	return t
}

// UtilizationTimeline buckets the trace horizon into the given number of
// equal windows and, for each track carrying spans with the given name,
// emits the fraction of each window covered by those spans — a
// utilization-over-time figure (x: window midpoint in ms, y: busy
// fraction). For resource tracks with name "hold" this is the temporal
// decomposition of Resource.Utilization: the time-weighted mean of each
// series equals the end-of-run utilization for a capacity-1 resource.
func UtilizationTimeline(tr *Trace, name string, buckets int) *stats.Figure {
	if buckets <= 0 {
		buckets = 1
	}
	end := tr.End()
	fig := stats.NewFigure("resource utilization timeline: "+tr.label,
		"time (ms)", "busy fraction")
	if end == 0 {
		return fig
	}
	// Accumulate per-track per-bucket busy time (plain nanosecond counts:
	// bucket indices and widths are not durations, so the overlap math
	// stays in int64 rather than claiming sim.Time units it doesn't have).
	busy := map[string][]int64{}
	var tracks []string
	for _, e := range tr.events {
		if e.Kind != KindSpan || e.Name != name {
			continue
		}
		bs, ok := busy[e.Track]
		if !ok {
			bs = make([]int64, buckets)
			busy[e.Track] = bs
			tracks = append(tracks, e.Track)
		}
		addSpanToBuckets(bs, int64(e.Start), int64(e.End), int64(end))
	}
	sort.Strings(tracks)
	width := float64(end) / float64(buckets)
	for _, track := range tracks {
		s := fig.AddSeries(track)
		for i, b := range busy[track] {
			mid := (float64(i) + 0.5) * width
			s.Add(units.Nanos(mid).Millis(), float64(b)/width)
		}
	}
	return fig
}

// addSpanToBuckets distributes the overlap of [start, stop] across the
// equal-width buckets spanning [0, horizon]. All arguments are
// nanosecond counts.
func addSpanToBuckets(bs []int64, start, stop, horizon int64) {
	n := int64(len(bs))
	if stop > horizon {
		stop = horizon
	}
	if start >= stop {
		return
	}
	lo := int(start * n / horizon)
	hi := int((stop - 1) * n / horizon)
	if hi >= len(bs) {
		hi = len(bs) - 1
	}
	for i := lo; i <= hi; i++ {
		bLo := int64(i) * horizon / n
		bHi := int64(i+1) * horizon / n
		if bLo < start {
			bLo = start
		}
		if bHi > stop {
			bHi = stop
		}
		if bHi > bLo {
			bs[i] += bHi - bLo
		}
	}
}
