package core

import (
	"repro/internal/optim"
	"repro/internal/sim"
	"repro/internal/units"
)

// Roofline is the analytic lower bound of one optimizer step for each
// system: the slowest of the interfaces the step must cross. The
// discrete-event simulation can only add queueing and dependency stalls on
// top, so `floor ≤ simulated ≤ k·floor` (small k) is the package's
// model-sanity invariant — a simulated time below the floor means the
// simulator is dropping work; far above it means an accidental
// serialization.
type Roofline struct {
	PCIe  sim.Time // external link occupancy (busier direction)
	Bus   sim.Time // aggregate channel-bus occupancy
	Media sim.Time // plane-level read+program occupancy
	ODP   sim.Time // on-die compute occupancy (OptimStore only)
}

// Floor returns the binding constraint.
func (r Roofline) Floor() sim.Time {
	f := r.PCIe
	for _, t := range []sim.Time{r.Bus, r.Media, r.ODP} {
		if t > f {
			f = t
		}
	}
	return f
}

// OptimStoreRoofline computes the analytic bound for the in-storage system.
func OptimStoreRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	gradB := float64(cfg.GradBytesPerUnit())
	woutB := float64(cfg.WeightOutBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())
	dies := float64(cfg.SSD.Geometry().Dies())
	kernel := optim.KernelFor(cfg.Optimizer)
	passes := float64(kernel.ReadPasses)

	var r Roofline
	// PCIe: gradients in, weights out — full duplex, take the max.
	ext := cfg.Link.EffectiveGBps()
	in := touched * gradB / float64(ext) // bytes/GBps = ns
	out := touched * woutB / float64(ext)
	r.PCIe = units.Nanos(maxf(in, out))
	// Channel buses carry gradients in and weights out, aggregate.
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * (gradB + woutB))
	// Media: each unit's pages are read (per pass) and programmed once,
	// spread across all planes. Reads and programs of one page share its
	// plane, so their times add.
	perPlanePages := touched * comps / planes
	tR := float64(cfg.SSD.Nand.ReadLatency)
	tP := float64(cfg.SSD.Nand.ProgramLatency)
	r.Media = units.Nanos(perPlanePages * (passes*tR + tP))
	// ODP compute, spread across dies.
	elems := float64(cfg.ElemsPerPage())
	r.ODP = units.Nanos(touched / dies * float64(cfg.ODP.ComputeTime(int(elems), kernel.FlopsPerElem)))
	return r
}

// HostOffloadRoofline computes the analytic bound for the baseline.
func HostOffloadRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	residentB := float64(cfg.ResidentBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())

	var r Roofline
	// Resident state crosses PCIe both ways (full duplex: per direction).
	r.PCIe = cfg.Link.EffectiveGBps().TransferTimeF(touched * residentB)
	// And the channel buses both ways (half duplex: sum).
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * 2 * residentB)
	// Media: read once, program once per page.
	perPlanePages := touched * comps / planes
	r.Media = units.Nanos(perPlanePages *
		float64(cfg.SSD.Nand.ReadLatency+cfg.SSD.Nand.ProgramLatency))
	return r
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
