// Command sweep runs one-dimensional parameter sweeps of the system
// comparison and emits CSV, for plotting or regression tracking.
//
// Points run in parallel across a worker pool (-parallel, default one
// worker per CPU); rows are always emitted in sweep order, and -parallel 1
// reproduces the sequential behaviour byte for byte.
//
// Usage:
//
//	sweep -dim channels -values 2,4,8,16 -model GPT-13B
//	sweep -dim lanes    -values 1,4,16   -systems optimstore
//	sweep -dim pciegen  -values 3,4,5    -parallel 8
//	sweep -dim batch    -values 1,4,16,64
//	sweep -dim channels -values 4,8 -fault seed=1,pl=2000,df=500,ecc=5000,horizon=5 -checkpoint inplace
//
// With -search the one-dimensional sweep is replaced by the design-space
// autotuner (internal/search): the full default grid is explored under a
// simulation budget with roofline pruning, the Pareto-frontier CSV goes to
// stdout and the search summary to stderr:
//
//	sweep -search -budget 64 -model GPT-13B
//	sweep -search -systems optimstore -units 256
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/invariant"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/tracing"
	"repro/internal/units"
)

func main() {
	var (
		dim      = flag.String("dim", "channels", "sweep dimension: channels, dies, lanes, clock, pciegen, batch, busmbps")
		values   = flag.String("values", "2,4,8,16", "comma-separated values")
		model    = flag.String("model", "GPT-13B", "model name from the zoo")
		systems  = flag.String("systems", "hostoffload,interleaved,ctrlisp,optimstore", "systems to run")
		units    = flag.Int64("units", 512, "simulation window in update units")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker goroutines (1 = sequential)")
		check    = flag.Bool("check", false, "audit every point against the physical-invariant registry (internal/invariant); violations fail the sweep")
		traceTo  = flag.String("trace", "", "record an event trace per sweep point and write one combined Chrome trace_event JSON file here (one process lane per point; open in chrome://tracing or ui.perfetto.dev)")
		faultArg = flag.String("fault", "", "arm a fault storm on every sweep point: seed=N,pl=R,df=R,ecc=R,start=MS,horizon=MS (rates per second of sim time; empty = disabled)")
		ckptArg  = flag.String("checkpoint", "none", "checkpoint policy priced into every point: none, inplace (ODP copyback) or hostpull")
		doSearch = flag.Bool("search", false, "run the design-space autotuner over the default grid instead of a one-dimensional sweep; frontier CSV to stdout, summary to stderr")
		budget   = flag.Int("budget", 64, "simulation budget for -search")
	)
	flag.Parse()

	m, err := dnn.ByName(*model)
	if err != nil {
		fail(err)
	}
	if *doSearch {
		runSearch(m, splitList(*systems), *units, *budget, *parallel)
		return
	}
	vals, err := parseValues(*values)
	if err != nil {
		fail(err)
	}
	faultSpec, err := fault.ParseSpec(*faultArg)
	if err != nil {
		fail(err)
	}
	ckpt, err := fault.ParsePolicy(*ckptArg)
	if err != nil {
		fail(err)
	}
	spec := sweepSpec{
		Dim:        canonicalDim(*dim, os.Stderr),
		Values:     vals,
		Model:      m,
		Systems:    splitList(*systems),
		Units:      *units,
		Parallel:   *parallel,
		Check:      *check,
		Trace:      *traceTo != "",
		Fault:      faultSpec,
		Checkpoint: ckpt,
	}

	fmt.Print(sweepHeader())
	var traces []*tracing.Trace
	summary, err := spec.stream(func(row sweepRow) {
		fmt.Print(row.csv)
		if row.trace != nil {
			traces = append(traces, row.trace)
		}
	})
	if err != nil {
		fail(err)
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fail(err)
		}
		if err := tracing.WriteChrome(f, traces...); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", *traceTo)
	}
	fmt.Fprintln(os.Stderr, "sweep:", summary)
}

// runSearch is the -search mode: the design-space autotuner over the
// default grid. The system to tune is the sole -systems entry, or
// optimstore when the flag still holds the multi-system sweep default.
func runSearch(m dnn.Model, systems []string, simUnits int64, budget, parallel int) {
	system := "optimstore"
	if len(systems) == 1 {
		system = systems[0]
	}
	base := core.DefaultConfig(m)
	base.MaxSimUnits = simUnits
	res, err := search.Run(base, search.DefaultSpace(), search.Options{
		System:   system,
		Budget:   budget,
		Parallel: parallel,
	})
	if err != nil {
		fail(err)
	}
	fmt.Print(res.CSV())
	fmt.Fprint(os.Stderr, res.Summary().String())
}

// sweepSpec is one fully parsed sweep invocation.
type sweepSpec struct {
	Dim      string
	Values   []int
	Model    dnn.Model
	Systems  []string
	Units    int64
	Parallel int
	Check    bool
	// Trace records an event trace per point; rows then carry the trace
	// out of the pool in grid order, so a combined Chrome file is
	// byte-identical at every Parallel width.
	Trace bool
	// Fault arms the seed-driven fault storm on every point; Checkpoint
	// selects the policy priced into the ckpt_s/recovery_s columns. Each
	// point owns its schedule, so faulted sweeps stay byte-identical at
	// every Parallel width.
	Fault      fault.Spec
	Checkpoint fault.Policy
}

// point is one (value, system) cell of the sweep grid.
type point struct {
	value  int
	system string
}

// sweepRow carries one formatted CSV row plus the simulated-event count of
// the point that produced it (surfaced to the runner for the run summary)
// and, when tracing is on, the point's recorded event trace.
type sweepRow struct {
	csv    string
	events int64
	trace  *tracing.Trace
}

func (r sweepRow) EventCount() int64 { return r.events }

func (r sweepRow) TraceEventCount() int64 {
	if r.trace == nil {
		return 0
	}
	return int64(r.trace.Len())
}

// sweepHeader returns the CSV header line. The feasible column marks
// points a system cannot run at all (metrics are NaN there) so downstream
// plots keep aligned x-axes instead of silently losing rows.
func sweepHeader() string {
	return "dim,value,system,feasible,opt_step_s,step_s,tokens_per_s,pcie_gb,bus_gb,nand_prog_gb,energy_j,faults,ckpt_s,recovery_s\n"
}

// stream runs every sweep point across the worker pool, emitting rows
// strictly in grid order, and returns the pool's run summary.
func (s sweepSpec) stream(emit func(sweepRow)) (runner.Summary, error) {
	var points []point
	for _, v := range s.Values {
		for _, name := range s.Systems {
			points = append(points, point{value: v, system: name})
		}
	}
	jobs := make([]runner.Job[sweepRow], len(points))
	for i, p := range points {
		p := p
		jobs[i] = func() (sweepRow, error) { return s.runPoint(p) }
	}
	var results []runner.Result[sweepRow]
	var firstErr error
	runner.Stream(s.Parallel, jobs, func(r runner.Result[sweepRow]) {
		results = append(results, r)
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			return
		}
		emit(r.Value)
	})
	return runner.Summarize(results), firstErr
}

// runPoint builds an independent configuration and system for one grid
// cell and formats its CSV row. Each call owns its whole simulation — no
// state is shared with sibling points.
func (s sweepSpec) runPoint(p point) (sweepRow, error) {
	cfg := core.DefaultConfig(s.Model)
	cfg.MaxSimUnits = s.Units
	cfg.Fault = s.Fault
	cfg.Checkpoint = s.Checkpoint
	if err := apply(&cfg, s.Dim, p.value); err != nil {
		return sweepRow{}, err
	}
	var tr *tracing.Trace
	if s.Trace {
		tr = tracing.New(fmt.Sprintf("%s=%d/%s", s.Dim, p.value, p.system))
		cfg.Trace = tr
	}
	sys, err := core.NewSystem(p.system, cfg)
	if err != nil {
		return sweepRow{}, err
	}
	r, err := sys.Run()
	if err != nil {
		return sweepRow{}, err
	}
	if s.Check {
		if v := invariant.Audit(p.system, cfg, r); len(v) > 0 {
			return sweepRow{}, fmt.Errorf("%s %s=%d violates invariants: %s",
				p.system, s.Dim, p.value, strings.Join(v, "; "))
		}
	}
	if !r.Feasible {
		return sweepRow{
			csv: fmt.Sprintf("%s,%d,%s,false,NaN,NaN,NaN,NaN,NaN,NaN,NaN,NaN,NaN,NaN\n",
				s.Dim, p.value, r.System),
			events: r.EventCount(),
			trace:  tr,
		}, nil
	}
	faults := r.PowerLossFaults + r.DieFailFaults + r.ECCFaults
	return sweepRow{
		csv: fmt.Sprintf("%s,%d,%s,true,%.6f,%.6f,%.2f,%.3f,%.3f,%.3f,%.3f,%d,%.6f,%.6f\n",
			s.Dim, p.value, r.System, r.OptStepTime.Seconds(), r.StepTime.Seconds(),
			r.TokensPerSec, units.Bytes(r.PCIeBytes).GBf(), units.Bytes(r.BusBytes).GBf(),
			units.Bytes(r.NANDProgramBytes).GBf(), r.Energy.Total(),
			faults, r.CheckpointTime.Seconds(), r.RecoveryTime.Seconds()),
		events: r.EventCount(),
		trace:  tr,
	}, nil
}

// canonicalDim resolves deprecated dimension spellings. The NAND channel
// bus is configured in MB/s (ssd.Config.Nand.BusMBps); the old "buskbps"
// name wrote MB/s values under a kb/s label, silently mislabelling sweep
// CSVs by 1000×.
func canonicalDim(dim string, warn io.Writer) string {
	if dim == "buskbps" {
		fmt.Fprintln(warn, "sweep: -dim buskbps is deprecated (the value is MB/s, not kb/s); use -dim busmbps")
		return "busmbps"
	}
	return dim
}

// apply sets one sweep dimension on the configuration.
func apply(cfg *core.Config, dim string, v int) error {
	switch dim {
	case "channels":
		cfg.SSD.Channels = v
	case "dies":
		cfg.SSD.DiesPerChannel = v
	case "lanes":
		cfg.ODP.Lanes = v
	case "clock":
		cfg.ODP.ClockMHz = v
	case "pciegen":
		cfg.Link = host.PCIe(v, 4)
	case "batch":
		cfg.Batch = v
	case "busmbps":
		cfg.SSD.Nand.BusMBps = v
	default:
		return fmt.Errorf("unknown sweep dimension %q", dim)
	}
	return nil
}

// parseValues splits the -values flag into integers.
func parseValues(s string) ([]int, error) {
	var vals []int
	for _, v := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", v, err)
		}
		vals = append(vals, n)
	}
	return vals, nil
}

// splitList splits a comma-separated flag into trimmed names.
func splitList(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(n))
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
