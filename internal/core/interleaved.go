package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// InterleavedOffload is the Deep-Optimizer-States-style baseline (Maurya
// et al.): optimizer state lives on the SSD and is updated by the host
// CPU, but instead of staging the whole step host-side, the state is
// partitioned into K subgroups (Config.InterleaveDepth) whose phases
// interleave — while subgroup i updates on the CPU, subgroup i+1
// prefetches over PCIe and subgroup i−1 writes back. Host staging memory
// therefore holds only ~3/K of the resident state, at the cost of a
// pipeline that is at most three subgroups deep: large K shrinks the
// staging footprint but throttles the transfer window.
//
// The external traffic per parameter is identical to HostOffload — twice
// the resident footprint over PCIe — so the two systems share a roofline
// floor and differ only in how close their pipelines get to it.
type InterleavedOffload struct {
	cfg Config
}

// NewInterleavedOffload builds the baseline for a configuration.
func NewInterleavedOffload(cfg Config) *InterleavedOffload { return &InterleavedOffload{cfg: cfg} }

// Name implements System.
func (s *InterleavedOffload) Name() string { return "interleaved" }

// Run implements System.
func (s *InterleavedOffload) Run() (*Report, error) {
	cfg := s.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	if cfg.Trace != nil {
		eng.SetTracer(cfg.Trace)
	}
	dev := ssd.NewDevice(eng, cfg.SSD)
	geo := dev.Geometry()
	link := host.NewLink(eng, cfg.Link)
	cpu := host.NewCPU(eng, cfg.HostCPU)

	simUnits := cfg.SimUnits()
	comps := cfg.Comps()
	lay, err := layout.New(geo, comps, simUnits, cfg.Layout)
	if err != nil {
		return nil, err
	}
	if lay.LogicalPages() > dev.FTL().LogicalPages() {
		return nil, fmt.Errorf("core: window exceeds device capacity — lower MaxSimUnits")
	}
	dev.SetPlaneMapper(lay.PlaneMapper())
	for lpa := int64(0); lpa < lay.LogicalPages(); lpa++ {
		dev.Preload(lpa)
	}
	inj := armFaults(eng, dev, cfg)

	elems := cfg.ElemsPerPage()
	residentB := cfg.ResidentBytesPerUnit()
	gradB := cfg.GradBytesPerUnit()
	woutB := cfg.WeightOutBytesPerUnit()
	kernel := kernelFor(cfg).FlopsPerElem
	pageSize := int64(geo.PageSize)

	// CPU work batches several units per kernel invocation, amortising
	// per-call overhead the way a blocked AVX update loop would.
	unitsPerBatch := cfg.TransferChunkBytes / residentB
	if unitsPerBatch < 1 {
		unitsPerBatch = 1
	}

	// Gradients are produced into host memory by the backward pass, so
	// availability needs no transfer, just timed resolution.
	nAvail := (simUnits + unitsPerBatch - 1) / unitsPerBatch
	avail := gradSchedule(cfg, nAvail)
	gradReady := make([]*future, nAvail)
	arrivals := make([]sim.Timed, nAvail)
	for k := range gradReady {
		f := &future{}
		gradReady[k] = f
		arrivals[k] = sim.Timed{Delay: avail[k], Fn: f.resolve}
	}
	eng.ScheduleBatch(arrivals)

	var endTime sim.Time
	finished := false
	var completed int64
	unitDone := func() {
		completed++
		if completed == simUnits {
			dev.Drain(func() {
				disarmFaults(inj)
				endTime = eng.Now()
				finished = true
			})
		}
	}

	// Admission window: the defining constraint of the interleaved design.
	// Only three subgroups may be host-resident at once (the one updating,
	// the one prefetching, the one writing back), so at most 3·⌈units/K⌉
	// units are in flight. Deeper partitioning (larger K) means less host
	// staging memory and a narrower pipeline.
	subgroup := (simUnits + int64(cfg.Depth()) - 1) / int64(cfg.Depth())
	inflightCap := 3 * subgroup
	if inflightCap < 4 {
		inflightCap = 4 // a degenerate partition still pipelines minimally
	}
	var next int64
	var launch func()

	// Batch accumulator: units whose prefetch reads finished wait here for
	// the CPU update, then write back.
	var batch []int64
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		ids := batch
		batch = nil
		n := int64(len(ids))
		// Host DRAM traffic: state read+written, gradient read, weights out.
		dramBytes := float64(n * (2*residentB + gradB + woutB))
		flops := float64(n) * float64(elems) * float64(kernel)
		newest := ids[0]
		for _, u := range ids {
			if u > newest {
				newest = u
			}
		}
		grads := gradReady[newest/unitsPerBatch]
		// Streaming DMA: subgroup transfers ride a standing descriptor
		// ring, so segments pay wire occupancy without per-DMA setup —
		// the structural edge this pipeline has over chunked offload.
		sim.Chain(nil,
			func(nx func()) { link.StreamFromDevice(n*residentB, nx) },
			func(nx func()) { grads.then(nx) },
			func(nx func()) { cpu.Run(flops, dramBytes, span(eng, "cpu-batch", nx)) },
			func(nx func()) { link.StreamToDevice(n*residentB, nx) },
			func(nx func()) {
				for _, u := range ids {
					c := sim.NewCounter(comps, span(eng, "writeback", func() {
						unitDone()
						launch()
					}))
					for comp := 0; comp < comps; comp++ {
						dev.Write(lay.LPA(u, comp), c.Done)
					}
				}
				nx()
			},
		)
	}

	var readsArrived int64
	startUnit := func(u int64) {
		c := sim.NewCounter(comps, span(eng, "prefetch", func() {
			batch = append(batch, u)
			readsArrived++
			// Flush full batches; also flush when no reads remain
			// outstanding — a narrow window (deep K) may never fill a batch,
			// and at the tail no further arrivals can complete one.
			if int64(len(batch)) >= unitsPerBatch || readsArrived == next {
				flushBatch()
			}
		}))
		for comp := 0; comp < comps; comp++ {
			dev.Read(lay.LPA(u, comp), c.Done)
		}
	}
	launch = func() {
		for next < simUnits && next-completed < inflightCap {
			u := next
			next++
			startUnit(u)
		}
	}
	launch()
	eng.Run()
	if !finished {
		return nil, fmt.Errorf("core: interleaved simulation wedged at %v (%d/%d units)",
			eng.Now(), completed, simUnits)
	}

	scale := cfg.ScaleFactor()
	counts := dev.Counts()
	totalUnits := cfg.TouchedUnits()
	r := &Report{
		System:              s.Name(),
		Model:               cfg.Model.Name,
		Optimizer:           cfg.Optimizer.String(),
		Precision:           cfg.Precision.String(),
		Params:              cfg.Model.Params,
		TotalUnits:          totalUnits,
		SimUnits:            simUnits,
		SimTime:             endTime,
		SimEvents:           eng.Fired(),
		SimPCIeToDevBytes:   int64(link.BytesToDevice()),
		SimPCIeFromDevBytes: int64(link.BytesFromDevice()),
		OptStepTime:         endTime.Scale(scale),
		PCIeBytes:           2 * residentB * totalUnits,
		BusBytes:            int64(float64(counts.BytesIn+counts.BytesOut) * scale),
		NANDReadBytes:       int64(float64(counts.Reads) * float64(pageSize) * scale),
		NANDProgramBytes:    int64(float64(counts.Programs) * float64(pageSize) * scale),
		DRAMBytes:           (2*residentB + gradB + woutB) * totalUnits, // host update traffic
		WAF:                 dev.Stats().WAF,
		Feasible:            true,
	}
	r.LinkUtil = link.Utilization()
	r.BusUtil = meanBusUtil(dev)
	evalEnergy(r, energy.Activity{
		NANDReadBytes:    float64(r.NANDReadBytes),
		NANDProgramBytes: float64(r.NANDProgramBytes),
		NANDEraseBytes:   float64(counts.Erases) * float64(cfg.SSD.Nand.BlockBytes()) * scale,
		BusBytes:         float64(r.BusBytes),
		PCIeBytes:        float64(r.PCIeBytes),
		DRAMBytes:        float64(r.DRAMBytes),
		CPUOps:           float64(totalUnits) * float64(elems) * float64(kernel),
	})
	cfg.endToEnd(r)
	accountFaults(cfg, r, inj)
	return r, nil
}
