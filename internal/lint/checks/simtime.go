package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// SimTime flags bare sim.Time(x) conversions of non-constant numeric
// expressions. sim.Time is nanoseconds by definition, but a raw
// conversion asserts "x is already nanoseconds" with no evidence — the
// same silent-unit-assumption shape as the buskbps bug, in the time
// domain. Named constructors carry the unit in their name: units.Nanos,
// units.Micros, units.Seconds, units.CyclesAtMHz, or a TransferTime
// helper. Constant expressions (2 * sim.Microsecond, sim.Time(0)) and
// re-typings of values that are already sim.Time stay legal.
var SimTime = &lint.Analyzer{
	Name: "simtime",
	Doc: "flags sim.Time(x) conversions of raw float64/int64 values; " +
		"construct durations via internal/units named constructors",
	Run: runSimTime,
}

func runSimTime(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			funTV, ok := pass.Info.Types[call.Fun]
			if !ok || !funTV.IsType() || !isSimTime(funTV.Type) {
				return true
			}
			argTV, ok := pass.Info.Types[call.Args[0]]
			if !ok || argTV.Value != nil {
				return true // constant: unit is auditable at the literal
			}
			if isSimTime(argTV.Type) {
				return true // Time → Time: a re-typing, not a unit claim
			}
			pass.Report(call.Pos(), "simtime",
				"raw sim.Time conversion of a non-constant value; name the unit via internal/units (Nanos/Micros/Seconds/CyclesAtMHz or a TransferTime helper)")
			return true
		})
	}
	return nil
}

// isSimTime reports whether t is the sim package's Time type.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}
