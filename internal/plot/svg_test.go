package plot

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

func demoFigure() *stats.Figure {
	f := stats.NewFigure("speedup vs scale", "params", "speedup ×")
	a := f.AddSeries("optimstore")
	b := f.AddSeries("baseline")
	for i := 1; i <= 5; i++ {
		a.Add(float64(i)*giga, 1.8)
		b.Add(float64(i)*giga, 1.0)
	}
	return f
}

func TestSVGStructure(t *testing.T) {
	svg := SVG(demoFigure(), DefaultOptions())
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "speedup vs scale",
		"optimstore", "baseline", "params", "speedup ×",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	// Two series → two polylines.
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Fatalf("polylines = %d", n)
	}
	// Markers present.
	if strings.Count(svg, "<circle") != 10 {
		t.Fatal("point markers missing")
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	f := stats.NewFigure("empty", "x", "y")
	svg := SVG(f, DefaultOptions())
	if !strings.Contains(svg, "no data") {
		t.Fatalf("empty figure: %q", svg)
	}
}

func TestSVGLogX(t *testing.T) {
	f := stats.NewFigure("scale", "params", "s")
	s := f.AddSeries("a")
	for _, x := range []float64{1e8, 1e9, 1e10, 1e11} {
		s.Add(x, x/giga)
	}
	opts := DefaultOptions()
	opts.LogX = true
	svg := SVG(f, opts)
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("no polyline")
	}
	// Log axis must not be silently linear: the first two points (10×
	// apart) and last two (10× apart) should be equidistant horizontally.
	xs := circleXs(t, svg)
	if len(xs) != 4 {
		t.Fatalf("circles = %d", len(xs))
	}
	d1 := xs[1] - xs[0]
	d3 := xs[3] - xs[2]
	if math.Abs(d1-d3) > 1.5 {
		t.Fatalf("log spacing uneven: %v vs %v", d1, d3)
	}
}

// circleXs extracts the cx attribute of every circle element.
func circleXs(t *testing.T, svg string) []float64 {
	t.Helper()
	var xs []float64
	for _, part := range strings.Split(svg, `cx="`)[1:] {
		end := strings.IndexByte(part, '"')
		v, err := strconv.ParseFloat(part[:end], 64)
		if err != nil {
			t.Fatalf("bad cx in %q: %v", part[:end], err)
		}
		xs = append(xs, v)
	}
	return xs
}

func TestTicksRound(t *testing.T) {
	got := ticks(0, 100, 5)
	if len(got) < 3 {
		t.Fatalf("ticks = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
	}
	if got[0] < 0 || got[len(got)-1] > 100+1e-9 {
		t.Fatalf("ticks escape range: %v", got)
	}
}

func TestLabelFormats(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1500:   "1.5K",
		2e6:    "2M",
		3e9:    "3B",
		4e12:   "4T",
		0.5:    "0.5",
		0.0001: "1.0e-04",
	}
	//simlint:allow maporder table-driven cases, each asserted independently
	for in, want := range cases {
		if got := label(in); got != want {
			t.Errorf("label(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestEsc(t *testing.T) {
	if esc(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("esc = %q", esc(`a<b>&"c"`))
	}
}

func TestSVGSkipsNaN(t *testing.T) {
	f := stats.NewFigure("nan", "x", "y")
	s := f.AddSeries("s")
	s.Add(1, 1)
	s.Add(2, math.NaN())
	s.Add(3, 3)
	svg := SVG(f, DefaultOptions())
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}
