package energy

import (
	"math"
	"testing"

	"repro/internal/approx"
)

func TestDefaultCostsValid(t *testing.T) {
	if err := DefaultCosts().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultCosts()
	// Structural relations the analysis depends on:
	// programming is far costlier than reading,
	if c.NANDProgramPJPerByte < 5*c.NANDReadPJPerByte {
		t.Fatal("program should dominate read energy")
	}
	// moving a byte off-device costs more than moving it on a channel bus,
	if c.PCIePJPerByte <= c.BusPJPerByte {
		t.Fatal("PCIe should cost more than the internal bus")
	}
	// and CPU scalar ops are the costliest compute.
	if c.CPUOpPJ <= c.GPUOpPJ || c.CPUOpPJ <= c.ODPOpPJ {
		t.Fatal("CPU op should be the costliest")
	}
}

func TestValidateRejectsZero(t *testing.T) {
	c := DefaultCosts()
	c.HBMPJPerByte = 0
	if c.Validate() == nil {
		t.Fatal("zero constant accepted")
	}
}

func TestEvaluate(t *testing.T) {
	c := DefaultCosts()
	b := c.Evaluate(Activity{
		NANDReadBytes: 1e12, // 1 TB at 15 pJ/B = 15 J
		ODPOps:        1e12, // at 18 pJ = 18 J
	})
	if math.Abs(b.NANDRead-15) > 1e-9 {
		t.Fatalf("read energy = %v, want 15 J", b.NANDRead)
	}
	if math.Abs(b.Compute-18) > 1e-9 {
		t.Fatalf("compute energy = %v, want 18 J", b.Compute)
	}
	if !approx.Equal(b.NANDProgram, 0) || !approx.Equal(b.PCIe, 0) {
		t.Fatal("untouched components should be zero")
	}
	if math.Abs(b.Total()-33) > 1e-9 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{NANDRead: 1, Bus: 2, Compute: 3}
	b := Breakdown{NANDRead: 10, PCIe: 5}
	sum := a.Add(b)
	if !approx.Equal(sum.NANDRead, 11) || !approx.Equal(sum.Bus, 2) ||
		!approx.Equal(sum.PCIe, 5) || !approx.Equal(sum.Compute, 3) {
		t.Fatalf("Add = %+v", sum)
	}
	sc := a.Scale(2)
	if !approx.Equal(sc.NANDRead, 2) || !approx.Equal(sc.Bus, 4) || !approx.Equal(sc.Compute, 6) {
		t.Fatalf("Scale = %+v", sc)
	}
	if !approx.Equal(sc.Total(), 12) {
		t.Fatalf("Total = %v", sc.Total())
	}
}

func TestEvaluateAllComponents(t *testing.T) {
	c := DefaultCosts()
	a := Activity{
		NANDReadBytes: 1, NANDProgramBytes: 1, NANDEraseBytes: 1,
		BusBytes: 1, PCIeBytes: 1, DRAMBytes: 1, HBMBytes: 1,
		ODPOps: 1, GPUOps: 1, CPUOps: 1,
	}
	b := c.Evaluate(a)
	//simlint:allow maporder table-driven cases, each asserted independently
	for name, v := range map[string]float64{
		"NANDRead": b.NANDRead, "NANDProgram": b.NANDProgram,
		"NANDErase": b.NANDErase, "Bus": b.Bus, "PCIe": b.PCIe,
		"DRAM": b.DRAM, "HBM": b.HBM, "Compute": b.Compute,
	} {
		if v <= 0 {
			t.Errorf("component %s zero with unit activity", name)
		}
	}
}
