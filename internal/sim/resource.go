package sim

import "fmt"

// Resource models a server (or pool of identical servers) with a FIFO
// request queue: a NAND plane, a channel bus, a DMA engine, a PCIe link.
// Requests acquire one unit of capacity, hold it for a caller-determined
// duration, and release it; waiting requests are granted strictly in
// arrival order, which keeps simulations deterministic.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []func()

	// Utilisation accounting.
	busyTime   Time // integral of inUse over time, in unit-nanoseconds
	lastChange Time
	grants     uint64
	peakQueue  int
}

// NewResource creates a resource with the given capacity (number of
// identical servers). Capacity must be positive.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of requests waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Grants returns how many acquisitions have been granted in total.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyTime += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Utilization returns the mean fraction of capacity that was busy between
// simulation start and the current time. Returns 0 before time advances.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	total := r.busyTime + Time(r.inUse)*(now-r.lastChange)
	if now == 0 {
		return 0
	}
	return float64(total) / (float64(now) * float64(r.capacity))
}

// Acquire requests one unit. When a unit is available — immediately, or
// once earlier requests release — granted is invoked with a release
// function that must be called exactly once. The grant happens
// synchronously when capacity is free, so callers must not assume a
// simulated-time delay.
func (r *Resource) Acquire(granted func(release func())) {
	grant := func() {
		r.account()
		r.inUse++
		r.grants++
		released := false
		granted(func() {
			if released {
				panic(fmt.Sprintf("sim: double release of %q", r.name))
			}
			released = true
			r.release()
		})
	}
	if r.inUse < r.capacity {
		grant()
		return
	}
	r.waiters = append(r.waiters, grant)
	if len(r.waiters) > r.peakQueue {
		r.peakQueue = len(r.waiters)
	}
}

func (r *Resource) release() {
	r.account()
	r.inUse--
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		next()
	}
}

// Use is the common acquire–hold–release pattern: wait for a unit, hold it
// for d nanoseconds of simulated time, then release and call done (which
// may be nil). It returns immediately; everything happens via events.
func (r *Resource) Use(d Time, done func()) {
	r.Acquire(func(release func()) {
		r.eng.Schedule(d, func() {
			release()
			if done != nil {
				done()
			}
		})
	})
}

// PeakQueue returns the maximum number of simultaneously waiting requests
// observed.
func (r *Resource) PeakQueue() int { return r.peakQueue }
