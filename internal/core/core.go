package core
