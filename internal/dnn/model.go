// Package dnn describes the DNN training workloads: parameter counts,
// layer structure, and per-step FLOP estimates for the models the
// reproduction evaluates on. Only the quantities the optimizer-offload
// problem depends on are modelled — parameter bytes, gradient bytes, and
// forward/backward compute — because the optimizer step itself is
// element-wise and architecture-agnostic.
package dnn

import "fmt"

// Arch tags the broad architecture family, which picks the FLOP formula.
type Arch int

// Architecture families.
const (
	Transformer Arch = iota
	CNN
	// Recommender models (DLRM-style): compute is a small MLP; parameters
	// are dominated by embedding tables that each step touches sparsely.
	Recommender
)

// String names the family.
func (a Arch) String() string {
	switch a {
	case Transformer:
		return "Transformer"
	case CNN:
		return "CNN"
	case Recommender:
		return "Recommender"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Model describes one training workload.
type Model struct {
	Name   string
	Arch   Arch
	Params int64 // trainable parameters
	Layers int   // repeated blocks (for LAMB layer bounds)
	Hidden int   // hidden width (transformers)
	SeqLen int   // tokens per sample (transformers)
	// FlopsPerSample is the forward FLOPs per sample for CNN and
	// Recommender models, where the 2·params·tokens rule does not apply.
	FlopsPerSample float64

	// SparseFraction is the fraction of parameters a training step
	// actually touches (embedding-table models); 0 means dense (1.0).
	SparseFraction float64
}

// Validate reports the first structural problem.
func (m Model) Validate() error {
	if m.Name == "" || m.Params <= 0 || m.Layers <= 0 {
		return fmt.Errorf("dnn: model %+v", m)
	}
	if m.Arch == Transformer && (m.SeqLen <= 0 || m.Hidden <= 0) {
		return fmt.Errorf("dnn: transformer %q missing seq/hidden", m.Name)
	}
	if (m.Arch == CNN || m.Arch == Recommender) && m.FlopsPerSample <= 0 {
		return fmt.Errorf("dnn: %s %q missing flops", m.Arch, m.Name)
	}
	if m.SparseFraction < 0 || m.SparseFraction > 1 {
		return fmt.Errorf("dnn: %q sparse fraction %v", m.Name, m.SparseFraction)
	}
	return nil
}

// UpdateFraction returns the fraction of parameters one step updates:
// SparseFraction when set, else 1 (dense).
func (m Model) UpdateFraction() float64 {
	if m.SparseFraction > 0 {
		return m.SparseFraction
	}
	return 1
}

// FwdFlopsPerSample estimates forward-pass FLOPs for one sample: the
// standard 2·params·tokens for transformers, the measured constant for
// CNNs.
func (m Model) FwdFlopsPerSample() float64 {
	switch m.Arch {
	case Transformer:
		return 2 * float64(m.Params) * float64(m.SeqLen)
	case CNN, Recommender:
		return m.FlopsPerSample
	default:
		panic("dnn: unknown arch")
	}
}

// StepFlops estimates forward+backward FLOPs for a batch: backward costs
// twice the forward (3× total).
func (m Model) StepFlops(batch int) float64 {
	return 3 * m.FwdFlopsPerSample() * float64(batch)
}

// BatchTokens returns the number of tokens processed per step (samples for
// CNNs).
func (m Model) BatchTokens(batch int) int64 {
	if m.Arch == Transformer {
		return int64(batch) * int64(m.SeqLen)
	}
	return int64(batch)
}

// LayerBounds splits the parameter range into per-layer slices for
// layer-wise optimizers (LAMB). The split is approximate — equal-size
// chunks — which preserves the count and scale of trust-ratio reductions.
func (m Model) LayerBounds() []int64 {
	bounds := make([]int64, m.Layers+1)
	for i := 0; i <= m.Layers; i++ {
		bounds[i] = m.Params * int64(i) / int64(m.Layers)
	}
	return bounds
}

// String renders the model name and size.
func (m Model) String() string {
	return fmt.Sprintf("%s (%s params)", m.Name, FormatCount(m.Params))
}

// SI thresholds for parameter-count formatting (dimensionless counts,
// not bytes — so named numbers rather than units.Bytes).
const (
	trillion = 1e12
	billion  = 1e9
	million  = 1e6
	thousand = 1e3
)

// FormatCount renders a parameter count as 340M / 13B style text.
func FormatCount(n int64) string {
	switch {
	case n >= trillion:
		return fmt.Sprintf("%.1fT", float64(n)/trillion)
	case n >= billion:
		return fmt.Sprintf("%.1fB", float64(n)/billion)
	case n >= million:
		return fmt.Sprintf("%.0fM", float64(n)/million)
	case n >= thousand:
		return fmt.Sprintf("%.0fK", float64(n)/thousand)
	default:
		return fmt.Sprintf("%d", n)
	}
}
