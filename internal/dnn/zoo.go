package dnn

import "fmt"

// Zoo returns the evaluation model set: the span from "fits on one GPU"
// (ResNet-50, BERT) through "optimizer state must be offloaded"
// (GPT-6.7B and up) to "state dwarfs host memory too" (GPT-175B-class).
// Parameter counts follow the published configurations.
func Zoo() []Model {
	return []Model{
		ResNet50(),
		DLRM(),
		BERTLarge(),
		GPT2XL(),
		GPT6B7(),
		Llama7B(),
		GPT13B(),
		GPT30B(),
		GPT66B(),
		Llama70B(),
		GPT175B(),
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("dnn: unknown model %q", name)
}

// ResNet50 is the classic CNN reference (25.6M params, ~4.1 GFLOPs fwd).
func ResNet50() Model {
	return Model{Name: "ResNet-50", Arch: CNN, Params: 25_600_000, Layers: 50,
		FlopsPerSample: 4.1e9}
}

// DLRM is a recommendation model in the published DLRM configuration
// family: 24B parameters dominated by embedding tables, of which a batch
// touches roughly 0.1% per step, with a small (~1 GFLOP/sample) MLP.
func DLRM() Model {
	return Model{Name: "DLRM-24B", Arch: Recommender, Params: 24_000_000_000,
		Layers: 8, FlopsPerSample: 1e9, SparseFraction: 0.001}
}

// BERTLarge is BERT-Large: 340M params, 24 layers, hidden 1024.
func BERTLarge() Model {
	return Model{Name: "BERT-Large", Arch: Transformer, Params: 340_000_000,
		Layers: 24, Hidden: 1024, SeqLen: 512}
}

// GPT2XL is GPT-2 XL: 1.5B params, 48 layers, hidden 1600.
func GPT2XL() Model {
	return Model{Name: "GPT-2-XL", Arch: Transformer, Params: 1_500_000_000,
		Layers: 48, Hidden: 1600, SeqLen: 1024}
}

// GPT6B7 is the GPT-3 6.7B configuration: 32 layers, hidden 4096.
func GPT6B7() Model {
	return Model{Name: "GPT-6.7B", Arch: Transformer, Params: 6_700_000_000,
		Layers: 32, Hidden: 4096, SeqLen: 2048}
}

// Llama7B is the LLaMA-7B configuration: 32 layers, hidden 4096.
func Llama7B() Model {
	return Model{Name: "LLaMA-7B", Arch: Transformer, Params: 6_740_000_000,
		Layers: 32, Hidden: 4096, SeqLen: 2048}
}

// Llama70B is the LLaMA-2-70B configuration: 80 layers, hidden 8192.
func Llama70B() Model {
	return Model{Name: "LLaMA-70B", Arch: Transformer, Params: 70_000_000_000,
		Layers: 80, Hidden: 8192, SeqLen: 4096}
}

// GPT13B is the GPT-3 13B configuration: 40 layers, hidden 5140.
func GPT13B() Model {
	return Model{Name: "GPT-13B", Arch: Transformer, Params: 13_000_000_000,
		Layers: 40, Hidden: 5140, SeqLen: 2048}
}

// GPT30B is a 30B Megatron-style configuration: 48 layers, hidden 7168.
func GPT30B() Model {
	return Model{Name: "GPT-30B", Arch: Transformer, Params: 30_000_000_000,
		Layers: 48, Hidden: 7168, SeqLen: 2048}
}

// GPT66B is a 66B OPT-style configuration: 64 layers, hidden 9216.
func GPT66B() Model {
	return Model{Name: "GPT-66B", Arch: Transformer, Params: 66_000_000_000,
		Layers: 64, Hidden: 9216, SeqLen: 2048}
}

// GPT175B is the GPT-3 175B configuration: 96 layers, hidden 12288.
func GPT175B() Model {
	return Model{Name: "GPT-175B", Arch: Transformer, Params: 175_000_000_000,
		Layers: 96, Hidden: 12288, SeqLen: 2048}
}
