// Package hot is the annotated-root side of the hotalloc testdata tree:
// allocations here and in the helper package it calls must be flagged
// with the full call chain.
package hot

import "repro/internal/lint/checks/testdata/hotalloc/helper"

// Step is the annotated hot root.
//
//simlint:hotpath
func Step(n int) {
	s := make([]int, n) // want "make allocates"
	_ = s
	helper.Grow(nil, n)
	cold(n)
}

// cold has no annotation of its own but is reached from Step, so its
// allocations are hot.
func cold(n int) {
	m := map[int]int{} // want "map literal allocates"
	m[n] = n           // want "map write may allocate"
}

// NotHot is unreachable from any hot root; its allocations are fine.
func NotHot(n int) []int {
	return append(make([]int, 0, n), n)
}

// Spawn demonstrates a deliberate, documented exception.
//
//simlint:hotpath
func Spawn() int {
	//simlint:allow hotalloc deliberate closure for the directive test
	f := func() int { return 1 }
	return f()
}
