// Package bench measures the simulation kernel's throughput and
// maintains the repository's benchmark trajectory (the committed
// BENCH_*.json snapshots).
//
// Two kinds of benchmark run here. Kernel microbenchmarks time one hot
// path each — schedule+fire, batch schedule, pooled Resource.Use — with
// a known number of simulated events per operation, so events/sec and
// ns/event fall out of testing.Benchmark's wall-clock directly. The
// sweep benchmarks run the canonical channel×system sweep (8 channel
// counts × 5 systems, the cmd/sweep grid that BenchmarkSweep32 in
// internal/runner times), counting events from the deterministic run
// summary; the search benchmark runs the roofline-pruned autotuner
// (internal/search) over its default grid, counting simulated design
// points. Every measurement is best-of-three, each run started from a
// freshly collected heap, to shave scheduler, GC, and page-cache noise
// on small CI machines.
//
// The snapshot file is the regression gate's contract: `make bench`
// writes it, `make verify` re-measures and fails when any bench falls
// more than the threshold below its committed events/sec (Compare).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/runner"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/units"
)

// Schema identifies the snapshot layout; bump when fields change
// incompatibly.
const Schema = "repro-bench/v1"

// Measure is one benchmark's normalized result. EventsPerSec is the
// regression-gated figure; the rest contextualize it. For the search
// benchmark an "event" is one simulated design point, and PrunedFraction
// records how much of the grid the analytic bounds rejected.
type Measure struct {
	Name           string  `json:"name"`
	EventsPerOp    int64   `json:"events_per_op"`
	NsPerOp        float64 `json:"ns_per_op"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	PrunedFraction float64 `json:"pruned_fraction,omitempty"`
}

// Snapshot is the on-disk BENCH_*.json document.
type Snapshot struct {
	Schema  string    `json:"schema"`
	Note    string    `json:"note"`
	Go      string    `json:"go"`
	PrePR   Measure   `json:"pre_pr"`
	Benches []Measure `json:"benches"`
}

// PrePR is the pre-overhaul BenchmarkSweep32 measurement this PR's
// 3× acceptance bar is judged against: the container/heap kernel with
// closure-per-event scheduling and eager whole-device FTL tables ran
// the 32-job sweep in ~220 ms (best of several, after warm-up) for
// 44320 simulated events — ~200k events/sec, ~12.4 heap allocations
// per event. Recorded here once so the ratio survives in the snapshot.
var PrePR = Measure{
	Name:           "sweep32",
	EventsPerOp:    44320,
	NsPerOp:        220e6,
	EventsPerSec:   200000,
	NsPerEvent:     5000,
	AllocsPerEvent: 12.4,
}

// snapshotNote documents the methodology inside the artifact itself.
const snapshotNote = "events/sec of the simulation kernel: microbenchmarks time one hot path " +
	"with a fixed event count per op; sweep32 runs the canonical channel-by-system sweep " +
	"(8 channel counts x 5 systems, GPT-13B, MaxSimUnits=128; the name predates the " +
	"fifth system) single-threaded and counts " +
	"events from the run summary; search runs the roofline-pruned autotuner over the " +
	"default 5184-point grid (GPT-13B, MaxSimUnits=128, budget 16) single-threaded, " +
	"counting simulated design points as events and recording the pruned fraction. " +
	"Best of three testing.Benchmark runs, each from a collected heap. pre_pr is the " +
	"pre-overhaul kernel's sweep32 measurement, kept for the trajectory."

// sweepJobs builds the canonical channel×system sweep workload — the same
// grid BenchmarkSweep32 in internal/runner times (duplicated because a
// package under test cannot import one that imports it back).
func sweepJobs(traced bool) []runner.Job[*core.Report] {
	channels := []int{1, 2, 3, 4, 6, 8, 12, 16}
	var jobs []runner.Job[*core.Report]
	for _, ch := range channels {
		for _, name := range core.SystemNames() {
			ch, name := ch, name
			jobs = append(jobs, func() (*core.Report, error) {
				cfg := core.DefaultConfig(dnn.GPT13B())
				cfg.MaxSimUnits = 128
				cfg.SSD.Channels = ch
				if traced {
					cfg.Trace = tracing.New(name)
				}
				sys, err := core.NewSystem(name, cfg)
				if err != nil {
					return nil, err
				}
				return sys.Run()
			})
		}
	}
	return jobs
}

// sweepEvents counts the simulated events of one full sweep via a
// deterministic sequential run.
func sweepEvents(traced bool) (int64, error) {
	results := runner.Run(1, sweepJobs(traced))
	if err := runner.FirstErr(results); err != nil {
		return 0, err
	}
	return runner.Summarize(results).Events, nil
}

// measure runs fn under testing.Benchmark three times — each from a
// freshly collected heap — and folds the fastest run into a Measure,
// attributing eventsPerOp simulated events to each benchmark operation.
// Best-of-N is the right estimator here: the quantity being gated is
// the kernel's speed, and every slowdown source on a small CI box (GC
// debt from a previous bench, scheduler noise, cold page cache) only
// ever adds time.
func measure(name string, eventsPerOp int64, fn func(b *testing.B)) Measure {
	var best testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		runtime.GC()
		if r := testing.Benchmark(fn); i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	nsPerOp := float64(best.NsPerOp())
	nsPerEvent := nsPerOp / float64(eventsPerOp)
	return Measure{
		Name:           name,
		EventsPerOp:    eventsPerOp,
		NsPerOp:        nsPerOp,
		EventsPerSec:   float64(sim.Second) / nsPerEvent,
		NsPerEvent:     nsPerEvent,
		AllocsPerEvent: float64(best.AllocsPerOp()) / float64(eventsPerOp),
	}
}

// RunAll measures every benchmark and returns them in canonical order.
func RunAll() ([]Measure, error) {
	const batchSize = 64
	var ms []Measure

	ms = append(ms, measure("kernel/schedule-fire", 1, func(b *testing.B) {
		e := sim.NewEngine()
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(1, fn)
			e.Run()
		}
	}))

	ms = append(ms, measure("kernel/schedule-batch", batchSize, func(b *testing.B) {
		e := sim.NewEngine()
		fn := func() {}
		items := make([]sim.Timed, batchSize)
		for i := range items {
			items[i] = sim.Timed{Delay: units.Nanos(float64(i % 7)), Fn: fn}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ScheduleBatch(items)
			e.Run()
		}
	}))

	ms = append(ms, measure("kernel/resource-use", 1, func(b *testing.B) {
		e := sim.NewEngine()
		r := sim.NewResource(e, "r", 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Use(1, nil)
			e.Run()
		}
	}))

	for _, traced := range []bool{false, true} {
		name := "sweep32"
		if traced {
			name = "sweep32-traced"
		}
		events, err := sweepEvents(traced)
		if err != nil {
			return nil, fmt.Errorf("bench: %s pre-run: %w", name, err)
		}
		traced := traced
		ms = append(ms, measure(name, events, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results := runner.Run(1, sweepJobs(traced))
				if err := runner.FirstErr(results); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	pre, err := searchRun()
	if err != nil {
		return nil, fmt.Errorf("bench: search pre-run: %w", err)
	}
	m := measure("search", int64(pre.Stats.Evaluated), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := searchRun(); err != nil {
				b.Fatal(err)
			}
		}
	})
	m.PrunedFraction = pre.Stats.PrunedFraction()
	ms = append(ms, m)
	return ms, nil
}

// searchRun executes the canonical autotune workload: the default
// design-space grid over GPT-13B at the sweep32 simulation window, a
// 16-simulation budget, sequential. Its "events" are simulated design
// points, so EventsPerSec reads as configs-evaluated/sec — end-to-end
// cost including grid enumeration, bound pricing, hashing, and pruning.
func searchRun() (*search.Result, error) {
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 128
	return search.Run(cfg, search.DefaultSpace(), search.Options{Budget: 16, Parallel: 1})
}

// NewSnapshot wraps measurements into the canonical document.
func NewSnapshot(ms []Measure) Snapshot {
	return Snapshot{
		Schema:  Schema,
		Note:    snapshotNote,
		Go:      runtime.Version(),
		PrePR:   PrePR,
		Benches: ms,
	}
}

// Load reads a snapshot file.
func Load(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if s.Schema != Schema {
		return s, fmt.Errorf("bench: %s has schema %q, want %q", path, s.Schema, Schema)
	}
	return s, nil
}

// Write stores a snapshot with a trailing newline, stable field order.
func Write(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare returns one message per benchmark whose fresh events/sec fell
// more than threshold (a fraction, e.g. 0.15) below the committed
// snapshot's. Benches present on only one side are ignored — adding or
// retiring a benchmark is not a regression.
func Compare(committed Snapshot, fresh []Measure, threshold float64) []string {
	byName := make(map[string]Measure, len(committed.Benches))
	for _, m := range committed.Benches {
		byName[m.Name] = m
	}
	var msgs []string
	for _, m := range fresh {
		old, ok := byName[m.Name]
		if !ok || old.EventsPerSec <= 0 {
			continue
		}
		floor := old.EventsPerSec * (1 - threshold)
		if m.EventsPerSec < floor {
			msgs = append(msgs, fmt.Sprintf(
				"%s: %.0f events/sec is %.1f%% below committed %.0f (floor %.0f)",
				m.Name, m.EventsPerSec, 100*(1-m.EventsPerSec/old.EventsPerSec),
				old.EventsPerSec, floor))
		}
	}
	sort.Strings(msgs)
	return msgs
}
