package ssd

import (
	"fmt"
)

const unmapped = int64(-1)

// pageMap chunk geometry: entries are materialized in chunks of 2^15
// int64s (256 KiB) the first time any entry in the chunk is written.
const (
	pageMapChunkBits = 15
	pageMapChunkSize = 1 << pageMapChunkBits
	pageMapChunkMask = pageMapChunkSize - 1
)

// pageMap is a sparse array of page numbers defaulting to unmapped. A
// freshly built device maps nothing, and paper-scale sweeps touch only
// the working set of each job, so materializing translation tables
// on demand (nil chunk ⇒ every entry unmapped) removes the dominant
// cost of device construction: eagerly allocating and -1-filling
// whole-device l2p/p2l arrays was ~90% of a 32-job sweep's wall time.
//
// Entries are stored as uint32 biased by +1 so the zero value of a
// fresh chunk already means unmapped — make's zeroing (free for freshly
// mapped OS pages) replaces an explicit -1 fill loop that showed up as
// ~25% of sweep time for write-heavy jobs, and 4-byte entries halve the
// chunk-zeroing bandwidth of the original int64 tables. The bias caps a
// device (or its logical space) at 2^32-2 pages, checked at build.
type pageMap struct {
	chunks [][]uint32
}

func newPageMap(n int64) pageMap {
	if n >= 1<<32-1 {
		panic(fmt.Sprintf("ssd: page map over %d pages exceeds uint32 encoding", n))
	}
	return pageMap{chunks: make([][]uint32, (n+pageMapChunkSize-1)>>pageMapChunkBits)}
}

func (m *pageMap) get(i int64) int64 {
	c := m.chunks[i>>pageMapChunkBits]
	if c == nil {
		return unmapped
	}
	return int64(c[i&pageMapChunkMask]) - 1
}

func (m *pageMap) set(i, v int64) {
	ci := i >> pageMapChunkBits
	c := m.chunks[ci]
	if c == nil {
		if v == unmapped {
			return
		}
		c = make([]uint32, pageMapChunkSize)
		m.chunks[ci] = c
	}
	c[i&pageMapChunkMask] = uint32(v + 1)
}

// forEach visits every mapped entry in index order, skipping
// unmaterialized chunks wholesale.
func (m *pageMap) forEach(fn func(i, v int64)) {
	for ci, c := range m.chunks {
		if c == nil {
			continue
		}
		base := int64(ci) << pageMapChunkBits
		for j, v := range c {
			if v != 0 {
				fn(base+int64(j), int64(v)-1)
			}
		}
	}
}

// FTL is a page-level log-structured flash translation layer. It owns the
// logical→physical map, per-plane write frontiers, per-block valid counts,
// and the bookkeeping half of garbage collection. It performs no simulated
// I/O itself — the Device drives NAND timing and calls in here for
// allocation and mapping decisions, so the FTL is directly unit-testable.
type FTL struct {
	geo          Geometry
	logicalPages int64

	l2p        pageMap // logical page -> linear PPA, or unmapped
	p2l        pageMap // linear PPA -> logical page, or unmapped (free/stale)
	validCount []int32 // valid pages per global block
	erases     []int32 // P/E cycles per global block (FTL's own tally)

	// In-flight (issued, not yet committed) programs per global block, with
	// per-plane totals. A block with in-flight programs must not be erased:
	// the mapping commits at program completion, and erasing out from under
	// it would either destroy the data racing toward the block or let the
	// commit land in an erased block.
	inflight      []int32
	inflightPlane []int32

	retired      []bool // blocks permanently out of circulation
	retiredCount int

	planes []planeAlloc

	// Write-amplification accounting.
	hostProgrammed uint64
	gcProgrammed   uint64
}

// Stream tags an allocation with its data temperature so the FTL can keep
// hot (freshly written, soon re-invalidated) and cold (GC-relocated,
// long-lived) pages in separate blocks — the standard hot/cold separation
// that keeps victim blocks either mostly stale or mostly valid instead of
// an expensive mix.
type Stream int

// Allocation streams.
const (
	HotStream  Stream = 0 // host writes and in-storage updates
	ColdStream Stream = 1 // GC relocations
)

// planeAlloc is the allocation state of one plane: a FIFO of erased blocks,
// per-stream open blocks being filled, and full blocks awaiting GC.
type planeAlloc struct {
	free []int32  // erased, ready to open
	open [2]int32 // filling, per stream; -1 when none
	next [2]int   // next page within open, per stream
	full []int32  // completely written blocks
}

// NewFTL builds an FTL over the geometry exposing logicalPages of capacity.
func NewFTL(geo Geometry, logicalPages int64) *FTL {
	total := geo.TotalPages()
	if logicalPages <= 0 || logicalPages > total {
		panic(fmt.Sprintf("ssd: logical pages %d vs physical %d", logicalPages, total))
	}
	f := &FTL{
		geo:           geo,
		logicalPages:  logicalPages,
		l2p:           newPageMap(logicalPages),
		p2l:           newPageMap(total),
		validCount:    make([]int32, geo.BlocksTotal()),
		erases:        make([]int32, geo.BlocksTotal()),
		inflight:      make([]int32, geo.BlocksTotal()),
		inflightPlane: make([]int32, geo.Planes()),
		retired:       make([]bool, geo.BlocksTotal()),
		planes:        make([]planeAlloc, geo.Planes()),
	}
	for p := range f.planes {
		pa := &f.planes[p]
		pa.open[HotStream] = -1
		pa.open[ColdStream] = -1
		pa.free = make([]int32, geo.BlocksPerPlane)
		for b := range pa.free {
			pa.free[b] = int32(b)
		}
	}
	return f
}

// Geometry returns the device geometry.
func (f *FTL) Geometry() Geometry { return f.geo }

// LogicalPages returns the exposed capacity in pages.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// Lookup translates a logical page; ok is false when the page was never
// written (or was trimmed).
func (f *FTL) Lookup(lpa int64) (PPA, bool) {
	f.checkLPA(lpa)
	lin := f.l2p.get(lpa)
	if lin == unmapped {
		return PPA{}, false
	}
	return f.geo.FromLinear(lin), true
}

func (f *FTL) checkLPA(lpa int64) {
	if lpa < 0 || lpa >= f.logicalPages {
		panic(fmt.Sprintf("ssd: lpa %d outside logical capacity %d", lpa, f.logicalPages))
	}
}

// FreeBlocks returns the number of erased blocks available in a plane.
func (f *FTL) FreeBlocks(planeIdx int) int { return len(f.planes[planeIdx].free) }

// AvailablePages returns the number of pages that can still be allocated
// in the plane without reclaiming space: the remainders of the open blocks
// plus all free blocks.
func (f *FTL) AvailablePages(planeIdx int) int {
	pa := &f.planes[planeIdx]
	n := len(pa.free) * f.geo.PagesPerBlock
	for s := range pa.open {
		if pa.open[s] >= 0 {
			n += f.geo.PagesPerBlock - pa.next[s]
		}
	}
	return n
}

// CanAlloc reports whether AllocPage on the plane would succeed for the
// hot stream.
func (f *FTL) CanAlloc(planeIdx int) bool {
	pa := &f.planes[planeIdx]
	return pa.open[HotStream] >= 0 || len(pa.free) > 0
}

// AllocPage claims the next hot-stream page of the plane's write frontier.
// It panics when the plane has no open or free block — the Device must
// garbage collect (or backpressure) before exhaustion, checked via
// CanAlloc.
func (f *FTL) AllocPage(planeIdx int) PPA {
	return f.AllocPageStream(planeIdx, HotStream)
}

// AllocPageStream claims the next page of the given stream's write
// frontier. Keeping GC relocations (cold) out of the host/update (hot)
// blocks is the hot/cold separation that stops victim blocks from mixing
// long-lived and short-lived pages. A cold-stream allocation falls back to
// the hot open block when no free block exists to open.
func (f *FTL) AllocPageStream(planeIdx int, stream Stream) PPA {
	pa := &f.planes[planeIdx]
	s := int(stream)
	if pa.open[s] < 0 {
		if len(pa.free) == 0 {
			// Cold stream may borrow the hot open block rather than wedge.
			if stream == ColdStream && pa.open[HotStream] >= 0 {
				s = int(HotStream)
			} else {
				panic(fmt.Sprintf("ssd: plane %d out of blocks", planeIdx))
			}
		} else {
			// Wear-aware selection: open the least-erased free block (ties
			// to the lowest block id, keeping runs deterministic). This is
			// the dynamic half of wear levelling.
			base := planeIdx * f.geo.BlocksPerPlane
			best := 0
			for i := 1; i < len(pa.free); i++ {
				if f.erases[base+int(pa.free[i])] < f.erases[base+int(pa.free[best])] {
					best = i
				}
			}
			pa.open[s] = pa.free[best]
			pa.free = append(pa.free[:best], pa.free[best+1:]...)
			pa.next[s] = 0
		}
	}
	ch, die, plane := f.geo.PlaneLoc(planeIdx)
	ppa := PPA{Channel: ch, Die: die}
	ppa.Plane = plane
	ppa.Block = int(pa.open[s])
	ppa.Page = pa.next[s]
	pa.next[s]++
	if pa.next[s] == f.geo.PagesPerBlock {
		pa.full = append(pa.full, pa.open[s])
		pa.open[s] = -1
	}
	return ppa
}

// CommitWrite binds lpa to a freshly allocated ppa, invalidating any prior
// mapping. Host writes and GC relocations are tallied separately for
// write-amplification reporting.
func (f *FTL) CommitWrite(lpa int64, ppa PPA, gc bool) {
	f.checkLPA(lpa)
	lin := f.geo.Linear(ppa)
	if f.p2l.get(lin) != unmapped {
		panic(fmt.Sprintf("ssd: commit to already-valid page %v", ppa))
	}
	if old := f.l2p.get(lpa); old != unmapped {
		f.p2l.set(old, unmapped)
		f.validCount[f.geo.BlockIndex(f.geo.FromLinear(old))]--
	}
	f.l2p.set(lpa, lin)
	f.p2l.set(lin, lpa)
	f.validCount[f.geo.BlockIndex(ppa)]++
	if gc {
		f.gcProgrammed++
	} else {
		f.hostProgrammed++
	}
}

// Invalidate trims a logical page, dropping its mapping if present.
func (f *FTL) Invalidate(lpa int64) {
	f.checkLPA(lpa)
	if old := f.l2p.get(lpa); old != unmapped {
		f.p2l.set(old, unmapped)
		f.validCount[f.geo.BlockIndex(f.geo.FromLinear(old))]--
		f.l2p.set(lpa, unmapped)
	}
}

// BeginProgram records a program issued to ppa whose mapping will commit
// at completion (EndProgram). The FTL refuses to pick blocks with in-
// flight programs as GC victims while the count is nonzero.
func (f *FTL) BeginProgram(ppa PPA) {
	b := f.geo.BlockIndex(ppa)
	f.inflight[b]++
	f.inflightPlane[f.geo.PlaneOf(ppa)]++
}

// EndProgram retires a BeginProgram record when the program completes (or
// completes stale, in which case no mapping is committed).
func (f *FTL) EndProgram(ppa PPA) {
	b := f.geo.BlockIndex(ppa)
	f.inflight[b]--
	f.inflightPlane[f.geo.PlaneOf(ppa)]--
	if f.inflight[b] < 0 {
		panic(fmt.Sprintf("ssd: EndProgram without BeginProgram on %v", ppa))
	}
}

// InflightPrograms returns the number of issued-but-uncommitted programs
// targeting the plane.
func (f *FTL) InflightPrograms(planeIdx int) int {
	return int(f.inflightPlane[planeIdx])
}

// PickVictim removes and returns the full block with the fewest valid
// pages in the plane (greedy policy). ok is false when no eligible full
// block exists or the best candidate is entirely valid — erasing an
// all-valid block reclaims nothing and would make GC churn forever.
// Blocks with in-flight programs are ineligible (see BeginProgram).
func (f *FTL) PickVictim(planeIdx int) (block int, ok bool) {
	pa := &f.planes[planeIdx]
	base := planeIdx * f.geo.BlocksPerPlane
	best := -1
	for i := 0; i < len(pa.full); i++ {
		if f.inflight[base+int(pa.full[i])] > 0 {
			continue
		}
		if best < 0 || f.validCount[base+int(pa.full[i])] < f.validCount[base+int(pa.full[best])] {
			best = i
		}
	}
	if best < 0 || int(f.validCount[base+int(pa.full[best])]) == f.geo.PagesPerBlock {
		return 0, false
	}
	b := pa.full[best]
	pa.full = append(pa.full[:best], pa.full[best+1:]...)
	return int(b), true
}

// TakeBlock removes a block from the plane's full list without erasing it
// — the first step of retirement. It returns false when the block is not
// currently in the full list (free, open, or already claimed by GC as a
// victim); retirement is then deferred until the block next fills.
func (f *FTL) TakeBlock(planeIdx, block int) bool {
	pa := &f.planes[planeIdx]
	for i, b := range pa.full {
		if int(b) == block {
			pa.full = append(pa.full[:i], pa.full[i+1:]...)
			return true
		}
	}
	return false
}

// RetireBlock marks a block permanently out of circulation. The caller
// must have removed it from the allocation lists (TakeBlock) and relocated
// its valid pages first.
func (f *FTL) RetireBlock(planeIdx, block int) {
	g := planeIdx*f.geo.BlocksPerPlane + block
	if f.retired[g] {
		panic(fmt.Sprintf("ssd: block %d/%d retired twice", planeIdx, block))
	}
	if n := f.validCount[g]; n != 0 {
		panic(fmt.Sprintf("ssd: retiring block %d/%d with %d valid pages", planeIdx, block, n))
	}
	if f.inflight[g] != 0 {
		panic(fmt.Sprintf("ssd: retiring block %d/%d with in-flight programs", planeIdx, block))
	}
	// Drop stale reverse mappings so the retired block holds nothing.
	start := int64(g) * int64(f.geo.PagesPerBlock)
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		f.p2l.set(start+int64(p), unmapped)
	}
	f.retired[g] = true
	f.retiredCount++
}

// Retired reports whether a plane's block has been retired.
func (f *FTL) Retired(planeIdx, block int) bool {
	return f.retired[planeIdx*f.geo.BlocksPerPlane+block]
}

// RetiredBlocks returns the total number of retired blocks.
func (f *FTL) RetiredBlocks() int { return f.retiredCount }

// MappedPages returns the number of logical pages currently mapped.
func (f *FTL) MappedPages() int64 {
	var n int64
	for _, c := range f.validCount {
		n += int64(c)
	}
	return n
}

// NthMappedLPA returns the k-th (mod count) mapped logical page in lpa
// order, or ok=false when nothing is mapped. Fault injection uses it to
// pick a deterministic victim page from a seed without knowing the
// workload's footprint.
func (f *FTL) NthMappedLPA(k int64) (lpa int64, ok bool) {
	total := f.MappedPages()
	if total == 0 {
		return 0, false
	}
	k %= total
	if k < 0 {
		k += total
	}
	f.l2p.forEach(func(l, _ int64) {
		if ok {
			return
		}
		if k == 0 {
			lpa, ok = l, true
			return
		}
		k--
	})
	return lpa, ok
}

// ValidPagesOnDie sums the valid pages mapped to one die — the data a die
// failure would take out.
func (f *FTL) ValidPagesOnDie(ch, die int) int64 {
	var n int64
	for p := 0; p < f.geo.PlanesPerDie; p++ {
		base := f.geo.PlaneIndex(ch, die, p) * f.geo.BlocksPerPlane
		for b := 0; b < f.geo.BlocksPerPlane; b++ {
			n += int64(f.validCount[base+b])
		}
	}
	return n
}

// restoreMapping installs lpa→ppa during crash-recovery replay: same map
// updates as CommitWrite but with no displacement (the rebuilt maps start
// empty) and no program tallies (the programs happened before the crash).
func (f *FTL) restoreMapping(lpa int64, ppa PPA) {
	f.checkLPA(lpa)
	lin := f.geo.Linear(ppa)
	if f.p2l.get(lin) != unmapped {
		panic(fmt.Sprintf("ssd: recovery maps two lpas to %v", ppa))
	}
	if f.l2p.get(lpa) != unmapped {
		panic(fmt.Sprintf("ssd: recovery maps lpa %d twice", lpa))
	}
	f.l2p.set(lpa, lin)
	f.p2l.set(lin, lpa)
	f.validCount[f.geo.BlockIndex(ppa)]++
}

// ValidLPAs returns the logical pages still valid in a plane's block, in
// physical page order — the relocation work list for GC.
func (f *FTL) ValidLPAs(planeIdx, block int) []int64 {
	blockGlobal := planeIdx*f.geo.BlocksPerPlane + block
	start := int64(blockGlobal) * int64(f.geo.PagesPerBlock)
	var lpas []int64
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		if lpa := f.p2l.get(start + int64(p)); lpa != unmapped {
			lpas = append(lpas, lpa)
		}
	}
	return lpas
}

// ValidCount returns the number of valid pages in a plane's block.
func (f *FTL) ValidCount(planeIdx, block int) int {
	return int(f.validCount[planeIdx*f.geo.BlocksPerPlane+block])
}

// OnErased returns a block to the plane's free pool after the Device has
// erased it. The block must hold no valid pages.
func (f *FTL) OnErased(planeIdx, block int) {
	if n := f.ValidCount(planeIdx, block); n != 0 {
		panic(fmt.Sprintf("ssd: erasing block %d/%d with %d valid pages", planeIdx, block, n))
	}
	if f.Retired(planeIdx, block) {
		panic(fmt.Sprintf("ssd: erasing retired block %d/%d", planeIdx, block))
	}
	// Drop stale reverse mappings for the erased block.
	blockGlobal := planeIdx*f.geo.BlocksPerPlane + block
	start := int64(blockGlobal) * int64(f.geo.PagesPerBlock)
	for p := 0; p < f.geo.PagesPerBlock; p++ {
		f.p2l.set(start+int64(p), unmapped)
	}
	f.erases[blockGlobal]++
	f.planes[planeIdx].free = append(f.planes[planeIdx].free, int32(block))
}

// BlockErases returns the FTL's P/E tally for a plane's block.
func (f *FTL) BlockErases(planeIdx, block int) int {
	return int(f.erases[planeIdx*f.geo.BlocksPerPlane+block])
}

// WearSpread returns the min and max P/E count across a plane's blocks —
// the quantity wear levelling exists to bound.
func (f *FTL) WearSpread(planeIdx int) (min, max int) {
	base := planeIdx * f.geo.BlocksPerPlane
	min = int(f.erases[base])
	max = min
	for b := 1; b < f.geo.BlocksPerPlane; b++ {
		e := int(f.erases[base+b])
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return min, max
}

// HostProgrammed and GCProgrammed return the page-program tallies; their
// ratio is the write-amplification factor.
func (f *FTL) HostProgrammed() uint64 { return f.hostProgrammed }

// GCProgrammed returns the relocation program count.
func (f *FTL) GCProgrammed() uint64 { return f.gcProgrammed }

// WAF returns the write-amplification factor (total programs per host
// program), or 1 before any host write.
func (f *FTL) WAF() float64 {
	if f.hostProgrammed == 0 {
		return 1
	}
	return float64(f.hostProgrammed+f.gcProgrammed) / float64(f.hostProgrammed)
}

// CheckConsistent verifies the FTL invariants: l2p/p2l are inverse
// bijections on mapped pages and validCount matches the reverse map. Used
// by property tests; O(total pages).
func (f *FTL) CheckConsistent() error {
	counts := make([]int32, len(f.validCount))
	var err error
	f.p2l.forEach(func(lin, lpa int64) {
		if err != nil {
			return
		}
		if lpa < 0 || lpa >= f.logicalPages {
			err = fmt.Errorf("p2l[%d] = %d out of range", lin, lpa)
			return
		}
		if got := f.l2p.get(lpa); got != lin {
			err = fmt.Errorf("p2l[%d]=%d but l2p[%d]=%d", lin, lpa, lpa, got)
			return
		}
		counts[f.geo.BlockIndex(f.geo.FromLinear(lin))]++
	})
	if err != nil {
		return err
	}
	f.l2p.forEach(func(lpa, lin int64) {
		if err != nil {
			return
		}
		if got := f.p2l.get(lin); got != lpa {
			err = fmt.Errorf("l2p[%d]=%d but p2l[%d]=%d", lpa, lin, lin, got)
		}
	})
	if err != nil {
		return err
	}
	for b := range counts {
		if counts[b] != f.validCount[b] {
			return fmt.Errorf("block %d validCount %d, recount %d", b, f.validCount[b], counts[b])
		}
		if f.retired[b] && (f.validCount[b] != 0 || f.inflight[b] != 0) {
			return fmt.Errorf("retired block %d has valid=%d inflight=%d",
				b, f.validCount[b], f.inflight[b])
		}
	}
	for p := range f.planes {
		var sum int32
		base := p * f.geo.BlocksPerPlane
		for b := 0; b < f.geo.BlocksPerPlane; b++ {
			if f.inflight[base+b] < 0 {
				return fmt.Errorf("block %d inflight %d negative", base+b, f.inflight[base+b])
			}
			sum += f.inflight[base+b]
		}
		if sum != f.inflightPlane[p] {
			return fmt.Errorf("plane %d inflight total %d, recount %d", p, f.inflightPlane[p], sum)
		}
	}
	return nil
}

// HasFullBlock reports whether the plane has at least one completely
// written block (a GC candidate).
func (f *FTL) HasFullBlock(planeIdx int) bool {
	return len(f.planes[planeIdx].full) > 0
}
