package sim

import (
	"runtime"
	"testing"
)

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Use(100, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "planes", 4)
	var ends []Time
	for i := 0; i < 8; i++ {
		r.Use(50, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	// Two waves of four.
	for i, want := range []Time{50, 50, 50, 50, 100, 100, 100, 100} {
		if ends[i] != want {
			t.Fatalf("ends = %v", ends)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Use(10, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	r.Use(100, nil)
	// Idle 100ns afterwards.
	e.Schedule(200, func() {})
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

// TestResourceDeepContentionIterativeDrain queues 100k waiters behind one
// held unit whose granted callbacks release synchronously, so a single
// release drains the entire queue in one cascade. The pre-fix recursive
// hand-off built a release→grant→release call chain one frame per waiter
// deep (a ~100k-frame stack); the iterative drain must keep the call
// stack flat while preserving exact FIFO grant order and timestamps.
func TestResourceDeepContentionIterativeDrain(t *testing.T) {
	const waiters = 100_000
	e := NewEngine()
	r := NewResource(e, "r", 1)

	var hold func()
	r.Acquire(func(release func()) { hold = release })

	var order []int
	var times []Time
	maxDepth := 0
	pcs := make([]uintptr, 512)
	for i := 0; i < waiters; i++ {
		i := i
		r.Acquire(func(release func()) {
			order = append(order, i)
			times = append(times, e.Now())
			if d := runtime.Callers(0, pcs); d > maxDepth {
				maxDepth = d
			}
			release()
		})
	}
	if r.QueueLen() != waiters {
		t.Fatalf("queue = %d, want %d", r.QueueLen(), waiters)
	}

	e.Schedule(100, hold)
	e.Run()

	if len(order) != waiters {
		t.Fatalf("granted %d waiters, want %d", len(order), waiters)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order broken at %d: got %d (FIFO violated)", i, v)
		}
		if times[i] != 100 {
			t.Fatalf("waiter %d granted at t=%d, want 100", i, times[i])
		}
	}
	if r.Grants() != waiters+1 || r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("grants=%d inUse=%d queue=%d after drain", r.Grants(), r.InUse(), r.QueueLen())
	}
	// The recursive version exceeds any fixed bound (one release and one
	// grant frame per queued waiter); the iterative drain stays shallow no
	// matter how deep the queue was.
	if maxDepth >= len(pcs) {
		t.Fatalf("call stack reached %d+ frames during drain; hand-off is recursing", maxDepth)
	}
}

// TestResourceAcquireDuringDrainKeepsFIFO pins the companion Acquire
// guard: a granted callback that releases synchronously and immediately
// re-acquires must queue behind the already-waiting requests (capacity is
// momentarily free mid-drain, but the queue is not empty).
func TestResourceAcquireDuringDrainKeepsFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	var order []string

	var hold func()
	r.Acquire(func(release func()) { hold = release })
	r.Acquire(func(release func()) {
		order = append(order, "a")
		release()
		// Queue is still holding b; this must not overtake it.
		r.Acquire(func(release func()) {
			order = append(order, "a2")
			release()
		})
	})
	r.Acquire(func(release func()) {
		order = append(order, "b")
		release()
	})
	e.Schedule(10, hold)
	e.Run()

	want := []string{"a", "b", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Acquire(func(release func()) {
		release()
		release()
	})
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestResourceCounters(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	for i := 0; i < 3; i++ {
		r.Use(10, nil)
	}
	if r.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", r.QueueLen())
	}
	if r.PeakQueue() != 2 {
		t.Fatalf("peak = %d", r.PeakQueue())
	}
	e.Run()
	if r.Grants() != 3 {
		t.Fatalf("grants = %d", r.Grants())
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse = %d after drain", r.InUse())
	}
	if r.Name() != "r" || r.Capacity() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestCounter(t *testing.T) {
	fired := false
	c := NewCounter(2, func() { fired = true })
	c.Done()
	if fired {
		t.Fatal("fired early")
	}
	c.Done()
	if !fired {
		t.Fatal("did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero did not panic")
		}
	}()
	c.Done()
}

func TestCounterArmZero(t *testing.T) {
	fired := false
	c := NewCounter(0, func() { fired = true })
	c.Arm()
	if !fired {
		t.Fatal("Arm with zero outstanding did not fire")
	}
}

func TestCounterAdd(t *testing.T) {
	fired := false
	c := NewCounter(1, func() { fired = true })
	c.Add(1)
	c.Done()
	if fired || c.Remaining() != 1 {
		t.Fatalf("fired=%v remaining=%d", fired, c.Remaining())
	}
	c.Done()
	if !fired {
		t.Fatal("did not fire after Add accounted")
	}
}

func TestChain(t *testing.T) {
	e := NewEngine()
	var got []string
	Chain(func() { got = append(got, "done") },
		func(next func()) { e.Schedule(10, func() { got = append(got, "a"); next() }) },
		func(next func()) { e.Schedule(10, func() { got = append(got, "b"); next() }) },
		func(next func()) { got = append(got, "c"); next() },
	)
	e.Run()
	want := []string{"a", "b", "c", "done"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("chain stages did not run sequentially: t=%d", e.Now())
	}
}

func TestChainEmpty(t *testing.T) {
	done := false
	Chain(func() { done = true })
	if !done {
		t.Fatal("empty chain did not complete")
	}
}

func TestForkJoin(t *testing.T) {
	e := NewEngine()
	var doneAt Time = -1
	ForkJoin(func() { doneAt = e.Now() },
		func(next func()) { e.Schedule(10, next) },
		func(next func()) { e.Schedule(30, next) },
		func(next func()) { e.Schedule(20, next) },
	)
	e.Run()
	if doneAt != 30 {
		t.Fatalf("join at %d, want 30 (max of branches)", doneAt)
	}
}

func TestForkJoinEmpty(t *testing.T) {
	done := false
	ForkJoin(func() { done = true })
	if !done {
		t.Fatal("empty fork-join did not complete")
	}
}

// recTracer is a minimal Tracer capturing events for assertions.
type recTracer struct {
	spans    []string
	spanSum  map[string]Time
	instants map[string]int
	counters int
}

func newRecTracer() *recTracer {
	return &recTracer{spanSum: map[string]Time{}, instants: map[string]int{}}
}

func (r *recTracer) Span(track, name string, start, end Time) {
	r.spans = append(r.spans, track+"/"+name)
	r.spanSum[track+"/"+name] += end - start
}
func (r *recTracer) Instant(track, name string, at Time) { r.instants[track+"/"+name]++ }
func (r *recTracer) Counter(track, name string, at Time, value float64) {
	r.counters++
}

// TestTracerObservesEngineAndResource checks the instrumentation points:
// fire/cancel instants from the engine, and hold/wait spans from resources
// whose hold sum reproduces the utilization integral exactly.
func TestTracerObservesEngineAndResource(t *testing.T) {
	e := NewEngine()
	tr := newRecTracer()
	e.SetTracer(tr)
	r := NewResource(e, "bus", 1)
	for i := 0; i < 3; i++ {
		r.Use(100, nil)
	}
	ev := e.Schedule(500, func() {})
	e.Cancel(ev)
	e.Schedule(400, func() {}) // extend past the last release
	e.Run()

	if tr.instants["engine/cancel"] != 1 {
		t.Fatalf("cancel instants = %d", tr.instants["engine/cancel"])
	}
	if tr.instants["engine/fire"] == 0 {
		t.Fatal("no fire instants recorded")
	}
	if got := tr.spanSum["bus/hold"]; got != 300 {
		t.Fatalf("hold span sum = %d, want 300", got)
	}
	// Reconciliation: span sum / (now * capacity) == Utilization.
	wantUtil := float64(tr.spanSum["bus/hold"]) / (float64(e.Now()) * float64(r.Capacity()))
	//simlint:allow floateq reconciliation is specified bit-exact: same division, same operands
	if got := r.Utilization(); got != wantUtil {
		t.Fatalf("utilization %v != trace-derived %v", got, wantUtil)
	}
	// Two of the three requests queued: two wait spans of 100 and 200.
	if got := tr.spanSum["bus/wait"]; got != 300 {
		t.Fatalf("wait span sum = %d, want 300", got)
	}
	if tr.counters == 0 {
		t.Fatal("no counter samples recorded")
	}
}

// TestDisabledTracerAddsNoAllocations pins the hot-path cost of the
// disabled tracer and of the pooled kernel: a steady-state Use+Run cycle
// allocates nothing at all — the request struct comes from the
// resource's freelist, the completion event from the engine's, and the
// completion callback is a package function taking the pooled request as
// its argument, so there are no closures to heap-allocate. (The
// pre-pooling kernel allocated 6 objects per cycle here.)
func TestDisabledTracerAddsNoAllocations(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	for i := 0; i < 64; i++ { // pre-grow heap and queue slices
		r.Use(1, nil)
	}
	e.Run()
	per := testing.AllocsPerRun(1000, func() {
		r.Use(1, nil)
		e.Run()
	})
	//simlint:allow floateq AllocsPerRun returns a whole count; the pin is exactly zero
	if per != 0 {
		t.Fatalf("Use+Run allocates %v with tracing disabled, want 0 (pooled request/event kernel)", per)
	}
}
