package search

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Table renders the frontier as a stats table, one row per Pareto point.
func (r *Result) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Pareto frontier (%s)", r.System),
		"rank", "channels", "dies", "planes", "bus-MBps", "over-prov",
		"layout", "optimizer", "ecc", "opt-step-s", "energy-J", "lifetime-steps", "binding")
	for i, p := range r.Frontier {
		t.AddRow(i+1, p.Cfg.SSD.Channels, p.Cfg.SSD.DiesPerChannel,
			p.Cfg.SSD.Nand.PlanesPerDie, p.Cfg.SSD.Nand.BusMBps,
			p.Cfg.SSD.OverProvision, p.Cfg.Layout.String(), p.Cfg.Optimizer.String(),
			eccLabel(p), p.OptStep.Seconds(), p.Energy, p.Lifetime, p.Bound.Binding)
	}
	return t
}

// Summary renders the run statistics as a stats table.
func (r *Result) Summary() *stats.Table {
	t := stats.NewTable("Search summary", "metric", "value")
	s := r.Stats
	t.AddRow("grid candidates", s.Candidates)
	t.AddRow("invalid configs", s.Invalid)
	t.AddRow("pruned by bounds", s.Pruned)
	t.AddRow("pruned fraction", s.PrunedFraction())
	t.AddRow("memo hits", s.MemoHits)
	t.AddRow("simulated", s.Evaluated)
	t.AddRow("infeasible", s.Infeasible)
	t.AddRow("skipped (budget)", s.Skipped)
	t.AddRow("frontier size", len(r.Frontier))
	return t
}

// CSV renders the frontier in a machine-readable form, deterministic to
// the byte: fixed header, %g float formatting, hex config hash.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("rank,channels,dies,planes,bus_mbps,over_provision,layout,optimizer,ecc," +
		"opt_step_s,energy_j,lifetime_steps,binding,hash\n")
	for i, p := range r.Frontier {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%g,%s,%s,%s,%g,%g,%g,%s,%016x\n",
			i+1, p.Cfg.SSD.Channels, p.Cfg.SSD.DiesPerChannel,
			p.Cfg.SSD.Nand.PlanesPerDie, p.Cfg.SSD.Nand.BusMBps,
			p.Cfg.SSD.OverProvision, p.Cfg.Layout, p.Cfg.Optimizer,
			eccLabel(p), p.OptStep.Seconds(), p.Energy, p.Lifetime,
			p.Bound.Binding, p.Hash)
	}
	return b.String()
}

func eccLabel(p *Point) string {
	ret := p.Cfg.SSD.Retire
	if !ret.Enabled() {
		return "off"
	}
	return fmt.Sprintf("retry%d", ret.RetryBudget)
}
