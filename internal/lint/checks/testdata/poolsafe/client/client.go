// Package client exercises the poolsafe analyzer across the package
// boundary: handles from the pool package released on some control-flow
// paths and touched on others.
package client

import "repro/internal/lint/checks/testdata/poolsafe/pool"

// UseAfterPut reads the handle after it went back to the pool.
func UseAfterPut() int {
	o := pool.Get()
	pool.Put(o)
	return o.ID // want "use of pooled o after release"
}

// DoubleRelease releases one handle twice, via method then function.
func DoubleRelease() {
	o := pool.Get()
	o.Release()
	pool.Put(o) // want "pooled o released again after release"
}

// BranchRelease releases on one path only; the read after the join is
// reachable from the releasing path (may-analysis).
func BranchRelease(cond bool) int {
	o := pool.Get()
	if cond {
		pool.Put(o)
	}
	return o.ID // want "use of pooled o after release"
}

// LoopRelease releases at the bottom of the loop body; the read at the
// top is reached through the back edge on iteration two.
func LoopRelease(n int) {
	o := pool.Get()
	for i := 0; i < n; i++ {
		_ = o.ID    // want "use of pooled o after release"
		pool.Put(o) // want "pooled o released again after release"
	}
}

// Reacquire reassigns the variable to a fresh handle, which kills the
// released fact.
func Reacquire() int {
	o := pool.Get()
	pool.Put(o)
	o = pool.Get()
	return o.ID
}

// UseBeforePut touches the handle only while it is live.
func UseBeforePut() int {
	o := pool.Get()
	id := o.ID
	pool.Put(o)
	return id
}

// BranchSeparate keeps release and use on disjoint paths; nothing to
// flag.
func BranchSeparate(cond bool) int {
	o := pool.Get()
	if cond {
		pool.Put(o)
		return 0
	}
	id := o.ID
	pool.Put(o)
	return id
}

var leaked *pool.Obj

// Leak parks a pooled pointer in a package-level variable, which
// outlives every handle.
func Leak() {
	o := pool.Get()
	leaked = o // want "pooled pointer stored in package-level leaked"
	pool.Put(o)
}

// AllowedPeek documents a deliberate post-release read.
func AllowedPeek() int {
	o := pool.Get()
	pool.Put(o)
	//simlint:allow poolsafe deliberate post-release read for the directive test
	return o.ID
}
