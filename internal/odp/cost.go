package odp

import "repro/internal/units"

// Cost is the analytic silicon cost of one on-die processing unit.
// Constants are ballpark figures for FP units and SRAM implemented in the
// coarse CMOS periphery process of 3D NAND (logic there is roughly a
// decade behind foundry logic nodes). The F12 experiment reports this
// table; F6 sweeps lanes, so conclusions never rest on a single constant.
type Cost struct {
	AreaMM2    float64 // silicon area per unit
	StaticMW   float64 // leakage + clocking power
	DynamicPJ  float64 // energy per scalar FP operation
	BufferMM2  float64 // portion of AreaMM2 that is SRAM
	DieAreaPct float64 // unit area as a fraction of a ~70mm² NAND die
}

// Per-lane / per-KB cost constants (coarse-periphery ballpark).
const (
	laneAreaMM2   = 0.015 // one FP32 FMA-capable lane incl. routing
	laneStaticMW  = 0.6   // per-lane static power
	opEnergyPJ    = 18.0  // per scalar op, incl. local operand movement
	sramAreaPerKB = 0.009 // mm² per KiB of staging SRAM
	sramStaticMW  = 0.02  // per KiB static power
	nandDieMM2    = 70.0  // reference die size for the area-fraction row
)

// CostFor evaluates the analytic model for a design point.
func CostFor(p Params) Cost {
	buffer := sramAreaPerKB * float64(p.BufferKB)
	area := laneAreaMM2*float64(p.Lanes) + buffer
	return Cost{
		AreaMM2:    area,
		StaticMW:   laneStaticMW*float64(p.Lanes) + sramStaticMW*float64(p.BufferKB),
		DynamicPJ:  opEnergyPJ,
		BufferMM2:  buffer,
		DieAreaPct: area / nandDieMM2 * 100,
	}
}

// OpEnergyPJ exposes the per-operation dynamic energy constant for the
// energy package.
func OpEnergyPJ() units.Picojoules { return opEnergyPJ }
