// Command simlint is the repository's static-analysis multichecker:
// verify tier 3. It runs two kinds of analyzers over the module.
//
// Per-unit analyzers inspect one package at a time:
//
//	nondeterminism  wall-clock reads, global math/rand, map-order iteration
//	unitconv        raw scale-factor literals outside internal/units
//	floateq         exact float ==/!= in tests outside approx helpers
//	simtime         bare sim.Time(x) conversions without a named constructor
//	tracesink       fmt stream writes that would bypass the trace sink
//
// Module analyzers run once over the whole load set, with the
// cross-package call graph in hand:
//
//	hotalloc        allocations reachable from //simlint:hotpath functions
//	poolsafe        use-after-release of //simlint:pooled handles
//	globalstate     writes to mutable package-level state
//
// Findings are suppressed line-by-line with `//simlint:allow <check>
// [reason]` placed on, or directly above, the offending line; a directive
// that suppresses nothing is itself a finding (unusedallow).
//
// Usage:
//
//	simlint [packages]     # default ./...
//	simlint -json          # one JSON object per finding, one per line
//	simlint -list          # print analyzers and their scopes
//
// Exit status: 0 when no diagnostic survives suppression, 1 when at
// least one does, 2 when any package fails to load or typecheck. CI and
// wrapper scripts rely on this contract; -json does not change it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/checks"
)

// scope limits a per-unit analyzer to the packages where its rule is
// policy.
type scope struct {
	analyzer *lint.Analyzer
	include  func(rel string) bool
	describe string
}

// moduleScope limits a module analyzer's *findings* by position: the
// analyzer always sees the whole load set (its call chains may cross any
// boundary), but only reports anchored inside the scope survive.
type moduleScope struct {
	analyzer *lint.ModuleAnalyzer
	include  func(rel string) bool
	describe string
}

// scopes is the tier-3 policy. Paths are module-relative.
//
//   - nondeterminism governs every package that feeds simulator output
//     (all of internal/ and cmd/); examples are interactive demos and may
//     print wall-clock timings.
//   - unitconv and simtime govern everything outside the packages that
//     define the units (internal/units and the sim kernel itself, whose
//     Time type the constructors wrap). That includes internal/lint: the
//     linter obeys its own rules.
//   - floateq governs every test in the module.
//   - tracesink governs the packages that record and serialize event
//     traces; their output must stay byte-stable, so trace bytes go
//     through internal/tracing's strconv-append sink, never fmt streams.
var scopes = []scope{
	{checks.Nondeterminism, underAny("internal", "cmd"), "internal/..., cmd/..."},
	{checks.UnitConv, not(underAny("internal/units")), "all but internal/units"},
	{checks.FloatEq, all, "all tests"},
	{checks.SimTime, not(underAny("internal/sim", "internal/units")), "all but internal/sim, internal/units"},
	{checks.TraceSink, underAny("internal/tracing"), "internal/tracing"},
}

// moduleScopes is the module-analyzer policy.
//
//   - hotalloc and poolsafe are driven entirely by annotations
//     (//simlint:hotpath, //simlint:pooled); they apply module-wide.
//   - globalstate governs the sim-adjacent packages (internal/ and
//     cmd/), where shared mutable state couples simulations.
var moduleScopes = []moduleScope{
	{checks.HotAlloc, all, "whole module (annotation-driven)"},
	{checks.PoolSafe, all, "whole module (annotation-driven)"},
	{checks.GlobalState, underAny("internal", "cmd"), "internal/..., cmd/..."},
}

func all(string) bool { return true }

func underAny(prefixes ...string) func(string) bool {
	return func(rel string) bool {
		for _, p := range prefixes {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		}
		return false
	}
}

func not(f func(string) bool) func(string) bool {
	return func(rel string) bool { return !f(rel) }
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-json] [-list] [packages]\n\nPer-unit analyzers:\n")
		for _, s := range scopes {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n                   scope: %s\n",
				s.analyzer.Name, s.analyzer.Doc, s.describe)
		}
		fmt.Fprintf(os.Stderr, "\nModule analyzers:\n")
		for _, s := range moduleScopes {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n                   scope: %s\n",
				s.analyzer.Name, s.analyzer.Doc, s.describe)
		}
	}
	flag.Parse()
	if *list {
		flag.Usage()
		return
	}
	os.Exit(run(flag.Args(), *asJSON))
}

// finding is the -json output shape. The field order is part of the
// interface: encoding/json emits struct fields in declaration order, so
// consumers can diff artifact files across runs.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

func run(patterns []string, asJSON bool) int {
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	failed := false
	var units []*lint.Unit
	for _, dir := range dirs {
		us, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			failed = true
			continue
		}
		units = append(units, us...)
	}

	// Raw diagnostics from both pass kinds, then one global suppression
	// pass: an allow directive used only by a module analyzer must not be
	// reported stale by the per-unit runs (and vice versa).
	var raw []lint.Diagnostic
	for _, unit := range units {
		rel := relPath(root, unit.Dir)
		var applicable []*lint.Analyzer
		for _, s := range scopes {
			if s.include(rel) {
				applicable = append(applicable, s.analyzer)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		diags, err := lint.RunUnitAnalyzers(unit, applicable...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			failed = true
			continue
		}
		raw = append(raw, diags...)
	}
	if len(units) > 0 {
		var moduleAnalyzers []*lint.ModuleAnalyzer
		include := map[string]func(string) bool{}
		for _, s := range moduleScopes {
			moduleAnalyzers = append(moduleAnalyzers, s.analyzer)
			include[s.analyzer.Name] = s.include
		}
		diags, err := lint.RunModuleAnalyzers(units, moduleAnalyzers...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			failed = true
		}
		for _, d := range diags {
			pos := units[0].Fset.Position(d.Pos)
			if inc := include[d.Analyzer]; inc != nil && inc(relPath(root, filepath.Dir(pos.Filename))) {
				raw = append(raw, d)
			}
		}
	}

	found := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range lint.Suppress(units, raw) {
		pos := units[0].Fset.Position(d.Pos)
		if asJSON {
			enc.Encode(finding{
				File:     relPath(root, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Category: d.Category,
				Message:  d.Message,
			})
		} else {
			fmt.Printf("%s:%d:%d: %s [%s]\n",
				relPath(root, pos.Filename), pos.Line, pos.Column, d.Message, d.Analyzer)
		}
		found++
	}
	switch {
	case failed:
		return 2
	case found > 0:
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// expand resolves package patterns to directories. Supported: "./...",
// "dir/...", plain directories.
func expand(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		var batch []string
		var err error
		switch {
		case p == "./..." || p == "...":
			batch, err = lint.PackageDirs(root)
		case strings.HasSuffix(p, "/..."):
			batch, err = lint.PackageDirs(filepath.Join(root, strings.TrimSuffix(p, "/...")))
		default:
			batch = []string{p}
		}
		if err != nil {
			return nil, err
		}
		for _, d := range batch {
			abs, err := filepath.Abs(d)
			if err != nil {
				return nil, err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}
	return dirs, nil
}

// relPath renders a path module-relative for stable, clickable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
