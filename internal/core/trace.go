package core

import "repro/internal/sim"

// phaseTrack is the track all model-phase spans are recorded on. Keeping
// every system's phases on one track makes traces from different systems
// directly comparable lane-for-lane in a Chrome/Perfetto view; resource
// activity (channel buses, dies, PCIe, ODP units) appears on per-resource
// tracks emitted by sim.Resource itself.
const phaseTrack = "phase"

// span wraps done so that, when the engine carries a tracer, a phase span
// is recorded from the current simulated time until done runs. With
// tracing disabled it returns done unchanged, so instrumented call sites
// cost one nil check and zero allocations — the same contract the engine
// and resources keep.
//
// Call span at the moment the phase logically starts (request time, not
// grant time): the resulting span then covers queueing as well as
// service, which is exactly the wall-phase decomposition the paper's
// overlap analysis needs.
func span(eng *sim.Engine, name string, done func()) func() {
	tr := eng.Tracer()
	if tr == nil {
		return done
	}
	start := eng.Now()
	return func() {
		tr.Span(phaseTrack, name, start, eng.Now())
		done()
	}
}
