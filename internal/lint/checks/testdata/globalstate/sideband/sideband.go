// Package sideband is the second package of the globalstate tree:
// instance-scoped and local writes must stay clean while package-level
// stores are flagged.
package sideband

var last string

// Record parks runtime state in a package-level variable.
func Record(s string) {
	last = s // want "write of package-level last"
}

// Box is instance-scoped state; writes through a receiver are fine.
type Box struct{ v int }

// Set writes a field of its receiver, not package state.
func (b *Box) Set(v int) {
	b.v = v
}

// Local writes only locals, including one shadowing a package name.
func Local() int {
	last := 1
	last++
	return last
}
