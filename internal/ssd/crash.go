package ssd

import (
	"fmt"

	"repro/internal/sim"
)

// FTL op boundaries. Every durable state mutation the device performs is
// bracketed by exactly one boundary notification, fired synchronously
// AFTER the mutation completes — so an observer (fault injector, crash
// harness) always sees the FTL in a consistent post-state: l2p/p2l are
// inverse bijections, valid counts match, and the mapping reflects the
// mutation just applied. Hooks must not mutate the device; they may stop
// the engine (sim.Engine.Stop) to model a crash at the boundary.
//
// This is the documented contract the GC test hooks lacked: boundaries
// never fire mid-mutation, so injecting at any boundary observes a state
// that CheckConsistent accepts.

// BoundaryKind classifies an FTL op boundary.
type BoundaryKind uint8

// Boundary kinds, in the order a log-structured write's life visits them.
const (
	BoundaryHostWrite BoundaryKind = iota // host write committed (flush completion)
	BoundaryUpdate                        // in-storage update committed
	BoundaryGC                            // GC relocation committed
	BoundaryGCStale                       // relocation completed superseded (no commit)
	BoundaryErase                         // GC victim erased and returned to free pool
	BoundaryTrim                          // logical page invalidated
	BoundaryRetire                        // block permanently retired
)

// String names the boundary kind.
func (k BoundaryKind) String() string {
	switch k {
	case BoundaryHostWrite:
		return "host-write"
	case BoundaryUpdate:
		return "update"
	case BoundaryGC:
		return "gc"
	case BoundaryGCStale:
		return "gc-stale"
	case BoundaryErase:
		return "erase"
	case BoundaryTrim:
		return "trim"
	case BoundaryRetire:
		return "retire"
	}
	return fmt.Sprintf("BoundaryKind(%d)", uint8(k))
}

// Boundary describes one FTL op boundary: its position in the device's
// boundary sequence (1-based, counted only while a hook is installed) and
// the operation that just completed. LPA is -1 for boundaries without a
// single logical page (erase, retire).
type Boundary struct {
	Seq  uint64
	Kind BoundaryKind
	LPA  int64
}

// SetBoundaryHook installs (or, with nil, removes) the op-boundary
// observer. See the contract at the top of this file.
func (d *Device) SetBoundaryHook(fn func(Boundary)) { d.boundaryHook = fn }

// boundary fires the op-boundary hook. The nil check is the entire cost
// when no harness is attached.
func (d *Device) boundary(kind BoundaryKind, lpa int64) {
	if d.boundaryHook == nil {
		return
	}
	d.boundarySeq++
	d.boundaryHook(Boundary{Seq: d.boundarySeq, Kind: kind, LPA: lpa})
}

// DirtyPages returns the number of cache-resident logical pages whose
// freshest copy has not reached NAND — exactly the data a power loss
// destroys with DRAM.
func (d *Device) DirtyPages() int { return len(d.dirty) }

// MappedPages returns the number of logical pages currently mapped.
func (d *Device) MappedPages() int64 { return d.ftl.MappedPages() }

// NthMappedLPA returns the k-th (mod count) mapped logical page; ok is
// false when nothing is mapped.
func (d *Device) NthMappedLPA(k int64) (int64, bool) { return d.ftl.NthMappedLPA(k) }

// MappedPagesOnDie returns the valid pages resident on one die — the data
// at stake if that die fails.
func (d *Device) MappedPagesOnDie(ch, die int) int64 { return d.ftl.ValidPagesOnDie(ch, die) }

// ScrubRead performs an internal array read of lpa purely to probe media
// health (patrol scrub): it exercises read-retry recovery and the block-
// retirement tracker without counting as host or update traffic. Scrubbing
// an unmapped page is a no-op — it may have been trimmed since the scrub
// was scheduled.
func (d *Device) ScrubRead(lpa int64, done func()) {
	ppa, ok := d.ftl.Lookup(lpa)
	if !ok {
		if done != nil {
			done()
		}
		return
	}
	d.opStart()
	d.scrubReads++
	d.arrayReadRecovered(lpa, ppa, func() {
		d.opDone()
		if done != nil {
			done()
		}
	})
}

// retireBlock takes a worn-out block out of service: relocate its valid
// pages within the plane, then mark it retired — never erased or reused.
// Only blocks currently in the full list can be pulled; a block that is
// free, open, or claimed by GC keeps serving until it next fills (the
// retirement tracker's verdict is absorbing, so the next read of the
// refilled block retires it then).
func (d *Device) retireBlock(plane, block int) {
	if !d.ftl.TakeBlock(plane, block) {
		return
	}
	d.opStart()
	lpas := d.ftl.ValidLPAs(plane, block)
	d.relocate(plane, block, lpas, 0, func() {
		d.ftl.RetireBlock(plane, block)
		d.boundary(BoundaryRetire, -1)
		d.drainPending(plane)
		d.opDone()
	})
}

// RecoveryInfo summarizes what a crash-recovery rebuild found.
type RecoveryInfo struct {
	MappedPages int64 // logical pages recovered from the durable map
	TornPages   int64 // programs in flight at the crash (programmed, never mapped)
	LostDirty   int   // cache-resident dirty pages lost with DRAM
	LostPages   int64 // mapped pages dropped because their die failed
	Blocks      int   // physical blocks scanned
}

// Recover rebuilds a device after a crash (power loss): fresh controller
// state on a fresh engine, the crashed device's durable media state
// restored block by block, and the logical map replayed from the L2P that
// had committed by the crash — the model's equivalent of an OOB scan.
//
// Torn-write semantics: mappings commit at program completion, so every
// recovered mapping must point below its block's write pointer
// (mapped ⊆ programmed); a violation is returned as an error, not
// repaired. Programs in flight at the crash are unmapped garbage.
// Partially written blocks are sealed as full rather than resumed —
// replay never continues a write frontier mid-block.
func Recover(eng *sim.Engine, crashed *Device) (*Device, *RecoveryInfo, error) {
	return recoverInto(eng, crashed, -1, -1)
}

// RecoverAfterDieFailure rebuilds a crashed device with die (failCh,
// failDie) gone: its mappings are dropped (RecoveryInfo.LostPages — they
// must be restored from a checkpoint), its blocks are retired, and the
// fresh die is marked failed so any stray operation panics.
func RecoverAfterDieFailure(eng *sim.Engine, crashed *Device, failCh, failDie int) (*Device, *RecoveryInfo, error) {
	geo := crashed.geo
	if failCh < 0 || failCh >= geo.Channels || failDie < 0 || failDie >= geo.DiesPerChannel {
		return nil, nil, fmt.Errorf("ssd: recover: die %d/%d outside geometry", failCh, failDie)
	}
	return recoverInto(eng, crashed, failCh, failDie)
}

func recoverInto(eng *sim.Engine, crashed *Device, failCh, failDie int) (*Device, *RecoveryInfo, error) {
	d := NewDevice(eng, crashed.cfg)
	d.planeFor = crashed.planeFor
	geo := d.geo
	info := &RecoveryInfo{
		LostDirty: len(crashed.dirty),
		Blocks:    geo.BlocksTotal(),
	}
	dieFailed := func(ch, die int) bool { return ch == failCh && die == failDie }

	// 1. Restore the durable media state: per-block write pointers and P/E
	// counts survive power loss; controller RAM does not.
	for ch := 0; ch < geo.Channels; ch++ {
		for die := 0; die < geo.DiesPerChannel; die++ {
			src, dst := crashed.Die(ch, die), d.Die(ch, die)
			for pl := 0; pl < geo.PlanesPerDie; pl++ {
				for b := 0; b < geo.BlocksPerPlane; b++ {
					dst.RestoreBlock(pl, b, src.WritePtr(pl, b), src.EraseCount(pl, b))
				}
			}
		}
	}

	// 2. Replay the logical map that had committed by the crash, checking
	// mapped ⊆ programmed. In-flight (torn) programs are visible as the
	// crashed FTL's nonzero in-flight counters: physically programmed,
	// never mapped, reclaimed as garbage by future GC.
	var err error
	crashed.ftl.l2p.forEach(func(lpa, lin int64) {
		if err != nil {
			return
		}
		ppa := geo.FromLinear(lin)
		if dieFailed(ppa.Channel, ppa.Die) {
			info.LostPages++
			return
		}
		if wp := d.Die(ppa.Channel, ppa.Die).WritePtr(ppa.Plane, ppa.Block); ppa.Page >= wp {
			err = fmt.Errorf("ssd: recover: lpa %d maps to %v beyond write pointer %d (mapped page never programmed)",
				lpa, ppa, wp)
			return
		}
		d.ftl.restoreMapping(lpa, ppa)
		info.MappedPages++
	})
	if err != nil {
		return nil, nil, err
	}
	for _, n := range crashed.ftl.inflight {
		info.TornPages += int64(n)
	}

	// 3. Rebuild the allocation lists from the physical write pointers:
	// untouched blocks are free, anything written is sealed full. Retired
	// blocks stay retired; a failed die's blocks are all retired.
	for p := 0; p < geo.Planes(); p++ {
		ch, die, pl := geo.PlaneLoc(p)
		srcDie := crashed.Die(ch, die)
		pa := &d.ftl.planes[p]
		pa.free = pa.free[:0]
		pa.full = pa.full[:0]
		pa.open[HotStream], pa.open[ColdStream] = -1, -1
		base := p * geo.BlocksPerPlane
		for b := 0; b < geo.BlocksPerPlane; b++ {
			g := base + b
			d.ftl.erases[g] = int32(srcDie.EraseCount(pl, b))
			if crashed.ftl.retired[g] || dieFailed(ch, die) {
				d.ftl.retired[g] = true
				d.ftl.retiredCount++
				continue
			}
			if srcDie.WritePtr(pl, b) == 0 {
				pa.free = append(pa.free, int32(b))
			} else {
				pa.full = append(pa.full, int32(b))
			}
		}
	}
	if failCh >= 0 {
		d.Die(failCh, failDie).Fail()
	}

	// 4. Carry the lifetime WAF tallies across the crash so endurance
	// accounting spans recoveries.
	d.ftl.hostProgrammed = crashed.ftl.hostProgrammed
	d.ftl.gcProgrammed = crashed.ftl.gcProgrammed

	if cErr := d.ftl.CheckConsistent(); cErr != nil {
		return nil, nil, fmt.Errorf("ssd: recover: rebuilt FTL inconsistent: %w", cErr)
	}
	return d, info, nil
}
