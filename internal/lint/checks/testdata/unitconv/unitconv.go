// Package unitconv exercises the unitconv analyzer: raw scale-factor
// literals applied to runtime values are flagged; constant definitions,
// named constants and non-scale factors are not.
package unitconv

// The PR 1 buskbps regression, re-created: a bus bandwidth in MB/s
// divided by a bare 1000 to "make it GB/s". This exact shape must flag.
func busGBps(busMBps float64) float64 {
	return busMBps / 1000 // want `raw unit-conversion literal 1e3`
}

func conversions(x float64, n int64) float64 {
	a := x * 1000          // want `raw unit-conversion literal 1e3`
	b := x / 1e9           // want `raw unit-conversion literal 1e9`
	c := x * 1e6           // want `raw unit-conversion literal 1e6`
	d := float64(n) / 1024 // want `raw unit-conversion literal 1024`
	e := x * (1 << 20)     // want `raw unit-conversion literal 1024²`
	f := 1e12 / x          // want `raw unit-conversion literal 1e12`
	g := x * 1e-12         // want `raw unit-conversion literal 1e-12`
	return a + b + c + d + e + f + g
}

const bufferPages = 4 * 1024 // fully constant: a definition, not a conversion

const nsPerSec = 1e9

func namedConstantIsFine(x float64) float64 {
	return x * nsPerSec // naming the factor is a sanctioned fix
}

func ordinaryArithmeticIsFine(x float64, n int) float64 {
	doubled := x * 2
	percent := x * 100
	perLane := x / float64(n)
	return doubled + percent + perLane
}

func allowed(x float64) float64 {
	//simlint:allow unitconv display-only rounding, audited
	return x / 1e6
}

func constantFold() int64 {
	return 16 * 1024 // both operands literal: whole expression constant
}
