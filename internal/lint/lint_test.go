package lint_test

import (
	"fmt"
	"go/ast"
	"go/token"
	"sync"
	"testing"

	"repro/internal/lint"
)

// TestMatchesFuncNameParallel is the regression test for the unguarded
// funcNameRE cache map: linttest drives analyzers from parallel tests,
// and concurrent first-misses on the same pattern map used to be a data
// race (caught by this test under -race, tier 2). The globalstate
// analyzer now flags exactly this shape of package-level mutable state.
func TestMatchesFuncNameParallel(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				pattern := fmt.Sprintf("^helper%d", (g+j)%13)
				lint.MatchesFuncName(pattern, "helperName")
			}
		}(g)
	}
	wg.Wait()
}

func directiveGroup(lines ...string) *ast.CommentGroup {
	cg := &ast.CommentGroup{}
	for _, l := range lines {
		cg.List = append(cg.List, &ast.Comment{Slash: token.Pos(1), Text: l})
	}
	return cg
}

// TestHasDirective pins the full-word rule: a directive must not match a
// longer directive that shares its prefix, and trailing commentary after
// whitespace is fine.
func TestHasDirective(t *testing.T) {
	cases := []struct {
		lines []string
		want  bool
	}{
		{[]string{"// Step fires events.", "//simlint:hotpath"}, true},
		{[]string{"//simlint:hotpath because benchmarks pin it"}, true},
		{[]string{"//simlint:hotpathx"}, false},
		{[]string{"// simlint:hotpath"}, false}, // directives take no space after //
		{[]string{"// plain doc comment"}, false},
	}
	for _, c := range cases {
		got := lint.HasDirective(directiveGroup(c.lines...), lint.HotPathDirective)
		if got != c.want {
			t.Errorf("HasDirective(%q) = %v, want %v", c.lines, got, c.want)
		}
	}
	if lint.HasDirective(nil, lint.HotPathDirective) {
		t.Errorf("HasDirective(nil) must be false")
	}
}
