package invariant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/optim"
	"repro/internal/sim"
	"repro/internal/units"
)

// simulated lists the systems that run the discrete-event pipeline (and
// therefore carry window-level counters); GPUResident is analytic.
var simulated = []string{OptimStore, HostOffload, Interleaved, CtrlISP}

// scaled extrapolates a window-level byte count to the full step exactly
// the way the systems' report code does, so conservation comparisons are
// bit-identical rather than tolerance-based.
func scaled(window int64, scale float64) int64 {
	return int64(float64(window) * scale)
}

func init() {
	Register(Property{Name: "report-sane", Check: checkReportSane})
	Register(Property{Name: "pcie-conservation", Check: checkPCIeConservation})
	Register(Property{Name: "bus-conservation", Systems: simulated, Check: checkBusConservation})
	Register(Property{Name: "nand-accounting", Systems: simulated, Check: checkNANDAccounting})
	Register(Property{Name: "roofline-sandwich", Check: checkRooflineSandwich})
	Register(Property{Name: "footprint-rounding", Check: checkFootprintRounding})
}

// checkReportSane enforces the structural facts every report must satisfy
// regardless of system: positive step times, utilisations that are
// fractions, write amplification of at least one, non-negative traffic.
func checkReportSane(system string, cfg core.Config, r *core.Report) error {
	if !r.Feasible {
		if system != GPUResident {
			return fmt.Errorf("only gpuresident may be infeasible, got infeasible %s", system)
		}
		if r.Notes == "" {
			return fmt.Errorf("infeasible report carries no explanatory note")
		}
		return nil
	}
	if r.OptStepTime <= 0 {
		return fmt.Errorf("OptStepTime %v not positive", r.OptStepTime)
	}
	if r.StepTime < r.FwdBwdTime {
		return fmt.Errorf("StepTime %v below FwdBwdTime %v", r.StepTime, r.FwdBwdTime)
	}
	if r.TokensPerSec <= 0 {
		return fmt.Errorf("TokensPerSec %v not positive", r.TokensPerSec)
	}
	if r.WAF < 1 {
		return fmt.Errorf("WAF %v below 1", r.WAF)
	}
	const utilEps = 1e-9
	for _, u := range []struct {
		name string
		v    float64
	}{{"LinkUtil", r.LinkUtil}, {"BusUtil", r.BusUtil}, {"ODPUtil", r.ODPUtil}, {"GPUUtil", r.GPUUtil}} {
		if u.v < 0 || u.v > 1+utilEps {
			return fmt.Errorf("%s %v outside [0,1]", u.name, u.v)
		}
	}
	for _, b := range []struct {
		name string
		v    int64
	}{
		{"PCIeBytes", r.PCIeBytes}, {"BusBytes", r.BusBytes},
		{"NANDReadBytes", r.NANDReadBytes}, {"NANDProgramBytes", r.NANDProgramBytes},
		{"DRAMBytes", r.DRAMBytes}, {"HBMBytes", r.HBMBytes},
	} {
		if b.v < 0 {
			return fmt.Errorf("%s %d negative", b.name, b.v)
		}
	}
	if r.SimUnits < 1 || r.SimUnits > r.TotalUnits {
		return fmt.Errorf("SimUnits %d outside [1, TotalUnits=%d]", r.SimUnits, r.TotalUnits)
	}
	return nil
}

// checkPCIeConservation audits the simulated window's external-link byte
// counters against the per-unit accounting: every byte a system claims to
// move per unit must have actually crossed the link model, and nothing
// else. The expectations are exact — the systems issue fixed-size
// transfers — so any drift means dropped or double-counted traffic.
func checkPCIeConservation(system string, cfg core.Config, r *core.Report) error {
	if !r.Feasible {
		return nil
	}
	simUnits := cfg.SimUnits()
	var wantTo, wantFrom int64
	switch system {
	case OptimStore, CtrlISP:
		// Gradients stream in, working-precision weights stream out.
		wantTo = simUnits * cfg.GradBytesPerUnit()
		wantFrom = simUnits * cfg.WeightOutBytesPerUnit()
	case HostOffload, Interleaved:
		// The full resident state crosses in both directions (Interleaved
		// moves it in subgroup streams, HostOffload in chunked DMAs — the
		// bytes are identical).
		wantTo = simUnits * cfg.ResidentBytesPerUnit()
		wantFrom = simUnits * cfg.ResidentBytesPerUnit()
	case GPUResident:
		// No external traffic at all.
		wantTo, wantFrom = 0, 0
	default:
		return nil
	}
	if r.SimPCIeToDevBytes != wantTo {
		return fmt.Errorf("to-device window bytes %d, accounting expects %d",
			r.SimPCIeToDevBytes, wantTo)
	}
	if r.SimPCIeFromDevBytes != wantFrom {
		return fmt.Errorf("from-device window bytes %d, accounting expects %d",
			r.SimPCIeFromDevBytes, wantFrom)
	}
	return nil
}

// checkBusConservation audits the channel-bus traffic a system reports
// against what its pipeline must move. GC relocations are in-plane
// copyback and host cache hits cannot occur inside the measurement window
// (every page is read before it is rewritten), so the expectations are
// exact for layouts without cross-die hops; layouts that scatter a unit's
// pages add remote transfers on top, making the figure a lower bound.
func checkBusConservation(system string, cfg core.Config, r *core.Report) error {
	simUnits := cfg.SimUnits()
	comps := int64(cfg.Comps())
	pageSize := int64(cfg.SSD.Nand.PageSize)
	scale := cfg.ScaleFactor()

	var window int64
	exact := true
	switch system {
	case OptimStore:
		// Gradient to the home die, working weights back out.
		window = simUnits * (cfg.GradBytesPerUnit() + cfg.WeightOutBytesPerUnit())
		if optim.KernelFor(cfg.Optimizer).ReadPasses > 1 {
			// LAMB's trust-ratio reduction bounces 64 B each way per unit.
			window += simUnits * 128
		}
		// Non-colocated layouts bounce mis-placed pages over the bus too.
		exact = cfg.Layout == layout.Colocated
	case HostOffload, Interleaved, CtrlISP:
		// Every resident page crosses the bus out of its die and back,
		// wherever the layout put it. (Gradients and output weights move
		// between controller and PCIe without touching the channel bus.)
		window = simUnits * comps * pageSize * 2
	default:
		return nil
	}
	want := scaled(window, scale)
	if exact && r.BusBytes != want {
		return fmt.Errorf("BusBytes %d, conservation expects exactly %d (window %d × scale %.6g)",
			r.BusBytes, want, window, scale)
	}
	if !exact && r.BusBytes < want {
		return fmt.Errorf("BusBytes %d below conservation floor %d", r.BusBytes, want)
	}
	return nil
}

// checkNANDAccounting verifies the media moved at least the pages the
// update semantics require: every resident page read once per kernel pass
// and programmed once per step. GC relocation adds reads and programs on
// top (hence lower bounds), and the FTL's write amplification must never
// fall below one.
func checkNANDAccounting(system string, cfg core.Config, r *core.Report) error {
	simUnits := cfg.SimUnits()
	comps := int64(cfg.Comps())
	pageSize := int64(cfg.SSD.Nand.PageSize)
	scale := cfg.ScaleFactor()

	passes := int64(1)
	if system == OptimStore {
		passes = int64(optim.KernelFor(cfg.Optimizer).ReadPasses)
	}
	wantReads := scaled(simUnits*comps*pageSize*passes, scale)
	wantPrograms := scaled(simUnits*comps*pageSize, scale)
	if r.NANDReadBytes < wantReads {
		return fmt.Errorf("NANDReadBytes %d below the %d the update semantics require",
			r.NANDReadBytes, wantReads)
	}
	if r.NANDProgramBytes < wantPrograms {
		return fmt.Errorf("NANDProgramBytes %d below the %d the update semantics require",
			r.NANDProgramBytes, wantPrograms)
	}
	return nil
}

// sandwichK is the per-system upper-bound factor of the roofline sandwich:
// simulated step time must stay within K× the analytic floor (plus window
// ramp slack, see rampSlack). The constants are pinned empirically over the
// Configs sweep; a system drifting past its K means an accidental
// serialization crept into its pipeline.
// Empirically the worst sim/floor ratio over the 200-config Colocated
// sweep is ≈2.1 for each simulated system, so 2.5 leaves ~20% headroom
// before a drift trips the bound.
var sandwichK = map[string]float64{
	OptimStore:  2.5,
	HostOffload: 2.5,
	Interleaved: 2.5,
	CtrlISP:     2.5,
	GPUResident: 1.0005,
}

// rampSlack is the absolute slack allowed on top of K·floor: the pipeline
// fill/drain transient of the simulated window, extrapolated by the same
// scale factor as the measurement itself. It covers a few pipeline depths
// of per-unit latency (array read + program + bus and link setup), which
// the steady-state floor deliberately excludes.
func rampSlack(cfg core.Config) sim.Time {
	perUnit := float64(cfg.SSD.Nand.ReadLatency+cfg.SSD.Nand.ProgramLatency) * float64(cfg.Comps())
	perUnit += float64(cfg.Link.Latency) + float64(cfg.SSD.CmdLatency)
	const depth = 8.0
	return units.Nanos(perUnit * depth * cfg.ScaleFactor())
}

// checkRooflineSandwich enforces floor ≤ simulated ≤ K·floor + ramp: a
// simulated step below the analytic floor means the simulator dropped
// work; one far above it means an accidental serialization. Skipped under
// LayerwiseOverlap, where OptStepTime is redefined as the exposed (not
// total) optimizer cost.
func checkRooflineSandwich(system string, cfg core.Config, r *core.Report) error {
	if !r.Feasible || cfg.LayerwiseOverlap {
		return nil
	}
	if system != GPUResident && cfg.Layout != layout.Colocated {
		// The floor assumes pages spread evenly over all planes (and, for
		// optimstore, no cross-die page bouncing). The ablation layouts
		// exist precisely to measure the cost of breaking that assumption
		// — their placement loss is real, not a simulator bug.
		return nil
	}
	rf, ok := core.RooflineFor(system, cfg)
	if !ok {
		return fmt.Errorf("no roofline model for system %q", system)
	}
	floor := rf.Floor()
	simT := r.OptStepTime
	// Lower bound, with a hair of tolerance for the per-chunk integer
	// rounding the simulation accumulates and the floor does not.
	if float64(simT) < float64(floor)*0.999-1000 {
		return fmt.Errorf("simulated %v below analytic floor %v (binding: %s)",
			simT, floor, rf.Binding())
	}
	k, okK := sandwichK[system]
	if !okK {
		return fmt.Errorf("no sandwich constant pinned for system %q", system)
	}
	upper := floor.Scale(k) + rampSlack(cfg)
	if simT > upper {
		return fmt.Errorf("simulated %v exceeds %.3g× analytic floor %v + ramp slack (limit %v, binding: %s)",
			simT, k, floor, upper, rf.Binding())
	}
	return nil
}

// checkFootprintRounding pins the direction of the gap between the two
// state-footprint accountings: the byte-exact analytic figure (parameters
// × per-parameter resident bytes, including fractional quantization-scale
// overhead) must never exceed the page-rounded figure the simulation
// stores (Comps whole NAND pages per unit). The rounding is intentional —
// a page is the smallest unit the media can read or program — but the gap
// silently inverting would mean the analytic accounting (endurance,
// checkpoint sizing, BoundFor) started overstating the simulated device.
func checkFootprintRounding(_ string, cfg core.Config, _ *core.Report) error {
	analytic := float64(cfg.ElemsPerPage()) * cfg.Spec().ResidentBytes()
	rounded := float64(cfg.ResidentBytesPerUnit())
	if analytic > rounded {
		return fmt.Errorf("analytic per-unit footprint %.2f B exceeds page-rounded %d B (%d pages)",
			analytic, cfg.ResidentBytesPerUnit(), cfg.Comps())
	}
	return nil
}
