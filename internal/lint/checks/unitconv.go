package checks

import (
	"go/ast"
	"go/constant"
	"go/token"

	"repro/internal/lint"
)

// UnitConv flags raw numeric-literal multiplies/divides that smell like
// unit conversions — ×1000, ÷1e9, ×1024 and friends — outside the typed
// internal/units layer. PR 1's `buskbps` bug (MB/s values labelled kb/s)
// is exactly this class of mistake: a bare scale factor with the unit
// arithmetic living only in a comment, if anywhere. The rule: name the
// conversion (internal/units type or constant) or annotate why not.
var UnitConv = &lint.Analyzer{
	Name: "unitconv",
	Doc: "flags raw scale-factor literals (*1000, /1e9, *1024, …) converting " +
		"between size/bandwidth/time units; route conversions through " +
		"internal/units or a named constant",
	Run: runUnitConv,
}

// scaleFactors are the literal values that convert between the unit
// systems this codebase juggles: decimal SI steps (kilo…pico) and the
// binary capacity steps. Plain counts like *2, *100 or /8 pass.
var scaleFactors = map[float64]string{
	1e3:                "1e3",
	1e6:                "1e6",
	1e9:                "1e9",
	1e12:               "1e12",
	1e-3:               "1e-3",
	1e-6:               "1e-6",
	1e-9:               "1e-9",
	1e-12:              "1e-12",
	1024:               "1024",
	1024 * 1024:        "1024²",
	1024 * 1024 * 1024: "1024³",
}

func runUnitConv(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.MUL && be.Op != token.QUO) {
				return true
			}
			// A fully constant expression is a definition (e.g. a sized
			// buffer, a named constant being built), not a conversion of
			// a runtime measurement.
			if tv, ok := pass.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			for _, operand := range []ast.Expr{be.X, be.Y} {
				if name, ok := scaleLiteral(pass, operand); ok {
					pass.Reportf(operand.Pos(), "unitconv",
						"raw unit-conversion literal %s in %s expression; use internal/units (typed Bytes/MBps/GBps or a named constant)",
						name, be.Op)
				}
			}
			return true
		})
	}
	return nil
}

// scaleLiteral reports whether e is written as a literal (possibly a
// parenthesised literal or a shift/product of literals, like 1<<20) whose
// constant value is one of the suspicious scale factors.
func scaleLiteral(pass *lint.Pass, e ast.Expr) (string, bool) {
	if !literalSyntax(e) {
		return "", false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	val, ok := constant.Val(constant.ToFloat(tv.Value)).(float64)
	if !ok {
		// Exact rationals (big values) come back as *big.Rat/*big.Float;
		// approximate via Float64Val.
		val, _ = constant.Float64Val(constant.ToFloat(tv.Value))
	}
	name, found := scaleFactors[val]
	return name, found
}

// literalSyntax reports whether e is built purely from numeric literals:
// 1000, 1e9, (1024), 1<<20, 1024*1024. Named constants deliberately pass —
// giving the factor a name is one sanctioned fix.
func literalSyntax(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT || e.Kind == token.FLOAT
	case *ast.BinaryExpr:
		return literalSyntax(e.X) && literalSyntax(e.Y)
	}
	return false
}
