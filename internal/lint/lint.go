// Package lint is a minimal go/analysis-style static-analysis framework
// built on the standard library's go/ast and go/types. It exists because
// this repository vendors no third-party modules: the x/tools analysis
// machinery is re-derived here at the scale the simulator needs — typed
// packages, per-analyzer diagnostics, `//simlint:allow` suppression, and
// an analysistest-style harness (see the linttest subpackage).
//
// Two pass kinds exist. An Analyzer inspects one compilation unit at a
// time; a ModuleAnalyzer runs once over every loaded unit, which is what
// lets the flow-aware checks (hot-path allocation reachability, pooled
// handle lifetimes) follow calls across package boundaries. The shipped
// analyzers live in internal/lint/checks; the cmd/simlint multichecker
// wires them over ./... as verify tier 3.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one static check over a single compilation unit.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description, shown by `simlint -help`.
	Doc string
	// Run inspects one typechecked unit and reports findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A ModuleAnalyzer describes one static check that needs the whole module
// in scope at once — interprocedural analyses whose call chains cross
// package boundaries. It runs exactly once per invocation, over every
// loaded unit.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description, shown by `simlint -help`.
	Doc string
	// Run inspects all units and reports findings via pass.Report.
	Run func(pass *ModulePass) error
}

// A ModulePass carries every loaded unit through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	// Units is every loaded compilation unit, in load order. All units
	// share Fset, so positions from any unit compose.
	Units []*Unit
	// Shared is a scratch cache that lives for one RunModuleAnalyzers
	// call and is visible to every module analyzer in it — expensive
	// derived structures (the whole-module call graph) are built once by
	// the first analyzer that needs them and reused by the rest.
	Shared map[string]any

	diags *[]Diagnostic
}

// Report records a finding under the given category.
func (p *ModulePass) Report(pos token.Pos, category, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  message,
	})
}

// Reportf is Report with formatting.
func (p *ModulePass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(pos, category, fmt.Sprintf(format, args...))
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Category is the sub-check within the analyzer (e.g. the
	// nondeterminism analyzer reports wallclock, globalrand and maporder
	// categories). Allow directives match either the category or the
	// analyzer name.
	Category string
	Message  string
}

// A Pass carries one typechecked compilation unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the unit's syntax. For a package with in-package tests it
	// includes the _test.go files; external (package foo_test) files form
	// their own unit.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// ImportPath is the unit's import path ("repro/internal/core",
	// "repro/internal/core [xtest]" for external test units).
	ImportPath string

	diags *[]Diagnostic
}

// Report records a finding under the given category.
func (p *Pass) Report(pos token.Pos, category, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  message,
	})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(pos, category, fmt.Sprintf(format, args...))
}

// AllowDirective is the magic comment that suppresses findings:
//
//	//simlint:allow <name>[,<name>...] [reason...]
//
// where each <name> is an analyzer name, a category, or "all". The
// directive applies to diagnostics on its own line and on the line
// immediately below it — so it can sit at the end of the offending line
// or on its own comment line directly above it. A reason after the names
// is encouraged and ignored by the tool.
//
// A directive that suppresses nothing is itself reported (category
// unusedallow), so stale suppressions cannot accumulate as the code
// under them changes.
const AllowDirective = "simlint:allow"

// Annotation directives recognized on declarations. Unlike AllowDirective
// they are contracts, not suppressions: they opt a declaration into an
// analyzer's rules.
//
//	//simlint:hotpath  (func) — the function and everything it reaches
//	                   through the call graph must not allocate (hotalloc)
//	//simlint:pooled   (type) — values of this type recycle through a
//	                   freelist; the handle contract applies (poolsafe)
//	//simlint:release  (func) — calling this returns its pooled argument
//	                   (or receiver) to the freelist; the handle dies here
const (
	HotPathDirective = "simlint:hotpath"
	PooledDirective  = "simlint:pooled"
	ReleaseDirective = "simlint:release"
)

// HasDirective reports whether the comment group carries the given
// directive (comparing the full word: "simlint:hotpath" does not match
// "simlint:hotpathx").
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+directive)
		if ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
			return true
		}
	}
	return false
}

// allowKey identifies one suppressed (file line, check name) pair.
type allowKey struct {
	file string
	line int
	name string
}

// allowDirective is one parsed name of one allow comment, tracked so
// directives that suppress nothing can be reported as stale.
type allowDirective struct {
	pos  token.Pos
	name string
	used bool
}

// allowSet indexes every allow directive in a unit.
type allowSet struct {
	index map[allowKey][]*allowDirective
	list  []*allowDirective
}

// collectAllows scans the unit's comments for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	allows := &allowSet{index: map[allowKey][]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(strings.TrimSpace(text))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					d := &allowDirective{pos: c.Pos(), name: name}
					allows.list = append(allows.list, d)
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := allowKey{pos.Filename, line, name}
						allows.index[k] = append(allows.index[k], d)
					}
				}
			}
		}
	}
	return allows
}

// suppressed reports whether d is covered by an allow directive, marking
// any covering directives as used.
func (a *allowSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	ok := false
	for _, name := range []string{d.Category, d.Analyzer, "all"} {
		for _, dir := range a.index[allowKey{pos.Filename, pos.Line, name}] {
			dir.used = true
			ok = true
		}
	}
	return ok
}

// unused returns a diagnostic for each directive that suppressed nothing:
// a stale allow hides future regressions at its line, so it must go.
func (a *allowSet) unused() []Diagnostic {
	var diags []Diagnostic
	for _, d := range a.list {
		if !d.used {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "simlint",
				Category: "unusedallow",
				Message: fmt.Sprintf("//%s %s suppresses nothing here; remove the stale directive",
					AllowDirective, d.name),
			})
		}
	}
	return diags
}

// RunUnitAnalyzers applies each per-unit analyzer to the unit and returns
// the raw diagnostics, before any //simlint:allow suppression. Drivers
// that also run module analyzers collect raw diagnostics from every
// source first and apply Suppress once, so a directive's usage (and
// staleness) is judged against all findings that could hit its line.
func RunUnitAnalyzers(unit *Unit, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       unit.Fset,
			Files:      unit.Files,
			Pkg:        unit.Pkg,
			Info:       unit.Info,
			ImportPath: unit.ImportPath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, unit.ImportPath, err)
		}
	}
	return diags, nil
}

// RunModuleAnalyzers applies each module analyzer once over all units and
// returns the raw diagnostics, before suppression. The units must share
// one FileSet (which the Loader guarantees).
func RunModuleAnalyzers(units []*Unit, analyzers ...*ModuleAnalyzer) ([]Diagnostic, error) {
	if len(units) == 0 {
		return nil, nil
	}
	var diags []Diagnostic
	shared := map[string]any{}
	for _, a := range analyzers {
		pass := &ModulePass{
			Analyzer: a,
			Fset:     units[0].Fset,
			Units:    units,
			Shared:   shared,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// Suppress filters diags through every //simlint:allow directive found in
// the units' files, appends a stale-directive (unusedallow) diagnostic for
// each directive that suppressed nothing, and returns the survivors in
// position order. It must see all diagnostics of a run at once: a
// directive used only by a module analyzer would otherwise be reported
// stale by the per-unit pass that cannot see the module finding.
func Suppress(units []*Unit, diags []Diagnostic) []Diagnostic {
	if len(units) == 0 {
		return diags
	}
	fset := units[0].Fset
	var files []*ast.File
	for _, u := range units {
		files = append(files, u.Files...)
	}
	allows := collectAllows(fset, files)
	var kept []Diagnostic
	for _, d := range diags {
		if !allows.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, allows.unused()...)
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept
}

// RunAnalyzers applies each analyzer to the unit and returns the surviving
// (non-suppressed) diagnostics in position order. It is the single-unit
// convenience wrapper over RunUnitAnalyzers + Suppress.
func RunAnalyzers(unit *Unit, analyzers ...*Analyzer) ([]Diagnostic, error) {
	diags, err := RunUnitAnalyzers(unit, analyzers...)
	if err != nil {
		return nil, err
	}
	return Suppress([]*Unit{unit}, diags), nil
}

// funcNameRE caches compiled helper-exemption patterns. The mutex matters:
// linttest runs analyzers from parallel tests, and an unguarded map write
// here is exactly the shared-mutable-global hazard the globalstate
// analyzer exists to flag.
var funcNameREMu sync.Mutex

var funcNameRE = map[string]*regexp.Regexp{}

// MatchesFuncName reports whether name matches the cached pattern.
func MatchesFuncName(pattern, name string) bool {
	funcNameREMu.Lock()
	re, ok := funcNameRE[pattern]
	if !ok {
		re = regexp.MustCompile(pattern)
		//simlint:allow globalstate idempotent regexp cache, guarded by funcNameREMu
		funcNameRE[pattern] = re
	}
	funcNameREMu.Unlock()
	return re.MatchString(name)
}
