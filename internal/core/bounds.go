package core

import (
	"repro/internal/energy"
	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Bound is the analytic optimistic estimate of one design point, computed
// without running a simulation. Both components are true lower bounds on
// what the simulator can report, machine-guaranteed by the invariant
// registry (internal/invariant):
//
//   - StepFloor is the roofline floor; the roofline-sandwich invariant
//     pins floor ≤ simulated for every system and configuration.
//   - EnergyFloor prices exactly the traffic the conservation invariants
//     (pcie-conservation, bus-conservation, nand-accounting) prove every
//     simulated report must carry, at the same per-byte/per-op costs the
//     systems use. Components the invariants do not floor (GC erase
//     bytes, relocation traffic) enter at zero, and every cost constant
//     is positive, so EnergyFloor ≤ simulated energy.
//
// The autotuner (internal/search) prunes a candidate only when an already
// simulated point beats the candidate's Bound in every objective — since
// the bound is optimistic, the pruned candidate's actual results could
// only have been worse, so pruning never discards a Pareto point.
type Bound struct {
	StepFloor   sim.Time
	EnergyFloor float64 // joules
	Binding     string  // binding roofline constraint, for reports
}

// BoundFor computes the analytic bound of one (system, config) point.
// ok is false for unknown system names.
func BoundFor(system string, cfg Config) (Bound, bool) {
	r, ok := RooflineFor(system, cfg)
	if !ok {
		return Bound{}, false
	}
	return Bound{
		StepFloor:   r.Floor(),
		EnergyFloor: energyFloor(system, cfg),
		Binding:     r.Binding(),
	}, true
}

// energyFloor prices the mandatory traffic of one step. Every Activity
// component mirrors either the exact analytic assignment the system's
// report() makes (PCIe, DRAM, HBM, compute ops) or the conservation floor
// the invariant registry enforces on the simulated counters (NAND reads/
// programs, channel bus), using the same scaled-window arithmetic, so the
// floor can never exceed what the simulation reports.
func energyFloor(system string, cfg Config) float64 {
	kernel := kernelFor(cfg)
	simUnits := cfg.SimUnits()
	scale := cfg.ScaleFactor()
	totalUnits := cfg.TouchedUnits()
	comps := int64(cfg.Comps())
	pageSize := int64(cfg.SSD.Nand.PageSize)
	gradB := cfg.GradBytesPerUnit()
	woutB := cfg.WeightOutBytesPerUnit()
	residentB := cfg.ResidentBytesPerUnit()
	elems := int64(cfg.ElemsPerPage())
	flops := int64(kernel.FlopsPerElem)

	scaled := func(window int64) float64 {
		return float64(int64(float64(window) * scale))
	}

	var a energy.Activity
	switch system {
	case "optimstore":
		passes := int64(kernel.ReadPasses)
		a.NANDReadBytes = scaled(simUnits * comps * pageSize * passes)
		a.NANDProgramBytes = scaled(simUnits * comps * pageSize)
		// Scattered layouts add cross-die hops on top; the colocated
		// window is the proven floor for every layout.
		busWindow := simUnits * (gradB + woutB)
		if kernel.ReadPasses > 1 {
			busWindow += simUnits * 128 // trust-ratio reduction round trip
		}
		a.BusBytes = scaled(busWindow)
		a.PCIeBytes = float64((gradB + woutB) * totalUnits)
		a.DRAMBytes = float64((gradB + woutB) * totalUnits)
		a.ODPOps = float64(simUnits*elems*flops) * scale
	case "hostoffload":
		a.NANDReadBytes = scaled(simUnits * comps * pageSize)
		a.NANDProgramBytes = scaled(simUnits * comps * pageSize)
		a.BusBytes = scaled(simUnits * comps * pageSize * 2)
		a.PCIeBytes = float64(2 * residentB * totalUnits)
		a.DRAMBytes = float64(2 * residentB * totalUnits)
		a.HBMBytes = float64((2*residentB + gradB + woutB) * totalUnits)
		a.GPUOps = float64(totalUnits) * float64(elems) * float64(flops)
	case "interleaved":
		a.NANDReadBytes = scaled(simUnits * comps * pageSize)
		a.NANDProgramBytes = scaled(simUnits * comps * pageSize)
		a.BusBytes = scaled(simUnits * comps * pageSize * 2)
		a.PCIeBytes = float64(2 * residentB * totalUnits)
		a.DRAMBytes = float64((2*residentB + gradB + woutB) * totalUnits)
		a.CPUOps = float64(totalUnits) * float64(elems) * float64(flops)
	case "ctrlisp":
		a.NANDReadBytes = scaled(simUnits * comps * pageSize)
		a.NANDProgramBytes = scaled(simUnits * comps * pageSize)
		a.BusBytes = scaled(simUnits * comps * pageSize * 2)
		a.PCIeBytes = float64((gradB + woutB) * totalUnits)
		a.DRAMBytes = float64((2*residentB + gradB + woutB) * totalUnits)
		a.CPUOps = float64(totalUnits) * float64(elems) * float64(flops)
	case "gpuresident":
		spec := cfg.Spec()
		touched := float64(cfg.Model.Params) * cfg.Model.UpdateFraction()
		a.HBMBytes = touched * (2*spec.ResidentBytes() + float64(spec.GradBytes+spec.WeightOutBytes))
		a.GPUOps = touched * float64(flops)
	}
	return energy.DefaultCosts().Evaluate(a).Total()
}

// MeasureUpdateWAF measures the steady-state write-amplification factor
// of the full-sweep update stream on a scaled-down device of the given
// cell type and over-provisioning (see measureUpdateWAF). WAF depends
// only on (cell, overProvision), so the autotuner memoizes it per pair.
func MeasureUpdateWAF(cell nand.CellType, overProvision float64, steps int) (float64, error) {
	return measureUpdateWAF(cell, overProvision, steps)
}

// AnalyticLifetime computes the wear-limited device lifetime of a
// configuration, in optimizer steps, at a given steady-state WAF: the
// state footprint times WAF is programmed each step, spread across the
// full-geometry device's blocks with ideal wear levelling. fits is false
// (and steps zero) when the state does not fit the usable capacity —
// the same capacity test RunEndurance applies.
func AnalyticLifetime(cfg Config, cell nand.CellType, waf float64) (steps float64, fits bool) {
	stateBytes := int64(float64(cfg.Model.Params) * cfg.Spec().ResidentBytes())
	full := nand.ParamsFor(cell)
	geo := ssd.GeometryOf(cfg.SSD.Channels, cfg.SSD.DiesPerChannel, full)
	usable := float64(geo.TotalBytes()) * (1 - cfg.SSD.OverProvision)
	if float64(stateBytes) > usable {
		return 0, false
	}
	wear := nand.DefaultWearModel(cell)
	erasesPerStep := float64(stateBytes) * waf / float64(full.BlockBytes())
	return wear.LifetimeSteps(geo.BlocksTotal(), erasesPerStep), true
}
