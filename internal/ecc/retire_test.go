package ecc

import (
	"testing"
)

// readOp is one observed read: retry count and the verdict it must yield.
type readOp struct {
	block   int
	retries int
	want    BlockHealth
}

// TestRetireBoundaries pins the exact retry counts at which each
// transition happens — the off-by-one surface of the state machine.
func TestRetireBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		policy RetirePolicy
		ops    []readOp
	}{
		{
			name:   "clean reads stay healthy",
			policy: RetirePolicy{RetryBudget: 8, ProbationReads: 4},
			ops: []readOp{
				{0, 0, BlockHealthy},
				{0, 0, BlockHealthy},
			},
		},
		{
			name:   "retirement at exactly the budget",
			policy: RetirePolicy{RetryBudget: 8, ProbationReads: 4},
			ops: []readOp{
				{0, 3, BlockProbation}, // tally 3
				{0, 4, BlockProbation}, // tally 7 — one below budget
				{0, 1, BlockRetired},   // tally 8 == budget
			},
		},
		{
			name:   "single burst at budget retires immediately",
			policy: RetirePolicy{RetryBudget: 4, ProbationReads: 2},
			ops: []readOp{
				{5, 4, BlockRetired},
			},
		},
		{
			name:   "one below budget is probation, not retirement",
			policy: RetirePolicy{RetryBudget: 4, ProbationReads: 2},
			ops: []readOp{
				{5, 3, BlockProbation},
			},
		},
		{
			name:   "probation clears after exactly ProbationReads clean reads",
			policy: RetirePolicy{RetryBudget: 8, ProbationReads: 3},
			ops: []readOp{
				{1, 2, BlockProbation},
				{1, 0, BlockProbation}, // clean 1
				{1, 0, BlockProbation}, // clean 2
				{1, 0, BlockHealthy},   // clean 3 == ProbationReads
			},
		},
		{
			name:   "clearing probation resets the retry tally",
			policy: RetirePolicy{RetryBudget: 4, ProbationReads: 1},
			ops: []readOp{
				{2, 3, BlockProbation}, // tally 3
				{2, 0, BlockHealthy},   // streak complete, tally reset
				{2, 3, BlockProbation}, // tally 3 again — NOT 6, so not retired
				{2, 1, BlockRetired},   // tally 4 == budget
			},
		},
		{
			name:   "a retry interrupts the clean streak",
			policy: RetirePolicy{RetryBudget: 8, ProbationReads: 2},
			ops: []readOp{
				{3, 1, BlockProbation}, // tally 1
				{3, 0, BlockProbation}, // clean 1
				{3, 1, BlockProbation}, // tally 2, streak reset
				{3, 0, BlockProbation}, // clean 1 again
				{3, 0, BlockHealthy},   // clean 2
			},
		},
		{
			name:   "zero ProbationReads never clears",
			policy: RetirePolicy{RetryBudget: 8, ProbationReads: 0},
			ops: []readOp{
				{4, 1, BlockProbation},
				{4, 0, BlockProbation},
				{4, 0, BlockProbation},
			},
		},
		{
			name:   "retired is absorbing",
			policy: RetirePolicy{RetryBudget: 2, ProbationReads: 1},
			ops: []readOp{
				{6, 2, BlockRetired},
				{6, 0, BlockRetired},
				{6, 5, BlockRetired},
			},
		},
		{
			name:   "blocks are tracked independently",
			policy: RetirePolicy{RetryBudget: 2, ProbationReads: 1},
			ops: []readOp{
				{7, 2, BlockRetired},
				{8, 0, BlockHealthy},
				{8, 1, BlockProbation},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewRetireTracker(tc.policy)
			for i, op := range tc.ops {
				if got := tr.OnRead(op.block, op.retries); got != op.want {
					t.Fatalf("op %d (block %d, retries %d): health %v, want %v",
						i, op.block, op.retries, got, op.want)
				}
				if got := tr.Health(op.block); got != tc.ops[i].want {
					t.Fatalf("op %d: Health() %v disagrees with OnRead %v", i, got, op.want)
				}
			}
		})
	}
}

func TestRetirePolicyValidate(t *testing.T) {
	if (RetirePolicy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if !(RetirePolicy{RetryBudget: 1}).Enabled() {
		t.Fatal("budget 1 must enable")
	}
	if err := (RetirePolicy{RetryBudget: -1}).Validate(); err == nil {
		t.Fatal("negative budget must not validate")
	}
	if err := (RetirePolicy{ProbationReads: -1}).Validate(); err == nil {
		t.Fatal("negative probation must not validate")
	}
}

// FuzzRetireTracker drives the state machine with arbitrary read sequences
// against a straight-line reference model, checking every verdict and the
// structural invariants (absorbing retirement, tally below budget while in
// service).
func FuzzRetireTracker(f *testing.F) {
	f.Add(uint8(8), uint8(4), []byte{0x13, 0x14, 0x01, 0x00, 0x29})
	f.Add(uint8(1), uint8(0), []byte{0x01, 0x11, 0x21})
	f.Add(uint8(4), uint8(1), []byte{0x03, 0x00, 0x03, 0x01, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, budget, probation uint8, ops []byte) {
		policy := RetirePolicy{RetryBudget: int(budget), ProbationReads: int(probation)}
		if !policy.Enabled() {
			return
		}
		tr := NewRetireTracker(policy)

		// Reference model: the rules re-stated independently.
		type ref struct {
			retries, clean int
			health         BlockHealth
		}
		model := map[int]*ref{}

		for _, op := range ops {
			// High nibble selects the block, low nibble the retry count —
			// small enough that budgets in [1,255] are reachable by
			// accumulation, while collisions between blocks stay common.
			block, retries := int(op>>4), int(op&0x0f)
			m := model[block]
			if m == nil {
				m = &ref{}
				model[block] = m
			}
			switch {
			case m.health == BlockRetired:
				// absorbing
			case retries > 0:
				m.retries += retries
				m.clean = 0
				if m.retries >= policy.RetryBudget {
					m.health = BlockRetired
				} else {
					m.health = BlockProbation
				}
			case m.health == BlockProbation && policy.ProbationReads > 0:
				m.clean++
				if m.clean >= policy.ProbationReads {
					*m = ref{}
				}
			}

			got := tr.OnRead(block, retries)
			if got != m.health {
				t.Fatalf("block %d after retries %d: health %v, model %v", block, retries, got, m.health)
			}
			if got != BlockRetired && tr.Retries(block) >= policy.RetryBudget {
				t.Fatalf("block %d in service with tally %d >= budget %d",
					block, tr.Retries(block), policy.RetryBudget)
			}
			if m.retries != tr.Retries(block) {
				t.Fatalf("block %d tally %d, model %d", block, tr.Retries(block), m.retries)
			}
		}

		retired := 0
		//simlint:allow maporder pure count — order cannot affect the result
		for _, m := range model {
			if m.health == BlockRetired {
				retired++
			}
		}
		if got := tr.RetiredCount(); got != retired {
			t.Fatalf("RetiredCount %d, model %d", got, retired)
		}
	})
}
