// Package ecc models the error-correction scheme an SSD controller wraps
// around NAND pages: BCH-style codewords correcting up to T bit errors
// each. It turns the raw bit error rates of nand.WearModel into page
// failure probabilities and decode-latency estimates — the quantities that
// decide how far into its wear-out curve a block remains usable, and what
// read-retry recovery costs when it no longer is.
package ecc

import (
	"fmt"
	"math"
)

// Scheme describes one ECC configuration.
type Scheme struct {
	// CodewordBytes is the data payload per codeword (pages hold several).
	CodewordBytes int
	// T is the number of correctable bit errors per codeword.
	T int
	// ParityOverhead is the parity fraction (extra NAND bytes per data
	// byte); BCH parity ≈ T·ceil(log2(n)) bits.
	ParityOverhead float64
}

// BCH returns a BCH-style scheme over the given codeword size and
// correction capability, with the parity overhead implied by the code.
func BCH(codewordBytes, t int) Scheme {
	if codewordBytes <= 0 || t <= 0 {
		panic(fmt.Sprintf("ecc: BCH(%d, %d)", codewordBytes, t))
	}
	bits := float64(codewordBytes * 8)
	m := math.Ceil(math.Log2(bits))
	return Scheme{
		CodewordBytes:  codewordBytes,
		T:              t,
		ParityOverhead: float64(t) * m / bits,
	}
}

// Default returns the mainstream TLC-era configuration: 1 KiB codewords
// correcting 72 bits (~7e-3 RBER ceiling), ~10% parity.
func Default() Scheme { return BCH(1024, 72) }

// Validate reports the first structural problem.
func (s Scheme) Validate() error {
	if s.CodewordBytes <= 0 || s.T <= 0 || s.ParityOverhead < 0 {
		return fmt.Errorf("ecc: scheme %+v", s)
	}
	return nil
}

// bits per codeword.
func (s Scheme) bits() float64 { return float64(s.CodewordBytes * 8) }

// UncorrectableProb returns the probability one codeword has more than T
// bit errors at the given raw bit error rate, using the Poisson
// approximation to the binomial (n is thousands of bits, p tiny).
func (s Scheme) UncorrectableProb(rber float64) float64 {
	if rber <= 0 {
		return 0
	}
	if rber >= 1 {
		return 1
	}
	lambda := rber * s.bits()
	// P[X <= T] for X ~ Poisson(λ), summed in a numerically stable way:
	// term_k = e^{-λ} λ^k / k! built iteratively in log space.
	logTerm := -lambda // k = 0
	cdf := math.Exp(logTerm)
	for k := 1; k <= s.T; k++ {
		logTerm += math.Log(lambda) - math.Log(float64(k))
		cdf += math.Exp(logTerm)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// PageFailProb returns the probability a page read is uncorrectable: any
// of its codewords failing.
func (s Scheme) PageFailProb(pageBytes int, rber float64) float64 {
	if pageBytes <= 0 {
		panic(fmt.Sprintf("ecc: page bytes %d", pageBytes))
	}
	n := float64((pageBytes + s.CodewordBytes - 1) / s.CodewordBytes)
	p := s.UncorrectableProb(rber)
	return 1 - math.Pow(1-p, n)
}

// MaxRBER returns the highest raw bit error rate at which a page of the
// given size still fails with probability at most target — the value
// nand.WearModel should use as its ECC correctability limit.
func (s Scheme) MaxRBER(pageBytes int, target float64) float64 {
	lo, hi := 0.0, 0.5
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if s.PageFailProb(pageBytes, mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// DecodeLatencyNs estimates the decode time per codeword: hard-decision
// BCH decoding is pipelined and cheap until errors approach T, where
// controllers fall back to slower soft passes. The two-regime constant
// model keeps recovery costs honest without an RTL-level decoder.
func (s Scheme) DecodeLatencyNs(errorBits int) float64 {
	const (
		fastNs = 200  // pipelined hard decode
		slowNs = 5000 // soft-decision / retry assist
	)
	if errorBits <= s.T*3/4 {
		return fastNs
	}
	return slowNs
}
