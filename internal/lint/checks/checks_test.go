package checks_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/checks"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over a testdata package (or, for the module
// analyzers and the ported nondeterminism suite, a multi-package
// testdata tree) holding at least one positive (flagged,
// `// want`-annotated) and one negative case, plus an exercised
// //simlint:allow directive.

// TestNondeterminism runs over a two-package tree: the per-unit
// analyzer's behaviour must be identical whether driven by Run or by
// the multi-package RunTree harness.
func TestNondeterminism(t *testing.T) {
	linttest.RunTree(t, "testdata/nondeterminism",
		[]*lint.Analyzer{checks.Nondeterminism}, nil)
}

// TestUnitConv includes the acceptance-gate case: the PR 1 buskbps-style
// `busMBps / 1000` conversion reintroduced in testdata must be flagged.
func TestUnitConv(t *testing.T) {
	linttest.Run(t, checks.UnitConv, "testdata/unitconv")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, checks.FloatEq, "testdata/floateq")
}

func TestSimTime(t *testing.T) {
	linttest.Run(t, checks.SimTime, "testdata/simtime")
}

// TestTraceSink includes the acceptance-gate case: a direct fmt.Fprintf
// of trace bytes, the write shape that would bypass internal/tracing's
// byte-stable strconv sink, must be flagged.
func TestTraceSink(t *testing.T) {
	linttest.Run(t, checks.TraceSink, "testdata/tracesink")
}

// TestHotAlloc is an acceptance-gate case: a planted hot-path
// allocation two call-graph hops (and one package boundary) from the
// annotated root must be flagged with the full chain in the message.
func TestHotAlloc(t *testing.T) {
	linttest.RunTree(t, "testdata/hotalloc",
		nil, []*lint.ModuleAnalyzer{checks.HotAlloc})
}

// TestPoolSafe is an acceptance-gate case: a planted use-after-release
// on one control-flow path (plus double-release, loop back-edge, and
// package-level escape variants) must be flagged, while
// release-then-reacquire and disjoint-path uses stay clean.
func TestPoolSafe(t *testing.T) {
	linttest.RunTree(t, "testdata/poolsafe",
		nil, []*lint.ModuleAnalyzer{checks.PoolSafe})
}

func TestGlobalState(t *testing.T) {
	linttest.RunTree(t, "testdata/globalstate",
		nil, []*lint.ModuleAnalyzer{checks.GlobalState})
}
