package ecc

import (
	"math"
	"testing"

	"repro/internal/approx"
	"testing/quick"

	"repro/internal/nand"
)

func TestBCHConstruction(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CodewordBytes != 1024 || s.T != 72 {
		t.Fatalf("default scheme %+v", s)
	}
	// BCH parity for t=72 over 8 Kib codewords: 72×13 bits ≈ 11%.
	if s.ParityOverhead < 0.08 || s.ParityOverhead > 0.15 {
		t.Fatalf("parity overhead %v", s.ParityOverhead)
	}
}

func TestBCHBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BCH(0, 72)
}

func TestUncorrectableProbEndpoints(t *testing.T) {
	s := Default()
	if p := s.UncorrectableProb(0); !approx.Equal(p, 0) {
		t.Fatalf("p(0) = %v", p)
	}
	if p := s.UncorrectableProb(1); !approx.Equal(p, 1) {
		t.Fatalf("p(1) = %v", p)
	}
	// Far below capability: essentially zero.
	if p := s.UncorrectableProb(1e-6); p > 1e-12 {
		t.Fatalf("p(1e-6) = %v", p)
	}
	// Far above capability (λ = 8192·0.05 = 410 ≫ 72): essentially one.
	if p := s.UncorrectableProb(0.05); p < 0.999 {
		t.Fatalf("p(0.05) = %v", p)
	}
}

// Property: failure probability is monotone in RBER and in [0, 1].
func TestUncorrectableMonotoneProperty(t *testing.T) {
	s := Default()
	f := func(a, b uint16) bool {
		ra := float64(a) / float64(1<<16) * 0.02
		rb := float64(b) / float64(1<<16) * 0.02
		if ra > rb {
			ra, rb = rb, ra
		}
		pa, pb := s.UncorrectableProb(ra), s.UncorrectableProb(rb)
		return pa >= 0 && pb <= 1 && pa <= pb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPageFailProb(t *testing.T) {
	s := Default()
	// A 16 KiB page holds 16 codewords: page failure ≥ codeword failure.
	rber := 6e-3
	cw := s.UncorrectableProb(rber)
	page := s.PageFailProb(16384, rber)
	if page < cw {
		t.Fatalf("page %v < codeword %v", page, cw)
	}
	// Union bound: page ≤ 16 × codeword.
	if page > 16*cw+1e-12 {
		t.Fatalf("page %v > union bound %v", page, 16*cw)
	}
}

func TestMaxRBERConsistent(t *testing.T) {
	s := Default()
	limit := s.MaxRBER(16384, 1e-9)
	// The mainstream t=72/1KiB point tolerates a few-per-thousand RBER.
	if limit < 2e-3 || limit > 9e-3 {
		t.Fatalf("max rber = %v, outside credible range", limit)
	}
	if p := s.PageFailProb(16384, limit); p > 1e-9 {
		t.Fatalf("at returned limit, fail prob %v > target", p)
	}
	if p := s.PageFailProb(16384, limit*1.2); p < 1e-9 {
		t.Fatalf("20%% above limit should exceed target, got %v", p)
	}
}

// The ECC limit must be consistent with the wear model's default
// correctability threshold: same order of magnitude.
func TestECCGroundsWearModel(t *testing.T) {
	limit := Default().MaxRBER(16384, 1e-9)
	wm := nand.DefaultWearModel(nand.TLC)
	ratio := wm.ECCCorrectableRBER / limit
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("wear model threshold %v vs ECC-derived %v (ratio %.2f)",
			wm.ECCCorrectableRBER, limit, ratio)
	}
}

// Stronger ECC extends usable block life.
func TestStrongerECCMoreLife(t *testing.T) {
	weak := BCH(1024, 40)
	strong := BCH(1024, 100)
	wmWeak := nand.DefaultWearModel(nand.TLC)
	wmWeak.ECCCorrectableRBER = weak.MaxRBER(16384, 1e-9)
	wmStrong := nand.DefaultWearModel(nand.TLC)
	wmStrong.ECCCorrectableRBER = strong.MaxRBER(16384, 1e-9)
	if wmStrong.UsableCycles() <= wmWeak.UsableCycles() {
		t.Fatalf("stronger ECC did not extend life: %d vs %d",
			wmStrong.UsableCycles(), wmWeak.UsableCycles())
	}
}

func TestDecodeLatencyRegimes(t *testing.T) {
	s := Default()
	fast := s.DecodeLatencyNs(10)
	slow := s.DecodeLatencyNs(70)
	if fast >= slow {
		t.Fatalf("near-capability decode should be slower: %v vs %v", fast, slow)
	}
}

func TestPageFailBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Default().PageFailProb(0, 1e-3)
}

func TestPoissonTailAccuracy(t *testing.T) {
	// Cross-check one point against the exact Poisson tail: λ = 8192×4e-3
	// ≈ 32.8, T = 72: tail should be astronomically small but positive.
	p := Default().UncorrectableProb(4e-3)
	if p <= 0 || p > 1e-6 {
		t.Fatalf("tail at λ≈33, T=72: %v", p)
	}
	if math.IsNaN(p) {
		t.Fatal("NaN tail")
	}
}
