// Package search is the design-space autotuner (DESIGN.md §12): given a
// model and a simulation budget, it explores the SSD/ODP design space —
// channels × dies × planes × bus speed × ECC × over-provisioning × layout
// × optimizer — for Pareto-optimal (step time, energy, lifetime) points.
//
// Exhaustive sweeping is quadratically wasteful: most of the grid is
// dominated before it is ever simulated. The tuner therefore prices every
// candidate with the analytic bounds of core.BoundFor — a true lower
// bound on simulated step time (the roofline sandwich invariant) and on
// step energy (the conservation floors), plus an exact analytic lifetime
// — and prunes a candidate as soon as an already simulated point beats
// its bounds in every objective. Since the bounds are optimistic, the
// pruned candidate's actual results could only have been worse than the
// dominating point's actuals, so pruning never discards a frontier point.
//
// Results are memoized by the canonical config hash (no design point is
// ever simulated twice) and the whole run is deterministic: candidates
// are admitted in a fixed priority order, simulated in fixed-size waves
// whose composition does not depend on the worker-pool width, and the
// frontier is sorted with total tie-breaking — output is byte-identical
// at any -parallel setting.
package search

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/layout"
	"repro/internal/optim"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Space is the design-space grid: the cross product of every listed
// value, applied over a base configuration. Fields left nil keep the base
// configuration's setting (a single-value axis).
type Space struct {
	Channels       []int
	DiesPerChannel []int
	PlanesPerDie   []int
	BusMBps        []int
	OverProvision  []float64
	Layouts        []layout.Strategy
	Optimizers     []optim.Kind
	Retire         []ecc.RetirePolicy
}

// DefaultSpace is the paper-scale exploration grid. It includes the
// paper's default configuration (8×4×4, 1200 MB/s, 12.5% OP, colocated,
// Adam, no retirement) as one of its points.
func DefaultSpace() Space {
	return Space{
		Channels:       []int{2, 4, 8, 16},
		DiesPerChannel: []int{2, 4, 8},
		PlanesPerDie:   []int{2, 4},
		BusMBps:        []int{800, 1200, 2400},
		OverProvision:  []float64{0.07, 0.125, 0.25},
		Layouts:        layout.Strategies(),
		Optimizers:     []optim.Kind{optim.SGD, optim.Adam, optim.LAMB, optim.AdamA},
		Retire: []ecc.RetirePolicy{
			{},
			{RetryBudget: 8, ProbationReads: 4},
		},
	}
}

// Size returns the number of grid points before validation.
func (s Space) Size() int {
	n := 1
	for _, l := range []int{
		len(s.Channels), len(s.DiesPerChannel), len(s.PlanesPerDie), len(s.BusMBps),
		len(s.OverProvision), len(s.Layouts), len(s.Optimizers), len(s.Retire),
	} {
		if l > 0 {
			n *= l
		}
	}
	return n
}

// Options tunes a search run.
type Options struct {
	// System is the engine to tune; default "optimstore".
	System string
	// Budget caps the number of simulations (the expensive operation);
	// bound computation and pruning are analytic and uncapped. Default 64.
	Budget int
	// Parallel is the worker-pool width for each simulation wave; ≤0 uses
	// one worker per CPU. The result is byte-identical at any width.
	Parallel int
	// WAFSteps sets the steady-state WAF measurement length per distinct
	// (cell, over-provisioning) pair; default 3.
	WAFSteps int
}

func (o Options) system() string {
	if o.System == "" {
		return "optimstore"
	}
	return o.System
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return 64
	}
	return o.Budget
}

func (o Options) wafSteps() int {
	if o.WAFSteps < 2 {
		return 3
	}
	return o.WAFSteps
}

// Point is one design point: its configuration, analytic bounds, and —
// once simulated — its measured objectives.
type Point struct {
	// Index is the point's row-major position in the grid; -1 for the
	// seeded base configuration when it is not itself a grid point.
	Index int
	Cfg   core.Config
	Hash  uint64

	// Bound is the analytic optimistic estimate used for pruning.
	Bound core.Bound
	// Lifetime is the analytic wear-limited lifetime in optimizer steps
	// (zero when the state does not fit the device's usable capacity).
	// Lifetime is exact, not a bound: it depends only on geometry, cell
	// wear, and the memoized steady-state WAF.
	Lifetime float64

	// Simulated objectives, set once the point is evaluated.
	OptStep  sim.Time
	Energy   float64 // joules per step
	Feasible bool
}

// dominates reports whether p's measured objectives beat q's bounds in
// every coordinate, strictly in at least one. Only feasible simulated
// points may dominate: infeasible reports zero their counters and prove
// nothing.
func (p *Point) dominatesBound(stepBound sim.Time, energyBound, lifetime float64) bool {
	if !p.Feasible {
		return false
	}
	if p.OptStep > stepBound || p.Energy > energyBound || p.Lifetime < lifetime {
		return false
	}
	return p.OptStep < stepBound || p.Energy < energyBound || p.Lifetime > lifetime
}

// dominatesPoint is actual-vs-actual domination, for the frontier filter.
func (p *Point) dominatesPoint(q *Point) bool {
	if p.OptStep > q.OptStep || p.Energy > q.Energy || p.Lifetime < q.Lifetime {
		return false
	}
	return p.OptStep < q.OptStep || p.Energy < q.Energy || p.Lifetime > q.Lifetime
}

// Stats counts what happened to the grid.
type Stats struct {
	// Candidates is the number of valid grid points considered.
	Candidates int
	// Invalid counts grid points whose configuration failed validation.
	Invalid int
	// Pruned counts candidates rejected by bound domination before any
	// simulation.
	Pruned int
	// Evaluated counts simulations actually run (including the seed).
	Evaluated int
	// MemoHits counts candidates resolved from the memo table.
	MemoHits int
	// Skipped counts unpruned candidates left unsimulated when the budget
	// ran out.
	Skipped int
	// Infeasible counts evaluated points whose report was infeasible.
	Infeasible int
}

// PrunedFraction is the share of candidates rejected analytically.
func (s Stats) PrunedFraction() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Candidates)
}

// Result is a completed search.
type Result struct {
	System string
	// Frontier holds the Pareto-optimal evaluated points, sorted by
	// (step time, energy, -lifetime, index).
	Frontier []*Point
	// Evaluated holds every simulated point in evaluation order.
	Evaluated []*Point
	Stats     Stats
}

// waveSize is the number of unpruned candidates admitted per simulation
// wave. It is a fixed constant — never derived from the worker-pool width
// — so the pruning state between waves, and therefore the entire search
// trajectory, is identical at any -parallel setting.
const waveSize = 8

// Run explores the space over the base configuration. The base point
// itself is always simulated first (budget permitting it is the seed the
// first pruning decisions compare against), so the returned frontier
// always contains the base configuration or points that dominate it.
func Run(base core.Config, space Space, opts Options) (*Result, error) {
	system := opts.system()
	if _, ok := core.RooflineFor(system, base); !ok {
		return nil, fmt.Errorf("search: unknown system %q", system)
	}
	res := &Result{System: system}

	// Steady-state WAF per distinct over-provisioning, measured up front
	// in axis order so the schedule does not depend on pool width.
	cell := base.SSD.Nand.Cell
	wafByOP := make(map[float64]float64)
	ops := space.OverProvision
	if len(ops) == 0 {
		ops = []float64{base.SSD.OverProvision}
	}
	for _, op := range ops {
		if _, done := wafByOP[op]; done {
			continue
		}
		waf, err := core.MeasureUpdateWAF(cell, op, opts.wafSteps())
		if err != nil {
			return nil, fmt.Errorf("search: WAF measurement at OP %g: %w", op, err)
		}
		wafByOP[op] = waf
	}
	lifetimeOf := func(cfg core.Config) float64 {
		waf, ok := wafByOP[cfg.SSD.OverProvision]
		if !ok {
			waf = 1
		}
		life, fits := core.AnalyticLifetime(cfg, cell, waf)
		if !fits {
			return 0
		}
		return life
	}

	// Enumerate and price the grid.
	candidates := enumerate(base, space, system, lifetimeOf, &res.Stats)

	// Admission order: optimistic step bound, then energy bound, then
	// longest lifetime, then grid index — a total, deterministic order
	// that simulates the most promising configurations first, which is
	// what makes early evaluations prune the tail.
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.Bound.StepFloor != b.Bound.StepFloor {
			return a.Bound.StepFloor < b.Bound.StepFloor
		}
		if a.Bound.EnergyFloor != b.Bound.EnergyFloor {
			return a.Bound.EnergyFloor < b.Bound.EnergyFloor
		}
		if a.Lifetime != b.Lifetime {
			return a.Lifetime > b.Lifetime
		}
		return a.Index < b.Index
	})

	memo := make(map[uint64]*Point)
	prunedBy := func(c *Point) bool {
		for _, p := range res.Evaluated {
			if p.dominatesBound(c.Bound.StepFloor, c.Bound.EnergyFloor, c.Lifetime) {
				return true
			}
		}
		return false
	}
	evaluate := func(wave []*Point) error {
		jobs := make([]runner.Job[*core.Report], len(wave))
		for i, c := range wave {
			cfg := c.Cfg
			jobs[i] = func() (*core.Report, error) {
				sys, err := core.NewSystem(system, cfg)
				if err != nil {
					return nil, err
				}
				return sys.Run()
			}
		}
		results := runner.Run(opts.Parallel, jobs)
		if err := runner.FirstErr(results); err != nil {
			return err
		}
		for i, r := range results {
			c := wave[i]
			c.OptStep = r.Value.OptStepTime
			c.Energy = r.Value.Energy.Total()
			c.Feasible = r.Value.Feasible
			if !c.Feasible {
				res.Stats.Infeasible++
			}
			memo[c.Hash] = c
			res.Evaluated = append(res.Evaluated, c)
		}
		return nil
	}

	// Seed: the base configuration is simulated first, unconditionally.
	seed := &Point{Index: -1, Cfg: base, Hash: base.CanonicalHash()}
	if b, ok := core.BoundFor(system, base); ok {
		seed.Bound = b
	}
	seed.Lifetime = lifetimeOf(base)
	for _, c := range candidates {
		if c.Hash == seed.Hash {
			seed.Index = c.Index // the base is itself a grid point
			break
		}
	}
	res.Stats.Evaluated++
	if err := evaluate([]*Point{seed}); err != nil {
		return nil, err
	}

	budget := opts.budget()
	i := 0
	for i < len(candidates) {
		var wave []*Point
		for i < len(candidates) && len(wave) < waveSize {
			c := candidates[i]
			i++
			if _, hit := memo[c.Hash]; hit {
				res.Stats.MemoHits++
				continue
			}
			if prunedBy(c) {
				res.Stats.Pruned++
				continue
			}
			if res.Stats.Evaluated >= budget {
				res.Stats.Skipped++
				continue
			}
			res.Stats.Evaluated++
			wave = append(wave, c)
		}
		if len(wave) == 0 {
			continue
		}
		if err := evaluate(wave); err != nil {
			return nil, err
		}
	}

	res.Frontier = frontier(res.Evaluated)
	return res, nil
}

// enumerate expands the grid row-major over the base configuration,
// pricing every valid point with its analytic bound and lifetime.
func enumerate(base core.Config, space Space, system string,
	lifetimeOf func(core.Config) float64, stats *Stats) []*Point {
	channels := intAxis(space.Channels, base.SSD.Channels)
	dies := intAxis(space.DiesPerChannel, base.SSD.DiesPerChannel)
	planes := intAxis(space.PlanesPerDie, base.SSD.Nand.PlanesPerDie)
	bus := intAxis(space.BusMBps, base.SSD.Nand.BusMBps)
	overProv := space.OverProvision
	if len(overProv) == 0 {
		overProv = []float64{base.SSD.OverProvision}
	}
	layouts := space.Layouts
	if len(layouts) == 0 {
		layouts = []layout.Strategy{base.Layout}
	}
	optimizers := space.Optimizers
	if len(optimizers) == 0 {
		optimizers = []optim.Kind{base.Optimizer}
	}
	retires := space.Retire
	if len(retires) == 0 {
		retires = []ecc.RetirePolicy{base.SSD.Retire}
	}

	var out []*Point
	index := 0
	for _, ch := range channels {
		for _, d := range dies {
			for _, pl := range planes {
				for _, b := range bus {
					for _, op := range overProv {
						for _, lay := range layouts {
							for _, k := range optimizers {
								for _, ret := range retires {
									cfg := base
									cfg.SSD.Channels = ch
									cfg.SSD.DiesPerChannel = d
									cfg.SSD.Nand.PlanesPerDie = pl
									cfg.SSD.Nand.BusMBps = b
									cfg.SSD.OverProvision = op
									cfg.SSD.Retire = ret
									cfg.Layout = lay
									cfg.Optimizer = k
									idx := index
									index++
									if err := cfg.Validate(); err != nil {
										stats.Invalid++
										continue
									}
									bound, ok := core.BoundFor(system, cfg)
									if !ok {
										stats.Invalid++
										continue
									}
									stats.Candidates++
									out = append(out, &Point{
										Index:    idx,
										Cfg:      cfg,
										Hash:     cfg.CanonicalHash(),
										Bound:    bound,
										Lifetime: lifetimeOf(cfg),
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func intAxis(vals []int, def int) []int {
	if len(vals) == 0 {
		return []int{def}
	}
	return vals
}

// frontier filters the evaluated points to the feasible non-dominated set
// and sorts it deterministically.
func frontier(points []*Point) []*Point {
	var out []*Point
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		for _, q := range points {
			if q != p && q.Feasible && q.dominatesPoint(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.OptStep != b.OptStep {
			return a.OptStep < b.OptStep
		}
		if a.Energy != b.Energy {
			return a.Energy < b.Energy
		}
		if a.Lifetime != b.Lifetime {
			return a.Lifetime > b.Lifetime
		}
		return a.Index < b.Index
	})
	return out
}
