package optim

// sgd is plain stochastic gradient descent with optional coupled weight
// decay (L2 regularisation folded into the gradient).
type sgd struct {
	hp    Hyper
	steps int
}

func (s *sgd) Name() string    { return "SGD" }
func (s *sgd) Kind() Kind      { return SGD }
func (s *sgd) StateWords() int { return 0 }
func (s *sgd) Steps() int      { return s.steps }
func (s *sgd) Reset()          { s.steps = 0 }

func (s *sgd) Step(w, g []float32) {
	checkLens(w, g)
	lr := float32(s.hp.LR)
	wd := float32(s.hp.WeightDecay)
	for i := range w {
		grad := g[i] + wd*w[i]
		w[i] -= lr * grad
	}
	s.steps++
}

// momentum implements heavy-ball momentum, and Nesterov's accelerated
// variant when nesterov is set:
//
//	v ← µ·v + g
//	w ← w − lr·v            (heavy-ball)
//	w ← w − lr·(g + µ·v)    (Nesterov)
type momentum struct {
	hp       Hyper
	nesterov bool
	v        []float32
	steps    int
}

func (m *momentum) Name() string {
	if m.nesterov {
		return "Nesterov"
	}
	return "Momentum"
}

func (m *momentum) Kind() Kind {
	if m.nesterov {
		return Nesterov
	}
	return Momentum
}

func (m *momentum) StateWords() int { return 1 }
func (m *momentum) Steps() int      { return m.steps }
func (m *momentum) Reset()          { m.v = nil; m.steps = 0 }

func (m *momentum) Step(w, g []float32) {
	checkLens(w, g)
	if m.v == nil {
		m.v = make([]float32, len(w))
	}
	lr := float32(m.hp.LR)
	mu := float32(m.hp.MomentumMu)
	wd := float32(m.hp.WeightDecay)
	for i := range w {
		grad := g[i] + wd*w[i]
		m.v[i] = mu*m.v[i] + grad
		if m.nesterov {
			w[i] -= lr * (grad + mu*m.v[i])
		} else {
			w[i] -= lr * m.v[i]
		}
	}
	m.steps++
}
