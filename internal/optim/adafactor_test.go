package optim

import (
	"math"
	"testing"
)

func TestAdafactorSublinearState(t *testing.T) {
	a := NewAdafactor(1024, 4096, Hyper{})
	// (1024+4096)/(1024·4096) ≈ 0.0012 words/param vs Adam's 2.
	if spp := a.StateWordsPerParam(); spp > 0.01 {
		t.Fatalf("state words/param = %v, not sublinear", spp)
	}
}

func TestAdafactorDescendsOnQuadratic(t *testing.T) {
	const rows, cols = 8, 16
	a := NewAdafactor(rows, cols, Hyper{LR: 0.05})
	target := make([]float32, rows*cols)
	for i := range target {
		target[i] = float32(i%7) - 3
	}
	w := make([]float32, rows*cols)
	g := make([]float32, rows*cols)
	loss := func() float64 {
		var s float64
		for i := range w {
			d := float64(w[i] - target[i])
			s += d * d
		}
		return s
	}
	start := loss()
	for step := 0; step < 500; step++ {
		for i := range w {
			g[i] = w[i] - target[i]
		}
		a.Step(w, g)
	}
	if end := loss(); end > start/100 {
		t.Fatalf("did not descend: %v -> %v", start, end)
	}
	if a.Steps() != 500 {
		t.Fatalf("steps = %d", a.Steps())
	}
}

// With a rank-1 squared-gradient matrix, the factored estimate is exact, so
// the first update must be lr·sign(g) (all |u| equal and clipped to 1).
func TestAdafactorRankOneExact(t *testing.T) {
	const rows, cols = 4, 4
	a := NewAdafactor(rows, cols, Hyper{LR: 0.1})
	w := make([]float32, rows*cols)
	g := make([]float32, rows*cols)
	for i := range g {
		g[i] = 2 // constant gradient: G² is rank 1
	}
	a.Step(w, g)
	for i, v := range w {
		// u_ij = g/√v̂ identical everywhere → RMS = |u| → clip scales the
		// update to exactly lr.
		if math.Abs(float64(v)+0.1) > 1e-6 {
			t.Fatalf("w[%d] = %v, want -0.1", i, v)
		}
	}
}

func TestAdafactorZeroGradientNoChange(t *testing.T) {
	a := NewAdafactor(4, 4, Hyper{LR: 0.1})
	w := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	orig := append([]float32(nil), w...)
	a.Step(w, make([]float32, 16))
	for i := range w {
		//simlint:allow floateq masked entries must stay bit-identical
		if w[i] != orig[i] {
			t.Fatal("zero gradient moved weights")
		}
	}
}

func TestAdafactorReset(t *testing.T) {
	a := NewAdafactor(2, 2, Hyper{})
	w := make([]float32, 4)
	a.Step(w, []float32{1, 1, 1, 1})
	a.Reset()
	if a.Steps() != 0 {
		t.Fatal("steps after reset")
	}
}

func TestAdafactorDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad dims")
		}
	}()
	NewAdafactor(0, 4, Hyper{})
}

func TestAdafactorLenPanics(t *testing.T) {
	a := NewAdafactor(2, 2, Hyper{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on len mismatch")
		}
	}()
	a.Step(make([]float32, 3), make([]float32, 3))
}

func TestAdafactorDeterministic(t *testing.T) {
	run := func() []float32 {
		a := NewAdafactor(3, 5, Hyper{LR: 0.02})
		w := make([]float32, 15)
		g := make([]float32, 15)
		for s := 0; s < 10; s++ {
			for i := range g {
				g[i] = float32((i*7+s)%5) - 2
			}
			a.Step(w, g)
		}
		return w
	}
	x, y := run(), run()
	for i := range x {
		//simlint:allow floateq repeated runs must be bit-identical
		if x[i] != y[i] {
			t.Fatal("nondeterministic")
		}
	}
	//simlint:allow floateq 0 is the untouched sentinel
	if run()[0] == 0 && run()[1] == 0 {
		t.Fatal("degenerate run")
	}
	_ = NewAdafactor(2, 2, Hyper{}).Name()
}
