// Command sweep runs one-dimensional parameter sweeps of the system
// comparison and emits CSV, for plotting or regression tracking.
//
// Usage:
//
//	sweep -dim channels -values 2,4,8,16 -model GPT-13B
//	sweep -dim lanes    -values 1,4,16   -systems optimstore
//	sweep -dim pciegen  -values 3,4,5
//	sweep -dim batch    -values 1,4,16,64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/host"
)

func main() {
	var (
		dim     = flag.String("dim", "channels", "sweep dimension: channels, dies, lanes, clock, pciegen, batch, buskbps")
		values  = flag.String("values", "2,4,8,16", "comma-separated values")
		model   = flag.String("model", "GPT-13B", "model name from the zoo")
		systems = flag.String("systems", "hostoffload,ctrlisp,optimstore", "systems to run")
		units   = flag.Int64("units", 512, "simulation window in update units")
	)
	flag.Parse()

	m, err := dnn.ByName(*model)
	if err != nil {
		fail(err)
	}
	var vals []int
	for _, v := range strings.Split(*values, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			fail(fmt.Errorf("bad value %q: %w", v, err))
		}
		vals = append(vals, n)
	}

	fmt.Printf("dim,value,system,opt_step_s,step_s,tokens_per_s,pcie_gb,bus_gb,nand_prog_gb,energy_j\n")
	for _, v := range vals {
		cfg := core.DefaultConfig(m)
		cfg.MaxSimUnits = *units
		if err := apply(&cfg, *dim, v); err != nil {
			fail(err)
		}
		for _, name := range strings.Split(*systems, ",") {
			sys, err := core.NewSystem(strings.TrimSpace(name), cfg)
			if err != nil {
				fail(err)
			}
			r, err := sys.Run()
			if err != nil {
				fail(err)
			}
			if !r.Feasible {
				continue
			}
			fmt.Printf("%s,%d,%s,%.6f,%.6f,%.2f,%.3f,%.3f,%.3f,%.3f\n",
				*dim, v, r.System, r.OptStepTime.Seconds(), r.StepTime.Seconds(),
				r.TokensPerSec, float64(r.PCIeBytes)/1e9, float64(r.BusBytes)/1e9,
				float64(r.NANDProgramBytes)/1e9, r.Energy.Total())
		}
	}
}

// apply sets one sweep dimension on the configuration.
func apply(cfg *core.Config, dim string, v int) error {
	switch dim {
	case "channels":
		cfg.SSD.Channels = v
	case "dies":
		cfg.SSD.DiesPerChannel = v
	case "lanes":
		cfg.ODP.Lanes = v
	case "clock":
		cfg.ODP.ClockMHz = v
	case "pciegen":
		cfg.Link = host.PCIe(v, 4)
	case "batch":
		cfg.Batch = v
	case "buskbps":
		cfg.SSD.Nand.BusMBps = v
	default:
		return fmt.Errorf("unknown sweep dimension %q", dim)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
