package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/tracing"
)

// tracedSystem pairs one system's report with the trace its run recorded.
// It surfaces both counts to the runner summary.
type tracedSystem struct {
	rep *core.Report
	tr  *tracing.Trace
}

func (t tracedSystem) EventCount() int64      { return t.rep.EventCount() }
func (t tracedSystem) TraceEventCount() int64 { return int64(t.tr.Len()) }

// TraceSystems runs every system plus the checkpoint comparison on
// the default configuration with per-job event tracing enabled, and
// returns the trace-derived metrics as a regular experiment Result
// together with the recorded traces in run order, ready for
// tracing.WriteChrome. Each job owns its engine and its trace; jobs fan
// across the worker pool, but because traces are assembled in submission
// order the returned slice — and any file serialized from it — is
// byte-identical at every Parallel width.
func TraceSystems(opts Options) (*Result, []*tracing.Trace, runner.Summary, error) {
	model := dnn.GPT13B()
	cfg := baseConfig(opts, model)
	names := core.SystemNames()
	results := runner.Map(opts.Parallel, names, func(n string) (tracedSystem, error) {
		c := cfg
		tr := tracing.New(n)
		c.Trace = tr
		sys, err := core.NewSystem(n, c)
		if err != nil {
			return tracedSystem{}, err
		}
		r, err := sys.Run()
		if err != nil {
			return tracedSystem{}, err
		}
		return tracedSystem{rep: r, tr: tr}, nil
	})
	summary := runner.Summarize(results)
	if err := runner.FirstErr(results); err != nil {
		return nil, nil, summary, err
	}
	traces := make([]*tracing.Trace, 0, len(names)+1)
	for _, v := range runner.Values(results) {
		traces = append(traces, v.tr)
	}

	// The checkpoint comparison is analytic and cheap; run it inline.
	ctr := tracing.New("checkpoint")
	ccfg := cfg
	ccfg.Trace = ctr
	if _, err := core.Checkpoint(ccfg); err != nil {
		return nil, nil, summary, err
	}
	traces = append(traces, ctr)

	// Reports aggregate over the coarse resources (phases, PCIe, channel
	// buses, ODP units, controller); per-plane tracks stay in the Chrome
	// file but would swamp a printed table with hundreds of rows.
	coarse := make([]*tracing.Trace, len(traces))
	for i, tr := range traces {
		coarse[i] = tr.Filter(func(track string) bool {
			return !strings.Contains(track, "/plane")
		})
	}
	res := &Result{
		ID:     "TRACE",
		Title:  "Traced system comparison (" + model.Name + ")",
		Tables: []*stats.Table{tracing.SummaryTable(coarse...)},
	}
	// One utilization timeline per simulated system: where each resource's
	// busy time sits within the step, the phase-overlap view the paper's
	// analysis rests on.
	for _, tr := range coarse {
		if fig := tracing.UtilizationTimeline(tr, "hold", 32); len(fig.Series) > 0 {
			res.Figures = append(res.Figures, fig)
		}
	}
	return res, traces, summary, nil
}
