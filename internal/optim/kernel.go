package optim

// Kernel describes the per-element compute shape of one optimizer as the
// on-die processing unit executes it. The ODP cost model multiplies these
// by element counts and lane throughput; the layout engine uses ReadPasses
// to schedule page reads.
type Kernel struct {
	Kind Kind

	// FlopsPerElem counts primitive arithmetic operations (mul/add/sqrt/div
	// each as one) per parameter per step.
	FlopsPerElem int

	// ReadPasses is how many times the resident state must be streamed
	// through the compute unit. 1 for every elementwise optimizer; 2 for
	// LAMB, whose trust ratio needs norms before scaling.
	ReadPasses int

	// GlobalReduce marks optimizers needing a cross-die reduction between
	// passes (LAMB's ‖w‖, ‖r‖). The engine inserts a controller round-trip.
	GlobalReduce bool

	// FoldFlops counts the extra per-element operations of folding one
	// additional micro-batch gradient into resident state (AdamA's
	// in-state accumulation). Zero for optimizers without an
	// accumulation form; WithAccum uses it.
	FoldFlops int
}

// WithAccum returns the kernel with n gradient-accumulation passes per
// step priced in: each micro-batch beyond the first costs FoldFlops extra
// operations per element, without additional state read passes. n below 2
// or a zero FoldFlops leaves the kernel unchanged.
func (k Kernel) WithAccum(n int) Kernel {
	if n > 1 && k.FoldFlops > 0 {
		k.FlopsPerElem += k.FoldFlops * (n - 1)
	}
	return k
}

// KernelFor returns the kernel descriptor for an optimizer kind.
func KernelFor(kind Kind) Kernel {
	k := Kernel{Kind: kind, ReadPasses: 1}
	switch kind {
	case SGD:
		k.FlopsPerElem = 2 // lr·g, w−
	case Momentum:
		k.FlopsPerElem = 4 // µ·v, +g, lr·v, w−
	case Nesterov:
		k.FlopsPerElem = 6
	case Adagrad:
		k.FlopsPerElem = 7 // g², h+, √, +ε, ÷, lr·, w−
	case RMSProp:
		k.FlopsPerElem = 9
	case Adam:
		k.FlopsPerElem = 13 // two EMA updates, bias correction, √, ÷, apply
	case AdamW:
		k.FlopsPerElem = 15
	case LAMB:
		k.FlopsPerElem = 18
		k.ReadPasses = 2
		k.GlobalReduce = true
	case AMSGrad:
		k.FlopsPerElem = 15 // Adam plus the running max
	case AdamA:
		k.FlopsPerElem = 14 // Adam with v tracking m² instead of g²
		k.FoldFlops = 4     // per extra micro-batch: m-EMA fold + wd term
	default:
		panic("optim: unknown kernel kind")
	}
	return k
}
