package trace

import (
	"math"
	"testing"

	"repro/internal/optim"
)

func TestGradientsDeterministic(t *testing.T) {
	a := Gradients(7, 100)
	b := Gradients(7, 100)
	for i := range a {
		//simlint:allow floateq same seed must reproduce bit-identically
		if a[i] != b[i] {
			t.Fatal("same seed produced different gradients")
		}
	}
	c := Gradients(8, 100)
	same := true
	for i := range a {
		//simlint:allow floateq same seed must reproduce bit-identically
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical gradients")
	}
}

func TestGradientsRoughlyNormal(t *testing.T) {
	g := Gradients(1, 10000)
	var sum, ss float64
	for _, v := range g {
		sum += float64(v)
		ss += float64(v) * float64(v)
	}
	mean := sum / float64(len(g))
	std := math.Sqrt(ss/float64(len(g)) - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(std-1) > 0.05 {
		t.Fatalf("mean=%v std=%v, want ~N(0,1)", mean, std)
	}
}

func TestGradientStream(t *testing.T) {
	s1 := NewGradientStream(3)
	s2 := NewGradientStream(3)
	a := make([]float32, 64)
	b := make([]float32, 64)
	s1.Fill(a)
	s2.Fill(b)
	for i := range a {
		//simlint:allow floateq same seed must reproduce bit-identically
		if a[i] != b[i] {
			t.Fatal("streams with same seed diverge")
		}
	}
	// Successive fills differ.
	s1.Fill(b)
	diff := false
	for i := range a {
		//simlint:allow floateq same seed must reproduce bit-identically
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("stream repeated itself")
	}
}

func TestQuadraticConvergenceUnderAdam(t *testing.T) {
	q := NewQuadratic(11, 64)
	w := make([]float32, q.Dim())
	g := make([]float32, q.Dim())
	o := optim.New(optim.Adam, optim.Hyper{LR: 0.05})
	start := q.Loss(w)
	for i := 0; i < 2000; i++ {
		q.Grad(w, g)
		o.Step(w, g)
	}
	end := q.Loss(w)
	//simlint:allow unitconv 1000x loss-reduction threshold, not a unit conversion
	if end > start/1000 {
		t.Fatalf("Adam failed to converge on quadratic: %v -> %v", start, end)
	}
	if q.Distance(w) > 0.1 {
		t.Fatalf("distance to target = %v", q.Distance(w))
	}
}

func TestQuadraticEveryOptimizerDescends(t *testing.T) {
	for _, k := range optim.Kinds() {
		q := NewQuadratic(5, 32)
		w := make([]float32, q.Dim())
		g := make([]float32, q.Dim())
		o := optim.New(k, optim.Hyper{LR: 0.01})
		start := q.Loss(w)
		for i := 0; i < 500; i++ {
			q.Grad(w, g)
			o.Step(w, g)
		}
		if end := q.Loss(w); end >= start {
			t.Errorf("%v did not descend: %v -> %v", k, start, end)
		}
	}
}

func TestQuadraticMismatchPanics(t *testing.T) {
	q := NewQuadratic(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	q.Grad(make([]float32, 3), make([]float32, 3))
}

func TestGenerateIOPatterns(t *testing.T) {
	const pages = 1000
	for _, p := range Patterns() {
		reqs := GenerateIO(p, 500, pages, 42)
		if len(reqs) != 500 {
			t.Fatalf("%v: %d reqs", p, len(reqs))
		}
		for _, r := range reqs {
			if r.LPA < 0 || r.LPA >= pages {
				t.Fatalf("%v: lpa %d out of range", p, r.LPA)
			}
			if !r.Write && r.LPA >= pages/2 {
				t.Fatalf("%v: read outside written half", p)
			}
		}
	}
}

func TestGenerateIOSeqWrite(t *testing.T) {
	reqs := GenerateIO(SeqWrite, 10, 1000, 1)
	for i, r := range reqs {
		if r.LPA != int64(i) || !r.Write {
			t.Fatalf("seq write req %d = %+v", i, r)
		}
	}
}

func TestGenerateIOMixedRatio(t *testing.T) {
	reqs := GenerateIO(Mixed7030, 10000, 1000, 9)
	writes := 0
	for _, r := range reqs {
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(reqs))
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("write fraction = %v, want ~0.30", frac)
	}
}

func TestGenerateIODeterministic(t *testing.T) {
	a := GenerateIO(RandWrite, 100, 1000, 5)
	b := GenerateIO(RandWrite, 100, 1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestGenerateIOBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad args accepted")
		}
	}()
	GenerateIO(SeqWrite, 10, 1, 1)
}

func TestPatternString(t *testing.T) {
	if SeqWrite.String() != "seq-write" || Mixed7030.String() != "mixed-70r30w" {
		t.Fatal("pattern names")
	}
	if Pattern(42).String() == "" {
		t.Fatal("unknown pattern should render")
	}
}
