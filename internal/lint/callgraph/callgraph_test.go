package callgraph

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("find module: %v", err)
	}
	loader := lint.NewLoader(root, modPath)
	var units []*lint.Unit
	for _, dir := range []string{"testdata/calls/a", "testdata/calls/b"} {
		us, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		units = append(units, us...)
	}
	return Build(units)
}

// node finds the unique graph node whose key ends in suffix.
func node(t *testing.T, g *Graph, suffix string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.All() {
		if strings.HasSuffix(n.Key, suffix) {
			if found != nil {
				t.Fatalf("key suffix %q is ambiguous: %s and %s", suffix, found.Key, n.Key)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with key suffix %q", suffix)
	}
	return found
}

// edgeTo reports whether from has an edge to to, and whether that edge
// is an interface-dispatch edge.
func edgeTo(from, to *Node) (ok, viaInterface bool) {
	for _, e := range from.Out {
		if e.To == to {
			return true, e.ViaInterface
		}
	}
	return false, false
}

func TestStaticEdges(t *testing.T) {
	g := buildGraph(t)
	root := node(t, g, "a.Root")
	leaf := node(t, g, "a.Leaf")
	if ok, via := edgeTo(root, leaf); !ok || via {
		t.Errorf("Root -> Leaf: got ok=%v viaInterface=%v, want static edge", ok, via)
	}
}

func TestInterfaceDispatchEdges(t *testing.T) {
	g := buildGraph(t)
	root := node(t, g, "a.Root")
	do := node(t, g, "a.Impl).Do")
	ok, via := edgeTo(root, do)
	if !ok || !via {
		t.Errorf("Root -> (Impl).Do: got ok=%v viaInterface=%v, want interface edge", ok, via)
	}
}

// TestCrossPackageEdges is the load-bearing case: package b's units see
// package a only as an import copy, so edges must resolve through
// canonical name keys, not object identity.
func TestCrossPackageEdges(t *testing.T) {
	g := buildGraph(t)
	cross := node(t, g, "b.Cross")
	leaf := node(t, g, "a.Leaf")
	do := node(t, g, "a.Impl).Do")
	if ok, via := edgeTo(cross, leaf); !ok || via {
		t.Errorf("Cross -> Leaf: got ok=%v viaInterface=%v, want static edge", ok, via)
	}
	if ok, via := edgeTo(cross, do); !ok || via {
		t.Errorf("Cross -> (Impl).Do: got ok=%v viaInterface=%v, want static edge", ok, via)
	}
}

func TestFunctionValueIsSink(t *testing.T) {
	g := buildGraph(t)
	via := node(t, g, "a.ViaValue")
	if len(via.Out) != 0 {
		t.Errorf("calls through function values must not produce edges; got %d", len(via.Out))
	}
}

func TestTestFileNodesMarked(t *testing.T) {
	g := buildGraph(t)
	helper := node(t, g, "a.helperForTest")
	if !helper.Test {
		t.Errorf("functions in _test.go files must be marked Test")
	}
	if node(t, g, "a.Root").Test {
		t.Errorf("production functions must not be marked Test")
	}
}
