package core

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// EnduranceReport answers the first question anyone asks about in-storage
// training: how long before the update stream wears the flash out? Every
// step programs the full resident state once (times WAF), so lifetime is
// set by cell endurance, device capacity, and the state footprint.
type EnduranceReport struct {
	Model     string
	Optimizer string
	Cell      nand.CellType

	// StateBytes is the resident optimizer state footprint.
	StateBytes int64
	// DeviceBytes is the full-geometry device capacity in this cell mode.
	DeviceBytes int64
	// Fits is false when the state does not fit the device at all.
	Fits bool

	// MeasuredWAF comes from a steady-state multi-step simulation of the
	// update stream on a scaled-down device with identical occupancy.
	MeasuredWAF float64
	// ProgramBytesPerStep = StateBytes × MeasuredWAF.
	ProgramBytesPerStep float64

	// LifetimeSteps is how many optimizer steps the device survives with
	// ideal wear levelling.
	LifetimeSteps float64
	// LifetimeDays converts steps to wall time using the end-to-end step
	// latency of the OptimStore system on this configuration.
	LifetimeDays float64
	// StepTime is the end-to-end step time used for LifetimeDays.
	StepTime sim.Time
}

// RunEndurance evaluates flash lifetime for a configuration with the state
// region in the given cell mode. steps sets the length of the steady-state
// WAF measurement (≥2; more steps tighten the estimate).
func RunEndurance(cfg Config, cell nand.CellType, steps int) (*EnduranceReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if steps < 2 {
		return nil, fmt.Errorf("core: endurance needs >=2 steps, got %d", steps)
	}

	rep := &EnduranceReport{
		Model:     cfg.Model.Name,
		Optimizer: cfg.Optimizer.String(),
		Cell:      cell,
	}
	spec := cfg.Spec()
	rep.StateBytes = int64(float64(cfg.Model.Params) * spec.ResidentBytes())

	// Full-geometry capacity in the chosen cell mode (not the reduced
	// simulation window): a real 8×4-die drive with 1024 blocks/plane.
	full := nand.ParamsFor(cell)
	geo := ssd.GeometryOf(cfg.SSD.Channels, cfg.SSD.DiesPerChannel, full)
	rep.DeviceBytes = geo.TotalBytes()
	usable := float64(rep.DeviceBytes) * (1 - cfg.SSD.OverProvision)
	rep.Fits = float64(rep.StateBytes) <= usable
	if !rep.Fits {
		return rep, nil
	}

	// Steady-state WAF: drive a scaled-down device of the same cell type
	// and over-provisioning through full update sweeps.
	waf, err := measureUpdateWAF(cell, cfg.SSD.OverProvision, steps)
	if err != nil {
		return nil, err
	}
	rep.MeasuredWAF = waf
	rep.ProgramBytesPerStep = float64(rep.StateBytes) * waf

	// Lifetime: block erases per step spread across the whole device.
	rep.LifetimeSteps, _ = AnalyticLifetime(cfg, cell, waf)

	// Wall-clock lifetime at this configuration's training cadence.
	sys := NewOptimStore(cfg)
	r, err := sys.Run()
	if err != nil {
		return nil, err
	}
	rep.StepTime = r.StepTime
	stepsPerDay := 86400.0 / r.StepTime.Seconds()
	rep.LifetimeDays = rep.LifetimeSteps / stepsPerDay
	return rep, nil
}

// measureUpdateWAF runs `steps` full update sweeps over a small device at
// (1 − overProvision) occupancy and reports the write-amplification factor
// of everything after the first sweep (the first fills the log cold).
func measureUpdateWAF(cell nand.CellType, overProvision float64, steps int) (float64, error) {
	n := nand.ParamsFor(cell)
	n.BlocksPerPlane = 16
	n.PagesPerBlock = 32
	n.PlanesPerDie = 2
	devCfg := ssd.Config{
		Channels:        2,
		DiesPerChannel:  2,
		Nand:            n,
		OverProvision:   overProvision,
		GCLowWater:      2,
		GCHighWater:     3,
		CachePages:      64,
		DRAMPageLatency: 2 * sim.Microsecond,
		CmdLatency:      5 * sim.Microsecond,
	}
	if err := devCfg.Validate(); err != nil {
		return 0, err
	}
	eng := sim.NewEngine()
	dev := ssd.NewDevice(eng, devCfg)
	pages := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < pages; lpa++ {
		dev.Preload(lpa)
	}

	var baseHost, baseGC uint64
	for s := 0; s < steps; s++ {
		for lpa := int64(0); lpa < pages; lpa++ {
			dev.ProgramUpdate(lpa, nil)
		}
		wedged := true
		dev.Drain(func() { wedged = false })
		eng.Run()
		if wedged {
			return 0, fmt.Errorf("core: WAF measurement wedged at step %d", s)
		}
		if s == 0 {
			baseHost = dev.FTL().HostProgrammed()
			baseGC = dev.FTL().GCProgrammed()
		}
	}
	host := dev.FTL().HostProgrammed() - baseHost
	gc := dev.FTL().GCProgrammed() - baseGC
	if host == 0 {
		return 1, nil
	}
	return float64(host+gc) / float64(host), nil
}
