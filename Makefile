# Verification tiers. Tier 1 is the fast always-green gate; tier 2 adds
# go vet and the race detector — required since internal/runner introduced
# real concurrency (the worker pool that fans simulation points across
# CPUs); tier 3 runs simlint, the project's own static analyzers: the
# per-unit determinism and unit-safety rules plus the module-wide
# flow-aware passes (hotalloc, poolsafe, globalstate — see DESIGN.md
# §10); tier 4 runs the physical-
# invariant sweep (internal/invariant: conservation, roofline sandwich,
# metamorphic monotonicity over hundreds of configurations) plus a short
# native-fuzz smoke of every pure-kernel fuzz target; tier 5 is the
# crash-consistency harness (DESIGN.md §11): the fault-point enumerator
# replaying a full config with the power cut at every FTL op boundary,
# the metamorphic fault-free equivalence check, the seeded 200-config
# mixed-fault sweep pinned byte-identical across pool widths, and a
# quick fault-storm experiment whose recovery-time table lands in
# out/recovery_table.csv (uploaded as a CI artifact); tier 6 checks the
# declarative experiment layer and the design-space autotuner (DESIGN.md
# §12): the spec-vs-seed golden-equivalence test (the migrated registry
# renders byte-identical to the pre-refactor output at pool widths 1 and
# 8), the search determinism/soundness/pruning tests, a small
# deterministic autotune whose frontier lands in out/frontier.csv
# (uploaded as a CI artifact), and the five-system comparison table
# (experiment F1 at quick scale) rendered to out/comparison_table.csv
# (also uploaded as a CI artifact); trace-verify
# re-runs the tracing layer's contract tests by name (byte-identical
# Chrome files across pool widths, zero disabled-tracer allocations,
# trace/utilization reconciliation — DESIGN.md §8) so a verify log shows
# their verdict explicitly. Run `make verify` before sending changes.

GO ?= go
FUZZTIME ?= 10s

.PHONY: verify vet tier1 tier2 tier3 tier4 tier5 tier6 fuzz-smoke trace-verify bench bench-gate

verify: tier1 tier2 tier3 tier4 tier5 tier6 trace-verify bench-gate

vet:
	$(GO) vet ./...

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: vet
	$(GO) test -race ./...

tier3:
	$(GO) run ./cmd/simlint ./...

tier4: fuzz-smoke
	$(GO) test ./internal/invariant/...

tier5:
	$(GO) test -run 'TestCrashPointEnumeration|TestFaultFreeEquivalence|TestFaultSweepDeterminism' -v ./internal/invariant/
	$(GO) test -run 'TestBoundaryHookContract|TestRecover|TestBlockRetirement' -v ./internal/ssd/
	mkdir -p out
	$(GO) run ./cmd/optimstore -exp F20 -quick -format csv > out/recovery_table.csv

tier6:
	$(GO) test -run 'TestSpecGoldenEquivalence' -v ./internal/experiments/
	$(GO) test -run 'TestSearch' -v ./internal/search/
	mkdir -p out
	$(GO) run ./cmd/tune -units 256 -budget 32 -csv out/frontier.csv
	$(GO) run ./cmd/optimstore -exp F1 -quick -format csv > out/comparison_table.csv

trace-verify:
	$(GO) test -run 'TestGoldenTraceDeterminism' -v ./internal/experiments/
	$(GO) test -run 'TestTracedSweepDeterministicAcrossWidths' -v ./cmd/sweep/
	$(GO) test -run 'TestDisabledTracerAddsNoAllocations|TestTracerObservesEngineAndResource' -v ./internal/sim/
	$(GO) test -run 'TestTracedRunMatchesUntraced|TestTraceReconcilesWithReportedLinkUtil' -v ./internal/core/

# One `go test -fuzz` invocation per target: the fuzz engine accepts a
# single fuzz pattern per run. -run='^$$' skips the unit tests each time;
# the committed seed corpora under testdata/fuzz/ run as part of tier 1.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzBitsRoundTrip   -fuzztime=$(FUZZTIME) ./internal/fp16/
	$(GO) test -run='^$$' -fuzz=FuzzRoundProperties -fuzztime=$(FUZZTIME) ./internal/fp16/
	$(GO) test -run='^$$' -fuzz=FuzzSchemeProperties -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz=FuzzRetireTracker    -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz=FuzzFTLOps          -fuzztime=$(FUZZTIME) ./internal/ssd/
	$(GO) test -run='^$$' -fuzz=FuzzEngineOrdering  -fuzztime=$(FUZZTIME) ./internal/sim/

# bench (re)measures the kernel and writes the canonical snapshot;
# bench-gate re-measures and fails when any benchmark's events/sec falls
# more than 15% below the committed snapshot (see DESIGN.md — use
# `go run ./cmd/bench -check -update` to accept a deliberate slowdown).
# `go test -bench` remains available for ad-hoc runs of individual
# benchmarks (e.g. -bench BenchmarkSweep32 ./internal/runner/).
bench:
	$(GO) run ./cmd/bench -write

bench-gate:
	$(GO) run ./cmd/bench -check
