// Package trace generates the synthetic workloads of the reproduction:
// deterministic pseudo-random gradients for functional verification, a
// small convex training problem for the quickstart example, and block-level
// I/O traces for the standalone SSD simulator.
//
// # Seeding convention
//
// Every generator in this package takes an explicit seed and builds its own
// rand.New(rand.NewSource(seed)) — nothing reads the global math/rand state,
// so two runs with the same seed are bit-identical regardless of what other
// packages do (the `nondeterminism` analyzer in internal/lint/checks keeps
// it that way). Callers that have no reason to vary the workload should pass
// DefaultSeed; callers that derive per-step or per-shard streams should
// offset it (seed+step), as internal/core/functional.go does.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultSeed is the conventional seed for experiments and examples that
// only need *a* reproducible workload, not a particular one. Tests that
// exercise seed-sensitivity intentionally use other values.
const DefaultSeed int64 = 42

// Gradients returns n deterministic standard-normal gradient values for the
// given seed. The same (seed, n) always produces the same slice.
func Gradients(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	return g
}

// GradientStream produces an endless deterministic gradient sequence in
// page-sized chunks, modelling the backward pass output of successive
// training steps.
type GradientStream struct {
	rng *rand.Rand
}

// NewGradientStream returns a stream seeded deterministically.
func NewGradientStream(seed int64) *GradientStream {
	return &GradientStream{rng: rand.New(rand.NewSource(seed))}
}

// Fill overwrites buf with the next gradients.
func (s *GradientStream) Fill(buf []float32) {
	for i := range buf {
		buf[i] = float32(s.rng.NormFloat64())
	}
}

// Quadratic is a strongly convex synthetic objective
// L(w) = ½‖w − target‖², whose gradient is w − target. Optimizers must
// converge to target on it; the quickstart example and the convergence
// tests use it as ground truth.
type Quadratic struct {
	Target []float32
}

// NewQuadratic builds a problem with a deterministic random target.
func NewQuadratic(seed int64, dim int) *Quadratic {
	return &Quadratic{Target: Gradients(seed, dim)}
}

// Grad writes ∇L(w) into g.
func (q *Quadratic) Grad(w, g []float32) {
	if len(w) != len(q.Target) || len(g) != len(w) {
		panic("trace: dimension mismatch")
	}
	for i := range w {
		g[i] = w[i] - q.Target[i]
	}
}

// Loss returns L(w).
func (q *Quadratic) Loss(w []float32) float64 {
	var sum float64
	for i := range w {
		d := float64(w[i] - q.Target[i])
		sum += d * d
	}
	return sum / 2
}

// Dim returns the problem dimensionality.
func (q *Quadratic) Dim() int { return len(q.Target) }

// Distance returns ‖w − target‖₂.
func (q *Quadratic) Distance(w []float32) float64 {
	return math.Sqrt(2 * q.Loss(w))
}

// Pattern selects a block-level access pattern for the SSD trace generator.
type Pattern int

// Access patterns.
const (
	SeqWrite Pattern = iota
	RandWrite
	SeqRead
	RandRead
	Mixed7030 // 70% random reads, 30% random writes
)

// Patterns lists the supported access patterns.
func Patterns() []Pattern {
	return []Pattern{SeqWrite, RandWrite, SeqRead, RandRead, Mixed7030}
}

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case SeqWrite:
		return "seq-write"
	case RandWrite:
		return "rand-write"
	case SeqRead:
		return "seq-read"
	case RandRead:
		return "rand-read"
	case Mixed7030:
		return "mixed-70r30w"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Request is one page-granular device access.
type Request struct {
	LPA   int64
	Write bool
}

// GenerateIO produces n requests over a logical space of logicalPages,
// deterministically for the seed. Read patterns address only the first
// half of the space, which the caller is expected to have written.
func GenerateIO(p Pattern, n int, logicalPages, seed int64) []Request {
	if logicalPages <= 1 || n < 0 {
		panic(fmt.Sprintf("trace: GenerateIO(%d pages, %d reqs)", logicalPages, n))
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	readSpace := logicalPages / 2
	for i := range reqs {
		switch p {
		case SeqWrite:
			reqs[i] = Request{LPA: int64(i) % logicalPages, Write: true}
		case RandWrite:
			reqs[i] = Request{LPA: rng.Int63n(logicalPages), Write: true}
		case SeqRead:
			reqs[i] = Request{LPA: int64(i) % readSpace}
		case RandRead:
			reqs[i] = Request{LPA: rng.Int63n(readSpace)}
		case Mixed7030:
			if rng.Intn(10) < 7 {
				reqs[i] = Request{LPA: rng.Int63n(readSpace)}
			} else {
				reqs[i] = Request{LPA: rng.Int63n(logicalPages), Write: true}
			}
		default:
			panic("trace: unknown pattern")
		}
	}
	return reqs
}
