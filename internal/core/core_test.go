package core

import (
	"strings"
	"testing"

	"repro/internal/approx"

	"repro/internal/dnn"
	"repro/internal/layout"
	"repro/internal/optim"
	"repro/internal/trace"
)

// testConfig returns a fast-to-simulate configuration.
func testConfig(model dnn.Model) Config {
	cfg := DefaultConfig(model)
	cfg.MaxSimUnits = 256
	return cfg
}

func mustRun(t *testing.T, name string, cfg Config) *Report {
	t.Helper()
	sys, err := NewSystem(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return r
}

func TestAllSystemsRun(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	for _, name := range SystemNames() {
		r := mustRun(t, name, cfg)
		if r.System == "" || r.Model != "GPT-13B" {
			t.Errorf("%s: malformed report %+v", name, r)
		}
		if name == "gpuresident" {
			if r.Feasible {
				t.Errorf("gpu-resident should be infeasible for 13B on a 40GB GPU")
			}
			continue
		}
		if !r.Feasible || r.OptStepTime <= 0 || r.Energy.Total() <= 0 {
			t.Errorf("%s: degenerate report: %+v", name, r)
		}
		if r.StepTime < r.FwdBwdTime {
			t.Errorf("%s: step time below fwd+bwd floor", name)
		}
	}
}

func TestHeadlineOrdering(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	opt := mustRun(t, "optimstore", cfg)
	off := mustRun(t, "hostoffload", cfg)
	ctl := mustRun(t, "ctrlisp", cfg)
	// The paper's headline: in-storage on-die beats both host offload and
	// controller-level processing on the optimizer step.
	if opt.OptStepTime >= off.OptStepTime {
		t.Fatalf("optimstore (%v) not faster than hostoffload (%v)", opt.OptStepTime, off.OptStepTime)
	}
	if opt.OptStepTime >= ctl.OptStepTime {
		t.Fatalf("optimstore (%v) not faster than ctrl-isp (%v)", opt.OptStepTime, ctl.OptStepTime)
	}
	// The speedup must be material (not noise): >1.5× vs host offload.
	if s := opt.Speedup(off); s < 1.5 {
		t.Fatalf("speedup vs offload = %.2f, want > 1.5", s)
	}
	// And energy strictly lower.
	if opt.Energy.Total() >= off.Energy.Total() {
		t.Fatalf("optimstore energy %v >= offload %v", opt.Energy.Total(), off.Energy.Total())
	}
}

func TestGPUResidentCrossover(t *testing.T) {
	small := mustRun(t, "gpuresident", testConfig(dnn.BERTLarge()))
	if !small.Feasible {
		t.Fatal("BERT-Large should fit on a 40GB GPU")
	}
	// When feasible, GPU-resident is the fastest optimizer step.
	opt := mustRun(t, "optimstore", testConfig(dnn.BERTLarge()))
	if small.OptStepTime >= opt.OptStepTime {
		t.Fatalf("gpu-resident (%v) should beat in-storage (%v) when it fits",
			small.OptStepTime, opt.OptStepTime)
	}
	big := mustRun(t, "gpuresident", testConfig(dnn.GPT175B()))
	if big.Feasible {
		t.Fatal("GPT-175B cannot fit on a 40GB GPU")
	}
	if big.Notes == "" {
		t.Fatal("infeasible report should explain itself")
	}
}

func TestPCIeTrafficAccounting(t *testing.T) {
	cfg := testConfig(dnn.GPT13B()) // Adam + Mixed16
	opt := mustRun(t, "optimstore", cfg)
	off := mustRun(t, "hostoffload", cfg)
	units := cfg.TotalUnits()
	if want := (cfg.GradBytesPerUnit() + cfg.WeightOutBytesPerUnit()) * units; opt.PCIeBytes != want {
		t.Fatalf("optimstore PCIe = %d, want %d", opt.PCIeBytes, want)
	}
	if want := 2 * cfg.ResidentBytesPerUnit() * units; off.PCIeBytes != want {
		t.Fatalf("offload PCIe = %d, want %d", off.PCIeBytes, want)
	}
	// Adam/Mixed16: offload moves 24 B/param, OptimStore 4 B/param.
	ratio := float64(off.PCIeBytes) / float64(opt.PCIeBytes)
	if ratio < 5.9 || ratio > 6.1 {
		t.Fatalf("PCIe traffic ratio = %.2f, want 6.0", ratio)
	}
}

func TestLayoutAblation(t *testing.T) {
	colo := testConfig(dnn.GPT13B())
	colo.Layout = layout.Colocated
	split := testConfig(dnn.GPT13B())
	split.Layout = layout.SplitByComponent
	rc := mustRun(t, "optimstore", colo)
	rs := mustRun(t, "optimstore", split)
	// Splitting state across dies forces page gathers over the channel
	// buses: strictly slower and more bus traffic.
	if rc.OptStepTime >= rs.OptStepTime {
		t.Fatalf("colocated (%v) not faster than split (%v)", rc.OptStepTime, rs.OptStepTime)
	}
	if rc.BusBytes >= rs.BusBytes {
		t.Fatalf("colocated bus bytes %d >= split %d", rc.BusBytes, rs.BusBytes)
	}
}

func TestPrecisionAblation(t *testing.T) {
	mixed := testConfig(dnn.GPT13B())
	fp32 := testConfig(dnn.GPT13B())
	fp32.Precision = optim.FP32
	// OptimStore's external traffic is gradients + working weights, so
	// mixed precision halves it.
	rm := mustRun(t, "optimstore", mixed)
	rf := mustRun(t, "optimstore", fp32)
	if rm.PCIeBytes*2 != rf.PCIeBytes {
		t.Errorf("optimstore: mixed16 PCIe %d, fp32 %d (want 2×)", rm.PCIeBytes, rf.PCIeBytes)
	}
	// Host offload moves the FP32 resident state either way: precision
	// cannot help it — part of why in-storage wins.
	om := mustRun(t, "hostoffload", mixed)
	of := mustRun(t, "hostoffload", fp32)
	if om.PCIeBytes != of.PCIeBytes {
		t.Errorf("hostoffload PCIe should be precision-invariant: %d vs %d", om.PCIeBytes, of.PCIeBytes)
	}
}

func TestChannelScaling(t *testing.T) {
	base := testConfig(dnn.GPT13B())
	wide := testConfig(dnn.GPT13B())
	wide.SSD.Channels = 16
	rb := mustRun(t, "optimstore", base)
	rw := mustRun(t, "optimstore", wide)
	// Doubling internal parallelism must speed OptimStore materially…
	if g := float64(rb.OptStepTime) / float64(rw.OptStepTime); g < 1.5 {
		t.Fatalf("2× channels gave only %.2fx", g)
	}
	// …but barely moves the PCIe-bound offload baseline.
	ob := mustRun(t, "hostoffload", base)
	ow := mustRun(t, "hostoffload", wide)
	if g := float64(ob.OptStepTime) / float64(ow.OptStepTime); g > 1.3 {
		t.Fatalf("offload should be PCIe-bound, got %.2fx from channels", g)
	}
}

func TestEveryOptimizerRuns(t *testing.T) {
	for _, k := range optim.Kinds() {
		cfg := testConfig(dnn.GPT2XL())
		cfg.Optimizer = k
		r := mustRun(t, "optimstore", cfg)
		if r.OptStepTime <= 0 {
			t.Errorf("%v: zero step time", k)
		}
	}
}

func TestLAMBCostsMoreThanAdam(t *testing.T) {
	adam := testConfig(dnn.GPT2XL())
	lamb := testConfig(dnn.GPT2XL())
	lamb.Optimizer = optim.LAMB
	ra := mustRun(t, "optimstore", adam)
	rl := mustRun(t, "optimstore", lamb)
	// Two read passes + reduce round trips: strictly slower.
	if rl.OptStepTime <= ra.OptStepTime {
		t.Fatalf("LAMB (%v) should cost more than Adam (%v)", rl.OptStepTime, ra.OptStepTime)
	}
	if rl.NANDReadBytes <= ra.NANDReadBytes {
		t.Fatal("LAMB should read more NAND bytes (second pass)")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	a := mustRun(t, "optimstore", cfg)
	b := mustRun(t, "optimstore", cfg)
	if a.OptStepTime != b.OptStepTime || a.BusBytes != b.BusBytes {
		t.Fatalf("nondeterministic: %v vs %v", a.OptStepTime, b.OptStepTime)
	}
}

func TestOverlapReducesStepTime(t *testing.T) {
	with := testConfig(dnn.GPT13B())
	with.OverlapFraction = 0.5
	without := testConfig(dnn.GPT13B())
	without.OverlapFraction = 0
	rw := mustRun(t, "optimstore", with)
	rn := mustRun(t, "optimstore", without)
	if rw.OptStepTime != rn.OptStepTime {
		t.Fatal("overlap must not change the raw optimizer step")
	}
	if rw.StepTime >= rn.StepTime {
		t.Fatalf("overlap did not reduce end-to-end step: %v vs %v", rw.StepTime, rn.StepTime)
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig(dnn.GPT13B())
	if cfg.ElemsPerPage() != 4096 {
		t.Fatalf("elems per page = %d", cfg.ElemsPerPage())
	}
	if cfg.Comps() != 3 { // Adam: w + m + v
		t.Fatalf("comps = %d", cfg.Comps())
	}
	wantUnits := (int64(13_000_000_000) + 4095) / 4096
	if cfg.TotalUnits() != wantUnits {
		t.Fatalf("total units = %d, want %d", cfg.TotalUnits(), wantUnits)
	}
	if cfg.SimUnits() != cfg.MaxSimUnits {
		t.Fatal("sim units should clamp to MaxSimUnits for big models")
	}
	if cfg.ScaleFactor() <= 1 {
		t.Fatal("scale factor")
	}
	// A model below the window size simulates fully, unscaled.
	tiny := dnn.Model{Name: "tiny", Arch: dnn.Transformer, Params: 1_000_000,
		Layers: 2, Hidden: 64, SeqLen: 128}
	small := DefaultConfig(tiny)
	if small.SimUnits() != small.TotalUnits() || !approx.Equal(small.ScaleFactor(), 1) {
		t.Fatal("small model should simulate fully")
	}
	// Mixed16 Adam: grad 2B, wout 2B per param.
	if cfg.GradBytesPerUnit() != 4096*2 || cfg.WeightOutBytesPerUnit() != 4096*2 {
		t.Fatal("per-unit traffic")
	}
	if cfg.ResidentBytesPerUnit() != 3*16384 {
		t.Fatal("resident bytes")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.MaxSimUnits = 0 },
		func(c *Config) { c.TransferChunkBytes = 0 },
		func(c *Config) { c.OverlapFraction = 1.5 },
		func(c *Config) { c.Model.Params = 0 },
		func(c *Config) { c.SSD.Channels = 0 },
		func(c *Config) { c.ODP.Lanes = 0 },
	}
	for i, m := range muts {
		cfg := DefaultConfig(dnn.BERTLarge())
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestODPBufferMustFitWorkingSet(t *testing.T) {
	cfg := testConfig(dnn.GPT13B()) // Adam: 3 state pages + 1 gradient page
	cfg.ODP.BufferKB = 48           // < 4 × 16 KiB
	if err := cfg.Validate(); err == nil {
		t.Fatal("undersized ODP buffer accepted")
	}
	// SGD needs only 2 pages: the same buffer is fine.
	cfg.Optimizer = optim.SGD
	if err := cfg.Validate(); err != nil {
		t.Fatalf("SGD with 48 KiB buffer rejected: %v", err)
	}
}

func TestNewSystemUnknown(t *testing.T) {
	if _, err := NewSystem("bogus", testConfig(dnn.BERTLarge())); err == nil {
		t.Fatal("unknown system accepted")
	}
	if len(SystemNames()) != 5 {
		t.Fatal("system names")
	}
}

// Paged-equivalence coverage lives in functional_test.go.

func TestMixedPrecisionDriftBounded(t *testing.T) {
	// FP16 gradient delivery perturbs Adam updates, but with FP32 master
	// weights the drift after 20 steps stays tiny relative to the ~0.02
	// total weight movement (20 steps × lr).
	drift, err := MixedPrecisionDrift(optim.Adam, optim.Hyper{LR: 1e-3}, 512, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	//simlint:allow floateq exact zero means the fp16 path was never exercised
	if drift == 0 {
		t.Fatal("quantisation had no effect at all — fp16 path not exercised")
	}
	if drift > 20*1e-3*0.05 {
		t.Fatalf("drift %v exceeds 5%% of total movement", drift)
	}
	// SGD drift is bounded by lr·Σ|g−q(g)| ≤ steps·lr·ε·max|g|-ish.
	drift, err = MixedPrecisionDrift(optim.SGD, optim.Hyper{LR: 1e-3}, 512, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if drift > 20*1e-3*4*4.9e-4 { // steps × lr × |g|≲4σ × fp16 epsilon
		t.Fatalf("SGD drift %v above analytic bound", drift)
	}
	if _, err := MixedPrecisionDrift(optim.Adam, optim.Hyper{}, 0, 1, 1); err == nil {
		t.Fatal("bad args accepted")
	}
}

func TestReportHelpers(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	opt := mustRun(t, "optimstore", cfg)
	off := mustRun(t, "hostoffload", cfg)
	if opt.Speedup(off) <= 1 {
		t.Fatal("speedup helper")
	}
	if opt.EnergyPerParamPJ(cfg.Model.Params) <= 0 {
		t.Fatal("energy per param")
	}
	if !approx.Equal(opt.EnergyPerParamPJ(0), 0) {
		t.Fatal("zero params should give zero")
	}
	if !strings.Contains(opt.String(), "optimstore") {
		t.Fatalf("String = %q", opt.String())
	}
	infeasible := mustRun(t, "gpuresident", cfg)
	if !strings.Contains(infeasible.String(), "infeasible") {
		t.Fatalf("infeasible String = %q", infeasible.String())
	}
	tab := ReportTable("t", []*Report{opt, off, infeasible})
	if tab.NumRows() != 3 {
		t.Fatal("report table rows")
	}
	et := EnergyTable("e", []*Report{opt, off, infeasible})
	if et.NumRows() != 2 { // infeasible dropped
		t.Fatal("energy table rows")
	}
}

func TestHostOffloadSmallTopologyNoWedge(t *testing.T) {
	// Regression: with few dies the admission window (4×dies) is smaller
	// than the PCIe transfer batch, so batches could never fill and the
	// pipeline wedged.
	cfg := testConfig(dnn.GPT13B())
	cfg.SSD.Channels = 2
	cfg.SSD.DiesPerChannel = 2
	r := mustRun(t, "hostoffload", cfg)
	if r.OptStepTime <= 0 {
		t.Fatal("degenerate run")
	}
}

func TestWindowCapacityGuard(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 10_000_000 // would exceed the simulated device window
	sys, _ := NewSystem("optimstore", cfg)
	if _, err := sys.Run(); err == nil {
		t.Fatal("oversized window accepted")
	}
}

func TestSparseUpdatesScaleTraffic(t *testing.T) {
	dense := testConfig(dnn.GPT13B())
	sparse := testConfig(dnn.GPT13B())
	sparse.Model.SparseFraction = 0.01
	rd := mustRun(t, "optimstore", dense)
	rs := mustRun(t, "optimstore", sparse)
	ratio := float64(rd.PCIeBytes) / float64(rs.PCIeBytes)
	if ratio < 95 || ratio > 105 {
		t.Fatalf("sparse traffic ratio = %v, want ~100", ratio)
	}
	if rs.OptStepTime >= rd.OptStepTime {
		t.Fatal("sparse step should be far faster")
	}
}

func TestCheckpointAnalysis(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	r, err := Checkpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Fatalf("in-storage checkpoint speedup = %v", r.Speedup)
	}
	// 156 GB over 3.35 GB/s ≈ 47 s external stream.
	if s := r.HostStreamTime.Seconds(); s < 40 || s > 55 {
		t.Fatalf("host stream = %v s", s)
	}
	if !r.CapacityOK {
		t.Fatal("2×156 GB should fit a 2 TB device")
	}
	if r.String() == "" {
		t.Fatal("String")
	}
	bad := cfg
	bad.Batch = 0
	if _, err := Checkpoint(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestLayerwiseOverlapSimulated(t *testing.T) {
	scalar := testConfig(dnn.GPT13B())
	layered := testConfig(dnn.GPT13B())
	layered.LayerwiseOverlap = true
	for _, sys := range []string{"optimstore", "hostoffload", "ctrlisp"} {
		rs := mustRun(t, sys, scalar)
		rl := mustRun(t, sys, layered)
		// The simulated pipeline must never beat perfect overlap
		// (max of the two phases) nor exceed their plain sum.
		lower := rs.FwdBwdTime
		if rs.OptStepTime > lower {
			lower = rs.OptStepTime
		}
		upper := rs.FwdBwdTime + rs.OptStepTime
		if rl.StepTime < lower-lower/10 || rl.StepTime > upper+upper/10 {
			t.Fatalf("%s: layerwise step %v outside [%v, %v]", sys, rl.StepTime, lower, upper)
		}
		// Exposed optimizer cost is what remains beyond compute.
		if rl.OptStepTime != rl.StepTime-rl.FwdBwdTime {
			t.Fatalf("%s: exposed cost accounting broken", sys)
		}
	}
}

func TestLayerwiseOverlapBeatsNoOverlap(t *testing.T) {
	layered := testConfig(dnn.GPT13B())
	layered.LayerwiseOverlap = true
	none := testConfig(dnn.GPT13B())
	none.OverlapFraction = 0
	rl := mustRun(t, "optimstore", layered)
	rn := mustRun(t, "optimstore", none)
	if rl.StepTime >= rn.StepTime {
		t.Fatalf("simulated overlap (%v) should beat no overlap (%v)", rl.StepTime, rn.StepTime)
	}
}

func TestClusterScaling(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	r1, err := RunCluster(cfg, DefaultCluster(1), "optimstore")
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunCluster(cfg, DefaultCluster(4), "optimstore")
	if err != nil {
		t.Fatal(err)
	}
	// Shard step shrinks roughly 1/N.
	ratio := float64(r1.ShardOptStep) / float64(r4.ShardOptStep)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("shard step scaling = %.2f, want ~4", ratio)
	}
	// Global throughput grows, but sub-linearly (collectives cost).
	if r4.TokensPerSec <= r1.TokensPerSec {
		t.Fatal("no scaling at all")
	}
	// Sharding the optimizer bottleneck yields superlinear per-worker
	// gains at small N (the ZeRO effect)…
	if r4.Efficiency <= 1 {
		t.Fatalf("efficiency = %v, expected >1 while the optimizer dominates", r4.Efficiency)
	}
	// …and the gain is interconnect-bound: a slow ring erodes it.
	slow, err := RunCluster(cfg, ClusterConfig{Workers: 4, InterconnectGBps: 1}, "optimstore")
	if err != nil {
		t.Fatal(err)
	}
	if slow.TokensPerSec >= r4.TokensPerSec {
		t.Fatalf("1 GB/s ring (%v tok/s) should underperform 25 GB/s (%v tok/s)",
			slow.TokensPerSec, r4.TokensPerSec)
	}
	if slow.AllReduce <= r4.AllReduce {
		t.Fatal("slower ring should cost more all-reduce time")
	}
	// Workers=1 has no collectives.
	if r1.AllReduce != 0 || r1.AllGather != 0 || !approx.Equal(r1.Efficiency, 1) {
		t.Fatalf("single worker: %+v", r1)
	}
	if r4.AllReduce <= 0 {
		t.Fatal("missing all-reduce cost")
	}
}

func TestClusterValidate(t *testing.T) {
	cfg := testConfig(dnn.GPT2XL())
	if _, err := RunCluster(cfg, ClusterConfig{Workers: 0, InterconnectGBps: 25}, "optimstore"); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := RunCluster(cfg, DefaultCluster(2), "bogus"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestQ8StatePacksStatePages(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	if cfg.Comps() != 3 { // FP32 Adam: w + m-page + v-page
		t.Fatalf("fp32 comps = %d", cfg.Comps())
	}
	cfg.Precision = optim.Q8State
	if cfg.Comps() != 2 { // both 8-bit moments pack into one page
		t.Fatalf("q8 comps = %d", cfg.Comps())
	}
	// Less resident state → fewer NAND programs per step → faster and
	// longer-lived.
	q8 := mustRun(t, "optimstore", cfg)
	fp := mustRun(t, "optimstore", testConfig(dnn.GPT13B()))
	if q8.NANDProgramBytes >= fp.NANDProgramBytes {
		t.Fatalf("q8 programs %d >= fp32 %d", q8.NANDProgramBytes, fp.NANDProgramBytes)
	}
	if q8.OptStepTime >= fp.OptStepTime {
		t.Fatalf("q8 step %v >= fp32 %v", q8.OptStepTime, fp.OptStepTime)
	}
}

func TestSimulationRespectsRoofline(t *testing.T) {
	// The simulated step must sit between the analytic floor (it cannot
	// beat physics) and a small multiple of it (no accidental
	// serialization), across models, optimizers and precisions.
	fullWindow := func(c Config) Config {
		// The window must hold enough units per plane that pipeline
		// fill/drain is amortised, or the extrapolation inflates short
		// windows (2 units/plane ≈ 2× the steady-state rate).
		c.MaxSimUnits = 2048
		return c
	}
	cases := []Config{
		fullWindow(testConfig(dnn.GPT13B())),
		fullWindow(testConfig(dnn.GPT2XL())),
		fullWindow(func() Config { c := testConfig(dnn.GPT13B()); c.Optimizer = optim.SGD; return c }()),
		fullWindow(func() Config { c := testConfig(dnn.GPT13B()); c.Precision = optim.Q8State; return c }()),
		fullWindow(func() Config { c := testConfig(dnn.GPT13B()); c.SSD.Channels = 2; return c }()),
	}
	for i, cfg := range cases {
		opt := mustRun(t, "optimstore", cfg)
		floor := OptimStoreRoofline(cfg).Floor()
		if opt.OptStepTime < floor {
			t.Errorf("case %d: optimstore %v beat the analytic floor %v", i, opt.OptStepTime, floor)
		}
		if opt.OptStepTime > 2*floor {
			t.Errorf("case %d: optimstore %v more than 2x floor %v — pipeline stall", i, opt.OptStepTime, floor)
		}
		off := mustRun(t, "hostoffload", cfg)
		ofloor := HostOffloadRoofline(cfg).Floor()
		if off.OptStepTime < ofloor {
			t.Errorf("case %d: offload %v beat the analytic floor %v", i, off.OptStepTime, ofloor)
		}
		if off.OptStepTime > 2*ofloor {
			t.Errorf("case %d: offload %v more than 2x floor %v", i, off.OptStepTime, ofloor)
		}
	}
}

func TestRooflineIdentifiesBottleneck(t *testing.T) {
	cfg := testConfig(dnn.GPT13B())
	// OptimStore at the default point is media-bound.
	r := OptimStoreRoofline(cfg)
	if r.Floor() != r.Media {
		t.Fatalf("optimstore floor should be media: %+v", r)
	}
	// Host offload is PCIe-bound.
	o := HostOffloadRoofline(cfg)
	if o.Floor() != o.PCIe {
		t.Fatalf("offload floor should be PCIe: %+v", o)
	}
}

// TestFunctionalCosimulation is the capstone integration test: the real
// event-driven OptimStore pipeline (PCIe chunks, per-die reads, kernel
// scheduling, log-structured programs, GC) drives actual Adam updates via
// the compute hook, in whatever order the simulation executes them. The
// result must be bit-identical to the monolithic reference — device-level
// reordering must never change the numerics.
func TestFunctionalCosimulation(t *testing.T) {
	model := dnn.Model{Name: "tiny", Arch: dnn.Transformer, Params: 512 * 4096,
		Layers: 4, Hidden: 64, SeqLen: 128}
	cfg := testConfig(model) // 512 units, fully simulated
	cfg.MaxSimUnits = cfg.TotalUnits()
	elems := cfg.ElemsPerPage()
	n := int(cfg.TotalUnits()) * elems

	// Reference: monolithic Adam over the whole parameter vector.
	gold := make([]float32, n)
	grads := trace.Gradients(99, n)
	goldOpt := optim.New(optim.Adam, optim.Hyper{LR: 0.01})
	goldOpt.Step(gold, grads)

	// Co-simulated: per-unit optimizers applied when the engine says the
	// kernel runs.
	cosim := make([]float32, n)
	unitOpts := make([]optim.Optimizer, cfg.TotalUnits())
	var order []int64
	cfg.ComputeHook = func(u int64) {
		if unitOpts[u] == nil {
			unitOpts[u] = optim.New(optim.Adam, optim.Hyper{LR: 0.01})
		}
		lo := int(u) * elems
		unitOpts[u].Step(cosim[lo:lo+elems], grads[lo:lo+elems])
		order = append(order, u)
	}
	r := mustRun(t, "optimstore", cfg)
	if r.SimUnits != cfg.TotalUnits() {
		t.Fatalf("window truncated: %d of %d units", r.SimUnits, cfg.TotalUnits())
	}
	if int64(len(order)) != cfg.TotalUnits() {
		t.Fatalf("hook fired %d times, want %d", len(order), cfg.TotalUnits())
	}
	// The engine must NOT have executed units in plain issue order —
	// otherwise this test wouldn't prove reorder-independence.
	inOrder := true
	for i := range order {
		if order[i] != int64(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Log("warning: kernel executions happened in issue order; reorder not exercised")
	}
	for i := range gold {
		//simlint:allow floateq co-simulation must agree bit-exactly
		if gold[i] != cosim[i] {
			t.Fatalf("divergence at element %d: gold=%v cosim=%v", i, gold[i], cosim[i])
		}
	}
}
