package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/optim"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/units"
)

// System runs one experiment configuration and produces a Report.
type System interface {
	Name() string
	Run() (*Report, error)
}

// NewSystem constructs a system by name: "optimstore", "hostoffload",
// "interleaved", "ctrlisp" or "gpuresident".
func NewSystem(name string, cfg Config) (System, error) {
	switch name {
	case "optimstore":
		return NewOptimStore(cfg), nil
	case "hostoffload":
		return NewHostOffload(cfg), nil
	case "interleaved":
		return NewInterleavedOffload(cfg), nil
	case "ctrlisp":
		return NewCtrlISP(cfg), nil
	case "gpuresident":
		return NewGPUResident(cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown system %q", name)
	}
}

// SystemNames lists the systems in presentation order.
func SystemNames() []string {
	return []string{"gpuresident", "hostoffload", "interleaved", "ctrlisp", "optimstore"}
}

// future is a one-shot completion that callbacks can wait on — used to let
// many units wait on one batched PCIe transfer.
type future struct {
	done    bool
	waiters []func()
}

func (f *future) resolve() {
	if f.done {
		return
	}
	f.done = true
	ws := f.waiters
	f.waiters = nil
	for _, w := range ws {
		w()
	}
}

func (f *future) then(fn func()) {
	if f.done {
		fn()
		return
	}
	f.waiters = append(f.waiters, fn)
}

// outBatcher coalesces per-unit output bytes into chunked link transfers.
// Every accumulated chunk (and the final remainder) is sent with the
// provided transfer function; onAll fires when every byte has been sent.
type outBatcher struct {
	chunk    int64
	pending  int64
	inFlight int
	closed   bool
	transfer func(n int64, done func())
	onAll    func()
}

func newOutBatcher(chunk int64, transfer func(int64, func()), onAll func()) *outBatcher {
	return &outBatcher{chunk: chunk, transfer: transfer, onAll: onAll}
}

// add queues n output bytes, flushing full chunks.
func (b *outBatcher) add(n int64) {
	b.pending += n
	for b.pending >= b.chunk {
		b.pending -= b.chunk
		b.send(b.chunk)
	}
}

// close flushes the remainder; onAll fires once outstanding sends finish.
func (b *outBatcher) close() {
	b.closed = true
	if b.pending > 0 {
		n := b.pending
		b.pending = 0
		b.send(n)
	} else {
		b.maybeDone()
	}
}

func (b *outBatcher) send(n int64) {
	b.inFlight++
	b.transfer(n, func() {
		b.inFlight--
		b.maybeDone()
	})
}

func (b *outBatcher) maybeDone() {
	if b.closed && b.inFlight == 0 && b.pending == 0 && b.onAll != nil {
		cb := b.onAll
		b.onAll = nil
		cb()
	}
}

// gradSchedule returns the simulated-window availability time of each
// gradient chunk under layer-wise overlap: the forward pass completes,
// then the backward pass emits gradients chunk by chunk. Times are scaled
// into the simulation window (every stage is linear in units, so the
// window pipeline is an exact miniature). Without LayerwiseOverlap all
// chunks are available at time zero.
func gradSchedule(cfg Config, nChunks int64) []sim.Time {
	avail := make([]sim.Time, nChunks)
	if !cfg.LayerwiseOverlap {
		return avail
	}
	total := float64(cfg.GPU.ComputeTime(cfg.Model.StepFlops(cfg.Batch)))
	fwd := total / 3
	bwd := total - fwd
	scale := cfg.ScaleFactor()
	for k := int64(0); k < nChunks; k++ {
		t := (fwd + bwd*float64(k+1)/float64(nChunks)) / scale
		avail[k] = units.Nanos(t)
	}
	return avail
}

// scheduleGradArrivals posts the backward pass's gradient-chunk arrivals
// in one ScheduleBatch call: chunk k becomes available at avail[k],
// crosses PCIe, and resolves the returned future. The fan-out is the
// largest single burst of same-time scheduling in a run (hundreds of
// chunks at paper scale), exactly the storm the engine's batch path
// amortizes into a single heapify.
func scheduleGradArrivals(eng *sim.Engine, toDevice func(int64, func()), avail []sim.Time, simUnits, unitsPerChunk, gradB int64) []*future {
	nChunks := int64(len(avail))
	arrived := make([]*future, nChunks)
	items := make([]sim.Timed, nChunks)
	for k := int64(0); k < nChunks; k++ {
		f := &future{}
		arrived[k] = f
		chunkUnits := unitsPerChunk
		if k == nChunks-1 {
			chunkUnits = simUnits - k*unitsPerChunk
		}
		bytes := chunkUnits * gradB
		items[k] = sim.Timed{Delay: avail[k], Fn: func() {
			toDevice(bytes, span(eng, "grad-transfer", f.resolve))
		}}
	}
	eng.ScheduleBatch(items)
	return arrived
}

// endToEnd fills the end-to-end fields of a report: forward+backward
// compute on the GPU, optimizer step partially hidden under it.
func (c Config) endToEnd(r *Report) {
	fwdBwd := c.GPU.ComputeTime(c.Model.StepFlops(c.Batch))
	r.FwdBwdTime = fwdBwd
	if c.LayerwiseOverlap {
		// The simulation already spans fwd+bwd (gradient availability) plus
		// the optimizer pipeline: OptStepTime holds the full span here.
		r.StepTime = r.OptStepTime
		if r.StepTime < fwdBwd {
			r.StepTime = fwdBwd
		}
		r.OptStepTime = r.StepTime - fwdBwd // exposed optimizer cost
	} else {
		hidden := fwdBwd.Scale(c.OverlapFraction)
		exposed := r.OptStepTime - hidden
		if exposed < 0 {
			exposed = 0
		}
		r.StepTime = fwdBwd + exposed
	}
	if r.StepTime > 0 {
		r.TokensPerSec = float64(c.Model.BatchTokens(c.Batch)) /
			r.StepTime.Seconds()
	}
}

// evalEnergy converts a full-model activity into the report's breakdown.
func evalEnergy(r *Report, a energy.Activity) {
	r.Energy = energy.DefaultCosts().Evaluate(a)
}

// meanBusUtil averages the channel-bus utilisation across a device.
func meanBusUtil(dev *ssd.Device) float64 {
	cfg := dev.Config()
	var total float64
	for ch := 0; ch < cfg.Channels; ch++ {
		total += dev.Channel(ch).BusUtilization()
	}
	return total / float64(cfg.Channels)
}

// kernelFor returns the ODP kernel descriptor for the configured
// optimizer, with gradient-accumulation fold work priced in.
func kernelFor(cfg Config) optim.Kernel {
	return optim.KernelFor(cfg.Optimizer).WithAccum(cfg.Accum())
}
