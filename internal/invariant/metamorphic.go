package invariant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
)

// Metamorphic properties: relations between runs rather than facts about
// one report. Each helper executes the extra simulations it needs, so
// these are test-suite material (the per-report registry stays cheap
// enough for production sweeps).

// Run constructs the named system, runs it, and audits the report against
// the registry. It returns the audited report; err is non-nil if the
// system could not be built or wedged mid-simulation.
func Run(system string, cfg core.Config) (*core.Report, error) {
	sys, err := core.NewSystem(system, cfg)
	if err != nil {
		return nil, err
	}
	r, err := sys.Run()
	if err != nil {
		return nil, err
	}
	Audit(system, cfg, r)
	return r, nil
}

// CheckDeterminism runs the system twice on the same configuration and
// verifies the simulations are bit-identical: same event count, same
// simulated times, same traffic tallies. The engine is specified to be
// deterministic (events ordered by time, then insertion); any divergence
// means map-iteration order or a global source of entropy leaked into the
// model.
func CheckDeterminism(system string, cfg core.Config) error {
	a, err := Run(system, cfg)
	if err != nil {
		return err
	}
	b, err := Run(system, cfg)
	if err != nil {
		return err
	}
	type probe struct {
		name string
		a, b interface{}
	}
	probes := []probe{
		{"SimEvents", a.SimEvents, b.SimEvents},
		{"SimTime", a.SimTime, b.SimTime},
		{"OptStepTime", a.OptStepTime, b.OptStepTime},
		{"StepTime", a.StepTime, b.StepTime},
		{"BusBytes", a.BusBytes, b.BusBytes},
		{"NANDReadBytes", a.NANDReadBytes, b.NANDReadBytes},
		{"NANDProgramBytes", a.NANDProgramBytes, b.NANDProgramBytes},
		{"SimPCIeToDevBytes", a.SimPCIeToDevBytes, b.SimPCIeToDevBytes},
		{"SimPCIeFromDevBytes", a.SimPCIeFromDevBytes, b.SimPCIeFromDevBytes},
		{"WAF", a.WAF, b.WAF},
	}
	for _, p := range probes {
		if p.a != p.b {
			return fmt.Errorf("determinism: %s diverged across identical runs: %v vs %v",
				p.name, p.a, p.b)
		}
	}
	return nil
}

// resourceTol is the slack allowed on resource monotonicity: adding
// hardware must not slow the step by more than this fraction. A small
// allowance is needed because changing the topology also changes layout
// round-robin phase, admission-window depth and extrapolation granularity
// — discretization wiggle, not model error.
const resourceTol = 0.05

// MonotonicityViolation describes one failed metamorphic expectation.
type MonotonicityViolation struct {
	Mutation string
	Base     *core.Report
	Mutated  *core.Report
	Detail   string
}

func (v MonotonicityViolation) Error() string {
	return fmt.Sprintf("monotonicity/%s: %s", v.Mutation, v.Detail)
}

// CheckResourceMonotonicity verifies that adding hardware never slows the
// optimizer step beyond discretization tolerance: more channels, more dies
// per channel, and more PCIe lanes each weakly improve (or leave alone)
// the step time. Returns one violation per failed mutation.
func CheckResourceMonotonicity(system string, cfg core.Config) ([]MonotonicityViolation, error) {
	base, err := Run(system, cfg)
	if err != nil {
		return nil, err
	}
	mutations := []struct {
		name   string
		mutate func(*core.Config)
		// topology mutations change page placement, which only the
		// plane-balanced Colocated layout is guaranteed to benefit from —
		// Linear packs the window into the first planes regardless of how
		// many exist, so extra dies can legitimately shift (and worsen)
		// placement phase. Same reasoning as the roofline sandwich's
		// Colocated restriction.
		topology bool
	}{
		{"2x-channels", func(c *core.Config) { c.SSD.Channels *= 2 }, true},
		{"2x-dies", func(c *core.Config) { c.SSD.DiesPerChannel *= 2 }, true},
		{"2x-pcie", func(c *core.Config) { c.Link.GBps *= 2 }, false},
	}
	var out []MonotonicityViolation
	for _, m := range mutations {
		if m.topology && cfg.Layout != layout.Colocated {
			continue
		}
		mcfg := cfg
		m.mutate(&mcfg)
		mut, err := Run(system, mcfg)
		if err != nil {
			return nil, fmt.Errorf("%s under %s: %w", system, m.name, err)
		}
		if !base.Feasible || !mut.Feasible {
			continue
		}
		limit := float64(base.OptStepTime) * (1 + resourceTol)
		if float64(mut.OptStepTime) > limit {
			out = append(out, MonotonicityViolation{
				Mutation: m.name, Base: base, Mutated: mut,
				Detail: fmt.Sprintf("step %v grew to %v (allowed %.0f)",
					base.OptStepTime, mut.OptStepTime, limit),
			})
		}
	}
	return out, nil
}

// CheckModelMonotonicity verifies a strictly larger model never yields a
// faster optimizer step: doubling the parameter count must not shrink
// OptStepTime beyond discretization tolerance.
func CheckModelMonotonicity(system string, cfg core.Config) (*MonotonicityViolation, error) {
	base, err := Run(system, cfg)
	if err != nil {
		return nil, err
	}
	bigCfg := cfg
	bigCfg.Model.Params *= 2
	if !windowFits(bigCfg) {
		// Doubling a model that was smaller than the window cap can grow
		// the simulated window past the device slice; nothing to compare.
		return nil, nil
	}
	big, err := Run(system, bigCfg)
	if err != nil {
		return nil, fmt.Errorf("%s with doubled model: %w", system, err)
	}
	if !base.Feasible || !big.Feasible {
		return nil, nil
	}
	limit := float64(base.OptStepTime) * (1 - resourceTol)
	if float64(big.OptStepTime) < limit {
		return &MonotonicityViolation{
			Mutation: "2x-params", Base: base, Mutated: big,
			Detail: fmt.Sprintf("step shrank from %v to %v on a doubled model",
				base.OptStepTime, big.OptStepTime),
		}, nil
	}
	return nil, nil
}
