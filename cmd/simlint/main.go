// Command simlint is the repository's static-analysis multichecker:
// verify tier 3. It runs five analyzers over the module —
//
//	nondeterminism  wall-clock reads, global math/rand, map-order iteration
//	unitconv        raw scale-factor literals outside internal/units
//	floateq         exact float ==/!= in tests outside approx helpers
//	simtime         bare sim.Time(x) conversions without a named constructor
//	tracesink       fmt stream writes that would bypass the trace sink
//
// Findings are suppressed line-by-line with `//simlint:allow <check>
// [reason]` placed on, or directly above, the offending line.
//
// Usage:
//
//	simlint [packages]     # default ./...
//	simlint -list          # print analyzers and their scopes
//
// Exit status is 1 if any diagnostic survives suppression, 2 on load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/checks"
)

// scope limits an analyzer to the packages where its rule is policy.
type scope struct {
	analyzer *lint.Analyzer
	include  func(rel string) bool
	describe string
}

// scopes is the tier-3 policy. Paths are module-relative.
//
//   - nondeterminism governs every package that feeds simulator output
//     (all of internal/ and cmd/); examples are interactive demos and may
//     print wall-clock timings.
//   - unitconv and simtime govern everything outside the packages that
//     define the units (internal/units and the sim kernel itself, whose
//     Time type the constructors wrap).
//   - floateq governs every test in the module.
//   - tracesink governs the packages that record and serialize event
//     traces; their output must stay byte-stable, so trace bytes go
//     through internal/tracing's strconv-append sink, never fmt streams.
var scopes = []scope{
	{checks.Nondeterminism, underAny("internal", "cmd"), "internal/..., cmd/..."},
	{checks.UnitConv, not(underAny("internal/units", "internal/lint")), "all but internal/units, internal/lint"},
	{checks.FloatEq, not(underAny("internal/lint")), "all tests but internal/lint's"},
	{checks.SimTime, not(underAny("internal/sim", "internal/units", "internal/lint")), "all but internal/sim, internal/units, internal/lint"},
	{checks.TraceSink, underAny("internal/tracing"), "internal/tracing"},
}

func underAny(prefixes ...string) func(string) bool {
	return func(rel string) bool {
		for _, p := range prefixes {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		}
		return false
	}
}

func not(f func(string) bool) func(string) bool {
	return func(rel string) bool { return !f(rel) }
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [packages]\n\nAnalyzers:\n")
		for _, s := range scopes {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n                   scope: %s\n",
				s.analyzer.Name, s.analyzer.Doc, s.describe)
		}
	}
	flag.Parse()
	if *list {
		flag.Usage()
		return
	}
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	found, failed := 0, false
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			failed = true
			continue
		}
		for _, unit := range units {
			rel := relPath(root, unit.Dir)
			var applicable []*lint.Analyzer
			for _, s := range scopes {
				if s.include(rel) {
					applicable = append(applicable, s.analyzer)
				}
			}
			if len(applicable) == 0 {
				continue
			}
			diags, err := lint.RunAnalyzers(unit, applicable...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simlint:", err)
				failed = true
				continue
			}
			for _, d := range diags {
				pos := unit.Fset.Position(d.Pos)
				fmt.Printf("%s:%d:%d: %s [%s]\n",
					relPath(root, pos.Filename), pos.Line, pos.Column, d.Message, d.Analyzer)
				found++
			}
		}
	}
	switch {
	case failed:
		return 2
	case found > 0:
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// expand resolves package patterns to directories. Supported: "./...",
// "dir/...", plain directories.
func expand(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		var batch []string
		var err error
		switch {
		case p == "./..." || p == "...":
			batch, err = lint.PackageDirs(root)
		case strings.HasSuffix(p, "/..."):
			batch, err = lint.PackageDirs(filepath.Join(root, strings.TrimSuffix(p, "/...")))
		default:
			batch = []string{p}
		}
		if err != nil {
			return nil, err
		}
		for _, d := range batch {
			abs, err := filepath.Abs(d)
			if err != nil {
				return nil, err
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}
	return dirs, nil
}

// relPath renders a path module-relative for stable, clickable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
