package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Nondeterminism flags the three sources of run-to-run variation that can
// leak into simulator output: wall-clock reads, the globally seeded
// math/rand generator, and iteration over maps (whose order Go randomises
// per run). The simulation kernel is specified to be bit-for-bit
// reproducible — see internal/sim's package comment — so inside the
// modelling packages all three are bugs unless explicitly allowed.
//
// Categories: wallclock, globalrand, maporder.
var Nondeterminism = &lint.Analyzer{
	Name: "nondeterminism",
	Doc: "flags time.Now/Since-style wall-clock reads, global math/rand use, " +
		"and range over maps in simulation packages; suppress intentional uses " +
		"with //simlint:allow wallclock (etc.)",
	Run: runNondeterminism,
}

// wallclockFuncs are the time-package functions that observe or depend on
// the host clock. time.Duration arithmetic and constants stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — the sanctioned alternative to the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNondeterminism(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(pass.Info, n)
				switch pkgPathOf(obj) {
				case "time":
					if wallclockFuncs[obj.Name()] && !isMethod(obj) {
						pass.Reportf(n.Pos(), "wallclock",
							"wall-clock call time.%s in a simulation package; simulated time must come from sim.Engine", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if !isMethod(obj) && !randConstructors[obj.Name()] {
						pass.Reportf(n.Pos(), "globalrand",
							"global math/rand call rand.%s; use an explicitly seeded rand.New(rand.NewSource(seed))", obj.Name())
					}
				}
			case *ast.RangeStmt:
				if n.Key == nil && n.Value == nil {
					// `for range m` observes only len(m): order-free.
					return true
				}
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Report(n.Pos(), "maporder",
							"range over map iterates in randomized order; sort the keys first (or //simlint:allow maporder if provably order-free)")
					}
				}
			}
			return true
		})
	}
	return nil
}
