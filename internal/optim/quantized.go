package optim

import (
	"fmt"
	"math"
)

// Adam8bit implements Adam with block-wise 8-bit quantized optimizer state
// (Dettmers et al., "8-bit Optimizers via Block-wise Quantization"): the
// first and second moments are stored as int8/uint8 with one float32
// absmax scale per block, cutting resident optimizer state from 8 to
// ~2 bytes per parameter. Each step dequantises a block, performs the
// exact Adam update in float32, and requantises.
//
// This is the "future work" lever for in-storage training: the resident
// footprint (and hence NAND program traffic and wear) of the Adam moments
// drops 4×. The timing model picks it up via the Q8State precision.
type Adam8bit struct {
	hp        Hyper
	blockSize int
	steps     int

	m8     []int8 // signed first moment
	v8     []uint8
	mScale []float32 // per-block absmax of m
	vScale []float32 // per-block max of v
}

// NewAdam8bit builds the optimizer with the conventional QuantBlockSize
// (256-element) quantization blocks — the same constant the Q8State spec
// uses for its scale-overhead accounting.
func NewAdam8bit(hp Hyper) *Adam8bit {
	return &Adam8bit{hp: hp.withDefaults(), blockSize: QuantBlockSize}
}

// Name returns the algorithm name.
func (a *Adam8bit) Name() string { return "Adam-8bit" }

// Steps returns how many updates have been applied.
func (a *Adam8bit) Steps() int { return a.steps }

// Reset discards the quantized state.
func (a *Adam8bit) Reset() {
	a.m8, a.v8, a.mScale, a.vScale = nil, nil, nil, nil
	a.steps = 0
}

// StateBytesPerParam returns the resident optimizer-state bytes per
// parameter: two 1-byte moments plus amortised block scales.
func (a *Adam8bit) StateBytesPerParam() float64 {
	return 2 + 8/float64(a.blockSize)
}

func (a *Adam8bit) ensure(n int) {
	if a.m8 != nil {
		if len(a.m8) != n {
			panic(fmt.Sprintf("optim: Adam8bit size changed %d -> %d", len(a.m8), n))
		}
		return
	}
	blocks := (n + a.blockSize - 1) / a.blockSize
	a.m8 = make([]int8, n)
	a.v8 = make([]uint8, n)
	a.mScale = make([]float32, blocks)
	a.vScale = make([]float32, blocks)
}

// Step applies one update of w in place given gradient g.
func (a *Adam8bit) Step(w, g []float32) {
	checkLens(w, g)
	a.ensure(len(w))
	a.steps++
	t := float64(a.steps)
	lr := a.hp.LR
	b1, b2 := a.hp.Beta1, a.hp.Beta2
	eps := a.hp.Eps
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)

	for lo := 0; lo < len(w); lo += a.blockSize {
		hi := lo + a.blockSize
		if hi > len(w) {
			hi = len(w)
		}
		blk := lo / a.blockSize

		// Dequantise, update in float32, track new block maxima.
		ms := float64(a.mScale[blk])
		vs := float64(a.vScale[blk])
		m := make([]float64, hi-lo)
		v := make([]float64, hi-lo)
		var mMax, vMax float64
		for i := lo; i < hi; i++ {
			mi := float64(a.m8[i]) / 127 * ms
			vi := float64(a.v8[i]) / 255 * vs
			grad := float64(g[i])
			mi = b1*mi + (1-b1)*grad
			vi = b2*vi + (1-b2)*grad*grad
			m[i-lo], v[i-lo] = mi, vi
			if am := math.Abs(mi); am > mMax {
				mMax = am
			}
			if vi > vMax {
				vMax = vi
			}
			upd := lr * (mi / bc1) / (math.Sqrt(vi/bc2) + eps)
			w[i] = float32(float64(w[i]) - upd)
		}

		// Requantise against the new block maxima (round to nearest).
		a.mScale[blk] = float32(mMax)
		a.vScale[blk] = float32(vMax)
		for i := lo; i < hi; i++ {
			if mMax > 0 {
				a.m8[i] = int8(math.Round(m[i-lo] / mMax * 127))
			} else {
				a.m8[i] = 0
			}
			if vMax > 0 {
				a.v8[i] = uint8(math.Round(v[i-lo] / vMax * 255))
			} else {
				a.v8[i] = 0
			}
		}
	}
}
