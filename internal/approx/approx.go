// Package approx provides the floating-point comparison helpers tests
// should use instead of == / != (the floateq analyzer flags those).
// Exact comparison is still correct in two situations — bit-exact
// determinism checks and values specified as exact (integer-valued
// floats, powers of two) — and those sites carry a
// `//simlint:allow floateq <reason>` directive instead.
package approx

import "math"

// DefaultTol is the relative tolerance used by Equal: loose enough to
// absorb reassociation-level float error, tight enough that any real
// model change trips it.
const DefaultTol = 1e-9

// Close reports whether a and b agree to within tol, relative to the
// larger magnitude (absolute for values below 1). NaN is close to
// nothing, including itself.
func Close(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // fast path; also the only way ±Inf compares true
		return true
	}
	// Unequal infinities (or an infinity vs anything finite) would
	// otherwise satisfy |a-b| <= tol·scale as Inf <= Inf.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// Equal is Close at DefaultTol.
func Equal(a, b float64) bool { return Close(a, b, DefaultTol) }

// Zero reports whether v is within tol of zero.
func Zero(v, tol float64) bool { return math.Abs(v) <= tol }
