package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/flow"
)

// PoolSafe is the flow-sensitive use-after-release detector for pooled
// kernel objects. Types annotated `//simlint:pooled` (sim.Event, the
// Resource use-request, the Preemptible op) recycle through freelists;
// functions annotated `//simlint:release` return their pooled argument
// (or receiver) to the pool, after which the handle is dead — DESIGN.md
// §9's handle contract. Any read, field write, call argument, or return
// of a handle on a control-flow path after its release call is a
// finding, as is releasing the same handle twice, or storing a pooled
// pointer into a package-level variable (which outlives every handle).
//
// The analysis is intraprocedural over internal/lint/flow CFGs and
// tracks local variables and parameters; reassigning a tracked variable
// (from a pool get, or to nil) ends its released state. Functions using
// goto are skipped rather than analyzed on incomplete paths.
//
// Categories: useafterrelease, doublerelease, poolescape.
var PoolSafe = &lint.ModuleAnalyzer{
	Name: "poolsafe",
	Doc: "flags use-after-release, double-release, and package-level escapes of " +
		"pooled (//simlint:pooled) objects along control-flow paths",
	Run: runPoolSafe,
}

// releaseFunc describes one //simlint:release function: which argument
// carries the handle. Param -1 means the receiver.
type releaseFunc struct {
	param int
}

// poolModel is the module-wide pooled-type and release-function index,
// keyed by canonical type / function strings so cross-package
// type-checker universes agree.
type poolModel struct {
	pooled   map[string]bool        // types.TypeString of the *named* type
	releases map[string]releaseFunc // types.Func.FullName
}

func buildPoolModel(units []*lint.Unit) *poolModel {
	m := &poolModel{pooled: map[string]bool{}, releases: map[string]releaseFunc{}}
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if !lint.HasDirective(ts.Doc, lint.PooledDirective) &&
							!(len(d.Specs) == 1 && lint.HasDirective(d.Doc, lint.PooledDirective)) {
							continue
						}
						if obj, ok := u.Info.Defs[ts.Name].(*types.TypeName); ok {
							m.pooled[types.TypeString(obj.Type(), nil)] = true
						}
					}
				case *ast.FuncDecl:
					if !lint.HasDirective(d.Doc, lint.ReleaseDirective) {
						continue
					}
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					m.releases[fn.FullName()] = releaseFunc{param: releaseParam(m, fn)}
				}
			}
		}
	}
	return m
}

// releaseParam finds which parameter of a release function carries the
// pooled handle: the receiver if pooled, else the first pooled-typed
// parameter.
func releaseParam(m *poolModel, fn *types.Func) int {
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil && m.isPooledPtr(r.Type()) {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if m.isPooledPtr(sig.Params().At(i).Type()) {
			return i
		}
	}
	return 0
}

// isPooledPtr reports whether t is a pointer to an annotated pooled type
// (from any type-checker universe).
func (m *poolModel) isPooledPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return m.pooled[types.TypeString(p.Elem(), nil)]
}

// sharedPoolKey memoizes the model across module analyzers in one run.
const sharedPoolKey = "poolmodel"

func poolModelOf(pass *lint.ModulePass) *poolModel {
	if m, ok := pass.Shared[sharedPoolKey].(*poolModel); ok {
		return m
	}
	m := buildPoolModel(pass.Units)
	pass.Shared[sharedPoolKey] = m
	return m
}

func runPoolSafe(pass *lint.ModulePass) error {
	model := poolModelOf(pass)
	if len(model.pooled) == 0 {
		return nil
	}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// The release functions themselves legitimately touch the
				// handle on its way into the pool.
				if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					if _, isRelease := model.releases[fn.FullName()]; isRelease {
						continue
					}
				}
				analyzeFunc(pass, model, u, fd)
			}
		}
	}
	return nil
}

// releasedArg returns the local variable a call releases, or nil.
func (m *poolModel) releasedArg(info *types.Info, call *ast.CallExpr) (types.Object, token.Pos) {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, token.NoPos
	}
	rf, ok := m.releases[fn.Origin().FullName()]
	if !ok {
		return nil, token.NoPos
	}
	var expr ast.Expr
	if rf.param == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, token.NoPos
		}
		expr = sel.X
	} else if rf.param < len(call.Args) {
		expr = call.Args[rf.param]
	}
	if expr == nil {
		return nil, token.NoPos
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() != v.Pkg().Scope() {
			return v, call.Pos()
		}
	}
	return nil, token.NoPos
}

func analyzeFunc(pass *lint.ModulePass, model *poolModel, u *lint.Unit, fd *ast.FuncDecl) {
	info := u.Info
	// Cheap pre-scan: skip functions with no release call and no
	// package-level store of a pooled pointer.
	hasRelease := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v, _ := model.releasedArg(info, call); v != nil {
				hasRelease = true
			}
		}
		return !hasRelease
	})
	reportEscapes(pass, model, u, fd)
	if !hasRelease {
		return
	}

	g := flow.New(fd.Body)
	if g.Imprecise {
		return
	}

	transfer := func(n ast.Node, facts flow.Facts) {
		// Gens: release calls anywhere in the node.
		flow.Visit(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if v, pos := model.releasedArg(info, call); v != nil {
					facts[v] = pos
				}
			}
			return true
		})
		// Kills: plain reassignment of a tracked variable gives it a new
		// (or nil) referent; the released fact dies.
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						delete(facts, v)
					}
					if v, ok := info.Defs[id].(*types.Var); ok {
						delete(facts, v)
					}
				}
			}
		case *ast.RangeStmt:
			for _, l := range []ast.Expr{n.Key, n.Value} {
				if l == nil {
					continue
				}
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						delete(facts, v)
					}
					if v, ok := info.Defs[id].(*types.Var); ok {
						delete(facts, v)
					}
				}
			}
		}
	}

	in := flow.ForwardMay(g, transfer)
	for _, blk := range g.Blocks {
		facts := flow.Facts{}
		//simlint:allow maporder copying the facts map; insertion order is irrelevant
		for k, v := range in[blk] {
			facts[k] = v
		}
		for _, n := range blk.Nodes {
			reportUses(pass, model, u, n, facts)
			transfer(n, facts)
		}
	}
}

// reportUses flags reads of variables whose released fact is live at
// node n. Plain-identifier assignment targets are kills, not uses; the
// argument of a release call is flagged as a double release instead.
func reportUses(pass *lint.ModulePass, model *poolModel, u *lint.Unit, n ast.Node, facts flow.Facts) {
	if len(facts) == 0 {
		return
	}
	info := u.Info
	// Identifiers to skip: plain assignment/range targets.
	skip := map[*ast.Ident]bool{}
	rerelease := map[*ast.Ident]bool{}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	case *ast.RangeStmt:
		for _, l := range []ast.Expr{n.Key, n.Value} {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	flow.Visit(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if v, _ := model.releasedArg(info, call); v != nil {
				if _, live := facts[v]; live {
					if rf, ok := ast.Unparen(releaseExpr(model, info, call)).(*ast.Ident); ok {
						rerelease[rf] = true
					}
				}
			}
		}
		return true
	})
	flow.Visit(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		relPos, live := facts[v]
		if !live {
			return true
		}
		pos := u.Fset.Position(relPos)
		if rerelease[id] {
			pass.Reportf(id.Pos(), "doublerelease",
				"pooled %s released again after release at %s (handle contract, DESIGN.md §9)",
				id.Name, posLabel(pos))
		} else {
			pass.Reportf(id.Pos(), "useafterrelease",
				"use of pooled %s after release at %s (handle contract, DESIGN.md §9)",
				id.Name, posLabel(pos))
		}
		return true
	})
}

// releaseExpr returns the handle expression of a release call.
func releaseExpr(m *poolModel, info *types.Info, call *ast.CallExpr) ast.Expr {
	fn, _ := calleeObj(info, call).(*types.Func)
	if fn == nil {
		return nil
	}
	rf, ok := m.releases[fn.Origin().FullName()]
	if !ok {
		return nil
	}
	if rf.param == -1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if rf.param < len(call.Args) {
		return call.Args[rf.param]
	}
	return nil
}

func posLabel(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}

// itoa avoids pulling strconv into the hot import set for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// reportEscapes flags stores of pooled pointers into package-level
// variables: the store outlives every handle, so the pool can recycle
// the struct while the global still points at it.
func reportEscapes(pass *lint.ModulePass, model *poolModel, u *lint.Unit, fd *ast.FuncDecl) {
	info := u.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			root := lhsRootIdent(l)
			if root == nil {
				continue
			}
			v, ok := info.Uses[root].(*types.Var)
			if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				continue
			}
			// Does any RHS expression carry a pooled pointer?
			for _, r := range as.Rhs {
				found := false
				ast.Inspect(r, func(e ast.Node) bool {
					if ex, ok := e.(ast.Expr); ok {
						if t := typeOf(info, ex); t != nil && model.isPooledPtr(t) {
							found = true
							return false
						}
					}
					return true
				})
				if found {
					pass.Reportf(as.Pos(), "poolescape",
						"pooled pointer stored in package-level %s outlives the handle contract (DESIGN.md §9)",
						root.Name)
					break
				}
			}
		}
		return true
	})
}

// lhsRootIdent returns the base identifier of an assignment target
// (x, x.f, x[i], ...), or nil.
func lhsRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}
