package invariant

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/optim"
	"repro/internal/ssd"
)

// Configs returns n feasible experiment configurations drawn from a seeded
// generator, spanning the design dimensions the reproduction sweeps: NAND
// cell type and topology, PCIe generation and width, optimizer family,
// state precision, model size and sparsity, window size and overlap mode.
// The same seed always yields the same slice, so test failures reproduce
// by index. Every returned config passes core.Config.Validate and keeps
// the simulation window small enough to run in milliseconds while leaving
// the device under ~1/3 full (mild, realistic GC rather than thrash).
func Configs(seed int64, n int) []core.Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Config, 0, n)
	for len(out) < n {
		cfg := sample(rng)
		if cfg.Validate() != nil {
			continue
		}
		if !windowFits(cfg) {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// elementWise are the optimizer kinds whose update touches each parameter
// independently; LAMB (two passes + a global reduction) is sampled too,
// but less often, since it exercises a different pipeline shape.
var elementWise = []optim.Kind{
	optim.SGD, optim.Momentum, optim.Nesterov, optim.Adagrad,
	optim.RMSProp, optim.Adam, optim.AdamW, optim.AMSGrad, optim.AdamA,
}

func sample(rng *rand.Rand) core.Config {
	cell := []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC}[rng.Intn(4)]
	n := nand.ParamsFor(cell)
	// Same window trick as ssd.DefaultConfig: a small-capacity slice of
	// the drive keeps FTL maps (and preload time) proportionate to the
	// few hundred units actually simulated.
	n.BlocksPerPlane = 64

	sc := ssd.DefaultConfig()
	sc.Nand = n
	sc.Channels = []int{2, 4, 8}[rng.Intn(3)]
	sc.DiesPerChannel = []int{1, 2, 4}[rng.Intn(3)]
	sc.HotColdSeparation = rng.Intn(2) == 0

	opt := elementWise[rng.Intn(len(elementWise))]
	if rng.Intn(8) == 0 {
		opt = optim.LAMB
	}

	model := sampleModel(rng)

	cfg := core.DefaultConfig(model)
	cfg.SSD = sc
	cfg.Link = host.PCIe([]int{3, 4, 5}[rng.Intn(3)], []int{4, 8, 16}[rng.Intn(3)])
	cfg.Optimizer = opt
	cfg.Precision = []optim.Precision{optim.FP32, optim.Mixed16, optim.Q8State}[rng.Intn(3)]
	cfg.Layout = layout.Colocated
	if rng.Intn(5) == 0 {
		cfg.Layout = []layout.Strategy{layout.Linear, layout.SplitByComponent}[rng.Intn(2)]
	}
	cfg.Batch = []int{1, 4, 16}[rng.Intn(3)]
	cfg.MaxSimUnits = []int64{96, 128, 192, 256}[rng.Intn(4)]
	cfg.TransferChunkBytes = []int64{256 << 10, 1 << 20}[rng.Intn(2)]
	cfg.OverlapFraction = rng.Float64()
	cfg.LayerwiseOverlap = rng.Intn(10) == 0
	// Scale the on-die units across a plausible design range.
	cfg.ODP.ClockMHz = []int{200, 400, 800}[rng.Intn(3)]
	cfg.ODP.Lanes = []int{4, 8, 16}[rng.Intn(3)]
	// AdamA folds micro-batch gradients into state; other kinds reject
	// GradAccum > 1 in Validate, so only sample it for AdamA.
	if cfg.Optimizer == optim.AdamA {
		cfg.GradAccum = []int{1, 2, 4, 8}[rng.Intn(4)]
	}
	// Subgroup depth for the interleaved system (ignored by the others).
	cfg.InterleaveDepth = []int{1, 2, 4, 8, 16}[rng.Intn(5)]
	return cfg
}

// sampleModel draws mostly dense transformers log-uniform in [1M, 2B]
// parameters, with an occasional sparse recommender whose step touches a
// small fraction of an embedding-dominated parameter space.
func sampleModel(rng *rand.Rand) dnn.Model {
	if rng.Intn(6) == 0 {
		return dnn.Model{
			Name:           "synth-dlrm",
			Arch:           dnn.Recommender,
			Params:         int64(1e8 * (1 + rng.Float64()*9)), // 100M–1B
			Layers:         8,
			FlopsPerSample: 1e9,
			SparseFraction: []float64{1e-3, 1e-2, 0.1}[rng.Intn(3)],
		}
	}
	// Log-uniform parameter count: params = minParams · 2000^u, spanning
	// one-million-parameter toys to two-billion-parameter models.
	const minParams = 1_000_000
	params := int64(minParams * math.Pow(2000, rng.Float64()))
	return dnn.Model{
		Name:   "synth-gpt",
		Arch:   dnn.Transformer,
		Params: params,
		Layers: 2 + rng.Intn(31),
		Hidden: 1024,
		SeqLen: 512,
	}
}

// windowFits accepts configurations whose simulated window (preloaded
// pages plus one log-structured rewrite of each) occupies at most a third
// of the device's physical pages, so preload cannot overfill any plane and
// GC stays in its steady-state regime.
func windowFits(cfg core.Config) bool {
	windowPages := cfg.SimUnits() * int64(cfg.Comps())
	physical := cfg.SSD.Geometry().TotalPages()
	return windowPages*3 <= physical
}
