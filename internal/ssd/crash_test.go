package ssd

import (
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/sim"
)

// churnWorkload drives a deterministic mixed workload (writes, in-storage
// updates, trims) that forces GC, mirroring contents in a dataPlane
// shadow. It returns the shadow and the expected latest version per lpa.
func churnWorkload(t *testing.T, e *sim.Engine, d *Device, seed int64, drain bool) (*dataPlane, map[int64]uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	plane := newDataPlane()
	d.SetCommitHook(plane.hook)

	n := d.Config().LogicalPages() * 3 / 4
	expected := make(map[int64]uint64)
	version := uint64(0)
	for lpa := int64(0); lpa < n; lpa++ {
		version++
		plane.queue(lpa, version)
		expected[lpa] = version
		d.Preload(lpa)
	}
	for round := 0; round < 4; round++ {
		for _, i := range rng.Perm(int(n)) {
			lpa := int64(i)
			switch rng.Intn(10) {
			case 0:
				d.Trim(lpa)
				delete(expected, lpa)
			case 1, 2:
				if _, ok := expected[lpa]; !ok {
					continue // trimmed; host rewrite below brings it back
				}
				version++
				plane.queue(lpa, version)
				expected[lpa] = version
				d.Write(lpa, nil)
			default:
				if _, ok := expected[lpa]; !ok {
					continue
				}
				version++
				plane.queue(lpa, version)
				expected[lpa] = version
				d.ProgramUpdate(lpa, nil)
			}
		}
		if drain {
			runDrained(t, e, d)
		}
	}
	return plane, expected
}

// TestBoundaryHookContract is the regression test for the hook contract:
// boundaries fire only AFTER the mutation completes, so the FTL must pass
// a full consistency check at every single hook point, under maximal GC
// churn. (The pre-contract hooks fired mid-mutation, where l2p/p2l
// disagree transiently.)
func TestBoundaryHookContract(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	var lastSeq uint64
	kinds := map[BoundaryKind]int{}
	d.SetBoundaryHook(func(b Boundary) {
		if b.Seq != lastSeq+1 {
			t.Fatalf("boundary seq %d after %d", b.Seq, lastSeq)
		}
		lastSeq = b.Seq
		kinds[b.Kind]++
		switch b.Kind {
		case BoundaryErase, BoundaryRetire:
			if b.LPA != -1 {
				t.Fatalf("%v boundary carries lpa %d", b.Kind, b.LPA)
			}
		default:
			if b.LPA < 0 {
				t.Fatalf("%v boundary without lpa", b.Kind)
			}
		}
		if err := d.FTL().CheckConsistent(); err != nil {
			t.Fatalf("inconsistent FTL at boundary %d (%v): %v", b.Seq, b.Kind, err)
		}
	})
	churnWorkload(t, e, d, 17, true)
	for _, k := range []BoundaryKind{BoundaryHostWrite, BoundaryUpdate, BoundaryGC, BoundaryErase, BoundaryTrim} {
		if kinds[k] == 0 {
			t.Fatalf("workload never hit a %v boundary (kinds: %v)", k, kinds)
		}
	}
}

// checkRecovered verifies the crash-consistency invariants between a
// crashed device and its recovery, against the content shadow:
//   - no live-page loss: every lpa mapped at the crash is mapped after
//     replay, to the same physical page;
//   - no resurrection: nothing unmapped at the crash is mapped after;
//   - content identity: the recovered mapping points at the physical page
//     holding the last committed version.
func checkRecovered(t *testing.T, crashed, rec *Device, shadow *dataPlane) {
	t.Helper()
	geo := crashed.Geometry()
	logical := crashed.Config().LogicalPages()
	var mapped int64
	for lpa := int64(0); lpa < logical; lpa++ {
		before, okBefore := crashed.FTL().Lookup(lpa)
		after, okAfter := rec.FTL().Lookup(lpa)
		if okBefore != okAfter {
			t.Fatalf("lpa %d: mapped-before=%v mapped-after=%v", lpa, okBefore, okAfter)
		}
		if !okBefore {
			continue
		}
		mapped++
		if before != after {
			t.Fatalf("lpa %d: moved %v -> %v across recovery", lpa, before, after)
		}
		if _, ok := shadow.store[geo.Linear(after)]; !ok {
			t.Fatalf("lpa %d: recovered mapping %v has no committed content", lpa, after)
		}
	}
	if mapped != rec.MappedPages() {
		t.Fatalf("recovered MappedPages %d, recount %d", rec.MappedPages(), mapped)
	}
}

// TestRecoverFromCleanState crashes a drained device (nothing in flight)
// and checks recovery is lossless and the device remains usable.
func TestRecoverFromCleanState(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	shadow, _ := churnWorkload(t, e, d, 23, true)

	e2 := sim.NewEngine()
	rec, info, err := Recover(e2, d)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornPages != 0 || info.LostDirty != 0 {
		t.Fatalf("clean crash reported torn=%d dirty=%d", info.TornPages, info.LostDirty)
	}
	if info.MappedPages != d.MappedPages() {
		t.Fatalf("recovered %d pages, crashed had %d", info.MappedPages, d.MappedPages())
	}
	checkRecovered(t, d, rec, shadow)
	//simlint:allow floateq recovery must carry the WAF tallies bit-exactly
	if rec.FTL().WAF() != d.FTL().WAF() {
		t.Fatalf("WAF tallies not carried: %v vs %v", rec.FTL().WAF(), d.FTL().WAF())
	}

	// The recovered device must keep working: all frontiers were sealed,
	// so new writes force fresh allocations and eventually GC.
	rec.SetCommitHook(shadow.hook)
	n := rec.Config().LogicalPages() / 2
	for lpa := int64(0); lpa < n; lpa++ {
		shadow.queue(lpa, uint64(1000+lpa))
		rec.Write(lpa, nil)
	}
	runDrained(t, e2, rec)
}

// TestRecoverMidFlight cuts the power at a mid-run op boundary with
// programs in flight and checks torn-write semantics: in-flight programs
// surface as torn pages, mappings survive exactly, dirty cache pages are
// reported lost.
func TestRecoverMidFlight(t *testing.T) {
	// Reference run to count boundaries.
	refEng := sim.NewEngine()
	refDev := NewDevice(refEng, smallConfig())
	total := 0
	refDev.SetBoundaryHook(func(Boundary) { total++ })
	churnWorkload(t, refEng, refDev, 31, true)
	if total < 100 {
		t.Fatalf("churn produced only %d boundaries", total)
	}

	crashAt := total / 2
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.SetBoundaryHook(func(b Boundary) {
		if int(b.Seq) == crashAt {
			e.Stop()
		}
	})
	// Same churn, no intermediate drains (so the crash lands mid-flight);
	// the shadow only records committed content, which is what recovery
	// must reproduce.
	shadow, _ := churnWorkload(t, e, d, 31, false)
	e.Run()

	rec, info, err := Recover(sim.NewEngine(), d)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, d, rec, shadow)
	if info.MappedPages == 0 {
		t.Fatal("nothing recovered from a mid-run crash")
	}
	t.Logf("crash at boundary %d/%d: mapped=%d torn=%d dirty=%d",
		crashAt, total, info.MappedPages, info.TornPages, info.LostDirty)
}

// TestRecoverRejectsMappedBeyondWritePtr pins the mapped ⊆ programmed
// check: a mapping pointing past its block's write pointer (an impossible
// durable state under commit-at-completion) must fail recovery, not be
// silently repaired.
func TestRecoverRejectsMappedBeyondWritePtr(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(0)
	ppa, _ := d.FTL().Lookup(0)
	// Roll the block's physical write pointer back under the mapping.
	d.Die(ppa.Channel, ppa.Die).RestoreBlock(ppa.Plane, ppa.Block, 0, 0)
	if _, _, err := Recover(sim.NewEngine(), d); err == nil {
		t.Fatal("recovery accepted a mapping beyond the write pointer")
	}
}

// TestRecoverAfterDieFailure loses one die and checks its pages are
// dropped (not resurrected), its blocks retired, and the rest intact.
func TestRecoverAfterDieFailure(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	churnWorkload(t, e, d, 41, true)

	lostWant := d.MappedPagesOnDie(0, 0)
	if lostWant == 0 {
		t.Fatal("die 0/0 holds nothing — workload too small")
	}
	rec, info, err := RecoverAfterDieFailure(sim.NewEngine(), d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.LostPages != lostWant {
		t.Fatalf("lost %d pages, want %d", info.LostPages, lostWant)
	}
	if got := rec.MappedPages(); got != d.MappedPages()-lostWant {
		t.Fatalf("recovered %d mapped pages, want %d", got, d.MappedPages()-lostWant)
	}
	if !rec.Die(0, 0).Failed() {
		t.Fatal("failed die not marked")
	}
	geo := rec.Geometry()
	for p := 0; p < geo.PlanesPerDie; p++ {
		planeIdx := geo.PlaneIndex(0, 0, p)
		for b := 0; b < geo.BlocksPerPlane; b++ {
			if !rec.FTL().Retired(planeIdx, b) {
				t.Fatalf("block %d/%d of failed die still in service", planeIdx, b)
			}
		}
	}
	logical := rec.Config().LogicalPages()
	for lpa := int64(0); lpa < logical; lpa++ {
		if ppa, ok := rec.FTL().Lookup(lpa); ok && ppa.Channel == 0 && ppa.Die == 0 {
			t.Fatalf("lpa %d still mapped to the failed die", lpa)
		}
	}
	if _, _, err := RecoverAfterDieFailure(sim.NewEngine(), d, 9, 9); err == nil {
		t.Fatal("out-of-topology die accepted")
	}
}

// TestBlockRetirementRelocatesAndSeals drives ECC exhaustion on one block
// past the retry budget and checks the device retires it: valid pages
// relocated, mapping intact, block permanently out of circulation.
func TestBlockRetirementRelocatesAndSeals(t *testing.T) {
	cfg := smallConfig()
	cfg.Retire = ecc.RetirePolicy{RetryBudget: 6, ProbationReads: 2}
	e := sim.NewEngine()
	d := NewDevice(e, cfg)
	shadow := newDataPlane()
	d.SetCommitHook(shadow.hook)

	n := d.Config().LogicalPages() * 3 / 4
	for lpa := int64(0); lpa < n; lpa++ {
		shadow.queue(lpa, uint64(lpa))
		d.Preload(lpa)
	}
	victim, ok := d.FTL().Lookup(0)
	if !ok {
		t.Fatal("lpa 0 unmapped")
	}
	plane := d.Geometry().PlaneOf(victim)
	residents := d.FTL().ValidLPAs(plane, victim.Block)
	if len(residents) == 0 {
		t.Fatal("victim block empty")
	}

	// One scrub converging after RetryBudget retries retires the block.
	d.InjectReadErrors(0, cfg.Retire.RetryBudget)
	d.ScrubRead(0, nil)
	runDrained(t, e, d)

	s := d.Stats()
	if s.RetiredBlocks != 1 {
		t.Fatalf("retired %d blocks, want 1", s.RetiredBlocks)
	}
	if !d.FTL().Retired(plane, victim.Block) {
		t.Fatal("victim block not marked retired")
	}
	geo := d.Geometry()
	for _, lpa := range residents {
		ppa, ok := d.FTL().Lookup(lpa)
		if !ok {
			t.Fatalf("lpa %d lost in retirement", lpa)
		}
		if geo.PlaneOf(ppa) == plane && ppa.Block == victim.Block {
			t.Fatalf("lpa %d still on the retired block", lpa)
		}
		if got := shadow.store[geo.Linear(ppa)]; got != uint64(lpa) {
			t.Fatalf("lpa %d content %d after retirement, want %d", lpa, got, lpa)
		}
	}

	// Churn afterwards: the retired block must never re-enter circulation.
	// Each round tags its writes with a distinct content stride.
	const roundStride = 1000
	for round := 0; round < 6; round++ {
		for lpa := int64(0); lpa < n; lpa += 2 {
			shadow.queue(lpa, uint64(roundStride*round)+uint64(lpa))
			d.ProgramUpdate(lpa, nil)
		}
		runDrained(t, e, d)
	}
	if !d.FTL().Retired(plane, victim.Block) || d.FTL().ValidCount(plane, victim.Block) != 0 {
		t.Fatal("retired block re-entered circulation")
	}
}

// TestRetirementBelowBudgetDoesNothing pins the complementary boundary:
// retries one below the budget leave the block in service.
func TestRetirementBelowBudgetDoesNothing(t *testing.T) {
	cfg := smallConfig()
	cfg.Retire = ecc.RetirePolicy{RetryBudget: 6, ProbationReads: 2}
	e := sim.NewEngine()
	d := NewDevice(e, cfg)
	n := d.Config().LogicalPages() / 2
	for lpa := int64(0); lpa < n; lpa++ {
		d.Preload(lpa)
	}
	d.InjectReadErrors(0, cfg.Retire.RetryBudget-1)
	d.ScrubRead(0, nil)
	runDrained(t, e, d)
	if got := d.Stats().RetiredBlocks; got != 0 {
		t.Fatalf("retired %d blocks below budget", got)
	}
}

// TestDisabledFaultLayerAddsNoAllocations pins the disabled-path cost of
// the fault seams on the device hot paths: with no boundary hook and no
// retirement policy, both reduce to a nil check and must not allocate.
func TestDisabledFaultLayerAddsNoAllocations(t *testing.T) {
	d := NewDevice(sim.NewEngine(), smallConfig())
	d.Preload(0)
	ppa, _ := d.FTL().Lookup(0)
	per := testing.AllocsPerRun(1000, func() {
		d.boundary(BoundaryHostWrite, 0)
		d.onReadDone(ppa, 0)
	})
	//simlint:allow floateq AllocsPerRun returns a whole count; the pin is exactly zero
	if per != 0 {
		t.Fatalf("disabled fault layer allocates %v per op, want 0", per)
	}
}
