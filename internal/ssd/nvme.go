package ssd

import (
	"fmt"

	"repro/internal/sim"
)

// QueuePair models an NVMe submission/completion queue pair: at most
// `depth` commands are outstanding on the device; submissions beyond that
// wait host-side in FIFO order. Latency-sensitive workloads live or die by
// queue depth — QD1 exposes full device latency per command, deep queues
// let the channel/plane parallelism absorb it.
type QueuePair struct {
	slots     *sim.Resource
	submitted uint64
	completed uint64
}

// NewQueuePair creates a queue pair with the given depth (≥1).
func NewQueuePair(eng *sim.Engine, name string, depth int) *QueuePair {
	if depth < 1 {
		panic(fmt.Sprintf("ssd: queue depth %d", depth))
	}
	return &QueuePair{slots: sim.NewResource(eng, name+"/qd", depth)}
}

// Depth returns the queue depth.
func (q *QueuePair) Depth() int { return q.slots.Capacity() }

// Outstanding returns the commands currently on the device.
func (q *QueuePair) Outstanding() int { return q.slots.InUse() }

// Waiting returns the submissions blocked host-side.
func (q *QueuePair) Waiting() int { return q.slots.QueueLen() }

// Submitted and Completed return lifetime counters.
func (q *QueuePair) Submitted() uint64 { return q.submitted }

// Completed returns the number of finished commands.
func (q *QueuePair) Completed() uint64 { return q.completed }

// Submit enqueues a command. op receives a completion callback it must
// invoke exactly once; done (optional) fires after the slot is released.
func (q *QueuePair) Submit(op func(complete func()), done func()) {
	q.submitted++
	q.slots.Acquire(func(release func()) {
		op(func() {
			q.completed++
			release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization returns the mean occupied fraction of the queue.
func (q *QueuePair) Utilization() float64 { return q.slots.Utilization() }
