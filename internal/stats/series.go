package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one line of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value for the first point with the given x, and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a set of series sharing an x axis — the in-memory form of one
// paper figure. Render produces the rows a reader would extract from the
// plot.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers and returns a named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// xValues returns the sorted union of all x coordinates.
func (f *Figure) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Table converts the figure to a table with one row per x value and one
// column per series.
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), headers...)
	for _, x := range f.xValues() {
		row := []any{formatFloat(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the figure's data table.
func (f *Figure) String() string { return f.Table().String() }

// ASCIIPlot renders a crude monospace plot (log-x aware), useful for eyeball
// checks of figure shape in terminal output. Width/height are in chars.
func (f *Figure) ASCIIPlot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range f.Series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if first {
		return "(empty figure)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte("*+ox#@%&")
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			cx := int((p.X - minX) / (maxX - minX) * float64(width-1))
			cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for _, row := range grid {
		b.WriteString("|" + string(row) + "\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " x: %s [%.3g..%.3g]  y: %s [%.3g..%.3g]\n",
		f.XLabel, minX, maxX, f.YLabel, minY, maxY)
	for si, s := range f.Series {
		fmt.Fprintf(&b, " %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// XRange returns the minimum and maximum x across all series, and whether
// any point exists.
func (f *Figure) XRange() (min, max float64, ok bool) {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !ok {
				min, max, ok = p.X, p.X, true
				continue
			}
			if p.X < min {
				min = p.X
			}
			if p.X > max {
				max = p.X
			}
		}
	}
	return
}
