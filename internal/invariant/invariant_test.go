package invariant

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/optim"
	"repro/internal/runner"
)

// sweepN is the breadth of the main property sweep. The acceptance bar for
// the invariant subsystem is that every registered property holds for all
// four systems across at least 200 generated configurations.
const sweepN = 200

const sweepSeed = 7

func TestConfigsDeterministic(t *testing.T) {
	a := Configs(sweepSeed, 20)
	b := Configs(sweepSeed, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Configs is not deterministic for a fixed seed")
	}
	c := Configs(sweepSeed+1, 20)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("Configs ignores its seed")
	}
	for i, cfg := range a {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
		if !windowFits(cfg) {
			t.Errorf("config %d window overfills the device slice", i)
		}
	}
}

func TestRegistryCoversAllSystems(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range registry {
		if seen[p.Name] {
			t.Errorf("duplicate property name %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, sys := range SystemNames() {
		if n := len(Properties(sys)); n < 3 {
			t.Errorf("system %s has only %d applicable properties", sys, n)
		}
	}
}

// TestSweepAllSystems is the tentpole check: every registered property
// holds for every system across sweepN generated configurations.
func TestSweepAllSystems(t *testing.T) {
	cfgs := Configs(sweepSeed, sweepN)
	type verdict struct {
		violations []string
		events     int64
	}
	results := runner.Map(0, cfgs, func(cfg core.Config) (*verdict, error) {
		v := &verdict{}
		for _, sys := range SystemNames() {
			r, err := Run(sys, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sys, err)
			}
			v.events += int64(r.SimEvents)
			for _, viol := range r.Violations {
				v.violations = append(v.violations, fmt.Sprintf("%s: %s", sys, viol))
			}
		}
		return v, nil
	})
	var bad int
	for i, res := range results {
		if res.Err != nil {
			bad++
			t.Errorf("config %d: run failed: %v\n  cfg: %s", i, res.Err, describe(cfgs[i]))
			continue
		}
		for _, viol := range res.Value.violations {
			bad++
			t.Errorf("config %d: %s\n  cfg: %s", i, viol, describe(cfgs[i]))
		}
		if bad > 25 {
			t.Fatalf("too many violations; stopping early")
		}
	}
}

// describe renders the swept dimensions of a config for failure triage.
func describe(cfg core.Config) string {
	return fmt.Sprintf("%s params=%d frac=%g %s/%s layout=%v ssd=%dch×%ddie cell=%v bus=%dMBps link=%s window=%d chunk=%d lwo=%v",
		cfg.Model.Name, cfg.Model.Params, cfg.Model.UpdateFraction(),
		cfg.Optimizer, cfg.Precision, cfg.Layout,
		cfg.SSD.Channels, cfg.SSD.DiesPerChannel, cfg.SSD.Nand.Cell, cfg.SSD.Nand.BusMBps,
		cfg.Link.Name, cfg.MaxSimUnits, cfg.TransferChunkBytes, cfg.LayerwiseOverlap)
}

func TestDeterminismAcrossSweep(t *testing.T) {
	cfgs := Configs(sweepSeed+11, 12)
	type pair struct {
		sys string
		cfg core.Config
	}
	var jobs []pair
	for _, cfg := range cfgs {
		for _, sys := range SystemNames() {
			jobs = append(jobs, pair{sys, cfg})
		}
	}
	results := runner.Map(0, jobs, func(p pair) (struct{}, error) {
		return struct{}{}, CheckDeterminism(p.sys, p.cfg)
	})
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, res.Err, describe(jobs[i].cfg))
		}
	}
}

func TestResourceMonotonicity(t *testing.T) {
	cfgs := Configs(sweepSeed+23, 8)
	type pair struct {
		sys string
		cfg core.Config
	}
	var jobs []pair
	for _, cfg := range cfgs {
		for _, sys := range SystemNames() {
			jobs = append(jobs, pair{sys, cfg})
		}
	}
	results := runner.Map(0, jobs, func(p pair) ([]MonotonicityViolation, error) {
		return CheckResourceMonotonicity(p.sys, p.cfg)
	})
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, res.Err, describe(jobs[i].cfg))
			continue
		}
		for _, v := range res.Value {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, v, describe(jobs[i].cfg))
		}
	}
}

func TestModelMonotonicity(t *testing.T) {
	cfgs := Configs(sweepSeed+31, 8)
	type pair struct {
		sys string
		cfg core.Config
	}
	var jobs []pair
	for _, cfg := range cfgs {
		for _, sys := range SystemNames() {
			jobs = append(jobs, pair{sys, cfg})
		}
	}
	results := runner.Map(0, jobs, func(p pair) (*MonotonicityViolation, error) {
		return CheckModelMonotonicity(p.sys, p.cfg)
	})
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, res.Err, describe(jobs[i].cfg))
			continue
		}
		if res.Value != nil {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, res.Value, describe(jobs[i].cfg))
		}
	}
}

// busBoundConfig builds a configuration whose optimstore step is limited
// by the channel bus: a narrow 2×1 topology with a deliberately slow bus,
// fast SLC media, a generous link and strong on-die compute.
func busBoundConfig() core.Config {
	cfg := core.DefaultConfig(dnn.Model{
		Name: "synth-gpt", Arch: dnn.Transformer,
		Params: 50_000_000, Layers: 8, Hidden: 1024, SeqLen: 512,
	})
	cfg.SSD.Channels = 2
	cfg.SSD.DiesPerChannel = 1
	n := nand.ParamsFor(nand.SLC) // fast media, so the bus can dominate
	n.BlocksPerPlane = 64
	n.BusMBps = 50
	cfg.SSD.Nand = n
	cfg.Link = host.PCIe(5, 16)
	cfg.Optimizer = optim.Adam
	cfg.Precision = optim.Mixed16
	cfg.Layout = layout.Colocated
	cfg.MaxSimUnits = 192
	cfg.ODP.ClockMHz = 800
	cfg.ODP.Lanes = 16
	return cfg
}

// TestBrokenModelCaught is the registry's negative control: a simulator
// whose channel bus runs twice as fast as the configuration claims (the
// classic unit-conversion bug) must be caught by the roofline sandwich.
// The report is produced by a "broken" device whose bus is 2× the declared
// speed, then audited against the true configuration.
func TestBrokenModelCaught(t *testing.T) {
	trueCfg := busBoundConfig()

	// Sanity: the honest simulator on the honest config is clean, and the
	// bus really is the binding constraint (otherwise the test is vacuous).
	honest, err := Run(OptimStore, trueCfg)
	if err != nil {
		t.Fatalf("honest run: %v", err)
	}
	if len(honest.Violations) > 0 {
		t.Fatalf("honest run not clean: %v", honest.Violations)
	}
	rf, _ := core.RooflineFor(OptimStore, trueCfg)
	if rf.Binding() != "bus" {
		t.Fatalf("config not bus-bound (binding=%s); negative test is vacuous", rf.Binding())
	}

	// The broken simulator: identical in every respect except its bus
	// moves bytes twice as fast as the configuration says it should.
	brokenCfg := trueCfg
	brokenCfg.SSD.Nand.BusMBps *= 2
	sys, err := core.NewSystem(OptimStore, brokenCfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	violations := Check(OptimStore, trueCfg, report)
	found := false
	for _, v := range violations {
		if strings.HasPrefix(v, "roofline-sandwich:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("halved bus time escaped the roofline sandwich; violations: %v", violations)
	}
}

// TestSerializationCaught is the mirror-image negative control: a report
// claiming a step far above the sandwich ceiling (an accidental
// serialization) must also be flagged.
func TestSerializationCaught(t *testing.T) {
	cfg := busBoundConfig()
	r, err := Run(OptimStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) > 0 {
		t.Fatalf("clean run expected, got %v", r.Violations)
	}
	r.OptStepTime *= 100
	violations := Check(OptimStore, cfg, r)
	found := false
	for _, v := range violations {
		if strings.HasPrefix(v, "roofline-sandwich:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("100× inflated step escaped the roofline sandwich; violations: %v", violations)
	}
}

// TestAuditRecordsOnReport verifies Audit writes violations onto the
// report so sweep tables and run summaries can surface them.
func TestAuditRecordsOnReport(t *testing.T) {
	cfg := busBoundConfig()
	r, err := Run(OptimStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Violations = nil
	r.OptStepTime = 0 // structural breakage: report-sane must fire
	got := Audit(OptimStore, cfg, r)
	if len(got) == 0 || len(r.Violations) == 0 {
		t.Fatalf("Audit did not record violations: ret=%v field=%v", got, r.Violations)
	}
	if r.InvariantViolations()[0] != r.Violations[0] {
		t.Fatalf("InvariantViolations accessor out of sync")
	}
}
