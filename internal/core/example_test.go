package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/optim"
	"repro/internal/units"
)

// Example runs the headline comparison on a small simulation window: the
// in-storage system versus the host-offload baseline for GPT-13B.
func Example() {
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 256

	offload, err := core.NewHostOffload(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	optimstore, err := core.NewOptimStore(cfg).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCIe traffic: offload %d GB, in-storage %d GB\n",
		units.Bytes(offload.PCIeBytes)/units.GB, units.Bytes(optimstore.PCIeBytes)/units.GB)
	fmt.Printf("in-storage wins on the optimizer step: %v\n",
		optimstore.OptStepTime < offload.OptStepTime)
	// Output:
	// PCIe traffic: offload 312 GB, in-storage 52 GB
	// in-storage wins on the optimizer step: true
}

// ExampleVerifyPagedEquivalence demonstrates the numerical claim behind
// on-die execution.
func ExampleVerifyPagedEquivalence() {
	err := core.VerifyPagedEquivalence(optim.SGD, optim.Hyper{LR: 0.01}, 1024, 64, 5, 42)
	fmt.Println("paged == monolithic:", err == nil)
	// Output:
	// paged == monolithic: true
}
