package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/units"
)

// GPUResident is the no-offload reference: weights, gradients and
// optimizer state all live in GPU memory and the update is a single
// HBM-bandwidth-bound kernel. It is the fastest design whenever it fits —
// the reproduction's point is the crossover once state exceeds device
// memory. Evaluated analytically (no event simulation needed: a single
// device-local streaming kernel).
type GPUResident struct {
	cfg Config
}

// NewGPUResident builds the reference for a configuration.
func NewGPUResident(cfg Config) *GPUResident { return &GPUResident{cfg: cfg} }

// Name implements System.
func (s *GPUResident) Name() string { return "gpu-resident" }

// TrainingBytesPerParam is the standard mixed-precision training footprint
// accounting (Rajbhandari et al.): FP16 weights (2) + FP16 gradients (2)
// + FP32 master weights, momentum and variance (12) = 16 bytes/param for
// Adam-family optimizers; fewer state words shrink it accordingly.
// Fractional because quantized state carries amortised block scales.
func (s *GPUResident) TrainingBytesPerParam() float64 {
	spec := s.cfg.Spec()
	return float64(spec.GradBytes+spec.WeightOutBytes) + spec.ResidentBytes()
}

// Run implements System.
func (s *GPUResident) Run() (*Report, error) {
	cfg := s.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := cfg.Model.Params
	spec := cfg.Spec()
	kernel := kernelFor(cfg)

	r := &Report{
		System:     s.Name(),
		Model:      cfg.Model.Name,
		Optimizer:  cfg.Optimizer.String(),
		Precision:  cfg.Precision.String(),
		Params:     params,
		TotalUnits: cfg.TotalUnits(),
	}

	// Feasibility: training footprint plus a 20% activation/workspace
	// allowance must fit device memory.
	needBytes := s.TrainingBytesPerParam() * float64(params) * 1.2
	haveBytes := cfg.GPU.MemoryGB * units.BytesPerGB
	if needBytes > haveBytes {
		r.Feasible = false
		r.Notes = fmt.Sprintf("needs %.1f GB, GPU has %.0f GB", needBytes/units.BytesPerGB, cfg.GPU.MemoryGB)
		r.CheckpointPolicy = cfg.Checkpoint.String()
		return r, nil
	}
	r.Feasible = true

	// The fused update kernel streams state once in, once out, reads
	// gradients, writes working weights — over the parameters this step
	// touches (sparse models touch a small fraction).
	touched := float64(params) * cfg.Model.UpdateFraction()
	hbmBytes := touched * (2*spec.ResidentBytes() + float64(spec.GradBytes+spec.WeightOutBytes))
	flops := touched * float64(kernel.FlopsPerElem)
	r.OptStepTime = cfg.GPU.KernelTime(flops, hbmBytes)
	r.SimTime = r.OptStepTime
	r.SimUnits = r.TotalUnits
	r.HBMBytes = int64(hbmBytes)
	r.WAF = 1
	// Analytic system: no event engine, so the single fused-kernel phase
	// is emitted as one synthetic span covering the whole step.
	if cfg.Trace != nil {
		cfg.Trace.Span(phaseTrack, "update", 0, r.OptStepTime)
	}

	evalEnergy(r, energy.Activity{
		HBMBytes: hbmBytes,
		GPUOps:   flops,
	})
	cfg.endToEnd(r)
	// Sanity: the reference never reports a zero step.
	if r.OptStepTime <= 0 {
		r.OptStepTime = sim.Time(1)
	}
	accountFaultsAnalytic(cfg, r, int64(s.TrainingBytesPerParam()*float64(params)))
	return r, nil
}
