// Package fault is the deterministic, seed-driven fault-injection layer:
// it generates schedules of power-loss, die-failure, and ECC-exhaustion
// events (Schedule), arms them as first-class simulation events against a
// device (Injector), enumerates crash points at every FTL op boundary
// (EnumerateCrashPoints), and prices the checkpoint/restore policies the
// faults make necessary (Costs).
//
// Event taxonomy and semantics:
//
//   - PowerLoss: DRAM contents (write cache, in-flight state) vanish; the
//     NAND array and the committed mapping survive. The injector records
//     the blast radius (dirty pages, simulation time); recovery replays
//     the durable map (ssd.Recover) and restores optimizer state from the
//     last checkpoint.
//   - DieFailure: one die goes offline with everything on it. Mapped pages
//     on the die are lost and must be restored from a checkpoint
//     (ssd.RecoverAfterDieFailure retires its blocks).
//   - ECCExhaust: a read of one page comes back uncorrectable repeatedly,
//     burning read-retry budget. Unlike the terminal kinds this is a live,
//     run-surviving fault: the injector forces a burst of uncorrectable
//     reads through a patrol scrub, and the device absorbs the latency and
//     (past the retry budget) retires the block.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/units"
)

// Kind classifies a fault event.
type Kind uint8

// Fault kinds.
const (
	PowerLoss Kind = iota
	DieFailure
	ECCExhaust
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PowerLoss:
		return "power-loss"
	case DieFailure:
		return "die-failure"
	case ECCExhaust:
		return "ecc-exhaust"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault. Pick is a deterministic victim selector
// drawn with the event: the injector reduces it modulo the population at
// firing time (dies for DieFailure, mapped pages for ECCExhaust), so the
// schedule is independent of device state while the victim is not.
type Event struct {
	Kind Kind
	At   sim.Time
	Pick int64
}

// Plan is a fault schedule, sorted by time.
type Plan []Event

// Policy selects how optimizer state is checkpointed for recovery.
type Policy uint8

// Checkpoint policies (ROADMAP item 5).
const (
	// CheckpointNone keeps no device-side checkpoint: recovery re-streams
	// optimizer state from the host's master copy.
	CheckpointNone Policy = iota
	// CheckpointInPlace snapshots optimizer state die-internally (ODP
	// copyback into reserved blocks): cheap to take and to restore, but
	// a die failure takes the die's checkpoint shard down with it.
	CheckpointInPlace
	// CheckpointHostPull streams optimizer state out over the host link:
	// expensive to take, but recovery survives any single-device loss.
	CheckpointHostPull
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case CheckpointNone:
		return "none"
	case CheckpointInPlace:
		return "inplace"
	case CheckpointHostPull:
		return "hostpull"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy parses a -checkpoint flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return CheckpointNone, nil
	case "inplace", "in-place", "odp":
		return CheckpointInPlace, nil
	case "hostpull", "host-pull", "host":
		return CheckpointHostPull, nil
	}
	return CheckpointNone, fmt.Errorf("fault: unknown checkpoint policy %q (none|inplace|hostpull)", s)
}

// Spec is the scalar, flag- and config-friendly description of a fault
// storm: a seed plus per-kind Poisson rates over a time window. The zero
// value disables injection entirely.
type Spec struct {
	Seed            int64
	PowerLossPerSec float64
	DieFailPerSec   float64
	ECCPerSec       float64
	StartMs         float64 // window start, milliseconds of sim time
	HorizonMs       float64 // window end (exclusive)
}

// Enabled reports whether the spec schedules anything.
func (s Spec) Enabled() bool {
	return (s.PowerLossPerSec > 0 || s.DieFailPerSec > 0 || s.ECCPerSec > 0) &&
		s.HorizonMs > s.StartMs
}

// Validate reports the first structural problem.
func (s Spec) Validate() error {
	if s.PowerLossPerSec < 0 || s.DieFailPerSec < 0 || s.ECCPerSec < 0 {
		return fmt.Errorf("fault: negative rate in %+v", s)
	}
	if s.StartMs < 0 || s.HorizonMs < 0 {
		return fmt.Errorf("fault: negative window in %+v", s)
	}
	if (s.PowerLossPerSec > 0 || s.DieFailPerSec > 0 || s.ECCPerSec > 0) && s.HorizonMs <= s.StartMs {
		return fmt.Errorf("fault: positive rates but empty window [%vms, %vms)", s.StartMs, s.HorizonMs)
	}
	return nil
}

// Rates converts the spec's scalar window to simulation units.
func (s Spec) Rates() Rates {
	return Rates{
		PowerLossPerSec: s.PowerLossPerSec,
		DieFailPerSec:   s.DieFailPerSec,
		ECCPerSec:       s.ECCPerSec,
		Start:           units.Millis(s.StartMs),
		Horizon:         units.Millis(s.HorizonMs),
	}
}

// Plan generates the spec's fault schedule.
func (s Spec) Plan() Plan { return Schedule(s.Seed, s.Rates()) }

// ParseSpec parses a -fault flag value of the form
//
//	seed=1,pl=2,df=1,ecc=50,start=0,horizon=100
//
// where pl/df/ecc are events per second of simulated time and
// start/horizon bound the window in milliseconds. Omitted keys default to
// zero; an empty string is the disabled spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: spec field %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: spec field %q: %v", kv, err)
		}
		switch strings.ToLower(k) {
		case "seed":
			spec.Seed = int64(f)
		case "pl", "powerloss":
			spec.PowerLossPerSec = f
		case "df", "diefail":
			spec.DieFailPerSec = f
		case "ecc":
			spec.ECCPerSec = f
		case "start":
			spec.StartMs = f
		case "horizon":
			spec.HorizonMs = f
		default:
			return Spec{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
