// Package a is the callee side of the callgraph testdata tree.
package a

// Doer is dispatched through an interface in Root.
type Doer interface {
	Do(x int)
}

// Impl satisfies Doer.
type Impl struct{}

// Do is the concrete method behind the interface edge.
func (Impl) Do(x int) {
	Leaf()
}

// Root calls statically and through an interface.
func Root(d Doer) {
	d.Do(1)
	Leaf()
}

// Leaf terminates every chain.
func Leaf() {}

// ViaValue calls through a function value: a sink, no edge.
func ViaValue(f func()) {
	f()
}
