package ssd

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Stats is a snapshot of device activity counters.
type Stats struct {
	HostReads       uint64 // external page reads completed
	HostWrites      uint64 // external page writes completed
	UpdateReads     uint64 // in-storage array reads (no bus)
	UpdateWrites    uint64 // in-storage array programs (no bus)
	GCRelocations   uint64 // valid pages moved by GC
	GCStalePrograms uint64 // relocation programs superseded before commit
	GCErases        uint64 // blocks erased by GC
	RecoveredErrors uint64 // uncorrectable reads recovered by read-retry
	ScrubReads      uint64 // internal media-health patrol reads
	CacheHits       uint64 // reads served from the DRAM write cache
	RetiredBlocks   int    // blocks permanently taken out of service
	WAF             float64
}

// Device is the SSD controller: it owns the NAND channels, the FTL, the
// DRAM write cache, and garbage collection. All I/O methods are
// asynchronous (callback on completion) and run on the shared sim.Engine.
//
// Two families of operations exist:
//
//   - the external path (Read/Write): NVMe command overhead, DRAM cache,
//     channel-bus transfers — what a host-offload baseline uses;
//   - the internal path (ReadMapped/ProgramUpdate): array-only operations
//     used by in-storage compute, which never touch the channel bus.
type Device struct {
	eng      *sim.Engine
	cfg      Config
	geo      Geometry
	channels []*nand.Channel
	ftl      *FTL

	cacheSlots *sim.Resource
	planeFor   func(lpa int64) int

	gcActive      []bool
	planeInflight []int      // permits issued but not yet allocated, per plane
	pending       [][]func() // writers waiting for reclaimable space, per plane

	// dirty counts cache-resident (not yet flushed) copies per logical
	// page: reads of these are served from DRAM.
	dirty     map[int64]int
	cacheHits uint64

	// Failure injection: pending uncorrectable-read counts per logical
	// page, consumed by read-retry recovery.
	injectedReadErrs map[int64]int
	recoveredErrors  uint64

	// retire, when non-nil, tracks per-block retry budgets and drives
	// block retirement (cfg.Retire). Nil when the policy is disabled —
	// the hot read path stays a single pointer check.
	retire     *ecc.RetireTracker
	scrubReads uint64

	// boundaryHook, when non-nil, fires after every FTL op boundary (see
	// Boundary). Nil in production runs — the crash harness installs it.
	boundaryHook func(Boundary)
	boundarySeq  uint64

	// commitHook, when set, observes every mapping commit — the data-plane
	// shadow integration tests use to verify content integrity across GC
	// and log-structured remapping. oldLin is -1 for first writes.
	commitHook func(lpa, oldLin, newLin int64, gc bool)

	outstanding  int
	drainWaiters []func()

	hostReads, hostWrites     uint64
	updateReads, updateWrites uint64
	gcRelocations, gcErases   uint64
	gcStale                   uint64
}

// NewDevice builds a device; invalid configuration panics at construction.
func NewDevice(eng *sim.Engine, cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	geo := cfg.Geometry()
	d := &Device{
		eng:           eng,
		cfg:           cfg,
		geo:           geo,
		ftl:           NewFTL(geo, cfg.LogicalPages()),
		cacheSlots:    sim.NewResource(eng, "ssd/cache", cfg.CachePages),
		gcActive:      make([]bool, geo.Planes()),
		planeInflight: make([]int, geo.Planes()),
		pending:       make([][]func(), geo.Planes()),
		dirty:         make(map[int64]int),
	}
	d.planeFor = func(lpa int64) int { return int(lpa % int64(geo.Planes())) }
	if cfg.Retire.Enabled() {
		d.retire = ecc.NewRetireTracker(cfg.Retire)
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		d.channels = append(d.channels,
			nand.NewChannel(eng, fmt.Sprintf("ch%d", ch), cfg.Nand, cfg.DiesPerChannel))
	}
	return d
}

// Engine returns the simulation engine the device runs on.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// FTL exposes the translation layer (read-only use expected).
func (d *Device) FTL() *FTL { return d.ftl }

// Channel returns channel ch.
func (d *Device) Channel(ch int) *nand.Channel { return d.channels[ch] }

// Die returns the die at (ch, die).
func (d *Device) Die(ch, die int) *nand.Die { return d.channels[ch].Die(die) }

// SetCommitHook installs an observer invoked synchronously at every
// mapping commit (host write, in-storage update, GC relocation, preload).
// Tests use it to mirror page contents across physical moves.
func (d *Device) SetCommitHook(fn func(lpa, oldLin, newLin int64, gc bool)) {
	d.commitHook = fn
}

// commit binds lpa to ppa and notifies the hook with the displaced
// physical page.
func (d *Device) commit(lpa int64, ppa PPA, gc bool) {
	oldLin := int64(-1)
	if old, ok := d.ftl.Lookup(lpa); ok {
		oldLin = d.geo.Linear(old)
	}
	d.ftl.CommitWrite(lpa, ppa, gc)
	if d.commitHook != nil {
		d.commitHook(lpa, oldLin, d.geo.Linear(ppa), gc)
	}
}

// SetPlaneMapper replaces the logical-page → plane placement function used
// for first writes (the layout engine provides these). Existing mappings
// are unaffected; pages stay in their plane across updates.
func (d *Device) SetPlaneMapper(fn func(lpa int64) int) { d.planeFor = fn }

// PlaneOf returns the plane a logical page is (or would be) placed on.
func (d *Device) PlaneOf(lpa int64) int {
	if ppa, ok := d.ftl.Lookup(lpa); ok {
		return d.geo.PlaneOf(ppa)
	}
	return d.planeFor(lpa)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		HostReads:       d.hostReads,
		HostWrites:      d.hostWrites,
		UpdateReads:     d.updateReads,
		UpdateWrites:    d.updateWrites,
		GCRelocations:   d.gcRelocations,
		GCStalePrograms: d.gcStale,
		GCErases:        d.gcErases,
		RecoveredErrors: d.recoveredErrors,
		ScrubReads:      d.scrubReads,
		CacheHits:       d.cacheHits,
		RetiredBlocks:   d.ftl.RetiredBlocks(),
		WAF:             d.ftl.WAF(),
	}
}

// MaxEraseCount returns the highest per-block P/E count on the device.
func (d *Device) MaxEraseCount() int {
	max := 0
	for _, ch := range d.channels {
		for _, die := range ch.Dies() {
			if n := die.MaxEraseCount(); n > max {
				max = n
			}
		}
	}
	return max
}

// Counts aggregates NAND operation tallies across all dies.
func (d *Device) Counts() nand.OpCounts {
	var total nand.OpCounts
	for _, ch := range d.channels {
		total.Add(ch.Counts())
	}
	return total
}

func (d *Device) opStart() { d.outstanding++ }

func (d *Device) opDone() {
	d.outstanding--
	if d.outstanding < 0 {
		panic("ssd: outstanding below zero")
	}
	if d.outstanding == 0 {
		waiters := d.drainWaiters
		d.drainWaiters = nil
		for _, w := range waiters {
			w()
		}
	}
}

// Drain invokes done once every outstanding operation (including GC)
// completes.
func (d *Device) Drain(done func()) {
	if d.outstanding == 0 {
		done()
		return
	}
	d.drainWaiters = append(d.drainWaiters, done)
}

// Preload installs a mapping for lpa without consuming simulated time,
// modelling a pre-conditioned drive. Used by harnesses to set up steady
// state before measurement.
func (d *Device) Preload(lpa int64) {
	plane := d.planeFor(lpa)
	if !d.ftl.CanAlloc(plane) {
		panic(fmt.Sprintf("ssd: preload exhausted plane %d", plane))
	}
	ppa := d.ftl.AllocPage(plane)
	d.commit(lpa, ppa, false)
	d.Die(ppa.Channel, ppa.Die).MarkProgrammed(ppa.Addr)
}

// hostCanWrite reports whether a new allocation on the plane can be
// permitted while keeping one full block in reserve for GC relocation.
func (d *Device) hostCanWrite(plane int) bool {
	reserve := d.geo.PagesPerBlock // one block for GC
	return d.ftl.AvailablePages(plane)-d.planeInflight[plane] > reserve
}

// whenWritable runs fn now if the plane has safe allocation headroom, or
// queues it until GC reclaims space. fn holds one in-flight permit, which
// transfers to the allocation it will perform.
func (d *Device) whenWritable(plane int, fn func()) {
	if d.hostCanWrite(plane) && len(d.pending[plane]) == 0 {
		d.planeInflight[plane]++
		fn()
		return
	}
	d.pending[plane] = append(d.pending[plane], fn)
	d.maybeGC(plane)
}

func (d *Device) drainPending(plane int) {
	for len(d.pending[plane]) > 0 && d.hostCanWrite(plane) {
		fn := d.pending[plane][0]
		d.pending[plane] = d.pending[plane][1:]
		d.planeInflight[plane]++
		fn()
	}
}

// Read performs an external page read of lpa: NVMe command overhead, array
// read, channel-bus transfer out. Reading an unmapped page panics (the
// harness always writes before reading).
func (d *Device) Read(lpa int64, done func()) {
	d.opStart()
	d.eng.Schedule(d.cfg.CmdLatency, func() {
		// Cache-resident dirty data is served from DRAM — the freshest copy
		// is not on NAND yet.
		if d.dirty[lpa] > 0 {
			d.eng.Schedule(d.cfg.DRAMPageLatency, func() {
				d.cacheHits++
				d.hostReads++
				d.opDone()
				if done != nil {
					done()
				}
			})
			return
		}
		ppa, ok := d.ftl.Lookup(lpa)
		if !ok {
			panic(fmt.Sprintf("ssd: read of unmapped lpa %d", lpa))
		}
		d.arrayReadRecovered(lpa, ppa, func() {
			d.channels[ppa.Channel].TransferOut(ppa.Die, d.geo.PageSize, func() {
				d.hostReads++
				d.opDone()
				if done != nil {
					done()
				}
			})
		})
	})
}

// Write performs an external page write of lpa through the DRAM cache:
// done fires when the page is absorbed in DRAM (host completion); the
// NAND program continues in the background with backpressure via the
// cache slot pool.
func (d *Device) Write(lpa int64, done func()) {
	d.opStart()
	d.eng.Schedule(d.cfg.CmdLatency, func() {
		d.cacheSlots.Acquire(func(release func()) {
			d.eng.Schedule(d.cfg.DRAMPageLatency, func() {
				d.dirty[lpa]++
				if done != nil {
					done()
				}
				plane := d.planeFor(lpa)
				d.whenWritable(plane, func() { d.flush(lpa, plane, release) })
			})
		})
	})
}

// flush moves one cached page to NAND: bus transfer to the die, then
// allocate-and-program (adjacent, to keep plane write pointers coherent).
// The mapping commits at program COMPLETION, not issue: a crash while the
// program is in flight leaves the prior mapping intact and the partially
// programmed page as unmapped garbage (torn-write semantics — the RAM L2P
// is exactly the durable map).
func (d *Device) flush(lpa int64, plane int, release func()) {
	ch, die, _ := d.geo.PlaneLoc(plane)
	chan_ := d.channels[ch]
	chan_.TransferIn(die, d.geo.PageSize, func() {
		ppa := d.ftl.AllocPage(plane)
		d.planeInflight[plane]--
		d.ftl.BeginProgram(ppa)
		chan_.Die(die).Program(ppa.Addr, func() {
			d.ftl.EndProgram(ppa)
			// Commit before clearing dirty so a read never sees a window
			// where the page is neither cached nor mapped.
			d.commit(lpa, ppa, false)
			d.hostWrites++
			if d.dirty[lpa] > 1 {
				d.dirty[lpa]--
			} else {
				delete(d.dirty, lpa)
			}
			d.boundary(BoundaryHostWrite, lpa)
			release()
			d.maybeGC(plane)
			d.opDone()
		})
	})
}

// Trim invalidates a logical page.
func (d *Device) Trim(lpa int64) {
	_, mapped := d.ftl.Lookup(lpa)
	d.ftl.Invalidate(lpa)
	if mapped {
		d.boundary(BoundaryTrim, lpa)
	}
}

// ReadMapped performs an internal array read (no bus transfer) of the page
// currently backing lpa — the first phase of an in-storage update.
func (d *Device) ReadMapped(lpa int64, done func()) {
	ppa, ok := d.ftl.Lookup(lpa)
	if !ok {
		panic(fmt.Sprintf("ssd: internal read of unmapped lpa %d", lpa))
	}
	d.opStart()
	d.updateReads++
	d.arrayReadRecovered(lpa, ppa, func() {
		d.opDone()
		if done != nil {
			done()
		}
	})
}

// InjectReadErrors arranges for the next n reads of lpa to come back
// uncorrectable, forcing read-retry recovery. Failure-injection hook for
// tests and reliability studies.
func (d *Device) InjectReadErrors(lpa int64, n int) {
	if d.injectedReadErrs == nil {
		d.injectedReadErrs = map[int64]int{}
	}
	d.injectedReadErrs[lpa] += n
}

// readRetryFactor is the array-time multiple one read-retry recovery pass
// costs (threshold-shifted re-reads until ECC converges).
const readRetryFactor = 3

// arrayReadRecovered performs the array read of lpa's page, transparently
// absorbing injected uncorrectable errors with read-retry: each pending
// error costs an extra readRetryFactor × tR of plane time.
func (d *Device) arrayReadRecovered(lpa int64, ppa PPA, done func()) {
	d.arrayReadRetried(lpa, ppa, 0, done)
}

func (d *Device) arrayReadRetried(lpa int64, ppa PPA, retries int, done func()) {
	die := d.Die(ppa.Channel, ppa.Die)
	die.Read(ppa.Addr, func() {
		if d.injectedReadErrs[lpa] > 0 {
			d.injectedReadErrs[lpa]--
			d.recoveredErrors++
			retry := readRetryFactor * d.cfg.Nand.ReadLatency
			// Occupy the plane for the recovery passes, then re-check (in
			// case more errors were injected).
			die.Occupy(ppa.Addr, retry, func() {
				d.arrayReadRetried(lpa, ppa, retries+1, done)
			})
			return
		}
		d.onReadDone(ppa, retries)
		done()
	})
}

// onReadDone feeds the block-retirement tracker after a read converges,
// retiring the block when its cumulative retry budget is exhausted. Nil
// tracker (retirement disabled) keeps this a single branch.
func (d *Device) onReadDone(ppa PPA, retries int) {
	if d.retire == nil {
		return
	}
	plane := d.geo.PlaneOf(ppa)
	if d.retire.OnRead(d.geo.BlockIndex(ppa), retries) == ecc.BlockRetired &&
		!d.ftl.Retired(plane, ppa.Block) {
		d.retireBlock(plane, ppa.Block)
	}
}

// ProgramUpdate programs updated data for lpa into a fresh page in the
// same plane as its current mapping (array program only — the data comes
// from the on-die compute unit's buffer) and remaps the page. The old page
// becomes garbage for GC to reclaim.
func (d *Device) ProgramUpdate(lpa int64, done func()) {
	old, ok := d.ftl.Lookup(lpa)
	if !ok {
		panic(fmt.Sprintf("ssd: update of unmapped lpa %d", lpa))
	}
	plane := d.geo.PlaneOf(old)
	d.opStart()
	d.whenWritable(plane, func() {
		ppa := d.ftl.AllocPage(plane)
		d.planeInflight[plane]--
		d.ftl.BeginProgram(ppa)
		d.Die(ppa.Channel, ppa.Die).Program(ppa.Addr, func() {
			// Commit at completion — see flush for the torn-write contract.
			d.ftl.EndProgram(ppa)
			d.commit(lpa, ppa, false)
			d.updateWrites++
			d.boundary(BoundaryUpdate, lpa)
			d.maybeGC(plane)
			d.opDone()
			if done != nil {
				done()
			}
		})
	})
}

// TransferToDie models moving n bytes from the controller to a die's
// compute buffer over the channel bus (gradient delivery).
func (d *Device) TransferToDie(ch, die, n int, done func()) {
	d.opStart()
	d.channels[ch].TransferIn(die, n, func() {
		d.opDone()
		if done != nil {
			done()
		}
	})
}

// TransferFromDie models moving n bytes from a die's compute buffer to the
// controller over the channel bus (low-precision weights out).
func (d *Device) TransferFromDie(ch, die, n int, done func()) {
	d.opStart()
	d.channels[ch].TransferOut(die, n, func() {
		d.opDone()
		if done != nil {
			done()
		}
	})
}
