package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/odp"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// OptimStore is the paper's system: gradients stream to the SSD, each NAND
// die's processing unit reads the co-located weight/state pages from its
// planes, executes the optimizer kernel, programs the updated pages back
// (log-structured, same plane), and returns working-precision weights.
// Only gradients and low-precision weights ever cross the channel bus and
// PCIe; the bulk read-modify-write runs at aggregate plane bandwidth.
type OptimStore struct {
	cfg Config
}

// NewOptimStore builds the system for a configuration.
func NewOptimStore(cfg Config) *OptimStore { return &OptimStore{cfg: cfg} }

// Name implements System.
func (s *OptimStore) Name() string { return "optimstore" }

// Run implements System.
func (s *OptimStore) Run() (*Report, error) {
	cfg := s.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	if cfg.Trace != nil {
		eng.SetTracer(cfg.Trace)
	}
	dev := ssd.NewDevice(eng, cfg.SSD)
	geo := dev.Geometry()
	link := host.NewLink(eng, cfg.Link)

	simUnits := cfg.SimUnits()
	comps := cfg.Comps()
	lay, err := layout.New(geo, comps, simUnits, cfg.Layout)
	if err != nil {
		return nil, err
	}
	if lay.LogicalPages() > dev.FTL().LogicalPages() {
		return nil, fmt.Errorf("core: window of %d pages exceeds device logical capacity %d — lower MaxSimUnits",
			lay.LogicalPages(), dev.FTL().LogicalPages())
	}
	dev.SetPlaneMapper(lay.PlaneMapper())
	for lpa := int64(0); lpa < lay.LogicalPages(); lpa++ {
		dev.Preload(lpa)
	}
	inj := armFaults(eng, dev, cfg)

	// One compute unit per die.
	units := make([][]*odp.Unit, cfg.SSD.Channels)
	for ch := range units {
		units[ch] = make([]*odp.Unit, cfg.SSD.DiesPerChannel)
		for die := range units[ch] {
			units[ch][die] = odp.NewUnit(eng, fmt.Sprintf("ch%d/die%d", ch, die), cfg.ODP)
		}
	}

	kernel := kernelFor(cfg)
	elems := cfg.ElemsPerPage()
	gradB := cfg.GradBytesPerUnit()
	woutB := cfg.WeightOutBytesPerUnit()
	pageSize := geo.PageSize

	// Inbound gradient stream: chunked PCIe transfers; units wait on their
	// chunk's arrival.
	unitsPerChunk := cfg.TransferChunkBytes / gradB
	if unitsPerChunk < 1 {
		unitsPerChunk = 1
	}
	nChunks := (simUnits + unitsPerChunk - 1) / unitsPerChunk
	arrived := scheduleGradArrivals(eng, link.ToDevice, gradSchedule(cfg, nChunks), simUnits, unitsPerChunk, gradB)

	var endTime sim.Time
	finished := false
	outbound := newOutBatcher(cfg.TransferChunkBytes,
		link.FromDevice,
		func() {
			dev.Drain(func() {
				disarmFaults(inj)
				endTime = eng.Now()
				finished = true
			})
		})

	// Admission window: enough units in flight to keep every plane's read/
	// program pipeline full, few enough that reads do not flood the plane
	// queues ahead of programs.
	// Admission window: ~4 units in flight per plane-slot a unit occupies,
	// so planes stay pipelined regardless of how many pages a unit has
	// (SGD's single-page units need a 3× deeper window than Adam's).
	inflightCap := int64(4 * geo.Planes() / comps)
	if min := int64(4 * geo.Dies()); inflightCap < min {
		inflightCap = min
	}
	var next, completed int64
	unitDone := func() {
		completed++
		if completed == simUnits {
			outbound.close()
		}
	}
	var launch func()
	startUnit := func(u int64) {
		place := lay.Placement(u)
		odpU := units[place.HomeChannel][place.HomeDie]

		readAll := func(done func()) {
			c := sim.NewCounter(comps, span(eng, "read", done))
			for comp := 0; comp < comps; comp++ {
				lpa := lay.LPA(u, comp)
				compPlane := place.Planes[comp]
				rch, rdie, _ := geo.PlaneLoc(compPlane)
				if rch == place.HomeChannel && rdie == place.HomeDie {
					dev.ReadMapped(lpa, c.Done)
					continue
				}
				// Mis-laid-out component: page must travel remote die →
				// controller → home die over the channel buses.
				sim.Chain(c.Done,
					func(next func()) { dev.ReadMapped(lpa, next) },
					func(next func()) { dev.TransferFromDie(rch, rdie, pageSize, next) },
					func(next func()) {
						dev.TransferToDie(place.HomeChannel, place.HomeDie, pageSize, next)
					},
				)
			}
		}
		// Phase 3: program updated pages (remote components travel back).
		programAll := func(done func()) {
			c := sim.NewCounter(comps, span(eng, "program", done))
			for comp := 0; comp < comps; comp++ {
				lpa := lay.LPA(u, comp)
				compPlane := place.Planes[comp]
				rch, rdie, _ := geo.PlaneLoc(compPlane)
				if rch == place.HomeChannel && rdie == place.HomeDie {
					dev.ProgramUpdate(lpa, c.Done)
					continue
				}
				sim.Chain(c.Done,
					func(next func()) {
						dev.TransferFromDie(place.HomeChannel, place.HomeDie, pageSize, next)
					},
					func(next func()) { dev.TransferToDie(rch, rdie, pageSize, next) },
					func(next func()) { dev.ProgramUpdate(lpa, next) },
				)
			}
		}

		finish := func() {
			dev.TransferFromDie(place.HomeChannel, place.HomeDie, int(woutB), span(eng, "writeback", func() {
				outbound.add(woutB)
				unitDone()
				launch()
			}))
		}

		// Phase 2: kernel execution, one or two passes.
		compute := func() {
			if cfg.ComputeHook != nil {
				cfg.ComputeHook(u)
			}
			if kernel.ReadPasses == 1 {
				odpU.Exec(elems, kernel.FlopsPerElem, span(eng, "kernel", func() { programAll(finish) }))
				return
			}
			// LAMB: pass 1 computes moments and norms; a trust-ratio
			// reduction bounces off the controller; pass 2 re-reads and
			// applies.
			half := (kernel.FlopsPerElem + 1) / 2
			sim.Chain(func() { programAll(finish) },
				func(next func()) { odpU.Exec(elems, half, span(eng, "kernel", next)) },
				func(next func()) {
					next = span(eng, "lamb-reduce", next)
					dev.TransferFromDie(place.HomeChannel, place.HomeDie, 64, func() {
						dev.TransferToDie(place.HomeChannel, place.HomeDie, 64, next)
					})
				},
				func(next func()) { readAll(next) },
				func(next func()) { odpU.Exec(elems, kernel.FlopsPerElem-half, span(eng, "kernel", next)) },
			)
		}

		// Phase 1: gradient at die + resident pages in page registers.
		join := sim.NewCounter(2, compute)
		arrived[u/unitsPerChunk].then(func() {
			dev.TransferToDie(place.HomeChannel, place.HomeDie, int(gradB), join.Done)
		})
		readAll(join.Done)
	}
	launch = func() {
		for next < simUnits && next-completed < inflightCap {
			u := next
			next++
			startUnit(u)
		}
	}
	launch()
	eng.Run()
	if !finished {
		return nil, fmt.Errorf("core: optimstore simulation wedged at %v (%d/%d units)",
			eng.Now(), completed, simUnits)
	}

	r, err := s.report(cfg, dev, units, link, endTime, eng.Fired())
	if err != nil {
		return nil, err
	}
	accountFaults(cfg, r, inj)
	return r, nil
}

func (s *OptimStore) report(cfg Config, dev *ssd.Device, units [][]*odp.Unit, link *host.Link, endTime sim.Time, fired uint64) (*Report, error) {
	scale := cfg.ScaleFactor()
	counts := dev.Counts()
	var odpFlops float64
	for _, row := range units {
		for _, u := range row {
			odpFlops += float64(u.Flops())
		}
	}
	totalUnits := cfg.TouchedUnits()
	gradB, woutB := cfg.GradBytesPerUnit(), cfg.WeightOutBytesPerUnit()
	pageSize := int64(cfg.SSD.Nand.PageSize)
	blockBytes := cfg.SSD.Nand.BlockBytes()

	r := &Report{
		System:              s.Name(),
		Model:               cfg.Model.Name,
		Optimizer:           cfg.Optimizer.String(),
		Precision:           cfg.Precision.String(),
		Params:              cfg.Model.Params,
		TotalUnits:          totalUnits,
		SimUnits:            cfg.SimUnits(),
		SimTime:             endTime,
		SimEvents:           fired,
		SimPCIeToDevBytes:   int64(link.BytesToDevice()),
		SimPCIeFromDevBytes: int64(link.BytesFromDevice()),
		// The step is throughput-bound: extrapolate the window linearly.
		OptStepTime:      endTime.Scale(scale),
		PCIeBytes:        (gradB + woutB) * totalUnits,
		BusBytes:         int64(float64(counts.BytesIn+counts.BytesOut) * scale),
		NANDReadBytes:    int64(float64(counts.Reads) * float64(pageSize) * scale),
		NANDProgramBytes: int64(float64(counts.Programs) * float64(pageSize) * scale),
		DRAMBytes:        (gradB + woutB) * totalUnits,
		WAF:              dev.Stats().WAF,
		Feasible:         true,
	}
	r.LinkUtil = link.Utilization()
	r.BusUtil = meanBusUtil(dev)
	var odpUtil float64
	for _, row := range units {
		for _, u := range row {
			odpUtil += u.Utilization()
		}
	}
	r.ODPUtil = odpUtil / float64(len(units)*len(units[0]))
	evalEnergy(r, energy.Activity{
		NANDReadBytes:    float64(r.NANDReadBytes),
		NANDProgramBytes: float64(r.NANDProgramBytes),
		NANDEraseBytes:   float64(counts.Erases) * float64(blockBytes) * scale,
		BusBytes:         float64(r.BusBytes),
		PCIeBytes:        float64(r.PCIeBytes),
		DRAMBytes:        float64(r.DRAMBytes),
		ODPOps:           odpFlops * scale,
	})
	cfg.endToEnd(r)
	return r, nil
}
