package ssd

import "testing"

// FuzzFTLOps drives the translation layer through an arbitrary byte-encoded
// sequence of writes, trims and garbage collections on a small geometry,
// auditing the l2p/p2l bijection (CheckConsistent) and a shadow valid-page
// map after every operation. Each op consumes two bytes: an opcode selector
// and an argument (logical page or plane).
func FuzzFTLOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 2, 0, 3, 0})                     // write, write, trim, gc
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 0, 3, 0, 0, 0})         // overwrite then collect
	f.Add([]byte{0, 5, 0, 13, 0, 21, 2, 5, 3, 1, 0, 5, 3, 1}) // spread across planes
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip("bounded op budget")
		}
		g := testGeo()
		logical := g.TotalPages() * 3 / 4
		ftl := NewFTL(g, logical)
		planes := g.Planes()
		live := make(map[int64]bool)

		// collect reclaims one victim block of a plane the way the device's
		// GC does (relocate surviving pages, then erase), entirely through
		// the public FTL surface.
		collect := func(plane int) {
			// A relocation can need a whole block's worth of fresh pages;
			// skipping when space is short mirrors the device's watermarks.
			if ftl.AvailablePages(plane) < g.PagesPerBlock {
				return
			}
			victim, ok := ftl.PickVictim(plane)
			if !ok {
				return
			}
			erasesBefore := ftl.BlockErases(plane, victim)
			for _, lpa := range ftl.ValidLPAs(plane, victim) {
				ppa := ftl.AllocPageStream(plane, ColdStream)
				ftl.CommitWrite(lpa, ppa, true)
			}
			if n := ftl.ValidCount(plane, victim); n != 0 {
				t.Fatalf("victim %d/%d still has %d valid pages after relocation", plane, victim, n)
			}
			ftl.OnErased(plane, victim)
			if after := ftl.BlockErases(plane, victim); after != erasesBefore+1 {
				t.Fatalf("erase count of %d/%d went %d -> %d", plane, victim, erasesBefore, after)
			}
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], int64(ops[i+1])
			switch op % 4 {
			case 0, 1: // write (double weight: updates dominate real traffic)
				lpa := arg % logical
				plane := int(lpa) % planes
				if !ftl.CanAlloc(plane) {
					collect(plane)
				}
				if !ftl.CanAlloc(plane) {
					continue
				}
				ftl.CommitWrite(lpa, ftl.AllocPage(plane), false)
				live[lpa] = true
			case 2: // trim
				lpa := arg % logical
				ftl.Invalidate(lpa)
				delete(live, lpa)
			case 3: // garbage-collect one victim
				collect(int(arg) % planes)
			}
			if err := ftl.CheckConsistent(); err != nil {
				t.Fatalf("op %d (%d %d): %v", i/2, op, arg, err)
			}
		}

		// No live page may be lost and no dead page may linger, whatever
		// relocations happened in between.
		for lpa := int64(0); lpa < logical; lpa++ {
			if _, ok := ftl.Lookup(lpa); ok != live[lpa] {
				t.Fatalf("lpa %d mapped=%v, shadow says %v", lpa, ok, live[lpa])
			}
		}
		if w := ftl.WAF(); w < 1 {
			t.Fatalf("WAF %v below 1", w)
		}
	})
}
