package core

import (
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/optim"
	"repro/internal/trace"
)

// VerifyPagedEquivalence checks the numerical claim behind on-die
// execution: an element-wise optimizer applied independently per page (the
// way each die's processing unit sees only its resident pages) is
// bit-identical to the monolithic reference update. It runs `steps` steps
// over n parameters split into pageElems-sized pages, with deterministic
// gradients, processing pages in reverse order to prove order independence.
//
// LAMB is rejected: its trust ratio couples all elements of a layer, which
// is exactly why the timing model gives it a second read pass and a global
// reduction (see optim.Kernel.GlobalReduce).
func VerifyPagedEquivalence(kind optim.Kind, hp optim.Hyper, n, pageElems, steps int, seed int64) error {
	if kind == optim.LAMB {
		return fmt.Errorf("core: LAMB is not element-wise; paged equivalence does not apply")
	}
	if n <= 0 || pageElems <= 0 || steps <= 0 {
		return fmt.Errorf("core: VerifyPagedEquivalence(%d, %d, %d)", n, pageElems, steps)
	}

	// Monolithic reference.
	gold := make([]float32, n)
	goldOpt := optim.New(kind, hp)

	// Paged execution: one optimizer instance per page, owning that page's
	// state slice — the software model of per-die state residency.
	paged := make([]float32, n)
	nPages := (n + pageElems - 1) / pageElems
	pageOpts := make([]optim.Optimizer, nPages)
	for p := range pageOpts {
		pageOpts[p] = optim.New(kind, hp)
	}

	for step := 0; step < steps; step++ {
		g := trace.Gradients(seed+int64(step), n)
		goldOpt.Step(gold, g)
		// Reverse page order: dies complete in arbitrary order in reality.
		for p := nPages - 1; p >= 0; p-- {
			lo := p * pageElems
			hi := lo + pageElems
			if hi > n {
				hi = n
			}
			pageOpts[p].Step(paged[lo:hi], g[lo:hi])
		}
	}

	for i := range gold {
		if gold[i] != paged[i] {
			return fmt.Errorf("core: divergence at element %d after %d steps: gold=%v paged=%v",
				i, steps, gold[i], paged[i])
		}
	}
	return nil
}

// MixedPrecisionDrift quantifies what the Mixed16 interface costs
// numerically: it trains twice on identical gradient streams — once with
// exact FP32 gradient delivery, once with gradients quantised through
// IEEE binary16 (what crosses PCIe to the SSD in mixed-precision mode;
// master weights and moments stay FP32 in both runs, as they do in
// storage) — and returns the worst absolute weight divergence after
// `steps` steps.
func MixedPrecisionDrift(kind optim.Kind, hp optim.Hyper, n, steps int, seed int64) (float64, error) {
	if n <= 0 || steps <= 0 {
		return 0, fmt.Errorf("core: MixedPrecisionDrift(%d, %d)", n, steps)
	}
	exact := make([]float32, n)
	quant := make([]float32, n)
	optExact := optim.New(kind, hp)
	optQuant := optim.New(kind, hp)
	gq := make([]float32, n)
	for step := 0; step < steps; step++ {
		g := trace.Gradients(seed+int64(step), n)
		optExact.Step(exact, g)
		fp16.RoundSlice(gq, g)
		optQuant.Step(quant, gq)
	}
	var worst float64
	for i := range exact {
		if d := math.Abs(float64(exact[i] - quant[i])); d > worst {
			worst = d
		}
	}
	return worst, nil
}
