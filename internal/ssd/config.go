package ssd

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config describes one SSD instance.
type Config struct {
	// Channels and DiesPerChannel set the NAND topology.
	Channels       int
	DiesPerChannel int
	// Nand carries the per-die geometry and timing.
	Nand nand.Params

	// OverProvision is the fraction of physical pages reserved for the
	// FTL (not exposed as logical capacity). Consumer drives run ~7%,
	// enterprise 25%+.
	OverProvision float64

	// GCLowWater triggers garbage collection when a plane's free-block
	// count drops to it; GCHighWater stops collection.
	GCLowWater  int
	GCHighWater int

	// HotColdSeparation directs GC relocations into their own open block
	// per plane instead of mixing long-lived relocated pages with fresh
	// host writes — the standard stream-separation WAF optimisation.
	HotColdSeparation bool

	// CachePages is the DRAM write-cache capacity in pages; writes beyond
	// it backpressure the host. DRAMPageLatency is the DRAM staging time
	// per page.
	CachePages      int
	DRAMPageLatency sim.Time

	// CmdLatency is the NVMe command handling overhead (submission,
	// doorbell, completion) added to every host command.
	CmdLatency sim.Time

	// Retire configures ECC-exhaustion block retirement (see
	// ecc.RetirePolicy). The zero value disables it, keeping the read
	// completion path a single nil check.
	Retire ecc.RetirePolicy
}

// DefaultConfig returns the baseline SSD of the reproduction: 8 channels ×
// 4 TLC dies (× 4 planes) — 128-plane internal parallelism.
//
// BlocksPerPlane is reduced from the physical 1024 to 64 so FTL map arrays
// stay small: the simulated device is a 32 GiB *window* of the real 512 GiB
// drive. Steady-state throughput depends on planes and timing, not block
// count; capacity- and lifetime-dependent metrics are computed analytically
// with the full geometry (see nand.WearModel.LifetimeSteps).
func DefaultConfig() Config {
	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = 64
	return Config{
		Channels:          8,
		DiesPerChannel:    4,
		Nand:              n,
		OverProvision:     0.125,
		GCLowWater:        2,
		GCHighWater:       4,
		HotColdSeparation: true,
		CachePages:        512, // 8 MiB of 16 KiB pages
		DRAMPageLatency:   2 * sim.Microsecond,
		CmdLatency:        5 * sim.Microsecond,
	}
}

// Validate reports the first structural problem.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.DiesPerChannel <= 0 {
		return fmt.Errorf("ssd: topology %dx%d", c.Channels, c.DiesPerChannel)
	}
	if err := c.Nand.Validate(); err != nil {
		return err
	}
	if c.OverProvision < 0 || c.OverProvision >= 1 {
		return fmt.Errorf("ssd: over-provision %v", c.OverProvision)
	}
	if c.GCLowWater < 1 || c.GCHighWater <= c.GCLowWater {
		return fmt.Errorf("ssd: GC watermarks low=%d high=%d", c.GCLowWater, c.GCHighWater)
	}
	if c.GCHighWater >= c.Nand.BlocksPerPlane {
		return fmt.Errorf("ssd: GC high water %d >= blocks per plane %d",
			c.GCHighWater, c.Nand.BlocksPerPlane)
	}
	if c.CachePages <= 0 {
		return fmt.Errorf("ssd: CachePages %d", c.CachePages)
	}
	if c.DRAMPageLatency < 0 || c.CmdLatency < 0 {
		return fmt.Errorf("ssd: negative latency")
	}
	if err := c.Retire.Validate(); err != nil {
		return err
	}
	return nil
}

// Geometry derives the device geometry.
func (c Config) Geometry() Geometry {
	return GeometryOf(c.Channels, c.DiesPerChannel, c.Nand)
}

// LogicalPages is the exposed logical capacity in pages after
// over-provisioning.
func (c Config) LogicalPages() int64 {
	return int64(float64(c.Geometry().TotalPages()) * (1 - c.OverProvision))
}

// LogicalBytes is the exposed logical capacity in bytes.
func (c Config) LogicalBytes() int64 {
	return c.LogicalPages() * int64(c.Nand.PageSize)
}

// InternalReadMBps is the aggregate plane-level sense bandwidth — the
// ceiling for in-storage read traffic. (bytes/µs ≡ MB/s.)
func (c Config) InternalReadMBps() units.MBps {
	perPlane := units.RateMBps(units.Bytes(c.Nand.PageSize), c.Nand.ReadLatency)
	return perPlane.Scale(float64(c.Geometry().Planes()))
}

// InternalProgramMBps is the aggregate plane-level program bandwidth — the
// ceiling for any design that persists updated state, in-storage or not.
func (c Config) InternalProgramMBps() units.MBps {
	perPlane := units.RateMBps(units.Bytes(c.Nand.PageSize), c.Nand.ProgramLatency)
	return perPlane.Scale(float64(c.Geometry().Planes()))
}

// ChannelMBps is the aggregate channel-bus bandwidth.
func (c Config) ChannelMBps() units.MBps {
	return units.MBps(c.Nand.BusMBps * c.Channels)
}
