package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// harness typechecks one function body inside a fixed scaffold and
// exposes a release/use fact model: rel(x) generates a fact for x,
// assignment to x kills it.
type harness struct {
	fset *token.FileSet
	info *types.Info
	decl *ast.FuncDecl
	g    *Graph
}

func build(t *testing.T, body string) *harness {
	t.Helper()
	src := `package p

func get() int { return 0 }
func rel(x int) {}
func use(x int) {}

func f(cond bool, n int, m map[int]int) {
` + body + `
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			decl = fd
		}
	}
	return &harness{fset: fset, info: info, decl: decl, g: New(decl.Body)}
}

// transfer implements the rel-gens / assign-kills model.
func (h *harness) transfer(n ast.Node, facts Facts) {
	Visit(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "rel" && len(call.Args) == 1 {
				if arg, ok := call.Args[0].(*ast.Ident); ok {
					if obj := h.info.Uses[arg]; obj != nil {
						facts[obj] = call.Pos()
					}
				}
			}
		}
		return true
	})
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := h.info.Uses[id]; obj != nil {
					delete(facts, obj)
				}
				if obj := h.info.Defs[id]; obj != nil {
					delete(facts, obj)
				}
			}
		}
	}
}

// factsAtUse replays the fixpoint solution block by block and returns
// the facts live at the (first) use(...) call, as variable names.
func (h *harness) factsAtUse(t *testing.T) map[string]bool {
	t.Helper()
	in := ForwardMay(h.g, h.transfer)
	var found map[string]bool
	for _, blk := range h.g.Blocks {
		facts := Facts{}
		//simlint:allow maporder copying the facts map; order-free
		for k, v := range in[blk] {
			facts[k] = v
		}
		for _, n := range blk.Nodes {
			atUse := false
			Visit(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						atUse = true
					}
				}
				return true
			})
			if atUse && found == nil {
				found = map[string]bool{}
				//simlint:allow maporder set-to-set copy; order-free
				for obj := range facts {
					found[obj.Name()] = true
				}
			}
			h.transfer(n, facts)
		}
	}
	if found == nil {
		t.Fatalf("no use(...) call in body")
	}
	return found
}

func TestBranchJoinMay(t *testing.T) {
	h := build(t, `
	x := get()
	if cond {
		rel(x)
	}
	use(x)`)
	if !h.factsAtUse(t)["x"] {
		t.Errorf("fact from one branch must reach the join (may-analysis)")
	}
}

func TestDisjointPathsClean(t *testing.T) {
	h := build(t, `
	x := get()
	if cond {
		rel(x)
		return
	}
	use(x)`)
	if h.factsAtUse(t)["x"] {
		t.Errorf("fact must not survive a path that returns before the join")
	}
}

func TestLoopBackEdge(t *testing.T) {
	h := build(t, `
	x := get()
	for i := 0; i < n; i++ {
		use(x)
		rel(x)
	}`)
	if !h.factsAtUse(t)["x"] {
		t.Errorf("fact from iteration i must reach iteration i+1 through the back edge")
	}
}

func TestRangeBackEdge(t *testing.T) {
	h := build(t, `
	x := get()
	for range m {
		rel(x)
	}
	use(x)`)
	if !h.factsAtUse(t)["x"] {
		t.Errorf("fact generated in a range body must reach the loop exit")
	}
}

func TestAssignKills(t *testing.T) {
	h := build(t, `
	x := get()
	rel(x)
	x = get()
	use(x)`)
	if h.factsAtUse(t)["x"] {
		t.Errorf("reassignment must kill the fact")
	}
}

func TestSwitchCasesJoin(t *testing.T) {
	h := build(t, `
	x := get()
	switch n {
	case 0:
		rel(x)
	case 1:
	}
	use(x)`)
	if !h.factsAtUse(t)["x"] {
		t.Errorf("fact from one case must reach the statement after the switch")
	}
}

func TestBreakCarriesFacts(t *testing.T) {
	h := build(t, `
	x := get()
	for i := 0; i < n; i++ {
		if cond {
			rel(x)
			break
		}
	}
	use(x)`)
	if !h.factsAtUse(t)["x"] {
		t.Errorf("break must carry facts to the loop exit")
	}
}

func TestGotoIsImprecise(t *testing.T) {
	h := build(t, `
	x := get()
	goto done
done:
	use(x)`)
	if !h.g.Imprecise {
		t.Errorf("goto must mark the graph imprecise")
	}
}

func TestVisitPrunesRangeBody(t *testing.T) {
	h := build(t, `
	for k := range m {
		rel(k)
	}
	use(n)`)
	var r *ast.RangeStmt
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			r = rs
		}
		return true
	})
	var calls []string
	Visit(r, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				calls = append(calls, id.Name)
			}
		}
		return true
	})
	if len(calls) != 0 {
		t.Errorf("Visit on a range header must not descend into its body; saw calls %s",
			strings.Join(calls, ","))
	}
}
