package core

import (
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/units"
)

// checkpointTimes returns the analytic cost of moving the full optimizer
// state once: out over the host link (bounded by the narrower of PCIe and
// the aggregate channel buses) and die-internally via plane-local
// copyback. Shared by the standalone Checkpoint report and the fault
// accounting; bandwidth units are decimal end to end (see Checkpoint).
func checkpointTimes(cfg Config) (hostStream, inStorage sim.Time, stateBytes int64) {
	stateBytes = int64(float64(cfg.Model.Params) * cfg.Spec().ResidentBytes())

	extGBps := cfg.Link.EffectiveGBps()
	if busGBps := cfg.SSD.ChannelMBps().GBps(); busGBps < extGBps {
		extGBps = busGBps
	}
	hostStream = extGBps.TransferTimeF(float64(stateBytes))

	n := cfg.SSD.Nand
	perPlane := units.RateBps(units.Bytes(n.PageSize), n.ReadLatency+n.ProgramLatency)
	agg := perPlane.Scale(float64(cfg.SSD.Geometry().Planes()))
	inStorage = agg.TransferTimeF(float64(stateBytes))
	return hostStream, inStorage, stateBytes
}

// physBlocksPerPlane is the real device's per-plane block count: the
// simulated window shrinks ssd.Config's BlocksPerPlane, but recovery
// scans (and checkpointing sizes against) the full physical plane.
const physBlocksPerPlane = 1024

// faultCosts derives the device-wide fault/checkpoint cost model from a
// configuration. Scan is the power-loss mapping replay: one mapping-
// summary read per physical block of the real (non-windowed) geometry,
// all planes scanning in parallel.
func faultCosts(cfg Config) fault.Costs {
	hostStream, inStorage, _ := checkpointTimes(cfg)
	return fault.Costs{
		HostStream: hostStream,
		InStorage:  inStorage,
		Scan:       cfg.SSD.Nand.ReadLatency * physBlocksPerPlane,
		Dies:       cfg.SSD.Geometry().Dies(),
	}
}

// armFaults arms the config's fault plan against a freshly-built device
// (call after preload, before the engine runs). Returns nil when
// injection is disabled; the nil path adds nothing to the run.
func armFaults(eng *sim.Engine, dev *ssd.Device, cfg Config) *fault.Injector {
	if !cfg.Fault.Enabled() {
		return nil
	}
	inj := &fault.Injector{}
	inj.Arm(eng, dev, cfg.Fault.Plan())
	return inj
}

// disarmFaults cancels the not-yet-fired remainder of a plan. It must run
// FIRST inside the drain callback, before the end time is captured: the
// cancelled events then never fire and never advance the clock, so a run
// whose remaining faults all land after completion stays byte-identical
// to a fault-free run.
func disarmFaults(inj *fault.Injector) {
	if inj != nil {
		inj.Disarm()
	}
}

// accountFaults fills a simulated system's fault and checkpoint fields.
// The policy prices one checkpoint per optimizer step (and, for the
// in-place policy, its NAND-program WAF cost). Every fired terminal fault
// prices a restore plus the step work redone from the crash position: a
// fault at FiredAt loses FiredAt/SimTime of the extrapolated step.
// CheckpointPolicy is set unconditionally so faulted and fault-free
// reports stay structurally comparable.
func accountFaults(cfg Config, r *Report, inj *fault.Injector) {
	r.CheckpointPolicy = cfg.Checkpoint.String()
	costs := faultCosts(cfg)
	_, _, state := checkpointTimes(cfg)
	r.CheckpointTime = costs.CheckpointTime(cfg.Checkpoint)
	if cfg.Checkpoint == fault.CheckpointInPlace {
		r.CheckpointProgramBytes = state
	}
	if inj == nil {
		return
	}
	for _, rec := range inj.Fired() {
		switch rec.Kind {
		case fault.PowerLoss:
			r.PowerLossFaults++
		case fault.DieFailure:
			r.DieFailFaults++
		case fault.ECCExhaust:
			// Live fault: its latency, relocations, and retirement WAF land
			// organically in the simulated window; count it and move on.
			r.ECCFaults++
			continue
		default:
			continue
		}
		var redo sim.Time
		if r.SimTime > 0 {
			frac := float64(rec.FiredAt) / float64(r.SimTime)
			if frac > 1 {
				frac = 1
			}
			redo = r.OptStepTime.Scale(frac)
		}
		r.RecoveryTime += costs.RestoreTime(cfg.Checkpoint, rec.Kind) + redo
		// Rolling resident state back to the checkpoint re-programs it.
		r.RecoveryProgramBytes += state
	}
}

// accountFaultsAnalytic prices the storm for the analytic GPU-resident
// reference: the SSD fault kinds do not apply (no device-resident state),
// but a power loss still costs a full PCIe re-stream of the training
// state from host checkpoint storage plus the redone step fraction.
// Events are counted over the analytic step window [0, OptStepTime].
func accountFaultsAnalytic(cfg Config, r *Report, stateBytes int64) {
	r.CheckpointPolicy = cfg.Checkpoint.String()
	stream := cfg.Link.EffectiveGBps().TransferTimeF(float64(stateBytes))
	if cfg.Checkpoint != fault.CheckpointNone {
		// Device-internal snapshots have no meaning here: any checkpoint is
		// a host-side stream.
		r.CheckpointTime = stream
	}
	if !cfg.Fault.Enabled() {
		return
	}
	for _, ev := range cfg.Fault.Plan() {
		if ev.Kind != fault.PowerLoss || ev.At > r.OptStepTime {
			continue
		}
		r.PowerLossFaults++
		var redo sim.Time
		if r.OptStepTime > 0 {
			redo = ev.At
		}
		r.RecoveryTime += stream + redo
	}
}
