package fault

import (
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// Rates parameterizes Schedule: independent Poisson processes per kind
// over the window [Start, Horizon).
type Rates struct {
	PowerLossPerSec float64
	DieFailPerSec   float64
	ECCPerSec       float64
	Start           sim.Time
	Horizon         sim.Time
}

// Per-kind seed salts so each kind's process is an independent stream:
// changing one rate never perturbs another kind's arrival times.
var kindSalt = [numKinds]int64{
	PowerLoss:  0x706f7765722d6c6f, // "power-lo"
	DieFailure: 0x6469652d6661696c, // "die-fail"
	ECCExhaust: 0x6563632d65786861, // "ecc-exha"
}

// Schedule draws a deterministic fault plan from a seed: per kind, a
// locally-seeded exponential inter-arrival process over [Start, Horizon),
// merged into one time-sorted plan. Identical (seed, rates) yield
// byte-identical plans on every platform and at any worker-pool width —
// the generator touches no global state.
func Schedule(seed int64, r Rates) Plan {
	var plan Plan
	gen := func(kind Kind, perSec float64) {
		if perSec <= 0 || r.Horizon <= r.Start {
			return
		}
		rng := rand.New(rand.NewSource(seed ^ kindSalt[kind]))
		t := r.Start
		for {
			gap := units.Seconds(rng.ExpFloat64() / perSec)
			if gap < 1 {
				gap = 1 // keep time strictly advancing at extreme rates
			}
			t += gap
			if t >= r.Horizon {
				return
			}
			plan = append(plan, Event{Kind: kind, At: t, Pick: rng.Int63()})
		}
	}
	gen(PowerLoss, r.PowerLossPerSec)
	gen(DieFailure, r.DieFailPerSec)
	gen(ECCExhaust, r.ECCPerSec)
	// Stable sort: same-instant events keep kind-generation order, so the
	// merged plan is a pure function of (seed, rates).
	sort.SliceStable(plan, func(i, j int) bool {
		if plan[i].At != plan[j].At {
			return plan[i].At < plan[j].At
		}
		return plan[i].Kind < plan[j].Kind
	})
	return plan
}
