package optim

import "math"

// adam implements Adam (Kingma & Ba) and, with decoupledWD, AdamW
// (Loshchilov & Hutter):
//
//	m ← β₁·m + (1−β₁)·g
//	v ← β₂·v + (1−β₂)·g²
//	m̂ = m / (1−β₁ᵗ),  v̂ = v / (1−β₂ᵗ)
//	w ← w − lr·m̂ / (√v̂ + ε)            (− lr·λ·w decoupled, for AdamW)
//
// Adam (non-W) folds weight decay into the gradient (L2 style).
type adam struct {
	hp          Hyper
	decoupledWD bool
	m, v        []float32
	steps       int
}

func (a *adam) Name() string {
	if a.decoupledWD {
		return "AdamW"
	}
	return "Adam"
}

func (a *adam) Kind() Kind {
	if a.decoupledWD {
		return AdamW
	}
	return Adam
}

func (a *adam) StateWords() int { return 2 }
func (a *adam) Steps() int      { return a.steps }
func (a *adam) Reset()          { a.m, a.v = nil, nil; a.steps = 0 }

func (a *adam) Step(w, g []float32) {
	checkLens(w, g)
	if a.m == nil {
		a.m = make([]float32, len(w))
		a.v = make([]float32, len(w))
	}
	a.steps++
	t := float64(a.steps)
	lr := a.hp.LR
	b1, b2 := a.hp.Beta1, a.hp.Beta2
	eps := a.hp.Eps
	wd := a.hp.WeightDecay
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)
	for i := range w {
		grad := float64(g[i])
		if !a.decoupledWD {
			grad += wd * float64(w[i])
		}
		m := b1*float64(a.m[i]) + (1-b1)*grad
		v := b2*float64(a.v[i]) + (1-b2)*grad*grad
		a.m[i], a.v[i] = float32(m), float32(v)
		mhat := m / bc1
		vhat := v / bc2
		upd := lr * mhat / (math.Sqrt(vhat) + eps)
		if a.decoupledWD {
			upd += lr * wd * float64(w[i])
		}
		w[i] = float32(float64(w[i]) - upd)
	}
}

// amsgrad implements AMSGrad (Reddi, Kale & Kumar, "On the Convergence of
// Adam and Beyond"): Adam with a maintained elementwise maximum of the
// second moment, which makes the effective learning rate non-increasing:
//
//	m ← β₁·m + (1−β₁)·g
//	v ← β₂·v + (1−β₂)·g²
//	v̂max ← max(v̂max, v/(1−β₂ᵗ))
//	w ← w − lr·m̂ / (√v̂max + ε)
//
// The extra state word per parameter makes it the heaviest resident
// footprint in the zoo — a useful upper data point for the traffic study.
type amsgrad struct {
	hp         Hyper
	m, v, vmax []float32
	steps      int
}

func (a *amsgrad) Name() string    { return "AMSGrad" }
func (a *amsgrad) Kind() Kind      { return AMSGrad }
func (a *amsgrad) StateWords() int { return 3 }
func (a *amsgrad) Steps() int      { return a.steps }
func (a *amsgrad) Reset()          { a.m, a.v, a.vmax = nil, nil, nil; a.steps = 0 }

func (a *amsgrad) Step(w, g []float32) {
	checkLens(w, g)
	if a.m == nil {
		a.m = make([]float32, len(w))
		a.v = make([]float32, len(w))
		a.vmax = make([]float32, len(w))
	}
	a.steps++
	t := float64(a.steps)
	lr := a.hp.LR
	b1, b2 := a.hp.Beta1, a.hp.Beta2
	eps := a.hp.Eps
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)
	for i := range w {
		grad := float64(g[i]) + a.hp.WeightDecay*float64(w[i])
		m := b1*float64(a.m[i]) + (1-b1)*grad
		v := b2*float64(a.v[i]) + (1-b2)*grad*grad
		a.m[i], a.v[i] = float32(m), float32(v)
		vhat := v / bc2
		if vhat > float64(a.vmax[i]) {
			a.vmax[i] = float32(vhat)
		}
		upd := lr * (m / bc1) / (math.Sqrt(float64(a.vmax[i])) + eps)
		w[i] = float32(float64(w[i]) - upd)
	}
}
