package ssd

import (
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
)

// smallConfig returns a 2×2-die device with tiny blocks so GC is easy to
// provoke.
func smallConfig() Config {
	n := nand.ParamsFor(nand.TLC)
	n.PlanesPerDie = 2
	n.BlocksPerPlane = 8
	n.PagesPerBlock = 4
	return Config{
		Channels:        2,
		DiesPerChannel:  2,
		Nand:            n,
		OverProvision:   0.25,
		GCLowWater:      2,
		GCHighWater:     3,
		CachePages:      16,
		DRAMPageLatency: 2 * sim.Microsecond,
		CmdLatency:      5 * sim.Microsecond,
	}
}

func runDrained(t *testing.T, e *sim.Engine, d *Device) {
	t.Helper()
	drained := false
	d.Drain(func() { drained = true })
	e.Run()
	if !drained {
		t.Fatal("device did not drain (stuck operations)")
	}
	if err := d.FTL().CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	wrote := false
	d.Write(42, func() { wrote = true })
	runDrained(t, e, d)
	if !wrote {
		t.Fatal("write completion missing")
	}
	var readAt sim.Time
	d.Read(42, func() { readAt = e.Now() })
	start := e.Now()
	runDrained(t, e, d)
	cfg := d.Config()
	wantMin := cfg.CmdLatency + cfg.Nand.ReadLatency
	if readAt-start < wantMin {
		t.Fatalf("read latency %v < floor %v", readAt-start, wantMin)
	}
	s := d.Stats()
	if s.HostReads != 1 || s.HostWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceWriteCompletesInDRAM(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	var ackAt sim.Time
	d.Write(0, func() { ackAt = e.Now() })
	runDrained(t, e, d)
	cfg := d.Config()
	wantAck := cfg.CmdLatency + cfg.DRAMPageLatency
	if ackAt != wantAck {
		t.Fatalf("host ack at %v, want %v (cache absorb)", ackAt, wantAck)
	}
	// But the NAND program happened in the background.
	if d.Counts().Programs != 1 {
		t.Fatal("background program missing")
	}
}

func TestDeviceStriping(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	planes := d.Geometry().Planes()
	for lpa := int64(0); lpa < int64(planes); lpa++ {
		d.Write(lpa, nil)
	}
	runDrained(t, e, d)
	// Default mapper round-robins planes: each die got writes.
	for ch := 0; ch < d.Config().Channels; ch++ {
		for die := 0; die < d.Config().DiesPerChannel; die++ {
			if d.Die(ch, die).Counts().Programs == 0 {
				t.Fatalf("die %d/%d received no writes", ch, die)
			}
		}
	}
}

func TestDeviceReadUnmappedPanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Read(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("read of unmapped lpa did not panic")
		}
	}()
	e.Run()
}

func TestDevicePreload(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(9)
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("preload consumed simulated time")
	}
	if _, ok := d.FTL().Lookup(9); !ok {
		t.Fatal("preload did not map")
	}
	var done bool
	d.Read(9, func() { done = true })
	runDrained(t, e, d)
	if !done {
		t.Fatal("read of preloaded page failed")
	}
}

func TestDeviceGCUnderOverwrite(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	// Fill the full logical capacity (75% physical occupancy), then
	// overwrite a strided hot subset: blocks end up mixing valid cold
	// pages with stale hot ones, forcing relocations.
	lpas := d.Config().LogicalPages()
	for lpa := int64(0); lpa < lpas; lpa++ {
		d.Write(lpa, nil)
	}
	runDrained(t, e, d)
	for round := 0; round < 10; round++ {
		// Stride 3 is coprime with the 8-plane stripe, so every plane's
		// blocks end up one-third stale.
		for lpa := int64(0); lpa < lpas; lpa += 3 {
			d.Write(lpa, nil)
		}
		// Drain between rounds to bound cache/queue growth.
		runDrained(t, e, d)
	}
	s := d.Stats()
	if s.GCErases == 0 {
		t.Fatal("no GC despite sustained overwrites")
	}
	if s.GCRelocations == 0 {
		t.Fatal("hot/cold mix produced no relocations")
	}
	if s.WAF <= 1 {
		t.Fatalf("WAF = %v, want > 1", s.WAF)
	}
	if d.MaxEraseCount() == 0 {
		t.Fatal("wear not recorded")
	}
}

func TestDeviceBackpressureNoDeadlock(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	// Burst far beyond one plane's capacity, all to lpas on plane 0.
	planes := int64(d.Geometry().Planes())
	lpasOnPlane0 := []int64{}
	for lpa := int64(0); lpa < d.Config().LogicalPages(); lpa += planes {
		lpasOnPlane0 = append(lpasOnPlane0, lpa)
	}
	for round := 0; round < 8; round++ {
		for _, lpa := range lpasOnPlane0 {
			d.Write(lpa, nil)
		}
	}
	runDrained(t, e, d) // fails if anything wedges
	if d.Stats().GCErases == 0 {
		t.Fatal("plane-0 burst did not trigger GC")
	}
}

func TestDeviceProgramUpdateStaysInPlane(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(5)
	before, _ := d.FTL().Lookup(5)
	planeBefore := d.Geometry().PlaneOf(before)
	var done bool
	d.ProgramUpdate(5, func() { done = true })
	runDrained(t, e, d)
	if !done {
		t.Fatal("update did not complete")
	}
	after, _ := d.FTL().Lookup(5)
	if after == before {
		t.Fatal("update did not remap (no in-place NAND overwrite exists)")
	}
	if d.Geometry().PlaneOf(after) != planeBefore {
		t.Fatal("update left the plane — breaks die locality")
	}
	if d.Stats().UpdateWrites != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestDeviceReadMappedNoBus(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(2)
	var doneAt sim.Time
	d.ReadMapped(2, func() { doneAt = e.Now() })
	runDrained(t, e, d)
	// Array read only: exactly tR, no bus transfer, no cmd overhead.
	if doneAt != d.Config().Nand.ReadLatency {
		t.Fatalf("internal read took %v, want %v", doneAt, d.Config().Nand.ReadLatency)
	}
	if d.Counts().BytesOut != 0 {
		t.Fatal("internal read moved bytes over the bus")
	}
}

func TestDeviceUpdateStreamWithGC(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	// Preload a working set, then update it repeatedly: the log-structured
	// state region must rotate through GC without deadlock.
	n := d.Config().LogicalPages() / 2
	for lpa := int64(0); lpa < n; lpa++ {
		d.Preload(lpa)
	}
	for round := 0; round < 8; round++ {
		for lpa := int64(0); lpa < n; lpa++ {
			d.ProgramUpdate(lpa, nil)
		}
		runDrained(t, e, d)
	}
	s := d.Stats()
	if s.UpdateWrites != uint64(8*n) {
		t.Fatalf("update writes = %d, want %d", s.UpdateWrites, 8*n)
	}
	if s.GCErases == 0 {
		t.Fatal("update stream never triggered GC")
	}
}

func TestWearLevellingBoundsSpread(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	n := d.Config().LogicalPages() / 2
	for lpa := int64(0); lpa < n; lpa++ {
		d.Preload(lpa)
	}
	// Sustained update stream: many erase cycles per block.
	for round := 0; round < 40; round++ {
		for lpa := int64(0); lpa < n; lpa++ {
			d.ProgramUpdate(lpa, nil)
		}
		runDrained(t, e, d)
	}
	for plane := 0; plane < d.Geometry().Planes(); plane++ {
		min, max := d.FTL().WearSpread(plane)
		if max == 0 {
			t.Fatalf("plane %d never erased", plane)
		}
		// Wear-aware free-block selection must keep the spread tight
		// relative to the total cycling.
		if max-min > max/2+2 {
			t.Fatalf("plane %d wear spread %d..%d too wide", plane, min, max)
		}
	}
}

func TestFTLWearAccessors(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	for lpa := int64(0); lpa < int64(g.PagesPerBlock); lpa++ {
		f.CommitWrite(lpa, f.AllocPage(0), false)
	}
	victim, _ := f.PickVictim(0)
	for _, lpa := range f.ValidLPAs(0, victim) {
		f.CommitWrite(lpa, f.AllocPage(0), true)
	}
	f.OnErased(0, victim)
	if f.BlockErases(0, victim) != 1 {
		t.Fatalf("erase tally = %d", f.BlockErases(0, victim))
	}
	min, max := f.WearSpread(0)
	if min != 0 || max != 1 {
		t.Fatalf("spread = %d..%d", min, max)
	}
}

func TestWearAwareAllocPrefersColdBlock(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	// Cycle block 0 once so it has one erase; block 1.. stay cold.
	for lpa := int64(0); lpa < int64(g.PagesPerBlock); lpa++ {
		f.CommitWrite(lpa, f.AllocPage(0), false)
	}
	for lpa := int64(0); lpa < int64(g.PagesPerBlock); lpa++ {
		f.Invalidate(lpa)
	}
	victim, ok := f.PickVictim(0)
	if !ok || victim != 0 {
		t.Fatalf("victim = %d %v", victim, ok)
	}
	f.OnErased(0, 0)
	// Next open must NOT be the just-erased block 0 (1 P/E) while colder
	// blocks exist.
	ppa := f.AllocPage(0)
	if ppa.Block == 0 {
		t.Fatal("allocator reused the hottest block while cold blocks were free")
	}
}

func TestDeviceTransferToFromDie(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	var inAt, outAt sim.Time
	d.TransferToDie(0, 0, 8192, func() { inAt = e.Now() })
	d.TransferFromDie(0, 0, 8192, func() { outAt = e.Now() })
	runDrained(t, e, d)
	tx := d.Config().Nand.TransferTime(8192)
	if inAt != tx || outAt != 2*tx {
		t.Fatalf("transfers at %v/%v, want %v/%v (bus serialized)", inAt, outAt, tx, 2*tx)
	}
}

func TestDeviceTrim(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(1)
	d.Trim(1)
	if _, ok := d.FTL().Lookup(1); ok {
		t.Fatal("trim did not unmap")
	}
}

func TestDeviceCustomPlaneMapper(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.SetPlaneMapper(func(lpa int64) int { return 3 })
	d.Write(0, nil)
	d.Write(1, nil)
	runDrained(t, e, d)
	for lpa := int64(0); lpa < 2; lpa++ {
		ppa, _ := d.FTL().Lookup(lpa)
		if d.Geometry().PlaneOf(ppa) != 3 {
			t.Fatalf("lpa %d placed on plane %d, want 3", lpa, d.Geometry().PlaneOf(ppa))
		}
	}
	if d.PlaneOf(99) != 3 {
		t.Fatal("PlaneOf should use mapper for unmapped lpas")
	}
}

func TestDeviceDrainImmediate(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	called := false
	d.Drain(func() { called = true })
	if !called {
		t.Fatal("drain on idle device should fire synchronously")
	}
	_ = e
}

func TestDeviceSequentialWriteThroughputProgramBound(t *testing.T) {
	e := sim.NewEngine()
	cfg := smallConfig()
	cfg.CachePages = 256
	d := NewDevice(e, cfg)
	// Stream half of the first block row across every plane, twice over:
	// enough to reach steady state without GC.
	planes := d.Geometry().Planes()
	n := planes * d.Geometry().PagesPerBlock * 2
	for i := 0; i < n; i++ {
		d.Write(int64(i), nil)
	}
	runDrained(t, e, d)
	// Program-bound floor: pagesPerPlane × tPROG.
	pagesPerPlane := n / planes
	//simlint:allow simtime page count scales tPROG; the count is not a duration
	floor := sim.Time(pagesPerPlane) * cfg.Nand.ProgramLatency
	if e.Now() < floor {
		t.Fatalf("finished at %v, below physical floor %v", e.Now(), floor)
	}
	// And within 2× of the floor: pipeline keeps planes busy.
	if e.Now() > 2*floor {
		t.Fatalf("finished at %v, more than 2× program floor %v — pipeline stalls", e.Now(), floor)
	}
}

func TestReadRetryRecovery(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(4)
	tR := d.Config().Nand.ReadLatency

	// Clean internal read: exactly tR.
	var cleanAt sim.Time
	d.ReadMapped(4, func() { cleanAt = e.Now() })
	runDrained(t, e, d)
	if cleanAt != tR {
		t.Fatalf("clean read = %v", cleanAt)
	}

	// One injected error: tR + retry (3×tR) + the clean re-read tR.
	d.InjectReadErrors(4, 1)
	start := e.Now()
	var failAt sim.Time
	d.ReadMapped(4, func() { failAt = e.Now() })
	runDrained(t, e, d)
	want := tR + 3*tR + tR
	if failAt-start != want {
		t.Fatalf("recovered read took %v, want %v", failAt-start, want)
	}
	if d.Stats().RecoveredErrors != 1 {
		t.Fatalf("recovered = %d", d.Stats().RecoveredErrors)
	}

	// Error consumed: next read is clean again.
	start = e.Now()
	var again sim.Time
	d.ReadMapped(4, func() { again = e.Now() })
	runDrained(t, e, d)
	if again-start != tR {
		t.Fatalf("post-recovery read = %v", again-start)
	}
}

func TestReadRetryOnExternalPath(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	d.Preload(6)
	d.InjectReadErrors(6, 2)
	var doneAt sim.Time
	d.Read(6, func() { doneAt = e.Now() })
	runDrained(t, e, d)
	cfg := d.Config()
	tR := cfg.Nand.ReadLatency
	// cmd + (tR + 3tR)×2 retries + clean tR + bus transfer.
	want := cfg.CmdLatency + 2*(tR+3*tR) + tR + cfg.Nand.PageTransferTime()
	if doneAt != want {
		t.Fatalf("external read with 2 errors = %v, want %v", doneAt, want)
	}
	if d.Stats().RecoveredErrors != 2 {
		t.Fatalf("recovered = %d", d.Stats().RecoveredErrors)
	}
}

func TestReadAfterWriteHitsCache(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	cfg := d.Config()
	// Write, then read immediately — before the background flush finishes.
	written := false
	d.Write(3, func() { written = true })
	e.RunUntil(cfg.CmdLatency + cfg.DRAMPageLatency)
	if !written {
		t.Fatal("write not acked")
	}
	var readAt sim.Time
	start := e.Now()
	d.Read(3, func() { readAt = e.Now() })
	runDrained(t, e, d)
	// Served from DRAM: cmd + DRAM latency, far below the NAND path.
	want := cfg.CmdLatency + cfg.DRAMPageLatency
	if readAt-start != want {
		t.Fatalf("cached read took %v, want %v", readAt-start, want)
	}
	if d.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", d.Stats().CacheHits)
	}
	// After the flush completes, reads go to NAND again.
	start = e.Now()
	d.Read(3, func() { readAt = e.Now() })
	runDrained(t, e, d)
	if readAt-start < cfg.CmdLatency+cfg.Nand.ReadLatency {
		t.Fatal("post-flush read still served from cache")
	}
	if d.Stats().CacheHits != 1 {
		t.Fatal("unexpected extra cache hit")
	}
}
