package host

import (
	"testing"

	"repro/internal/approx"

	"repro/internal/sim"
)

func TestPCIePresets(t *testing.T) {
	g3 := PCIe(3, 4)
	if g3.GBps < 3.9 || g3.GBps > 4.0 {
		t.Fatalf("gen3 x4 = %v GB/s", g3.GBps)
	}
	g4 := PCIe(4, 4)
	if g4.GBps/g3.GBps < 1.9 || g4.GBps/g3.GBps > 2.1 {
		t.Fatal("gen4 should double gen3")
	}
	g5 := PCIe(5, 8)
	if g5.GBps < 31 || g5.GBps > 32 {
		t.Fatalf("gen5 x8 = %v GB/s", g5.GBps)
	}
	for _, p := range []LinkParams{g3, g4, g5} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPCIeUnknownGenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown gen")
		}
	}()
	PCIe(9, 4)
}

func TestLinkTransferTime(t *testing.T) {
	p := PCIe(3, 4) // 3.94 GB/s × 0.85 ≈ 3.35 GB/s
	// 1 GB should take ~0.299 s.
	got := p.TransferTime(1e9)
	if got < 290*sim.Millisecond || got > 310*sim.Millisecond {
		t.Fatalf("1GB transfer = %v", got)
	}
	if p.TransferTime(0) != 0 {
		t.Fatal("zero transfer")
	}
	if p.TransferTime(1) < 1 {
		t.Fatal("positive transfer must take ≥1ns")
	}
}

func TestLinkFullDuplex(t *testing.T) {
	e := sim.NewEngine()
	p := LinkParams{Name: "l", GBps: 1, Efficiency: 1, Latency: 0}
	l := NewLink(e, p)
	var downAt, upAt sim.Time
	l.ToDevice(1000, func() { downAt = e.Now() })
	l.FromDevice(1000, func() { upAt = e.Now() })
	e.Run()
	// Opposite directions run in parallel: both complete at 1000ns.
	if downAt != 1000 || upAt != 1000 {
		t.Fatalf("down=%v up=%v, want both 1000ns", downAt, upAt)
	}
	if l.BytesToDevice() != 1000 || l.BytesFromDevice() != 1000 {
		t.Fatal("byte counters")
	}
	if l.Utilization() <= 0 {
		t.Fatal("utilization")
	}
}

func TestLinkSameDirectionSerializes(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, LinkParams{Name: "l", GBps: 1, Efficiency: 1, Latency: 0})
	var ends []sim.Time
	l.ToDevice(1000, func() { ends = append(ends, e.Now()) })
	l.ToDevice(1000, func() { ends = append(ends, e.Now()) })
	e.Run()
	if ends[0] != 1000 || ends[1] != 2000 {
		t.Fatalf("ends = %v", ends)
	}
}

func TestLinkLatencyApplied(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, LinkParams{Name: "l", GBps: 1, Efficiency: 1, Latency: 500})
	var at sim.Time
	l.ToDevice(1000, func() { at = e.Now() })
	e.Run()
	if at != 1500 {
		t.Fatalf("transfer with latency = %v, want 1500", at)
	}
}

func TestGPUPresetsValid(t *testing.T) {
	for _, p := range []GPUParams{A100_40(), A100_80(), V100()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if A100_80().HBMGBps <= A100_40().HBMGBps {
		t.Fatal("A100-80 should have more bandwidth")
	}
}

func TestGPURoofline(t *testing.T) {
	p := A100_40()
	// Compute-bound: lots of flops, no bytes.
	if p.KernelTime(1e15, 0) != p.ComputeTime(1e15) {
		t.Fatal("compute-bound kernel")
	}
	// Memory-bound: element-wise update.
	if p.KernelTime(1, 1e12) != p.MemTime(1e12) {
		t.Fatal("memory-bound kernel")
	}
	// 1 TFLOP at 312 TFLOPS × 0.4 MFU ≈ 8ms.
	got := p.ComputeTime(1e12)
	if got < 7*sim.Millisecond || got > 9*sim.Millisecond {
		t.Fatalf("1 TFLOP = %v", got)
	}
	if p.ComputeTime(0) != 0 || p.MemTime(0) != 0 {
		t.Fatal("zero work should take zero time")
	}
}

func TestGPURunSerializes(t *testing.T) {
	e := sim.NewEngine()
	g := NewGPU(e, GPUParams{Name: "g", PeakTFLOPS: 1, MFU: 1, HBMGBps: 1, MemoryGB: 1})
	var ends []sim.Time
	g.Run(1e9, 0, func() { ends = append(ends, e.Now()) }) // 1ms
	g.Run(1e9, 0, func() { ends = append(ends, e.Now()) })
	e.Run()
	if ends[0] != sim.Millisecond || ends[1] != 2*sim.Millisecond {
		t.Fatalf("ends = %v", ends)
	}
	if !approx.Equal(g.Flops(), 2e9) {
		t.Fatal("flop counter")
	}
	if g.Params().Name != "g" {
		t.Fatal("params accessor")
	}
	_ = g.HBMBytes()
	_ = g.Utilization()
}

func TestCPUPresets(t *testing.T) {
	for _, p := range []CPUParams{XeonHost(), SSDController()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// The controller must be far weaker than the host — that asymmetry is
	// what separates the CtrlISP baseline from host offload.
	if SSDController().DRAMGBps*4 > XeonHost().DRAMGBps {
		t.Fatal("controller should be much weaker than host CPU")
	}
}

func TestCPURoofline(t *testing.T) {
	p := CPUParams{Name: "c", DRAMGBps: 10, GFLOPS: 100}
	// 1 GB at 10 GB/s = 100 ms; 1 GFLOP at 100 GFLOPS = 10 ms → mem-bound.
	got := p.KernelTime(1e9, 1e9)
	if got != 100*sim.Millisecond {
		t.Fatalf("kernel = %v, want 100ms (mem-bound)", got)
	}
	// Compute-bound case.
	got = p.KernelTime(1e11, 1e6)
	if got != sim.Second {
		t.Fatalf("kernel = %v, want 1s (compute-bound)", got)
	}
}

func TestCPURun(t *testing.T) {
	e := sim.NewEngine()
	c := NewCPU(e, CPUParams{Name: "c", DRAMGBps: 1, GFLOPS: 1})
	var at sim.Time
	c.Run(0, 1000, func() { at = e.Now() })
	e.Run()
	if at != 1000 {
		t.Fatalf("ran at %v", at)
	}
	if !approx.Equal(c.DRAMBytes(), 1000) || !approx.Equal(c.Flops(), 0) {
		t.Fatal("counters")
	}
	if c.Params().Name != "c" {
		t.Fatal("params")
	}
	_ = c.Utilization()
}

func TestInvalidParamsPanic(t *testing.T) {
	e := sim.NewEngine()
	cases := []func(){
		func() { NewLink(e, LinkParams{}) },
		func() { NewGPU(e, GPUParams{}) },
		func() { NewCPU(e, CPUParams{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid params accepted", i)
				}
			}()
			fn()
		}()
	}
}
