package ssd

import (
	"testing"

	"repro/internal/sim"
)

func TestQueuePairDepthOne(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	q := NewQueuePair(e, "io", 1)
	for lpa := int64(0); lpa < 4; lpa++ {
		d.Preload(lpa)
	}
	var ends []sim.Time
	for lpa := int64(0); lpa < 4; lpa++ {
		lpa := lpa
		q.Submit(func(complete func()) { d.Read(lpa, complete) },
			func() { ends = append(ends, e.Now()) })
	}
	runDrained(t, e, d)
	// QD1: strictly serialized even though the lpas sit on different
	// planes — each completion gap is at least one full device round trip.
	cfg := d.Config()
	minGap := cfg.CmdLatency + cfg.Nand.ReadLatency
	for i := 1; i < len(ends); i++ {
		if ends[i]-ends[i-1] < minGap {
			t.Fatalf("QD1 overlapped: gaps %v", ends)
		}
	}
	if q.Completed() != 4 || q.Submitted() != 4 {
		t.Fatalf("counters: %d/%d", q.Submitted(), q.Completed())
	}
}

func TestQueueDepthUnlocksParallelism(t *testing.T) {
	run := func(depth int) sim.Time {
		e := sim.NewEngine()
		d := NewDevice(e, smallConfig())
		q := NewQueuePair(e, "io", depth)
		n := int64(d.Geometry().Planes() * 4)
		for lpa := int64(0); lpa < n; lpa++ {
			d.Preload(lpa)
		}
		for lpa := int64(0); lpa < n; lpa++ {
			lpa := lpa
			q.Submit(func(complete func()) { d.Read(lpa, complete) }, nil)
		}
		drained := false
		d.Drain(func() { drained = true })
		e.Run()
		if !drained {
			t.Fatal("wedged")
		}
		return e.Now()
	}
	qd1 := run(1)
	qd32 := run(32)
	if qd32*4 > qd1 {
		t.Fatalf("QD32 (%v) should be ≥4× faster than QD1 (%v)", qd32, qd1)
	}
}

func TestQueuePairBackpressureCounters(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	q := NewQueuePair(e, "io", 2)
	for lpa := int64(0); lpa < 6; lpa++ {
		d.Preload(lpa)
		lpa := lpa
		q.Submit(func(complete func()) { d.Read(lpa, complete) }, nil)
	}
	if q.Outstanding() != 2 || q.Waiting() != 4 {
		t.Fatalf("outstanding=%d waiting=%d", q.Outstanding(), q.Waiting())
	}
	runDrained(t, e, d)
	if q.Outstanding() != 0 || q.Waiting() != 0 {
		t.Fatal("queue not drained")
	}
	if q.Utilization() <= 0 {
		t.Fatal("utilization")
	}
	if q.Depth() != 2 {
		t.Fatal("depth accessor")
	}
}

func TestQueuePairBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewQueuePair(sim.NewEngine(), "bad", 0)
}
