// Package host models the system outside the SSD: the PCIe/NVMe link,
// the training accelerator (GPU) and the host CPU update engine used by
// offload baselines.
package host

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// LinkParams describes a full-duplex host↔device interconnect.
type LinkParams struct {
	Name string
	// GBps is the raw per-direction bandwidth in GB/s (1e9 bytes).
	GBps float64
	// Efficiency derates raw bandwidth for protocol framing, TLP headers
	// and NVMe overheads (0 < Efficiency <= 1).
	Efficiency float64
	// Latency is the per-transfer initiation latency (DMA setup, doorbell).
	Latency sim.Time
}

// PCIe returns link parameters for a PCIe generation and lane count.
// Raw per-lane rates: gen3 0.985 GB/s, gen4 1.969 GB/s, gen5 3.938 GB/s.
func PCIe(gen, lanes int) LinkParams {
	var perLane float64
	switch gen {
	case 3:
		perLane = 0.985
	case 4:
		perLane = 1.969
	case 5:
		perLane = 3.938
	default:
		panic(fmt.Sprintf("host: unsupported PCIe gen %d", gen))
	}
	return LinkParams{
		Name:       fmt.Sprintf("PCIe%d x%d", gen, lanes),
		GBps:       perLane * float64(lanes),
		Efficiency: 0.85,
		Latency:    10 * sim.Microsecond,
	}
}

// Validate reports the first structural problem.
func (p LinkParams) Validate() error {
	if p.GBps <= 0 || p.Efficiency <= 0 || p.Efficiency > 1 || p.Latency < 0 {
		return fmt.Errorf("host: link params %+v", p)
	}
	return nil
}

// EffectiveGBps is the usable per-direction bandwidth.
func (p LinkParams) EffectiveGBps() units.GBps { return units.GBps(p.GBps * p.Efficiency) }

// TransferTime returns the wire occupancy for n bytes (excluding Latency).
func (p LinkParams) TransferTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	t := p.EffectiveGBps().TransferTime(units.Bytes(n))
	if t < 1 {
		t = 1
	}
	return t
}

// Link is a simulated full-duplex interconnect: each direction is a serial
// resource, so concurrent transfers in one direction queue while opposite
// directions proceed in parallel.
type Link struct {
	params   LinkParams
	toDev    *sim.Resource
	fromDev  *sim.Resource
	bytesTo  uint64
	bytesFrm uint64
}

// NewLink builds a link on the engine; invalid params panic.
func NewLink(eng *sim.Engine, p LinkParams) *Link {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Link{
		params:  p,
		toDev:   sim.NewResource(eng, p.Name+"/down", 1),
		fromDev: sim.NewResource(eng, p.Name+"/up", 1),
	}
}

// Params returns the link parameters.
func (l *Link) Params() LinkParams { return l.params }

// ToDevice transfers n bytes host→device, then calls done.
func (l *Link) ToDevice(n int64, done func()) {
	l.bytesTo += uint64(n)
	l.toDev.Use(l.params.Latency+l.params.TransferTime(n), done)
}

// FromDevice transfers n bytes device→host, then calls done.
func (l *Link) FromDevice(n int64, done func()) {
	l.bytesFrm += uint64(n)
	l.fromDev.Use(l.params.Latency+l.params.TransferTime(n), done)
}

// StreamToDevice transfers n bytes host→device as one segment of an
// already-programmed streaming DMA sequence: the device walks a standing
// descriptor ring, so the segment pays wire occupancy only — no
// per-transfer initiation latency. The interleaved-offload pipeline uses
// this for its subgroup prefetch/write-back streams; the per-stream
// doorbell is amortised over the whole subgroup and is negligible next to
// the stream's occupancy. Byte accounting is identical to ToDevice.
func (l *Link) StreamToDevice(n int64, done func()) {
	l.bytesTo += uint64(n)
	l.toDev.Use(l.params.TransferTime(n), done)
}

// StreamFromDevice transfers n bytes device→host as one segment of a
// streaming DMA sequence (see StreamToDevice).
func (l *Link) StreamFromDevice(n int64, done func()) {
	l.bytesFrm += uint64(n)
	l.fromDev.Use(l.params.TransferTime(n), done)
}

// BytesToDevice returns the total bytes moved host→device.
func (l *Link) BytesToDevice() uint64 { return l.bytesTo }

// BytesFromDevice returns the total bytes moved device→host.
func (l *Link) BytesFromDevice() uint64 { return l.bytesFrm }

// Utilization returns the mean busy fraction of the busier direction.
func (l *Link) Utilization() float64 {
	u1, u2 := l.toDev.Utilization(), l.fromDev.Utilization()
	if u1 > u2 {
		return u1
	}
	return u2
}
