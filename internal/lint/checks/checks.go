// Package checks holds the simlint analyzers: the determinism and
// unit-safety rules the simulator's results depend on. Each analyzer is a
// lint.Analyzer run by cmd/simlint (verify tier 3); all of them support
// suppression via `//simlint:allow <name>` on or directly above the
// flagged line.
package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// All returns every per-unit simlint analyzer in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Nondeterminism, UnitConv, FloatEq, SimTime, TraceSink}
}

// AllModule returns every module-wide simlint analyzer in stable order.
// Module analyzers run once over the whole load set (call graph in
// hand) rather than once per compilation unit.
func AllModule() []*lint.ModuleAnalyzer {
	return []*lint.ModuleAnalyzer{HotAlloc, PoolSafe, GlobalState}
}

// calleeObj resolves the object a call expression invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// pkgPathOf returns the defining package path of an object, or "".
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isMethod reports whether obj is a method (has a receiver).
func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isFloat reports whether t is (or is based on) a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
