// Package layout maps optimizer-state tensors onto the SSD's physical
// parallelism. The unit of placement is an "update unit": one page worth of
// parameters (PageSize/4 float32 elements) together with its optimizer
// state — `comps` resident pages in total (master weight page plus one page
// per state word).
//
// The placement strategy decides the core locality property of in-storage
// optimization: whether all pages of a unit live on one die (so the on-die
// unit can update them without any channel-bus traffic) and whether they
// sit on distinct planes (so the reads and programs overlap). Getting this
// wrong is what the F7 ablation quantifies.
package layout

import (
	"fmt"

	"repro/internal/ssd"
)

// Strategy selects a placement policy.
type Strategy int

// Placement policies.
const (
	// Colocated is the OptimStore layout: every page of a unit on the same
	// die, components spread across that die's planes, units round-robined
	// across dies.
	Colocated Strategy = iota
	// Linear is the naive log-append layout: pages round-robin across all
	// planes in LPA order, so a unit's components usually straddle dies.
	Linear
	// SplitByComponent shards each component (all weights, all first
	// moments, ...) across dies independently, the layout a tensor-
	// parallel host runtime would produce; a unit's pages are never
	// co-resident.
	SplitByComponent
)

// Strategies lists every policy, in presentation order.
func Strategies() []Strategy { return []Strategy{Colocated, Linear, SplitByComponent} }

// String names the policy.
func (s Strategy) String() string {
	switch s {
	case Colocated:
		return "colocated"
	case Linear:
		return "linear"
	case SplitByComponent:
		return "split"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Layout is a concrete placement of `units` update units of `comps`
// resident pages each onto a device geometry.
type Layout struct {
	geo      ssd.Geometry
	comps    int
	units    int64
	strategy Strategy
}

// New builds a layout. comps must be ≥ 1; the footprint must fit the
// device's logical page space (checked by the caller against its FTL).
func New(geo ssd.Geometry, comps int, units int64, s Strategy) (*Layout, error) {
	if comps < 1 {
		return nil, fmt.Errorf("layout: comps %d", comps)
	}
	if units < 1 {
		return nil, fmt.Errorf("layout: units %d", units)
	}
	switch s {
	case Colocated, Linear, SplitByComponent:
	default:
		return nil, fmt.Errorf("layout: unknown strategy %d", int(s))
	}
	return &Layout{geo: geo, comps: comps, units: units, strategy: s}, nil
}

// Strategy returns the placement policy.
func (l *Layout) Strategy() Strategy { return l.strategy }

// Comps returns the resident pages per unit.
func (l *Layout) Comps() int { return l.comps }

// Units returns the number of update units.
func (l *Layout) Units() int64 { return l.units }

// LogicalPages returns the total logical pages the layout occupies.
func (l *Layout) LogicalPages() int64 { return l.units * int64(l.comps) }

// LPA returns the logical page address of a unit's component. The LPA
// numbering is dense and strategy-independent; strategies differ only in
// physical placement.
func (l *Layout) LPA(unit int64, comp int) int64 {
	if unit < 0 || unit >= l.units || comp < 0 || comp >= l.comps {
		panic(fmt.Sprintf("layout: LPA(%d, %d) outside %d×%d", unit, comp, l.units, l.comps))
	}
	return unit*int64(l.comps) + int64(comp)
}

// Decompose inverts LPA.
func (l *Layout) Decompose(lpa int64) (unit int64, comp int) {
	if lpa < 0 || lpa >= l.LogicalPages() {
		panic(fmt.Sprintf("layout: lpa %d outside %d", lpa, l.LogicalPages()))
	}
	return lpa / int64(l.comps), int(lpa % int64(l.comps))
}

// PlaneIdx returns the device-global plane a unit's component is placed on.
func (l *Layout) PlaneIdx(unit int64, comp int) int {
	dies := l.geo.Dies()
	ppd := l.geo.PlanesPerDie
	switch l.strategy {
	case Colocated:
		// Units round-robin across dies; within a die, the component→plane
		// assignment rotates per unit so all planes carry equal load even
		// when comps < planes (otherwise a 3-page Adam unit would leave
		// plane 3 of every 4-plane die permanently idle).
		die := int(unit % int64(dies))
		rot := int(unit/int64(dies)) % ppd
		return die*ppd + (comp+rot)%ppd
	case Linear:
		lpa := l.LPA(unit, comp)
		return int(lpa % int64(l.geo.Planes()))
	case SplitByComponent:
		// Consecutive dies per component: a unit's components land on
		// different dies whenever comps <= dies.
		die := int((unit*int64(l.comps) + int64(comp)) % int64(dies))
		return die*ppd + comp%ppd
	default:
		panic("layout: unknown strategy")
	}
}

// PlaneMapper returns the lpa→plane function to install on the Device so
// first writes (or preloads) land where the layout dictates.
func (l *Layout) PlaneMapper() func(lpa int64) int {
	return func(lpa int64) int {
		unit, comp := l.Decompose(lpa)
		return l.PlaneIdx(unit, comp)
	}
}

// Placement describes where one unit's pages physically live.
type Placement struct {
	// Planes holds the device-global plane index per component.
	Planes []int
	// SameDie is true when every component is on one die — the property
	// that enables a purely on-die update.
	SameDie bool
	// HomeDie is the die of component 0 (where the kernel executes).
	HomeChannel, HomeDie int
	// DistinctPlanes counts how many different planes the components
	// occupy — the read/program overlap factor.
	DistinctPlanes int
}

// Placement computes the physical placement of one unit.
func (l *Layout) Placement(unit int64) Placement {
	p := Placement{Planes: make([]int, l.comps), SameDie: true}
	seen := map[int]bool{}
	homeDie := -1
	for c := 0; c < l.comps; c++ {
		idx := l.PlaneIdx(unit, c)
		p.Planes[c] = idx
		seen[idx] = true
		die := idx / l.geo.PlanesPerDie
		if homeDie == -1 {
			homeDie = die
		} else if die != homeDie {
			p.SameDie = false
		}
	}
	p.DistinctPlanes = len(seen)
	home := l.PlaneIdx(unit, 0)
	p.HomeChannel, p.HomeDie, _ = l.geo.PlaneLoc(home)
	return p
}

// ColocationFraction returns the fraction of units whose pages share a die
// — 1.0 for Colocated, lower for the ablation layouts. Sampled exactly
// over all units when units is small, else over a stride sample.
func (l *Layout) ColocationFraction() float64 {
	n := l.units
	stride := int64(1)
	if n > 4096 {
		stride = n / 4096
	}
	var same, total int64
	for u := int64(0); u < n; u += stride {
		if l.Placement(u).SameDie {
			same++
		}
		total++
	}
	return float64(same) / float64(total)
}
