package approx

import (
	"math"
	"testing"
)

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{0, 0, true},
		{1, 1 + 1e-12, true},             // inside tolerance
		{1, 1 + 1e-6, false},             // outside tolerance
		{1e15, 1e15 * (1 + 1e-12), true}, // relative, not absolute
		{1e15, 1e15 + 1, true},
		{1e-12, 2e-12, true}, // below 1: absolute scale
		{0, 1e-8, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e308, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClose(t *testing.T) {
	if !Close(100, 101, 0.02) {
		t.Fatal("2% tolerance rejected a 1% gap")
	}
	if Close(100, 103, 0.02) {
		t.Fatal("2% tolerance accepted a 3% gap")
	}
}

func TestZero(t *testing.T) {
	if !Zero(1e-12, 1e-9) || Zero(1e-6, 1e-9) || Zero(math.NaN(), 1) {
		t.Fatal("Zero tolerance handling")
	}
}
