package optim

import (
	"math"
	"testing"

	"repro/internal/approx"
)

func TestClipGlobalNorm(t *testing.T) {
	g := []float32{3, 4} // norm 5
	norm := ClipGlobalNorm(g, 1)
	if !approx.Equal(norm, 5) {
		t.Fatalf("returned norm = %v", norm)
	}
	if got := GlobalNorm(g); math.Abs(got-1) > 1e-6 {
		t.Fatalf("post-clip norm = %v", got)
	}
	// Direction preserved.
	if math.Abs(float64(g[0])/float64(g[1])-0.75) > 1e-6 {
		t.Fatal("direction changed")
	}
	// Under the limit: untouched.
	h := []float32{0.1, 0.1}
	ClipGlobalNorm(h, 10)
	//simlint:allow floateq under-limit gradients must stay bit-identical
	if h[0] != 0.1 {
		t.Fatal("under-limit gradient modified")
	}
	// Zero gradient: untouched, no NaN.
	z := []float32{0, 0}
	if n := ClipGlobalNorm(z, 1); !approx.Equal(n, 0) || !approx.Equal(float64(z[0]), 0) {
		t.Fatal("zero gradient mishandled")
	}
}

func TestClipBadNormPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ClipGlobalNorm([]float32{1}, 0)
}

func TestWarmupCosineShape(t *testing.T) {
	s, err := NewWarmupCosine(100, 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup: rising from ~0 to 1.
	if s.LRAt(0) >= s.LRAt(50) || s.LRAt(50) >= s.LRAt(99) {
		t.Fatal("warmup not rising")
	}
	if got := s.LRAt(99); math.Abs(got-1) > 1e-9 {
		t.Fatalf("end of warmup = %v", got)
	}
	// Decay: monotone down to MinFactor.
	prev := 1.0
	for step := 100; step < 1000; step += 50 {
		v := s.LRAt(step)
		if v > prev+1e-12 {
			t.Fatalf("cosine not decaying at %d", step)
		}
		prev = v
	}
	if got := s.LRAt(5000); !approx.Equal(got, 0.1) {
		t.Fatalf("after total = %v, want MinFactor", got)
	}
}

func TestWarmupCosineRejects(t *testing.T) {
	for _, c := range [][3]int{{-1, 10, 0}, {10, 10, 0}, {10, 5, 0}} {
		if _, err := NewWarmupCosine(c[0], c[1], 0); err == nil {
			t.Errorf("accepted %v", c)
		}
	}
	if _, err := NewWarmupCosine(1, 10, 1.5); err == nil {
		t.Fatal("accepted factor > 1")
	}
}

func TestInverseSqrt(t *testing.T) {
	s := InverseSqrt{WarmupSteps: 16}
	if got := s.LRAt(15); math.Abs(got-1) > 1e-9 {
		t.Fatalf("peak = %v", got)
	}
	// 4× the steps → half the rate.
	if r := s.LRAt(63) / s.LRAt(15); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("inverse-sqrt ratio = %v", r)
	}
	// Degenerate warmup handled.
	if (InverseSqrt{}).LRAt(0) <= 0 {
		t.Fatal("zero warmup broke")
	}
}

func TestConstantSchedule(t *testing.T) {
	if !approx.Equal((ConstantSchedule{}).LRAt(12345), 1) {
		t.Fatal("constant")
	}
}

func TestScheduledMatchesManualScaling(t *testing.T) {
	// For SGD, scheduled step with factor f must equal lr·f·g exactly.
	sched, _ := NewWarmupCosine(10, 100, 0)
	s := NewScheduled(New(SGD, Hyper{LR: 0.1}), sched)
	w := []float32{1}
	s.Step(w, []float32{1})
	want := 1 - 0.1*float32(sched.LRAt(0))
	if math.Abs(float64(w[0]-want)) > 1e-7 {
		t.Fatalf("w = %v, want %v", w[0], want)
	}
}

func TestScheduledFullFactorPassThrough(t *testing.T) {
	s := NewScheduled(New(Adam, Hyper{LR: 0.01}), ConstantSchedule{})
	w := []float32{1, 2}
	ref := []float32{1, 2}
	refOpt := New(Adam, Hyper{LR: 0.01})
	g := []float32{0.5, -0.5}
	for i := 0; i < 5; i++ {
		s.Step(w, g)
		refOpt.Step(ref, g)
	}
	for i := range w {
		//simlint:allow floateq both paths must produce bit-identical weights
		if w[i] != ref[i] {
			t.Fatal("constant schedule should be a pass-through")
		}
	}
}

func TestScheduledAdamStateAdvancesUnscaled(t *testing.T) {
	// With a tiny factor, weights barely move, but the inner optimizer's
	// step count (and moments) must still advance — framework semantics.
	sched, _ := NewWarmupCosine(1000, 2000, 0)
	s := NewScheduled(New(Adam, Hyper{LR: 0.01}), sched)
	w := []float32{1}
	for i := 0; i < 3; i++ {
		s.Step(w, []float32{1})
	}
	if s.Inner.Steps() != 3 {
		t.Fatalf("inner steps = %d", s.Inner.Steps())
	}
	//simlint:allow floateq 1 is the untouched initial-weight sentinel
	if w[0] == 1 {
		t.Fatal("weights did not move at all")
	}
	if math.Abs(float64(w[0]-1)) > 0.01*3 {
		t.Fatal("moved more than the unscheduled bound")
	}
}
