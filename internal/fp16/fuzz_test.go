package fp16

import (
	"math"
	"testing"
)

// FuzzBitsRoundTrip drives the decoder/encoder pair from the raw bit
// pattern side: every binary16 value is exactly representable in binary32,
// so decoding and re-encoding must reproduce the identical bit pattern —
// except NaNs, which canonicalise but must stay NaNs.
func FuzzBitsRoundTrip(f *testing.F) {
	f.Add(uint16(0))      // +0
	f.Add(uint16(0x8000)) // -0
	f.Add(uint16(0x7C00)) // +Inf
	f.Add(uint16(0xFC00)) // -Inf
	f.Add(uint16(0x7C01)) // signalling NaN
	f.Add(uint16(0x0001)) // smallest subnormal
	f.Add(uint16(0x03FF)) // largest subnormal
	f.Add(uint16(0x0400)) // smallest normal
	f.Add(uint16(0x7BFF)) // largest finite (65504)
	f.Add(uint16(0x3C00)) // 1.0
	f.Fuzz(func(t *testing.T, bits uint16) {
		h := Bits(bits)
		v := ToFloat32(h)
		back := FromFloat32(v)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("NaN %#04x decoded to %v, re-encoded to non-NaN %#04x", bits, v, uint16(back))
			}
			if !math.IsNaN(float64(v)) {
				t.Fatalf("NaN bits %#04x decoded to non-NaN float %v", bits, v)
			}
			return
		}
		if back != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", bits, v, uint16(back))
		}
		if h.IsInf() != math.IsInf(float64(v), 0) {
			t.Fatalf("IsInf(%#04x)=%v but decoded value is %v", bits, h.IsInf(), v)
		}
		// Sign must survive the trip through float32 exactly, zeros included.
		if (bits&0x8000 != 0) != math.Signbit(float64(v)) {
			t.Fatalf("sign of %#04x lost: decoded %v", bits, v)
		}
	})
}

// FuzzRoundProperties checks the quantiser's order-theoretic contract on
// arbitrary float32 pairs: idempotence, monotonicity, sign preservation,
// the normal-range relative error bound, and no spurious flush to zero.
func FuzzRoundProperties(f *testing.F) {
	f.Add(float32(1.0), float32(1.0009765625)) // adjacent half-precision values
	f.Add(float32(-65504), float32(65504))
	f.Add(float32(65519.996), float32(65520)) // overflow threshold
	f.Add(float32(5.9604645e-08), float32(-5.9604645e-08))
	f.Add(float32(0.1), float32(0.2))
	f.Fuzz(func(t *testing.T, a, b float32) {
		for _, x := range []float32{a, b} {
			if math.IsNaN(float64(x)) {
				continue
			}
			r := Round(x)
			//simlint:allow floateq idempotence is a bit-exact property
			if Round(r) != r {
				t.Fatalf("Round not idempotent at %v: %v -> %v", x, r, Round(r))
			}
			if math.Signbit(float64(x)) != math.Signbit(float64(r)) {
				t.Fatalf("Round(%v) = %v flipped sign", x, r)
			}
			ax := math.Abs(float64(x))
			if ax >= MinNormal && ax <= MaxValue {
				if rel := math.Abs(float64(r)-float64(x)) / ax; rel > Epsilon {
					t.Fatalf("Round(%v) = %v: relative error %g exceeds epsilon %g", x, r, rel, Epsilon)
				}
			}
			//simlint:allow floateq flush-to-zero is a bit-exact property
			if ax >= MinSubnormal && !math.IsInf(float64(x), 0) && r == 0 {
				t.Fatalf("Round(%v) flushed a representable magnitude to zero", x)
			}
		}
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if Round(lo) > Round(hi) {
			t.Fatalf("Round not monotone: Round(%v)=%v > Round(%v)=%v", lo, Round(lo), hi, Round(hi))
		}
	})
}
