package nand

import (
	"fmt"

	"repro/internal/sim"
)

// OpCounts tallies the operations a die has executed, for energy accounting
// and report verification.
type OpCounts struct {
	Reads    uint64 // page reads (tR)
	Programs uint64 // page programs (tPROG)
	Erases   uint64 // block erases
	BytesIn  uint64 // bytes moved die<-bus
	BytesOut uint64 // bytes moved die->bus
}

// Add accumulates another tally into c.
func (c *OpCounts) Add(o OpCounts) {
	c.Reads += o.Reads
	c.Programs += o.Programs
	c.Erases += o.Erases
	c.BytesIn += o.BytesIn
	c.BytesOut += o.BytesOut
}

// blockState tracks the physical condition of one block.
type blockState struct {
	writePtr   int // next programmable page (NAND programs sequentially)
	eraseCount int
}

// planeServer abstracts the plane's occupancy model: a plain FIFO resource,
// or a preemptible one when read-suspend is enabled. Reads go through
// high(); programs and erases through low().
type planeServer interface {
	low(d sim.Time, done func())
	high(d sim.Time, done func())
	utilization() float64
}

type fifoPlane struct{ r *sim.Resource }

func (f fifoPlane) low(d sim.Time, done func())  { f.r.Use(d, done) }
func (f fifoPlane) high(d sim.Time, done func()) { f.r.Use(d, done) }
func (f fifoPlane) utilization() float64         { return f.r.Utilization() }

type suspendPlane struct{ p *sim.Preemptible }

func (s suspendPlane) low(d sim.Time, done func())  { s.p.Use(d, done) }
func (s suspendPlane) high(d sim.Time, done func()) { s.p.UsePriority(d, done) }
func (s suspendPlane) utilization() float64         { return s.p.Utilization() }

// plane is one independently operating plane of a die.
type plane struct {
	busy   planeServer
	pre    *sim.Preemptible // non-nil when read-suspend is enabled
	blocks []blockState
}

// Die models one NAND die: PlanesPerDie independently schedulable planes,
// each with its own block array. All methods are asynchronous: they return
// immediately and invoke the completion callback via simulation events.
//
// Physical invariants enforced (violations panic — they indicate FTL bugs,
// not runtime conditions):
//   - pages within a block are programmed strictly in order,
//   - a full block must be erased before reprogramming,
//   - addresses must be inside the die geometry.
type Die struct {
	eng    *sim.Engine
	name   string
	params Params
	planes []*plane
	counts OpCounts
	failed bool
}

// NewDie builds a die with the given parameters. It panics on invalid
// parameters; construction happens once at configuration time.
func NewDie(eng *sim.Engine, name string, p Params) *Die {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &Die{eng: eng, name: name, params: p}
	d.planes = make([]*plane, p.PlanesPerDie)
	for i := range d.planes {
		pl := &plane{blocks: make([]blockState, p.BlocksPerPlane)}
		planeName := fmt.Sprintf("%s/plane%d", name, i)
		if p.ReadSuspend {
			pl.pre = sim.NewPreemptible(eng, planeName, p.ResumeOverhead)
			pl.busy = suspendPlane{pl.pre}
		} else {
			pl.busy = fifoPlane{sim.NewResource(eng, planeName, 1)}
		}
		d.planes[i] = pl
	}
	return d
}

// Name returns the diagnostic name.
func (d *Die) Name() string { return d.name }

// Params returns the die parameters.
func (d *Die) Params() Params { return d.params }

// Counts returns the accumulated operation tally.
func (d *Die) Counts() OpCounts { return d.counts }

func (d *Die) checkAddr(a Addr) *plane {
	if d.failed {
		panic(fmt.Sprintf("nand: %s: operation on failed die", d.name))
	}
	if !a.valid(d.params) {
		panic(fmt.Sprintf("nand: %s: address %v outside geometry", d.name, a))
	}
	return d.planes[a.Plane]
}

// Fail marks the die as failed (chip-level defect). A failed die keeps its
// state for post-mortem inspection, but any further array operation panics
// — the controller must never issue work to a die it knows is dead.
func (d *Die) Fail() { d.failed = true }

// Failed reports whether the die has been marked failed.
func (d *Die) Failed() bool { return d.failed }

// RestoreBlock installs a block's physical condition — write pointer and
// accumulated P/E cycles — directly, without simulating operations or
// touching the op counts. Crash-recovery rebuilds (ssd.Recover) use it to
// copy the durable media state of a crashed device into a fresh one.
func (d *Die) RestoreBlock(planeIdx, block, writePtr, eraseCount int) {
	if planeIdx < 0 || planeIdx >= len(d.planes) || block < 0 || block >= d.params.BlocksPerPlane {
		panic(fmt.Sprintf("nand: %s: restore of block %d/%d outside geometry", d.name, planeIdx, block))
	}
	if writePtr < 0 || writePtr > d.params.PagesPerBlock || eraseCount < 0 {
		panic(fmt.Sprintf("nand: %s: restore block %d/%d writePtr=%d erases=%d",
			d.name, planeIdx, block, writePtr, eraseCount))
	}
	blk := &d.planes[planeIdx].blocks[block]
	blk.writePtr = writePtr
	blk.eraseCount = eraseCount
}

// Read senses page a into the plane's page register, occupying the plane
// for tR, then calls done. Reading a page that was never programmed is
// legal at this layer (the FTL forbids it); the array timing is identical.
func (d *Die) Read(a Addr, done func()) {
	pl := d.checkAddr(a)
	d.counts.Reads++
	pl.busy.high(d.params.ReadLatency, done)
}

// Program writes the page register into page a, occupying the plane for
// tPROG. It enforces sequential programming and erase-before-rewrite.
func (d *Die) Program(a Addr, done func()) {
	pl := d.checkAddr(a)
	blk := &pl.blocks[a.Block]
	if a.Page != blk.writePtr {
		panic(fmt.Sprintf("nand: %s: program %v but write pointer at page %d",
			d.name, a, blk.writePtr))
	}
	if blk.writePtr >= d.params.PagesPerBlock {
		panic(fmt.Sprintf("nand: %s: program into full block %v", d.name, a))
	}
	blk.writePtr++
	d.counts.Programs++
	pl.busy.low(d.params.ProgramLatency, done)
}

// Occupy holds a.Plane busy for an arbitrary duration — used by the
// controller to model recovery procedures (read-retry, soft-decode passes)
// that consume plane time without being ordinary array operations.
func (d *Die) Occupy(a Addr, dur sim.Time, done func()) {
	pl := d.checkAddr(a)
	pl.busy.high(dur, done)
}

// MarkProgrammed advances a block's write pointer without simulating the
// operation (no plane time, no wear, no energy). It installs
// pre-conditioned content at time zero and enforces the same sequential-
// programming invariant as Program.
func (d *Die) MarkProgrammed(a Addr) {
	pl := d.checkAddr(a)
	blk := &pl.blocks[a.Block]
	if a.Page != blk.writePtr || blk.writePtr >= d.params.PagesPerBlock {
		panic(fmt.Sprintf("nand: %s: mark-programmed %v but write pointer at page %d",
			d.name, a, blk.writePtr))
	}
	blk.writePtr++
}

// Erase resets block a.Block on a.Plane, occupying the plane for tBERS and
// incrementing the block's program/erase cycle count.
func (d *Die) Erase(a Addr, done func()) {
	pl := d.checkAddr(Addr{Plane: a.Plane, Block: a.Block})
	blk := &pl.blocks[a.Block]
	blk.writePtr = 0
	blk.eraseCount++
	d.counts.Erases++
	pl.busy.low(d.params.EraseLatency, done)
}

// WritePtr returns the next programmable page index of a block.
func (d *Die) WritePtr(planeIdx, block int) int {
	return d.planes[planeIdx].blocks[block].writePtr
}

// EraseCount returns the accumulated P/E cycles of a block.
func (d *Die) EraseCount(planeIdx, block int) int {
	return d.planes[planeIdx].blocks[block].eraseCount
}

// MaxEraseCount returns the largest P/E count across all blocks.
func (d *Die) MaxEraseCount() int {
	max := 0
	for _, pl := range d.planes {
		for i := range pl.blocks {
			if pl.blocks[i].eraseCount > max {
				max = pl.blocks[i].eraseCount
			}
		}
	}
	return max
}

// TotalEraseCount sums P/E cycles across all blocks.
func (d *Die) TotalEraseCount() int64 {
	var total int64
	for _, pl := range d.planes {
		for i := range pl.blocks {
			total += int64(pl.blocks[i].eraseCount)
		}
	}
	return total
}

// PlaneUtilization returns the mean busy fraction of each plane.
func (d *Die) PlaneUtilization() []float64 {
	u := make([]float64, len(d.planes))
	for i, pl := range d.planes {
		u[i] = pl.busy.utilization()
	}
	return u
}

// Preemptions returns the total program/erase suspends across all planes
// (zero when read-suspend is disabled).
func (d *Die) Preemptions() uint64 {
	var total uint64
	for _, pl := range d.planes {
		if pl.pre != nil {
			total += pl.pre.Preemptions()
		}
	}
	return total
}

// addBytesIn/addBytesOut are called by Channel transfers targeting this die.
func (d *Die) addBytesIn(n int)  { d.counts.BytesIn += uint64(n) }
func (d *Die) addBytesOut(n int) { d.counts.BytesOut += uint64(n) }
