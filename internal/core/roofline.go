package core

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Roofline is the analytic lower bound of one optimizer step for each
// system: the slowest of the interfaces the step must cross. The
// discrete-event simulation can only add queueing and dependency stalls on
// top, so `floor ≤ simulated ≤ k·floor` (small k) is the package's
// model-sanity invariant — a simulated time below the floor means the
// simulator is dropping work; far above it means an accidental
// serialization. The invariant registry (internal/invariant) machine-checks
// this sandwich for every system across swept configurations.
type Roofline struct {
	PCIe    sim.Time // external link occupancy (busier direction)
	Bus     sim.Time // aggregate channel-bus occupancy
	Media   sim.Time // plane-level read+program occupancy
	Compute sim.Time // update-kernel occupancy (ODP, controller CPU or GPU)
}

// Floor returns the binding constraint.
func (r Roofline) Floor() sim.Time {
	f := r.PCIe
	for _, t := range []sim.Time{r.Bus, r.Media, r.Compute} {
		if t > f {
			f = t
		}
	}
	return f
}

// Binding names the binding constraint, for reports and regression tests.
// Ties resolve to the first name in pcie, bus, media, compute order.
func (r Roofline) Binding() string {
	candidates := []struct {
		name string
		t    sim.Time
	}{{"pcie", r.PCIe}, {"bus", r.Bus}, {"media", r.Media}, {"compute", r.Compute}}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.t > best.t {
			best = c
		}
	}
	return best.name
}

// RooflineFor computes the analytic bound for a system by its constructor
// name (the names core.NewSystem accepts). ok is false for unknown names.
func RooflineFor(system string, cfg Config) (r Roofline, ok bool) {
	switch system {
	case "optimstore":
		return OptimStoreRoofline(cfg), true
	case "hostoffload":
		return HostOffloadRoofline(cfg), true
	case "interleaved":
		return InterleavedRoofline(cfg), true
	case "ctrlisp":
		return CtrlISPRoofline(cfg), true
	case "gpuresident":
		return GPUResidentRoofline(cfg), true
	default:
		return Roofline{}, false
	}
}

// OptimStoreRoofline computes the analytic bound for the in-storage system.
func OptimStoreRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	gradB := float64(cfg.GradBytesPerUnit())
	woutB := float64(cfg.WeightOutBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())
	dies := float64(cfg.SSD.Geometry().Dies())
	kernel := kernelFor(cfg)
	passes := float64(kernel.ReadPasses)

	var r Roofline
	// PCIe: gradients in, weights out — full duplex, take the max.
	ext := cfg.Link.EffectiveGBps()
	in := touched * gradB / float64(ext) // bytes/GBps = ns
	out := touched * woutB / float64(ext)
	r.PCIe = units.Nanos(maxf(in, out))
	// Channel buses carry gradients in and weights out, aggregate.
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * (gradB + woutB))
	// Media: each unit's pages are read (per pass) and programmed once,
	// spread across all planes. Reads and programs of one page share its
	// plane, so their times add.
	perPlanePages := touched * comps / planes
	tR := float64(cfg.SSD.Nand.ReadLatency)
	tP := float64(cfg.SSD.Nand.ProgramLatency)
	r.Media = units.Nanos(perPlanePages * (passes*tR + tP))
	// ODP compute, spread across dies.
	elems := float64(cfg.ElemsPerPage())
	r.Compute = units.Nanos(touched / dies * float64(cfg.ODP.ComputeTime(int(elems), kernel.FlopsPerElem)))
	return r
}

// HostOffloadRoofline computes the analytic bound for the baseline.
func HostOffloadRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	residentB := float64(cfg.ResidentBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())

	var r Roofline
	// Resident state crosses PCIe both ways (full duplex: per direction).
	r.PCIe = cfg.Link.EffectiveGBps().TransferTimeF(touched * residentB)
	// And the channel buses both ways (half duplex: sum).
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * 2 * residentB)
	// Media: read once, program once per page.
	perPlanePages := touched * comps / planes
	r.Media = units.Nanos(perPlanePages *
		float64(cfg.SSD.Nand.ReadLatency+cfg.SSD.Nand.ProgramLatency))
	// GPU update kernel: the serial GPU resource must stream the state
	// through HBM and retire the kernel FLOPs. Batch roofline times sum to
	// at least the whole-step roofline, so this is a valid lower bound.
	kernel := kernelFor(cfg)
	elems := float64(cfg.ElemsPerPage())
	gradB := float64(cfg.GradBytesPerUnit())
	woutB := float64(cfg.WeightOutBytesPerUnit())
	hbmBytes := touched * (2*residentB + gradB + woutB)
	flops := touched * elems * float64(kernel.FlopsPerElem)
	r.Compute = cfg.GPU.KernelTime(flops, hbmBytes)
	return r
}

// InterleavedRoofline computes the analytic bound for the interleaved-
// offloading baseline. The traffic shape is HostOffload's — resident
// state over PCIe and the channel buses both ways, media read and
// programmed once per page — but the update kernel runs on the host CPU,
// whose DRAM-bandwidth roofline replaces the GPU's HBM one. The subgroup
// depth shapes the pipeline, not the mandatory traffic, so it does not
// appear here: any K pays the same floor.
func InterleavedRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	residentB := float64(cfg.ResidentBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())

	var r Roofline
	// Resident state crosses PCIe both ways (full duplex: per direction).
	r.PCIe = cfg.Link.EffectiveGBps().TransferTimeF(touched * residentB)
	// And the channel buses both ways (half duplex: sum).
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * 2 * residentB)
	// Media: read once, program once per page.
	perPlanePages := touched * comps / planes
	r.Media = units.Nanos(perPlanePages *
		float64(cfg.SSD.Nand.ReadLatency+cfg.SSD.Nand.ProgramLatency))
	// Host CPU update kernel: state read+written through DRAM, gradients
	// read, weights produced, plus the kernel FLOPs.
	kernel := kernelFor(cfg)
	elems := float64(cfg.ElemsPerPage())
	gradB := float64(cfg.GradBytesPerUnit())
	woutB := float64(cfg.WeightOutBytesPerUnit())
	dramBytes := touched * (2*residentB + gradB + woutB)
	flops := touched * elems * float64(kernel.FlopsPerElem)
	r.Compute = cfg.HostCPU.KernelTime(flops, dramBytes)
	return r
}

// CtrlISPRoofline computes the analytic bound for the in-controller
// processing baseline: gradients and low-precision weights cross PCIe, the
// full resident state crosses the channel buses both ways, the media is
// read and programmed once per page, and the controller's embedded cores
// run the update kernel.
func CtrlISPRoofline(cfg Config) Roofline {
	touched := float64(cfg.TouchedUnits())
	residentB := float64(cfg.ResidentBytesPerUnit())
	gradB := float64(cfg.GradBytesPerUnit())
	woutB := float64(cfg.WeightOutBytesPerUnit())
	comps := float64(cfg.Comps())
	planes := float64(cfg.SSD.Geometry().Planes())
	kernel := kernelFor(cfg)

	var r Roofline
	// PCIe: gradients in, working-precision weights out.
	ext := cfg.Link.EffectiveGBps()
	r.PCIe = units.Nanos(maxf(touched*gradB/float64(ext), touched*woutB/float64(ext)))
	// Channel buses: every resident page travels die→controller and back.
	bus := cfg.SSD.ChannelMBps().Bps()
	r.Bus = bus.TransferTimeF(touched * 2 * residentB)
	// Media: read once, program once per page.
	perPlanePages := touched * comps / planes
	r.Media = units.Nanos(perPlanePages *
		float64(cfg.SSD.Nand.ReadLatency+cfg.SSD.Nand.ProgramLatency))
	// Controller kernel: one serial engine; per-unit roofline times sum.
	elems := float64(cfg.ElemsPerPage())
	perUnit := cfg.CtrlCPU.KernelTime(elems*float64(kernel.FlopsPerElem),
		2*residentB+gradB+woutB)
	r.Compute = units.Nanos(touched * float64(perUnit))
	return r
}

// GPUResidentRoofline computes the analytic bound for the no-offload
// reference: a single HBM-roofline update kernel, no external traffic.
// The system is itself analytic, so its report matches the floor exactly.
func GPUResidentRoofline(cfg Config) Roofline {
	spec := cfg.Spec()
	kernel := kernelFor(cfg)
	touched := float64(cfg.Model.Params) * cfg.Model.UpdateFraction()
	hbmBytes := touched * (2*spec.ResidentBytes() + float64(spec.GradBytes+spec.WeightOutBytes))
	flops := touched * float64(kernel.FlopsPerElem)
	return Roofline{Compute: cfg.GPU.KernelTime(flops, hbmBytes)}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
