// Package repro's benchmark harness regenerates every table and figure of
// the reconstructed OptimStore evaluation (DESIGN.md §3): one benchmark per
// experiment ID, each reporting the experiment's headline quantity as a
// custom metric next to the usual ns/op.
//
// Run everything with `go test -bench=. -benchmem`, or one experiment with
// `go test -bench=BenchmarkF1`. Benchmarks use the quick simulation window
// so the suite completes in seconds; use cmd/optimstore for full-window
// runs.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/experiments"
)

var quick = experiments.Options{Quick: true}

// runExperiment executes one experiment per benchmark iteration and
// returns the last result for metric extraction.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// headline runs the two headline systems once and reports speedup metrics.
func headline(b *testing.B, model dnn.Model) (*core.Report, *core.Report) {
	b.Helper()
	cfg := core.DefaultConfig(model)
	cfg.MaxSimUnits = 256
	off, err := core.NewHostOffload(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	opt, err := core.NewOptimStore(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	return off, opt
}

func BenchmarkT1_Config(b *testing.B) {
	res := runExperiment(b, "T1")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "config-rows")
}

func BenchmarkT2_Models(b *testing.B) {
	res := runExperiment(b, "T2")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "models")
}

func BenchmarkF1_StepLatency(b *testing.B) {
	runExperiment(b, "F1")
	off, opt := headline(b, dnn.GPT13B())
	b.ReportMetric(opt.OptStepTime.Seconds(), "optimstore-step-s")
	b.ReportMetric(off.OptStepTime.Seconds(), "offload-step-s")
	b.ReportMetric(opt.Speedup(off), "speedup-x")
}

func BenchmarkF2_ModelScaling(b *testing.B) {
	res := runExperiment(b, "F2")
	// Last point of the opt-step speedup series = largest model.
	s := res.Figures[0].Series[0]
	b.ReportMetric(s.Points[len(s.Points)-1].Y, "speedup-at-max-scale-x")
}

func BenchmarkF3_Optimizers(b *testing.B) {
	res := runExperiment(b, "F3")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "optimizers")
}

func BenchmarkF4_Energy(b *testing.B) {
	runExperiment(b, "F4")
	off, opt := headline(b, dnn.GPT13B())
	b.ReportMetric(off.Energy.Total()/opt.Energy.Total(), "energy-reduction-x")
	b.ReportMetric(opt.EnergyPerParamPJ(opt.Params), "pJ-per-param")
}

func BenchmarkF5_Parallelism(b *testing.B) {
	res := runExperiment(b, "F5")
	s := res.Figures[0].Series[0]
	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	b.ReportMetric(first/last, "scaling-gain-x")
}

func BenchmarkF6_ODPThroughput(b *testing.B) {
	res := runExperiment(b, "F6")
	s := res.Figures[0].Series[0]
	b.ReportMetric(s.Points[0].Y/s.Points[len(s.Points)-1].Y, "lane-scaling-gain-x")
}

func BenchmarkF7_Layout(b *testing.B) {
	res := runExperiment(b, "F7")
	s := res.Figures[0].Series[0]
	b.ReportMetric(s.Points[len(s.Points)-1].Y/s.Points[0].Y, "split-slowdown-x")
}

func BenchmarkF8_Precision(b *testing.B) {
	res := runExperiment(b, "F8")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "rows")
}

func BenchmarkF9_Endurance(b *testing.B) {
	res := runExperiment(b, "F9")
	pts := res.Figures[0].Series[0].Points
	b.ReportMetric(pts[0].Y, "slc-lifetime-steps")
	b.ReportMetric(pts[2].Y, "tlc-lifetime-steps")
}

func BenchmarkF10_EndToEnd(b *testing.B) {
	runExperiment(b, "F10")
	off, opt := headline(b, dnn.GPT13B())
	b.ReportMetric(opt.TokensPerSec, "optimstore-tokens-per-s")
	b.ReportMetric(off.TokensPerSec, "offload-tokens-per-s")
}

func BenchmarkF11_GC(b *testing.B) {
	res := runExperiment(b, "F11")
	rnd, _ := res.Figures[0].Series[1].YAt(0.07)
	b.ReportMetric(rnd, "waf-random-at-7pct-op")
}

func BenchmarkF12_ODPCost(b *testing.B) {
	res := runExperiment(b, "F12")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "design-points")
}

// BenchmarkSimulatorThroughput measures the discrete-event simulator
// itself: simulated NAND operations per wall-clock second for the default
// OptimStore window — the number that decides how large a window is
// affordable.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 512
	b.ResetTimer()
	var ops float64
	for i := 0; i < b.N; i++ {
		r, err := core.NewOptimStore(cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		ops = float64(r.SimUnits) * float64(3+3) // reads+programs per unit
	}
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds(), "sim-nand-ops/s")
}

func BenchmarkF13_SparseUpdates(b *testing.B) {
	res := runExperiment(b, "F13")
	// Speedup at the sparsest measured fraction.
	off := res.Figures[0].Series[0].Points[0].Y
	opt := res.Figures[0].Series[1].Points[0].Y
	b.ReportMetric(off/opt, "sparse-speedup-x")
}

func BenchmarkF14_Checkpoint(b *testing.B) {
	res := runExperiment(b, "F14")
	tab := res.Tables[0]
	b.ReportMetric(float64(tab.NumRows()), "models")
}

func BenchmarkF15_Overlap(b *testing.B) {
	res := runExperiment(b, "F15")
	b.ReportMetric(float64(res.Tables[0].NumRows()), "systems")
}

func BenchmarkF16_Cluster(b *testing.B) {
	res := runExperiment(b, "F16")
	pts := res.Figures[0].Series[0].Points
	b.ReportMetric(pts[len(pts)-1].Y/pts[0].Y, "scaling-x")
}

func BenchmarkF17_ReadQoS(b *testing.B) {
	res := runExperiment(b, "F17")
	tab := res.Tables[0]
	// p99 improvement factor from suspend.
	parse := func(s string) float64 {
		var v float64
		fmt.Sscanf(s, "%f", &v)
		return v
	}
	off := parse(tab.Row(0)[2])
	on := parse(tab.Row(1)[2])
	if on > 0 {
		b.ReportMetric(off/on, "p99-improvement-x")
	}
}

func BenchmarkF18_CellMode(b *testing.B) {
	res := runExperiment(b, "F18")
	pts := res.Figures[0].Series[0].Points
	b.ReportMetric(pts[3].Y/pts[0].Y, "qlc-vs-slc-step-x")
}

func BenchmarkF19_StreamSeparation(b *testing.B) {
	res := runExperiment(b, "F19")
	tab := res.Tables[0]
	parse := func(s string) float64 {
		var v float64
		fmt.Sscanf(s, "%f", &v)
		return v
	}
	off, on := parse(tab.Row(0)[1]), parse(tab.Row(1)[1])
	if on > 0 {
		b.ReportMetric(off/on, "waf-reduction-x")
	}
}
