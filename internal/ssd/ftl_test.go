package ssd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestFTL() *FTL {
	g := testGeo()
	return NewFTL(g, g.TotalPages()*3/4)
}

func TestFTLAllocSequential(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	var prev PPA
	for i := 0; i < g.PagesPerBlock*2; i++ {
		ppa := f.AllocPage(0)
		if i > 0 {
			if g.Linear(ppa) != g.Linear(prev)+1 && ppa.Block == prev.Block {
				t.Fatalf("non-sequential alloc: %v after %v", ppa, prev)
			}
		}
		prev = ppa
	}
	// Two blocks consumed.
	if f.FreeBlocks(0) != g.BlocksPerPlane-2 {
		t.Fatalf("free = %d", f.FreeBlocks(0))
	}
	if !f.HasFullBlock(0) {
		t.Fatal("full blocks not tracked")
	}
}

func TestFTLLookupUnmapped(t *testing.T) {
	f := newTestFTL()
	if _, ok := f.Lookup(5); ok {
		t.Fatal("unmapped lpa resolved")
	}
}

func TestFTLCommitAndOverwrite(t *testing.T) {
	f := newTestFTL()
	p1 := f.AllocPage(0)
	f.CommitWrite(7, p1, false)
	got, ok := f.Lookup(7)
	if !ok || got != p1 {
		t.Fatalf("lookup = %v %v", got, ok)
	}
	if f.ValidCount(0, p1.Block) != 1 {
		t.Fatal("valid count after commit")
	}
	p2 := f.AllocPage(0)
	f.CommitWrite(7, p2, false)
	if f.ValidCount(0, p1.Block) != 1 { // p1 and p2 share block 0: -1 +1
		t.Fatalf("valid count after overwrite = %d", f.ValidCount(0, p1.Block))
	}
	got, _ = f.Lookup(7)
	if got != p2 {
		t.Fatal("overwrite did not remap")
	}
	if err := f.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestFTLInvalidate(t *testing.T) {
	f := newTestFTL()
	ppa := f.AllocPage(0)
	f.CommitWrite(3, ppa, false)
	f.Invalidate(3)
	if _, ok := f.Lookup(3); ok {
		t.Fatal("lookup after invalidate")
	}
	if f.ValidCount(0, ppa.Block) != 0 {
		t.Fatal("valid count after invalidate")
	}
	f.Invalidate(3) // double trim is a no-op
	if err := f.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestFTLDoubleCommitPanics(t *testing.T) {
	f := newTestFTL()
	ppa := f.AllocPage(0)
	f.CommitWrite(1, ppa, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double commit to same ppa did not panic")
		}
	}()
	f.CommitWrite(2, ppa, false)
}

func TestFTLPickVictimGreedy(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	// Fill two blocks in plane 0: block A gets 4 live pages, block B gets
	// 4 pages of which 3 are then overwritten into block C.
	for lpa := int64(0); lpa < int64(g.PagesPerBlock); lpa++ {
		f.CommitWrite(lpa, f.AllocPage(0), false) // block 0
	}
	for lpa := int64(4); lpa < int64(4+g.PagesPerBlock); lpa++ {
		f.CommitWrite(lpa, f.AllocPage(0), false) // block 1
	}
	for lpa := int64(4); lpa < 7; lpa++ { // invalidate 3 pages of block 1
		f.CommitWrite(lpa, f.AllocPage(0), false) // block 2
	}
	victim, ok := f.PickVictim(0)
	if !ok || victim != 1 {
		t.Fatalf("victim = %d %v, want block 1", victim, ok)
	}
	lpas := f.ValidLPAs(0, victim)
	if len(lpas) != 1 || lpas[0] != 7 {
		t.Fatalf("valid lpas = %v, want [7]", lpas)
	}
}

func TestFTLOnErased(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	for lpa := int64(0); lpa < int64(g.PagesPerBlock); lpa++ {
		f.CommitWrite(lpa, f.AllocPage(0), false)
	}
	// Relocate everything out, then erase.
	victim, _ := f.PickVictim(0)
	for _, lpa := range f.ValidLPAs(0, victim) {
		f.CommitWrite(lpa, f.AllocPage(0), true)
	}
	free := f.FreeBlocks(0)
	f.OnErased(0, victim)
	if f.FreeBlocks(0) != free+1 {
		t.Fatal("erased block not returned to pool")
	}
	if f.GCProgrammed() != uint64(g.PagesPerBlock) {
		t.Fatalf("gc programmed = %d", f.GCProgrammed())
	}
	if f.WAF() <= 1 {
		t.Fatalf("WAF = %v, want > 1 after relocation", f.WAF())
	}
	if err := f.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestFTLEraseValidPanics(t *testing.T) {
	f := newTestFTL()
	f.CommitWrite(0, f.AllocPage(0), false)
	defer func() {
		if recover() == nil {
			t.Fatal("erasing block with valid pages did not panic")
		}
	}()
	f.OnErased(0, 0)
}

func TestFTLAvailablePages(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	total := g.BlocksPerPlane * g.PagesPerBlock
	if f.AvailablePages(0) != total {
		t.Fatalf("fresh available = %d", f.AvailablePages(0))
	}
	f.AllocPage(0)
	if f.AvailablePages(0) != total-1 {
		t.Fatalf("after one alloc = %d", f.AvailablePages(0))
	}
}

func TestFTLLPABoundsPanics(t *testing.T) {
	f := newTestFTL()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range lpa did not panic")
		}
	}()
	f.Lookup(f.LogicalPages())
}

func TestFTLExhaustionPanics(t *testing.T) {
	f := newTestFTL()
	g := f.Geometry()
	for i := 0; i < g.BlocksPerPlane*g.PagesPerBlock; i++ {
		f.AllocPage(0)
	}
	if f.CanAlloc(0) {
		t.Fatal("CanAlloc on exhausted plane")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("alloc on exhausted plane did not panic")
		}
	}()
	f.AllocPage(0)
}

// Property: after any random sequence of writes, overwrites, trims and GC
// rounds, the FTL maps remain a consistent bijection.
func TestFTLConsistencyProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl := newTestFTL()
		g := ftl.Geometry()
		ops := int(opsRaw%300) + 50
		for i := 0; i < ops; i++ {
			plane := rng.Intn(g.Planes())
			switch rng.Intn(10) {
			case 0: // trim
				ftl.Invalidate(rng.Int63n(ftl.LogicalPages()))
			case 1, 2: // GC round if space is short
				if ftl.FreeBlocks(plane) <= 2 {
					if victim, ok := ftl.PickVictim(plane); ok {
						for _, lpa := range ftl.ValidLPAs(plane, victim) {
							if !ftl.CanAlloc(plane) {
								return true // degenerate fill; fine
							}
							ftl.CommitWrite(lpa, ftl.AllocPage(plane), true)
						}
						ftl.OnErased(plane, victim)
					}
				}
			default: // write
				if !ftl.CanAlloc(plane) {
					continue
				}
				lpa := rng.Int63n(ftl.LogicalPages())
				ftl.CommitWrite(lpa, ftl.AllocPage(plane), false)
			}
		}
		return ftl.CheckConsistent() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
