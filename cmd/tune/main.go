// Command tune runs the roofline-pruned design-space autotuner
// (internal/search) and reports the Pareto frontier of step time, energy
// per step, and flash lifetime.
//
// Every grid candidate is priced analytically (core.BoundFor) before any
// simulation; candidates whose optimistic bounds are already dominated by
// a simulated point are discarded, so the simulation budget concentrates
// on the frontier. Output is deterministic — byte-identical at every
// -parallel width.
//
// Usage:
//
//	tune -model GPT-13B -budget 64
//	tune -system hostoffload -units 256 -csv out/frontier.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/search"
)

func main() {
	var (
		model    = flag.String("model", "GPT-13B", "model name from the zoo")
		system   = flag.String("system", "optimstore", "system to tune")
		budget   = flag.Int("budget", 64, "maximum number of simulations")
		units    = flag.Int64("units", 512, "simulation window in update units")
		wafSteps = flag.Int("wafsteps", 3, "steady-state WAF measurement sweeps per over-provisioning value")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker goroutines per simulation wave (1 = sequential)")
		csvOut   = flag.String("csv", "", "also write the frontier CSV to this file")
	)
	flag.Parse()

	m, err := dnn.ByName(*model)
	if err != nil {
		fail(err)
	}
	base := core.DefaultConfig(m)
	base.MaxSimUnits = *units

	res, err := search.Run(base, search.DefaultSpace(), search.Options{
		System:   *system,
		Budget:   *budget,
		Parallel: *parallel,
		WAFSteps: *wafSteps,
	})
	if err != nil {
		fail(err)
	}

	fmt.Print(res.Table().String())
	fmt.Println()
	fmt.Print(res.Summary().String())

	if *csvOut != "" {
		if dir := filepath.Dir(*csvOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
		}
		if err := os.WriteFile(*csvOut, []byte(res.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "tune: wrote %s\n", *csvOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tune:", err)
	os.Exit(1)
}
