package ssd

import "repro/internal/nand"

// Garbage collection. Each plane collects independently: when its free-
// block count reaches the low watermark, the device greedily picks the
// full block with the fewest valid pages, relocates those pages within the
// plane via copyback (array read + array program, no channel-bus traffic),
// erases the victim, and repeats until the high watermark is restored.
//
// Relocation competes with host and update traffic for plane time, which
// is exactly the interference the F11 experiment measures.

func (d *Device) maybeGC(plane int) {
	if d.gcActive[plane] {
		return
	}
	if d.ftl.FreeBlocks(plane) > d.cfg.GCLowWater && len(d.pending[plane]) == 0 {
		return
	}
	d.gcActive[plane] = true
	d.opStart()
	d.gcStep(plane)
}

func (d *Device) gcStep(plane int) {
	// Collect until the high watermark is restored AND no writer is starved
	// for space.
	if d.ftl.FreeBlocks(plane) >= d.cfg.GCHighWater && len(d.pending[plane]) == 0 {
		d.gcFinish(plane)
		return
	}
	victim, ok := d.ftl.PickVictim(plane)
	if !ok {
		// Nothing reclaimable right now. With programs still in flight on
		// the plane that is transient — each completion commits a mapping
		// and re-triggers maybeGC, so progress resumes. With none, pending
		// writers can never be satisfied: a genuine wedge.
		if len(d.pending[plane]) > 0 && d.ftl.FreeBlocks(plane) == 0 &&
			d.ftl.InflightPrograms(plane) == 0 {
			panic("ssd: plane wedged: writers pending but nothing reclaimable " +
				"(logical load exceeds physical capacity)")
		}
		d.gcFinish(plane)
		return
	}
	lpas := d.ftl.ValidLPAs(plane, victim)
	d.relocate(plane, victim, lpas, 0, func() { d.eraseVictim(plane, victim) })
}

// relocate moves the i-th still-valid page of a block, then recurses; when
// the list is exhausted it calls then (GC erases the victim; retirement
// seals the block). Relocation commits at program completion like every
// other write: if an update or trim supersedes the page while the copyback
// program is in flight, the commit is skipped and the target page becomes
// dead garbage (counted in GCStalePrograms) — committing anyway would
// resurrect trimmed data or roll an update back.
func (d *Device) relocate(plane, victim int, lpas []int64, i int, then func()) {
	if i >= len(lpas) {
		then()
		return
	}
	lpa := lpas[i]
	old, ok := d.ftl.Lookup(lpa)
	// Skip pages that were rewritten (and hence invalidated in the victim)
	// after the work list was built.
	if !ok || d.geo.PlaneOf(old) != plane || old.Block != victim {
		d.relocate(plane, victim, lpas, i+1, then)
		return
	}
	die := d.Die(old.Channel, old.Die)
	die.Read(old.Addr, func() {
		// Re-check: the mapping may have moved while the read was queued.
		cur, ok := d.ftl.Lookup(lpa)
		if !ok || cur != old {
			d.relocate(plane, victim, lpas, i+1, then)
			return
		}
		stream := HotStream
		if d.cfg.HotColdSeparation {
			stream = ColdStream
		}
		ppa := d.ftl.AllocPageStream(plane, stream)
		d.ftl.BeginProgram(ppa)
		die.Program(ppa.Addr, func() {
			d.ftl.EndProgram(ppa)
			if cur2, ok2 := d.ftl.Lookup(lpa); ok2 && cur2 == old {
				d.commit(lpa, ppa, true)
				d.gcRelocations++
				d.boundary(BoundaryGC, lpa)
			} else {
				d.gcStale++
				d.boundary(BoundaryGCStale, lpa)
			}
			d.relocate(plane, victim, lpas, i+1, then)
		})
	})
}

func (d *Device) eraseVictim(plane, victim int) {
	ch, dieIdx, pl := d.geo.PlaneLoc(plane)
	die := d.Die(ch, dieIdx)
	die.Erase(nand.Addr{Plane: pl, Block: victim}, func() {
		d.ftl.OnErased(plane, victim)
		d.gcErases++
		d.boundary(BoundaryErase, -1)
		d.drainPending(plane)
		d.gcStep(plane)
	})
}

func (d *Device) gcFinish(plane int) {
	d.gcActive[plane] = false
	d.drainPending(plane)
	d.opDone()
	// Writers still queued here are waiting for in-flight programs to fill
	// blocks; each program completion calls maybeGC again, so progress
	// resumes without a synchronous restart (which could spin).
}
