// Package core assembles the substrates into the five systems the
// reproduction compares:
//
//   - OptimStore   — in-storage optimizer update with on-die processing,
//   - HostOffload  — ZeRO-Infinity-style baseline: state streamed to the
//     GPU over PCIe, updated there, streamed back,
//   - Interleaved  — Deep-Optimizer-States-style baseline: state streamed
//     to the host CPU in subgroups whose prefetch, update, and write-back
//     phases overlap in a deep pipeline,
//   - CtrlISP      — in-storage processing at the SSD controller (near-
//     storage but not on-die),
//   - GPUResident  — the no-offload reference, feasible only while
//     optimizer state fits in device memory.
//
// Every system consumes one Config and produces one Report; the benchmark
// harness sweeps Config fields to regenerate the paper's tables and
// figures.
package core

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/host"
	"repro/internal/layout"
	"repro/internal/odp"
	"repro/internal/optim"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/units"
)

// Config describes one experiment point.
type Config struct {
	SSD  ssd.Config
	ODP  odp.Params
	Link host.LinkParams
	GPU  host.GPUParams
	// HostCPU is the host-side update engine (unused by the default
	// GPU-offload baseline but reported for reference).
	HostCPU host.CPUParams
	// CtrlCPU is the SSD controller's embedded compute, used by CtrlISP.
	CtrlCPU host.CPUParams

	Optimizer optim.Kind
	Precision optim.Precision
	Layout    layout.Strategy
	Model     dnn.Model
	Batch     int

	// GradAccum is the number of micro-batch gradients folded into
	// resident state per optimizer step. Only AdamA (Adam Accumulation)
	// supports in-state folding, so Validate rejects values above 1 for
	// every other optimizer. Zero means 1 (no accumulation); see Accum.
	GradAccum int

	// InterleaveDepth is the number of state subgroups K the Interleaved
	// system partitions the step into: while subgroup i updates on the
	// host, i+1 prefetches and i−1 writes back, so host staging memory
	// holds ~3/K of the resident state at a time. Larger K shrinks the
	// staging footprint but narrows the transfer pipeline. Zero means the
	// default of 4; see Depth. Other systems ignore it.
	InterleaveDepth int

	// MaxSimUnits caps the number of update units simulated at event
	// granularity. The optimizer step is throughput-bound and perfectly
	// homogeneous, so results from the window extrapolate linearly to the
	// full parameter count (Report records both).
	MaxSimUnits int64

	// TransferChunkBytes batches PCIe transfers, amortising per-DMA
	// latency the way real runtimes do.
	TransferChunkBytes int64

	// OverlapFraction is the fraction of forward+backward compute the
	// optimizer step can hide under (gradients stream out during the
	// backward pass). Applied identically to every system.
	OverlapFraction float64

	// ComputeHook, when set, is invoked synchronously each time a unit's
	// optimizer kernel executes on its home die (in simulation-event
	// order). Functional co-simulation uses it to apply the real optimizer
	// math in exactly the order the hardware would, proving the
	// event-driven pipeline preserves numerics. Nil in normal runs.
	ComputeHook func(unit int64)

	// Trace, when set, is installed as each system's engine tracer before
	// any work is scheduled, recording resource hold/wait spans and the
	// model phase spans (grad-transfer, read, kernel, program, ...) on
	// the "phase" track. The analytic systems (GPUResident, Checkpoint)
	// emit synthetic spans directly. Nil disables tracing entirely; the
	// hot paths then cost a single branch (see internal/tracing).
	Trace sim.Tracer

	// Fault is the seed-driven fault-injection storm applied to the run
	// (internal/fault): power loss, die failure, and ECC exhaustion as
	// first-class simulation events. The zero value disables injection
	// entirely and costs nothing.
	Fault fault.Spec

	// Checkpoint selects the optimizer-state checkpoint policy priced in
	// the report's fault accounting (one checkpoint per step, restores per
	// terminal fault). CheckpointNone recovers by re-streaming from the
	// host's master copy.
	Checkpoint fault.Policy

	// LayerwiseOverlap switches the end-to-end model from the scalar
	// OverlapFraction formula to a simulated pipeline: gradient chunks
	// become available as the backward pass produces them (last layer
	// first), and the simulation measures the true overlapped step time.
	// Report.StepTime is then the simulated pipeline span and
	// Report.OptStepTime the optimizer cost exposed beyond fwd+bwd.
	LayerwiseOverlap bool
}

// DefaultConfig returns the baseline experiment configuration for a model.
func DefaultConfig(model dnn.Model) Config {
	return Config{
		SSD:                ssd.DefaultConfig(),
		ODP:                odp.DefaultParams(),
		Link:               host.PCIe(3, 4),
		GPU:                host.A100_40(),
		HostCPU:            host.XeonHost(),
		CtrlCPU:            host.SSDController(),
		Optimizer:          optim.Adam,
		Precision:          optim.Mixed16,
		Layout:             layout.Colocated,
		Model:              model,
		Batch:              8,
		MaxSimUnits:        2048,
		TransferChunkBytes: 1 << 20,
		OverlapFraction:    0.5,
	}
}

// Validate reports the first structural problem.
func (c Config) Validate() error {
	if err := c.SSD.Validate(); err != nil {
		return err
	}
	if err := c.ODP.Validate(); err != nil {
		return err
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if err := c.HostCPU.Validate(); err != nil {
		return err
	}
	if err := c.CtrlCPU.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Batch <= 0 {
		return fmt.Errorf("core: batch %d", c.Batch)
	}
	if c.MaxSimUnits <= 0 {
		return fmt.Errorf("core: MaxSimUnits %d", c.MaxSimUnits)
	}
	if c.TransferChunkBytes <= 0 {
		return fmt.Errorf("core: TransferChunkBytes %d", c.TransferChunkBytes)
	}
	if c.OverlapFraction < 0 || c.OverlapFraction > 1 {
		return fmt.Errorf("core: OverlapFraction %v", c.OverlapFraction)
	}
	if c.GradAccum < 0 {
		return fmt.Errorf("core: GradAccum %d", c.GradAccum)
	}
	if c.GradAccum > 1 && c.Optimizer != optim.AdamA {
		return fmt.Errorf("core: GradAccum %d requires the AdamA optimizer (got %s): only Adam Accumulation folds micro-batch gradients into resident state", c.GradAccum, c.Optimizer)
	}
	if c.InterleaveDepth < 0 {
		return fmt.Errorf("core: InterleaveDepth %d", c.InterleaveDepth)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	// The on-die unit must stage every resident page of a unit plus the
	// incoming gradient page simultaneously; a smaller buffer cannot run
	// the kernel at all.
	need := units.Bytes((c.Comps() + 1) * c.SSD.Nand.PageSize)
	if have := units.Bytes(c.ODP.BufferKB) * units.KiB; have < need {
		return fmt.Errorf("core: ODP buffer %d KiB cannot stage %d pages of %d B (%s needs %d KiB)",
			c.ODP.BufferKB, c.Comps()+1, c.SSD.Nand.PageSize, c.Optimizer, need/units.KiB)
	}
	return nil
}

// Spec returns the per-parameter byte footprint for the configured
// optimizer and precision, with gradient-accumulation traffic priced in.
func (c Config) Spec() optim.StateSpec {
	return optim.SpecFor(c.Optimizer, c.Precision).WithAccum(c.Accum())
}

// Accum returns the effective gradient-accumulation factor (GradAccum
// with the zero value meaning 1).
func (c Config) Accum() int {
	if c.GradAccum < 1 {
		return 1
	}
	return c.GradAccum
}

// Depth returns the effective interleave subgroup count (InterleaveDepth
// with the zero value meaning 4, the Deep Optimizer States default).
func (c Config) Depth() int {
	if c.InterleaveDepth < 1 {
		return 4
	}
	return c.InterleaveDepth
}

// ElemsPerPage is the parameters per update unit: one page of FP32 master
// weights.
func (c Config) ElemsPerPage() int { return c.SSD.Nand.PageSize / 4 }

// Comps is the resident pages per update unit: the master-weight page
// plus however many pages the optimizer state occupies at the configured
// precision (two FP32 moments fill two pages; 8-bit quantized moments for
// the same unit — including their fractional block-scale overhead — pack
// into one).
func (c Config) Comps() int {
	spec := c.Spec()
	stateBytes := (float64(spec.StateBytes) + spec.ScaleBytesPerParam) * float64(c.ElemsPerPage())
	pageSize := float64(c.SSD.Nand.PageSize)
	pages := int(stateBytes / pageSize)
	if float64(pages)*pageSize < stateBytes {
		pages++
	}
	return 1 + pages
}

// TotalUnits is the number of update units covering the model's state.
func (c Config) TotalUnits() int64 {
	e := int64(c.ElemsPerPage())
	return (c.Model.Params + e - 1) / e
}

// TouchedUnits is the number of units one training step actually updates:
// all of them for dense models, a sparse subset for embedding-table models
// (the per-step traffic and time scale with this, not with TotalUnits).
func (c Config) TouchedUnits() int64 {
	t := int64(float64(c.TotalUnits())*c.Model.UpdateFraction() + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

// SimUnits is the number of units actually simulated (the sample window).
func (c Config) SimUnits() int64 {
	if t := c.TouchedUnits(); t < c.MaxSimUnits {
		return t
	}
	return c.MaxSimUnits
}

// ScaleFactor extrapolates window results to one full step's touched units.
func (c Config) ScaleFactor() float64 {
	return float64(c.TouchedUnits()) / float64(c.SimUnits())
}

// GradBytesPerUnit is the gradient traffic per unit arriving from the host.
func (c Config) GradBytesPerUnit() int64 {
	return int64(c.ElemsPerPage()) * int64(c.Spec().GradBytes)
}

// WeightOutBytesPerUnit is the working-precision weight traffic per unit
// returned to the host.
func (c Config) WeightOutBytesPerUnit() int64 {
	return int64(c.ElemsPerPage()) * int64(c.Spec().WeightOutBytes)
}

// ResidentBytesPerUnit is the in-storage footprint per unit. It is
// page-rounded (Comps whole NAND pages) — intentionally larger than the
// byte-exact analytic footprint Model.Params × Spec().ResidentBytes(),
// because a page is the smallest unit NAND can read or program: internal
// fragmentation is real capacity and real traffic. The invariant registry
// pins the direction of the gap (analytic ≤ page-rounded) so the two
// accountings can never silently invert.
func (c Config) ResidentBytesPerUnit() int64 {
	return int64(c.Comps()) * int64(c.SSD.Nand.PageSize)
}
