package tracing

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// contendedRun drives a small two-resource contention workload and
// returns the engine, resources, and the recorded trace.
func contendedRun(t *testing.T) (*sim.Engine, []*sim.Resource, *Trace) {
	t.Helper()
	e := sim.NewEngine()
	tr := New("test")
	e.SetTracer(tr)
	bus := sim.NewResource(e, "bus", 1)
	dies := sim.NewResource(e, "dies", 4)
	for i := 0; i < 16; i++ {
		//simlint:allow simtime arbitrary synthetic nanosecond durations for contention
		d := sim.Time(50 + 7*i)
		bus.Use(d, func() {
			dies.Use(3*d, nil)
		})
	}
	ev := e.Schedule(5, func() {})
	e.Cancel(ev)
	e.Run()
	return e, []*sim.Resource{bus, dies}, tr
}

func TestTraceRecordsTracksInFirstSeenOrder(t *testing.T) {
	_, _, tr := contendedRun(t)
	tracks := tr.Tracks()
	if len(tracks) < 3 {
		t.Fatalf("tracks = %v", tracks)
	}
	if tracks[0] != "bus" {
		t.Fatalf("first track = %q, want bus (first activity)", tracks[0])
	}
	if tr.Len() == 0 {
		t.Fatal("no events recorded")
	}
}

// TestHoldSpansReconcileWithUtilization is the acceptance-criteria
// invariant: the sum of hold spans per resource, divided by elapsed
// time x capacity, must match Resource.Utilization within 1e-9.
func TestHoldSpansReconcileWithUtilization(t *testing.T) {
	e, resources, tr := contendedRun(t)
	for _, r := range resources {
		busy := tr.BusyTime(r.Name(), "hold")
		got := float64(busy) / (float64(e.Now()) * float64(r.Capacity()))
		want := r.Utilization()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: trace-derived utilization %v, resource reports %v", r.Name(), got, want)
		}
		if busy == 0 {
			t.Errorf("%s: no hold spans recorded", r.Name())
		}
	}
}

func TestWriteChromeProducesValidJSON(t *testing.T) {
	_, _, tr := contendedRun(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			continue
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events emitted (got %v)", ph, phases)
		}
	}
}

func TestWriteChromeIsDeterministic(t *testing.T) {
	render := func() []byte {
		_, _, tr := contendedRun(t)
		var buf bytes.Buffer
		if err := WriteChrome(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs rendered different Chrome traces")
	}
}

func TestWriteChromeMultiTracePIDs(t *testing.T) {
	_, _, tr1 := contendedRun(t)
	_, _, tr2 := contendedRun(t)
	tr2.label = "second"
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr1, tr2); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev["pid"].(float64)] = true
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("expected pids 1 and 2, got %v", pids)
	}
	if !strings.Contains(buf.String(), `"second"`) {
		t.Fatal("second trace label missing from process metadata")
	}
}

func TestAppendMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1234567, "1234.567"},
		{-2500, "-2.500"},
	}
	for _, c := range cases {
		if got := string(appendMicros(nil, c.ns)); got != c.want {
			t.Errorf("appendMicros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestAppendJSONString(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `"plain"`},
		{`a"b`, `"a\"b"`},
		{`a\b`, `"a\\b"`},
		{"a\nb", `"a\u000ab"`},
	}
	for _, c := range cases {
		got := string(appendJSONString(nil, c.in))
		if got != c.want {
			t.Errorf("appendJSONString(%q) = %s, want %s", c.in, got, c.want)
		}
		var s string
		if err := json.Unmarshal([]byte(got), &s); err != nil || s != c.in {
			t.Errorf("round-trip of %q failed: %v %q", c.in, err, s)
		}
	}
}

func TestSummaryTable(t *testing.T) {
	_, _, tr := contendedRun(t)
	tbl := SummaryTable(tr)
	if tbl.NumRows() == 0 {
		t.Fatal("empty summary table")
	}
	foundHold := false
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		if row[1] == "bus" && row[2] == "hold" {
			foundHold = true
			if row[3] != "16" {
				t.Errorf("bus hold count = %s, want 16", row[3])
			}
		}
	}
	if !foundHold {
		t.Fatal("no bus/hold row in summary")
	}
}

func TestUtilizationTimeline(t *testing.T) {
	e, resources, tr := contendedRun(t)
	const buckets = 8
	fig := UtilizationTimeline(tr, "hold", buckets)
	if len(fig.Series) == 0 {
		t.Fatal("no series in timeline")
	}
	// The bucketed busy fractions must integrate back to the end-of-run
	// busy time for each capacity-1-equivalent track.
	width := float64(e.Now()) / buckets
	for _, s := range fig.Series {
		var total float64
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("%s: negative busy fraction %v", s.Name, p.Y)
			}
			total += p.Y * width
		}
		var r *sim.Resource
		for _, cand := range resources {
			if cand.Name() == s.Name {
				r = cand
			}
		}
		if r == nil {
			t.Fatalf("series %s has no matching resource", s.Name)
		}
		want := r.Utilization() * float64(e.Now()) * float64(r.Capacity())
		//simlint:allow unitconv 1e-6 is a relative tolerance, not a unit conversion
		if math.Abs(total-want) > 1e-6*want {
			t.Errorf("%s: timeline integrates to %v, busy time is %v", s.Name, total, want)
		}
	}
}

func TestUtilizationTimelineEmptyTrace(t *testing.T) {
	fig := UtilizationTimeline(New("empty"), "hold", 4)
	if len(fig.Series) != 0 {
		t.Fatal("empty trace produced series")
	}
}
