package ssd

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// dataPlane mirrors page contents across physical moves via the commit
// hook: the software shadow of what the NAND arrays hold.
type dataPlane struct {
	store   map[int64]uint64 // linear PPA -> content
	pending map[int64][]uint64
}

func newDataPlane() *dataPlane {
	return &dataPlane{store: map[int64]uint64{}, pending: map[int64][]uint64{}}
}

// queue registers content the caller is about to write to lpa; it is bound
// to the physical page at commit time, in issue order.
func (p *dataPlane) queue(lpa int64, content uint64) {
	p.pending[lpa] = append(p.pending[lpa], content)
}

func (p *dataPlane) hook(lpa, oldLin, newLin int64, gc bool) {
	if gc {
		// Relocation: content moves with the page.
		p.store[newLin] = p.store[oldLin]
		return
	}
	q := p.pending[lpa]
	if len(q) == 0 {
		panic("dataPlane: commit without queued content")
	}
	p.store[newLin] = q[0]
	p.pending[lpa] = q[1:]
}

// TestDataIntegrityUnderGC drives the device through thousands of
// log-structured updates with garbage collection churning underneath, and
// verifies every logical page still maps to the physical page holding its
// latest content — GC must neither lose data nor resurrect stale versions.
func TestDataIntegrityUnderGC(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	plane := newDataPlane()
	d.SetCommitHook(plane.hook)

	n := d.Config().LogicalPages() * 3 / 4
	expected := make(map[int64]uint64)
	version := uint64(0)
	for lpa := int64(0); lpa < n; lpa++ {
		version++
		plane.queue(lpa, version)
		expected[lpa] = version
		d.Preload(lpa)
	}

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 12; round++ {
		// Random order, random subset: maximal GC churn.
		perm := rng.Perm(int(n))
		for _, i := range perm {
			if rng.Intn(3) == 0 {
				continue
			}
			lpa := int64(i)
			version++
			plane.queue(lpa, version)
			expected[lpa] = version
			d.ProgramUpdate(lpa, nil)
		}
		runDrained(t, e, d)
	}

	if d.Stats().GCRelocations == 0 {
		t.Fatal("workload never relocated a page — test is not exercising GC")
	}
	geo := d.Geometry()
	for lpa := int64(0); lpa < n; lpa++ {
		ppa, ok := d.FTL().Lookup(lpa)
		if !ok {
			t.Fatalf("lpa %d unmapped after churn", lpa)
		}
		got := plane.store[geo.Linear(ppa)]
		if got != expected[lpa] {
			t.Fatalf("lpa %d: content %d at %v, want version %d", lpa, got, ppa, expected[lpa])
		}
	}
}

// TestDataIntegrityHostWrites runs the same shadow check through the
// external write path (cache + bus + program).
func TestDataIntegrityHostWrites(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, smallConfig())
	plane := newDataPlane()
	d.SetCommitHook(plane.hook)

	n := d.Config().LogicalPages() / 2
	expected := make(map[int64]uint64)
	version := uint64(0)
	write := func(lpa int64) {
		version++
		plane.queue(lpa, version)
		expected[lpa] = version
		d.Write(lpa, nil)
	}
	for lpa := int64(0); lpa < n; lpa++ {
		write(lpa)
	}
	runDrained(t, e, d)
	// Overwrite a strided subset repeatedly.
	for round := 0; round < 6; round++ {
		for lpa := int64(0); lpa < n; lpa += 3 {
			write(lpa)
		}
		runDrained(t, e, d)
	}
	geo := d.Geometry()
	for lpa := int64(0); lpa < n; lpa++ {
		ppa, _ := d.FTL().Lookup(lpa)
		if plane.store[geo.Linear(ppa)] != expected[lpa] {
			t.Fatalf("lpa %d: stale content after overwrite churn", lpa)
		}
	}
}
