// Package flow builds intra-function control-flow graphs over go/ast and
// runs simple forward "reaching facts" analyses on them. It is the
// flow-sensitivity layer under the poolsafe analyzer: a fact generated on
// one path (this pooled handle was released here) must reach every
// statement that path can fall through to, and must *not* reach
// statements only live on other paths.
//
// The graph is deliberately small: basic blocks hold the ast.Nodes that
// execute when the block runs (plain statements, plus bare condition
// expressions and range headers), and Succs carries control transfer.
// Bodies of nested control statements never appear inside a block — they
// live in their own blocks — so an analysis walks each block node with
// Visit, which prunes the one node kind (range headers) that still owns a
// body. goto is not modelled; a function using it yields Imprecise=true
// and analyses skip it rather than report on incomplete paths.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: nodes that execute in order, then a transfer
// to one of Succs (no successors means the function returns or panics).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Blocks []*Block
	// Imprecise is set when the body uses a construct the builder does not
	// model (goto). Analyses should skip imprecise graphs.
	Imprecise bool
}

// Visit walks the parts of a block node that execute at that node,
// calling f in source order. For a *ast.RangeStmt only the key, value and
// range operand are visited (its body lives in other blocks); every other
// node is fully traversed.
func Visit(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, f)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, f)
		}
		ast.Inspect(r.X, f)
		return
	}
	ast.Inspect(n, f)
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.cur = b.newBlock()
	b.g.Entry = b.cur
	b.stmtList(body.List)
	return b.g
}

// frame is one enclosing breakable/continuable statement.
type frame struct {
	label    string
	brk      *Block
	cont     *Block // nil for switch/select
	isSwitch bool
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	// pendingLabel is the label of a LabeledStmt being attached to the
	// statement that follows it.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// edge records a control transfer from to t.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// terminate parks the builder on a fresh unreachable block, so statements
// after an unconditional transfer do not leak into a live block.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		join := b.newBlock()
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			edge(b.cur, join)
		} else {
			edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, exit)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			edge(b.cur, post)
			b.cur = post
			b.add(s.Post)
		}
		edge(b.cur, head)
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // key/value/X; Visit prunes Body
		body := b.newBlock()
		exit := b.newBlock()
		edge(head, body)
		edge(head, exit)
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.cases(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.cases(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.cases(label, s.Body.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.g.Imprecise = true
			b.terminate()
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				edge(b.cur, f.brk)
			} else {
				b.g.Imprecise = true
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				edge(b.cur, f.cont)
			} else {
				b.g.Imprecise = true
			}
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by cases(); a stray fallthrough is malformed input.
			b.g.Imprecise = true
			b.terminate()
		}

	default:
		// Plain statements: declarations, assignments, expressions, sends,
		// inc/dec, defer, go, empty. defer/go bodies execute elsewhere in
		// time but their closures' effects are the analysis's concern at
		// creation, which visiting the node covers conservatively.
		b.add(s)
	}
}

// cases builds the clause blocks of a switch/type-switch/select body.
// Every clause is entered from the head block (condition evaluation order
// is irrelevant to a may-analysis); a missing default adds a head→join
// edge. fallthrough transfers to the next clause's block.
func (b *builder) cases(label string, clauses []ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		edge(head, blocks[i])
	}
	b.frames = append(b.frames, frame{label: label, brk: join, isSwitch: true})
	for i, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				head.Nodes = append(head.Nodes, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			b.cur = blocks[i]
			if c.Comm != nil {
				b.add(c.Comm)
			}
			body = c.Body
		}
		b.cur = blocks[i]
		fallsTo := -1
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				body = body[:n-1]
				fallsTo = i + 1
			}
		}
		b.stmtList(body)
		if fallsTo >= 0 {
			edge(b.cur, blocks[fallsTo])
		} else {
			edge(b.cur, join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		edge(head, join)
	}
	b.cur = join
}

// findFrame resolves a break/continue target. continue skips switch/select
// frames; an explicit label must match the frame's label.
func (b *builder) findFrame(label *ast.Ident, isContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if isContinue && f.isSwitch {
			continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		return f
	}
	return nil
}

// Facts is a set of dataflow facts: object → the position that generated
// the fact (kept for diagnostics; the first generating position wins on
// joins).
type Facts map[types.Object]token.Pos

func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	//simlint:allow maporder copying the map; result is order-independent
	for k, v := range f {
		out[k] = v
	}
	return out
}

// union merges src into f, reporting whether f changed.
func (f Facts) union(src Facts) bool {
	changed := false
	//simlint:allow maporder set union; the merged result is order-independent
	for k, v := range src {
		if _, ok := f[k]; !ok {
			f[k] = v
			changed = true
		}
	}
	return changed
}

// Transfer mutates facts in place for one executed block node.
type Transfer func(n ast.Node, facts Facts)

// ForwardMay runs an iterative forward may-analysis (join = union) over g
// and returns each block's entry facts. transfer is applied to every node
// of a block in order to produce its exit facts.
func ForwardMay(g *Graph, transfer Transfer) map[*Block]Facts {
	in := make(map[*Block]Facts, len(g.Blocks))
	for _, blk := range g.Blocks {
		in[blk] = Facts{}
	}
	// Every block is processed at least once (not only those whose entry
	// facts change): a successor of the entry with still-empty facts must
	// still push its own gens downstream.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, blk := range g.Blocks {
		queued[blk] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := in[blk].clone()
		for _, n := range blk.Nodes {
			transfer(n, out)
		}
		for _, s := range blk.Succs {
			if in[s].union(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
