// Quickstart: the OptimStore reproduction in ~60 lines.
//
// Part 1 shows the optimizer algorithms converging on a toy problem (the
// same gold implementations the simulated on-die kernels are verified
// against). Part 2 runs the headline comparison: one optimizer step of
// GPT-13B/Adam on the in-storage system vs the host-offload baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/optim"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	// --- Part 1: the optimizers themselves -------------------------------
	fmt.Println("Part 1: Adam on a 64-dim quadratic (gold optimizer implementation)")
	problem := trace.NewQuadratic(trace.DefaultSeed, 64)
	w := make([]float32, problem.Dim())
	g := make([]float32, problem.Dim())
	opt := optim.New(optim.Adam, optim.Hyper{LR: 0.05})
	for step := 0; step <= 500; step++ {
		if step%100 == 0 {
			fmt.Printf("  step %3d  loss %.6f\n", step, problem.Loss(w))
		}
		problem.Grad(w, g)
		opt.Step(w, g)
	}

	// --- Part 2: the in-storage system ------------------------------------
	fmt.Println("\nPart 2: one optimizer step of GPT-13B (Adam, mixed precision)")
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 512 // small simulation window; results extrapolate

	for _, name := range []string{"hostoffload", "optimstore"} {
		sys, err := core.NewSystem(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s opt-step %8.2fs   PCIe %6.1f GB   energy %6.1f J\n",
			r.System, r.OptStepTime.Seconds(), units.Bytes(r.PCIeBytes).GBf(), r.Energy.Total())
	}

	off, _ := core.NewSystem("hostoffload", cfg)
	ost, _ := core.NewSystem("optimstore", cfg)
	ro, err := off.Run()
	if err != nil {
		log.Fatal(err)
	}
	rs, err := ost.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  => OptimStore speedup: %.2fx, energy reduction: %.2fx\n",
		rs.Speedup(ro), ro.Energy.Total()/rs.Energy.Total())
}
