package experiments

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/optim"
	"repro/internal/stats"
)

// perfModels is the model subset used by the latency experiments: the
// offload-relevant range.
func perfModels(opts Options) []dnn.Model {
	if opts.Quick {
		return []dnn.Model{dnn.GPT2XL(), dnn.GPT13B()}
	}
	return []dnn.Model{dnn.BERTLarge(), dnn.GPT2XL(), dnn.GPT6B7(), dnn.GPT13B(), dnn.GPT30B()}
}

// runF1 regenerates the headline figure: optimizer-step latency of every
// system across models.
func runF1(opts Options) (*Result, error) {
	fig := stats.NewFigure("F1: optimizer-step latency", "params", "opt-step seconds")
	series := map[string]*stats.Series{}
	for _, name := range core.SystemNames() {
		series[name] = fig.AddSeries(name)
	}
	var reports []*core.Report
	for _, m := range perfModels(opts) {
		cfg := baseConfig(opts, m)
		rs, err := runSystems(opts, cfg)
		if err != nil {
			return nil, err
		}
		for i, r := range rs {
			reports = append(reports, r)
			if r.Feasible {
				series[core.SystemNames()[i]].Add(float64(m.Params), r.OptStepTime.Seconds())
			}
		}
	}
	return &Result{
		Tables:  []*stats.Table{core.ReportTable("F1: per-system reports", reports)},
		Figures: []*stats.Figure{fig},
	}, nil
}

// runF2 regenerates the scaling figure: OptimStore speedup over the
// host-offload baseline as the model grows.
func runF2(opts Options) (*Result, error) {
	fig := stats.NewFigure("F2: OptimStore speedup vs host offload", "params", "speedup ×")
	sOpt := fig.AddSeries("opt-step speedup")
	sE2E := fig.AddSeries("end-to-end speedup")
	t := stats.NewTable("F2: speedup vs model scale",
		"model", "params", "offload-s", "optimstore-s", "speedup", "e2e-speedup")
	models := perfModels(opts)
	if !opts.Quick {
		models = append(models, dnn.GPT66B(), dnn.GPT175B())
	}
	for _, m := range models {
		cfg := baseConfig(opts, m)
		rs, err := runSystems(opts, cfg, "hostoffload", "optimstore")
		if err != nil {
			return nil, err
		}
		off, opt := rs[0], rs[1]
		sp := opt.Speedup(off)
		e2e := float64(off.StepTime) / float64(opt.StepTime)
		sOpt.Add(float64(m.Params), sp)
		sE2E.Add(float64(m.Params), e2e)
		t.AddRow(m.Name, dnn.FormatCount(m.Params), off.OptStepTime.Seconds(),
			opt.OptStepTime.Seconds(), sp, e2e)
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF3 regenerates the per-optimizer figure on a fixed model.
func runF3(opts Options) (*Result, error) {
	model := dnn.GPT13B()
	t := stats.NewTable("F3: per-optimizer optimizer-step latency (GPT-13B)",
		"optimizer", "state-words", "offload-s", "ctrl-isp-s", "optimstore-s", "speedup-vs-offload")
	fig := stats.NewFigure("F3: speedup per optimizer", "state words", "speedup ×")
	s := fig.AddSeries("optimstore vs offload")
	kinds := optim.Kinds()
	if opts.Quick {
		kinds = []optim.Kind{optim.SGD, optim.Adam, optim.LAMB}
	}
	for _, k := range kinds {
		cfg := baseConfig(opts, model)
		cfg.Optimizer = k
		rs, err := runSystems(opts, cfg, "hostoffload", "ctrlisp", "optimstore")
		if err != nil {
			return nil, err
		}
		off, ctl, opt := rs[0], rs[1], rs[2]
		t.AddRow(k.String(), optim.StateWordsFor(k), off.OptStepTime.Seconds(),
			ctl.OptStepTime.Seconds(), opt.OptStepTime.Seconds(), opt.Speedup(off))
		s.Add(float64(optim.StateWordsFor(k)), opt.Speedup(off))
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}
