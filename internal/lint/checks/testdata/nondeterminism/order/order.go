// Package order is the map-iteration half of the nondeterminism tree:
// map-order-dependent ranges are flagged; length-only ranges, sorted-key
// collection and slice ranges are not.
package order

import "sort"

func mapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over map iterates in randomized order`
		sum += v
	}
	return sum
}

func mapLenIsFine(m map[string]int) int {
	n := 0
	for range m { // observes only len(m); no order dependence
		n++
	}
	return n
}

func sortedKeysAreFine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowedMapOrder(m map[string]int) bool {
	//simlint:allow maporder pure existence check, order-free
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
