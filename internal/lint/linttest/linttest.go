// Package linttest runs lint analyzers over testdata packages and
// compares their diagnostics against `// want "regexp"` expectations, in
// the style of golang.org/x/tools' analysistest (re-implemented on the
// standard library; this module vendors nothing).
//
// Run checks one per-unit analyzer against one testdata package. RunTree
// checks any mix of per-unit and module analyzers against a multi-package
// testdata tree — every package directory under the tree root is loaded
// into one shared load set, so module analyzers see cross-package call
// chains exactly as cmd/simlint would.
//
// Each want comment anchors to its own source line and may carry several
// quoted regexps. Every emitted diagnostic must match exactly one unused
// want on its line, and every want must be consumed. Suppression
// directives (//simlint:allow) are honoured before matching, so the
// directive machinery itself is testable: an allowed finding simply needs
// no want.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads dir as a package and checks analyzer a against its want
// comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	root, modPath, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader := lint.NewLoader(root, modPath)
	units, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	var diags []lint.Diagnostic
	for _, unit := range units {
		ds, err := lint.RunAnalyzers(unit, a)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		diags = append(diags, ds...)
	}
	match(t, units, diags)
}

// RunTree loads every package directory under root into one shared load
// set, runs the given per-unit and module analyzers, applies global
// suppression, and checks the combined diagnostics against the tree's
// want comments.
func RunTree(t *testing.T, root string, unitAnalyzers []*lint.Analyzer, moduleAnalyzers []*lint.ModuleAnalyzer) {
	t.Helper()
	modRoot, modPath, err := lint.FindModule(".")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	dirs, err := lint.PackageDirs(root)
	if err != nil {
		t.Fatalf("linttest: walk %s: %v", root, err)
	}
	loader := lint.NewLoader(modRoot, modPath)
	var units []*lint.Unit
	for _, dir := range dirs {
		us, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("linttest: load %s: %v", dir, err)
		}
		units = append(units, us...)
	}
	if len(units) == 0 {
		t.Fatalf("linttest: no Go files under %s", root)
	}

	var diags []lint.Diagnostic
	for _, unit := range units {
		ds, err := lint.RunUnitAnalyzers(unit, unitAnalyzers...)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		diags = append(diags, ds...)
	}
	if len(moduleAnalyzers) > 0 {
		ds, err := lint.RunModuleAnalyzers(units, moduleAnalyzers...)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		diags = append(diags, ds...)
	}
	match(t, units, lint.Suppress(units, diags))
}

// match checks diagnostics against the units' want comments.
func match(t *testing.T, units []*lint.Unit, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, unit := range units {
		wants = append(wants, collectWants(t, unit)...)
	}
	for _, d := range diags {
		pos := units[0].Fset.Position(d.Pos)
		if w := claim(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks and returns the first unused want matching the diagnostic.
func claim(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if !w.used && w.file == file && w.line == line && w.re.MatchString(message) {
			w.used = true
			return w
		}
	}
	return nil
}

// collectWants parses the unit's `// want` comments.
func collectWants(t *testing.T, unit *lint.Unit) []*want {
	t.Helper()
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// Describe formats diagnostics for debugging failed expectations.
func Describe(unit *lint.Unit, diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		pos := unit.Fset.Position(d.Pos)
		fmt.Fprintf(&b, "%s:%d:%d: [%s/%s] %s\n",
			pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Category, d.Message)
	}
	return b.String()
}
