package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/optim"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/units"
)

// runF7 regenerates the data-layout ablation: the OptimStore engine on
// each placement strategy. The strategies fan across the worker pool; the
// table is assembled afterwards in strategy order so the colocated
// baseline (index 0) normalises every row.
func runF7(opts Options) (*Result, error) {
	t := stats.NewTable("F7: layout ablation (GPT-13B, Adam, OptimStore engine)",
		"layout", "colocated-frac", "optimstore-s", "bus-GB", "slowdown-vs-colocated")
	fig := stats.NewFigure("F7: layout ablation", "strategy index", "opt-step seconds")
	s := fig.AddSeries("optimstore")
	type layoutPoint struct {
		report *core.Report
		coloc  float64
	}
	results := runner.Map(opts.Parallel, layout.Strategies(), func(strat layout.Strategy) (layoutPoint, error) {
		cfg := baseConfig(opts, dnn.GPT13B())
		cfg.Layout = strat
		rs, err := runSystems(opts, cfg, "optimstore")
		if err != nil {
			return layoutPoint{}, err
		}
		lay, err := layout.New(cfg.SSD.Geometry(), cfg.Comps(), cfg.SimUnits(), strat)
		if err != nil {
			return layoutPoint{}, err
		}
		return layoutPoint{report: rs[0], coloc: lay.ColocationFraction()}, nil
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	var baseline float64
	for i, res := range results {
		sec := res.Value.report.OptStepTime.Seconds()
		if i == 0 {
			baseline = sec
		}
		t.AddRow(layout.Strategies()[i].String(), res.Value.coloc, sec,
			units.Bytes(res.Value.report.BusBytes).GBf(), sec/baseline)
		s.Add(float64(i), sec)
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// runF8 regenerates the precision ablation on OptimStore and the offload
// baseline, including block-wise 8-bit quantized optimizer state — the
// precision lever that shrinks resident state (and hence NAND traffic,
// step time and wear) rather than just interface traffic.
func runF8(opts Options) (*Result, error) {
	t := stats.NewTable("F8: precision ablation (GPT-13B, Adam)",
		"precision", "system", "opt-step-s", "pcie-GB", "nand-prog-GB", "energy-J", "tlc-lifetime-steps")
	for _, prec := range []optim.Precision{optim.FP32, optim.Mixed16, optim.Q8State} {
		cfg := baseConfig(opts, dnn.GPT13B())
		cfg.Precision = prec
		end, err := core.RunEndurance(cfg, nand.TLC, opts.wafSteps())
		if err != nil {
			return nil, err
		}
		rs, err := runSystems(opts, cfg, "hostoffload", "optimstore")
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			life := "-"
			if r.System == "optimstore" && end.Fits {
				life = fmt.Sprintf("%.0f", end.LifetimeSteps)
			}
			t.AddRow(prec.String(), r.System, r.OptStepTime.Seconds(),
				units.Bytes(r.PCIeBytes).GBf(), units.Bytes(r.NANDProgramBytes).GBf(),
				r.Energy.Total(), life)
		}
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// runF12 regenerates the ODP silicon-cost table across lane counts.
func runF12(Options) (*Result, error) {
	t := stats.NewTable("F12: on-die processing unit cost model",
		"lanes", "buffer-KiB", "area-mm2", "pct-of-70mm2-die", "static-mW", "pJ/op")
	for _, lanes := range []int{1, 2, 4, 8, 16, 32} {
		p := defaultODPWithLanes(lanes)
		c := odpCost(p)
		t.AddRow(lanes, p.BufferKB, c.AreaMM2, c.DieAreaPct, c.StaticMW, c.DynamicPJ)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// runF11 regenerates the GC/over-provisioning sensitivity: steady-state
// write amplification and update throughput of the state region under
// dense (sequential) and sparse (random) update streams.
func runF11(opts Options) (*Result, error) {
	t := stats.NewTable("F11: GC sensitivity of the state region",
		"over-provision", "workload", "WAF", "updates/s (window)")
	fig := stats.NewFigure("F11: WAF vs over-provisioning", "OP fraction", "WAF")
	seqS := fig.AddSeries("dense sequential updates")
	rndS := fig.AddSeries("sparse random updates")
	ops := []float64{0.07, 0.125, 0.20, 0.28}
	if opts.Quick {
		ops = []float64{0.07, 0.28}
	}
	// Flatten (over-provision × workload) into independent pool jobs; the
	// pairs come back in grid order for the table.
	type wafPoint struct {
		op     float64
		random bool
	}
	var points []wafPoint
	for _, op := range ops {
		points = append(points, wafPoint{op, false}, wafPoint{op, true})
	}
	type wafResult struct{ waf, rate float64 }
	results := runner.Map(opts.Parallel, points, func(p wafPoint) (wafResult, error) {
		waf, rate, err := measureRegionWAF(p.op, p.random, opts.wafSteps())
		return wafResult{waf, rate}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, op := range ops {
		seq, rnd := results[2*i].Value, results[2*i+1].Value
		t.AddRow(op, "sequential", seq.waf, seq.rate)
		t.AddRow(op, "random", rnd.waf, rnd.rate)
		seqS.Add(op, seq.waf)
		rndS.Add(op, rnd.waf)
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// measureRegionWAF drives a small state region through update sweeps and
// reports steady-state WAF and update throughput.
func measureRegionWAF(overProvision float64, random bool, steps int) (waf, updatesPerSec float64, err error) {
	dev, eng, pages, err := newRegionDevice(overProvision)
	if err != nil {
		return 0, 0, err
	}
	order := make([]int64, pages)
	for i := range order {
		order[i] = int64(i)
	}
	if random {
		// Deterministic shuffle (LCG) — no time-dependent seeding.
		state := uint64(0x9E3779B97F4A7C15)
		for i := len(order) - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
	}
	var baseHost, baseGC uint64
	var startTime, endTime sim.Time
	for s := 0; s < steps; s++ {
		for _, lpa := range order {
			dev.ProgramUpdate(lpa, nil)
		}
		ok := false
		dev.Drain(func() { ok = true })
		eng.Run()
		if !ok {
			return 0, 0, errWedged
		}
		if s == 0 {
			baseHost = dev.FTL().HostProgrammed()
			baseGC = dev.FTL().GCProgrammed()
			startTime = eng.Now()
		}
	}
	endTime = eng.Now()
	host := dev.FTL().HostProgrammed() - baseHost
	gc := dev.FTL().GCProgrammed() - baseGC
	if host == 0 {
		return 1, 0, nil
	}
	waf = float64(host+gc) / float64(host)
	elapsed := (endTime - startTime).Seconds()
	if elapsed > 0 {
		updatesPerSec = float64(host) / elapsed
	}
	return waf, updatesPerSec, nil
}

// newRegionDevice builds the small preconditioned device used by the GC
// experiments.
func newRegionDevice(overProvision float64) (*ssd.Device, *simEngine, int64, error) {
	cfg := regionConfig(overProvision)
	if err := cfg.Validate(); err != nil {
		return nil, nil, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < pages; lpa++ {
		dev.Preload(lpa)
	}
	return dev, eng, pages, nil
}
