// Package fp16 implements IEEE 754 binary16 (half precision) conversion in
// software. The mixed-precision training mode ships FP16 gradients to the
// SSD and FP16 weights back; this package makes that path *numerically*
// real — the functional verifier quantises through it, so the reproduction
// can state what mixed precision does to update accuracy rather than just
// counting bytes.
package fp16

import "math"

// Bits is a raw binary16 value: 1 sign bit, 5 exponent bits, 10 mantissa
// bits.
type Bits uint16

// Constants of the binary16 format.
const (
	// MaxValue is the largest finite half-precision value (65504).
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal value (2^-14).
	MinNormal = 6.103515625e-05
	// MinSubnormal is the smallest positive subnormal value (2^-24).
	MinSubnormal = 5.9604644775390625e-08
	// Epsilon is the relative rounding unit (2^-11, round-to-nearest).
	Epsilon = 4.8828125e-04
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// overflowing to infinity and flushing tiny values through the subnormal
// range exactly as hardware does.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf/NaN
		if man != 0 {
			return Bits(sign | 0x7E00) // quiet NaN
		}
		return Bits(sign | 0x7C00) // Inf
	case exp == 0 && man == 0:
		return Bits(sign) // signed zero
	}

	// Unbiased exponent; float32 bias 127, float16 bias 15.
	e := exp - 127 + 15
	switch {
	case e >= 0x1F:
		return Bits(sign | 0x7C00) // overflow → Inf
	case e <= 0:
		// Subnormal half (or underflow to zero). Shift the implicit-1
		// mantissa right; round to nearest even.
		if e < -10 {
			return Bits(sign) // underflows even the subnormal range
		}
		m := man | 0x800000 // restore implicit bit
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		rounded := m + half
		// Round-to-even on exact tie.
		if m&(half*2-1) == half && rounded&(1<<shift) != 0 && m&(1<<shift) == 0 {
			rounded -= half
		}
		return Bits(sign | uint16(rounded>>shift))
	default:
		// Normal: round mantissa from 23 to 10 bits, nearest even.
		rounded := man + 0xFFF + ((man >> 13) & 1)
		if rounded&0x800000 != 0 { // mantissa overflow bumps exponent
			rounded = 0
			e++
			if e >= 0x1F {
				return Bits(sign | 0x7C00)
			}
		}
		return Bits(sign | uint16(e)<<10 | uint16(rounded>>13))
	}
}

// ToFloat32 converts binary16 to float32 exactly (binary16 ⊂ binary32).
func ToFloat32(h Bits) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	man := uint32(h & 0x3FF)

	switch {
	case exp == 0x1F: // Inf/NaN
		return math.Float32frombits(sign | 0x7F800000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalise into float32.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}

// Round quantises a float32 through binary16 and back — the exact value a
// mixed-precision interface delivers.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// RoundSlice quantises dst[i] = Round(src[i]); dst and src may alias.
func RoundSlice(dst, src []float32) {
	if len(dst) != len(src) {
		panic("fp16: RoundSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = Round(v)
	}
}

// IsNaN reports whether the half-precision value is a NaN.
func (h Bits) IsNaN() bool {
	return h&0x7C00 == 0x7C00 && h&0x3FF != 0
}

// IsInf reports whether the half-precision value is ±Inf.
func (h Bits) IsInf() bool {
	return h&0x7FFF == 0x7C00
}

// MaxRelError returns the worst-case relative quantisation error over a
// slice (0 for exactly representable inputs; NaN/Inf and zeros skipped).
func MaxRelError(xs []float32) float64 {
	var worst float64
	for _, x := range xs {
		fx := float64(x)
		if fx == 0 || math.IsNaN(fx) || math.IsInf(fx, 0) {
			continue
		}
		q := float64(Round(x))
		if rel := math.Abs(q-fx) / math.Abs(fx); rel > worst {
			worst = rel
		}
	}
	return worst
}
