package experiments

import (
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// runF17 regenerates the read-QoS extension: tail latency of foreground
// reads (e.g. inference serving from the same drive) while the training
// update stream hammers the planes, with and without program/erase
// suspend. Suspend lets a 65 µs read preempt a 300 µs program instead of
// queueing behind it.
func runF17(opts Options) (*Result, error) {
	t := stats.NewTable("F17: foreground-read QoS under update load",
		"read-suspend", "read-p50-us", "read-p99-us", "updates-done", "preemptions")
	rounds := 6
	if opts.Quick {
		rounds = 3
	}
	type qosResult struct {
		p50, p99          float64
		updates, preempts uint64
	}
	results := runner.Map(opts.Parallel, []bool{false, true}, func(suspend bool) (qosResult, error) {
		p50, p99, updates, preempts, err := measureReadQoS(suspend, rounds)
		return qosResult{p50, p99, updates, preempts}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, suspend := range []bool{false, true} {
		q := results[i].Value
		t.AddRow(suspend, q.p50, q.p99, q.updates, q.preempts)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// measureReadQoS runs a background update stream with periodic foreground
// reads and reports the read-latency percentiles.
func measureReadQoS(suspend bool, rounds int) (p50, p99 float64, updates, preempts uint64, err error) {
	cfg := regionConfig(0.2)
	cfg.Nand.ReadSuspend = suspend
	cfg.Nand.ResumeOverhead = 20 * sim.Microsecond
	if err := cfg.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < pages; lpa++ {
		dev.Preload(lpa)
	}

	// Background: `rounds` full update sweeps, windowed.
	total := pages * int64(rounds)
	var issued, done int64
	var pump func()
	pump = func() {
		for issued-done < 64 && issued < total {
			lpa := issued % pages
			issued++
			dev.ProgramUpdate(lpa, func() {
				done++
				pump()
			})
		}
	}
	pump()

	// Foreground: one random-ish read every 200 µs.
	lat := newHist()
	var reader func(i int64)
	reader = func(i int64) {
		if done >= total {
			return
		}
		lpa := (i * 7919) % pages
		start := eng.Now()
		dev.Read(lpa, func() {
			lat.Add((eng.Now() - start).Micros())
		})
		eng.Schedule(200*sim.Microsecond, func() { reader(i + 1) })
	}
	eng.Schedule(0, func() { reader(0) })

	wedged := true
	dev.Drain(func() { wedged = false })
	eng.Run()
	if wedged {
		return 0, 0, 0, 0, errWedged
	}
	var preemptTotal uint64
	for ch := 0; ch < cfg.Channels; ch++ {
		for _, die := range dev.Channel(ch).Dies() {
			preemptTotal += die.Preemptions()
		}
	}
	return lat.Percentile(50), lat.Percentile(99), dev.Stats().UpdateWrites, preemptTotal, nil
}

// runF19 regenerates the GC stream-separation ablation: write amplification
// of a skewed update stream (a hot subset rewritten constantly over a cold
// majority) with GC relocations directed to their own blocks vs mixed into
// the update stream's blocks.
func runF19(opts Options) (*Result, error) {
	t := stats.NewTable("F19: GC hot/cold stream separation",
		"separation", "WAF", "gc-relocations", "updates/s (window)")
	rounds := 10
	if opts.Quick {
		rounds = 5
	}
	type sepResult struct {
		waf    float64
		relocs uint64
		rate   float64
	}
	results := runner.Map(opts.Parallel, []bool{false, true}, func(sep bool) (sepResult, error) {
		waf, relocs, rate, err := measureSkewedWAF(sep, rounds)
		return sepResult{waf, relocs, rate}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, sep := range []bool{false, true} {
		r := results[i].Value
		t.AddRow(sep, r.waf, r.relocs, r.rate)
	}
	return &Result{Tables: []*stats.Table{t}}, nil
}

// measureSkewedWAF drives a hot/cold skewed update stream: 25% of the
// pages receive 90% of the updates.
func measureSkewedWAF(separation bool, rounds int) (waf float64, relocs uint64, rate float64, err error) {
	cfg := regionConfig(0.125)
	cfg.HotColdSeparation = separation
	if err := cfg.Validate(); err != nil {
		return 0, 0, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	// Precondition in shuffled order so hot and cold pages start physically
	// interleaved, as on an aged drive — the state stream separation has to
	// untangle.
	order := make([]int64, pages)
	for i := range order {
		order[i] = int64(i)
	}
	shuf := uint64(0x2545F4914F6CDD1D)
	for i := len(order) - 1; i > 0; i-- {
		shuf = shuf*6364136223846793005 + 1442695040888963407
		j := int((shuf >> 33) % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	for _, lpa := range order {
		dev.Preload(lpa)
	}
	hot := pages / 4
	// Deterministic LCG picks the next update target: 90% hot, 10% cold.
	state := uint64(0x853C49E6748FEA9B)
	next := func() int64 {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		if r%100 < 98 {
			return int64(r) % hot
		}
		return hot + int64(r)%(pages-hot)
	}
	total := pages * int64(rounds)
	var issued, done int64
	var baseHost, baseGC uint64
	var start sim.Time
	var pump func()
	pump = func() {
		for issued-done < 64 && issued < total {
			issued++
			dev.ProgramUpdate(next(), func() {
				done++
				if done == total/4 { // skip warm-up for steady-state WAF
					baseHost = dev.FTL().HostProgrammed()
					baseGC = dev.FTL().GCProgrammed()
					start = eng.Now()
				}
				pump()
			})
		}
	}
	pump()
	ok := false
	dev.Drain(func() { ok = true })
	eng.Run()
	if !ok {
		return 0, 0, 0, errWedged
	}
	host := dev.FTL().HostProgrammed() - baseHost
	gc := dev.FTL().GCProgrammed() - baseGC
	if host == 0 {
		return 1, 0, 0, nil
	}
	waf = float64(host+gc) / float64(host)
	elapsed := (eng.Now() - start).Seconds()
	if elapsed > 0 {
		rate = float64(host) / elapsed
	}
	return waf, dev.Stats().GCRelocations, rate, nil
}
