// ssd_explorer demonstrates the SSD substrate on its own: how the FTL maps
// logical pages, how sequential vs random overwrites drive garbage
// collection and write amplification, and how the channel/plane topology
// sets bandwidth ceilings. Nothing here involves DNN training — it is the
// storage system the in-storage optimizer is built on.
//
// Run with: go run ./examples/ssd_explorer
package main

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

func device() (*sim.Engine, *ssd.Device) {
	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = 32
	n.PlanesPerDie = 2
	cfg := ssd.Config{
		Channels: 2, DiesPerChannel: 2, Nand: n,
		OverProvision: 0.125, GCLowWater: 2, GCHighWater: 4,
		CachePages: 256, DRAMPageLatency: 2 * sim.Microsecond,
		CmdLatency: 5 * sim.Microsecond,
	}
	eng := sim.NewEngine()
	return eng, ssd.NewDevice(eng, cfg)
}

func main() {
	// --- 1. Address translation --------------------------------------------
	eng, dev := device()
	fmt.Println("1. The FTL is log-structured: rewriting a page moves it.")
	dev.Preload(7)
	before, _ := dev.FTL().Lookup(7)
	done := false
	dev.ProgramUpdate(7, func() { done = true })
	eng.Run()
	after, _ := dev.FTL().Lookup(7)
	fmt.Printf("   lpa 7: %v -> %v (rewritten in place? %v — NAND forbids it)\n\n",
		before, after, done && before == after)

	// --- 2. Sequential vs random overwrites --------------------------------
	fmt.Println("2. Write amplification: sequential vs random overwrites at 87.5% occupancy.")
	t := stats.NewTable("", "workload", "host-writes", "gc-relocations", "gc-erases", "WAF", "MB/s")
	for _, pat := range []trace.Pattern{trace.SeqWrite, trace.RandWrite} {
		eng, dev := device()
		logical := dev.FTL().LogicalPages()
		for lpa := int64(0); lpa < logical; lpa++ {
			dev.Preload(lpa) // precondition: drive full
		}
		reqs := trace.GenerateIO(pat, int(logical*3), logical, 1)
		var issue func()
		i, inFlight := 0, 0
		issue = func() {
			for inFlight < 64 && i < len(reqs) {
				r := reqs[i]
				i++
				inFlight++
				dev.Write(r.LPA, func() { inFlight--; issue() })
			}
		}
		issue()
		eng.Run()
		ok := false
		dev.Drain(func() { ok = true })
		eng.Run()
		s := dev.Stats()
		mbps := units.Bytes(int64(s.HostWrites)*int64(dev.Geometry().PageSize)).MBf() / eng.Now().Seconds()
		t.AddRow(pat.String(), s.HostWrites, s.GCRelocations, s.GCErases,
			fmt.Sprintf("%.2f%s", s.WAF, ok1(ok)), mbps)
	}
	fmt.Print(t)
	fmt.Println(`   Random overwrites leave every block partially valid, so GC must copy
   live pages before erasing — write amplification and lost bandwidth.`)
	fmt.Println()

	// --- 3. Bandwidth ceilings ----------------------------------------------
	fmt.Println("3. Topology sets the ceilings (full-size 8x4-die drive):")
	cfg := ssd.DefaultConfig()
	fmt.Printf("   internal read  %6.1f GB/s  (%d planes x tR)\n",
		cfg.InternalReadMBps().GBps(), cfg.Geometry().Planes())
	fmt.Printf("   internal write %6.1f GB/s  (%d planes x tPROG)\n",
		cfg.InternalProgramMBps().GBps(), cfg.Geometry().Planes())
	fmt.Printf("   channel buses  %6.1f GB/s  (%d x %d MB/s)\n",
		cfg.ChannelMBps().GBps(), cfg.Channels, cfg.Nand.BusMBps)
	fmt.Println("   -> reads are 3.4x faster than the buses can drain them:")
	fmt.Println("      the bandwidth in-storage processing taps, and offloading wastes.")
}

func ok1(ok bool) string {
	if ok {
		return ""
	}
	return " (!drain)"
}
