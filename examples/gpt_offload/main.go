// gpt_offload reproduces the motivating scenario of the paper: training a
// GPT-class model whose Adam state (12 bytes/parameter) exceeds GPU memory,
// so it must live on an NVMe SSD. The example walks the full system
// comparison for GPT-13B — feasibility, optimizer-step latency, end-to-end
// throughput across batch sizes, and the energy bill — and prints where
// each design is bottlenecked.
//
// Run with: go run ./examples/gpt_offload
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/stats"
	"repro/internal/units"
)

func main() {
	model := dnn.GPT13B()
	cfg := core.DefaultConfig(model)
	cfg.MaxSimUnits = 512

	spec := cfg.Spec()
	fmt.Printf("Model: %s\n", model)
	fmt.Printf("Optimizer state: %v B/param -> %.0f GB resident in flash\n",
		spec.ResidentBytes(), float64(model.Params)*spec.ResidentBytes()/units.BytesPerGB)
	fmt.Printf("GPU memory: %.0f GB (%s) -> state is %.1fx too large to keep on-device\n\n",
		cfg.GPU.MemoryGB, cfg.GPU.Name,
		float64(model.Params)*spec.ResidentBytes()/(cfg.GPU.MemoryGB*units.BytesPerGB))

	// System comparison at the default batch.
	var reports []*core.Report
	for _, name := range core.SystemNames() {
		sys, err := core.NewSystem(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, r)
	}
	fmt.Print(core.ReportTable("GPT-13B, Adam, mixed precision, batch 8", reports))
	fmt.Println()
	fmt.Print(core.EnergyTable("Energy per optimizer step (J)", reports))
	fmt.Println()

	// Where is each system bottlenecked? Compare external vs internal
	// traffic against the interface bandwidths.
	fmt.Println("Bottleneck analysis:")
	fmt.Printf("  PCIe effective:       %6.2f GB/s per direction\n", cfg.Link.EffectiveGBps())
	fmt.Printf("  channel buses total:  %6.2f GB/s\n", cfg.SSD.ChannelMBps().GBps())
	fmt.Printf("  NAND program total:   %6.2f GB/s  <- floor for every design that persists state\n",
		cfg.SSD.InternalProgramMBps().GBps())
	fmt.Println()

	// Batch scaling: the optimizer step is batch-independent, so larger
	// batches amortise it and close the throughput gap.
	t := stats.NewTable("End-to-end tokens/s vs batch size",
		"batch", "hostoffload", "optimstore", "advantage")
	for _, batch := range []int{1, 4, 8, 16, 32} {
		c := cfg
		c.Batch = batch
		off, err := core.NewHostOffload(c).Run()
		if err != nil {
			log.Fatal(err)
		}
		ost, err := core.NewOptimStore(c).Run()
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(batch, off.TokensPerSec, ost.TokensPerSec,
			fmt.Sprintf("%.2fx", ost.TokensPerSec/off.TokensPerSec))
	}
	fmt.Print(t)
}
