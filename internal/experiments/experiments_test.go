package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/approx"
)

var quick = Options{Quick: true}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != id || res.Title == "" {
		t.Fatalf("malformed result %+v", res)
	}
	if len(res.Tables)+len(res.Figures) == 0 {
		t.Fatal("experiment produced no output")
	}
	return res
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("have %d experiments, want 23", len(ids))
	}
	if ids[0] != "T1" || ids[1] != "T2" || ids[2] != "F1" || ids[22] != "F21" {
		t.Fatalf("ordering: %v", ids)
	}
	for _, id := range ids {
		title, ok := Title(id)
		if !ok || title == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("F99", quick); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, _, err := RunMany([]string{"T1", "F99"}, quick); err == nil {
		t.Fatal("RunMany accepted unknown id")
	}
}

// TestParallelDeterminism pins the runner guarantee at the experiment
// level: fan-out across the worker pool renders byte-identical tables and
// figures to fully sequential execution. F2 exercises the parallel
// runSystems path, F7/F11 the converted ablation fan-outs.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"F2", "F7", "F11"} {
		seqRes, err := Run(id, Options{Quick: true, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := Run(id, Options{Quick: true, Parallel: 8})
		if err != nil {
			t.Fatal(err)
		}
		if seqRes.String() != parRes.String() {
			t.Fatalf("%s output differs under parallelism:\n--- seq ---\n%s--- par ---\n%s",
				id, seqRes, parRes)
		}
	}
}

// TestRunMany checks ordered fan-out over experiment IDs and that the run
// summary sees the simulated-event metrics reports carry.
func TestRunMany(t *testing.T) {
	ids := []string{"F2", "T1", "T2"}
	results, summary, err := RunMany(ids, Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results", len(results))
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Fatalf("result %d is %s, want %s (order broken)", i, results[i].ID, id)
		}
	}
	if summary.Jobs != len(ids) || summary.Errors != 0 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestT1Structure(t *testing.T) {
	res := runExp(t, "T1")
	if res.Tables[0].NumRows() < 15 {
		t.Fatal("config table too small")
	}
	if !strings.Contains(res.String(), "TLC") {
		t.Fatal("missing NAND config")
	}
}

func TestT2CoversZoo(t *testing.T) {
	res := runExp(t, "T2")
	if res.Tables[0].NumRows() < 5 {
		t.Fatal("model table too small")
	}
	s := res.String()
	for _, name := range []string{"BERT-Large", "GPT-175B", "ResNet-50"} {
		if !strings.Contains(s, name) {
			t.Errorf("missing %s", name)
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "x"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[i], err)
	}
	return v
}

func TestF1HeadlineHolds(t *testing.T) {
	res := runExp(t, "F1")
	// For every model row set, optimstore's opt-step must be below
	// hostoffload's. Use the figure series.
	fig := res.Figures[0]
	var off, opt []float64
	for _, s := range fig.Series {
		for _, p := range s.Points {
			switch s.Name {
			case "hostoffload":
				off = append(off, p.Y)
			case "optimstore":
				opt = append(opt, p.Y)
			}
		}
	}
	if len(off) == 0 || len(off) != len(opt) {
		t.Fatalf("series lengths: off=%d opt=%d", len(off), len(opt))
	}
	for i := range off {
		if opt[i] >= off[i] {
			t.Fatalf("point %d: optimstore %v >= offload %v", i, opt[i], off[i])
		}
	}
}

func TestF2SpeedupAboveOne(t *testing.T) {
	res := runExp(t, "F2")
	tab := res.Tables[0]
	for i := 0; i < tab.NumRows(); i++ {
		if sp := cell(t, tab.Row(i), 4); sp <= 1 {
			t.Fatalf("row %d speedup %v <= 1", i, sp)
		}
	}
}

func TestF3CoversOptimizers(t *testing.T) {
	res := runExp(t, "F3")
	s := res.String()
	for _, name := range []string{"SGD", "Adam", "LAMB"} {
		if !strings.Contains(s, name) {
			t.Errorf("missing %s", name)
		}
	}
}

func TestF4EnergyOrdering(t *testing.T) {
	res := runExp(t, "F4")
	tab := res.Tables[0] // rows: hostoffload, ctrl-isp, optimstore
	off := cell(t, tab.Row(0), 1)
	opt := cell(t, tab.Row(2), 1)
	if opt >= off {
		t.Fatalf("optimstore energy %v >= offload %v", opt, off)
	}
}

func TestF5MoreParallelismFaster(t *testing.T) {
	res := runExp(t, "F5")
	fig := res.Figures[0]
	for _, s := range fig.Series {
		if !strings.HasPrefix(s.Name, "optimstore") {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y >= s.Points[i-1].Y {
				t.Fatalf("optimstore not faster with more dies: %v", s.Points)
			}
		}
	}
}

func TestF6LanesSaturate(t *testing.T) {
	res := runExp(t, "F6")
	fig := res.Figures[0]
	pts := fig.Series[0].Points
	if len(pts) < 2 {
		t.Fatal("too few points")
	}
	// More lanes never hurt, and the kernel is memory-bound so the curve
	// must flatten: the last doubling gains less than the first.
	first := pts[0].Y - pts[1].Y
	last := pts[len(pts)-2].Y - pts[len(pts)-1].Y
	if pts[1].Y > pts[0].Y || last > first {
		t.Fatalf("lane scaling not saturating: %v", pts)
	}
}

func TestF7ColocatedWins(t *testing.T) {
	res := runExp(t, "F7")
	tab := res.Tables[0]
	colo := cell(t, tab.Row(0), 2)
	split := cell(t, tab.Row(2), 2)
	if colo >= split {
		t.Fatalf("colocated %v not faster than split %v", colo, split)
	}
}

func TestF8PrecisionRows(t *testing.T) {
	res := runExp(t, "F8")
	tab := res.Tables[0]
	if tab.NumRows() != 6 { // 3 precisions × 2 systems
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Q8 state must cut OptimStore's NAND program traffic vs Mixed16.
	var mixedProg, q8Prog float64
	for i := 0; i < tab.NumRows(); i++ {
		row := tab.Row(i)
		if row[1] != "optimstore" {
			continue
		}
		switch row[0] {
		case "Mixed16":
			mixedProg = cell(t, row, 4)
		case "Mixed16+Q8state":
			q8Prog = cell(t, row, 4)
		}
	}
	if q8Prog >= mixedProg {
		t.Fatalf("q8 program traffic %v >= mixed16 %v", q8Prog, mixedProg)
	}
}

func TestF9LifetimeOrdering(t *testing.T) {
	res := runExp(t, "F9")
	fig := res.Figures[0]
	pts := fig.Series[0].Points // SLC, MLC, TLC, QLC
	if len(pts) != 4 {
		t.Fatalf("expected 4 cell modes, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y >= pts[i-1].Y {
			t.Fatalf("lifetime not decreasing with bits/cell: %v", pts)
		}
	}
}

func TestF10ThroughputOrdering(t *testing.T) {
	res := runExp(t, "F10")
	fig := res.Figures[0]
	var off, opt *float64
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		y := s.Points[len(s.Points)-1].Y
		switch s.Name {
		case "hostoffload":
			off = &y
		case "optimstore":
			opt = &y
		}
	}
	if off == nil || opt == nil || *opt <= *off {
		t.Fatal("optimstore tokens/s should exceed offload")
	}
}

func TestF11WAFvsOP(t *testing.T) {
	res := runExp(t, "F11")
	fig := res.Figures[0]
	for _, s := range fig.Series {
		if len(s.Points) < 2 {
			t.Fatal("too few OP points")
		}
		first := s.Points[0]
		last := s.Points[len(s.Points)-1]
		if last.Y > first.Y {
			t.Fatalf("%s: WAF grew with more over-provisioning: %v", s.Name, s.Points)
		}
	}
	// Random updates amplify at least as much as sequential at low OP.
	seq, _ := fig.Series[0].YAt(0.07)
	rnd, _ := fig.Series[1].YAt(0.07)
	if rnd < seq {
		t.Fatalf("random WAF %v < sequential %v at 7%% OP", rnd, seq)
	}
}

func TestF13SparseScaling(t *testing.T) {
	res := runExp(t, "F13")
	for _, s := range res.Figures[0].Series {
		pts := s.Points
		for i := 1; i < len(pts); i++ {
			if pts[i].Y <= pts[i-1].Y {
				t.Fatalf("%s: step time not growing with update fraction: %v", s.Name, pts)
			}
		}
	}
	// In-storage still wins at every sparsity.
	off := res.Figures[0].Series[0]
	opt := res.Figures[0].Series[1]
	for i := range off.Points {
		if opt.Points[i].Y >= off.Points[i].Y {
			t.Fatalf("optimstore lost at fraction %v", off.Points[i].X)
		}
	}
}

func TestF14CheckpointSpeedup(t *testing.T) {
	res := runExp(t, "F14")
	tab := res.Tables[0]
	for i := 0; i < tab.NumRows(); i++ {
		if sp := cell(t, tab.Row(i), 4); sp <= 1 {
			t.Fatalf("row %d: in-storage checkpoint not faster (%v)", i, sp)
		}
	}
}

func TestF15OverlapOrdering(t *testing.T) {
	res := runExp(t, "F15")
	tab := res.Tables[0]
	for i := 0; i < tab.NumRows(); i++ {
		row := tab.Row(i)
		noOv := cell(t, row, 1)
		layer := cell(t, row, 3)
		if layer >= noOv {
			t.Fatalf("row %d: layerwise sim (%v) not better than no overlap (%v)", i, layer, noOv)
		}
	}
}

func TestF16ClusterMonotone(t *testing.T) {
	res := runExp(t, "F16")
	pts := res.Figures[0].Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("throughput not growing with workers: %v", pts)
		}
	}
}

func TestF17SuspendImprovesTail(t *testing.T) {
	res := runExp(t, "F17")
	tab := res.Tables[0] // rows: false, true
	offP99 := cell(t, tab.Row(0), 2)
	onP99 := cell(t, tab.Row(1), 2)
	if onP99 >= offP99 {
		t.Fatalf("suspend did not improve p99: %v vs %v", onP99, offP99)
	}
	// Suspend must actually have fired.
	if preempts := cell(t, tab.Row(1), 4); preempts <= 0 {
		t.Fatal("no preemptions recorded")
	}
	if preempts := cell(t, tab.Row(0), 4); !approx.Equal(preempts, 0) {
		t.Fatal("preemptions without suspend")
	}
}

func TestF18CellModeTradeoff(t *testing.T) {
	res := runExp(t, "F18")
	pts := res.Figures[0].Series[0].Points // SLC..QLC step times
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Faster programming cells give faster steps: SLC < TLC < QLC.
	if !(pts[0].Y < pts[2].Y && pts[2].Y < pts[3].Y) {
		t.Fatalf("step times not ordered by program latency: %v", pts)
	}
}

func TestF19SeparationHelps(t *testing.T) {
	res := runExp(t, "F19")
	tab := res.Tables[0] // rows: false, true
	wafOff := cell(t, tab.Row(0), 1)
	wafOn := cell(t, tab.Row(1), 1)
	if wafOn > wafOff {
		t.Fatalf("separation worsened WAF: %v vs %v", wafOn, wafOff)
	}
}

// TestF20PolicyTrade pins the checkpoint-policy comparison the fault-storm
// experiment exists to show: under the identical storm, in-place
// checkpoints are cheaper to take and to restore from than host-pull but
// pay NAND programs, and any checkpoint beats re-streaming from the host.
func TestF20PolicyTrade(t *testing.T) {
	res := runExp(t, "F20")
	tab := res.Tables[0] // rows: none, inplace, hostpull
	none, inplace, hostpull := tab.Row(0), tab.Row(1), tab.Row(2)
	if none[1] != "none" || inplace[1] != "inplace" || hostpull[1] != "hostpull" {
		t.Fatalf("policy rows misordered: %v / %v / %v", none[1], inplace[1], hostpull[1])
	}
	// The policy is pure accounting: identical storms fire identical faults.
	for c := 2; c <= 4; c++ {
		if none[c] != inplace[c] || none[c] != hostpull[c] {
			t.Fatalf("fired-fault column %d differs across policies", c)
		}
	}
	if cell(t, none, 2)+cell(t, none, 3)+cell(t, none, 4) < 1 {
		t.Fatal("storm fired no faults")
	}
	if cell(t, inplace, 5) >= cell(t, hostpull, 5) {
		t.Fatalf("in-place checkpoint %v ms not cheaper than host-pull %v ms",
			cell(t, inplace, 5), cell(t, hostpull, 5))
	}
	if cell(t, inplace, 6) >= cell(t, none, 6) {
		t.Fatalf("in-place recovery %v ms not cheaper than checkpoint-free %v ms",
			cell(t, inplace, 6), cell(t, none, 6))
	}
	if cell(t, inplace, 8) <= 0 || !approx.Equal(cell(t, hostpull, 8), 0) {
		t.Fatalf("WAF cost: inplace %v GB, hostpull %v GB", cell(t, inplace, 8), cell(t, hostpull, 8))
	}
	// The cross-system table surfaces the storm to all five systems.
	sys := res.Tables[1]
	if sys.NumRows() != 5 {
		t.Fatalf("cross-system table has %d rows", sys.NumRows())
	}
}

func TestF12CostMonotone(t *testing.T) {
	res := runExp(t, "F12")
	tab := res.Tables[0]
	prev := 0.0
	for i := 0; i < tab.NumRows(); i++ {
		area := cell(t, tab.Row(i), 2)
		if area <= prev {
			t.Fatalf("area not increasing with lanes at row %d", i)
		}
		prev = area
	}
}
