package optim_test

import (
	"fmt"

	"repro/internal/optim"
)

// Example trains one parameter toward a target with Adam.
func Example() {
	opt := optim.New(optim.Adam, optim.Hyper{LR: 0.1})
	w := []float32{0}
	for i := 0; i < 300; i++ {
		g := []float32{w[0] - 3} // ∇ of ½(w−3)²
		opt.Step(w, g)
	}
	fmt.Printf("w converged to %.2f after %d steps\n", w[0], opt.Steps())
	// Output:
	// w converged to 3.00 after 300 steps
}

// ExampleSpecFor shows the per-parameter traffic accounting the timing
// model is built on.
func ExampleSpecFor() {
	spec := optim.SpecFor(optim.Adam, optim.Mixed16)
	fmt.Println("resident bytes/param:", spec.ResidentBytes())
	fmt.Println("in-storage traffic  :", spec.HostTrafficBytes())
	fmt.Println("offload traffic     :", spec.OffloadTrafficBytes())
	// Output:
	// resident bytes/param: 12
	// in-storage traffic  : 4
	// offload traffic     : 24
}

// ExampleClipGlobalNorm shows the standard gradient safeguard.
func ExampleClipGlobalNorm() {
	g := []float32{3, 4} // norm 5
	before := optim.ClipGlobalNorm(g, 1)
	fmt.Printf("norm %.0f clipped to %.0f\n", before, optim.GlobalNorm(g))
	// Output:
	// norm 5 clipped to 1
}
