package tracing

import (
	"io"
	"strconv"

	"repro/internal/sim"
)

// WriteChrome serializes one or more traces as Chrome trace_event JSON
// (the "JSON Array Format" wrapped in a traceEvents object), loadable in
// chrome://tracing and https://ui.perfetto.dev. Each trace becomes one
// process (pid = 1-based trace index, named by the trace label); each
// track becomes one thread within it (tid = 1-based first-seen track
// index), so a multi-job sweep renders as parallel process lanes.
//
// Spans are emitted as complete events ("X"), instants as "i", counters
// as "C". Timestamps and durations are microseconds with exactly three
// fractional digits, computed with integer arithmetic from the nanosecond
// sim clock — no float formatting is involved, so output is byte-stable.
//
// The serializer deliberately builds output with strconv appends rather
// than fmt stream writes: fmt verbs on float64 are easy to get
// non-deterministic (%v of -0, NaN) and the simlint tracesink check bans
// fmt writes in sink code for that reason.
func WriteChrome(w io.Writer, traces ...*Trace) error {
	b := make([]byte, 0, 1<<16)
	b = append(b, `{"traceEvents":[`...)
	first := true
	emit := func() error {
		// Flush in chunks so huge traces do not hold a second full copy.
		if len(b) < 1<<20 {
			return nil
		}
		_, err := w.Write(b)
		b = b[:0]
		return err
	}
	for ti, tr := range traces {
		pid := ti + 1
		b = appendMeta(b, &first, pid, 0, "process_name", tr.label)
		for i, track := range tr.tracks {
			b = appendMeta(b, &first, pid, i+1, "thread_name", track)
		}
		for _, e := range tr.events {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, `{"name":`...)
			b = appendJSONString(b, e.Name)
			b = append(b, `,"ph":"`...)
			switch e.Kind {
			case KindSpan:
				b = append(b, 'X')
			case KindInstant:
				b = append(b, 'i')
			case KindCounter:
				b = append(b, 'C')
			}
			b = append(b, `","pid":`...)
			b = strconv.AppendInt(b, int64(pid), 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(tr.trackIdx[e.Track]+1), 10)
			b = append(b, `,"ts":`...)
			b = appendMicros(b, int64(e.Start))
			switch e.Kind {
			case KindSpan:
				b = append(b, `,"dur":`...)
				b = appendMicros(b, int64(e.End-e.Start))
			case KindInstant:
				b = append(b, `,"s":"t"`...)
			case KindCounter:
				b = append(b, `,"args":{"value":`...)
				b = strconv.AppendFloat(b, e.Value, 'g', -1, 64)
				b = append(b, '}')
			}
			b = append(b, '}')
			if err := emit(); err != nil {
				return err
			}
		}
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}

// appendMeta appends a metadata ("M") event naming a process or thread.
func appendMeta(b []byte, first *bool, pid, tid int, key, name string) []byte {
	if !*first {
		b = append(b, ',')
	}
	*first = false
	b = append(b, `{"name":"`...)
	b = append(b, key...)
	b = append(b, `","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `}}`...)
	return b
}

// appendMicros renders a nanosecond count as microseconds with exactly
// three fractional digits, using only integer arithmetic.
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		b = append(b, '-')
		ns = -ns
	}
	const nsPerUs = int64(sim.Microsecond)
	b = strconv.AppendInt(b, ns/nsPerUs, 10)
	frac := ns % nsPerUs
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// appendJSONString appends s as a JSON string literal. Track and span
// names are plain ASCII identifiers; the escaper still handles quotes,
// backslashes, and control characters so arbitrary labels stay valid.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
