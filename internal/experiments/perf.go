package experiments

import (
	"repro/internal/dnn"
)

// perfModels is the model subset used by the latency experiments: the
// offload-relevant range.
func perfModels(opts Options) []dnn.Model {
	if opts.Quick {
		return []dnn.Model{dnn.GPT2XL(), dnn.GPT13B()}
	}
	return []dnn.Model{dnn.BERTLarge(), dnn.GPT2XL(), dnn.GPT6B7(), dnn.GPT13B(), dnn.GPT30B()}
}
