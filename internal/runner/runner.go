// Package runner fans independent simulation jobs across a bounded worker
// pool while keeping every observable output deterministic.
//
// The simulation kernel (internal/sim) is deliberately single-threaded:
// one Engine, one event heap, bit-for-bit reproducible. The parallelism
// this repository can exploit is *between* engines — a sweep, an ablation
// or an experiment suite runs many fully independent (Config, System)
// points, each with its own Engine. The runner provides exactly that
// shape, with three guarantees:
//
//  1. Results are returned (Run) or emitted (Stream) in submission order,
//     regardless of the order jobs complete in. A run with Workers == 1
//     executes jobs strictly sequentially on the calling goroutine, so its
//     output is byte-for-byte the pre-parallelism behaviour.
//  2. A panic inside a job is captured into that job's Result.Err (as a
//     *PanicError carrying the recovered value and stack) instead of
//     killing the process; sibling jobs are unaffected.
//  3. Per-job wall-clock and simulated-event metrics are collected so a
//     whole run can be summarised (Summarize).
//
// Jobs must be self-contained: construct the core.System / sim.Engine
// *inside* the job function, never share one across jobs. core.Config and
// every parameter struct it embeds are scalar value types (no slices or
// maps), so copying a Config into each job closure is safe; the one
// pointer-ish field, ComputeHook, must not close over shared mutable
// state when jobs run concurrently.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one self-contained unit of work producing a T.
type Job[T any] func() (T, error)

// Result is the outcome of one job, tagged with its submission index.
type Result[T any] struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Value is the job's return value; the zero value on error.
	Value T
	// Err is the job's returned error, or a *PanicError if it panicked.
	Err error
	// Wall is the job's wall-clock execution time.
	Wall time.Duration
	// Events is the number of simulated events the job reported, via the
	// EventCounter interface on its Value (0 if not implemented).
	Events int64
	// Violations is the invariant violations the job's value carried, via
	// the InvariantReporter interface on its Value (nil if not implemented
	// or clean). Populated only for successful jobs.
	Violations []string
	// TraceEvents is the number of trace events the job's value carried,
	// via the TraceCarrier interface on its Value (0 if not implemented or
	// tracing was disabled). Populated only for successful jobs.
	TraceEvents int64
}

// PanicError wraps a panic recovered from a job.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v", e.Value)
}

// EventCounter is implemented by job results that can report how many
// simulated events producing them took (e.g. *core.Report). The runner
// records it into Result.Events for run summaries.
type EventCounter interface {
	EventCount() int64
}

// InvariantReporter is implemented by job results that carry self-audit
// findings (e.g. *core.Report when a run executes with invariant checking
// enabled). The runner copies them into Result.Violations so Summarize can
// surface a sweep-wide violation count without the caller unpacking every
// value.
type InvariantReporter interface {
	InvariantViolations() []string
}

// TraceCarrier is implemented by job results that carry a recorded event
// trace (e.g. a sweep row holding its point's *tracing.Trace). The runner
// copies the count into Result.TraceEvents so Summarize can report how
// much trace data a run produced without the runner importing the tracing
// package — the same decoupling EventCounter and InvariantReporter use.
type TraceCarrier interface {
	TraceEventCount() int64
}

// Workers normalises a worker-count flag: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes the jobs on up to workers goroutines and returns all
// results in submission order. workers <= 0 uses one worker per CPU;
// workers == 1 runs every job sequentially on the calling goroutine.
func Run[T any](workers int, jobs []Job[T]) []Result[T] {
	out := make([]Result[T], 0, len(jobs))
	Stream(workers, jobs, func(r Result[T]) { out = append(out, r) })
	return out
}

// Stream executes the jobs on up to workers goroutines and calls emit
// once per job, in submission order, as soon as each result's turn
// arrives (a completed job is held until all earlier jobs have been
// emitted). emit runs on the calling goroutine.
func Stream[T any](workers int, jobs []Job[T], emit func(Result[T])) {
	workers = Workers(workers)
	if workers == 1 || len(jobs) <= 1 {
		for i, job := range jobs {
			emit(execute(i, job))
		}
		return
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// One single-slot channel per job keeps reordering trivial: workers
	// complete in any order, the emitter drains slots strictly by index.
	slots := make([]chan Result[T], len(jobs))
	for i := range slots {
		slots[i] = make(chan Result[T], 1)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				slots[i] <- execute(i, jobs[i])
			}
		}()
	}
	go func() {
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}()
	for i := range slots {
		emit(<-slots[i])
	}
}

// Map runs fn over items with bounded parallelism, returning results in
// item order. It is the common "sweep a slice of configurations" shape.
func Map[T, R any](workers int, items []T, fn func(T) (R, error)) []Result[R] {
	jobs := make([]Job[R], len(items))
	for i, item := range items {
		item := item
		jobs[i] = func() (R, error) { return fn(item) }
	}
	return Run(workers, jobs)
}

// FirstErr returns the first (by submission order) job error, or nil.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Values extracts the ordered values of a fully successful run. It is a
// convenience for callers that have already checked FirstErr.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out
}

// execute runs one job with panic capture and metric collection.
func execute[T any](index int, job Job[T]) Result[T] {
	res := Result[T]{Index: index}
	//simlint:allow wallclock measuring real job runtime is this harness's purpose
	start := time.Now()
	func() {
		defer func() {
			if v := recover(); v != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				res.Err = &PanicError{Value: v, Stack: buf}
			}
		}()
		res.Value, res.Err = job()
	}()
	//simlint:allow wallclock wall-time metric, never feeds simulated time
	res.Wall = time.Since(start)
	if ec, ok := any(res.Value).(EventCounter); ok && res.Err == nil {
		res.Events = ec.EventCount()
	}
	if ir, ok := any(res.Value).(InvariantReporter); ok && res.Err == nil {
		res.Violations = ir.InvariantViolations()
	}
	if tc, ok := any(res.Value).(TraceCarrier); ok && res.Err == nil {
		res.TraceEvents = tc.TraceEventCount()
	}
	return res
}

// Summary aggregates the per-job metrics of one run.
type Summary struct {
	Jobs        int
	Errors      int
	Panics      int
	Violations  int           // total invariant violations across jobs
	Events      int64         // total simulated events across jobs
	TraceEvents int64         // total recorded trace events across jobs
	Busy        time.Duration // sum of per-job wall time (CPU work done)
	MaxWall     time.Duration // slowest single job
}

// Summarize computes a Summary over a run's results.
func Summarize[T any](results []Result[T]) Summary {
	var s Summary
	s.Jobs = len(results)
	for _, r := range results {
		if r.Err != nil {
			s.Errors++
			if _, ok := r.Err.(*PanicError); ok {
				s.Panics++
			}
		}
		s.Violations += len(r.Violations)
		s.Events += r.Events
		s.TraceEvents += r.TraceEvents
		s.Busy += r.Wall
		if r.Wall > s.MaxWall {
			s.MaxWall = r.Wall
		}
	}
	return s
}

// String renders the summary as a one-line digest for stderr run footers.
func (s Summary) String() string {
	line := fmt.Sprintf("%d jobs, %s busy, slowest %s",
		s.Jobs, s.Busy.Round(time.Millisecond), s.MaxWall.Round(time.Millisecond))
	if s.Events > 0 {
		line += fmt.Sprintf(", %d sim events", s.Events)
	}
	if s.TraceEvents > 0 {
		line += fmt.Sprintf(", %d trace events", s.TraceEvents)
	}
	if s.Errors > 0 {
		line += fmt.Sprintf(", %d errors (%d panics)", s.Errors, s.Panics)
	}
	if s.Violations > 0 {
		line += fmt.Sprintf(", %d INVARIANT VIOLATIONS", s.Violations)
	}
	return line
}
