package fault

import (
	"repro/internal/sim"
	"repro/internal/ssd"
)

// eccBurst is how many consecutive uncorrectable reads one ECCExhaust
// event forces through the patrol scrub — enough to push a block through
// probation toward its retry budget without single-handedly retiring it
// under the default policy.
const eccBurst = 4

// Record is one fired fault together with the blast radius observed at
// firing time.
type Record struct {
	Event
	FiredAt sim.Time

	// PowerLoss: cache-resident dirty pages lost with DRAM.
	DirtyPages int

	// DieFailure: the victim die and the mapped pages lost with it.
	Channel, Die int
	LostPages    int64

	// ECCExhaust: the scrubbed page, or -1 when nothing was mapped.
	LPA int64
}

// Injector arms a Plan against a device as first-class simulation events.
//
// The terminal kinds (PowerLoss, DieFailure) are observational in a
// system run: the injector records the state a crash at that instant
// would destroy, and the run continues — recovery cost is accounted
// analytically afterwards (Costs), keeping a fault storm's performance
// reports comparable run-to-run. Genuine crash simulation (stop, rebuild,
// replay) is the crash harness's job (EnumerateCrashPoints).
//
// ECCExhaust is live: it injects uncorrectable reads and issues a patrol
// scrub, so the latency, plane occupancy, and any block retirement land
// organically in the simulated run.
type Injector struct {
	eng    *sim.Engine
	dev    *ssd.Device
	events []*sim.Event
	fired  []Record
}

// Arm schedules every event of the plan. Call once, after the device is
// built (and preloaded) but before the engine runs.
func (in *Injector) Arm(eng *sim.Engine, dev *ssd.Device, plan Plan) {
	in.eng, in.dev = eng, dev
	for _, ev := range plan {
		ev := ev
		in.events = append(in.events, eng.At(ev.At, func() { in.fire(ev) }))
	}
}

// Disarm cancels every not-yet-fired event. Call it the moment the
// workload completes (inside the drain callback): cancelled events never
// fire and never advance the clock, so a faulted run whose remaining
// faults all land after completion is byte-identical to a fault-free run.
func (in *Injector) Disarm() {
	for _, e := range in.events {
		in.eng.Cancel(e)
	}
	in.events = nil
}

// Fired returns the records of every fault that fired, in firing order.
func (in *Injector) Fired() []Record { return in.fired }

// CountKind returns how many fired faults were of kind k.
func (in *Injector) CountKind(k Kind) int {
	n := 0
	for _, r := range in.fired {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func (in *Injector) fire(ev Event) {
	rec := Record{Event: ev, FiredAt: in.eng.Now(), LPA: -1}
	switch ev.Kind {
	case PowerLoss:
		rec.DirtyPages = in.dev.DirtyPages()
	case DieFailure:
		geo := in.dev.Geometry()
		die := int(ev.Pick % int64(geo.Channels*geo.DiesPerChannel))
		rec.Channel, rec.Die = die/geo.DiesPerChannel, die%geo.DiesPerChannel
		rec.LostPages = in.dev.MappedPagesOnDie(rec.Channel, rec.Die)
	case ECCExhaust:
		if lpa, ok := in.dev.NthMappedLPA(ev.Pick); ok {
			rec.LPA = lpa
			in.dev.InjectReadErrors(lpa, eccBurst)
			in.dev.ScrubRead(lpa, nil)
		}
	}
	in.fired = append(in.fired, rec)
}
