package optim

import (
	"fmt"
	"math"
)

// Schedule maps a step index to a learning-rate multiplier in [0, 1].
// Training loops multiply the base LR by LRAt(step) each step — the
// conventional warmup + decay recipes of the large-model papers the
// evaluation models come from.
type Schedule interface {
	// LRAt returns the multiplier for a 0-based step index.
	LRAt(step int) float64
}

// ConstantSchedule keeps the multiplier at 1.
type ConstantSchedule struct{}

// LRAt implements Schedule.
func (ConstantSchedule) LRAt(int) float64 { return 1 }

// WarmupCosine is the GPT-style recipe: linear warmup from 0 over
// WarmupSteps, then cosine decay to MinFactor at TotalSteps, holding
// MinFactor afterwards.
type WarmupCosine struct {
	WarmupSteps int
	TotalSteps  int
	MinFactor   float64
}

// NewWarmupCosine validates and builds the schedule.
func NewWarmupCosine(warmup, total int, minFactor float64) (*WarmupCosine, error) {
	if warmup < 0 || total <= warmup || minFactor < 0 || minFactor > 1 {
		return nil, fmt.Errorf("optim: warmup cosine (%d, %d, %v)", warmup, total, minFactor)
	}
	return &WarmupCosine{WarmupSteps: warmup, TotalSteps: total, MinFactor: minFactor}, nil
}

// LRAt implements Schedule.
func (s *WarmupCosine) LRAt(step int) float64 {
	switch {
	case step < s.WarmupSteps:
		return float64(step+1) / float64(s.WarmupSteps)
	case step >= s.TotalSteps:
		return s.MinFactor
	default:
		progress := float64(step-s.WarmupSteps) / float64(s.TotalSteps-s.WarmupSteps)
		cos := 0.5 * (1 + math.Cos(math.Pi*progress))
		return s.MinFactor + (1-s.MinFactor)*cos
	}
}

// InverseSqrt is the original Transformer recipe: linear warmup, then
// decay proportional to 1/√step.
type InverseSqrt struct {
	WarmupSteps int
}

// LRAt implements Schedule.
func (s InverseSqrt) LRAt(step int) float64 {
	w := s.WarmupSteps
	if w < 1 {
		w = 1
	}
	t := step + 1
	if t <= w {
		return float64(t) / float64(w)
	}
	return math.Sqrt(float64(w)) / math.Sqrt(float64(t))
}

// Scheduled wraps an Optimizer so Step applies the schedule's multiplier
// by scaling the gradient's effect: it adjusts the wrapped optimizer's
// contribution through a scaled copy of the base learning rate. Because
// the Optimizer interface fixes hyperparameters at construction, Scheduled
// rebuilds the effective step by scaling gradients for SGD-like methods is
// incorrect for adaptive ones — so instead it maintains its own instance
// per multiplier granularity. In practice schedules change slowly; the
// wrapper quantises the multiplier to QuantSteps levels and scales the
// *update* by interpolating weights before/after. The simple, exact
// approach used here: apply the wrapped optimizer to a scratch copy and
// blend w ← w + factor·(w' − w). This is exact for any optimizer because
// the state advance uses the unscaled gradients, matching framework
// semantics where the schedule scales only the applied step.
type Scheduled struct {
	Inner    Optimizer
	Schedule Schedule
	scratch  []float32
}

// NewScheduled wraps an optimizer with a schedule.
func NewScheduled(inner Optimizer, s Schedule) *Scheduled {
	return &Scheduled{Inner: inner, Schedule: s}
}

// Step applies one scheduled update.
func (s *Scheduled) Step(w, g []float32) {
	factor := s.Schedule.LRAt(s.Inner.Steps())
	if factor >= 1 {
		s.Inner.Step(w, g)
		return
	}
	if cap(s.scratch) < len(w) {
		s.scratch = make([]float32, len(w))
	}
	scr := s.scratch[:len(w)]
	copy(scr, w)
	s.Inner.Step(scr, g)
	f := float32(factor)
	for i := range w {
		w[i] += f * (scr[i] - w[i])
	}
}
