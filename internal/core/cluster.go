package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// ClusterConfig describes data-parallel training over N workers, each with
// its own GPU and SSD, ZeRO-style: the optimizer state is sharded 1/N per
// device, gradients are ring-all-reduced before the sharded update, and
// updated working-precision weights are all-gathered afterwards.
type ClusterConfig struct {
	// Workers is the data-parallel degree.
	Workers int
	// InterconnectGBps is the per-worker all-reduce bandwidth (the ring
	// link rate — 25 for 200GbE, ~50 for HDR InfiniBand).
	InterconnectGBps float64
}

// DefaultCluster returns a 200GbE-class ring.
func DefaultCluster(workers int) ClusterConfig {
	return ClusterConfig{Workers: workers, InterconnectGBps: 25}
}

// Validate reports the first structural problem.
func (c ClusterConfig) Validate() error {
	if c.Workers < 1 || c.InterconnectGBps <= 0 {
		return fmt.Errorf("core: cluster config %+v", c)
	}
	return nil
}

// ClusterReport is the outcome of one data-parallel training step.
type ClusterReport struct {
	System  string
	Model   string
	Workers int

	// ShardOptStep is the per-device optimizer step over its 1/N shard.
	ShardOptStep sim.Time
	// AllReduce is the gradient ring-all-reduce; AllGather the weight
	// redistribution.
	AllReduce sim.Time
	AllGather sim.Time
	// FwdBwd is the per-worker compute (data parallel: full model, local
	// micro-batch).
	FwdBwd sim.Time
	// StepTime is the end-to-end global step; TokensPerSec counts the
	// global batch.
	StepTime     sim.Time
	TokensPerSec float64
	// Efficiency is TokensPerSec / (N × single-worker rate). It can
	// exceed 1: sharding divides the optimizer bottleneck by N while the
	// compute phase stays constant (the ZeRO effect). Collectives pull it
	// back down as N grows.
	Efficiency float64
}

// RunCluster evaluates one system under data-parallel scaling. Per-shard
// device behaviour comes from a real simulation of the sharded
// configuration; the collectives use the standard ring cost model
// (2(N−1)/N volume for all-reduce, (N−1)/N for all-gather).
func RunCluster(cfg Config, cc ClusterConfig, system string) (*ClusterReport, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	// Shard the parameter space: each device owns 1/N of the units.
	shard := cfg
	shard.Model.Params = int64(math.Ceil(float64(cfg.Model.Params) / float64(cc.Workers)))
	sys, err := NewSystem(system, shard)
	if err != nil {
		return nil, err
	}
	r, err := sys.Run()
	if err != nil {
		return nil, err
	}
	if !r.Feasible {
		return nil, fmt.Errorf("core: %s infeasible on shard: %s", system, r.Notes)
	}

	spec := cfg.Spec()
	touched := float64(cfg.Model.Params) * cfg.Model.UpdateFraction()
	gradBytes := touched * float64(spec.GradBytes)
	woutBytes := touched * float64(spec.WeightOutBytes)
	n := float64(cc.Workers)
	bw := units.GBps(cc.InterconnectGBps)
	rep := &ClusterReport{
		System:       system,
		Model:        cfg.Model.Name,
		Workers:      cc.Workers,
		ShardOptStep: r.OptStepTime,
		FwdBwd:       cfg.GPU.ComputeTime(cfg.Model.StepFlops(cfg.Batch)),
	}
	if cc.Workers > 1 {
		rep.AllReduce = bw.TransferTimeF(2 * (n - 1) / n * gradBytes)
		rep.AllGather = bw.TransferTimeF((n - 1) / n * woutBytes)
	}

	// Serial composition with the same scalar overlap applied to the
	// optimizer phase as in the single-device model.
	hidden := rep.FwdBwd.Scale(cfg.OverlapFraction)
	exposed := rep.ShardOptStep + rep.AllReduce + rep.AllGather - hidden
	if exposed < 0 {
		exposed = 0
	}
	rep.StepTime = rep.FwdBwd + exposed
	globalTokens := float64(cfg.Model.BatchTokens(cfg.Batch)) * n
	rep.TokensPerSec = globalTokens / rep.StepTime.Seconds()

	// Efficiency vs N× the single-worker rate.
	if cc.Workers == 1 {
		rep.Efficiency = 1
		return rep, nil
	}
	single, err := RunCluster(cfg, ClusterConfig{Workers: 1, InterconnectGBps: cc.InterconnectGBps}, system)
	if err != nil {
		return nil, err
	}
	rep.Efficiency = rep.TokensPerSec / (n * single.TokensPerSec)
	return rep, nil
}
