// Package odp models the on-die processing unit OptimStore attaches to
// each NAND die: a small SIMD engine wired to the plane page registers
// that executes element-wise optimizer kernels on page-resident data,
// so updated state is re-programmed without ever crossing the channel bus.
//
// The unit is deliberately simple — NAND periphery is fabricated in a
// coarse, logic-unfriendly process, so the paper family's design point is
// a handful of FP lanes clocked modestly. The cost model in cost.go keeps
// that honest.
package odp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Params describes one on-die processing unit.
type Params struct {
	// ClockMHz is the unit's clock. NAND-periphery logic runs slow;
	// hundreds of MHz is the credible range.
	ClockMHz int
	// Lanes is the number of scalar FP operations retired per cycle
	// (SIMD width × issue rate).
	Lanes int
	// BufferKB is the SRAM staging buffer that holds operand pages
	// (weight + moments) while a kernel streams over them. It must fit
	// the working set of the largest kernel: spec'd at configuration time.
	BufferKB int
}

// DefaultParams returns the baseline design point: 8 lanes at 400 MHz with
// a 96 KiB buffer (five 16 KiB pages — master weight, up to three moments,
// and the incoming gradient — with one page of slack for double buffering).
func DefaultParams() Params {
	return Params{ClockMHz: 400, Lanes: 8, BufferKB: 96}
}

// Validate reports the first structural problem.
func (p Params) Validate() error {
	switch {
	case p.ClockMHz <= 0:
		return fmt.Errorf("odp: ClockMHz %d", p.ClockMHz)
	case p.Lanes <= 0:
		return fmt.Errorf("odp: Lanes %d", p.Lanes)
	case p.BufferKB <= 0:
		return fmt.Errorf("odp: BufferKB %d", p.BufferKB)
	}
	return nil
}

// CyclesFor returns the cycles to execute a kernel of flopsPerElem over
// elems elements: each lane retires one scalar op per cycle.
func (p Params) CyclesFor(elems, flopsPerElem int) int64 {
	total := int64(elems) * int64(flopsPerElem)
	return (total + int64(p.Lanes) - 1) / int64(p.Lanes)
}

// ComputeTime converts CyclesFor into simulated time.
func (p Params) ComputeTime(elems, flopsPerElem int) sim.Time {
	cycles := p.CyclesFor(elems, flopsPerElem)
	t := units.CyclesAtMHz(cycles, p.ClockMHz)
	if t < 1 && cycles > 0 {
		t = 1
	}
	return t
}

// ThroughputElemsPerSec returns the steady-state element rate for a kernel.
func (p Params) ThroughputElemsPerSec(flopsPerElem int) float64 {
	if flopsPerElem <= 0 {
		return 0
	}
	return float64(p.ClockMHz) * units.HzPerMHz * float64(p.Lanes) / float64(flopsPerElem)
}

// Unit is the per-die compute engine instance. One kernel executes at a
// time (capacity-1 resource); the die's planes keep reading/programming
// around it.
type Unit struct {
	params Params
	busy   *sim.Resource
	flops  uint64
	elems  uint64
	execs  uint64
}

// NewUnit builds a unit; invalid parameters panic at configuration time.
func NewUnit(eng *sim.Engine, name string, p Params) *Unit {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Unit{
		params: p,
		busy:   sim.NewResource(eng, name+"/odp", 1),
	}
}

// Params returns the unit's design parameters.
func (u *Unit) Params() Params { return u.params }

// Exec runs one element-wise kernel invocation over elems elements and
// calls done when the unit finishes. Invocations on the same unit
// serialize FIFO.
func (u *Unit) Exec(elems, flopsPerElem int, done func()) {
	if elems < 0 || flopsPerElem <= 0 {
		panic(fmt.Sprintf("odp: Exec(%d elems, %d flops)", elems, flopsPerElem))
	}
	u.flops += uint64(elems) * uint64(flopsPerElem)
	u.elems += uint64(elems)
	u.execs++
	u.busy.Use(u.params.ComputeTime(elems, flopsPerElem), done)
}

// Flops returns the total scalar operations executed.
func (u *Unit) Flops() uint64 { return u.flops }

// Elems returns the total elements processed.
func (u *Unit) Elems() uint64 { return u.elems }

// Execs returns the number of kernel invocations.
func (u *Unit) Execs() uint64 { return u.execs }

// Utilization returns the busy fraction of the unit since simulation start.
func (u *Unit) Utilization() float64 { return u.busy.Utilization() }
