package sim

// Counter is a completion counter (a simulation-domain WaitGroup): Add
// registers expected completions, Done signals one, and when the count
// reaches zero the callback fires. Unlike sync.WaitGroup it is purely
// single-threaded and may be re-armed.
type Counter struct {
	n    int
	done func()
}

// NewCounter returns a counter that invokes done when n completions have
// been signalled. If n is zero, done fires on the first Arm call.
func NewCounter(n int, done func()) *Counter {
	return &Counter{n: n, done: done}
}

// Add adjusts the number of expected completions by delta (negative
// deltas retire expectations, e.g. a fork-join cancelling branches).
// Reaching zero fires the callback exactly like Done and Arm do — a
// fork-join whose last outstanding branches are cancelled via Add(-k)
// must complete, not deadlock. Driving the count below zero panics, the
// same over-completion bug Done catches.
func (c *Counter) Add(delta int) {
	c.n += delta
	if c.n < 0 {
		panic("sim: Counter.Add below zero")
	}
	if c.n == 0 && c.done != nil {
		cb := c.done
		c.done = nil
		cb()
	}
}

// Remaining returns the number of completions still outstanding.
func (c *Counter) Remaining() int { return c.n }

// Done signals one completion; when the count hits zero the callback runs
// synchronously. Calling Done more times than registered panics.
func (c *Counter) Done() {
	if c.n <= 0 {
		panic("sim: Counter.Done below zero")
	}
	c.n--
	if c.n == 0 && c.done != nil {
		cb := c.done
		c.done = nil
		cb()
	}
}

// Arm fires the callback immediately if no completions are outstanding.
// Use after a loop that may have issued zero operations.
func (c *Counter) Arm() {
	if c.n == 0 && c.done != nil {
		cb := c.done
		c.done = nil
		cb()
	}
}

// Stage is one step of a Chain: it performs asynchronous work and invokes
// next exactly once when finished.
type Stage func(next func())

// Chain runs stages strictly in order, each starting when its predecessor
// signals completion, then calls done (which may be nil). It is the
// sequencing primitive used for multi-phase NAND operations
// (bus-transfer → program → status).
func Chain(done func(), stages ...Stage) {
	var run func(i int)
	run = func(i int) {
		if i >= len(stages) {
			if done != nil {
				done()
			}
			return
		}
		stages[i](func() { run(i + 1) })
	}
	run(0)
}

// ForkJoin starts every branch immediately and calls done once all have
// completed. With zero branches done fires synchronously.
func ForkJoin(done func(), branches ...Stage) {
	c := NewCounter(len(branches), done)
	for _, b := range branches {
		b(c.Done)
	}
	c.Arm()
}
