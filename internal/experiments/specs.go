package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/odp"
	"repro/internal/optim"
	"repro/internal/stats"
	"repro/internal/units"
)

// specs is the experiment registry, in data form. Grid-shaped experiments
// declare axes/systems/derive/tables/figures and run through the generic
// executor; device-level measurements that drive the SSD model directly
// (GC, QoS, fault storms) keep their bespoke run functions behind Custom.
var specs = []Spec{
	{ID: "T1", Title: "System configuration", Custom: runT1},
	{ID: "T2", Title: "Model zoo and state footprints", Custom: runT2},
	specF1(),
	specF2(),
	specF3(),
	specF4(),
	specF5(),
	specF6(),
	specF7(),
	specF8(),
	{ID: "F9", Title: "Endurance and lifetime", Custom: runF9},
	specF10(),
	{ID: "F11", Title: "GC / over-provisioning sensitivity", Custom: runF11},
	specF12(),
	specF13(),
	specF14(),
	specF15(),
	specF16(),
	{ID: "F17", Title: "Read QoS under update load: program suspend (extension)", Custom: runF17},
	specF18(),
	{ID: "F19", Title: "GC hot/cold stream separation (extension)", Custom: runF19},
	{ID: "F20", Title: "Fault storms: checkpoint policy comparison (extension)", Custom: runF20},
	specF21(),
}

// modelAxis builds an axis whose values swap the model under test.
func modelAxis(models []dnn.Model) Axis {
	vals := make([]AxisValue, len(models))
	for i, m := range models {
		m := m
		vals[i] = AxisValue{
			Label: m.Name,
			X:     float64(m.Params),
			Meta:  m,
			Apply: func(c *core.Config) { c.Model = m },
		}
	}
	return Axis{Name: "model", Values: vals}
}

// intAxis builds an axis over integer settings.
func intAxis(name string, values []int, apply func(*core.Config, int)) Axis {
	vals := make([]AxisValue, len(values))
	for i, v := range values {
		v := v
		vals[i] = AxisValue{
			Label: fmt.Sprintf("%d", v),
			X:     float64(v),
			Meta:  v,
			Apply: func(c *core.Config) { apply(c, v) },
		}
	}
	return Axis{Name: name, Values: vals}
}

// systemSeries builds one figure series per spec system, each fed by that
// system's report at every cell.
func systemSeries(names []string, point func(*Cell, *core.Report) (x, y float64, ok bool)) []SeriesSpec {
	out := make([]SeriesSpec, len(names))
	for i, n := range names {
		i := i
		out[i] = SeriesSpec{Name: n, Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
			return point(c, c.Reports[i])
		}}
	}
	return out
}

// specF1 is the headline figure: optimizer-step latency of every system
// across models.
func specF1() Spec {
	systems := core.SystemNames()
	return Spec{
		ID: "F1", Title: "Optimizer-step latency per system",
		Axes:    func(opts Options) []Axis { return []Axis{modelAxis(perfModels(opts))} },
		Systems: systems,
		Tables: []TableSpec{{Build: func(o Options, g *Grid) *stats.Table {
			return core.ReportTable("F1: per-system reports", g.AllReports())
		}}},
		Figures: []FigureSpec{{
			Title: "F1: optimizer-step latency", XLabel: "params", YLabel: "opt-step seconds",
			Series: systemSeries(systems, func(c *Cell, r *core.Report) (float64, float64, bool) {
				return float64(c.Cfg.Model.Params), r.OptStepTime.Seconds(), r.Feasible
			}),
		}},
	}
}

// specF2 is the scaling study: OptimStore speedup over the host-offload
// baseline as the model grows.
func specF2() Spec {
	return Spec{
		ID: "F2", Title: "Speedup vs model scale",
		Axes: func(opts Options) []Axis {
			models := perfModels(opts)
			if !opts.Quick {
				models = append(models, dnn.GPT66B(), dnn.GPT175B())
			}
			return []Axis{modelAxis(models)}
		},
		Systems: []string{"hostoffload", "optimstore"},
		Tables: []TableSpec{{
			Title:  "F2: speedup vs model scale",
			Header: []string{"model", "params", "offload-s", "optimstore-s", "speedup", "e2e-speedup"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				off, opt := c.Reports[0], c.Reports[1]
				m := c.Cfg.Model
				return [][]any{{m.Name, dnn.FormatCount(m.Params), off.OptStepTime.Seconds(),
					opt.OptStepTime.Seconds(), opt.Speedup(off),
					float64(off.StepTime) / float64(opt.StepTime)}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F2: OptimStore speedup vs host offload", XLabel: "params", YLabel: "speedup ×",
			Series: []SeriesSpec{
				{Name: "opt-step speedup", Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Cfg.Model.Params), c.Reports[1].Speedup(c.Reports[0]), true
				}},
				{Name: "end-to-end speedup", Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Cfg.Model.Params),
						float64(c.Reports[0].StepTime) / float64(c.Reports[1].StepTime), true
				}},
			},
		}},
	}
}

// specF3 is the per-optimizer comparison on a fixed model.
func specF3() Spec {
	return Spec{
		ID: "F3", Title: "Per-optimizer comparison",
		Axes: func(opts Options) []Axis {
			kinds := optim.Kinds()
			if opts.Quick {
				kinds = []optim.Kind{optim.SGD, optim.Adam, optim.LAMB}
			}
			vals := make([]AxisValue, len(kinds))
			for i, k := range kinds {
				k := k
				vals[i] = AxisValue{
					Label: k.String(),
					X:     float64(optim.StateWordsFor(k)),
					Meta:  k,
					Apply: func(c *core.Config) { c.Optimizer = k },
				}
			}
			return []Axis{{Name: "optimizer", Values: vals}}
		},
		Systems: []string{"hostoffload", "ctrlisp", "optimstore"},
		Tables: []TableSpec{{
			Title: "F3: per-optimizer optimizer-step latency (GPT-13B)",
			Header: []string{"optimizer", "state-words", "offload-s", "ctrl-isp-s",
				"optimstore-s", "speedup-vs-offload"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				k := c.Values[0].Meta.(optim.Kind)
				off, ctl, opt := c.Reports[0], c.Reports[1], c.Reports[2]
				return [][]any{{k.String(), optim.StateWordsFor(k), off.OptStepTime.Seconds(),
					ctl.OptStepTime.Seconds(), opt.OptStepTime.Seconds(), opt.Speedup(off)}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F3: speedup per optimizer", XLabel: "state words", YLabel: "speedup ×",
			Series: []SeriesSpec{{Name: "optimstore vs offload",
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					k := c.Values[0].Meta.(optim.Kind)
					return float64(optim.StateWordsFor(k)), c.Reports[2].Speedup(c.Reports[0]), true
				}}},
		}},
	}
}

// specF4 is the energy breakdown on GPT-13B.
func specF4() Spec {
	return Spec{
		ID: "F4", Title: "Energy breakdown",
		Systems: []string{"hostoffload", "ctrlisp", "optimstore"},
		Tables: []TableSpec{
			{
				Title:  "F4: per-parameter step energy (GPT-13B, Adam, mixed precision)",
				Header: []string{"system", "total-J", "pJ/param", "reduction-vs-offload"},
				Rows: func(o Options, g *Grid, c *Cell) [][]any {
					base := c.Reports[0].Energy.Total()
					var rows [][]any
					for _, r := range c.Reports {
						rows = append(rows, []any{r.System, r.Energy.Total(),
							r.EnergyPerParamPJ(c.Cfg.Model.Params), base / r.Energy.Total()})
					}
					return rows
				},
			},
			{Build: func(o Options, g *Grid) *stats.Table {
				return core.EnergyTable("F4: energy breakdown by component (J per step)", g.AllReports())
			}},
		},
	}
}

// specF5 is the internal-parallelism sweep: channels × dies.
func specF5() Spec {
	return Spec{
		ID: "F5", Title: "Internal-parallelism sensitivity",
		Axes: func(opts Options) []Axis {
			chans := []int{2, 4, 8, 16}
			diesPer := []int{2, 4}
			if opts.Quick {
				chans = []int{4, 8}
				diesPer = []int{4}
			}
			return []Axis{
				intAxis("dies/ch", diesPer, func(c *core.Config, v int) { c.SSD.DiesPerChannel = v }),
				intAxis("channels", chans, func(c *core.Config, v int) { c.SSD.Channels = v }),
			}
		},
		Systems: []string{"optimstore", "hostoffload"},
		Tables: []TableSpec{{
			Title:  "F5: parallelism sweep (GPT-13B)",
			Header: []string{"channels", "dies/ch", "planes", "optimstore-s", "offload-s"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				return [][]any{{c.Cfg.SSD.Channels, c.Cfg.SSD.DiesPerChannel,
					c.Cfg.SSD.Geometry().Planes(),
					c.Reports[0].OptStepTime.Seconds(), c.Reports[1].OptStepTime.Seconds()}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F5: step latency vs internal parallelism", XLabel: "dies total", YLabel: "opt-step seconds",
			GroupBy: "dies/ch",
			Grouped: []GroupedSeriesSpec{
				{
					Name: func(v AxisValue) string { return fmt.Sprintf("optimstore %d dies/ch", v.Meta.(int)) },
					Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
						return float64(c.Cfg.SSD.Channels * c.Cfg.SSD.DiesPerChannel),
							c.Reports[0].OptStepTime.Seconds(), true
					},
				},
				{
					Name: func(v AxisValue) string { return fmt.Sprintf("offload %d dies/ch", v.Meta.(int)) },
					Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
						return float64(c.Cfg.SSD.Channels * c.Cfg.SSD.DiesPerChannel),
							c.Reports[1].OptStepTime.Seconds(), true
					},
				},
			},
		}},
	}
}

// specF6 is the ODP design-space sweep: lanes and clock.
func specF6() Spec {
	return Spec{
		ID: "F6", Title: "ODP throughput sensitivity",
		Axes: func(opts Options) []Axis {
			lanes := []int{1, 2, 4, 8, 16, 32}
			clocks := []int{200, 400}
			if opts.Quick {
				lanes = []int{1, 8, 32}
				clocks = []int{400}
			}
			return []Axis{
				intAxis("clock-MHz", clocks, func(c *core.Config, v int) { c.ODP.ClockMHz = v }),
				intAxis("lanes", lanes, func(c *core.Config, v int) { c.ODP.Lanes = v }),
			}
		},
		Systems: []string{"optimstore"},
		Tables: []TableSpec{{
			Title:  "F6: ODP sweep (GPT-13B, Adam)",
			Header: []string{"lanes", "clock-MHz", "elems/s-per-die", "optimstore-s"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				return [][]any{{c.Cfg.ODP.Lanes, c.Cfg.ODP.ClockMHz,
					c.Cfg.ODP.ThroughputElemsPerSec(13), c.Reports[0].OptStepTime.Seconds()}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F6: step latency vs ODP throughput", XLabel: "lanes", YLabel: "opt-step seconds",
			GroupBy: "clock-MHz",
			Grouped: []GroupedSeriesSpec{{
				Name: func(v AxisValue) string { return fmt.Sprintf("%d MHz", v.Meta.(int)) },
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Cfg.ODP.Lanes), c.Reports[0].OptStepTime.Seconds(), true
				},
			}},
		}},
	}
}

// specF7 is the data-layout ablation: the OptimStore engine on each
// placement strategy, with the colocated baseline (cell 0) normalising
// every row — the cross-cell reference the Rows hook's *Grid access exists
// for.
func specF7() Spec {
	return Spec{
		ID: "F7", Title: "Data-layout ablation",
		Axes: func(opts Options) []Axis {
			strats := layout.Strategies()
			vals := make([]AxisValue, len(strats))
			for i, strat := range strats {
				strat := strat
				vals[i] = AxisValue{
					Label: strat.String(),
					X:     float64(i),
					Meta:  strat,
					Apply: func(c *core.Config) { c.Layout = strat },
				}
			}
			return []Axis{{Name: "layout", Values: vals}}
		},
		Systems: []string{"optimstore"},
		Derive: func(opts Options, c *Cell) (any, error) {
			lay, err := layout.New(c.Cfg.SSD.Geometry(), c.Cfg.Comps(), c.Cfg.SimUnits(),
				c.Values[0].Meta.(layout.Strategy))
			if err != nil {
				return nil, err
			}
			return lay.ColocationFraction(), nil
		},
		Tables: []TableSpec{{
			Title:  "F7: layout ablation (GPT-13B, Adam, OptimStore engine)",
			Header: []string{"layout", "colocated-frac", "optimstore-s", "bus-GB", "slowdown-vs-colocated"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				baseline := g.Cells[0].Reports[0].OptStepTime.Seconds()
				sec := c.Reports[0].OptStepTime.Seconds()
				return [][]any{{c.Values[0].Label, c.Aux.(float64), sec,
					units.Bytes(c.Reports[0].BusBytes).GBf(), sec / baseline}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F7: layout ablation", XLabel: "strategy index", YLabel: "opt-step seconds",
			Series: []SeriesSpec{{Name: "optimstore",
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Index), c.Reports[0].OptStepTime.Seconds(), true
				}}},
		}},
	}
}

// specF8 is the precision ablation, including block-wise 8-bit quantized
// optimizer state; each cell derives a TLC endurance report alongside its
// two system runs.
func specF8() Spec {
	return Spec{
		ID: "F8", Title: "Precision ablation",
		Axes: func(opts Options) []Axis {
			precs := []optim.Precision{optim.FP32, optim.Mixed16, optim.Q8State}
			vals := make([]AxisValue, len(precs))
			for i, prec := range precs {
				prec := prec
				vals[i] = AxisValue{
					Label: prec.String(),
					X:     float64(i),
					Meta:  prec,
					Apply: func(c *core.Config) { c.Precision = prec },
				}
			}
			return []Axis{{Name: "precision", Values: vals}}
		},
		Systems: []string{"hostoffload", "optimstore"},
		Derive: func(opts Options, c *Cell) (any, error) {
			return core.RunEndurance(c.Cfg, nand.TLC, opts.wafSteps())
		},
		Tables: []TableSpec{{
			Title: "F8: precision ablation (GPT-13B, Adam)",
			Header: []string{"precision", "system", "opt-step-s", "pcie-GB", "nand-prog-GB",
				"energy-J", "tlc-lifetime-steps"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				end := c.Aux.(*core.EnduranceReport)
				var rows [][]any
				for _, r := range c.Reports {
					life := "-"
					if r.System == "optimstore" && end.Fits {
						life = fmt.Sprintf("%.0f", end.LifetimeSteps)
					}
					rows = append(rows, []any{c.Values[0].Label, r.System, r.OptStepTime.Seconds(),
						units.Bytes(r.PCIeBytes).GBf(), units.Bytes(r.NANDProgramBytes).GBf(),
						r.Energy.Total(), life})
				}
				return rows
			},
		}},
	}
}

// specF10 is the end-to-end throughput study: tokens/s per system across
// models.
func specF10() Spec {
	systems := []string{"hostoffload", "ctrlisp", "optimstore"}
	return Spec{
		ID: "F10", Title: "End-to-end training throughput",
		Axes:    func(opts Options) []Axis { return []Axis{modelAxis(perfModels(opts))} },
		Systems: systems,
		Tables: []TableSpec{{
			Title:  "F10: end-to-end training throughput (batch 8)",
			Header: []string{"model", "system", "fwdbwd-s", "opt-step-s", "step-s", "tokens/s"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				var rows [][]any
				for _, r := range c.Reports {
					rows = append(rows, []any{c.Cfg.Model.Name, r.System, r.FwdBwdTime.Seconds(),
						r.OptStepTime.Seconds(), r.StepTime.Seconds(), r.TokensPerSec})
				}
				return rows
			},
		}},
		Figures: []FigureSpec{{
			Title: "F10: tokens/s", XLabel: "params", YLabel: "tokens/s",
			Series: systemSeries(systems, func(c *Cell, r *core.Report) (float64, float64, bool) {
				return float64(c.Cfg.Model.Params), r.TokensPerSec, true
			}),
		}},
	}
}

// specF12 is the ODP silicon-cost table across lane counts — no
// simulation at all, just the cost model per cell.
func specF12() Spec {
	type lanePoint struct {
		p odp.Params
		c odp.Cost
	}
	return Spec{
		ID: "F12", Title: "ODP area and power",
		Axes: func(opts Options) []Axis {
			return []Axis{intAxis("lanes", []int{1, 2, 4, 8, 16, 32}, func(*core.Config, int) {})}
		},
		Derive: func(opts Options, c *Cell) (any, error) {
			p := defaultODPWithLanes(c.Values[0].Meta.(int))
			return lanePoint{p: p, c: odpCost(p)}, nil
		},
		Tables: []TableSpec{{
			Title:  "F12: on-die processing unit cost model",
			Header: []string{"lanes", "buffer-KiB", "area-mm2", "pct-of-70mm2-die", "static-mW", "pJ/op"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				lp := c.Aux.(lanePoint)
				return [][]any{{c.Values[0].Meta.(int), lp.p.BufferKB, lp.c.AreaMM2,
					lp.c.DieAreaPct, lp.c.StaticMW, lp.c.DynamicPJ}}
			},
		}},
	}
}

// specF13 is the sparse-update extension: DLRM-style training touching a
// fraction of the parameters per step.
func specF13() Spec {
	return Spec{
		ID: "F13", Title: "Sparse embedding-table updates (extension)",
		Axes: func(opts Options) []Axis {
			fractions := []float64{0.0001, 0.001, 0.01, 0.1}
			if opts.Quick {
				fractions = []float64{0.001, 0.1}
			}
			vals := make([]AxisValue, len(fractions))
			for i, frac := range fractions {
				frac := frac
				vals[i] = AxisValue{
					Label: fmt.Sprintf("%g", frac),
					X:     frac,
					Meta:  frac,
					Apply: func(c *core.Config) {
						model := dnn.DLRM()
						model.SparseFraction = frac
						c.Model = model
					},
				}
			}
			return []Axis{{Name: "update-fraction", Values: vals}}
		},
		Systems: []string{"hostoffload", "optimstore"},
		Tables: []TableSpec{{
			Title:  "F13: sparse embedding-table updates (DLRM-24B class, Adam)",
			Header: []string{"update-fraction", "touched-GB/step", "offload-s", "optimstore-s", "speedup"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				off, opt := c.Reports[0], c.Reports[1]
				touchedGB := units.Bytes(c.Cfg.TouchedUnits() * c.Cfg.ResidentBytesPerUnit()).GBf()
				return [][]any{{c.Values[0].Meta.(float64), touchedGB, off.OptStepTime.Seconds(),
					opt.OptStepTime.Seconds(), opt.Speedup(off)}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F13: step latency vs update fraction", XLabel: "fraction", YLabel: "opt-step seconds",
			Series: systemSeries([]string{"hostoffload", "optimstore"},
				func(c *Cell, r *core.Report) (float64, float64, bool) {
					return c.Values[0].Meta.(float64), r.OptStepTime.Seconds(), true
				}),
		}},
	}
}

// specF14 is the checkpointing extension: host streaming vs in-storage
// copyback, analytic per model.
func specF14() Spec {
	return Spec{
		ID: "F14", Title: "Optimizer-state checkpointing (extension)",
		Axes: func(opts Options) []Axis {
			models := []dnn.Model{dnn.GPT2XL(), dnn.GPT13B()}
			if !opts.Quick {
				models = append(models, dnn.GPT6B7(), dnn.GPT30B())
			}
			return []Axis{modelAxis(models)}
		},
		Derive: func(opts Options, c *Cell) (any, error) { return core.Checkpoint(c.Cfg) },
		Tables: []TableSpec{{
			Title: "F14: optimizer-state checkpointing",
			Header: []string{"model", "state-GB", "host-stream-s", "in-storage-copy-s",
				"speedup", "2x-capacity-ok"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				r := c.Aux.(*core.CheckpointReport)
				return [][]any{{c.Cfg.Model.Name, units.Bytes(r.StateBytes).GBf(),
					r.HostStreamTime.Seconds(), r.InStorageCopyTime.Seconds(), r.Speedup, r.CapacityOK}}
			},
		}},
	}
}

// specF15 is the overlap-model ablation: the scalar hidden-fraction
// formula vs the simulated layer-wise pipeline. The table is row-per-
// system over a column-per-variant grid, so it renders via Build.
func specF15() Spec {
	return Spec{
		ID: "F15", Title: "Overlap-model ablation (extension)",
		Axes: func(opts Options) []Axis {
			return []Axis{{Name: "overlap", Values: []AxisValue{
				{Label: "no-overlap", X: 0, Apply: func(c *core.Config) { c.OverlapFraction = 0 }},
				{Label: "scalar-50%", X: 1},
				{Label: "layerwise", X: 2, Apply: func(c *core.Config) { c.LayerwiseOverlap = true }},
			}}}
		},
		Systems: []string{"hostoffload", "optimstore"},
		Tables: []TableSpec{{Build: func(o Options, g *Grid) *stats.Table {
			t := stats.NewTable("F15: optimizer/backward overlap models (GPT-13B, Adam)",
				"system", "no-overlap-s", "scalar-50%-s", "layerwise-sim-s", "exposed-opt-s")
			for si, sys := range g.Systems {
				none, scalar, layered := g.Cells[0].Reports[si], g.Cells[1].Reports[si], g.Cells[2].Reports[si]
				t.AddRow(sys, none.StepTime.Seconds(), scalar.StepTime.Seconds(),
					layered.StepTime.Seconds(), layered.OptStepTime.Seconds())
			}
			return t
		}}},
	}
}

// specF16 is the data-parallel scaling extension: the cluster model per
// worker count, analytic on top of one shard's OptimStore run.
func specF16() Spec {
	return Spec{
		ID: "F16", Title: "Data-parallel cluster scaling (extension)",
		Axes: func(opts Options) []Axis {
			workers := []int{1, 2, 4, 8, 16}
			if opts.Quick {
				workers = []int{1, 4, 16}
			}
			return []Axis{intAxis("workers", workers, func(*core.Config, int) {})}
		},
		Derive: func(opts Options, c *Cell) (any, error) {
			return core.RunCluster(c.Cfg, core.DefaultCluster(c.Values[0].Meta.(int)), "optimstore")
		},
		Tables: []TableSpec{{
			Title:  "F16: data-parallel scaling (GPT-13B, Adam, 25 GB/s ring)",
			Header: []string{"workers", "shard-opt-s", "allreduce-s", "step-s", "tokens/s", "efficiency"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				r := c.Aux.(*core.ClusterReport)
				return [][]any{{c.Values[0].Meta.(int), r.ShardOptStep.Seconds(), r.AllReduce.Seconds(),
					r.StepTime.Seconds(), r.TokensPerSec, r.Efficiency}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F16: cluster throughput", XLabel: "workers", YLabel: "tokens/s",
			Series: []SeriesSpec{{Name: "optimstore cluster",
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return c.Values[0].X, c.Aux.(*core.ClusterReport).TokensPerSec, true
				}}},
		}},
	}
}

// specF18 is the cell-mode trade study: SLC/MLC/TLC/QLC state regions
// trading program latency, endurance and capacity.
func specF18() Spec {
	return Spec{
		ID: "F18", Title: "State-region cell-mode trade-off (extension)",
		Axes: func(opts Options) []Axis {
			cells := []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC}
			vals := make([]AxisValue, len(cells))
			for i, cell := range cells {
				cell := cell
				vals[i] = AxisValue{
					Label: cell.String(),
					X:     float64(i + 1),
					Meta:  cell,
					Apply: func(c *core.Config) {
						n := nand.ParamsFor(cell)
						n.BlocksPerPlane = c.SSD.Nand.BlocksPerPlane // keep the sim window small
						c.SSD.Nand = n
					},
				}
			}
			return []Axis{{Name: "cell", Values: vals}}
		},
		Systems: []string{"optimstore"},
		Derive: func(opts Options, c *Cell) (any, error) {
			return core.RunEndurance(c.Cfg, c.Values[0].Meta.(nand.CellType), opts.wafSteps())
		},
		Tables: []TableSpec{{
			Title: "F18: state-region cell mode (GPT-13B, Adam, OptimStore)",
			Header: []string{"cell", "tPROG/page", "opt-step-s", "capacity-TB",
				"lifetime-steps", "lifetime-days"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				end := c.Aux.(*core.EnduranceReport)
				tprog := c.Cfg.SSD.Nand.ProgramLatency.String()
				if !end.Fits {
					return [][]any{{c.Values[0].Label, tprog, c.Reports[0].OptStepTime.Seconds(),
						units.Bytes(end.DeviceBytes).TBf(), "-", "-"}}
				}
				return [][]any{{c.Values[0].Label, tprog, c.Reports[0].OptStepTime.Seconds(),
					units.Bytes(end.DeviceBytes).TBf(), end.LifetimeSteps, end.LifetimeDays}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F18: step time vs cell mode", XLabel: "bits per cell", YLabel: "opt-step seconds",
			Series: []SeriesSpec{{Name: "optimstore",
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Index + 1), c.Reports[0].OptStepTime.Seconds(), true
				}}},
		}},
	}
}

// specF21 is the subgroup-depth sensitivity of the interleaved-offloading
// baseline (extension): K partitions the resident state into subgroups
// whose prefetch/update/write-back phases overlap. Host staging memory
// shrinks as ~3/K of the state, while the admission window narrows to
// three subgroups — the sweep shows a flat latency plateau until the
// window collapses below the pipeline's fill depth.
func specF21() Spec {
	return Spec{
		ID: "F21", Title: "Interleaved-offload subgroup-depth sensitivity (extension)",
		Axes: func(opts Options) []Axis {
			depths := []int{1, 2, 4, 8, 16, 32}
			if opts.Quick {
				depths = []int{1, 4, 16}
			}
			return []Axis{intAxis("subgroups", depths,
				func(c *core.Config, v int) { c.InterleaveDepth = v })}
		},
		Systems: []string{"interleaved"},
		Tables: []TableSpec{{
			Title:  "F21: subgroup-depth sweep (GPT-13B, Adam)",
			Header: []string{"K", "staging-frac", "opt-step-s", "link-util"},
			Rows: func(o Options, g *Grid, c *Cell) [][]any {
				frac := 3.0 / float64(c.Cfg.Depth())
				if frac > 1 {
					frac = 1
				}
				return [][]any{{c.Cfg.Depth(), frac,
					c.Reports[0].OptStepTime.Seconds(), c.Reports[0].LinkUtil}}
			},
		}},
		Figures: []FigureSpec{{
			Title: "F21: step latency vs subgroup depth", XLabel: "subgroups K", YLabel: "opt-step seconds",
			Series: []SeriesSpec{{Name: "interleaved",
				Point: func(o Options, g *Grid, c *Cell) (float64, float64, bool) {
					return float64(c.Cfg.Depth()), c.Reports[0].OptStepTime.Seconds(), true
				}}},
		}},
	}
}
