// Command bench measures the simulation kernel's throughput and
// maintains the committed benchmark snapshot (the BENCH_*.json
// trajectory DESIGN.md describes).
//
// Usage:
//
//	bench                 # measure and print, touch nothing
//	bench -write          # measure and (re)write the snapshot
//	bench -check          # measure and fail on >15% events/sec regression
//	bench -check -update  # regressions rewrite the snapshot instead of failing
//
// `make bench` runs -write; `make verify` runs -check. The -update
// escape hatch is for deliberate slowdowns (e.g. trading speed for a
// modelling fix): it accepts the new numbers as the baseline, which the
// accompanying commit should justify.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_010.json", "snapshot file")
		write     = flag.Bool("write", false, "write the snapshot after measuring")
		check     = flag.Bool("check", false, "compare against the committed snapshot, exit 1 on regression")
		update    = flag.Bool("update", false, "with -check: rewrite the snapshot on regression instead of failing")
		threshold = flag.Float64("threshold", 0.15, "events/sec regression fraction -check tolerates")
	)
	flag.Parse()

	ms, err := bench.RunAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-24s %14s %12s %14s\n", "benchmark", "events/sec", "ns/event", "allocs/event")
	for _, m := range ms {
		fmt.Printf("%-24s %14.0f %12.1f %14.3f\n", m.Name, m.EventsPerSec, m.NsPerEvent, m.AllocsPerEvent)
	}

	if *check {
		committed, err := bench.Load(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: no committed snapshot to check against: %v\n(run `make bench` and commit %s)\n", err, *out)
			os.Exit(1)
		}
		if msgs := bench.Compare(committed, ms, *threshold); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(os.Stderr, "bench: REGRESSION: %s\n", m)
			}
			if !*update {
				fmt.Fprintf(os.Stderr, "bench: intentional? re-baseline with `go run ./cmd/bench -check -update`\n")
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "bench: -update set, accepting new baseline\n")
			*write = true
		} else {
			fmt.Printf("bench: OK — no bench more than %.0f%% below %s\n", *threshold*100, *out)
		}
	}
	if *write {
		if err := bench.Write(*out, bench.NewSnapshot(ms)); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("bench: wrote %s\n", *out)
	}
}
