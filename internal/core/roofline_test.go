package core

import (
	"testing"

	"repro/internal/dnn"
	"repro/internal/sim"
)

// TestRooflineGoldenPaperScale pins the analytic floors of every system
// on the paper-scale default configuration (GPT-13B on the default SSD and
// link). The exact nanosecond values are goldens: any change to the traffic
// accounting, the geometry arithmetic or the device parameters moves them,
// and this test forces that move to be a conscious, reviewed one. The
// binding constraints are the paper's core claims — the host-offload
// baseline starves on PCIe, in-controller processing starves on its
// embedded cores, and OptimStore is limited only by the NAND media itself.
func TestRooflineGoldenPaperScale(t *testing.T) {
	cfg := DefaultConfig(dnn.GPT13B())
	golden := map[string]struct {
		pcie, bus, media, compute sim.Time
		binding                   string
	}{
		"gpuresident": {0, 0, 0, 234083601, "compute"},
		"hostoffload": {46581081817, 32500008960, 27151115273, 234083665, "pcie"},
		"interleaved": {46581081817, 32500008960, 27151115273, 3640001003, "pcie"},
		"ctrlisp":     {7763513636, 32500008960, 27151115273, 45500012544, "compute"},
		"optimstore":  {7763513636, 5416668160, 27151115273, 1650391080, "media"},
	}
	for _, s := range SystemNames() {
		want, ok := golden[s]
		if !ok {
			t.Fatalf("no golden pinned for system %q", s)
		}
		rf, ok := RooflineFor(s, cfg)
		if !ok {
			t.Fatalf("RooflineFor(%q) unknown", s)
		}
		if rf.PCIe != want.pcie || rf.Bus != want.bus || rf.Media != want.media || rf.Compute != want.compute {
			t.Errorf("%s roofline {pcie:%d bus:%d media:%d compute:%d}, golden {%d %d %d %d}",
				s, rf.PCIe, rf.Bus, rf.Media, rf.Compute,
				want.pcie, want.bus, want.media, want.compute)
		}
		if got := rf.Binding(); got != want.binding {
			t.Errorf("%s binding %q, golden %q", s, got, want.binding)
		}
		wantFloor := rf.PCIe
		for _, c := range []sim.Time{rf.Bus, rf.Media, rf.Compute} {
			if c > wantFloor {
				wantFloor = c
			}
		}
		if rf.Floor() != wantFloor {
			t.Errorf("%s Floor() = %d, max constraint is %d", s, rf.Floor(), wantFloor)
		}
	}
}

// TestRooflineBindingTies checks the documented tie-break: equal
// constraints resolve to the first name in pcie, bus, media, compute order.
func TestRooflineBindingTies(t *testing.T) {
	r := Roofline{PCIe: 10, Bus: 10, Media: 10, Compute: 10}
	if b := r.Binding(); b != "pcie" {
		t.Fatalf("all-tie binding %q, want pcie", b)
	}
	r = Roofline{PCIe: 1, Bus: 7, Media: 7, Compute: 3}
	if b := r.Binding(); b != "bus" {
		t.Fatalf("bus/media tie binding %q, want bus", b)
	}
}

// TestRooflineForUnknown covers the unknown-system path.
func TestRooflineForUnknown(t *testing.T) {
	if _, ok := RooflineFor("bogus", DefaultConfig(dnn.GPT13B())); ok {
		t.Fatal("unknown system produced a roofline")
	}
}
