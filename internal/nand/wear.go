package nand

import "math"

// WearModel converts program/erase cycle counts into raw bit error rates
// and lifetime estimates. The shape — RBER flat early, super-linear toward
// end of life — follows the standard empirical model
// RBER(n) = a + b·(n/limit)^k used across the flash-reliability literature.
type WearModel struct {
	// BaseRBER is the raw bit error rate of a fresh block.
	BaseRBER float64
	// EOLRBER is the raw bit error rate at the rated P/E limit.
	EOLRBER float64
	// Exponent controls how sharply errors rise near end of life.
	Exponent float64
	// PECycles is the rated cycle limit (from Params).
	PECycles int
	// ECCCorrectableRBER is the highest RBER the controller's ECC can
	// correct; beyond this, reads become uncorrectable.
	ECCCorrectableRBER float64
}

// DefaultWearModel returns literature-ballpark constants for the cell type.
func DefaultWearModel(c CellType) WearModel {
	m := WearModel{Exponent: 3, ECCCorrectableRBER: 5e-3}
	switch c {
	case SLC:
		m.BaseRBER, m.EOLRBER, m.PECycles = 1e-9, 1e-5, 100_000
	case MLC:
		m.BaseRBER, m.EOLRBER, m.PECycles = 1e-7, 1e-3, 10_000
	case TLC:
		m.BaseRBER, m.EOLRBER, m.PECycles = 1e-6, 3e-3, 3_000
	case QLC:
		m.BaseRBER, m.EOLRBER, m.PECycles = 1e-5, 8e-3, 1_000
	}
	return m
}

// RBER returns the raw bit error rate after n P/E cycles.
func (m WearModel) RBER(n int) float64 {
	if n < 0 {
		n = 0
	}
	frac := float64(n) / float64(m.PECycles)
	return m.BaseRBER + (m.EOLRBER-m.BaseRBER)*math.Pow(frac, m.Exponent)
}

// Correctable reports whether a block at n P/E cycles is still readable
// through ECC.
func (m WearModel) Correctable(n int) bool {
	return m.RBER(n) <= m.ECCCorrectableRBER
}

// UsableCycles returns the number of P/E cycles before RBER exceeds the
// ECC capability. This can exceed the rated PECycles when the ECC is
// strong, but is capped at 4× rated to stay honest about retention and
// disturb effects the RBER curve does not capture.
func (m WearModel) UsableCycles() int {
	lo, hi := 0, 4*m.PECycles
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.Correctable(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// LifetimeSteps converts a per-step erase demand into a device lifetime.
// blocks is the number of blocks in the wear-levelled pool, erasesPerStep
// the average block erases one training step causes. Perfect wear
// levelling is assumed; real-world skew is explored via the wear-stats
// reports.
func (m WearModel) LifetimeSteps(blocks int, erasesPerStep float64) float64 {
	if erasesPerStep <= 0 {
		return math.Inf(1)
	}
	totalErases := float64(blocks) * float64(m.UsableCycles())
	return totalErases / erasesPerStep
}
