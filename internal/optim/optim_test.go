package optim

import (
	"math"
	"testing"

	"repro/internal/approx"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSGDClosedForm(t *testing.T) {
	o := New(SGD, Hyper{LR: 0.1})
	w := []float32{1, -2}
	g := []float32{0.5, 0.5}
	for k := 1; k <= 5; k++ {
		o.Step(w, g)
		want0 := 1 - float64(k)*0.1*0.5
		if !almostEq(float64(w[0]), want0, 1e-6) {
			t.Fatalf("step %d: w[0]=%v want %v", k, w[0], want0)
		}
	}
	if o.Steps() != 5 {
		t.Fatalf("steps = %d", o.Steps())
	}
}

func TestSGDWeightDecay(t *testing.T) {
	o := New(SGD, Hyper{LR: 0.1, WeightDecay: 0.5})
	w := []float32{2}
	o.Step(w, []float32{0})
	// w ← w − lr·(g + wd·w) = 2 − 0.1·(0.5·2) = 1.9
	if !almostEq(float64(w[0]), 1.9, 1e-6) {
		t.Fatalf("w=%v want 1.9", w[0])
	}
}

func TestMomentumClosedForm(t *testing.T) {
	mu, lr := 0.9, 0.1
	o := New(Momentum, Hyper{LR: lr, MomentumMu: mu})
	w := []float32{0}
	g := []float32{1}
	o.Step(w, g) // v=1, w=-lr
	o.Step(w, g) // v=1.9, w=-lr(1+1.9)
	want := -lr * (1 + (1 + mu))
	if !almostEq(float64(w[0]), want, 1e-6) {
		t.Fatalf("w=%v want %v", w[0], want)
	}
}

func TestNesterovFirstStep(t *testing.T) {
	mu, lr := 0.9, 0.1
	o := New(Nesterov, Hyper{LR: lr, MomentumMu: mu})
	w := []float32{0}
	o.Step(w, []float32{1})
	// v=1; w ← −lr·(g + µ·v) = −lr·(1+µ)
	want := -lr * (1 + mu)
	if !almostEq(float64(w[0]), want, 1e-6) {
		t.Fatalf("w=%v want %v", w[0], want)
	}
}

func TestAdagradClosedForm(t *testing.T) {
	lr, eps := 0.1, 1e-8
	o := New(Adagrad, Hyper{LR: lr, Eps: eps})
	w := []float32{0}
	g := []float32{1}
	var want float64
	for k := 1; k <= 4; k++ {
		o.Step(w, g)
		want -= lr / (math.Sqrt(float64(k)) + eps)
		if !almostEq(float64(w[0]), want, 1e-5) {
			t.Fatalf("step %d: w=%v want %v", k, w[0], want)
		}
	}
}

func TestRMSPropFirstStep(t *testing.T) {
	lr, rho, eps := 0.01, 0.99, 1e-8
	o := New(RMSProp, Hyper{LR: lr, Rho: rho, Eps: eps})
	w := []float32{0}
	o.Step(w, []float32{2})
	// h = (1−ρ)·4; upd = lr·2/(√h + ε)
	want := -lr * 2 / (math.Sqrt((1-rho)*4) + eps)
	if !almostEq(float64(w[0]), want, 1e-5) {
		t.Fatalf("w=%v want %v", w[0], want)
	}
}

// With a constant gradient, Adam's bias-corrected moments are exactly
// m̂=g and v̂=g², so every step moves w by lr·g/(|g|+ε) ≈ lr·sign(g).
func TestAdamConstantGradient(t *testing.T) {
	lr := 0.001
	o := New(Adam, Hyper{LR: lr})
	w := []float32{1}
	g := []float32{-3}
	for k := 1; k <= 10; k++ {
		o.Step(w, g)
		want := 1 + float64(k)*lr // moving against negative gradient
		if !almostEq(float64(w[0]), want, 1e-4) {
			t.Fatalf("step %d: w=%v want %v", k, w[0], want)
		}
	}
}

func TestAdamWDecoupledDecay(t *testing.T) {
	lr, wd := 0.1, 0.5
	o := New(AdamW, Hyper{LR: lr, WeightDecay: wd})
	w := []float32{2}
	o.Step(w, []float32{0})
	// Zero gradient: moments stay zero, update is pure decay lr·wd·w.
	want := 2 * (1 - lr*wd)
	if !almostEq(float64(w[0]), want, 1e-6) {
		t.Fatalf("w=%v want %v", w[0], want)
	}
}

func TestAdamCoupledVsDecoupledDiffer(t *testing.T) {
	hp := Hyper{LR: 0.1, WeightDecay: 0.1}
	wa := []float32{1}
	ww := []float32{1}
	g := []float32{0.5}
	New(Adam, hp).Step(wa, g)
	New(AdamW, hp).Step(ww, g)
	if approx.Equal(float64(wa[0]), float64(ww[0])) {
		t.Fatal("Adam and AdamW should differ with weight decay")
	}
}

func TestZeroGradientNoChange(t *testing.T) {
	for _, k := range Kinds() {
		o := New(k, Hyper{LR: 0.1})
		w := []float32{1.5, -2.5}
		orig := append([]float32(nil), w...)
		for i := 0; i < 3; i++ {
			o.Step(w, []float32{0, 0})
		}
		for i := range w {
			//simlint:allow floateq masked entries must stay bit-identical
			if w[i] != orig[i] {
				t.Errorf("%v: w changed with zero gradient: %v -> %v", k, orig, w)
				break
			}
		}
	}
}

func TestLAMBTrustRatio(t *testing.T) {
	lr := 0.01
	o := New(LAMB, Hyper{LR: lr}).(*lamb)
	w := []float32{4}
	o.Step(w, []float32{1})
	// One element: |Δw| = lr·(‖w‖/‖r‖)·|r| = lr·‖w‖ = lr·4.
	if !almostEq(float64(4-w[0]), lr*4, 1e-4) {
		t.Fatalf("Δw=%v want %v", 4-w[0], lr*4)
	}
}

func TestLAMBStepLayers(t *testing.T) {
	o := New(LAMB, Hyper{LR: 0.01}).(*lamb)
	w := []float32{4, 4, 0.5, 0.5}
	g := []float32{1, 1, 1, 1}
	o.StepLayers(w, g, []int{0, 2, 4})
	// Layer norms differ (‖w‖=4√2 vs 0.5√2) so per-layer deltas differ.
	d1 := 4 - float64(w[0])
	d2 := 0.5 - float64(w[2])
	if almostEq(d1, d2, 1e-9) {
		t.Fatal("per-layer trust ratios had no effect")
	}
	// Within a layer, identical elements move identically.
	//simlint:allow floateq symmetric lanes must compute bit-identically
	if w[0] != w[1] || w[2] != w[3] {
		t.Fatal("within-layer asymmetry")
	}
}

func TestLAMBZeroWeightTrustOne(t *testing.T) {
	o := New(LAMB, Hyper{LR: 0.01})
	w := []float32{0}
	o.Step(w, []float32{1})
	//simlint:allow floateq 0 is the untouched sentinel
	if w[0] == 0 {
		t.Fatal("zero-norm layer should still update (trust=1)")
	}
}

func TestResetClearsState(t *testing.T) {
	for _, k := range Kinds() {
		o := New(k, Hyper{})
		w := []float32{1}
		o.Step(w, []float32{1})
		o.Reset()
		if o.Steps() != 0 {
			t.Errorf("%v: steps after Reset = %d", k, o.Steps())
		}
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on len mismatch")
		}
	}()
	New(SGD, Hyper{}).Step([]float32{1, 2}, []float32{1})
}

func TestNamesAndKinds(t *testing.T) {
	wantNames := map[Kind]string{
		SGD: "SGD", Momentum: "Momentum", Nesterov: "Nesterov",
		Adagrad: "Adagrad", RMSProp: "RMSProp", Adam: "Adam",
		AdamW: "AdamW", LAMB: "LAMB", AMSGrad: "AMSGrad", AdamA: "AdamA",
	}
	for _, k := range Kinds() {
		o := New(k, Hyper{})
		if o.Name() != wantNames[k] || o.Kind() != k || k.String() != wantNames[k] {
			t.Errorf("naming mismatch for %v: %q", k, o.Name())
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestStateWordsConsistent(t *testing.T) {
	for _, k := range Kinds() {
		if got, want := New(k, Hyper{}).StateWords(), StateWordsFor(k); got != want {
			t.Errorf("%v: instance StateWords %d != StateWordsFor %d", k, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float32 {
		o := New(Adam, Hyper{LR: 0.01})
		w := []float32{1, 2, 3}
		for i := 0; i < 5; i++ {
			o.Step(w, []float32{0.1, -0.2, 0.3})
		}
		return w
	}
	a, b := run(), run()
	for i := range a {
		//simlint:allow floateq repeated runs must be bit-identical
		if a[i] != b[i] {
			t.Fatal("nondeterministic update")
		}
	}
}

// Property: the first Adam step moves every coordinate against its
// gradient's sign.
func TestAdamFirstStepSignProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		g := make([]float32, len(raw))
		for i, r := range raw {
			g[i] = float32(r)
		}
		w := make([]float32, len(raw))
		o := New(Adam, Hyper{LR: 0.001})
		o.Step(w, g)
		for i := range w {
			switch {
			case g[i] > 0 && w[i] >= 0:
				return false
			case g[i] < 0 && w[i] <= 0:
				return false
			//simlint:allow floateq gradients are literal zeros; any drift is a spurious update
			case g[i] == 0 && w[i] != 0:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single Adam step is bounded. Per Kingma & Ba §2.1, the
// effective step magnitude satisfies |Δ| ≤ lr·(1−β₁)/√(1−β₂) when
// (1−β₁) > √(1−β₂), which holds for the default betas (0.1 > 0.0316).
func TestAdamStepBoundedProperty(t *testing.T) {
	hp := DefaultHyper()
	bound := hp.LR * (1 - hp.Beta1) / math.Sqrt(1-hp.Beta2) * (1 + 1e-6)
	f := func(raw []int8, steps uint8) bool {
		if len(raw) == 0 {
			return true
		}
		g := make([]float32, len(raw))
		for i, r := range raw {
			g[i] = float32(r) / 16
		}
		w := make([]float32, len(raw))
		o := New(Adam, Hyper{})
		n := int(steps%5) + 1
		prev := make([]float32, len(w))
		for s := 0; s < n; s++ {
			copy(prev, w)
			o.Step(w, g)
			for i := range w {
				if math.Abs(float64(w[i]-prev[i])) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperDefaults(t *testing.T) {
	h := Hyper{}.withDefaults()
	d := DefaultHyper()
	if h != d {
		t.Fatalf("withDefaults = %+v, want %+v", h, d)
	}
	// Explicit values survive.
	h2 := Hyper{LR: 0.5}.withDefaults()
	//simlint:allow floateq copied hyperparameters are bit-identical
	if h2.LR != 0.5 || h2.Beta1 != d.Beta1 {
		t.Fatal("withDefaults clobbered explicit LR or missed Beta1")
	}
}

func TestPrecisionSpec(t *testing.T) {
	s := SpecFor(Adam, Mixed16)
	//simlint:allow floateq unquantized specs are exact small integers
	if s.ResidentBytes() != 12 { // 4 master + 8 moments
		t.Fatalf("resident = %v", s.ResidentBytes())
	}
	if s.HostTrafficBytes() != 4 { // 2 grad in + 2 weight out
		t.Fatalf("host traffic = %d", s.HostTrafficBytes())
	}
	//simlint:allow floateq unquantized specs are exact small integers
	if s.OffloadTrafficBytes() != 24 { // resident read + written
		t.Fatalf("offload traffic = %v", s.OffloadTrafficBytes())
	}
	f := SpecFor(SGD, FP32)
	//simlint:allow floateq unquantized specs are exact small integers
	if f.ResidentBytes() != 4 || f.HostTrafficBytes() != 8 {
		t.Fatalf("SGD/FP32 spec = %+v", f)
	}
	//simlint:allow floateq unquantized specs are exact small integers
	if got := s.MediaRMWBytes(1); got != 24 {
		t.Fatalf("media RMW = %v", got)
	}
	//simlint:allow floateq unquantized specs are exact small integers
	if got := s.MediaRMWBytes(2); got != 36 {
		t.Fatalf("media RMW 2-pass = %v", got)
	}
}

func TestPrecisionString(t *testing.T) {
	if FP32.String() != "FP32" || Mixed16.String() != "Mixed16" {
		t.Fatal("precision names")
	}
	if Precision(9).String() == "" {
		t.Fatal("unknown precision should render")
	}
}

func TestKernelSpecs(t *testing.T) {
	for _, k := range Kinds() {
		kn := KernelFor(k)
		if kn.FlopsPerElem <= 0 {
			t.Errorf("%v: flops %d", k, kn.FlopsPerElem)
		}
		if k == LAMB {
			if kn.ReadPasses != 2 || !kn.GlobalReduce {
				t.Errorf("LAMB kernel = %+v", kn)
			}
		} else if kn.ReadPasses != 1 || kn.GlobalReduce {
			t.Errorf("%v kernel = %+v", k, kn)
		}
	}
	// Cost ordering: richer optimizers cost more per element.
	if !(KernelFor(SGD).FlopsPerElem < KernelFor(Adam).FlopsPerElem &&
		KernelFor(Adam).FlopsPerElem < KernelFor(LAMB).FlopsPerElem) {
		t.Error("kernel flops not ordered SGD < Adam < LAMB")
	}
}

func TestAMSGradMatchesAdamOnConstantGradient(t *testing.T) {
	// With constant gradients, v̂ is non-decreasing, so the max never binds
	// and AMSGrad equals Adam exactly.
	wa := []float32{1, -2}
	wm := []float32{1, -2}
	g := []float32{0.5, -0.25}
	adam := New(Adam, Hyper{LR: 0.01})
	ams := New(AMSGrad, Hyper{LR: 0.01})
	for i := 0; i < 10; i++ {
		adam.Step(wa, g)
		ams.Step(wm, g)
	}
	for i := range wa {
		//simlint:allow floateq the two implementations must agree bit-exactly
		if wa[i] != wm[i] {
			t.Fatalf("diverged on constant gradients: %v vs %v", wa, wm)
		}
	}
}

func TestAMSGradMaxBindsAfterSpike(t *testing.T) {
	// A large-gradient spike inflates v̂max; afterwards AMSGrad's steps are
	// strictly smaller than Adam's (its denominator cannot shrink).
	wa := []float32{0}
	wm := []float32{0}
	adam := New(Adam, Hyper{LR: 0.01})
	ams := New(AMSGrad, Hyper{LR: 0.01})
	spike := []float32{100}
	small := []float32{0.01}
	adam.Step(wa, spike)
	ams.Step(wm, spike)
	for i := 0; i < 20; i++ {
		prevA, prevM := wa[0], wm[0]
		adam.Step(wa, small)
		ams.Step(wm, small)
		da := math.Abs(float64(wa[0] - prevA))
		dm := math.Abs(float64(wm[0] - prevM))
		if dm > da {
			t.Fatalf("step %d: AMSGrad step %v exceeded Adam %v after spike", i, dm, da)
		}
	}
	if approx.Equal(float64(wm[0]), float64(wa[0])) {
		t.Fatal("max never bound — test not exercising AMSGrad")
	}
}

func TestAdam8bitConvergesNearAdam(t *testing.T) {
	const n = 512
	target := make([]float32, n)
	for i := range target {
		target[i] = float32(i%11) - 5
	}
	run := func(step func(w, g []float32)) []float32 {
		w := make([]float32, n)
		g := make([]float32, n)
		for s := 0; s < 800; s++ {
			for i := range w {
				g[i] = w[i] - target[i]
			}
			step(w, g)
		}
		return w
	}
	exact := New(Adam, Hyper{LR: 0.05})
	quant := NewAdam8bit(Hyper{LR: 0.05})
	we := run(exact.Step)
	wq := run(quant.Step)
	var worst float64
	for i := range we {
		d := math.Abs(float64(we[i] - wq[i]))
		if d > worst {
			worst = d
		}
	}
	// Quantisation noise exists but both land on the target.
	if worst > 0.05 {
		t.Fatalf("8-bit state diverged from fp32 Adam by %v", worst)
	}
	var loss float64
	for i := range wq {
		d := float64(wq[i] - target[i])
		loss += d * d
	}
	if loss > 0.1 {
		t.Fatalf("8-bit Adam failed to converge: loss %v", loss)
	}
}

func TestAdam8bitAccounting(t *testing.T) {
	a := NewAdam8bit(Hyper{})
	if b := a.StateBytesPerParam(); b < 2 || b > 2.1 {
		t.Fatalf("state bytes/param = %v, want ~2.03", b)
	}
	if a.Name() != "Adam-8bit" {
		t.Fatal("name")
	}
	w := make([]float32, 10)
	a.Step(w, make([]float32, 10))
	if a.Steps() != 1 {
		t.Fatal("steps")
	}
	a.Reset()
	if a.Steps() != 0 {
		t.Fatal("reset")
	}
}

func TestAdam8bitSizeChangePanics(t *testing.T) {
	a := NewAdam8bit(Hyper{})
	a.Step(make([]float32, 8), make([]float32, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("size change accepted")
		}
	}()
	a.Step(make([]float32, 9), make([]float32, 9))
}

func TestQ8StateSpec(t *testing.T) {
	s := SpecFor(Adam, Q8State)
	if s.StateBytes != 2 { // two 1-byte moments
		t.Fatalf("q8 state bytes = %d", s.StateBytes)
	}
	//simlint:allow floateq 8/256 is exactly representable
	if s.ScaleBytesPerParam != 8.0/QuantBlockSize { // 2 fp32 absmax / 256 params
		t.Fatalf("q8 scale bytes = %v", s.ScaleBytesPerParam)
	}
	//simlint:allow floateq 6+1/32 is exactly representable
	if s.ResidentBytes() != 6+8.0/QuantBlockSize {
		t.Fatalf("q8 resident = %v", s.ResidentBytes())
	}
	if s.HostTrafficBytes() != 4 {
		t.Fatalf("q8 host traffic = %d", s.HostTrafficBytes())
	}
	if Q8State.String() != "Mixed16+Q8state" {
		t.Fatal("precision name")
	}
}

func TestQ8SpecMatchesAdam8bit(t *testing.T) {
	// The abstract spec and the concrete quantized optimizer must agree on
	// the per-parameter resident state footprint: 2 one-byte moments plus
	// one float32 absmax per moment per QuantBlockSize block.
	s := SpecFor(Adam, Q8State)
	a := NewAdam8bit(Hyper{})
	specState := float64(s.StateBytes) + s.ScaleBytesPerParam
	//simlint:allow floateq both sides are sums of exact binary fractions
	if specState != a.StateBytesPerParam() {
		t.Fatalf("spec state %v != Adam8bit %v B/param", specState, a.StateBytesPerParam())
	}
}

func TestSpecWithAccum(t *testing.T) {
	s := SpecFor(AdamA, Mixed16)
	for _, n := range []int{0, 1} {
		if got := s.WithAccum(n); got != s {
			t.Fatalf("WithAccum(%d) changed spec: %+v", n, got)
		}
	}
	a4 := s.WithAccum(4)
	if a4.GradBytes != 4*s.GradBytes {
		t.Fatalf("WithAccum(4) grad bytes = %d, want %d", a4.GradBytes, 4*s.GradBytes)
	}
	//simlint:allow floateq resident footprint must be bit-identical
	if a4.ResidentBytes() != s.ResidentBytes() || a4.WeightOutBytes != s.WeightOutBytes {
		t.Fatal("WithAccum must only touch gradient traffic")
	}
	k := KernelFor(AdamA)
	if got := k.WithAccum(1); got != k {
		t.Fatalf("Kernel.WithAccum(1) changed kernel: %+v", got)
	}
	k4 := k.WithAccum(4)
	if k4.FlopsPerElem != k.FlopsPerElem+3*k.FoldFlops {
		t.Fatalf("Kernel.WithAccum(4) flops = %d", k4.FlopsPerElem)
	}
	if k4.ReadPasses != 1 || k4.GlobalReduce {
		t.Fatal("accumulation must not add read passes or reductions")
	}
	// Kinds without an accumulation form are untouched.
	ka := KernelFor(Adam)
	if got := ka.WithAccum(8); got != ka {
		t.Fatalf("Adam WithAccum(8) changed kernel: %+v", got)
	}
}

func TestClipGlobalNormNonFinite(t *testing.T) {
	big := float32(math.MaxFloat32)
	cases := []struct {
		name string
		g    []float32
		want func(norm float64) bool
	}{
		{"nan", []float32{1, float32(math.NaN()), 3}, math.IsNaN},
		{"posinf", []float32{float32(math.Inf(1)), 2}, func(n float64) bool { return math.IsInf(n, 1) }},
		{"neginf-component", []float32{float32(math.Inf(-1))}, func(n float64) bool { return math.IsInf(n, 1) }},
		// Squaring MaxFloat32 overflows float64's range only when summed
		// enough times; two maximal components already exceed maxNorm but
		// stay finite — the clip must still fire for those.
		{"subnormal-overflow", []float32{big, big, big, big}, func(n float64) bool { return !math.IsInf(n, 0) && !math.IsNaN(n) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := append([]float32(nil), tc.g...)
			norm := ClipGlobalNorm(g, 1.0)
			if !tc.want(norm) {
				t.Fatalf("norm = %v", norm)
			}
			if math.IsNaN(norm) || math.IsInf(norm, 0) {
				// Non-finite norm: gradient must be untouched (skip-step).
				for i := range g {
					if !sameFloat32(g[i], tc.g[i]) {
						t.Fatalf("g[%d] mutated: %v -> %v", i, tc.g[i], g[i])
					}
				}
			} else {
				// Finite overflow-adjacent norm: clip fires. The scale is a
				// subnormal float32 here, so allow its reduced precision.
				if got := GlobalNorm(g); got > 1.01 {
					t.Fatalf("clipped norm = %v", got)
				}
			}
		})
	}
}

func sameFloat32(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	//simlint:allow floateq identity check for untouched memory
	return a == b
}
