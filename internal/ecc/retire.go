package ecc

import "fmt"

// Block retirement. Read-retry recovers uncorrectable pages, but a block
// that keeps needing retries has degraded media: past a cumulative retry
// budget the controller retires it rather than gamble on the next read
// being recoverable at all. The tracker is a per-block state machine:
//
//	Healthy --(any retries)--> Probation --(budget exhausted)--> Retired
//	Probation --(ProbationReads consecutive clean reads)--> Healthy
//
// Retired is absorbing: media wear does not heal, so once a block crosses
// the budget it stays retired even across erase cycles. Returning to
// Healthy from Probation resets the retry tally — occasional transient
// retries (read disturb before a scrub) should not accumulate forever.

// BlockHealth is the tracker's verdict for one block.
type BlockHealth uint8

// Block health states.
const (
	BlockHealthy   BlockHealth = iota // no outstanding concern
	BlockProbation                    // recent retries; clean-read streak running
	BlockRetired                      // retry budget exhausted; remove from service
)

// String names the health state.
func (h BlockHealth) String() string {
	switch h {
	case BlockHealthy:
		return "healthy"
	case BlockProbation:
		return "probation"
	case BlockRetired:
		return "retired"
	}
	return fmt.Sprintf("BlockHealth(%d)", uint8(h))
}

// RetirePolicy configures block retirement. The zero value disables it.
type RetirePolicy struct {
	// RetryBudget is the cumulative read-retry count at which a block is
	// retired. The budget counts retries since the block was last Healthy;
	// a read whose retries reach the budget exactly retires the block.
	RetryBudget int
	// ProbationReads is the number of consecutive retry-free reads that
	// return a Probation block to Healthy (and reset its retry tally).
	// Zero means probation never clears.
	ProbationReads int
}

// Enabled reports whether the policy does anything.
func (p RetirePolicy) Enabled() bool { return p.RetryBudget > 0 }

// Validate checks the policy.
func (p RetirePolicy) Validate() error {
	if p.RetryBudget < 0 || p.ProbationReads < 0 {
		return fmt.Errorf("ecc: retire policy %+v: negative field", p)
	}
	return nil
}

type blockTrack struct {
	health  BlockHealth
	retries int // cumulative since last Healthy
	clean   int // consecutive clean reads while in Probation
}

// RetireTracker applies a RetirePolicy across blocks, materializing state
// lazily — blocks that never see a retry cost one map lookup per tracked
// read and no storage.
type RetireTracker struct {
	policy RetirePolicy
	blocks map[int]*blockTrack
}

// NewRetireTracker builds a tracker; the policy must be enabled and valid.
func NewRetireTracker(p RetirePolicy) *RetireTracker {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if !p.Enabled() {
		panic("ecc: retire tracker built from disabled policy")
	}
	return &RetireTracker{policy: p, blocks: map[int]*blockTrack{}}
}

// Policy returns the configured policy.
func (t *RetireTracker) Policy() RetirePolicy { return t.policy }

// OnRead records that a read of the given block converged after `retries`
// read-retry passes (0 = clean first read) and returns the block's health
// after the update.
func (t *RetireTracker) OnRead(block, retries int) BlockHealth {
	if retries < 0 {
		panic(fmt.Sprintf("ecc: negative retries %d", retries))
	}
	b := t.blocks[block]
	if b == nil {
		if retries == 0 {
			return BlockHealthy
		}
		b = &blockTrack{}
		t.blocks[block] = b
	}
	if b.health == BlockRetired {
		return BlockRetired
	}
	if retries > 0 {
		b.retries += retries
		b.clean = 0
		if b.retries >= t.policy.RetryBudget {
			b.health = BlockRetired
		} else {
			b.health = BlockProbation
		}
		return b.health
	}
	if b.health == BlockProbation && t.policy.ProbationReads > 0 {
		b.clean++
		if b.clean >= t.policy.ProbationReads {
			b.health = BlockHealthy
			b.retries = 0
			b.clean = 0
		}
	}
	return b.health
}

// Health returns the current verdict for a block without recording a read.
func (t *RetireTracker) Health(block int) BlockHealth {
	if b := t.blocks[block]; b != nil {
		return b.health
	}
	return BlockHealthy
}

// Retries returns the cumulative retry tally counted against a block's
// budget.
func (t *RetireTracker) Retries(block int) int {
	if b := t.blocks[block]; b != nil {
		return b.retries
	}
	return 0
}

// RetiredCount returns how many blocks the tracker has retired.
func (t *RetireTracker) RetiredCount() int {
	n := 0
	//simlint:allow maporder pure count — order cannot affect the result
	for _, b := range t.blocks {
		if b.health == BlockRetired {
			n++
		}
	}
	return n
}
