package ssd

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestDeviceRandomWorkloadInvariants drives the full device stack — host
// writes through the cache, in-storage updates, reads (NAND and cache
// hits), trims, injected read errors, GC and wear levelling — with a
// randomized but deterministic operation mix across several seeds, and
// checks every invariant the simulator promises:
//
//   - the device always drains (no wedged pipelines),
//   - the FTL maps stay a consistent bijection,
//   - the data-plane shadow matches the latest committed content,
//   - counters reconcile with the NAND-level operation tallies.
func TestDeviceRandomWorkloadInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomWorkload(t, seed)
		})
	}
}

func runRandomWorkload(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := sim.NewEngine()
	cfg := smallConfig()
	cfg.HotColdSeparation = rng.Intn(2) == 0
	d := NewDevice(e, cfg)
	plane := newDataPlane()
	// Writes commit asynchronously (cache → flush); updates and reads may
	// only target pages whose first write has actually committed.
	committed := map[int64]bool{}
	d.SetCommitHook(func(lpa, oldLin, newLin int64, gc bool) {
		plane.hook(lpa, oldLin, newLin, gc)
		committed[lpa] = true
	})

	logical := d.Config().LogicalPages()
	expected := map[int64]uint64{} // lpa -> latest version; absent = unmapped
	readsInFlight := map[int64]int{}
	version := uint64(0)

	mapped := func() []int64 {
		out := make([]int64, 0, len(expected))
		//simlint:allow maporder sorted below so seeded runs stay reproducible
		for lpa := range expected {
			if committed[lpa] {
				out = append(out, lpa)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	ops := 1200
	for i := 0; i < ops; i++ {
		// Drain occasionally so queues stay bounded and time advances in
		// bursts, like a real duty cycle.
		if i%200 == 199 {
			runDrained(t, e, d)
		}
		switch k := rng.Intn(10); {
		case k < 4: // host write (new or overwrite)
			lpa := rng.Int63n(logical)
			version++
			plane.queue(lpa, version)
			expected[lpa] = version
			d.Write(lpa, nil)
		case k < 7: // in-storage update of a mapped page
			ms := mapped()
			if len(ms) == 0 {
				continue
			}
			lpa := ms[rng.Intn(len(ms))]
			version++
			plane.queue(lpa, version)
			expected[lpa] = version
			d.ProgramUpdate(lpa, nil)
		case k < 8: // read a mapped page (sometimes with an injected error)
			ms := mapped()
			if len(ms) == 0 {
				continue
			}
			lpa := ms[rng.Intn(len(ms))]
			if rng.Intn(4) == 0 {
				d.InjectReadErrors(lpa, 1)
			}
			readsInFlight[lpa]++
			d.Read(lpa, func() { readsInFlight[lpa]-- })
		case k < 9: // internal read
			ms := mapped()
			if len(ms) == 0 {
				continue
			}
			lpa := ms[rng.Intn(len(ms))]
			readsInFlight[lpa]++
			d.ReadMapped(lpa, func() { readsInFlight[lpa]-- })
		default: // trim — but never a page with writes still in flight,
			// matching the "host does not trim data it is writing" contract.
			ms := mapped()
			if len(ms) == 0 {
				continue
			}
			lpa := ms[rng.Intn(len(ms))]
			// Host contract: no trim while I/O to the page is in flight.
			if len(plane.pending[lpa]) > 0 || readsInFlight[lpa] > 0 {
				continue
			}
			d.Trim(lpa)
			delete(expected, lpa)
			delete(committed, lpa)
		}
	}
	runDrained(t, e, d) // fails on wedge or FTL inconsistency

	// Content integrity for every live page.
	geo := d.Geometry()
	//simlint:allow maporder per-key invariants, order-free
	for lpa, want := range expected {
		ppa, ok := d.FTL().Lookup(lpa)
		if !ok {
			t.Fatalf("seed %d: lpa %d lost", seed, lpa)
		}
		if got := plane.store[geo.Linear(ppa)]; got != want {
			t.Fatalf("seed %d: lpa %d content %d want %d", seed, lpa, got, want)
		}
	}

	// Counter reconciliation: NAND program ops = host + update + GC
	// programs, committed or superseded-in-flight (preload marks don't
	// program).
	s := d.Stats()
	nand := d.Counts()
	if nand.Programs != s.HostWrites+s.UpdateWrites+s.GCRelocations+s.GCStalePrograms {
		t.Fatalf("seed %d: programs %d != host %d + update %d + gc %d + stale %d",
			seed, nand.Programs, s.HostWrites, s.UpdateWrites, s.GCRelocations, s.GCStalePrograms)
	}
	if nand.Erases != s.GCErases {
		t.Fatalf("seed %d: erases %d != gc erases %d", seed, nand.Erases, s.GCErases)
	}
}
