// layout_study explores the two design dimensions that make or break
// in-storage optimization: where the (weight, momentum, variance) pages of
// each parameter slice physically live, and which cell mode the state
// region uses. The first decides whether updates stay on-die; the second
// decides how long the flash survives the update stream.
//
// Run with: go run ./examples/layout_study
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/layout"
	"repro/internal/nand"
	"repro/internal/stats"
	"repro/internal/units"
)

func main() {
	cfg := core.DefaultConfig(dnn.GPT13B())
	cfg.MaxSimUnits = 512

	// --- Placement ---------------------------------------------------------
	fmt.Println("How state placement decides update locality (GPT-13B, Adam):")
	lt := stats.NewTable("", "layout", "units-on-one-die", "opt-step-s", "bus-GB", "vs-colocated")
	var base float64
	for i, strat := range layout.Strategies() {
		c := cfg
		c.Layout = strat
		r, err := core.NewOptimStore(c).Run()
		if err != nil {
			log.Fatal(err)
		}
		lay, err := layout.New(c.SSD.Geometry(), c.Comps(), c.SimUnits(), strat)
		if err != nil {
			log.Fatal(err)
		}
		sec := r.OptStepTime.Seconds()
		if i == 0 {
			base = sec
		}
		lt.AddRow(strat.String(),
			fmt.Sprintf("%.0f%%", lay.ColocationFraction()*100),
			sec, units.Bytes(r.BusBytes).GBf(), fmt.Sprintf("%.2fx", sec/base))
	}
	fmt.Print(lt)
	fmt.Println(`
  colocated: all three pages of a slice on one die, different planes
             -> reads/programs overlap, zero bus traffic for state.
  linear:    naive log-append order -> half the slices straddle dies.
  split:     component-sharded (tensor-parallel style) -> every update
             gathers pages across dies over the channel buses.`)

	// --- Endurance ----------------------------------------------------------
	fmt.Println("\nHow the cell mode decides lifetime (GPT-13B, Adam):")
	et := stats.NewTable("", "cell", "capacity-TB", "fits", "WAF", "lifetime-steps", "lifetime-days")
	for _, cell := range []nand.CellType{nand.SLC, nand.MLC, nand.TLC, nand.QLC} {
		rep, err := core.RunEndurance(cfg, cell, 4)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Fits {
			et.AddRow(cell.String(), units.Bytes(rep.DeviceBytes).TBf(), false, "-", "-", "-")
			continue
		}
		et.AddRow(cell.String(), units.Bytes(rep.DeviceBytes).TBf(), true,
			rep.MeasuredWAF, rep.LifetimeSteps, rep.LifetimeDays)
	}
	fmt.Print(et)
	fmt.Println(`
  Every training step programs the full 156 GB of Adam state. TLC's 3K P/E
  cycles make that a consumable; an SLC-mode state region (1 bit/cell,
  ~100K usable cycles) trades 3x capacity for ~30-50x lifetime — the
  deployment-defining knob for in-storage training.`)
}
