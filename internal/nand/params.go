// Package nand models NAND flash dies at operation granularity: page reads
// (tR), page programs (tPROG) and block erases (tBERS) that occupy a plane,
// plus data transfers that occupy the shared ONFI channel bus. The model
// enforces the physical constraints in-storage processing has to live with:
// no in-place page overwrite, strictly sequential page programming within a
// block, and erase-before-rewrite, with per-block wear accounting.
package nand

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// CellType selects the bits-per-cell technology of a die or region.
type CellType int

// Supported cell technologies.
const (
	SLC CellType = iota // 1 bit/cell: fast, durable, low density
	MLC                 // 2 bits/cell
	TLC                 // 3 bits/cell: mainstream capacity flash
	QLC                 // 4 bits/cell: archival density
)

// String returns the conventional abbreviation.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Params describes the geometry and timing of one NAND die family.
// Defaults come from the public datasheet ballpark for ~2022 3D NAND;
// every experiment that depends on a constant sweeps it.
type Params struct {
	Cell CellType

	// Geometry.
	PageSize       int // bytes of user data per page
	PagesPerBlock  int
	BlocksPerPlane int
	PlanesPerDie   int

	// Array timing. ProgramLatency is the *effective per-page* program
	// time: multi-bit cells program a whole wordline (2/3/4 pages) in one
	// tPROG, so the per-page figure is tPROG divided by bits per cell.
	ReadLatency    sim.Time // tR: array -> page register
	ProgramLatency sim.Time // effective per-page program time
	EraseLatency   sim.Time // tBERS: whole-block erase

	// Channel interface: ONFI/Toggle bus shared by all dies on a channel.
	BusMBps int // sustained transfer rate, MB/s

	// Endurance: rated program/erase cycles per block.
	PECycles int

	// ReadSuspend enables program/erase suspend: page reads preempt an
	// in-flight program or erase on the plane, which then resumes with
	// ResumeOverhead of extra array time. Dramatically improves read
	// latency under update load at a small throughput cost.
	ReadSuspend    bool
	ResumeOverhead sim.Time
}

// ParamsFor returns datasheet-ballpark parameters for the given cell type.
func ParamsFor(c CellType) Params {
	p := Params{
		Cell:           c,
		PageSize:       16 * 1024,
		PagesPerBlock:  256,
		BlocksPerPlane: 1024,
		PlanesPerDie:   4,
		BusMBps:        1200,
	}
	switch c {
	case SLC:
		p.ReadLatency = 25 * sim.Microsecond
		p.ProgramLatency = 200 * sim.Microsecond
		p.EraseLatency = 2 * sim.Millisecond
		p.PECycles = 100_000
		p.PagesPerBlock = 128 // SLC-mode blocks hold one bit per cell
	case MLC:
		p.ReadLatency = 40 * sim.Microsecond
		p.ProgramLatency = 250 * sim.Microsecond // tPROG 500us / 2 pages per wordline
		p.EraseLatency = 3 * sim.Millisecond
		p.PECycles = 10_000
	case TLC:
		p.ReadLatency = 65 * sim.Microsecond
		p.ProgramLatency = 300 * sim.Microsecond // tPROG 900us / 3 pages per wordline
		p.EraseLatency = 3500 * sim.Microsecond
		p.PECycles = 3_000
	case QLC:
		p.ReadLatency = 120 * sim.Microsecond
		p.ProgramLatency = 500 * sim.Microsecond // tPROG 2ms / 4 pages per wordline
		p.EraseLatency = 4 * sim.Millisecond
		p.PECycles = 1_000
	default:
		panic(fmt.Sprintf("nand: unknown cell type %d", int(c)))
	}
	return p
}

// Validate reports the first structural problem with the parameters.
func (p Params) Validate() error {
	switch {
	case p.PageSize <= 0:
		return fmt.Errorf("nand: PageSize %d", p.PageSize)
	case p.PagesPerBlock <= 0:
		return fmt.Errorf("nand: PagesPerBlock %d", p.PagesPerBlock)
	case p.BlocksPerPlane <= 0:
		return fmt.Errorf("nand: BlocksPerPlane %d", p.BlocksPerPlane)
	case p.PlanesPerDie <= 0:
		return fmt.Errorf("nand: PlanesPerDie %d", p.PlanesPerDie)
	case p.ReadLatency <= 0 || p.ProgramLatency <= 0 || p.EraseLatency <= 0:
		return fmt.Errorf("nand: non-positive latency")
	case p.BusMBps <= 0:
		return fmt.Errorf("nand: BusMBps %d", p.BusMBps)
	case p.PECycles <= 0:
		return fmt.Errorf("nand: PECycles %d", p.PECycles)
	case p.ResumeOverhead < 0:
		return fmt.Errorf("nand: ResumeOverhead %d", p.ResumeOverhead)
	}
	return nil
}

// TransferTime returns the channel-bus occupancy to move n bytes.
// The result is at least 1ns for any positive n.
func (p Params) TransferTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	t := units.MBps(p.BusMBps).TransferTimeInt(int64(n))
	if t < 1 {
		t = 1
	}
	return t
}

// PageTransferTime returns the bus occupancy for one full page.
func (p Params) PageTransferTime() sim.Time { return p.TransferTime(p.PageSize) }

// BlockBytes returns the user bytes in one block.
func (p Params) BlockBytes() int64 { return int64(p.PageSize) * int64(p.PagesPerBlock) }

// PlaneBytes returns the user bytes in one plane.
func (p Params) PlaneBytes() int64 { return p.BlockBytes() * int64(p.BlocksPerPlane) }

// DieBytes returns the user bytes in one die.
func (p Params) DieBytes() int64 { return p.PlaneBytes() * int64(p.PlanesPerDie) }

// PagesPerDie returns the number of pages in one die.
func (p Params) PagesPerDie() int64 {
	return int64(p.PagesPerBlock) * int64(p.BlocksPerPlane) * int64(p.PlanesPerDie)
}
