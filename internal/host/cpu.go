package host

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// CPUParams describes a host-CPU (or SSD-controller) update engine: the
// element-wise optimizer kernel on a CPU is DRAM-bandwidth bound, with a
// secondary compute ceiling.
type CPUParams struct {
	Name string
	// DRAMGBps is the sustained memory bandwidth available to the kernel.
	DRAMGBps float64
	// GFLOPS is the sustained scalar/SIMD arithmetic throughput.
	GFLOPS float64
}

// XeonHost returns a ZeRO-Offload-style host: a dual-socket server class
// CPU with ~100 GB/s effective stream bandwidth.
func XeonHost() CPUParams {
	return CPUParams{Name: "Xeon-host", DRAMGBps: 100, GFLOPS: 500}
}

// SSDController returns the embedded-controller design point used by the
// in-controller processing baseline: a few ARM cores behind LPDDR4.
func SSDController() CPUParams {
	return CPUParams{Name: "SSD-ctrl", DRAMGBps: 8, GFLOPS: 16}
}

// Validate reports the first structural problem.
func (p CPUParams) Validate() error {
	if p.DRAMGBps <= 0 || p.GFLOPS <= 0 {
		return fmt.Errorf("host: cpu params %+v", p)
	}
	return nil
}

// KernelTime is the roofline estimate for an element-wise kernel touching
// the given bytes with the given FLOPs.
func (p CPUParams) KernelTime(flops, bytes float64) sim.Time {
	mem := units.GBps(p.DRAMGBps).Bps().TransferTimeF(bytes)
	cmp := units.Nanos(flops / (p.GFLOPS * units.FLOPSPerGFLOPS) * units.NsPerSec)
	if cmp > mem {
		return cmp
	}
	return mem
}

// CPU is a simulated update engine executing one kernel at a time.
type CPU struct {
	params CPUParams
	busy   *sim.Resource
	flops  float64
	bytes  float64
}

// NewCPU builds a CPU on the engine; invalid params panic.
func NewCPU(eng *sim.Engine, p CPUParams) *CPU {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &CPU{params: p, busy: sim.NewResource(eng, p.Name, 1)}
}

// Params returns the CPU description.
func (c *CPU) Params() CPUParams { return c.params }

// Run executes a kernel with the given footprint, then calls done.
func (c *CPU) Run(flops, bytes float64, done func()) {
	c.flops += flops
	c.bytes += bytes
	c.busy.Use(c.params.KernelTime(flops, bytes), done)
}

// Flops returns the cumulative FLOPs executed.
func (c *CPU) Flops() float64 { return c.flops }

// DRAMBytes returns the cumulative memory traffic.
func (c *CPU) DRAMBytes() float64 { return c.bytes }

// Utilization returns the busy fraction since simulation start.
func (c *CPU) Utilization() float64 { return c.busy.Utilization() }
