package experiments

import (
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/stats"
)

// f20Storm is the mixed fault storm F20 sweeps when the CLI didn't arm
// one: rates dense enough that every kind fires several times inside even
// the quick simulation window (windows are sub-millisecond to a few
// milliseconds; rates are per second of simulated time).
func f20Storm(opts Options) fault.Spec {
	if opts.Fault.Enabled() {
		return opts.Fault
	}
	return fault.Spec{
		Seed:            8,
		PowerLossPerSec: 50_000,
		DieFailPerSec:   20_000,
		ECCPerSec:       100_000,
		HorizonMs:       2,
	}
}

// runF20 compares the checkpoint policies under a mixed fault storm. The
// policy is pure accounting — the same seed fires the identical fault set
// under each policy — so the table isolates the trade the paper's
// recovery discussion frames: in-place (ODP copyback) checkpoints are
// cheap to take and to restore but program NAND (WAF cost) and lose a
// die's checkpoint shard with the die; host-pull checkpoints pay the
// external link both ways but write nothing device-side.
func runF20(opts Options) (*Result, error) {
	storm := f20Storm(opts)

	// Policy comparison on the flagship offload point: OptimStore on a
	// model that cannot stay GPU-resident.
	policies := []fault.Policy{fault.CheckpointNone, fault.CheckpointInPlace, fault.CheckpointHostPull}
	var polReports []*core.Report
	for _, p := range policies {
		cfg := baseConfig(opts, dnn.GPT13B())
		cfg.Fault = storm
		cfg.Checkpoint = p
		rs, err := runSystems(opts, cfg, "optimstore")
		if err != nil {
			return nil, err
		}
		polReports = append(polReports, rs...)
	}

	// The same storm surfaced to all four systems (BERT-Large so the
	// GPU-resident reference is feasible and prices its analytic row).
	cfg := baseConfig(opts, dnn.BERTLarge())
	cfg.Fault = storm
	cfg.Checkpoint = fault.CheckpointInPlace
	sysReports, err := runSystems(opts, cfg)
	if err != nil {
		return nil, err
	}

	return &Result{
		Tables: []*stats.Table{
			core.FaultTable("Checkpoint policies under a mixed fault storm (OptimStore, GPT-13B)", polReports),
			core.FaultTable("Fault storm across systems (in-place checkpoints, BERT-Large)", sysReports),
		},
	}, nil
}
