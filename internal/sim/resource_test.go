package sim

import (
	"testing"
)

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "bus", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Use(100, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "planes", 4)
	var ends []Time
	for i := 0; i < 8; i++ {
		r.Use(50, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	// Two waves of four.
	for i, want := range []Time{50, 50, 50, 50, 100, 100, 100, 100} {
		if ends[i] != want {
			t.Fatalf("ends = %v", ends)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Use(10, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	r.Use(100, nil)
	// Idle 100ns afterwards.
	e.Schedule(200, func() {})
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestResourceDoubleReleasePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Acquire(func(release func()) {
		release()
		release()
	})
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

func TestResourceCounters(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "r", 1)
	for i := 0; i < 3; i++ {
		r.Use(10, nil)
	}
	if r.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", r.QueueLen())
	}
	if r.PeakQueue() != 2 {
		t.Fatalf("peak = %d", r.PeakQueue())
	}
	e.Run()
	if r.Grants() != 3 {
		t.Fatalf("grants = %d", r.Grants())
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse = %d after drain", r.InUse())
	}
	if r.Name() != "r" || r.Capacity() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestCounter(t *testing.T) {
	fired := false
	c := NewCounter(2, func() { fired = true })
	c.Done()
	if fired {
		t.Fatal("fired early")
	}
	c.Done()
	if !fired {
		t.Fatal("did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero did not panic")
		}
	}()
	c.Done()
}

func TestCounterArmZero(t *testing.T) {
	fired := false
	c := NewCounter(0, func() { fired = true })
	c.Arm()
	if !fired {
		t.Fatal("Arm with zero outstanding did not fire")
	}
}

func TestCounterAdd(t *testing.T) {
	fired := false
	c := NewCounter(1, func() { fired = true })
	c.Add(1)
	c.Done()
	if fired || c.Remaining() != 1 {
		t.Fatalf("fired=%v remaining=%d", fired, c.Remaining())
	}
	c.Done()
	if !fired {
		t.Fatal("did not fire after Add accounted")
	}
}

func TestChain(t *testing.T) {
	e := NewEngine()
	var got []string
	Chain(func() { got = append(got, "done") },
		func(next func()) { e.Schedule(10, func() { got = append(got, "a"); next() }) },
		func(next func()) { e.Schedule(10, func() { got = append(got, "b"); next() }) },
		func(next func()) { got = append(got, "c"); next() },
	)
	e.Run()
	want := []string{"a", "b", "c", "done"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("chain stages did not run sequentially: t=%d", e.Now())
	}
}

func TestChainEmpty(t *testing.T) {
	done := false
	Chain(func() { done = true })
	if !done {
		t.Fatal("empty chain did not complete")
	}
}

func TestForkJoin(t *testing.T) {
	e := NewEngine()
	var doneAt Time = -1
	ForkJoin(func() { doneAt = e.Now() },
		func(next func()) { e.Schedule(10, next) },
		func(next func()) { e.Schedule(30, next) },
		func(next func()) { e.Schedule(20, next) },
	)
	e.Run()
	if doneAt != 30 {
		t.Fatalf("join at %d, want 30 (max of branches)", doneAt)
	}
}

func TestForkJoinEmpty(t *testing.T) {
	done := false
	ForkJoin(func() { done = true })
	if !done {
		t.Fatal("empty fork-join did not complete")
	}
}
