package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// Report is the outcome of running one system on one configuration. All
// traffic and energy figures are extrapolated to the full model (one
// optimizer step); Sim* fields record the raw simulation window.
type Report struct {
	System    string
	Model     string
	Optimizer string
	Precision string
	Params    int64

	TotalUnits int64
	SimUnits   int64
	SimTime    sim.Time // simulated window wall time
	SimEvents  uint64   // discrete events executed in the window (0 for analytic systems)

	// Simulated-window external-link traffic, unscaled: the bytes that
	// actually crossed each direction of the PCIe model during the window.
	// The invariant registry audits these against the per-unit accounting
	// (bytes entering the resource must equal bytes accounted), so a system
	// cannot silently drop or double-count transfers. Zero for analytic
	// systems.
	SimPCIeToDevBytes   int64
	SimPCIeFromDevBytes int64

	// OptStepTime is the full-model optimizer step latency.
	OptStepTime sim.Time

	// Per-step full-model traffic.
	PCIeBytes        int64
	BusBytes         int64
	NANDReadBytes    int64
	NANDProgramBytes int64
	DRAMBytes        int64
	HBMBytes         int64

	// Energy per full-model step.
	Energy energy.Breakdown

	// WAF observed in the simulation window.
	WAF float64

	// Mean busy fractions over the simulation window — which interface a
	// system is bound by shows up here as a utilisation near 1.
	LinkUtil float64 // busier PCIe direction
	BusUtil  float64 // mean channel-bus utilisation
	ODPUtil  float64 // mean on-die compute utilisation (OptimStore only)
	GPUUtil  float64 // update-kernel GPU utilisation (offload only)

	// Feasible is false when the system cannot run this point at all
	// (GPU-resident with state exceeding device memory).
	Feasible bool
	Notes    string

	// End-to-end training step.
	FwdBwdTime   sim.Time
	StepTime     sim.Time
	TokensPerSec float64

	// Fault-injection and checkpoint/restore accounting (internal/fault).
	// CheckpointPolicy is always set ("none" when checkpointing is off) so
	// faulted and fault-free reports stay structurally comparable. The
	// fault counts are the events that actually fired inside the simulated
	// window (ECC exhaustion's cost lands organically in SimTime; the
	// terminal kinds are priced below).
	CheckpointPolicy string
	PowerLossFaults  int
	DieFailFaults    int
	ECCFaults        int

	// CheckpointTime is the cost of taking one checkpoint per step under
	// the policy; CheckpointProgramBytes its NAND-program (WAF) cost —
	// nonzero only for the in-place policy, which snapshots device-side.
	CheckpointTime         sim.Time
	CheckpointProgramBytes int64

	// RecoveryTime totals, over every terminal fault fired in the window,
	// the restore cost plus the step work redone from the crash position.
	// RecoveryProgramBytes is the NAND-program traffic recovery issues
	// rolling resident state back to the last durable checkpoint.
	RecoveryTime         sim.Time
	RecoveryProgramBytes int64

	// Violations holds human-readable invariant-violation descriptions when
	// the run was executed with invariant checking enabled (see
	// internal/invariant and experiments.Options.CheckInvariants). Empty on
	// a clean run or when checking is off.
	Violations []string
}

// InvariantViolations reports the violations recorded on this report,
// satisfying the runner's InvariantReporter interface so run summaries can
// count them.
func (r *Report) InvariantViolations() []string { return r.Violations }

// EventCount reports the simulated-event cost of producing this report,
// satisfying the runner's EventCounter interface for run summaries.
func (r *Report) EventCount() int64 { return int64(r.SimEvents) }

// EffectiveStepTime is the training-step latency with fault tolerance
// priced in: the step itself, one checkpoint under the policy, and any
// recovery incurred in the window.
func (r *Report) EffectiveStepTime() sim.Time {
	return r.StepTime + r.CheckpointTime + r.RecoveryTime
}

// EnergyPerParamPJ returns the per-parameter step energy in picojoules.
func (r *Report) EnergyPerParamPJ(params int64) float64 {
	if params == 0 {
		return 0
	}
	return r.Energy.Total() / float64(params) * units.PJPerJ
}

// Speedup returns how much faster this report's optimizer step is than
// other's.
func (r *Report) Speedup(other *Report) float64 {
	if r.OptStepTime == 0 {
		return 0
	}
	return float64(other.OptStepTime) / float64(r.OptStepTime)
}

// String renders a one-line summary.
func (r *Report) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%-12s %-10s %-8s infeasible (%s)", r.System, r.Model, r.Optimizer, r.Notes)
	}
	return fmt.Sprintf("%-12s %-10s %-8s opt-step=%v step=%v tok/s=%.1f",
		r.System, r.Model, r.Optimizer, r.OptStepTime, r.StepTime, r.TokensPerSec)
}

// ReportTable renders a set of reports as one table.
func ReportTable(title string, reports []*Report) *stats.Table {
	t := stats.NewTable(title,
		"system", "model", "optimizer", "opt-step-ms", "step-ms", "tokens/s",
		"PCIe-GB", "bus-GB", "nand-prog-GB", "energy-J", "pJ/param")
	for _, r := range reports {
		if !r.Feasible {
			t.AddRow(r.System, r.Model, r.Optimizer, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(r.System, r.Model, r.Optimizer,
			r.OptStepTime.Millis(), r.StepTime.Millis(), r.TokensPerSec,
			units.Bytes(r.PCIeBytes).GBf(), units.Bytes(r.BusBytes).GBf(),
			units.Bytes(r.NANDProgramBytes).GBf(), r.Energy.Total(),
			r.EnergyPerParamPJ(r.Params))
	}
	return t
}

// FaultTable renders the fault and checkpoint/restore accounting of
// several reports: fired fault counts, per-step checkpoint cost, total
// recovery cost, the effective step with both priced in, and the NAND
// program traffic (WAF cost) each policy incurs.
func FaultTable(title string, reports []*Report) *stats.Table {
	t := stats.NewTable(title,
		"system", "ckpt-policy", "pl", "df", "ecc",
		"ckpt-ms", "recovery-ms", "eff-step-ms", "ckpt-prog-GB", "rec-prog-GB")
	for _, r := range reports {
		if !r.Feasible {
			t.AddRow(r.System, r.CheckpointPolicy, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(r.System, r.CheckpointPolicy,
			r.PowerLossFaults, r.DieFailFaults, r.ECCFaults,
			r.CheckpointTime.Millis(), r.RecoveryTime.Millis(),
			r.EffectiveStepTime().Millis(),
			units.Bytes(r.CheckpointProgramBytes).GBf(),
			units.Bytes(r.RecoveryProgramBytes).GBf())
	}
	return t
}

// EnergyTable renders the energy breakdown of several reports.
func EnergyTable(title string, reports []*Report) *stats.Table {
	t := stats.NewTable(title,
		"system", "nand-read-J", "nand-prog-J", "erase-J", "bus-J", "pcie-J",
		"dram-J", "hbm-J", "compute-J", "total-J")
	for _, r := range reports {
		if !r.Feasible {
			continue
		}
		e := r.Energy
		t.AddRow(r.System, e.NANDRead, e.NANDProgram, e.NANDErase, e.Bus,
			e.PCIe, e.DRAM, e.HBM, e.Compute, e.Total())
	}
	return t
}
