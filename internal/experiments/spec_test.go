package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// renderSuite renders the entire registry to every on-disk byte: the
// result text plus each table and figure CSV, in presentation order.
func renderSuite(t *testing.T, opts Options) string {
	t.Helper()
	results, _, err := RunMany(IDs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.String())
		for _, tb := range r.Tables {
			b.WriteString(tb.CSV())
		}
		for _, f := range r.Figures {
			b.WriteString(f.Table().CSV())
		}
	}
	return b.String()
}

// TestSpecGoldenEquivalence pins the declarative-spec migration to the
// hand-coded implementation it replaced: the full quick suite must render
// byte-identical to the committed seed output, sequentially and across
// the worker pool.
func TestSpecGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite render in -short mode")
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		// Regeneration path for deliberate output changes (new systems or
		// specs in the registry): UPDATE_GOLDEN=1 go test -run SpecGolden.
		// The fresh golden still must render byte-identically across
		// worker-pool widths below.
		if err := os.WriteFile("testdata/golden_quick.txt",
			[]byte(renderSuite(t, Options{Quick: true, Parallel: 1})), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile("testdata/golden_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	golden := string(raw)
	for _, par := range []int{1, 8} {
		got := renderSuite(t, Options{Quick: true, Parallel: par})
		if got != golden {
			t.Fatalf("parallel=%d rendering diverged from seed golden:\n%s",
				par, firstDiff(golden, got))
		}
	}
}

// firstDiff locates the first byte where two renderings diverge and
// returns the surrounding context of both.
func firstDiff(want, got string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hiW, hiG := i+200, i+200
	if hiW > len(want) {
		hiW = len(want)
	}
	if hiG > len(got) {
		hiG = len(got)
	}
	return fmt.Sprintf("first difference at byte %d (want %d bytes, got %d)\n--- want ---\n%s\n--- got ---\n%s",
		i, len(want), len(got), want[lo:hiW], got[lo:hiG])
}

// TestTitleUnknownID pins the satellite fix: Title reports unknown IDs
// instead of silently returning "".
func TestTitleUnknownID(t *testing.T) {
	if title, ok := Title("F99"); ok || title != "" {
		t.Fatalf("Title(F99) = %q, %v; want \"\", false", title, ok)
	}
	if title, ok := Title(""); ok || title != "" {
		t.Fatalf("Title(\"\") = %q, %v; want \"\", false", title, ok)
	}
	title, ok := Title("F1")
	if !ok || title != "Optimizer-step latency per system" {
		t.Fatalf("Title(F1) = %q, %v", title, ok)
	}
}

// TestSortIDs pins the strconv-based presentation order, including the
// defined placement of malformed IDs: tables before figures, numeric
// ascending, malformed after well-formed within their class, themselves
// ordered lexicographically.
func TestSortIDs(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want []string
	}{
		{
			name: "tables before figures",
			in:   []string{"F2", "T1", "F1", "T2"},
			want: []string{"T1", "T2", "F1", "F2"},
		},
		{
			name: "numeric not lexicographic",
			in:   []string{"F10", "F2", "F1", "F20"},
			want: []string{"F1", "F2", "F10", "F20"},
		},
		{
			name: "malformed after well-formed in class",
			in:   []string{"Fx", "F2", "F", "F1", "F-3"},
			want: []string{"F1", "F2", "F", "F-3", "Fx"},
		},
		{
			name: "unknown class last",
			in:   []string{"X1", "F1", "T1", ""},
			want: []string{"T1", "F1", "X1", ""},
		},
		{
			name: "duplicate stable total order",
			in:   []string{"F1", "T10", "F1", "T9"},
			want: []string{"T9", "T10", "F1", "F1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := append([]string(nil), tc.in...)
			sortIDs(got)
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("sortIDs(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
