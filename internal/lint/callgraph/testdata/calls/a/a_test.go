package a

// helperForTest lives in a _test.go file; its node must be marked Test.
func helperForTest() {
	Leaf()
}
