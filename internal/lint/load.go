package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Unit is one typechecked compilation unit: a package together with its
// in-package tests, or the external (package foo_test) test package of a
// directory.
type Unit struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// A Loader parses and typechecks packages of one module using only the
// standard library: module-internal imports are resolved by path mapping
// under the module root, everything else through the compiler's source
// importer. All units share one FileSet so positions compose.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	imports map[string]*types.Package
	loading map[string]bool
	parsed  map[string]*ast.File
}

// The standard library is typechecked once per process, not once per
// Loader: every driver that builds several loaders (linttest creates one
// per Run/RunTree call) would otherwise re-typecheck fmt, time, sort and
// their transitive deps from source each time, and that work dominated
// the analyzer test suite's wall time. The shared importer owns its own
// FileSet; that is safe because diagnostics only ever anchor at module
// positions, which live in each Loader's Fset — std positions are never
// resolved. The mutex serializes first-miss typechecking from parallel
// tests.
var (
	stdImporterMu sync.Mutex
	stdFset       = token.NewFileSet()
	stdImporter   = importer.ForCompiler(stdFset, "source", nil)
)

// stdImport is the process-wide memoized standard-library importer.
type stdImport struct{}

func (stdImport) Import(path string) (*types.Package, error) {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	return stdImporter.Import(path)
}

// NewLoader returns a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot, modulePath string) *Loader {
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		Fset:       token.NewFileSet(),
		std:        stdImport{},
		imports:    map[string]*types.Package{},
		loading:    map[string]bool{},
		parsed:     map[string]*ast.File{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths are typechecked
// from source under the module root (non-test files only, matching the go
// tool's import semantics); all other paths go to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir accepted by keep, sorted by name.
func (l *Loader) parseDir(dir string, keep func(string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || !keep(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, ok := l.parsed[full]
		if !ok {
			f, err = parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			l.parsed[full] = f
		}
		files = append(files, f)
	}
	return files, nil
}

// check typechecks files as package path, returning up to the first few
// type errors joined into one error.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(errs) < 5 {
				errs = append(errs, err.Error())
			}
		},
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: typecheck %s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return pkg, info, nil
}

// LoadDir loads the package in dir as one or two Units: the package with
// its in-package tests, and — when present — the external foo_test
// package. Directories with no .go files yield no units.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	importPath := l.importPathFor(dir)
	var base, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			base = append(base, f)
		}
	}
	var units []*Unit
	if len(base) > 0 {
		pkg, info, err := l.check(importPath, base)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath, Dir: dir, Fset: l.Fset,
			Files: base, Pkg: pkg, Info: info,
		})
	}
	if len(xtest) > 0 {
		pkg, info, err := l.check(importPath+"_test", xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath + " [xtest]", Dir: dir, Fset: l.Fset,
			Files: xtest, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// PackageDirs walks root and returns every directory containing .go files,
// skipping hidden directories and testdata trees (matching the go tool's
// ./... semantics).
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
