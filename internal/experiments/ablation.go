package experiments

import (
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// runF11 regenerates the GC/over-provisioning sensitivity: steady-state
// write amplification and update throughput of the state region under
// dense (sequential) and sparse (random) update streams.
func runF11(opts Options) (*Result, error) {
	t := stats.NewTable("F11: GC sensitivity of the state region",
		"over-provision", "workload", "WAF", "updates/s (window)")
	fig := stats.NewFigure("F11: WAF vs over-provisioning", "OP fraction", "WAF")
	seqS := fig.AddSeries("dense sequential updates")
	rndS := fig.AddSeries("sparse random updates")
	ops := []float64{0.07, 0.125, 0.20, 0.28}
	if opts.Quick {
		ops = []float64{0.07, 0.28}
	}
	// Flatten (over-provision × workload) into independent pool jobs; the
	// pairs come back in grid order for the table.
	type wafPoint struct {
		op     float64
		random bool
	}
	var points []wafPoint
	for _, op := range ops {
		points = append(points, wafPoint{op, false}, wafPoint{op, true})
	}
	type wafResult struct{ waf, rate float64 }
	results := runner.Map(opts.Parallel, points, func(p wafPoint) (wafResult, error) {
		waf, rate, err := measureRegionWAF(p.op, p.random, opts.wafSteps())
		return wafResult{waf, rate}, err
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	for i, op := range ops {
		seq, rnd := results[2*i].Value, results[2*i+1].Value
		t.AddRow(op, "sequential", seq.waf, seq.rate)
		t.AddRow(op, "random", rnd.waf, rnd.rate)
		seqS.Add(op, seq.waf)
		rndS.Add(op, rnd.waf)
	}
	return &Result{Tables: []*stats.Table{t}, Figures: []*stats.Figure{fig}}, nil
}

// measureRegionWAF drives a small state region through update sweeps and
// reports steady-state WAF and update throughput.
func measureRegionWAF(overProvision float64, random bool, steps int) (waf, updatesPerSec float64, err error) {
	dev, eng, pages, err := newRegionDevice(overProvision)
	if err != nil {
		return 0, 0, err
	}
	order := make([]int64, pages)
	for i := range order {
		order[i] = int64(i)
	}
	if random {
		// Deterministic shuffle (LCG) — no time-dependent seeding.
		state := uint64(0x9E3779B97F4A7C15)
		for i := len(order) - 1; i > 0; i-- {
			state = state*6364136223846793005 + 1442695040888963407
			j := int(state % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
	}
	var baseHost, baseGC uint64
	var startTime, endTime sim.Time
	for s := 0; s < steps; s++ {
		for _, lpa := range order {
			dev.ProgramUpdate(lpa, nil)
		}
		ok := false
		dev.Drain(func() { ok = true })
		eng.Run()
		if !ok {
			return 0, 0, errWedged
		}
		if s == 0 {
			baseHost = dev.FTL().HostProgrammed()
			baseGC = dev.FTL().GCProgrammed()
			startTime = eng.Now()
		}
	}
	endTime = eng.Now()
	host := dev.FTL().HostProgrammed() - baseHost
	gc := dev.FTL().GCProgrammed() - baseGC
	if host == 0 {
		return 1, 0, nil
	}
	waf = float64(host+gc) / float64(host)
	elapsed := (endTime - startTime).Seconds()
	if elapsed > 0 {
		updatesPerSec = float64(host) / elapsed
	}
	return waf, updatesPerSec, nil
}

// newRegionDevice builds the small preconditioned device used by the GC
// experiments.
func newRegionDevice(overProvision float64) (*ssd.Device, *simEngine, int64, error) {
	cfg := regionConfig(overProvision)
	if err := cfg.Validate(); err != nil {
		return nil, nil, 0, err
	}
	eng := newSimEngine()
	dev := ssd.NewDevice(eng, cfg)
	pages := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < pages; lpa++ {
		dev.Preload(lpa)
	}
	return dev, eng, pages, nil
}
