package dnn

import (
	"strings"
	"testing"

	"repro/internal/approx"
)

func TestZooValid(t *testing.T) {
	zoo := Zoo()
	if len(zoo) < 5 {
		t.Fatalf("zoo too small: %d", len(zoo))
	}
	seen := map[string]bool{}
	for _, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestZooSpansScales(t *testing.T) {
	zoo := Zoo()
	var smallest, largest int64 = zoo[0].Params, zoo[0].Params
	for _, m := range zoo {
		if m.Params < smallest {
			smallest = m.Params
		}
		if m.Params > largest {
			largest = m.Params
		}
	}
	// The evaluation needs models both below and above GPU-memory scale.
	if smallest > 100_000_000 {
		t.Fatal("zoo lacks a GPU-resident-scale model")
	}
	if largest < 100_000_000_000 {
		t.Fatal("zoo lacks an offload-mandatory-scale model")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("GPT-13B")
	if err != nil || m.Params != 13_000_000_000 {
		t.Fatalf("ByName: %v %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestTransformerFlops(t *testing.T) {
	m := GPT13B()
	fwd := m.FwdFlopsPerSample()
	want := 2 * 13e9 * 2048
	if fwd < want*0.99 || fwd > want*1.01 {
		t.Fatalf("fwd flops = %g, want %g", fwd, want)
	}
	if !approx.Equal(m.StepFlops(4), 3*fwd*4) {
		t.Fatal("step flops should be 3× fwd × batch")
	}
	if m.BatchTokens(4) != 4*2048 {
		t.Fatal("batch tokens")
	}
}

func TestCNNFlops(t *testing.T) {
	m := ResNet50()
	if !approx.Equal(m.FwdFlopsPerSample(), 4.1e9) {
		t.Fatal("cnn fwd flops")
	}
	if m.BatchTokens(32) != 32 {
		t.Fatal("cnn batch tokens = samples")
	}
}

func TestDLRMSparse(t *testing.T) {
	m := DLRM()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !approx.Equal(m.UpdateFraction(), 0.001) {
		t.Fatalf("update fraction = %v", m.UpdateFraction())
	}
	if !approx.Equal(GPT13B().UpdateFraction(), 1) {
		t.Fatal("dense models should update everything")
	}
	if !approx.Equal(m.FwdFlopsPerSample(), 1e9) {
		t.Fatal("recommender flops")
	}
}

func TestLayerBounds(t *testing.T) {
	m := BERTLarge()
	b := m.LayerBounds()
	if len(b) != m.Layers+1 {
		t.Fatalf("bounds len = %d", len(b))
	}
	if b[0] != 0 || b[len(b)-1] != m.Params {
		t.Fatal("bounds must cover [0, params]")
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("bounds not monotone")
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Model{
		{},
		{Name: "x", Params: 1, Layers: 1, Arch: Transformer}, // no seq/hidden
		{Name: "x", Params: 1, Layers: 1, Arch: CNN},         // no flops
		{Name: "x", Params: 0, Layers: 1},
		{Name: "x", Params: 1, Layers: 1, Arch: Recommender}, // no flops
		{Name: "x", Params: 1, Layers: 1, Arch: CNN, FlopsPerSample: 1, SparseFraction: 2},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		42:              "42",
		1500:            "2K",
		25_600_000:      "26M",
		1_500_000_000:   "1.5B",
		175_000_000_000: "175.0B",
		2e12:            "2.0T",
	}
	//simlint:allow maporder table-driven cases, each asserted independently
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestModelString(t *testing.T) {
	s := GPT13B().String()
	if !strings.Contains(s, "GPT-13B") || !strings.Contains(s, "13.0B") {
		t.Fatalf("String = %q", s)
	}
	if Transformer.String() != "Transformer" || CNN.String() != "CNN" {
		t.Fatal("arch names")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch should render")
	}
}
