# Verification tiers. Tier 1 is the fast always-green gate; tier 2 adds
# go vet and the race detector — required since internal/runner introduced
# real concurrency (the worker pool that fans simulation points across
# CPUs); tier 3 runs simlint, the project's own static analyzers for
# determinism and unit safety (see DESIGN.md). Run `make verify` before
# sending changes.

GO ?= go

.PHONY: verify tier1 tier2 tier3 bench

verify: tier1 tier2 tier3

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

tier3:
	$(GO) run ./cmd/simlint ./...

bench:
	$(GO) test -bench=. -benchmem ./...
