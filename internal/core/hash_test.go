package core

import (
	"reflect"
	"testing"

	"repro/internal/dnn"
)

func TestCanonicalHashEqualConfigs(t *testing.T) {
	a := DefaultConfig(dnn.GPT13B())
	b := DefaultConfig(dnn.GPT13B())
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("equal configs hash differently")
	}
	// Hooks and trace sinks are explicitly outside the canonical state.
	b.ComputeHook = func(int64) {}
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("ComputeHook changed the canonical hash")
	}
}

func TestCanonicalHashDistinguishesConfigs(t *testing.T) {
	base := DefaultConfig(dnn.GPT13B())
	h := base.CanonicalHash()
	other := DefaultConfig(dnn.GPT2XL())
	if other.CanonicalHash() == h {
		t.Fatal("different models hash equal")
	}
	ch := base
	ch.SSD.Channels++
	if ch.CanonicalHash() == h {
		t.Fatal("channel change not reflected in hash")
	}
}

// TestCanonicalHashPerturbation walks every exported, hashable leaf of
// Config by reflection, perturbs it, and requires the digest to change —
// the property that makes the search memo table alias-free: no two
// distinct design points can share a key.
func TestCanonicalHashPerturbation(t *testing.T) {
	base := DefaultConfig(dnn.GPT13B())
	baseHash := base.CanonicalHash()

	var walk func(path string, v reflect.Value)
	walk = func(path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			t_ := v.Type()
			for i := 0; i < t_.NumField(); i++ {
				f := t_.Field(i)
				if !f.IsExported() {
					continue
				}
				if f.Type.Kind() == reflect.Func || f.Type.Kind() == reflect.Interface {
					continue // explicitly unhashed (ComputeHook, Trace)
				}
				walk(path+"."+f.Name, v.Field(i))
			}
		case reflect.Bool:
			old := v.Bool()
			v.SetBool(!old)
			checkChanged(t, path, base, baseHash)
			v.SetBool(old)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			old := v.Int()
			v.SetInt(old + 1)
			checkChanged(t, path, base, baseHash)
			v.SetInt(old)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			old := v.Uint()
			v.SetUint(old + 1)
			checkChanged(t, path, base, baseHash)
			v.SetUint(old)
		case reflect.Float32, reflect.Float64:
			old := v.Float()
			v.SetFloat(old*2 + 1)
			checkChanged(t, path, base, baseHash)
			v.SetFloat(old)
		case reflect.String:
			old := v.String()
			v.SetString(old + "x")
			checkChanged(t, path, base, baseHash)
			v.SetString(old)
		default:
			t.Fatalf("unhashable leaf kind %s at %s", v.Kind(), path)
		}
	}
	walk("Config", reflect.ValueOf(&base).Elem())

	if base.CanonicalHash() != baseHash {
		t.Fatal("perturbation walk did not restore the config")
	}
}

func checkChanged(t *testing.T, path string, cfg Config, baseHash uint64) {
	t.Helper()
	if cfg.CanonicalHash() == baseHash {
		t.Errorf("perturbing %s did not change the canonical hash", path)
	}
}
