// Package optim implements the DNN optimizer algorithms OptimStore
// executes in storage, as functional ("gold") float32 implementations.
// They serve three purposes: numerical verification of the simulated
// on-die kernels, per-optimizer state/traffic ratios for the timing and
// energy models, and kernel specifications (flops, passes, state words)
// consumed by the ODP cost model.
package optim

import "fmt"

// Kind enumerates the supported optimizer algorithms.
type Kind int

// Supported optimizers.
const (
	SGD Kind = iota
	Momentum
	Nesterov
	Adagrad
	RMSProp
	Adam
	AdamW
	LAMB
	// AMSGrad is Adam with a maintained maximum of the second moment
	// (Reddi et al.): a third state word per parameter.
	AMSGrad
	// AdamA is Adam Accumulation (Zhang et al.): micro-batch gradients are
	// folded directly into the first moment instead of being buffered, so a
	// gradient-accumulation step of N micro-batches keeps Adam's two state
	// words while the second moment tracks the accumulated first moment.
	AdamA
)

// Kinds lists every supported optimizer, in presentation order.
func Kinds() []Kind {
	return []Kind{SGD, Momentum, Nesterov, Adagrad, RMSProp, Adam, AdamW, LAMB, AMSGrad, AdamA}
}

// String returns the conventional name.
func (k Kind) String() string {
	switch k {
	case SGD:
		return "SGD"
	case Momentum:
		return "Momentum"
	case Nesterov:
		return "Nesterov"
	case Adagrad:
		return "Adagrad"
	case RMSProp:
		return "RMSProp"
	case Adam:
		return "Adam"
	case AdamW:
		return "AdamW"
	case LAMB:
		return "LAMB"
	case AMSGrad:
		return "AMSGrad"
	case AdamA:
		return "AdamA"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Hyper carries the hyperparameters shared across optimizers. Zero fields
// are replaced by the conventional defaults in New.
type Hyper struct {
	LR          float64 // learning rate
	MomentumMu  float64 // momentum coefficient (Momentum/Nesterov)
	Beta1       float64 // first-moment decay (Adam family)
	Beta2       float64 // second-moment decay (Adam family)
	Rho         float64 // RMSProp decay
	Eps         float64 // numerical floor
	WeightDecay float64 // decoupled weight decay (AdamW/LAMB); coupled elsewhere
}

// DefaultHyper returns the conventional defaults (lr=1e-3, betas 0.9/0.999).
func DefaultHyper() Hyper {
	return Hyper{
		LR:         1e-3,
		MomentumMu: 0.9,
		Beta1:      0.9,
		Beta2:      0.999,
		Rho:        0.99,
		Eps:        1e-8,
	}
}

func (h Hyper) withDefaults() Hyper {
	d := DefaultHyper()
	if h.LR == 0 {
		h.LR = d.LR
	}
	if h.MomentumMu == 0 {
		h.MomentumMu = d.MomentumMu
	}
	if h.Beta1 == 0 {
		h.Beta1 = d.Beta1
	}
	if h.Beta2 == 0 {
		h.Beta2 = d.Beta2
	}
	if h.Rho == 0 {
		h.Rho = d.Rho
	}
	if h.Eps == 0 {
		h.Eps = d.Eps
	}
	return h
}

// Optimizer is a stateful parameter updater. Implementations allocate their
// state lazily on the first Step, sized to the parameter slice, and advance
// an internal timestep used for bias correction.
type Optimizer interface {
	// Name returns the algorithm name.
	Name() string
	// Kind returns the algorithm enum value.
	Kind() Kind
	// Step applies one update of w in place given gradient g.
	// len(g) must equal len(w); the slice length must not change between
	// steps.
	Step(w, g []float32)
	// StateWords returns the number of float32 state words the algorithm
	// keeps per parameter (excluding the master weight itself).
	StateWords() int
	// Steps returns how many updates have been applied.
	Steps() int
	// Reset discards optimizer state and the step counter.
	Reset()
}

// New constructs an optimizer of the given kind. Unset hyperparameters take
// conventional defaults.
func New(kind Kind, hp Hyper) Optimizer {
	hp = hp.withDefaults()
	switch kind {
	case SGD:
		return &sgd{hp: hp}
	case Momentum:
		return &momentum{hp: hp, nesterov: false}
	case Nesterov:
		return &momentum{hp: hp, nesterov: true}
	case Adagrad:
		return &adagrad{hp: hp}
	case RMSProp:
		return &rmsprop{hp: hp}
	case Adam:
		return &adam{hp: hp, decoupledWD: false}
	case AdamW:
		return &adam{hp: hp, decoupledWD: true}
	case LAMB:
		return &lamb{hp: hp}
	case AMSGrad:
		return &amsgrad{hp: hp}
	case AdamA:
		return &adamA{hp: hp}
	default:
		panic(fmt.Sprintf("optim: unknown kind %d", int(kind)))
	}
}

func checkLens(w, g []float32) {
	if len(w) != len(g) {
		panic(fmt.Sprintf("optim: len(w)=%d != len(g)=%d", len(w), len(g)))
	}
}
