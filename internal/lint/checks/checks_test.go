package checks_test

import (
	"testing"

	"repro/internal/lint/checks"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over a testdata package holding at least one
// positive (flagged, `// want`-annotated) and one negative case, plus an
// exercised //simlint:allow directive.

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, checks.Nondeterminism, "testdata/nondeterminism")
}

// TestUnitConv includes the acceptance-gate case: the PR 1 buskbps-style
// `busMBps / 1000` conversion reintroduced in testdata must be flagged.
func TestUnitConv(t *testing.T) {
	linttest.Run(t, checks.UnitConv, "testdata/unitconv")
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, checks.FloatEq, "testdata/floateq")
}

func TestSimTime(t *testing.T) {
	linttest.Run(t, checks.SimTime, "testdata/simtime")
}

// TestTraceSink includes the acceptance-gate case: a direct fmt.Fprintf
// of trace bytes, the write shape that would bypass internal/tracing's
// byte-stable strconv sink, must be flagged.
func TestTraceSink(t *testing.T) {
	linttest.Run(t, checks.TraceSink, "testdata/tracesink")
}
