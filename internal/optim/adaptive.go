package optim

import "math"

// adagrad accumulates squared gradients and scales each coordinate's
// learning rate by the inverse root of its accumulated magnitude:
//
//	h ← h + g²
//	w ← w − lr·g / (√h + ε)
type adagrad struct {
	hp    Hyper
	h     []float32
	steps int
}

func (a *adagrad) Name() string    { return "Adagrad" }
func (a *adagrad) Kind() Kind      { return Adagrad }
func (a *adagrad) StateWords() int { return 1 }
func (a *adagrad) Steps() int      { return a.steps }
func (a *adagrad) Reset()          { a.h = nil; a.steps = 0 }

func (a *adagrad) Step(w, g []float32) {
	checkLens(w, g)
	if a.h == nil {
		a.h = make([]float32, len(w))
	}
	lr := float32(a.hp.LR)
	eps := float32(a.hp.Eps)
	wd := float32(a.hp.WeightDecay)
	for i := range w {
		grad := g[i] + wd*w[i]
		a.h[i] += grad * grad
		w[i] -= lr * grad / (float32(math.Sqrt(float64(a.h[i]))) + eps)
	}
	a.steps++
}

// rmsprop keeps an exponential moving average of squared gradients:
//
//	h ← ρ·h + (1−ρ)·g²
//	w ← w − lr·g / (√h + ε)
type rmsprop struct {
	hp    Hyper
	h     []float32
	steps int
}

func (r *rmsprop) Name() string    { return "RMSProp" }
func (r *rmsprop) Kind() Kind      { return RMSProp }
func (r *rmsprop) StateWords() int { return 1 }
func (r *rmsprop) Steps() int      { return r.steps }
func (r *rmsprop) Reset()          { r.h = nil; r.steps = 0 }

func (r *rmsprop) Step(w, g []float32) {
	checkLens(w, g)
	if r.h == nil {
		r.h = make([]float32, len(w))
	}
	lr := float32(r.hp.LR)
	rho := float32(r.hp.Rho)
	eps := float32(r.hp.Eps)
	wd := float32(r.hp.WeightDecay)
	for i := range w {
		grad := g[i] + wd*w[i]
		r.h[i] = rho*r.h[i] + (1-rho)*grad*grad
		w[i] -= lr * grad / (float32(math.Sqrt(float64(r.h[i]))) + eps)
	}
	r.steps++
}
