package optim

import "math"

// GlobalNorm returns ‖g‖₂ computed in float64 for stability.
func GlobalNorm(g []float32) float64 {
	var ss float64
	for _, v := range g {
		ss += float64(v) * float64(v)
	}
	return math.Sqrt(ss)
}

// ClipGlobalNorm scales g in place so its L2 norm does not exceed maxNorm
// (the standard large-model training safeguard) and returns the norm
// observed before clipping. Non-positive maxNorm panics. A zero gradient
// is left untouched. A non-finite norm (NaN or Inf — overflowed or
// poisoned gradients) is returned unclipped with g untouched: scaling by
// maxNorm/NaN would poison every weight and maxNorm/Inf would zero them,
// so the caller can observe the norm and skip the step, as large-model
// trainers do.
func ClipGlobalNorm(g []float32, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic("optim: ClipGlobalNorm with non-positive maxNorm")
	}
	norm := GlobalNorm(g)
	if norm <= maxNorm || norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return norm
	}
	scale := float32(maxNorm / norm)
	for i := range g {
		g[i] *= scale
	}
	return norm
}
