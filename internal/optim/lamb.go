package optim

import "math"

// lamb implements LAMB (You et al., "Large Batch Optimization for Deep
// Learning"): an AdamW-style update rescaled per layer by the trust ratio
// ‖w‖ / ‖r‖, where r is the raw update direction. Step treats the whole
// slice as one layer; StepLayers applies per-layer trust ratios, which is
// what a training framework would do.
//
// The two-pass structure (compute r and norms, then scale and apply) is
// significant for in-storage execution: the ODP kernel needs a second read
// pass or a staging buffer, and a global reduction across dies. The kernel
// spec in kernel.go encodes that.
type lamb struct {
	hp    Hyper
	m, v  []float32
	steps int
}

func (l *lamb) Name() string    { return "LAMB" }
func (l *lamb) Kind() Kind      { return LAMB }
func (l *lamb) StateWords() int { return 2 }
func (l *lamb) Steps() int      { return l.steps }
func (l *lamb) Reset()          { l.m, l.v = nil, nil; l.steps = 0 }

func (l *lamb) Step(w, g []float32) {
	checkLens(w, g)
	l.ensureState(len(w))
	l.steps++
	l.updateLayer(w, g, 0, len(w))
}

// StepLayers applies one LAMB step treating w[bounds[i]:bounds[i+1]] as
// separate layers. bounds must start at 0 and end at len(w).
func (l *lamb) StepLayers(w, g []float32, bounds []int) {
	checkLens(w, g)
	l.ensureState(len(w))
	l.steps++
	for i := 0; i+1 < len(bounds); i++ {
		l.updateLayer(w, g, bounds[i], bounds[i+1])
	}
}

func (l *lamb) ensureState(n int) {
	if l.m == nil {
		l.m = make([]float32, n)
		l.v = make([]float32, n)
	}
}

func (l *lamb) updateLayer(w, g []float32, lo, hi int) {
	t := float64(l.steps)
	b1, b2 := l.hp.Beta1, l.hp.Beta2
	eps := l.hp.Eps
	wd := l.hp.WeightDecay
	bc1 := 1 - math.Pow(b1, t)
	bc2 := 1 - math.Pow(b2, t)

	// Pass 1: moment update and raw direction r, accumulating norms.
	r := make([]float64, hi-lo)
	var wNorm, rNorm float64
	for i := lo; i < hi; i++ {
		grad := float64(g[i])
		m := b1*float64(l.m[i]) + (1-b1)*grad
		v := b2*float64(l.v[i]) + (1-b2)*grad*grad
		l.m[i], l.v[i] = float32(m), float32(v)
		ri := m / bc1 / (math.Sqrt(v/bc2) + eps)
		ri += wd * float64(w[i]) // decoupled decay inside the direction, per paper
		r[i-lo] = ri
		wNorm += float64(w[i]) * float64(w[i])
		rNorm += ri * ri
	}
	wNorm = math.Sqrt(wNorm)
	rNorm = math.Sqrt(rNorm)

	// Trust ratio: 1 when either norm vanishes (fresh layer or zero update).
	trust := 1.0
	if wNorm > 0 && rNorm > 0 {
		trust = wNorm / rNorm
	}

	// Pass 2: apply.
	lr := l.hp.LR
	for i := lo; i < hi; i++ {
		w[i] = float32(float64(w[i]) - lr*trust*r[i-lo])
	}
}
