// Command ssdsim drives the standalone SSD simulator with synthetic block
// traces — useful for validating the FTL/GC substrate independently of the
// in-storage-training workload.
//
// Usage:
//
//	ssdsim -pattern rand-write -reqs 20000 -op 0.125
//	ssdsim -pattern mixed-70r30w -reqs 50000 -channels 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	var (
		pattern  = flag.String("pattern", "rand-write", "seq-write, rand-write, seq-read, rand-read, mixed-70r30w")
		reqs     = flag.Int("reqs", 20000, "number of page requests")
		channels = flag.Int("channels", 2, "channels")
		dies     = flag.Int("dies", 2, "dies per channel")
		blocks   = flag.Int("blocks", 32, "blocks per plane")
		op       = flag.Float64("op", 0.125, "over-provisioning fraction")
		seed     = flag.Int64("seed", trace.DefaultSeed, "trace seed")
		qd       = flag.Int("qd", 64, "NVMe queue depth")
	)
	flag.Parse()

	var pat trace.Pattern
	found := false
	for _, p := range trace.Patterns() {
		if p.String() == *pattern {
			pat, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ssdsim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = *blocks
	cfg := ssd.Config{
		Channels:        *channels,
		DiesPerChannel:  *dies,
		Nand:            n,
		OverProvision:   *op,
		GCLowWater:      2,
		GCHighWater:     4,
		CachePages:      256,
		DRAMPageLatency: 2 * sim.Microsecond,
		CmdLatency:      5 * sim.Microsecond,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	eng := sim.NewEngine()
	dev := ssd.NewDevice(eng, cfg)

	// Precondition: fill the first half of the logical space so reads hit
	// mapped pages.
	logical := dev.FTL().LogicalPages()
	for lpa := int64(0); lpa < logical/2; lpa++ {
		dev.Preload(lpa)
	}

	reqList := trace.GenerateIO(pat, *reqs, logical, *seed)
	readLat := stats.NewHist("read-latency-us")
	writeLat := stats.NewHist("write-ack-latency-us")
	queue := ssd.NewQueuePair(eng, "nvme", *qd)
	for _, r := range reqList {
		r := r
		start := eng.Now()
		submit := func(h *stats.Hist, op func(int64, func())) {
			queue.Submit(func(complete func()) {
				start = eng.Now()
				op(r.LPA, complete)
			}, func() {
				h.Add((eng.Now() - start).Micros())
			})
		}
		if r.Write {
			submit(writeLat, dev.Write)
		} else {
			submit(readLat, dev.Read)
		}
	}
	eng.Run()
	drained := false
	dev.Drain(func() { drained = true })
	eng.Run()
	if !drained {
		fmt.Fprintln(os.Stderr, "ssdsim: device did not drain")
		os.Exit(1)
	}

	elapsed := eng.Now()
	s := dev.Stats()
	t := stats.NewTable(fmt.Sprintf("ssdsim: %s, %d requests, QD%d", pat, *reqs, *qd), "metric", "value")
	t.AddRow("simulated time", elapsed.String())
	t.AddRow("throughput (IOPS)", float64(*reqs)/elapsed.Seconds())
	t.AddRow("bandwidth (MB/s)", units.Bytes(int64(*reqs)*int64(n.PageSize)).MBf()/elapsed.Seconds())
	if readLat.Count() > 0 {
		t.AddRow("read latency p50/p99 (us)",
			fmt.Sprintf("%.1f / %.1f", readLat.Percentile(50), readLat.Percentile(99)))
	}
	if writeLat.Count() > 0 {
		t.AddRow("write ack p50/p99 (us)",
			fmt.Sprintf("%.1f / %.1f", writeLat.Percentile(50), writeLat.Percentile(99)))
	}
	t.AddRow("host reads / writes", fmt.Sprintf("%d / %d", s.HostReads, s.HostWrites))
	t.AddRow("GC relocations / erases", fmt.Sprintf("%d / %d", s.GCRelocations, s.GCErases))
	t.AddRow("write amplification", s.WAF)
	t.AddRow("max block P/E", dev.MaxEraseCount())
	t.AddRow("queue utilization", fmt.Sprintf("%.2f", queue.Utilization()))
	fmt.Print(t)
}
