// Command optimstore runs the reconstructed OptimStore evaluation: every
// table and figure from DESIGN.md §3, or a single experiment by ID.
//
// Usage:
//
//	optimstore -list
//	optimstore -exp all            # full suite (minutes)
//	optimstore -exp F1 -quick      # one experiment, small sim window
//	optimstore -exp F4 -format markdown
//	optimstore -exp all -svg out/  # additionally write figures as SVG
//	optimstore -exp all -html report.html  # one self-contained HTML report
//	optimstore -exp F20 -quick -fault seed=1,pl=2000,df=500,ecc=5000,horizon=5 -checkpoint inplace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/tracing"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID (T1, T2, F1..F15) or 'all'")
		quick    = flag.Bool("quick", false, "small simulation windows (seconds instead of minutes)")
		format   = flag.String("format", "text", "output format: text, markdown or csv")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		svgDir   = flag.String("svg", "", "also write each figure as an SVG into this directory")
		htmlTo   = flag.String("html", "", "also write the whole run as a self-contained HTML report")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulation points (1 = sequential)")
		check    = flag.Bool("check", false, "audit every simulated report against the physical-invariant registry (internal/invariant); violations fail the run")
		traceTo  = flag.String("trace", "", "run the five systems plus the checkpoint comparison with event tracing and write a Chrome trace_event JSON file here (open in chrome://tracing or ui.perfetto.dev); prints the trace-derived metrics instead of the experiment suite")
		faultArg = flag.String("fault", "", "arm a fault storm on every simulated point: seed=N,pl=R,df=R,ecc=R,start=MS,horizon=MS (rates per second of sim time; empty = disabled)")
		ckptArg  = flag.String("checkpoint", "none", "checkpoint policy priced into every report: none, inplace (ODP copyback) or hostpull")
		system   = flag.String("system", "", "run a single system (gpuresident, hostoffload, interleaved, ctrlisp, optimstore) on the GPT-13B default configuration, audit it against the invariant registry and print its report; exits 1 on any violation")
	)
	flag.Parse()

	faultSpec, err := fault.ParseSpec(*faultArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimstore:", err)
		os.Exit(2)
	}
	ckpt, err := fault.ParsePolicy(*ckptArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimstore:", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-4s %s\n", id, title)
		}
		return
	}

	if *system != "" {
		runSystem(*system, *quick)
		return
	}

	switch *format {
	case "text", "markdown", "csv":
	default:
		fmt.Fprintf(os.Stderr, "optimstore: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *traceTo != "" {
		opts := experiments.Options{Quick: *quick, Parallel: *parallel, Fault: faultSpec, Checkpoint: ckpt}
		res, traces, summary, err := experiments.TraceSystems(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optimstore:", err)
			os.Exit(1)
		}
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optimstore:", err)
			os.Exit(1)
		}
		if err := tracing.WriteChrome(f, traces...); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "optimstore:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "optimstore:", summary)
		printResult(*format, res)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceTo)
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	opts := experiments.Options{
		Quick: *quick, Parallel: *parallel, CheckInvariants: *check,
		Fault: faultSpec, Checkpoint: ckpt,
	}
	// Experiments fan across the worker pool; results come back in the
	// requested order, so the emitted report stream is identical at any
	// parallelism.
	all, summary, err := experiments.RunMany(ids, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimstore:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "optimstore:", summary)
	for _, res := range all {
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, res); err != nil {
				fmt.Fprintln(os.Stderr, "optimstore:", err)
				os.Exit(1)
			}
		}
		printResult(*format, res)
	}
	if *htmlTo != "" {
		if err := os.WriteFile(*htmlTo, []byte(report.HTML(all)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "optimstore:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlTo)
	}
}

// runSystem runs one named system on the GPT-13B default configuration,
// audits the report against the physical-invariant registry, prints the
// report table, and exits 1 if any invariant is violated.
func runSystem(name string, quick bool) {
	cfg := core.DefaultConfig(dnn.GPT13B())
	if quick {
		cfg.MaxSimUnits = 128
	}
	sys, err := core.NewSystem(name, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimstore:", err)
		os.Exit(2)
	}
	r, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimstore:", err)
		os.Exit(1)
	}
	violations := invariant.Audit(name, cfg, r)
	fmt.Print(core.ReportTable("system: "+r.System, []*core.Report{r}))
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "optimstore: invariant violation:", v)
		}
		os.Exit(1)
	}
}

// printResult renders one experiment result to stdout in the selected
// format.
func printResult(format string, res *experiments.Result) {
	switch format {
	case "text":
		fmt.Print(res)
	case "markdown":
		fmt.Printf("## %s: %s\n\n", res.ID, res.Title)
		for _, t := range res.Tables {
			fmt.Println(t.Markdown())
		}
		for _, f := range res.Figures {
			fmt.Println(f.Table().Markdown())
		}
	case "csv":
		for _, t := range res.Tables {
			fmt.Println(t.CSV())
		}
		for _, f := range res.Figures {
			fmt.Println(f.Table().CSV())
		}
	}
}

// writeSVGs renders every figure of a result into dir, log-x when the x
// range spans orders of magnitude (model-scale sweeps).
func writeSVGs(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, f := range res.Figures {
		opts := plot.DefaultOptions()
		if min, max, ok := f.XRange(); ok && min > 0 && max/min >= 100 {
			opts.LogX = true
		}
		name := fmt.Sprintf("%s_%d.svg", res.ID, i+1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(plot.SVG(f, opts)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}
