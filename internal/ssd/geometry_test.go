package ssd

import (
	"testing"

	"repro/internal/approx"
	"testing/quick"

	"repro/internal/nand"
)

func testGeo() Geometry {
	return Geometry{
		Channels:       2,
		DiesPerChannel: 2,
		PlanesPerDie:   2,
		BlocksPerPlane: 8,
		PagesPerBlock:  4,
		PageSize:       16384,
	}
}

func TestGeometryCounts(t *testing.T) {
	g := testGeo()
	if g.Planes() != 8 || g.Dies() != 4 {
		t.Fatalf("planes=%d dies=%d", g.Planes(), g.Dies())
	}
	if g.BlocksTotal() != 64 {
		t.Fatalf("blocks=%d", g.BlocksTotal())
	}
	if g.TotalPages() != 256 {
		t.Fatalf("pages=%d", g.TotalPages())
	}
	if g.TotalBytes() != 256*16384 {
		t.Fatalf("bytes=%d", g.TotalBytes())
	}
}

func TestGeometryLinearRoundTrip(t *testing.T) {
	g := testGeo()
	for lin := int64(0); lin < g.TotalPages(); lin++ {
		p := g.FromLinear(lin)
		if !g.Contains(p) {
			t.Fatalf("FromLinear(%d) = %v outside geometry", lin, p)
		}
		if back := g.Linear(p); back != lin {
			t.Fatalf("Linear(FromLinear(%d)) = %d", lin, back)
		}
	}
}

func TestGeometryPlaneLocRoundTrip(t *testing.T) {
	g := testGeo()
	for idx := 0; idx < g.Planes(); idx++ {
		ch, die, pl := g.PlaneLoc(idx)
		if g.PlaneIndex(ch, die, pl) != idx {
			t.Fatalf("PlaneLoc(%d) = (%d,%d,%d) does not round-trip", idx, ch, die, pl)
		}
	}
}

// Property: Linear is a bijection for arbitrary geometries.
func TestGeometryBijectionProperty(t *testing.T) {
	f := func(c, d, p, b, pg uint8, seed uint16) bool {
		g := Geometry{
			Channels:       int(c%4) + 1,
			DiesPerChannel: int(d%4) + 1,
			PlanesPerDie:   int(p%4) + 1,
			BlocksPerPlane: int(b%8) + 1,
			PagesPerBlock:  int(pg%8) + 1,
			PageSize:       4096,
		}
		lin := int64(seed) % g.TotalPages()
		return g.Linear(g.FromLinear(lin)) == lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryOf(t *testing.T) {
	n := nand.ParamsFor(nand.TLC)
	g := GeometryOf(8, 4, n)
	if g.Channels != 8 || g.DiesPerChannel != 4 || g.PlanesPerDie != n.PlanesPerDie {
		t.Fatalf("geometry %+v", g)
	}
	if g.PageSize != n.PageSize {
		t.Fatal("page size not propagated")
	}
}

func TestPPAString(t *testing.T) {
	p := PPA{Channel: 1, Die: 2}
	p.Plane = 3
	p.Block = 4
	p.Page = 5
	if p.String() != "ch1/die2/pl3/blk4/pg5" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestConfigDefaultsValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Geometry().Planes() != 128 {
		t.Fatalf("default planes = %d, want 128", cfg.Geometry().Planes())
	}
	if lp := cfg.LogicalPages(); lp <= 0 || lp >= cfg.Geometry().TotalPages() {
		t.Fatalf("logical pages = %d", lp)
	}
	if cfg.LogicalBytes() != cfg.LogicalPages()*int64(cfg.Nand.PageSize) {
		t.Fatal("LogicalBytes inconsistent")
	}
}

func TestConfigBandwidthCeilings(t *testing.T) {
	cfg := DefaultConfig()
	// TLC: 16KiB/65us ≈ 252 MB/s per plane × 128 planes ≈ 32 GB/s read;
	// 16KiB/300us ≈ 54.6 MB/s × 128 ≈ 7 GB/s program.
	read := cfg.InternalReadMBps()
	if read < 30_000 || read > 35_000 {
		t.Fatalf("internal read = %.0f MB/s", read)
	}
	prog := cfg.InternalProgramMBps()
	if prog < 6_500 || prog > 7_500 {
		t.Fatalf("internal program = %.0f MB/s", prog)
	}
	if ch := cfg.ChannelMBps(); !approx.Equal(float64(ch), 9600) {
		t.Fatalf("channel aggregate = %.0f", ch)
	}
	// The structural asymmetry the paper exploits must hold:
	// internal read bw > channel bw > any external link.
	if !(read > cfg.ChannelMBps()) {
		t.Fatal("internal read bandwidth should exceed channel bandwidth")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.DiesPerChannel = 0 },
		func(c *Config) { c.OverProvision = 1.0 },
		func(c *Config) { c.OverProvision = -0.1 },
		func(c *Config) { c.GCLowWater = 0 },
		func(c *Config) { c.GCHighWater = 1; c.GCLowWater = 2 },
		func(c *Config) { c.GCHighWater = c.Nand.BlocksPerPlane },
		func(c *Config) { c.CachePages = 0 },
		func(c *Config) { c.CmdLatency = -1 },
		func(c *Config) { c.Nand.PageSize = 0 },
	}
	for i, m := range muts {
		cfg := DefaultConfig()
		m(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
