// Package invariant is the simulator's self-audit layer: a registry of
// machine-checkable properties every system model must satisfy on every
// configuration. Three families of checks live here:
//
//   - per-report properties (this file and properties.go): conservation of
//     bytes across each resource, the roofline sandwich
//     floor ≤ simulated ≤ k·floor, and structural report sanity. These run
//     on a single (config, report) pair and are cheap enough to enable on
//     every experiment run (see experiments.Options.CheckInvariants).
//   - metamorphic properties (metamorphic.go): relations between *runs* —
//     determinism under re-execution, monotonicity under added hardware
//     resources or grown models. These need extra simulations and run from
//     the test suite.
//   - the seeded config generator (configs.go): Configs(seed, n) yields
//     hundreds of feasible configurations so `go test ./internal/invariant`
//     sweeps the property set across the design space rather than a
//     handful of hand-picked points.
//
// Systems are keyed by their constructor names — the strings
// core.NewSystem accepts — not by Report.System display names.
package invariant

import (
	"fmt"

	"repro/internal/core"
)

// Constructor-name keys for the five systems (see core.NewSystem).
const (
	OptimStore  = "optimstore"
	HostOffload = "hostoffload"
	Interleaved = "interleaved"
	CtrlISP     = "ctrlisp"
	GPUResident = "gpuresident"
)

// SystemNames lists the auditable systems in core's presentation order.
func SystemNames() []string {
	return []string{GPUResident, HostOffload, Interleaved, CtrlISP, OptimStore}
}

// Property is one checkable invariant. Check returns nil when the report
// satisfies the property for the given system and configuration, or a
// descriptive error naming what was violated and by how much.
type Property struct {
	// Name identifies the property in violation messages, e.g.
	// "pcie-conservation".
	Name string
	// Systems restricts the property to the listed constructor names; nil
	// means it applies to every system.
	Systems []string
	// Check evaluates the property. system is the constructor name the
	// report was produced under.
	Check func(system string, cfg core.Config, r *core.Report) error
}

func (p Property) appliesTo(system string) bool {
	if len(p.Systems) == 0 {
		return true
	}
	for _, s := range p.Systems {
		if s == system {
			return true
		}
	}
	return false
}

// registry holds the built-in properties, populated by properties.go.
// Order is deterministic: violations always report in registration order.
var registry []Property

// Register adds a property to the registry. Built-in properties register
// at init; tests may add scoped properties of their own.
func Register(p Property) {
	if p.Name == "" || p.Check == nil {
		panic("invariant: property needs a name and a check")
	}
	//simlint:allow globalstate registration-time registry append; properties.go registers at init, tests before running
	registry = append(registry, p)
}

// Properties returns the registered properties that apply to system, in
// registration order.
func Properties(system string) []Property {
	var out []Property
	for _, p := range registry {
		if p.appliesTo(system) {
			out = append(out, p)
		}
	}
	return out
}

// Check runs every applicable property against one (config, report) pair
// and returns the violations as human-readable strings, each prefixed with
// the property name. A nil return means the report is clean.
func Check(system string, cfg core.Config, r *core.Report) []string {
	var violations []string
	for _, p := range registry {
		if !p.appliesTo(system) {
			continue
		}
		if err := p.Check(system, cfg, r); err != nil {
			violations = append(violations, fmt.Sprintf("%s: %v", p.Name, err))
		}
	}
	return violations
}

// Audit runs Check and records the violations on the report itself
// (Report.Violations), so downstream consumers — run summaries, sweep
// tables — can surface them. It returns the violations for convenience.
func Audit(system string, cfg core.Config, r *core.Report) []string {
	v := Check(system, cfg, r)
	r.Violations = append(r.Violations, v...)
	return v
}
