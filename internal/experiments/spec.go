package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/runner"
	"repro/internal/stats"
)

// This file defines the declarative experiment schema (DESIGN.md §12).
// An experiment is data: the axes to sweep, the systems to run at every
// grid cell, an optional per-cell derived computation, and the tables and
// figures to assemble from the completed grid. One generic executor
// (exec.go) expands the axes into (cell, system) simulation points, fans
// them across the worker pool, and renders the declared output — replacing
// the hand-coded run function every experiment used to be.

// AxisValue is one setting of a sweep axis: a config mutation plus the
// labels figures and tables use for it.
type AxisValue struct {
	// Label names the value in human-readable output.
	Label string
	// X is the value's numeric coordinate on figure x-axes.
	X float64
	// Apply mutates the cell's configuration; nil applies nothing.
	Apply func(*core.Config)
	// Meta carries the underlying typed value (a dnn.Model, an optim.Kind,
	// ...) for row builders that need more than the label.
	Meta any
}

// Axis is one sweep dimension. Axes are crossed in declaration order with
// the first axis outermost, matching the loop nesting of the hand-coded
// experiments this schema replaced.
type Axis struct {
	Name   string
	Values []AxisValue
}

// Cell is one point of the expanded grid: the resolved axis values, the
// configuration they produce, and the results computed there.
type Cell struct {
	// Index is the cell's row-major position in the grid.
	Index int
	// Coord holds the per-axis value indices (len == number of axes).
	Coord []int
	// Values holds the resolved axis values (len == number of axes).
	Values []AxisValue
	// Cfg is the cell's configuration after Base and every Apply.
	Cfg core.Config
	// Reports holds one report per spec system, in spec order. Empty when
	// the spec runs no systems.
	Reports []*core.Report
	// Aux is whatever the spec's Derive hook computed for this cell.
	Aux any
}

// Report returns the cell's report for the i-th spec system.
func (c *Cell) Report(i int) *core.Report { return c.Reports[i] }

// Grid is the fully evaluated experiment: every cell with its reports and
// derived values, in row-major axis order.
type Grid struct {
	Axes    []Axis
	Systems []string
	Cells   []*Cell
}

// AllReports flattens every cell's reports in grid-then-system order —
// the order a nested "for each point, for each system" loop produces.
func (g *Grid) AllReports() []*core.Report {
	var out []*core.Report
	for _, c := range g.Cells {
		out = append(out, c.Reports...)
	}
	return out
}

// TableSpec declares one output table: either a header plus a per-cell
// row builder, or a Build function for the shared report/energy table
// renderers and other whole-grid shapes.
type TableSpec struct {
	Title  string
	Header []string
	// Rows returns the rows one cell contributes (usually one; one per
	// report for per-system tables). Called for every cell in grid order.
	Rows func(Options, *Grid, *Cell) [][]any
	// Build renders the whole table at once; it overrides Title/Header/Rows.
	Build func(Options, *Grid) *stats.Table
}

// SeriesSpec declares one figure series: a name and a per-cell point.
// ok=false skips the cell (infeasible systems, missing values).
type SeriesSpec struct {
	Name  string
	Point func(Options, *Grid, *Cell) (x, y float64, ok bool)
}

// GroupedSeriesSpec is a series template replicated per value of a
// FigureSpec's GroupBy axis (e.g. one "%d MHz" line per clock setting).
type GroupedSeriesSpec struct {
	Name  func(AxisValue) string
	Point func(Options, *Grid, *Cell) (x, y float64, ok bool)
}

// FigureSpec declares one output figure. Either Series (static lines fed
// by every cell) or GroupBy+Grouped (templates replicated per axis value,
// fed only by that value's cells) is set.
type FigureSpec struct {
	Title  string
	XLabel string
	YLabel string

	Series []SeriesSpec

	// GroupBy names an axis; Grouped templates are instantiated once per
	// value of it, in axis order, and receive only matching cells.
	GroupBy string
	Grouped []GroupedSeriesSpec
}

// Spec is one declarative experiment.
type Spec struct {
	ID    string
	Title string

	// Custom short-circuits the executor for experiments that are not
	// grid-shaped (bespoke device-level measurements, fault storms). A
	// spec sets either Custom or the declarative fields, never both.
	Custom func(Options) (*Result, error)

	// Axes returns the sweep dimensions for the options (quick mode
	// typically thins the value lists). Nil or empty means a single cell.
	Axes func(Options) []Axis
	// Systems are run at every cell, in order. Empty runs none (Derive
	// carries the computation instead).
	Systems []string
	// Base returns the starting configuration of every cell before axis
	// values apply. Nil uses baseConfig(opts, dnn.GPT13B()).
	Base func(Options) core.Config
	// Derive computes a per-cell auxiliary value (an endurance report, a
	// layout fraction, a cluster report) into Cell.Aux. Nil skips it.
	Derive func(Options, *Cell) (any, error)

	Tables  []TableSpec
	Figures []FigureSpec
}

// run executes the spec: Custom when set, the generic executor otherwise.
func (s *Spec) run(opts Options) (*Result, error) {
	if s.Custom != nil {
		return s.Custom(opts)
	}
	return execute(s, opts)
}

// execute expands a declarative spec into its grid, fans every (cell,
// system) simulation and every Derive across the worker pool, and renders
// the declared tables and figures. All outputs are deterministic, so the
// fan-out granularity never changes a byte of the result.
func execute(s *Spec, opts Options) (*Result, error) {
	grid, err := expand(s, opts)
	if err != nil {
		return nil, err
	}
	if err := evaluate(s, opts, grid); err != nil {
		return nil, err
	}
	return render(s, opts, grid)
}

// expand builds the grid cells: the cross-product of the axes in
// declaration order (first axis outermost) with each cell's configuration
// assembled from Base plus every axis value's Apply.
func expand(s *Spec, opts Options) (*Grid, error) {
	var axes []Axis
	if s.Axes != nil {
		axes = s.Axes(opts)
	}
	for _, a := range axes {
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("axis %q has no values", a.Name)
		}
	}
	total := 1
	for _, a := range axes {
		total *= len(a.Values)
	}
	g := &Grid{Axes: axes, Systems: s.Systems, Cells: make([]*Cell, 0, total)}
	coord := make([]int, len(axes))
	for i := 0; i < total; i++ {
		c := &Cell{
			Index:  i,
			Coord:  append([]int(nil), coord...),
			Values: make([]AxisValue, len(axes)),
		}
		if s.Base != nil {
			c.Cfg = s.Base(opts)
		} else {
			c.Cfg = defaultBase(opts)
		}
		for ai, a := range axes {
			v := a.Values[coord[ai]]
			c.Values[ai] = v
			if v.Apply != nil {
				v.Apply(&c.Cfg)
			}
		}
		g.Cells = append(g.Cells, c)
		// Row-major increment: last axis fastest.
		for ai := len(axes) - 1; ai >= 0; ai-- {
			coord[ai]++
			if coord[ai] < len(axes[ai].Values) {
				break
			}
			coord[ai] = 0
		}
	}
	return g, nil
}

// evaluate runs every (cell, system) point and every Derive hook across
// one flat worker pool and stores the results back on the cells.
type cellJob struct {
	report *core.Report
	aux    any
}

func evaluate(s *Spec, opts Options, g *Grid) error {
	type slot struct {
		cell   *Cell
		system int // report index, or -1 for the Derive job
	}
	var slots []slot
	var jobs []runner.Job[cellJob]
	for _, c := range g.Cells {
		c := c
		c.Reports = make([]*core.Report, len(g.Systems))
		for si, name := range g.Systems {
			si, name := si, name
			slots = append(slots, slot{c, si})
			jobs = append(jobs, func() (cellJob, error) {
				r, err := runSystem(opts, name, c.Cfg)
				return cellJob{report: r}, err
			})
		}
		if s.Derive != nil {
			slots = append(slots, slot{c, -1})
			jobs = append(jobs, func() (cellJob, error) {
				aux, err := s.Derive(opts, c)
				return cellJob{aux: aux}, err
			})
		}
	}
	results := runner.Run(opts.Parallel, jobs)
	if err := runner.FirstErr(results); err != nil {
		return err
	}
	for i, r := range results {
		if slots[i].system < 0 {
			slots[i].cell.Aux = r.Value.aux
		} else {
			slots[i].cell.Reports[slots[i].system] = r.Value.report
		}
	}
	return nil
}

// runSystem runs one system on one configuration, auditing the report
// against the physical-invariant registry when the options ask for it —
// the same contract runSystems gives the custom experiments.
func runSystem(opts Options, name string, cfg core.Config) (*core.Report, error) {
	sys, err := core.NewSystem(name, cfg)
	if err != nil {
		return nil, err
	}
	r, err := sys.Run()
	if err != nil {
		return nil, err
	}
	if opts.CheckInvariants {
		if v := invariant.Audit(name, cfg, r); len(v) > 0 {
			return r, fmt.Errorf("system %s violates invariants: %s", name, joinViolations(v))
		}
	}
	return r, nil
}

// render assembles the declared tables and figures from the evaluated grid.
func render(s *Spec, opts Options, g *Grid) (*Result, error) {
	res := &Result{}
	for _, ts := range s.Tables {
		if ts.Build != nil {
			res.Tables = append(res.Tables, ts.Build(opts, g))
			continue
		}
		t := stats.NewTable(ts.Title, ts.Header...)
		for _, c := range g.Cells {
			for _, row := range ts.Rows(opts, g, c) {
				t.AddRow(row...)
			}
		}
		res.Tables = append(res.Tables, t)
	}
	for _, fs := range s.Figures {
		fig, err := renderFigure(fs, opts, g)
		if err != nil {
			return nil, err
		}
		res.Figures = append(res.Figures, fig)
	}
	return res, nil
}

// renderFigure materialises one figure spec: static series fed cell-major,
// or grouped templates instantiated per GroupBy-axis value.
func renderFigure(fs FigureSpec, opts Options, g *Grid) (*stats.Figure, error) {
	fig := stats.NewFigure(fs.Title, fs.XLabel, fs.YLabel)
	if fs.GroupBy == "" {
		series := make([]*stats.Series, len(fs.Series))
		for i, ss := range fs.Series {
			series[i] = fig.AddSeries(ss.Name)
		}
		for _, c := range g.Cells {
			for i, ss := range fs.Series {
				if x, y, ok := ss.Point(opts, g, c); ok {
					series[i].Add(x, y)
				}
			}
		}
		return fig, nil
	}
	axis := -1
	for ai, a := range g.Axes {
		if a.Name == fs.GroupBy {
			axis = ai
		}
	}
	if axis < 0 {
		return nil, fmt.Errorf("figure %q groups by unknown axis %q", fs.Title, fs.GroupBy)
	}
	for vi, v := range g.Axes[axis].Values {
		series := make([]*stats.Series, len(fs.Grouped))
		for i, gs := range fs.Grouped {
			series[i] = fig.AddSeries(gs.Name(v))
		}
		for _, c := range g.Cells {
			if c.Coord[axis] != vi {
				continue
			}
			for i, gs := range fs.Grouped {
				if x, y, ok := gs.Point(opts, g, c); ok {
					series[i].Add(x, y)
				}
			}
		}
	}
	return fig, nil
}
