package sim

import "fmt"

// Preemptible is a capacity-1 server whose low-priority occupant can be
// suspended by high-priority requests — the model for NAND program/erase
// suspend: a page read (tens of µs) preempts an in-flight program
// (hundreds of µs), which then resumes where it left off plus a resume
// overhead.
//
// Scheduling rules:
//   - high-priority requests run ahead of every queued low-priority one,
//     and suspend the current occupant if it is low-priority;
//   - a suspended occupant resumes (remaining time + ResumeOverhead) once
//     no high-priority work is pending;
//   - high-priority work never preempts high-priority work.
type Preemptible struct {
	eng  *Engine
	name string

	// ResumeOverhead is added to the remaining time of a suspended
	// operation each time it resumes.
	ResumeOverhead Time

	busy      bool
	curLowPri bool
	curEnd    *Event
	curDone   func()
	curFinish Time

	suspended *suspendedOp
	hiQueue   []*pendingOp
	loQueue   []*pendingOp

	preemptions uint64
	busyTime    Time
	curStart    Time
}

type pendingOp struct {
	d      Time
	done   func()
	lowPri bool
}

type suspendedOp struct {
	remaining Time
	done      func()
}

// NewPreemptible builds the resource.
func NewPreemptible(eng *Engine, name string, resumeOverhead Time) *Preemptible {
	if resumeOverhead < 0 {
		panic(fmt.Sprintf("sim: resume overhead %d", resumeOverhead))
	}
	return &Preemptible{eng: eng, name: name, ResumeOverhead: resumeOverhead}
}

// Preemptions returns how many suspends occurred.
func (p *Preemptible) Preemptions() uint64 { return p.preemptions }

// Busy reports whether an operation is executing right now.
func (p *Preemptible) Busy() bool { return p.busy }

// Use runs a preemptible (low-priority) operation of duration d, then done.
func (p *Preemptible) Use(d Time, done func()) {
	p.submit(&pendingOp{d: d, done: done, lowPri: true})
}

// UsePriority runs a high-priority operation of duration d, suspending the
// current low-priority occupant if necessary, then done.
func (p *Preemptible) UsePriority(d Time, done func()) {
	p.submit(&pendingOp{d: d, done: done, lowPri: false})
}

func (p *Preemptible) submit(op *pendingOp) {
	if !op.lowPri && p.busy && p.curLowPri {
		p.suspendCurrent()
	}
	if p.busy {
		if op.lowPri {
			p.loQueue = append(p.loQueue, op)
		} else {
			p.hiQueue = append(p.hiQueue, op)
		}
		return
	}
	p.start(op.d, op.done, op.lowPri)
}

func (p *Preemptible) suspendCurrent() {
	remaining := p.curFinish - p.eng.Now()
	if remaining < 0 {
		remaining = 0
	}
	p.busyTime += p.eng.Now() - p.curStart
	p.eng.Cancel(p.curEnd)
	p.suspended = &suspendedOp{remaining: remaining, done: p.curDone}
	p.preemptions++
	p.busy = false
	p.curEnd = nil
	p.curDone = nil
}

func (p *Preemptible) start(d Time, done func(), lowPri bool) {
	p.busy = true
	p.curLowPri = lowPri
	p.curDone = done
	p.curStart = p.eng.Now()
	p.curFinish = p.eng.Now() + d
	p.curEnd = p.eng.Schedule(d, func() {
		p.busy = false
		p.curEnd = nil
		p.curDone = nil
		p.busyTime += p.eng.Now() - p.curStart
		if done != nil {
			done()
		}
		p.dispatch()
	})
}

// dispatch picks the next work item: high-priority queue, then the
// suspended operation, then the low-priority queue.
func (p *Preemptible) dispatch() {
	if p.busy {
		return
	}
	if len(p.hiQueue) > 0 {
		op := p.hiQueue[0]
		p.hiQueue = p.hiQueue[1:]
		p.start(op.d, op.done, false)
		return
	}
	if s := p.suspended; s != nil {
		p.suspended = nil
		p.start(s.remaining+p.ResumeOverhead, s.done, true)
		return
	}
	if len(p.loQueue) > 0 {
		op := p.loQueue[0]
		p.loQueue = p.loQueue[1:]
		p.start(op.d, op.done, true)
	}
}

// Utilization returns the busy fraction since simulation start.
func (p *Preemptible) Utilization() float64 {
	now := p.eng.Now()
	if now == 0 {
		return 0
	}
	total := p.busyTime
	if p.busy {
		total += now - p.curStart
	}
	return float64(total) / float64(now)
}
