// Package sim implements a deterministic discrete-event simulation kernel.
//
// All timing models in this repository (NAND dies, channel buses, PCIe
// links, on-die processing units) are built on this engine. Time is a
// simple int64 nanosecond counter; events are closures ordered by
// (time, insertion sequence), which makes every run bit-for-bit
// reproducible regardless of map iteration order or goroutine scheduling —
// the engine is strictly single-threaded.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Common durations, as multiples of the base nanosecond tick.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Scale multiplies the duration by a dimensionless factor (extrapolation
// ratios, overlap fractions), rounding half away from zero back to whole
// nanoseconds. Rounding rather than truncating keeps scaling symmetric
// around zero and centres the extrapolation error at zero instead of
// biasing every scaled duration short by up to a nanosecond.
func (t Time) Scale(k float64) Time { return Time(math.Round(float64(t) * k)) }

// Micros converts a simulated duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a simulated duration to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, for reports and tests.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Tracer observes engine and resource activity. The engine holds at most
// one; every hook is guarded by a nil check so the disabled state costs a
// single branch and zero allocations on the hot paths. Implementations
// must be deterministic functions of their inputs — trace output is held
// to the same byte-for-byte reproducibility bar as every other simulator
// output (internal/tracing provides the standard recorder and sinks).
type Tracer interface {
	// Span records a completed interval [start, end] on a named track
	// (resource hold times, model phase spans).
	Span(track, name string, start, end Time)
	// Instant records a point event (engine event fired/cancelled).
	Instant(track, name string, at Time)
	// Counter records a sampled value at a point in time (queue depths,
	// units in use).
	Counter(track, name string, at Time, value float64)
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// At reports the simulated time this event will fire at.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	fired   uint64
	stopped bool
	trace   Tracer
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// SetTracer installs (or, with nil, removes) the engine's tracer. Install
// it before scheduling work: events and resource activity are only
// observed from the moment the tracer is present.
func (e *Engine) SetTracer(t Tracer) { e.trace = t }

// Tracer returns the installed tracer, or nil when tracing is disabled.
// Model code emitting phase spans guards on this exactly like the engine
// does internally.
func (e *Engine) Tracer() Tracer { return e.trace }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far. Useful for
// detecting runaway simulations in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run delay nanoseconds after the current
// simulated time. A negative delay panics: time travel indicates a model
// bug and must not be silently clamped. A zero delay is legal and fires
// after all events already scheduled for the current instant.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d at t=%d", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t, which must not be
// in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a harmless no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	if e.trace != nil {
		e.trace.Instant("engine", "cancel", e.now)
	}
}

// Step executes the single earliest pending event and advances the clock to
// its timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	if e.trace != nil {
		e.trace.Instant("engine", "fire", ev.at)
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called, and returns
// the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. The clock advances to the deadline
// only when the loop exhausted the work before it — the queue drained or
// only later events remain; after a Stop the clock stays at the stopping
// event's timestamp, so the returned time reports where the simulation
// actually halted rather than silently jumping to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. Pending events are preserved.
func (e *Engine) Stop() { e.stopped = true }
