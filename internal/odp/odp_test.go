package odp

import (
	"testing"

	"repro/internal/approx"
	"testing/quick"

	"repro/internal/sim"
)

func TestCyclesFor(t *testing.T) {
	p := Params{ClockMHz: 400, Lanes: 8, BufferKB: 64}
	if c := p.CyclesFor(8, 1); c != 1 {
		t.Fatalf("8 elems × 1 flop on 8 lanes = %d cycles, want 1", c)
	}
	if c := p.CyclesFor(9, 1); c != 2 {
		t.Fatalf("9 elems: %d cycles, want 2 (ceil)", c)
	}
	if c := p.CyclesFor(4096, 13); c != (4096*13+7)/8 {
		t.Fatalf("adam page: %d cycles", c)
	}
}

func TestComputeTime(t *testing.T) {
	p := Params{ClockMHz: 1000, Lanes: 1, BufferKB: 1} // 1 cycle = 1ns
	if got := p.ComputeTime(100, 1); got != 100 {
		t.Fatalf("100 cycles at 1GHz = %v, want 100ns", got)
	}
	p400 := Params{ClockMHz: 400, Lanes: 8, BufferKB: 64}
	// 4096 elems × 13 flops / 8 lanes = 6656 cycles at 2.5ns = 16640ns.
	if got := p400.ComputeTime(4096, 13); got != 16640 {
		t.Fatalf("adam page compute = %v, want 16640ns", got)
	}
	if p.ComputeTime(0, 1) != 0 {
		t.Fatal("zero elements should take zero time")
	}
}

func TestThroughput(t *testing.T) {
	p := DefaultParams() // 400MHz × 8 lanes
	// 13-flop Adam kernel: 400e6·8/13 ≈ 246M elems/s.
	got := p.ThroughputElemsPerSec(13)
	want := 400e6 * 8 / 13
	if !approx.Equal(got, want) {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
	if !approx.Equal(p.ThroughputElemsPerSec(0), 0) {
		t.Fatal("zero-flop kernel throughput should be 0")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{
		{ClockMHz: 0, Lanes: 8, BufferKB: 64},
		{ClockMHz: 400, Lanes: 0, BufferKB: 64},
		{ClockMHz: 400, Lanes: 8, BufferKB: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestUnitSerializes(t *testing.T) {
	e := sim.NewEngine()
	u := NewUnit(e, "die0", Params{ClockMHz: 1000, Lanes: 1, BufferKB: 1})
	var ends []sim.Time
	u.Exec(100, 1, func() { ends = append(ends, e.Now()) })
	u.Exec(100, 1, func() { ends = append(ends, e.Now()) })
	e.Run()
	if ends[0] != 100 || ends[1] != 200 {
		t.Fatalf("ends = %v, want [100 200]", ends)
	}
	if u.Flops() != 200 || u.Elems() != 200 || u.Execs() != 2 {
		t.Fatalf("counters: flops=%d elems=%d execs=%d", u.Flops(), u.Elems(), u.Execs())
	}
}

func TestUnitBadArgsPanic(t *testing.T) {
	e := sim.NewEngine()
	u := NewUnit(e, "d", DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero flopsPerElem")
		}
	}()
	u.Exec(10, 0, nil)
}

func TestNewUnitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid params")
		}
	}()
	NewUnit(sim.NewEngine(), "bad", Params{})
}

func TestUnitUtilization(t *testing.T) {
	e := sim.NewEngine()
	u := NewUnit(e, "d", Params{ClockMHz: 1000, Lanes: 1, BufferKB: 1})
	u.Exec(50, 1, nil)
	e.Schedule(100, func() {}) // idle second half
	e.Run()
	if util := u.Utilization(); util < 0.49 || util > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", util)
	}
	if u.Params().Lanes != 1 {
		t.Fatal("Params accessor")
	}
}

// Property: compute time scales (weakly) monotonically with work.
func TestComputeTimeMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint16, flops uint8) bool {
		fl := int(flops%20) + 1
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.ComputeTime(lo, fl) <= p.ComputeTime(hi, fl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	base := CostFor(DefaultParams())
	if base.AreaMM2 <= 0 || base.StaticMW <= 0 || base.DynamicPJ <= 0 {
		t.Fatalf("cost = %+v", base)
	}
	// The unit must be a small fraction of a NAND die — the design is not
	// credible otherwise.
	if base.DieAreaPct > 5 {
		t.Fatalf("ODP unit is %.1f%% of a die; design point not credible", base.DieAreaPct)
	}
	// More lanes cost more area and power.
	wide := DefaultParams()
	wide.Lanes *= 4
	wc := CostFor(wide)
	if wc.AreaMM2 <= base.AreaMM2 || wc.StaticMW <= base.StaticMW {
		t.Fatal("cost not monotone in lanes")
	}
	// Buffer grows the SRAM share.
	bigBuf := DefaultParams()
	bigBuf.BufferKB *= 2
	if CostFor(bigBuf).BufferMM2 <= base.BufferMM2 {
		t.Fatal("buffer area not monotone")
	}
	if OpEnergyPJ() <= 0 {
		t.Fatal("op energy")
	}
}
