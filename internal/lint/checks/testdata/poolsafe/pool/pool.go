// Package pool is the provider side of the poolsafe testdata tree: a
// freelist-pooled object with a function release and a method release.
package pool

// Obj is a pooled object; handles die at the release call.
//
//simlint:pooled
type Obj struct {
	ID int
}

var free []*Obj

// Get returns a recycled or fresh Obj.
func Get() *Obj {
	if n := len(free); n > 0 {
		o := free[n-1]
		free = free[:n-1]
		return o
	}
	return &Obj{}
}

// Put recycles o; the caller's handle is dead afterwards.
//
//simlint:release
func Put(o *Obj) {
	o.ID = 0
	free = append(free, o)
}

// Release recycles its receiver, the method-shaped release.
//
//simlint:release
func (o *Obj) Release() {
	Put(o)
}
