package core

import (
	"testing"

	"repro/internal/optim"
	"repro/internal/trace"
)

// elementWiseKinds returns every optimizer kind the paged-equivalence claim
// covers — all of them except LAMB, whose trust ratio couples a whole layer.
func elementWiseKinds() []optim.Kind {
	var kinds []optim.Kind
	for _, k := range optim.Kinds() {
		if k != optim.LAMB {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// TestPagedEquivalenceTable proves the central functional claim of on-die
// execution for every element-wise optimizer across page geometries,
// including pages that do not divide the parameter count (the last die
// holds a ragged tail page) and degenerate single-element pages.
func TestPagedEquivalenceTable(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		pageElems int
		steps     int
	}{
		{"divisible", 1024, 64, 5},
		{"ragged-tail", 1000, 64, 5},  // 1000 % 64 = 40: last page is partial
		{"prime-sizes", 1017, 97, 4},  // nothing aligns
		{"single-page", 100, 1000, 3}, // whole tensor on one die
		{"one-elem-pages", 129, 1, 3}, // maximal fragmentation
		{"page-boundary+1", 257, 128, 4},
	}
	hp := optim.Hyper{LR: 0.01, WeightDecay: 0.01}
	for _, k := range elementWiseKinds() {
		for _, c := range cases {
			t.Run(k.String()+"/"+c.name, func(t *testing.T) {
				if err := VerifyPagedEquivalence(k, hp, c.n, c.pageElems, c.steps, 7); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestPagedEquivalenceLAMBRejected pins the exact rejection error: the
// timing model charges LAMB a second read pass and a global reduction
// precisely because this verification cannot hold for it. If the message
// changes, the DESIGN.md discussion referencing it must change too.
func TestPagedEquivalenceLAMBRejected(t *testing.T) {
	err := VerifyPagedEquivalence(optim.LAMB, optim.Hyper{LR: 0.01}, 100, 10, 1, 1)
	if err == nil {
		t.Fatal("LAMB accepted")
	}
	const want = "core: LAMB is not element-wise; paged equivalence does not apply"
	if err.Error() != want {
		t.Fatalf("rejection error %q, want %q", err, want)
	}
}

// TestPagedEquivalenceRejectsBadArgs covers the argument guard.
func TestPagedEquivalenceRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ n, pageElems, steps int }{
		{0, 10, 1}, {100, 0, 1}, {100, 10, 0}, {-5, 10, 1},
	} {
		if err := VerifyPagedEquivalence(optim.SGD, optim.Hyper{}, c.n, c.pageElems, c.steps, 1); err == nil {
			t.Fatalf("VerifyPagedEquivalence(n=%d, pageElems=%d, steps=%d) accepted", c.n, c.pageElems, c.steps)
		}
	}
}

// TestAdafactorNotPageDecomposable documents why Adafactor sits outside the
// optim.Kind enum and the paged path entirely: its factored second moment
// normalises by row/column statistics of the whole matrix, so running the
// same algorithm independently on two halves diverges from the monolithic
// update — the same coupling that disqualifies LAMB, in matrix form.
func TestAdafactorNotPageDecomposable(t *testing.T) {
	const rows, cols, steps = 8, 32, 3
	n := rows * cols

	gold := make([]float32, n)
	mono := optim.NewAdafactor(rows, cols, optim.Hyper{LR: 0.01})

	split := make([]float32, n)
	half := optim.NewAdafactor(rows/2, cols, optim.Hyper{LR: 0.01})
	other := optim.NewAdafactor(rows/2, cols, optim.Hyper{LR: 0.01})

	for step := 0; step < steps; step++ {
		g := trace.Gradients(int64(100+step), n)
		mono.Step(gold, g)
		half.Step(split[:n/2], g[:n/2])
		other.Step(split[n/2:], g[n/2:])
	}
	for i := range gold {
		//simlint:allow floateq any bit-level divergence proves the coupling
		if gold[i] != split[i] {
			return // diverged, as the factored statistics dictate
		}
	}
	t.Fatal("row-split Adafactor matched the monolithic update; the factored " +
		"second moment should couple the halves")
}
