package fault

import "repro/internal/sim"

// Costs are the device-wide analytic quantities checkpoint and restore
// accounting is built from. The core layer derives them from the system
// configuration (optimizer-state footprint, link bandwidth, die-internal
// copy bandwidth, full-geometry scan time).
type Costs struct {
	// HostStream is the time to move the full optimizer state over the
	// host link (out for a checkpoint, back in for a restore).
	HostStream sim.Time
	// InStorage is the time to copy the full optimizer state die-
	// internally (ODP copyback, all planes in parallel).
	InStorage sim.Time
	// Scan is the full-device metadata scan that replays the durable map
	// after power loss (the OOB scan of ssd.Recover).
	Scan sim.Time
	// Dies is the number of NAND dies; a die failure loses 1/Dies of
	// device-resident state.
	Dies int
}

// CheckpointTime is the cost of taking one checkpoint under the policy.
func (c Costs) CheckpointTime(p Policy) sim.Time {
	switch p {
	case CheckpointInPlace:
		return c.InStorage
	case CheckpointHostPull:
		return c.HostStream
	}
	return 0
}

// RestoreTime is the cost of coming back from one fault of kind k under
// the policy, excluding redone work (the caller prices recomputation from
// the crash position separately).
func (c Costs) RestoreTime(p Policy, k Kind) sim.Time {
	switch k {
	case PowerLoss:
		// Replay the durable map, then re-materialize optimizer state from
		// the checkpoint. Without a device checkpoint the host's master
		// copy streams back over the link.
		switch p {
		case CheckpointInPlace:
			return c.Scan + c.InStorage
		case CheckpointHostPull:
			return c.Scan + c.HostStream
		default:
			return c.Scan + c.HostStream
		}
	case DieFailure:
		// The surviving dies replay locally; the failed die's shard
		// (1/Dies of the state) must come from somewhere off-die.
		if c.Dies <= 0 {
			return c.Scan + c.HostStream
		}
		shard := 1 / float64(c.Dies)
		switch p {
		case CheckpointInPlace:
			// The failed die's checkpoint shard died with it: survivors
			// restore in-storage, the lost shard streams from the host.
			return c.Scan + c.InStorage.Scale(1-shard) + c.HostStream.Scale(shard)
		default:
			// Host-pull checkpoints (and the no-checkpoint fallback) hold
			// the full state off-device; only the lost shard re-streams.
			return c.Scan + c.HostStream.Scale(shard)
		}
	}
	// ECC exhaustion is non-terminal: its cost (retry latency, relocation,
	// retirement WAF) lands organically in the simulated run.
	return 0
}
