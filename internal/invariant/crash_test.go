package invariant

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// crashConfig is the device the crash-point enumerator sweeps: small
// enough that a few hundred full replays run in well under a second,
// churny enough that the boundary stream contains host writes, updates,
// GC relocations, and erases.
func crashConfig() ssd.Config {
	n := nand.ParamsFor(nand.TLC)
	n.BlocksPerPlane = 8
	n.PagesPerBlock = 4
	n.PlanesPerDie = 2
	return ssd.Config{
		Channels:          2,
		DiesPerChannel:    2,
		Nand:              n,
		OverProvision:     0.25,
		GCLowWater:        2,
		GCHighWater:       3,
		HotColdSeparation: true,
		CachePages:        16,
		DRAMPageLatency:   2 * sim.Microsecond,
		CmdLatency:        5 * sim.Microsecond,
	}
}

// TestCrashPointEnumeration is the exhaustive crash-consistency harness:
// one full configuration is replayed with the power cut dead at every
// single FTL op boundary, and after each crash the recovered device must
// satisfy the crash invariants:
//
//   - no live-page loss: every lpa mapped at the crash instant is mapped
//     after replay, to the same physical page;
//   - no resurrection: nothing unmapped at the crash is mapped after;
//   - durability: each recovered mapping points at the exact physical
//     page of the last completed commit (the commit hook's record), so
//     recovered state is bit-identical to the last durable version;
//   - mapped ⊆ programmed and full FTL consistency (checked inside
//     ssd.Recover, re-checked here).
func TestCrashPointEnumeration(t *testing.T) {
	// committed is the durable shadow of the run currently being replayed:
	// lpa → linear PPA of its last completed commit. Rebuilt by build (the
	// enumerator runs strictly one replay at a time).
	var committed map[int64]int64

	build := func(eng *sim.Engine) *ssd.Device {
		dev := ssd.NewDevice(eng, crashConfig())
		committed = make(map[int64]int64)
		dev.SetCommitHook(func(lpa, oldLin, newLin int64, gc bool) {
			committed[lpa] = newLin
		})
		n := dev.Config().LogicalPages() * 3 / 4
		for lpa := int64(0); lpa < n; lpa++ {
			dev.Preload(lpa)
		}
		return dev
	}
	drive := func(dev *ssd.Device) {
		n := dev.Config().LogicalPages() * 3 / 4
		// One in-flight op per lpa, so the last durable version of every
		// page is unambiguous at any crash point.
		for lpa := int64(0); lpa < n; lpa += 2 {
			dev.ProgramUpdate(lpa, nil)
		}
		for lpa := n; lpa < n+16; lpa++ {
			dev.Write(lpa, nil)
		}
	}
	check := func(k int, b ssd.Boundary, crashed, recovered *ssd.Device, info *ssd.RecoveryInfo) error {
		if err := recovered.FTL().CheckConsistent(); err != nil {
			return err
		}
		geo := crashed.Geometry()
		logical := crashed.Config().LogicalPages()
		var mapped int64
		for lpa := int64(0); lpa < logical; lpa++ {
			before, okBefore := crashed.FTL().Lookup(lpa)
			after, okAfter := recovered.FTL().Lookup(lpa)
			switch {
			case okBefore && !okAfter:
				return fmt.Errorf("live page lost: lpa %d mapped at crash, unmapped after replay", lpa)
			case !okBefore && okAfter:
				return fmt.Errorf("resurrection: lpa %d unmapped at crash, mapped after replay", lpa)
			case !okBefore:
				continue
			}
			mapped++
			if before != after {
				return fmt.Errorf("lpa %d moved %v -> %v across recovery", lpa, before, after)
			}
			if lin, ok := committed[lpa]; !ok || lin != geo.Linear(after) {
				return fmt.Errorf("lpa %d recovered to linear %d, last durable commit was %d",
					lpa, geo.Linear(after), lin)
			}
		}
		if mapped != info.MappedPages {
			return fmt.Errorf("recovery reports %d mapped pages, recount %d", info.MappedPages, mapped)
		}
		return nil
	}

	boundaries, err := fault.EnumerateCrashPoints(build, drive, check)
	if err != nil {
		t.Fatal(err)
	}
	if boundaries < 80 {
		t.Fatalf("workload produced only %d op boundaries — not an exhaustive sweep", boundaries)
	}
	t.Logf("crash-consistency invariants held at all %d op boundaries", boundaries)
}

// TestFaultFreeEquivalence is the metamorphic check across generated
// configurations: a faulted run whose entire fault window lies after
// completion produces a report deep-equal to the fault-free run's, for
// every system.
func TestFaultFreeEquivalence(t *testing.T) {
	cfgs := Configs(sweepSeed+17, 5)
	type pair struct {
		sys string
		cfg core.Config
	}
	var jobs []pair
	for _, cfg := range cfgs {
		for _, sys := range SystemNames() {
			jobs = append(jobs, pair{sys, cfg})
		}
	}
	results := runner.Map(0, jobs, func(p pair) (struct{}, error) {
		base, err := Run(p.sys, p.cfg)
		if err != nil {
			return struct{}{}, err
		}
		faulted := p.cfg
		// Simulated windows are milliseconds; 10 s is beyond all of them.
		faulted.Fault = fault.Spec{
			Seed: 13, PowerLossPerSec: 1000, DieFailPerSec: 1000, ECCPerSec: 1000,
			StartMs: 10_000, HorizonMs: 10_100,
		}
		late, err := Run(p.sys, faulted)
		if err != nil {
			return struct{}{}, err
		}
		if !reflect.DeepEqual(base, late) {
			return struct{}{}, fmt.Errorf("late faults perturbed the run:\nbase: %+v\nlate: %+v", base, late)
		}
		return struct{}{}, nil
	})
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("%s: %v\n  cfg: %s", jobs[i].sys, res.Err, describe(jobs[i].cfg))
		}
	}
}

// faultStormConfigs is the seeded 200-config mixed-fault sweep: every
// config gets a per-index fault storm and a cycling checkpoint policy
// (with a fault-free config mixed in every fifth slot).
func faultStormConfigs() []core.Config {
	cfgs := Configs(sweepSeed+23, sweepN)
	policies := []fault.Policy{fault.CheckpointNone, fault.CheckpointInPlace, fault.CheckpointHostPull}
	for i := range cfgs {
		cfgs[i].Checkpoint = policies[i%len(policies)]
		if i%5 == 4 {
			continue // fault-free control point
		}
		cfgs[i].Fault = fault.Spec{
			Seed:            int64(7*i + 1),
			PowerLossPerSec: 2_000,
			DieFailPerSec:   1_000,
			ECCPerSec:       4_000,
			HorizonMs:       5,
		}
	}
	return cfgs
}

// TestFaultSweepDeterminism pins golden determinism for faulted runs: the
// 200-config mixed-fault sweep renders byte-identically across reruns and
// across worker widths (1 vs 8).
func TestFaultSweepDeterminism(t *testing.T) {
	// Both fault-bearing offload pipelines sweep: optimstore (on-die
	// update) and interleaved (host update via subgroup streams) schedule
	// faults against very different event shapes, so determinism of one
	// does not imply the other.
	systems := []string{OptimStore, Interleaved}
	sweep := func(width int) []string {
		cfgs := faultStormConfigs()
		results := runner.Map(width, cfgs, func(cfg core.Config) (string, error) {
			var s string
			for _, sys := range systems {
				r, err := Run(sys, cfg)
				if err != nil {
					return "", fmt.Errorf("%s: %w", sys, err)
				}
				s += fmt.Sprintf("%s: %+v\n", sys, r)
			}
			return s, nil
		})
		out := make([]string, len(results))
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("config %d: %v\n  cfg: %s", i, res.Err, describe(cfgs[i]))
			}
			out[i] = res.Value
		}
		return out
	}
	serial := sweep(1)
	wide := sweep(8)
	rerun := sweep(8)
	var fired int
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("config %d diverges between widths 1 and 8:\n%s\n%s", i, serial[i], wide[i])
		}
		if wide[i] != rerun[i] {
			t.Fatalf("config %d diverges across reruns at width 8:\n%s\n%s", i, wide[i], rerun[i])
		}
	}
	// The sweep must actually exercise faults, not vacuously agree.
	for _, sys := range systems {
		reports := runner.Map(8, faultStormConfigs(), func(cfg core.Config) (*core.Report, error) {
			return Run(sys, cfg)
		})
		for _, res := range reports {
			if res.Err == nil {
				fired += res.Value.PowerLossFaults + res.Value.DieFailFaults + res.Value.ECCFaults
			}
		}
	}
	if fired == 0 {
		t.Fatal("mixed-fault sweep fired no faults at all — storm rates too low for the windows")
	}
}
