package nand

import (
	"testing"

	"repro/internal/approx"
	"testing/quick"

	"repro/internal/sim"
)

func tinyParams() Params {
	p := ParamsFor(TLC)
	p.BlocksPerPlane = 8
	p.PagesPerBlock = 4
	p.PlanesPerDie = 2
	return p
}

func TestParamsPresets(t *testing.T) {
	for _, c := range []CellType{SLC, MLC, TLC, QLC} {
		p := ParamsFor(c)
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
		if p.Cell != c {
			t.Errorf("%v: cell mismatch", c)
		}
	}
	// Latency ordering: SLC fastest, QLC slowest.
	if !(ParamsFor(SLC).ProgramLatency < ParamsFor(TLC).ProgramLatency &&
		ParamsFor(TLC).ProgramLatency < ParamsFor(QLC).ProgramLatency) {
		t.Error("program latency not ordered SLC < TLC < QLC")
	}
	if !(ParamsFor(SLC).PECycles > ParamsFor(TLC).PECycles &&
		ParamsFor(TLC).PECycles > ParamsFor(QLC).PECycles) {
		t.Error("endurance not ordered SLC > TLC > QLC")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.PageSize = 0 },
		func(p *Params) { p.PagesPerBlock = -1 },
		func(p *Params) { p.BlocksPerPlane = 0 },
		func(p *Params) { p.PlanesPerDie = 0 },
		func(p *Params) { p.ReadLatency = 0 },
		func(p *Params) { p.BusMBps = 0 },
		func(p *Params) { p.PECycles = 0 },
	}
	for i, mutate := range bad {
		p := ParamsFor(TLC)
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestTransferTime(t *testing.T) {
	p := ParamsFor(TLC) // 1200 MB/s
	// 16KiB at 1200 MB/s = 16384*1000/1200 ns ≈ 13653 ns.
	got := p.PageTransferTime()
	if got < 13_000 || got > 14_000 {
		t.Fatalf("page transfer = %v", got)
	}
	if p.TransferTime(0) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if p.TransferTime(1) < 1 {
		t.Fatal("positive transfer must take at least 1ns")
	}
}

func TestGeometryHelpers(t *testing.T) {
	p := tinyParams()
	if p.BlockBytes() != int64(p.PageSize*4) {
		t.Fatal("BlockBytes")
	}
	if p.PlaneBytes() != p.BlockBytes()*8 {
		t.Fatal("PlaneBytes")
	}
	if p.DieBytes() != p.PlaneBytes()*2 {
		t.Fatal("DieBytes")
	}
	if p.PagesPerDie() != 4*8*2 {
		t.Fatal("PagesPerDie")
	}
}

func TestCellTypeString(t *testing.T) {
	if SLC.String() != "SLC" || TLC.String() != "TLC" {
		t.Fatal("CellType.String")
	}
	if CellType(99).String() == "" {
		t.Fatal("unknown cell type should still render")
	}
}

func TestDieReadTiming(t *testing.T) {
	e := sim.NewEngine()
	d := NewDie(e, "d", tinyParams())
	var doneAt sim.Time
	d.Read(Addr{0, 0, 0}, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != tinyParams().ReadLatency {
		t.Fatalf("read done at %v, want tR=%v", doneAt, tinyParams().ReadLatency)
	}
	if d.Counts().Reads != 1 {
		t.Fatal("read not counted")
	}
}

func TestDiePlaneSerialization(t *testing.T) {
	e := sim.NewEngine()
	p := tinyParams()
	d := NewDie(e, "d", p)
	var ends []sim.Time
	// Two reads on the same plane serialize; a third on another plane overlaps.
	d.Read(Addr{0, 0, 0}, func() { ends = append(ends, e.Now()) })
	d.Read(Addr{0, 1, 0}, func() { ends = append(ends, e.Now()) })
	d.Read(Addr{1, 0, 0}, func() { ends = append(ends, e.Now()) })
	e.Run()
	tR := p.ReadLatency
	if ends[0] != tR || ends[2] != 2*tR || ends[1] != tR {
		t.Fatalf("ends = %v, want [tR, tR, 2tR] order-of-completion", ends)
	}
}

func TestDieSequentialProgramEnforced(t *testing.T) {
	e := sim.NewEngine()
	d := NewDie(e, "d", tinyParams())
	d.Program(Addr{0, 0, 0}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order program did not panic")
		}
	}()
	d.Program(Addr{0, 0, 2}, nil) // skips page 1
}

func TestDieFullBlockProgramPanics(t *testing.T) {
	e := sim.NewEngine()
	p := tinyParams()
	d := NewDie(e, "d", p)
	for pg := 0; pg < p.PagesPerBlock; pg++ {
		d.Program(Addr{0, 0, pg}, nil)
	}
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("programming a full block did not panic")
		}
	}()
	d.Program(Addr{0, 0, 0}, nil)
}

func TestDieEraseResetsWritePtr(t *testing.T) {
	e := sim.NewEngine()
	p := tinyParams()
	d := NewDie(e, "d", p)
	for pg := 0; pg < p.PagesPerBlock; pg++ {
		d.Program(Addr{0, 0, pg}, nil)
	}
	d.Erase(Addr{Plane: 0, Block: 0}, nil)
	e.Run()
	if d.WritePtr(0, 0) != 0 {
		t.Fatal("erase did not reset write pointer")
	}
	if d.EraseCount(0, 0) != 1 {
		t.Fatal("erase not counted")
	}
	// Reprogramming after erase is legal again.
	d.Program(Addr{0, 0, 0}, nil)
	e.Run()
	if d.WritePtr(0, 0) != 1 {
		t.Fatal("post-erase program did not advance pointer")
	}
}

func TestDieAddressBounds(t *testing.T) {
	e := sim.NewEngine()
	d := NewDie(e, "d", tinyParams())
	for _, a := range []Addr{
		{Plane: 2}, {Block: 99}, {Page: 99}, {Plane: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("address %v accepted", a)
				}
			}()
			d.Read(a, nil)
		}()
	}
}

func TestDieWearAggregates(t *testing.T) {
	e := sim.NewEngine()
	d := NewDie(e, "d", tinyParams())
	d.Erase(Addr{Plane: 0, Block: 0}, nil)
	d.Erase(Addr{Plane: 0, Block: 0}, nil)
	d.Erase(Addr{Plane: 1, Block: 3}, nil)
	e.Run()
	if d.MaxEraseCount() != 2 {
		t.Fatalf("max erase = %d", d.MaxEraseCount())
	}
	if d.TotalEraseCount() != 3 {
		t.Fatalf("total erase = %d", d.TotalEraseCount())
	}
}

func TestChannelBusSerializes(t *testing.T) {
	e := sim.NewEngine()
	p := tinyParams()
	c := NewChannel(e, "ch0", p, 2)
	var ends []sim.Time
	// Array reads on two dies overlap, but their transfers share the bus.
	c.ReadPage(0, Addr{0, 0, 0}, func() { ends = append(ends, e.Now()) })
	c.ReadPage(1, Addr{0, 0, 0}, func() { ends = append(ends, e.Now()) })
	e.Run()
	tR, tx := p.ReadLatency, p.PageTransferTime()
	if ends[0] != tR+tx {
		t.Fatalf("first read at %v, want %v", ends[0], tR+tx)
	}
	if ends[1] != tR+2*tx {
		t.Fatalf("second read at %v, want %v (bus serialized)", ends[1], tR+2*tx)
	}
}

func TestChannelWritePage(t *testing.T) {
	e := sim.NewEngine()
	p := tinyParams()
	c := NewChannel(e, "ch0", p, 1)
	var doneAt sim.Time
	c.WritePage(0, Addr{0, 0, 0}, func() { doneAt = e.Now() })
	e.Run()
	want := p.PageTransferTime() + p.ProgramLatency
	if doneAt != want {
		t.Fatalf("write done at %v, want %v", doneAt, want)
	}
	counts := c.Counts()
	if counts.Programs != 1 || counts.BytesIn != uint64(p.PageSize) {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestChannelAccessors(t *testing.T) {
	e := sim.NewEngine()
	c := NewChannel(e, "ch", tinyParams(), 3)
	if len(c.Dies()) != 3 || c.Die(1) == nil || c.Name() != "ch" {
		t.Fatal("accessors")
	}
	if u := c.BusUtilization(); !approx.Equal(u, 0) {
		t.Fatalf("fresh bus utilization = %v", u)
	}
}

func TestOpCountsAdd(t *testing.T) {
	a := OpCounts{Reads: 1, Programs: 2, Erases: 3, BytesIn: 4, BytesOut: 5}
	b := OpCounts{Reads: 10, Programs: 20, Erases: 30, BytesIn: 40, BytesOut: 50}
	a.Add(b)
	if a.Reads != 11 || a.Programs != 22 || a.Erases != 33 || a.BytesIn != 44 || a.BytesOut != 55 {
		t.Fatalf("Add: %+v", a)
	}
}

func TestWearModelMonotone(t *testing.T) {
	m := DefaultWearModel(TLC)
	prev := -1.0
	for n := 0; n <= 2*m.PECycles; n += 100 {
		r := m.RBER(n)
		if r < prev {
			t.Fatalf("RBER not monotone at %d", n)
		}
		prev = r
	}
	//simlint:allow floateq clamped input must take the identical code path
	if m.RBER(-5) != m.RBER(0) {
		t.Fatal("negative cycles not clamped")
	}
}

func TestWearModelEndOfLife(t *testing.T) {
	for _, c := range []CellType{SLC, MLC, TLC, QLC} {
		m := DefaultWearModel(c)
		if !m.Correctable(0) {
			t.Errorf("%v: fresh block uncorrectable", c)
		}
		uc := m.UsableCycles()
		if uc <= 0 || uc > 4*m.PECycles {
			t.Errorf("%v: usable cycles %d out of range", c, uc)
		}
		// Beyond the usable limit reads must be uncorrectable, unless the
		// cell type never exceeds ECC capability and hit the 4× safety cap.
		if uc < 4*m.PECycles && m.Correctable(uc+1) {
			t.Errorf("%v: correctable beyond usable cycles", c)
		}
	}
}

func TestWearModelLifetime(t *testing.T) {
	m := DefaultWearModel(TLC)
	steps := m.LifetimeSteps(1000, 2.0)
	//simlint:allow unitconv 1000 is the writes-per-step test parameter, not a unit conversion
	want := float64(1000*m.UsableCycles()) / 2.0
	if !approx.Equal(steps, want) {
		t.Fatalf("lifetime = %v, want %v", steps, want)
	}
	if !isInf(m.LifetimeSteps(1000, 0)) {
		t.Fatal("zero erase demand should give infinite lifetime")
	}
}

func isInf(f float64) bool { return f > 1e308 }

// Property: for any in-range address sequence with erases between full
// blocks, programs never panic — i.e. the model accepts every legal
// (sequential) usage pattern.
func TestSequentialProgramAlwaysLegalProperty(t *testing.T) {
	f := func(blockSeed uint8, rounds uint8) bool {
		e := sim.NewEngine()
		p := tinyParams()
		d := NewDie(e, "d", p)
		blk := int(blockSeed) % p.BlocksPerPlane
		for r := 0; r < int(rounds%8)+1; r++ {
			for pg := 0; pg < p.PagesPerBlock; pg++ {
				d.Program(Addr{0, blk, pg}, nil)
			}
			d.Erase(Addr{Plane: 0, Block: blk}, nil)
		}
		e.Run()
		return d.WritePtr(0, blk) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Plane: 1, Block: 2, Page: 3}
	if a.String() != "pl1/blk2/pg3" {
		t.Fatalf("String = %q", a.String())
	}
	if a.BlockAddr().Page != 0 {
		t.Fatal("BlockAddr should zero the page")
	}
}

func TestReadSuspendPreemptsProgram(t *testing.T) {
	p := tinyParams()
	p.ReadSuspend = true
	p.ResumeOverhead = 5 * sim.Microsecond
	e := sim.NewEngine()
	d := NewDie(e, "d", p)
	var progAt, readAt sim.Time
	d.Program(Addr{0, 0, 0}, func() { progAt = e.Now() })
	e.Schedule(50*sim.Microsecond, func() {
		d.Read(Addr{0, 1, 0}, func() { readAt = e.Now() })
	})
	e.Run()
	// The read lands mid-program and completes after just tR.
	if want := 50*sim.Microsecond + p.ReadLatency; readAt != want {
		t.Fatalf("read at %v, want %v (suspend)", readAt, want)
	}
	// The program pays the read plus the resume overhead.
	if want := p.ProgramLatency + p.ReadLatency + p.ResumeOverhead; progAt != want {
		t.Fatalf("program at %v, want %v", progAt, want)
	}
	if d.Preemptions() != 1 {
		t.Fatalf("preemptions = %d", d.Preemptions())
	}
}

func TestNoSuspendReadWaits(t *testing.T) {
	p := tinyParams() // suspend off
	e := sim.NewEngine()
	d := NewDie(e, "d", p)
	var readAt sim.Time
	d.Program(Addr{0, 0, 0}, nil)
	e.Schedule(50*sim.Microsecond, func() {
		d.Read(Addr{0, 1, 0}, func() { readAt = e.Now() })
	})
	e.Run()
	// FIFO: the read waits for the full program.
	if want := p.ProgramLatency + p.ReadLatency; readAt != want {
		t.Fatalf("read at %v, want %v (no suspend)", readAt, want)
	}
	if d.Preemptions() != 0 {
		t.Fatal("preemptions without suspend")
	}
}

func TestValidateRejectsNegativeResume(t *testing.T) {
	p := tinyParams()
	p.ResumeOverhead = -1
	if p.Validate() == nil {
		t.Fatal("negative resume overhead accepted")
	}
}
