// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §3). Each experiment is a pure
// function from an Options struct to tables/figures, shared by the
// cmd/optimstore CLI and the root benchmark harness so both always report
// the same numbers.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks simulation windows so the whole suite runs in seconds;
	// the full setting tightens extrapolation at ~10× the runtime.
	Quick bool

	// Parallel is the worker-pool width used to fan independent simulation
	// points (systems, sweep cells, experiments) across CPUs. <= 0 means
	// one worker per CPU; 1 reproduces fully sequential execution. Every
	// point owns its engine and results are assembled in submission order,
	// so outputs are identical at any width.
	Parallel int

	// Fault, when enabled, arms the seed-driven fault storm on every
	// simulated experiment point (the CLI's -fault flag); Checkpoint
	// selects the checkpoint policy priced into every report (-checkpoint).
	// F20 sweeps policies itself and only inherits the storm.
	Fault      fault.Spec
	Checkpoint fault.Policy

	// CheckInvariants audits every simulated report against the registered
	// physical invariants (internal/invariant): conservation, roofline
	// sandwich, structural sanity. Violations are recorded on the reports
	// (surfacing in runner summaries as an INVARIANT VIOLATIONS count) and
	// returned as errors from runSystems, so a miscalibrated model fails
	// the experiment instead of silently producing a wrong table.
	CheckInvariants bool
}

func (o Options) simUnits() int64 {
	if o.Quick {
		return 256
	}
	return 2048
}

func (o Options) wafSteps() int {
	if o.Quick {
		return 3
	}
	return 8
}

// Result is the output of one experiment.
type Result struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Figures []*stats.Figure
}

// String renders every table (figures as their data tables).
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "===== %s: %s =====\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// registry indexes the declarative specs (specs.go) by ID. Built at init
// so a duplicate or blank ID is a programming error caught on first use.
var registry = buildRegistry()

func buildRegistry() map[string]*Spec {
	m := make(map[string]*Spec, len(specs))
	for i := range specs {
		s := &specs[i]
		if s.ID == "" {
			panic("experiments: spec with empty ID")
		}
		if _, dup := m[s.ID]; dup {
			panic("experiments: duplicate spec ID " + s.ID)
		}
		m[s.ID] = s
	}
	return m
}

// IDs lists experiment identifiers in presentation order: tables before
// figures, numerically within each class.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	//simlint:allow maporder keys are fully sorted below before use
	for id := range registry {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// idKey decomposes an experiment ID for ordering: a class rank (T-tables
// first, then F-figures, then anything else) and the numeric suffix.
// ok reports whether the suffix parsed as a non-negative integer.
func idKey(id string) (class, num int, ok bool) {
	if id == "" {
		return 3, 0, false
	}
	switch id[0] {
	case 'T':
		class = 0
	case 'F':
		class = 1
	default:
		class = 2
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return class, 0, false
	}
	return class, n, true
}

// sortIDs orders experiment IDs for presentation: by class (T, F, other),
// well-formed numeric suffixes ascending, and malformed IDs after the
// well-formed ones within their class, lexicographically. Ties fall back
// to the full string so the order is total and deterministic.
func sortIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool {
		ac, an, aok := idKey(ids[i])
		bc, bn, bok := idKey(ids[j])
		if ac != bc {
			return ac < bc
		}
		if aok != bok {
			return aok // well-formed before malformed
		}
		if aok && an != bn {
			return an < bn
		}
		return ids[i] < ids[j]
	})
}

// Title returns an experiment's title and whether the ID is registered.
func Title(id string) (string, bool) {
	s, ok := registry[id]
	if !ok {
		return "", false
	}
	return s.Title, true
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Result, error) {
	s, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	res, err := s.run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = s.Title
	return res, nil
}

// RunMany executes a set of experiments across the worker pool and returns
// their results in the requested order, plus the pool's run summary.
// Unknown IDs fail before any simulation starts.
func RunMany(ids []string, opts Options) ([]*Result, runner.Summary, error) {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, runner.Summary{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
	}
	results := runner.Map(opts.Parallel, ids, func(id string) (*Result, error) {
		return Run(id, opts)
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, runner.Summarize(results), err
	}
	return runner.Values(results), runner.Summarize(results), nil
}

// baseConfig is the shared default experiment point.
func baseConfig(opts Options, model dnn.Model) core.Config {
	cfg := core.DefaultConfig(model)
	cfg.MaxSimUnits = opts.simUnits()
	cfg.Fault = opts.Fault
	cfg.Checkpoint = opts.Checkpoint
	return cfg
}

// defaultBase is the starting configuration of spec cells with no Base
// hook: the shared GPT-13B default point.
func defaultBase(opts Options) core.Config { return baseConfig(opts, dnn.GPT13B()) }

// joinViolations formats an invariant-violation list for error text.
func joinViolations(v []string) string { return strings.Join(v, "; ") }

// runSystems runs the named systems on a config across the worker pool
// and returns their reports in name order. Each system constructs its own
// engine from a private copy of cfg, so points are fully independent.
func runSystems(opts Options, cfg core.Config, names ...string) ([]*core.Report, error) {
	if len(names) == 0 {
		names = core.SystemNames()
	}
	results := runner.Map(opts.Parallel, names, func(n string) (*core.Report, error) {
		sys, err := core.NewSystem(n, cfg)
		if err != nil {
			return nil, err
		}
		r, err := sys.Run()
		if err != nil {
			return nil, err
		}
		if opts.CheckInvariants {
			if v := invariant.Audit(n, cfg, r); len(v) > 0 {
				return r, fmt.Errorf("system %s violates invariants: %s", n, strings.Join(v, "; "))
			}
		}
		return r, nil
	})
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	return runner.Values(results), nil
}
