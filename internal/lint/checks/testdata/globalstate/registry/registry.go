// Package registry exercises the globalstate analyzer's allow story: a
// setup-time registry whose registration write is documented, next to
// runtime mutations that are findings.
package registry

// handlers is a setup-time registry; only Register writes it, and that
// write carries an allow.
var handlers = map[string]func(){}

var counter int

// Register is called during program setup; the write is deliberate.
func Register(name string, fn func()) {
	//simlint:allow globalstate setup-time registry write
	handlers[name] = fn
}

// Bump mutates shared package state at runtime.
func Bump() {
	counter++ // want "increment of package-level counter"
}

// Drop clears a registry entry outside setup.
func Drop(name string) {
	delete(handlers, name) // want "delete of package-level handlers"
}

func init() {
	counter = 0 // init is configuration, not shared mutable state
}
